// Command feam demonstrates the FEAM two-phase migration workflow on the
// simulated five-site testbed: it compiles a benchmark at a source site,
// runs the source phase there (bundle creation), migrates the binary to a
// target site, runs the target phase (prediction + resolution), prints the
// emitted site-configuration script, and finally executes the binary with
// the ground-truth simulator to show whether the prediction was right.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"feam/internal/batch"
	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/report"
	"feam/internal/sitemodel"
	"feam/internal/store"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/vfs"
	"feam/internal/workload"
)

func main() {
	var (
		code    = flag.String("code", "cg", "benchmark code (is, ep, cg, mg, bt, sp, lu, 104.milc, ...)")
		class   = flag.String("class", "A", "NPB problem class (S, W, A, B, C)")
		from    = flag.String("from", "ranger", "source site (guaranteed execution environment)")
		stack   = flag.String("stack", "mvapich2-1.2-gnu", "MPI stack key at the source site")
		to      = flag.String("to", "india", "target site")
		basic   = flag.Bool("basic", false, "skip the source phase (basic prediction only)")
		seed    = flag.Int64("seed", 2013, "simulation seed")
		workers = flag.Int("workers", 4, "concurrent site surveys for -to all")
		verbose = flag.Bool("v", false, "print phase reports, bundle contents, and engine statistics")
	)
	flag.Parse()
	if err := run(*code, *class, *from, *stack, *to, *basic, *seed, *workers, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "feam:", err)
		os.Exit(1)
	}
}

func run(codeName, className, from, stackKey, to string, basic bool, seed int64, workers int, verbose bool) error {
	ctx := context.Background()
	// Construct the engine's three layers explicitly: shared metrics, a
	// sharded site registry over them, and a persistent store (in-memory
	// vfs here — the simulated world has no host disk) so surveys, binary
	// descriptions, and the bundle are persisted as the workflow computes
	// them.
	metricsReg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	sites := registry.New(registry.WithMetrics(metricsReg))
	st, err := store.Open(vfs.New(), "/feam/state",
		store.WithMetrics(metricsReg), store.WithTracer(tr))
	if err != nil {
		return err
	}
	eng := feam.New(
		feam.WithTracer(tr),
		feam.WithMetrics(metricsReg),
		feam.WithRegistry(sites),
		feam.WithStore(st),
	)
	if verbose {
		defer func() {
			fmt.Printf("\n%s", report.Latency(eng.Metrics()))
			fmt.Printf("\nengine: %s\n", report.EngineActivity(eng.Metrics()))
			rst := sites.Stats()
			sst := st.Stats()
			fmt.Printf("registry: %d sites, %d surveys, %d descriptions cached (%d hits / %d misses, %d evicted)\n",
				rst.Sites, rst.Surveys, rst.Descriptions, rst.Hits, rst.Misses, rst.Evictions)
			fmt.Printf("store: %d commits, %d loads, %d corrupt\n", sst.Commits, sst.Loads, sst.Corrupt)
		}()
	}
	code := workload.Find(codeName)
	if code == nil {
		return fmt.Errorf("unknown code %q", codeName)
	}
	if !workload.Class(className).Valid() {
		return fmt.Errorf("unknown problem class %q", className)
	}
	code = code.WithClass(workload.Class(className))
	fmt.Printf("Building the five-site testbed (Table II)...\n")
	tb, err := testbed.Build()
	if err != nil {
		return err
	}
	src, ok := tb.ByName[from]
	if !ok {
		return fmt.Errorf("unknown source site %q", from)
	}
	dst, ok := tb.ByName[to]
	if !ok && to != "all" {
		return fmt.Errorf("unknown target site %q", to)
	}
	rec := src.FindStack(stackKey)
	if rec == nil {
		var keys []string
		for _, r := range src.Stacks {
			keys = append(keys, r.Key)
		}
		return fmt.Errorf("no stack %q at %s (have: %s)", stackKey, from, strings.Join(keys, ", "))
	}

	sim := execsim.NewSimulator(seed)
	runner := experiment.NewSimRunner(sim)

	fmt.Printf("Compiling %s at %s with %s...\n", code.Name, from, stackKey)
	art, err := toolchain.Compile(code, rec, src)
	if err != nil {
		return err
	}
	binPath := "/home/user/" + art.Name
	if err := src.FS().WriteFile(binPath, art.Bytes); err != nil {
		return err
	}

	var bundle *feam.Bundle
	if !basic {
		fmt.Printf("\n== FEAM source phase at %s ==\n", from)
		snap := src.SnapshotEnv()
		if err := testbed.ActivateStack(src, stackKey); err != nil {
			return err
		}
		cfg := configFor(tb, from, "source", binPath)
		b, report, err := eng.RunSourcePhase(ctx, cfg, src, runner)
		src.RestoreEnv(snap)
		if err != nil {
			return err
		}
		bundle = b
		fmt.Printf("bundle: %d libraries, %.1f MB, simulated duration %v\n",
			len(bundle.Libs), float64(bundle.Size())/(1<<20), report.Total())
		if verbose {
			fmt.Print(bundle.Summary())
			fmt.Print(report.String())
		}

		// Ship the bundle the way a user would: serialize it, copy the
		// archive to the target site, decode it there. (Skipped for the
		// all-sites ranking, which evaluates in place.)
		if dst != nil {
			archive, err := feam.EncodeBundle(bundle)
			if err != nil {
				return err
			}
			archivePath := binPath + ".feambundle"
			if err := dst.FS().WriteFile(archivePath, archive); err != nil {
				return err
			}
			raw, err := dst.FS().ReadFile(archivePath)
			if err != nil {
				return err
			}
			bundle, err = feam.DecodeBundle(raw)
			if err != nil {
				return err
			}
			fmt.Printf("bundle archive shipped to %s:%s (%d bytes)\n", to, archivePath, len(archive))
		}
	}

	// "-to all": rank every other site instead of a single target phase —
	// the paper's quickly-assess-many-sites use case.
	if to == "all" {
		desc, err := eng.Describe(ctx, art.Bytes, art.Name)
		if err != nil {
			return err
		}
		var targets []*sitemodel.Site
		for _, s := range tb.Sites {
			if s.Name != from {
				targets = append(targets, s)
			}
		}
		fmt.Printf("\n== Ranking %d candidate sites (%d workers) ==\n", len(targets), workers)
		ranked := eng.RankSitesParallel(ctx, desc, art.Bytes, targets, feam.EvalOptions{
			Bundle: bundle, Resolve: bundle != nil, Runner: runner,
		}, workers)
		for i, a := range ranked {
			switch {
			case a.Err != nil:
				kind := "assessment failed"
				if errors.Is(a.Err, feam.ErrSiteUnavailable) {
					kind = "survey failed"
				}
				fmt.Printf("%d. %-12s %s: %v\n", i+1, a.Site, kind, a.Err)
			case a.Prediction.Ready && len(a.Prediction.ResolvedLibs) == 0:
				fmt.Printf("%d. %-12s READY as-is (stack %s)\n", i+1, a.Site, a.Prediction.StackKey())
			case a.Prediction.Ready:
				fmt.Printf("%d. %-12s READY with %d staged libraries (stack %s)\n",
					i+1, a.Site, len(a.Prediction.ResolvedLibs), a.Prediction.StackKey())
			default:
				reason := "unknown"
				if len(a.Prediction.Reasons) > 0 {
					reason = a.Prediction.Reasons[0]
				}
				fmt.Printf("%d. %-12s not ready: %s\n", i+1, a.Site, reason)
			}
		}
		return nil
	}

	fmt.Printf("\n== FEAM target phase at %s ==\n", to)
	if err := dst.FS().WriteFile(binPath, art.Bytes); err != nil {
		return err
	}
	cfg := configFor(tb, to, "target", binPath)
	pred, report, err := eng.RunTargetPhase(ctx, cfg, dst, bundle, runner)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Print(report.String())
	}
	fmt.Printf("prediction: ")
	if pred.Ready {
		fmt.Printf("READY (stack %s)\n", pred.StackKey())
	} else {
		fmt.Printf("NOT READY\n")
		for _, r := range pred.Reasons {
			fmt.Printf("  - %s\n", r)
		}
	}
	for _, d := range feam.Determinants() {
		res := pred.Determinants[d]
		fmt.Printf("  %-30s %-13s %s\n", d, res.Outcome, res.Detail)
	}
	if len(pred.ResolvedLibs) > 0 {
		fmt.Printf("resolved libraries staged at %s: %s\n", pred.StageDir, strings.Join(pred.ResolvedLibs, ", "))
	}
	if pred.ConfigScript != "" {
		fmt.Printf("\nsite configuration script:\n%s", indent(pred.ConfigScript))
	}

	// Ground truth: does it actually run?
	fmt.Printf("\n== Actual execution at %s ==\n", to)
	stackUsed := pred.StackKey()
	if stackUsed == "" {
		for _, r := range dst.Stacks {
			if r.Impl == art.Truth.Impl {
				stackUsed = r.Key
				break
			}
		}
	}
	var recDst = dst.FindStack(stackUsed)
	snap := dst.SnapshotEnv()
	if stackUsed != "" {
		if err := testbed.ActivateStack(dst, stackUsed); err != nil {
			return err
		}
	}
	res := sim.Run(execsim.Request{Art: art, Site: dst, Stack: recDst, ExtraLibDirs: pred.ExtraLibDirs()})
	dst.RestoreEnv(snap)
	if res.Success() {
		fmt.Printf("execution SUCCEEDED (%d attempt(s), ~%v)\n", res.Attempts, res.RunTime)
	} else {
		fmt.Printf("execution FAILED: %s — %s\n", res.Class, res.Detail)
	}
	match := pred.Ready == res.Success()
	fmt.Printf("prediction was %s\n", map[bool]string{true: "CORRECT", false: "WRONG"}[match])
	return nil
}

func configFor(tb *testbed.Testbed, siteName, phase, binaryPath string) *feam.Config {
	spec := tb.Specs[siteName]
	serial := batch.Generate(batch.ScriptSpec{
		Manager: spec.Manager, JobName: "feam-serial", Queue: "debug",
		Nodes: 1, Tasks: 1, WallTime: 10 * time.Minute, Command: batch.CmdPlaceholder,
	})
	parallel := batch.Generate(batch.ScriptSpec{
		Manager: spec.Manager, JobName: "feam-parallel", Queue: "debug",
		Nodes: 1, Tasks: 4, WallTime: 15 * time.Minute, Command: batch.CmdPlaceholder,
	})
	return &feam.Config{
		Phase: phase, BinaryPath: binaryPath,
		SerialScript: serial, ParallelScript: parallel,
		MpiexecByImpl: map[string]string{"mvapich2": "mpirun_rsh"},
	}
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("    " + line + "\n")
	}
	return b.String()
}
