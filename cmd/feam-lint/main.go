// Command feam-lint is the repository's multichecker: it runs the stock
// go vet passes (by invoking the go tool) followed by the FEAM invariant
// analyzers from internal/analysis — spanend, faultwrap, vfsonly,
// ctxfirst, lockorder. Exit status is non-zero when any pass reports a
// finding, so CI and `make lint` gate on it.
//
// Usage:
//
//	feam-lint [-novet] [-list] [packages]
//
// Packages default to ./... and follow the go tool's pattern shape.
// Findings can be suppressed line-by-line with a justified annotation:
//
//	//lint:ignore <analyzer> <why this is legitimate>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"feam/internal/analysis"
)

func main() {
	novet := flag.Bool("novet", false, "skip the stock go vet passes (run analyzers only)")
	list := flag.Bool("list", false, "list the FEAM analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-lint:", err)
		os.Exit(2)
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Dir = root
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	diags, err := analysis.Run(root, patterns, analysis.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "feam-lint: %d finding(s)\n", len(diags))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
