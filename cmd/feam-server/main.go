// Command feam-server runs FEAM as a service: a fleet of simulated sites
// behind a JSON API. Scientists (or feam-load) POST a binary and a target
// site to /v1/predict and get the execution-readiness verdict the paper's
// pipeline computes; /v1/sites lists the fleet and /v1/survey/{site}
// serves a site's discovered environment. The standard observability
// surface (/metrics, /metrics.json, /trace, /debug/pprof) shares the mux.
//
// Identical concurrent predictions are coalesced singleflight-style, so a
// thundering herd of clients asking about the same binary costs one
// evaluation. On SIGINT/SIGTERM the server stops accepting, drains
// in-flight predictions, and commits the fleet inventory to its store
// before exiting.
//
// Usage:
//
//	feam-server [-addr :8080] [-fleet fleet.yaml] [-workers N] [-grace 10s]
//
// Without -fleet the paper's five-site Table II testbed is served. A fleet
// file is the same YAML shape the scenario runner uses — either a bare
// fleet document or a scenario file's `fleet:` block.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"feam/internal/scenario"
	"feam/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		fleet   = flag.String("fleet", "", "fleet spec YAML (default: the Table II five-site testbed)")
		workers = flag.Int("workers", 0, "batch fan-out width (0 = engine default)")
		seed    = flag.Int64("seed", 42, "probe simulator seed")
		grace   = flag.Duration("grace", server.DefaultShutdownGrace, "shutdown drain window")
	)
	flag.Parse()
	if err := run(*addr, *fleet, *workers, *seed, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "feam-server:", err)
		os.Exit(1)
	}
}

func run(addr, fleetPath string, workers int, seed int64, grace time.Duration) error {
	fs := scenario.FleetSpec{Base: scenario.FleetBaseTable2}
	if fleetPath != "" {
		data, err := os.ReadFile(fleetPath)
		if err != nil {
			return err
		}
		fs, err = scenario.LoadFleet(data)
		if err != nil {
			return fmt.Errorf("%s: %w", fleetPath, err)
		}
	}

	s, err := server.New(server.Config{Fleet: fs, Workers: workers, Seed: seed})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "feam-server: serving %d sites on %s\n", s.Sites(), addr)
	err = s.Run(ctx, addr, grace)
	st := s.CoalescerStats()
	fmt.Fprintf(os.Stderr, "feam-server: shut down (leads=%d coalesced=%d hit-rate=%.2f)\n",
		st.Leads, st.Coalesced, st.HitRate())
	return err
}
