// Command feam-sim runs YAML fleet scenarios through the FEAM engine: it
// builds the declared synthetic fleet, replays the event timeline (site
// churn, glibc upgrades, fault spikes, outages, engine restarts), and
// checks the scenario's assertions against the predictions, spans, and
// metrics the run produced.
//
// Subcommands:
//
//	feam-sim validate <file>...   load and validate scenarios, run nothing
//	feam-sim list <file>...       one-line summary per scenario
//	feam-sim run [flags] <file>...  execute scenarios and check assertions
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"feam/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "feam-sim: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-sim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: feam-sim <command> [flags] <scenario.yaml>...

commands:
  run       execute scenarios and check their assertions
  validate  load and validate scenario files without running them
  list      print a one-line summary per scenario

run flags:
  -json      print the full result JSON for each scenario to stdout
  -out DIR   write each scenario's result JSON to DIR/<name>.json
  -v         print the event log while running
`)
}

// load reads and validates one scenario file.
func load(path string) (*scenario.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return sc, nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("validate: no scenario files given")
	}
	bad := 0
	for _, path := range fs.Args() {
		sc, err := load(path)
		if err != nil {
			fmt.Printf("FAIL %s\n  %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s (%s: %d events, %d assertions)\n",
			path, sc.Name, len(sc.Events), len(sc.Assertions))
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d scenario files failed validation", bad, fs.NArg())
	}
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("list: no scenario files given")
	}
	for _, path := range fs.Args() {
		sc, err := load(path)
		if err != nil {
			return err
		}
		sites := "table2 base"
		if n := countGroupSites(sc); n > 0 {
			if sc.Fleet.Base == "" {
				sites = fmt.Sprintf("%d sites", n)
			} else {
				sites = fmt.Sprintf("table2 base + %d sites", n)
			}
		}
		fmt.Printf("%-32s %-24s %s\n", sc.Name, sites, sc.Description)
	}
	return nil
}

func countGroupSites(sc *scenario.Scenario) int {
	n := 0
	for _, g := range sc.Fleet.Groups {
		c := g.Count
		if c < 1 {
			c = 1
		}
		n += c
	}
	return n
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print each result as JSON to stdout")
	outDir := fs.String("out", "", "write each result JSON to this directory")
	verbose := fs.Bool("v", false, "print the event log while running")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("run: no scenario files given")
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	failed := 0
	for _, path := range fs.Args() {
		sc, err := load(path)
		if err != nil {
			return err
		}
		opts := scenario.RunOptions{}
		if *verbose {
			opts.Log = os.Stderr
		}
		res, err := scenario.Run(context.Background(), sc, opts)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if *outDir != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			name := filepath.Join(*outDir, res.Scenario+".json")
			if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		} else {
			printResult(path, res)
		}
		if !res.Passed {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, fs.NArg())
	}
	return nil
}

// printResult renders a human-readable pass/fail summary, with the diff
// for every failed assertion.
func printResult(path string, res *scenario.Result) {
	status := "PASS"
	if !res.Passed {
		status = "FAIL"
	}
	fmt.Printf("%s %s (%s): %d sites, %d events, %d/%d assertions\n",
		status, res.Scenario, path, res.Sites, len(res.Events),
		len(res.Assertions)-res.Failed, len(res.Assertions))
	for _, a := range res.Assertions {
		if a.OK {
			continue
		}
		fmt.Printf("  assertion %d failed: %s\n", a.Index, a.Description)
		if a.Diff != "" {
			fmt.Print(indent(a.Diff, "    "))
		}
	}
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += prefix + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
