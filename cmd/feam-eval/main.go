// Command feam-eval runs the paper's full evaluation on the simulated
// testbed and regenerates its tables: Table I (MPI identification), Table II
// (site characteristics), Table III (prediction accuracy), Table IV
// (resolution impact), and the §VI.C statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/report"
	"feam/internal/testbed"
)

func main() {
	var (
		table   = flag.Int("table", 0, "print a single table (1-4); 0 prints everything")
		stats   = flag.Bool("stats", false, "print only the evaluation statistics")
		effort  = flag.Bool("effort", false, "print only the user-effort comparison")
		ablate  = flag.Bool("ablate", false, "run the mechanism ablations (slow: four full matrices)")
		seed    = flag.Int64("seed", 2013, "simulation seed")
		workers = flag.Int("workers", 0, "evaluation workers (0 = one per site)")
	)
	flag.Parse()
	if err := run(*table, *stats, *effort, *ablate, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "feam-eval:", err)
		os.Exit(1)
	}
}

func run(table int, statsOnly, effortOnly, ablate bool, seed int64, workers int) error {
	// Tables I and II need no evaluation run.
	if table == 1 {
		fmt.Print(report.Table1())
		return nil
	}
	fmt.Fprintln(os.Stderr, "building testbed...")
	tb, err := testbed.Build()
	if err != nil {
		return err
	}
	if table == 2 {
		fmt.Print(report.Table2(tb))
		return nil
	}
	sim := execsim.NewSimulator(seed)
	fmt.Fprintln(os.Stderr, "compiling test set (NPB + SPEC MPI2007 across 26 stacks)...")
	ts, err := experiment.BuildTestSet(tb, sim)
	if err != nil {
		return err
	}
	if ablate {
		fmt.Fprintln(os.Stderr, "running mechanism ablations...")
		results, err := experiment.RunAblations(tb, ts, sim)
		if err != nil {
			return err
		}
		fmt.Print(report.Ablations(results))
		return nil
	}
	fmt.Fprintf(os.Stderr, "running evaluation over %d migration pairs...\n",
		len(experiment.Migrations(tb, ts)))
	if workers <= 0 {
		workers = len(tb.Sites)
	}
	ev, err := experiment.RunWithConcurrency(tb, ts, sim, workers)
	if err != nil {
		return err
	}
	switch {
	case statsOnly:
		fmt.Print(report.Stats(ev))
	case effortOnly:
		fmt.Print(report.Effort(ev, tb))
	case table == 3:
		fmt.Print(report.Table3(ev))
	case table == 4:
		fmt.Print(report.Table4(ev))
	default:
		fmt.Print(report.Table1())
		fmt.Println()
		fmt.Print(report.Table2(tb))
		fmt.Println()
		fmt.Print(report.Table3(ev))
		fmt.Println()
		fmt.Print(report.Table4(ev))
		fmt.Println()
		fmt.Print(report.Stats(ev))
		fmt.Println()
		fmt.Print(report.Effort(ev, tb))
	}
	return nil
}
