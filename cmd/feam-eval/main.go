// Command feam-eval runs the paper's full evaluation on the simulated
// testbed and regenerates its tables: Table I (MPI identification), Table II
// (site characteristics), Table III (prediction accuracy), Table IV
// (resolution impact), and the §VI.C statistics.
//
// Observability: -trace-out streams every pipeline span to a JSONL file,
// -metrics-out writes the latency histograms and event counters (Prometheus
// text exposition, or JSON when the path ends in .json), and -debug-addr
// serves pprof/expvar plus live /metrics and /trace endpoints while the
// evaluation runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/report"
	"feam/internal/server"
	"feam/internal/store"
	"feam/internal/testbed"
	"feam/internal/vfs"
)

type evalConfig struct {
	table      int
	stats      bool
	effort     bool
	ablate     bool
	seed       int64
	workers    int
	traceOut   string
	metricsOut string
	debugAddr  string
}

func main() {
	var cfg evalConfig
	flag.IntVar(&cfg.table, "table", 0, "print a single table (1-4); 0 prints everything")
	flag.BoolVar(&cfg.stats, "stats", false, "print only the evaluation statistics")
	flag.BoolVar(&cfg.effort, "effort", false, "print only the user-effort comparison")
	flag.BoolVar(&cfg.ablate, "ablate", false, "run the mechanism ablations (slow: four full matrices)")
	flag.Int64Var(&cfg.seed, "seed", 2013, "simulation seed")
	flag.IntVar(&cfg.workers, "workers", 0, "evaluation workers (0 = one per site)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "stream pipeline spans to this file as JSON Lines")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write pipeline metrics to this file (Prometheus text; JSON when it ends in .json)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve pprof, expvar, /metrics and /trace on this address (e.g. localhost:6060)")
	flag.Parse()
	if err := run(cfg); err != nil {
		// The engine's sentinel errors say what failed without string
		// matching; distinct exit codes let scripts branch the same way.
		fmt.Fprintln(os.Stderr, "feam-eval:", err)
		switch {
		case errors.Is(err, feam.ErrSiteUnavailable):
			os.Exit(2)
		case errors.Is(err, feam.ErrProbeFailed):
			os.Exit(3)
		default:
			os.Exit(1)
		}
	}
}

func run(cfg evalConfig) error {
	// Tables I and II need no evaluation run.
	if cfg.table == 1 {
		fmt.Print(report.Table1())
		return nil
	}
	fmt.Fprintln(os.Stderr, "building testbed...")
	tb, err := testbed.Build()
	if err != nil {
		return err
	}
	if cfg.table == 2 {
		fmt.Print(report.Table2(tb))
		return nil
	}
	sim := execsim.NewSimulator(cfg.seed)
	fmt.Fprintln(os.Stderr, "compiling test set (NPB + SPEC MPI2007 across 26 stacks)...")
	ts, err := experiment.BuildTestSet(tb, sim)
	if err != nil {
		return err
	}
	if cfg.ablate {
		fmt.Fprintln(os.Stderr, "running mechanism ablations...")
		results, err := experiment.RunAblations(tb, ts, sim)
		if err != nil {
			return err
		}
		fmt.Print(report.Ablations(results))
		return nil
	}

	// Explicit layering: one metrics registry and tracer feed the sharded
	// site registry and the persistent store underneath a stateless engine,
	// so the evaluation's survey traffic is cached, counted, and persisted
	// through the same layers the production workflow uses.
	metricsReg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	st, err := store.Open(vfs.New(), "/feam/state",
		store.WithMetrics(metricsReg), store.WithTracer(tr))
	if err != nil {
		return err
	}
	eng := feam.New(
		feam.WithTracer(tr),
		feam.WithMetrics(metricsReg),
		feam.WithRegistry(registry.New(registry.WithMetrics(metricsReg))),
		feam.WithStore(st),
	)
	if cfg.traceOut != "" {
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		eng.Tracer().AddSink(obs.NewJSONLSink(f))
	}
	if cfg.debugAddr != "" {
		go func() {
			handler := obs.DebugHandler(eng.Metrics(), eng.Tracer())
			srv := server.NewHTTPServer(cfg.debugAddr, handler)
			if err := server.ListenAndServe(context.Background(), srv, 0); err != nil {
				fmt.Fprintln(os.Stderr, "feam-eval: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (pprof, expvar, /metrics, /trace)\n", cfg.debugAddr)
	}

	fmt.Fprintf(os.Stderr, "running evaluation over %d migration pairs...\n",
		len(experiment.Migrations(tb, ts)))
	workers := cfg.workers
	if workers <= 0 {
		workers = len(tb.Sites)
	}
	ev, err := experiment.RunWithEngine(context.Background(), eng, tb, ts, sim, workers)
	if err != nil {
		return err
	}
	switch {
	case cfg.stats:
		fmt.Print(report.Stats(ev))
	case cfg.effort:
		fmt.Print(report.Effort(ev, tb))
	case cfg.table == 3:
		fmt.Print(report.Table3(ev))
		fmt.Println()
		fmt.Print(report.Latency(eng.Metrics()))
	case cfg.table == 4:
		fmt.Print(report.Table4(ev))
	default:
		fmt.Print(report.Table1())
		fmt.Println()
		fmt.Print(report.Table2(tb))
		fmt.Println()
		fmt.Print(report.Table3(ev))
		fmt.Println()
		fmt.Print(report.Table4(ev))
		fmt.Println()
		fmt.Print(report.Stats(ev))
		fmt.Println()
		fmt.Print(report.Effort(ev, tb))
		fmt.Println()
		fmt.Print(report.Latency(eng.Metrics()))
	}
	return writeMetrics(eng, cfg.metricsOut)
}

// writeMetrics exports the engine's metrics registry: JSON when the path
// ends in .json, Prometheus text exposition otherwise.
func writeMetrics(eng *feam.Engine, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return eng.Metrics().WriteJSON(f)
	}
	return eng.Metrics().WritePrometheus(f)
}
