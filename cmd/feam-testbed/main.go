// Command feam-testbed builds the simulated five-site testbed (Table II)
// and inspects it: site characteristics, what FEAM's Environment Discovery
// Component finds at each site, and the compile matrix of the test set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/fault"
	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/report"
	"feam/internal/scenario"
	"feam/internal/server"
	"feam/internal/sitemodel"
	"feam/internal/store"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/vfs"
	"feam/internal/workload"
)

func main() {
	var (
		survey    = flag.Bool("survey", false, "run the EDC at every site and print what it discovers")
		matrix    = flag.Bool("matrix", false, "print the (code x stack) compile matrix")
		exportDir = flag.String("export", "", "write serialized site images (<site>.feamsite) into this directory")
		importOne = flag.String("import", "", "load a serialized site image and survey it")

		faults         = flag.Bool("faults", false, "rank all sites for a migrated binary under injected probe/staging faults")
		faultRate      = flag.Float64("fault-rate", 0.2, "per-operation fault probability for -faults")
		faultTransient = flag.Float64("fault-transient", 0.7, "fraction of injected faults that are transient (retryable)")
		faultSeed      = flag.Int64("fault-seed", 1, "deterministic fault-injection seed")

		traceOut   = flag.String("trace-out", "", "stream pipeline spans to this file as JSON Lines")
		metricsOut = flag.String("metrics-out", "", "write pipeline metrics to this file (Prometheus text; JSON when it ends in .json)")
		debugAddr  = flag.String("debug-addr", "", "serve pprof, expvar, /metrics and /trace on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	eng, cleanup, err := buildEngine(*traceOut, *debugAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-testbed:", err)
		os.Exit(1)
	}
	defer cleanup()

	if *importOne != "" {
		if err := runImport(eng, *importOne); err != nil {
			fmt.Fprintln(os.Stderr, "feam-testbed:", err)
			os.Exit(1)
		}
		exportMetrics(eng, *metricsOut)
		return
	}
	// The five-site Table II fleet is built through the scenario fleet
	// builder, the single definition shared with feam-sim.
	tb, err := scenario.BuildFleet(scenario.FleetSpec{Base: scenario.FleetBaseTable2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-testbed:", err)
		os.Exit(1)
	}
	switch {
	case *survey:
		runSurvey(eng, tb)
	case *matrix:
		runMatrix(tb)
	case *faults:
		if err := runFaults(eng, tb, *faultRate, *faultTransient, *faultSeed); err != nil {
			fmt.Fprintln(os.Stderr, "feam-testbed:", err)
			os.Exit(1)
		}
	case *exportDir != "":
		if err := runExport(tb, *exportDir); err != nil {
			fmt.Fprintln(os.Stderr, "feam-testbed:", err)
			os.Exit(1)
		}
	default:
		fmt.Print(report.Table2(tb))
	}
	exportMetrics(eng, *metricsOut)
}

// buildEngine constructs the tool's engine from its three layers — shared
// metrics and tracer, a sharded site registry, and a persistent store —
// with the requested observability wiring: a streaming span sink for
// -trace-out and a background debug server for -debug-addr. cleanup
// flushes and closes the trace file.
func buildEngine(traceOut, debugAddr string) (*feam.Engine, func(), error) {
	metricsReg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	st, err := store.Open(vfs.New(), "/feam/state",
		store.WithMetrics(metricsReg), store.WithTracer(tr))
	if err != nil {
		return nil, nil, err
	}
	eng := feam.New(
		feam.WithTracer(tr),
		feam.WithMetrics(metricsReg),
		feam.WithRegistry(registry.New(registry.WithMetrics(metricsReg))),
		feam.WithStore(st),
	)
	cleanup := func() {}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, nil, err
		}
		eng.Tracer().AddSink(obs.NewJSONLSink(f))
		cleanup = func() { f.Close() }
	}
	if debugAddr != "" {
		go func() {
			handler := obs.DebugHandler(eng.Metrics(), eng.Tracer())
			srv := server.NewHTTPServer(debugAddr, handler)
			if err := server.ListenAndServe(context.Background(), srv, 0); err != nil {
				fmt.Fprintln(os.Stderr, "feam-testbed: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (pprof, expvar, /metrics, /trace)\n", debugAddr)
	}
	return eng, cleanup, nil
}

// exportMetrics writes the engine's registry when -metrics-out was given:
// JSON for .json paths, Prometheus text exposition otherwise.
func exportMetrics(eng *feam.Engine, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-testbed:", err)
		return
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = eng.Metrics().WriteJSON(f)
	} else {
		err = eng.Metrics().WritePrometheus(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-testbed:", err)
	}
}

// runFaults demonstrates the engine's fault tolerance: it builds a bundle
// for one migrated binary, then ranks every other site while a
// deterministic injector fails a fraction of probe runs and staging
// filesystem operations. Transient faults are retried with backoff;
// permanent ones roll staging back atomically or degrade the site to an
// assessment carrying its error — the survey itself always completes.
func runFaults(eng *feam.Engine, tb *testbed.Testbed, rate, transientFrac float64, seed int64) error {
	ctx := context.Background()
	const (
		from     = "ranger"
		stackKey = "mvapich2-1.2-gnu"
	)
	src := tb.ByName[from]
	rec := src.FindStack(stackKey)
	if rec == nil {
		return fmt.Errorf("no stack %q at %s", stackKey, from)
	}
	sim := execsim.NewSimulator(seed)
	sim.TransientRate = 0 // flakiness comes from the injector, deterministically

	code := workload.Find("cg")
	art, err := toolchain.Compile(code, rec, src)
	if err != nil {
		return err
	}
	binPath := "/home/user/" + art.Name
	if err := src.FS().WriteFile(binPath, art.Bytes); err != nil {
		return err
	}

	// Source phase runs clean — the faults model target-site flakiness.
	snap := src.SnapshotEnv()
	if err := testbed.ActivateStack(src, stackKey); err != nil {
		return err
	}
	serial := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=1\n#PBS -l walltime=00:10:00\n%CMD%\n"
	parallel := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=4\n#PBS -l walltime=00:15:00\n%CMD%\n"
	cfg := &feam.Config{
		Phase: "source", BinaryPath: binPath,
		SerialScript: serial, ParallelScript: parallel,
	}
	bundle, _, err := eng.RunSourcePhase(ctx, cfg, src, &scenario.BatchRunner{Inner: experiment.NewSimRunner(sim), TB: tb})
	src.RestoreEnv(snap)
	if err != nil {
		return err
	}

	inj := &fault.Policy{
		Rate:              rate,
		TransientFraction: transientFrac,
		Seed:              seed,
		Ops:               []string{"probe", "write", "setattr", "mkdir", "rename", "removeall"},
	}
	// Probe submissions pass through each site's simulated resource manager
	// (script generation, %CMD% substitution, parse round-trip, queue wait)
	// with the fault injector underneath, so a probe can fail either in the
	// batch layer or in the execution itself.
	runner := &scenario.BatchRunner{Inner: &fault.FaultyRunner{Inner: experiment.NewSimProbeRunner(sim), Inj: inj}, TB: tb}
	var targets []*sitemodel.Site
	for _, s := range tb.Sites {
		if s.Name == from {
			continue
		}
		s.FS().SetOpHook(fault.Hook(ctx, inj))
		defer s.FS().SetOpHook(nil)
		targets = append(targets, s)
	}

	desc, err := eng.Describe(ctx, art.Bytes, art.Name)
	if err != nil {
		return err
	}
	fmt.Printf("Ranking %d sites for %s under injected faults (rate %.0f%%, %.0f%% transient, seed %d)\n\n",
		len(targets), art.Name, 100*rate, 100*transientFrac, seed)
	ranked := eng.RankSites(ctx, desc, art.Bytes, targets, feam.EvalOptions{
		Bundle: bundle, Resolve: true, Runner: runner,
	})
	for i, a := range ranked {
		switch {
		case a.Err != nil:
			// Branch on the engine's sentinel errors, not error text.
			kind := "assessment degraded"
			switch {
			case errors.Is(a.Err, feam.ErrSiteUnavailable):
				kind = "site unavailable"
			case errors.Is(a.Err, feam.ErrProbeFailed):
				kind = "evaluation aborted"
			}
			fmt.Printf("%d. %-12s %s: %v\n", i+1, a.Site, kind, a.Err)
			if a.Prediction != nil {
				for _, d := range feam.Determinants() {
					res := a.Prediction.Determinants[d]
					fmt.Printf("     %-30s %s\n", d, res.Outcome)
				}
			}
		case a.Prediction.Ready && len(a.Prediction.ResolvedLibs) == 0:
			fmt.Printf("%d. %-12s READY as-is (stack %s)\n", i+1, a.Site, a.Prediction.StackKey())
		case a.Prediction.Ready:
			fmt.Printf("%d. %-12s READY with %d staged libraries (stack %s)\n",
				i+1, a.Site, len(a.Prediction.ResolvedLibs), a.Prediction.StackKey())
		default:
			reason := "unknown"
			if len(a.Prediction.Reasons) > 0 {
				reason = a.Prediction.Reasons[0]
			}
			fmt.Printf("%d. %-12s not ready: %s\n", i+1, a.Site, reason)
		}
	}
	fmt.Printf("\nfaults injected: %d\n", inj.Injected())
	fmt.Printf("engine: %s\n", report.EngineActivity(eng.Metrics()))
	fmt.Printf("batch accounting (probe jobs through each site's manager):\n")
	for _, s := range append([]*sitemodel.Site{src}, targets...) {
		c := tb.Clusters[s.Name]
		if c == nil || c.Now() == 0 {
			continue
		}
		fmt.Printf("  %-12s %-5s %6.2f CPU-hours, virtual clock %s\n",
			s.Name, c.Manager, c.CPUHoursUsed(), c.Now())
	}
	return nil
}

func runExport(tb *testbed.Testbed, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, site := range tb.Sites {
		data, err := sitemodel.EncodeSite(site)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, site.Name+".feamsite")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%.1f MB)\n", path, float64(len(data))/(1<<20))
	}
	return nil
}

func runImport(eng *feam.Engine, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	site, err := sitemodel.DecodeSite(data)
	if err != nil {
		return err
	}
	env, err := eng.Discover(context.Background(), site)
	if err != nil {
		return err
	}
	fmt.Printf("site image %s: %s (%s, %d cores)\n", path, site.Description, site.SystemType, site.Cores)
	fmt.Printf("  processor %s, %s %s, C library %s (via %s)\n",
		env.UnameProcessor, env.OSType, env.OSVersion, env.Glibc, env.GlibcSource)
	fmt.Printf("  %d MPI stacks discovered\n", len(env.Available))
	for _, s := range env.Available {
		fmt.Printf("    %s\n", s.Key)
	}
	return nil
}

func runSurvey(eng *feam.Engine, tb *testbed.Testbed) {
	for _, site := range tb.Sites {
		env, err := eng.Discover(context.Background(), site)
		if err != nil {
			fmt.Fprintf(os.Stderr, "discovery at %s failed: %v\n", site.Name, err)
			continue
		}
		fmt.Printf("== %s ==\n", site.Name)
		fmt.Printf("  processor: %s (%d-bit), OS: %s %s, distro: %s\n",
			env.UnameProcessor, env.Bits, env.OSType, env.OSVersion, env.Distro)
		fmt.Printf("  C library: %s (determined via %s)\n", env.Glibc, env.GlibcSource)
		fmt.Printf("  env tool: %s\n", orNone(env.EnvTool))
		fmt.Printf("  MPI stacks (%d):\n", len(env.Available))
		for _, s := range env.Available {
			fmt.Printf("    %-26s %s %s with %s %s (via %s)\n",
				s.Key, s.Impl, s.ImplVersion, s.CompilerFamily, s.CompilerVersion, s.DiscoveredVia)
		}
	}
}

func orNone(s string) string {
	if s == "" {
		return "none (path search)"
	}
	return s
}

func runMatrix(tb *testbed.Testbed) {
	fmt.Printf("%-14s", "code")
	total := 0
	for _, site := range tb.Sites {
		fmt.Printf(" %-12s", site.Name)
	}
	fmt.Println()
	for _, code := range workload.All() {
		fmt.Printf("%-14s", code.Name)
		for _, site := range tb.Sites {
			ok, all := 0, 0
			for _, rec := range site.Stacks {
				all++
				family, _ := toolchain.FamilyFromKey(rec.CompilerFamily)
				comp := toolchain.Compiler{Family: family, Version: rec.CompilerVersion}
				if toolchain.CanCompile(code, comp) == nil {
					ok++
					total++
				}
			}
			fmt.Printf(" %2d/%-9d", ok, all)
		}
		fmt.Println()
	}
	fmt.Printf("\ncompilable (code, stack) combinations: %d\n", total)
}
