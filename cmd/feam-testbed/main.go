// Command feam-testbed builds the simulated five-site testbed (Table II)
// and inspects it: site characteristics, what FEAM's Environment Discovery
// Component finds at each site, and the compile matrix of the test set.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"feam/internal/feam"
	"feam/internal/report"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

func main() {
	var (
		survey    = flag.Bool("survey", false, "run the EDC at every site and print what it discovers")
		matrix    = flag.Bool("matrix", false, "print the (code x stack) compile matrix")
		exportDir = flag.String("export", "", "write serialized site images (<site>.feamsite) into this directory")
		importOne = flag.String("import", "", "load a serialized site image and survey it")
	)
	flag.Parse()

	if *importOne != "" {
		if err := runImport(*importOne); err != nil {
			fmt.Fprintln(os.Stderr, "feam-testbed:", err)
			os.Exit(1)
		}
		return
	}
	tb, err := testbed.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "feam-testbed:", err)
		os.Exit(1)
	}
	switch {
	case *survey:
		runSurvey(tb)
	case *matrix:
		runMatrix(tb)
	case *exportDir != "":
		if err := runExport(tb, *exportDir); err != nil {
			fmt.Fprintln(os.Stderr, "feam-testbed:", err)
			os.Exit(1)
		}
	default:
		fmt.Print(report.Table2(tb))
	}
}

func runExport(tb *testbed.Testbed, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, site := range tb.Sites {
		data, err := sitemodel.EncodeSite(site)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, site.Name+".feamsite")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%.1f MB)\n", path, float64(len(data))/(1<<20))
	}
	return nil
}

func runImport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	site, err := sitemodel.DecodeSite(data)
	if err != nil {
		return err
	}
	env, err := feam.NewEngine().Discover(context.Background(), site)
	if err != nil {
		return err
	}
	fmt.Printf("site image %s: %s (%s, %d cores)\n", path, site.Description, site.SystemType, site.Cores)
	fmt.Printf("  processor %s, %s %s, C library %s (via %s)\n",
		env.UnameProcessor, env.OSType, env.OSVersion, env.Glibc, env.GlibcSource)
	fmt.Printf("  %d MPI stacks discovered\n", len(env.Available))
	for _, s := range env.Available {
		fmt.Printf("    %s\n", s.Key)
	}
	return nil
}

func runSurvey(tb *testbed.Testbed) {
	eng := feam.NewEngine()
	for _, site := range tb.Sites {
		env, err := eng.Discover(context.Background(), site)
		if err != nil {
			fmt.Fprintf(os.Stderr, "discovery at %s failed: %v\n", site.Name, err)
			continue
		}
		fmt.Printf("== %s ==\n", site.Name)
		fmt.Printf("  processor: %s (%d-bit), OS: %s %s, distro: %s\n",
			env.UnameProcessor, env.Bits, env.OSType, env.OSVersion, env.Distro)
		fmt.Printf("  C library: %s (determined via %s)\n", env.Glibc, env.GlibcSource)
		fmt.Printf("  env tool: %s\n", orNone(env.EnvTool))
		fmt.Printf("  MPI stacks (%d):\n", len(env.Available))
		for _, s := range env.Available {
			fmt.Printf("    %-26s %s %s with %s %s (via %s)\n",
				s.Key, s.Impl, s.ImplVersion, s.CompilerFamily, s.CompilerVersion, s.DiscoveredVia)
		}
	}
}

func orNone(s string) string {
	if s == "" {
		return "none (path search)"
	}
	return s
}

func runMatrix(tb *testbed.Testbed) {
	fmt.Printf("%-14s", "code")
	total := 0
	for _, site := range tb.Sites {
		fmt.Printf(" %-12s", site.Name)
	}
	fmt.Println()
	for _, code := range workload.All() {
		fmt.Printf("%-14s", code.Name)
		for _, site := range tb.Sites {
			ok, all := 0, 0
			for _, rec := range site.Stacks {
				all++
				family, _ := toolchain.FamilyFromKey(rec.CompilerFamily)
				comp := toolchain.Compiler{Family: family, Version: rec.CompilerVersion}
				if toolchain.CanCompile(code, comp) == nil {
					ok++
					total++
				}
			}
			fmt.Printf(" %2d/%-9d", ok, all)
		}
		fmt.Println()
	}
	fmt.Printf("\ncompilable (code, stack) combinations: %d\n", total)
}
