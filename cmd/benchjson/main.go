// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document, so benchmark numbers can be committed and diffed
// across PRs (BENCH_PR6.json) and uploaded as CI artifacts.
//
// It understands the standard benchmark line grammar — iteration count
// followed by value/unit pairs — which also covers custom b.ReportMetric
// units such as the registry's hit_rate.
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH.json
//
// With -merge it instead combines previously committed BENCH_*.json files
// into one trajectory array, so numbers are diffable across PRs:
//
//	go run ./cmd/benchjson -merge -out BENCH_trajectory.json BENCH_PR6.json BENCH_PR8.json
//
// Files are listed in argument order (or discovered as BENCH_*.json in the
// working directory when no arguments are given).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Metric is one value/unit pair from a benchmark line.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string   `json:"package"`
	Name       string   `json:"name"`
	Iterations int64    `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// Document is the emitted file: environment header plus every benchmark,
// in input order.
type Document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// TrajectoryEntry is one PR's document inside a merged trajectory, labeled
// by the source file it came from (BENCH_PR6.json -> "PR6").
type TrajectoryEntry struct {
	Label  string `json:"label"`
	Source string `json:"source"`
	Document
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	merge := flag.Bool("merge", false, "merge BENCH_*.json files (args, or ./BENCH_*.json) into a trajectory array")
	flag.Parse()

	var doc interface{}
	var err error
	if *merge {
		doc, err = mergeFiles(flag.Args())
	} else {
		doc, err = parse(bufio.NewScanner(os.Stdin))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// mergeFiles reads each benchmark document and returns the trajectory
// array. With no explicit paths it discovers BENCH_*.json in the working
// directory; discovered files sort by the numeric PR suffix (PR6 before
// PR10) so the trajectory reads oldest-to-newest.
func mergeFiles(paths []string) ([]TrajectoryEntry, error) {
	if len(paths) == 0 {
		glob, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			return nil, err
		}
		for _, p := range glob {
			// A previous merge output is not an input document.
			if !strings.Contains(filepath.Base(p), "trajectory") {
				paths = append(paths, p)
			}
		}
		sort.Slice(paths, func(i, j int) bool {
			ni, oki := prNumber(paths[i])
			nj, okj := prNumber(paths[j])
			if oki && okj && ni != nj {
				return ni < nj
			}
			if oki != okj {
				return oki // numbered entries precede smoke/trajectory files
			}
			return paths[i] < paths[j]
		})
	}
	entries := make([]TrajectoryEntry, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var d Document
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("%s: %v", p, err)
		}
		// A previously merged trajectory has no top-level benchmarks and
		// would nest silently — reject it instead.
		if len(d.Benchmarks) == 0 {
			return nil, fmt.Errorf("%s: no benchmarks (not a benchjson document?)", p)
		}
		entries = append(entries, TrajectoryEntry{
			Label:    strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json"),
			Source:   filepath.Base(p),
			Document: d,
		})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json files to merge")
	}
	return entries, nil
}

// prNumber extracts N from a BENCH_PR<N>.json basename.
func prNumber(path string) (int, bool) {
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "BENCH_PR") || !strings.HasSuffix(base, ".json") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_PR"), ".json"))
	if err != nil {
		return 0, false
	}
	return n, true
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return doc, nil
}

// parseBenchLine decodes "BenchmarkName-8  1000  123 ns/op  1.0 hit_rate".
// The name is kept verbatim, including any -N GOMAXPROCS suffix: with
// GOMAXPROCS=1 the suffix is absent, so stripping a trailing -N would eat
// real sub-benchmark suffixes like "shards-16" instead.
func parseBenchLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
