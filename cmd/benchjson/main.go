// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document, so benchmark numbers can be committed and diffed
// across PRs (BENCH_PR6.json) and uploaded as CI artifacts.
//
// It understands the standard benchmark line grammar — iteration count
// followed by value/unit pairs — which also covers custom b.ReportMetric
// units such as the registry's hit_rate.
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metric is one value/unit pair from a benchmark line.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string   `json:"package"`
	Name       string   `json:"name"`
	Iterations int64    `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// Document is the emitted file: environment header plus every benchmark,
// in input order.
type Document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return doc, nil
}

// parseBenchLine decodes "BenchmarkName-8  1000  123 ns/op  1.0 hit_rate".
// The name is kept verbatim, including any -N GOMAXPROCS suffix: with
// GOMAXPROCS=1 the suffix is absent, so stripping a trailing -N would eat
// real sub-benchmark suffixes like "shards-16" instead.
func parseBenchLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
