package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: feam/internal/feam
cpu: Test CPU
BenchmarkSurveyFleet/cold-8    	     100	   6520000 ns/op	      18.4 sites/ms
BenchmarkViewAccessors-8       	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	feam/internal/feam	2.1s
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(benchOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "Test CPU" {
		t.Errorf("header = %q/%q/%q", doc.GOOS, doc.GOARCH, doc.CPU)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Package != "feam/internal/feam" || b.Iterations != 100 {
		t.Errorf("first benchmark = %+v", b)
	}
	if len(b.Metrics) != 2 || b.Metrics[1].Unit != "sites/ms" {
		t.Errorf("first benchmark metrics = %+v", b.Metrics)
	}
	allocs := doc.Benchmarks[1]
	if len(allocs.Metrics) != 3 || allocs.Metrics[2].Unit != "allocs/op" || allocs.Metrics[2].Value != 0 {
		t.Errorf("allocs metrics = %+v", allocs.Metrics)
	}
}

func TestMergeFilesTrajectory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, pkg string) string {
		doc := `{"goos":"linux","benchmarks":[{"package":"` + pkg +
			`","name":"BenchmarkX","iterations":1,"metrics":[{"value":1,"unit":"ns/op"}]}]}`
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p6 := write("BENCH_PR6.json", "a")
	p9 := write("BENCH_PR9.json", "b")

	entries, err := mergeFiles([]string{p6, p9})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("merged %d entries, want 2", len(entries))
	}
	if entries[0].Label != "PR6" || entries[1].Label != "PR9" {
		t.Errorf("labels = %q, %q", entries[0].Label, entries[1].Label)
	}
	if entries[0].Source != "BENCH_PR6.json" {
		t.Errorf("source = %q", entries[0].Source)
	}
	if entries[1].Benchmarks[0].Package != "b" {
		t.Errorf("entry 1 package = %q", entries[1].Benchmarks[0].Package)
	}
}

func TestMergeFilesDiscoversAndOrders(t *testing.T) {
	dir := t.TempDir()
	doc := `{"benchmarks":[{"package":"p","name":"BenchmarkX","iterations":1,"metrics":[{"value":1,"unit":"ns/op"}]}]}`
	// Written out of order on purpose: numeric ordering must put PR6
	// before PR10, and the non-PR smoke file last.
	for _, name := range []string{"BENCH_PR10.json", "BENCH_smoke.json", "BENCH_PR6.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	entries, err := mergeFiles(nil)
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, e := range entries {
		labels = append(labels, e.Label)
	}
	want := []string{"PR6", "PR10", "smoke"}
	if strings.Join(labels, ",") != strings.Join(want, ",") {
		t.Errorf("discovered order = %v, want %v", labels, want)
	}
}

func TestMergeFilesRejectsEmptyDocument(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(p, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeFiles([]string{p}); err == nil {
		t.Fatal("merging a benchmark-free document should fail")
	}
}
