// Command feam-abi runs the symbol-level ABI static analyzer: it resolves
// every undefined dynamic symbol of a binary against each site's
// exported-symbol index and reports per-symbol verdicts (resolved,
// missing, version-mismatch, class-conflict). With -agreement it also
// runs the independent soname-closure checker over the same binary and
// reports whether the two tools agree — the cross-tool measurement of
// Sochat & Haines (arXiv:2212.03364).
//
// By default the analyzer checks a built-in minimal probe binary against
// every site of the paper's simulated testbed; -bin substitutes a real
// binary image, -fleet a YAML fleet (the feam-sim format), and -site
// narrows the sweep to one site.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"feam/internal/abicheck"
	"feam/internal/elfimg"
	"feam/internal/feam"
	"feam/internal/scenario"
	"feam/internal/testbed"
)

type abiConfig struct {
	fleet     string
	site      string
	bin       string
	name      string
	agreement bool
	jsonOut   bool
}

func main() {
	var cfg abiConfig
	flag.StringVar(&cfg.fleet, "fleet", "", "YAML fleet file (feam-sim format); default is the paper testbed")
	flag.StringVar(&cfg.site, "site", "", "check one site by name; default sweeps the whole fleet")
	flag.StringVar(&cfg.bin, "bin", "", "binary image to resolve; default is a built-in minimal probe binary")
	flag.StringVar(&cfg.name, "name", "", "binary name used in reports (default: basename of -bin, or \"app\")")
	flag.BoolVar(&cfg.agreement, "agreement", true, "also run the independent soname-closure checker and report agreement")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the full per-symbol reports as a JSON array")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "feam-abi:", err)
		os.Exit(1)
	}
}

func run(cfg abiConfig) error {
	bin, name, err := loadBinary(cfg)
	if err != nil {
		return err
	}
	tb, err := buildFleet(cfg.fleet)
	if err != nil {
		return err
	}
	sites := tb.Sites
	if cfg.site != "" {
		site, ok := tb.ByName[cfg.site]
		if !ok {
			return fmt.Errorf("unknown site %q", cfg.site)
		}
		sites = sites[:0:0]
		sites = append(sites, site)
	}

	eng := feam.New()
	reports := make([]*abicheck.Report, 0, len(sites))
	refused := 0
	for _, site := range sites {
		report, err := eng.ABICheck(context.Background(), site, bin, name, cfg.agreement)
		if err != nil {
			return fmt.Errorf("site %s: %w", site.Name, err)
		}
		reports = append(reports, report)
		if !report.OK() {
			refused++
		}
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, r := range reports {
			fmt.Printf("%-12s %s\n", r.Site, r.Summary())
			if r.Agreement != nil && !r.Agreement.Agree {
				fmt.Printf("%-12s   tools disagree: %s\n", "", r.Agreement.Detail)
			}
			if !r.OK() {
				for _, line := range r.Diff() {
					fmt.Printf("%-12s   %s\n", "", line)
				}
			}
		}
	}
	if refused > 0 {
		// Distinct exit code so scripts can branch on "analysis ran but
		// some site refuses the binary" without parsing output.
		os.Exit(2)
	}
	return nil
}

// loadBinary reads -bin, or synthesizes the same minimal probe binary the
// server uses for binary-less requests.
func loadBinary(cfg abiConfig) ([]byte, string, error) {
	if cfg.bin == "" {
		// The probe imports libc's base-version exports plus unversioned
		// malloc, so the default run exercises every lookup path of the
		// resolver rather than reporting an empty symbol table.
		img := elfimg.MustBuild(elfimg.Spec{
			Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
			Interp: "/lib64/ld-linux-x86-64.so.2",
			Needed: []string{"libc.so.6"},
			VerNeeds: []elfimg.VerNeed{
				{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_2.3.4"}},
			},
			Imports: []elfimg.ImportedSymbol{
				{Name: "printf", Version: "GLIBC_2.0", Library: "libc.so.6"},
				{Name: "exit", Version: "GLIBC_2.0", Library: "libc.so.6"},
				{Name: "memcpy", Version: "GLIBC_2.3.4", Library: "libc.so.6"},
				{Name: "malloc"},
			},
		})
		name := cfg.name
		if name == "" {
			name = "app"
		}
		return img, name, nil
	}
	data, err := os.ReadFile(cfg.bin)
	if err != nil {
		return nil, "", err
	}
	name := cfg.name
	if name == "" {
		name = filepath.Base(cfg.bin)
	}
	return data, name, nil
}

// buildFleet materializes the site set: a YAML fleet when -fleet is given,
// the paper's simulated testbed otherwise.
func buildFleet(path string) (*testbed.Testbed, error) {
	if path == "" {
		return testbed.Build()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fs, err := scenario.LoadFleet(data)
	if err != nil {
		return nil, err
	}
	return scenario.BuildFleet(fs)
}
