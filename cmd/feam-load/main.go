// Command feam-load drives a running feam-server with N concurrent
// clients for a fixed duration and reports throughput and latency
// percentiles. Every client POSTs single /v1/predict requests using the
// server's built-in probe binary, rotating across the fleet, so many
// clients asking about the same (binary, site) pair land in the same
// coalesced flight — the report's hit-rate shows how much work the
// singleflight layer saved.
//
// Usage:
//
//	feam-load [-addr http://localhost:8080] [-clients 32] [-duration 10s] \
//	          [-sites 0] [-hot 0.25] [-out BENCH_PR8.json]
//
// -hot sends that fraction of each client's requests to the first fleet
// site instead of rotating, modelling the popular-binary hot spot that
// makes coalescing pay; at 0 every request rotates and flights rarely
// overlap.
//
// The JSON report carries total requests, requests/sec, p50/p90/p99
// latency in milliseconds, the non-2xx count, and the server-side
// coalescing hit-rate scraped from /metrics.json. Exit status is non-zero
// if any request failed or returned a non-2xx status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type result struct {
	latency time.Duration
	ok      bool
}

type report struct {
	Addr            string  `json:"addr"`
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	Sites           int     `json:"sites"`
	Requests        int     `json:"requests"`
	NonOK           int     `json:"non_2xx"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	P50Millis       float64 `json:"p50_ms"`
	P90Millis       float64 `json:"p90_ms"`
	P99Millis       float64 `json:"p99_ms"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	Coalesced       int64   `json:"coalesced"`
	PredictLeads    int64   `json:"predict_leads"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "feam-server base URL")
		clients  = flag.Int("clients", 32, "concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		sites    = flag.Int("sites", 0, "rotate across this many fleet sites (0 = all)")
		hot      = flag.Float64("hot", 0.25, "fraction of requests aimed at one hot site (0..1)")
		out      = flag.String("out", "BENCH_PR8.json", "report path")
	)
	flag.Parse()
	if err := run(*addr, *clients, *duration, *sites, *hot, *out); err != nil {
		fmt.Fprintln(os.Stderr, "feam-load:", err)
		os.Exit(1)
	}
}

func run(addr string, clients int, duration time.Duration, siteCap int, hot float64, out string) error {
	addr = strings.TrimRight(addr, "/")
	names, err := fleetSites(addr)
	if err != nil {
		return fmt.Errorf("listing fleet: %w", err)
	}
	if len(names) == 0 {
		return fmt.Errorf("server at %s reports an empty fleet", addr)
	}
	if siteCap > 0 && siteCap < len(names) {
		names = names[:siteCap]
	}
	fmt.Fprintf(os.Stderr, "feam-load: %d clients x %s against %d sites at %s\n",
		clients, duration, len(names), addr)

	// One transport with enough idle connections that clients are not
	// serialized by connection churn.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = clients * 2
	tr.MaxIdleConnsPerHost = clients * 2
	hc := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	var (
		mu      sync.Mutex
		results []result
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Every hotEvery-th request targets the hot site; the rest
			// rotate across the fleet.
			hotEvery := 0
			if hot > 0 {
				hotEvery = int(1 / hot)
			}
			var local []result
			for j := 0; time.Now().Before(deadline); j++ {
				site := names[(c+j)%len(names)]
				if hotEvery > 0 && j%hotEvery == 0 {
					site = names[0]
				}
				body := fmt.Sprintf(`{"site":%q,"name":"app"}`, site)
				t0 := time.Now()
				resp, err := hc.Post(addr+"/v1/predict", "application/json",
					strings.NewReader(body))
				lat := time.Since(t0)
				ok := err == nil && resp.StatusCode/100 == 2
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				local = append(local, result{latency: lat, ok: ok})
			}
			mu.Lock()
			results = append(results, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Addr:            addr,
		Clients:         clients,
		DurationSeconds: elapsed.Seconds(),
		Sites:           len(names),
		Requests:        len(results),
	}
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		if !r.ok {
			rep.NonOK++
		}
		lats = append(lats, r.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.RequestsPerSec = float64(len(results)) / elapsed.Seconds()
	rep.P50Millis = millisAt(lats, 0.50)
	rep.P90Millis = millisAt(lats, 0.90)
	rep.P99Millis = millisAt(lats, 0.99)
	rep.PredictLeads, rep.Coalesced, rep.CoalesceHitRate = scrapeCoalescing(hc, addr)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"feam-load: %d requests in %.1fs = %.0f req/s (p50 %.2fms p99 %.2fms, coalesce %.0f%%, non-2xx %d) -> %s\n",
		rep.Requests, rep.DurationSeconds, rep.RequestsPerSec,
		rep.P50Millis, rep.P99Millis, rep.CoalesceHitRate*100, rep.NonOK, out)
	if rep.NonOK > 0 {
		return fmt.Errorf("%d of %d requests were not 2xx", rep.NonOK, rep.Requests)
	}
	return nil
}

// fleetSites asks the server which sites it serves, walking the v1
// listing's cursor pages so large fleets arrive completely.
func fleetSites(addr string) ([]string, error) {
	var names []string
	cursor := ""
	for {
		url := addr + "/v1/sites?limit=256"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		var env struct {
			Data struct {
				Sites []struct {
					Name string `json:"name"`
				} `json:"sites"`
				NextCursor string `json:"next_cursor"`
			} `json:"data"`
			Error *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			if env.Error != nil {
				return nil, fmt.Errorf("GET /v1/sites: %s: %s", env.Error.Code, env.Error.Message)
			}
			return nil, fmt.Errorf("GET /v1/sites: status %d", resp.StatusCode)
		}
		for _, s := range env.Data.Sites {
			names = append(names, s.Name)
		}
		if env.Data.NextCursor == "" {
			return names, nil
		}
		cursor = env.Data.NextCursor
	}
}

// scrapeCoalescing reads the server's request counters from /metrics.json.
// A scrape failure degrades to zeros rather than failing the run — the
// latency numbers stand on their own.
func scrapeCoalescing(hc *http.Client, addr string) (leads, coalesced int64, rate float64) {
	resp, err := hc.Get(addr + "/metrics.json")
	if err != nil {
		return 0, 0, 0
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, 0, 0
	}
	total := snap.Counters["http_predict_requests"]
	coalesced = snap.Counters["http_predict_coalesced"]
	leads = total - coalesced
	if total > 0 {
		rate = float64(coalesced) / float64(total)
	}
	return leads, coalesced, rate
}

// millisAt returns the q-quantile of sorted latencies in milliseconds.
func millisAt(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
