// Library-resolution walkthrough: the paper's §IV resolution model in
// action, including the case it cannot fix.
//
// Scenario A (resolvable): an MVAPICH2 1.2 binary built on Ranger needs
// libmpich.so.1.0 and the GCC-3.4 Fortran runtime libg2c.so.0 — neither
// exists at India. FEAM's source phase copies both from Ranger; the target
// phase verifies the copies recursively and stages them, turning a failing
// migration into a working one.
//
// Scenario B (unresolvable): the reverse direction. An MVAPICH2 1.7a2
// binary from India needs libmpich.so.1.2 at Ranger, but India's copy
// references GLIBC_2.5 and Ranger only has glibc 2.3.4 — the copy fails the
// recursive C-library check, exactly the incompatibility class the paper
// reports for the unresolved half of missing-library failures.
//
// Run with: go run ./examples/libresolution
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"feam/internal/batch"
	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

func main() {
	tb, err := testbed.Build()
	if err != nil {
		log.Fatal(err)
	}
	sim := execsim.NewSimulator(7)
	runner := experiment.NewSimRunner(sim)
	eng := feam.New()

	fmt.Println("=== Scenario A: resolvable (ranger -> india) ===")
	scenarioA(eng, tb, sim, runner)
	fmt.Println()
	fmt.Println("=== Scenario B: unresolvable copy (india -> ranger) ===")
	scenarioB(eng, tb, runner)
}

func scenarioA(eng *feam.Engine, tb *testbed.Testbed, sim *execsim.Simulator, runner feam.RunnerFunc) {
	ranger, india := tb.ByName["ranger"], tb.ByName["india"]
	art := compile(ranger, "mvapich2-1.2-gnu", "mg")
	place(ranger, india, art)

	// Source phase at the guaranteed execution environment.
	bundle := sourcePhase(eng, tb, ranger, "mvapich2-1.2-gnu", art, runner)
	fmt.Printf("bundle from ranger: %d libraries, %.1f MB\n",
		len(bundle.Libs), float64(bundle.Size())/(1<<20))

	// Basic prediction at india fails on missing libraries...
	basic := targetPhase(eng, tb, india, art, nil, runner)
	fmt.Printf("basic prediction: ready=%v, missing=%v\n", basic.Ready, basic.MissingLibs)

	// ...and the extended prediction resolves them.
	ext := targetPhase(eng, tb, india, art, bundle, runner)
	fmt.Printf("extended prediction: ready=%v, resolved=%v\n", ext.Ready, ext.ResolvedLibs)

	// Prove it with the ground-truth simulator.
	rec := india.FindStack(ext.StackKey())
	snap := india.SnapshotEnv()
	if err := testbed.ActivateStack(india, ext.StackKey()); err != nil {
		log.Fatal(err)
	}
	without := sim.Run(execsim.Request{Art: art, Site: india, Stack: rec})
	with := sim.Run(execsim.Request{Art: art, Site: india, Stack: rec, ExtraLibDirs: ext.ExtraLibDirs()})
	india.RestoreEnv(snap)
	fmt.Printf("actual execution without staging: %s (%s)\n", outcome(without), without.Detail)
	fmt.Printf("actual execution with staging:    %s\n", outcome(with))
}

func scenarioB(eng *feam.Engine, tb *testbed.Testbed, runner feam.RunnerFunc) {
	india, ranger := tb.ByName["india"], tb.ByName["ranger"]
	art := compile(india, "mvapich2-1.7a2-gnu", "is")
	place(india, ranger, art)

	bundle := sourcePhase(eng, tb, india, "mvapich2-1.7a2-gnu", art, runner)
	pred := targetPhase(eng, tb, ranger, art, bundle, runner)
	fmt.Printf("extended prediction at ranger: ready=%v\n", pred.Ready)
	for lib, why := range pred.UnresolvedLibs {
		fmt.Printf("  unresolvable %s: %s\n", lib, why)
	}
}

func compile(site *sitemodel.Site, stackKey, code string) *toolchain.Artifact {
	rec := site.FindStack(stackKey)
	art, err := toolchain.Compile(workload.Find(code), rec, site)
	if err != nil {
		log.Fatal(err)
	}
	return art
}

func place(src, dst *sitemodel.Site, art *toolchain.Artifact) {
	for _, s := range []*sitemodel.Site{src, dst} {
		if err := s.FS().WriteFile("/home/user/"+art.Name, art.Bytes); err != nil {
			log.Fatal(err)
		}
	}
}

func sourcePhase(eng *feam.Engine, tb *testbed.Testbed, site *sitemodel.Site, stackKey string, art *toolchain.Artifact, runner feam.RunnerFunc) *feam.Bundle {
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	if err := testbed.ActivateStack(site, stackKey); err != nil {
		log.Fatal(err)
	}
	bundle, _, err := eng.RunSourcePhase(context.Background(), config(tb, site.Name, "source", "/home/user/"+art.Name), site, runner)
	if err != nil {
		log.Fatal(err)
	}
	return bundle
}

func targetPhase(eng *feam.Engine, tb *testbed.Testbed, site *sitemodel.Site, art *toolchain.Artifact, bundle *feam.Bundle, runner feam.RunnerFunc) *feam.Prediction {
	pred, _, err := eng.RunTargetPhase(context.Background(), config(tb, site.Name, "target", "/home/user/"+art.Name), site, bundle, runner)
	if err != nil {
		log.Fatal(err)
	}
	return pred
}

func config(tb *testbed.Testbed, siteName, phase, binary string) *feam.Config {
	spec := tb.Specs[siteName]
	mk := func(tasks int) string {
		return batch.Generate(batch.ScriptSpec{
			Manager: spec.Manager, JobName: "feam", Queue: "debug",
			Nodes: 1, Tasks: tasks, WallTime: 10 * time.Minute, Command: batch.CmdPlaceholder,
		})
	}
	return &feam.Config{Phase: phase, BinaryPath: binary,
		SerialScript: mk(1), ParallelScript: mk(4)}
}

func outcome(r execsim.Result) string {
	if r.Success() {
		return "SUCCESS"
	}
	return "FAILED: " + r.Class.String()
}
