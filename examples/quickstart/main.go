// Quickstart: predict whether one MPI binary is ready to execute at a new
// computing site.
//
// The example builds the simulated five-site testbed, compiles the NPB
// conjugate-gradient benchmark at FutureGrid India with Open MPI, migrates
// the binary to the Fir cluster, and asks FEAM for a basic prediction
// (target phase only, no source-site information).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

func main() {
	// 1. A simulated world: five sites with real (in-memory) filesystems,
	//    ELF libraries, compilers and MPI installations.
	tb, err := testbed.Build()
	if err != nil {
		log.Fatal(err)
	}
	india := tb.ByName["india"]
	fir := tb.ByName["fir"]

	// The engine owns the prediction pipeline: memoized binary and
	// environment descriptions, the determinant registry, and per-site
	// locks for concurrent use. One engine serves any number of
	// evaluations.
	ctx := context.Background()
	eng := feam.New()

	// 2. "Compile" the benchmark at india: the artifact is a genuine ELF
	//    image whose NEEDED list, symbol versions and .comment section are
	//    what a real mpicc would produce.
	stack := india.FindStack("openmpi-1.4-gnu")
	art, err := toolchain.Compile(workload.Find("cg"), stack, india)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s (%d bytes)\n", art.Name, art.Size())

	// 3. Describe the binary (FEAM's BDC) and discover the target site
	//    (FEAM's EDC).
	desc, err := eng.Describe(ctx, art.Bytes, art.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary: %s, MPI implementation: %s, required glibc: %s\n",
		desc.Format, desc.MPIImpl, desc.RequiredGlibc)

	env, err := eng.Discover(ctx, fir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %s: glibc %s, %d MPI stacks discovered via %s\n",
		env.SiteName, env.Glibc, len(env.Available), orPathSearch(env.EnvTool))

	// 4. Evaluate (FEAM's TEC). The runner executes hello-world probe
	//    programs through the ground-truth execution simulator, the way the
	//    real framework submits probes through the batch system.
	runner := experiment.NewSimRunner(execsim.NewSimulator(1))
	pred, err := eng.Evaluate(ctx, desc, art.Bytes, env, fir, feam.EvalOptions{Runner: runner})
	if err != nil {
		log.Fatal(err)
	}
	if pred.Ready {
		fmt.Printf("prediction: READY — selected stack %s\n", pred.StackKey())
		fmt.Printf("configuration script:\n%s", pred.ConfigScript)
	} else {
		fmt.Println("prediction: NOT READY")
		for _, r := range pred.Reasons {
			fmt.Println("  -", r)
		}
	}
}

func orPathSearch(tool string) string {
	if tool == "" {
		return "path search"
	}
	return tool
}
