// Site survey: run FEAM's Environment Discovery Component against every
// site in the simulated testbed and regenerate Table II from what the EDC
// actually discovers — not from the testbed's construction parameters.
//
// This demonstrates the three discovery mechanisms the paper describes:
// Environment Modules (ranger, forge, india), SoftEnv (blacklight), and
// plain filesystem/path search (fir), plus the C-library version probes
// (executing the C library and parsing its banner).
//
// Run with: go run ./examples/sitesurvey
package main

import (
	"context"
	"fmt"
	"log"

	"feam/internal/feam"
	"feam/internal/report"
	"feam/internal/testbed"
)

func main() {
	tb, err := testbed.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Surveys run through an engine, which memoizes each site's
	// description — repeat surveys of an unchanged site are free.
	ctx := context.Background()
	eng := feam.New()

	fmt.Println("What the EDC discovers at each site:")
	fmt.Println()
	for _, site := range tb.Sites {
		env, err := eng.Discover(ctx, site)
		if err != nil {
			log.Fatalf("discovery at %s: %v", site.Name, err)
		}
		fmt.Printf("%s:\n", env.SiteName)
		fmt.Printf("  ISA        %s (%d-bit, uname -p: %s)\n", env.ISA, env.Bits, env.UnameProcessor)
		fmt.Printf("  OS         %s kernel %s — %s\n", env.OSType, env.OSVersion, env.Distro)
		fmt.Printf("  C library  %s (via %s)\n", env.Glibc, env.GlibcSource)
		tool := env.EnvTool
		if tool == "" {
			tool = "none — falling back to path search"
		}
		fmt.Printf("  env tool   %s\n", tool)
		for _, s := range env.Available {
			fmt.Printf("  stack      %-26s %-9s %-7s %s %s\n",
				s.Key, s.Impl, s.ImplVersion, s.CompilerFamily, s.CompilerVersion)
		}
		fmt.Println()
	}

	// A second sweep hits the engine's environment cache site for site.
	for _, site := range tb.Sites {
		if _, err := eng.Discover(ctx, site); err != nil {
			log.Fatalf("re-survey at %s: %v", site.Name, err)
		}
	}
	hits := eng.Metrics().Counter("edc_hits").Load()
	misses := eng.Metrics().Counter("edc_misses").Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("engine after re-survey: %.0f%% EDC cache hit rate (%d lookups)\n\n",
		100*rate, hits+misses)

	fmt.Println("Reference (testbed ground truth, Table II):")
	fmt.Println()
	fmt.Print(report.Table2(tb))
}
