// Migration study: the paper's complete evaluation from the public API.
//
// The example compiles the NPB and SPEC MPI2007 test set with all 26 MPI
// stacks across the five sites, migrates every binary to every site with a
// matching MPI implementation, forms basic and extended FEAM predictions
// for each pair, executes each binary with and without the resolution
// model, and prints Tables III and IV next to the paper's published
// numbers, plus the failure breakdown and runtime statistics of §VI.C.
//
// Run with: go run ./examples/migrationstudy   (takes a minute or two)
package main

import (
	"context"
	"fmt"
	"log"

	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/report"
	"feam/internal/testbed"
	"feam/internal/workload"
)

func main() {
	tb, err := testbed.Build()
	if err != nil {
		log.Fatal(err)
	}
	sim := execsim.NewSimulator(2013)

	ts, err := experiment.BuildTestSet(tb, sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d NAS + %d SPEC binaries (paper: 110 + 147)\n",
		ts.CountBySuite(workload.NPB), ts.CountBySuite(workload.SPECMPI))
	fmt.Printf("attrition: %d compile failures, %d failed at their compile site\n",
		len(ts.CompileFailures), len(ts.CompileSiteFailures))

	migs := experiment.Migrations(tb, ts)
	fmt.Printf("migration pairs (matching MPI implementation only): %d\n\n", len(migs))

	// One engine drives the whole matrix: its caches mean each site is
	// surveyed only when its state actually changed, and its per-site
	// locks let one worker per site run concurrently.
	eng := feam.New()
	ev, err := experiment.RunWithEngine(context.Background(), eng, tb, ts, sim, len(tb.Sites))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %s\n\n", report.EngineActivity(eng.Metrics()))

	fmt.Print(report.Table3(ev))
	fmt.Println()
	fmt.Print(report.Table4(ev))
	fmt.Println()
	fmt.Print(report.Stats(ev))
	fmt.Println()
	fmt.Print(report.Effort(ev, tb))

	// A few illustrative pairs.
	fmt.Println("\nSample migrations:")
	shown := 0
	for _, p := range ev.Pairs {
		interesting := len(p.Extended.ResolvedLibs) > 0 && shown < 3
		if !interesting {
			continue
		}
		shown++
		fmt.Printf("  %s -> %s: basic=%v extended=%v, resolved %d libraries, run before=%v after=%v\n",
			p.Bin.ID(), p.Target, p.Basic.Ready, p.Extended.Ready,
			len(p.Extended.ResolvedLibs), p.ActualBefore.Success(), p.ActualAfter.Success())
	}
}
