package toolchain

import (
	"fmt"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/sitemodel"
	"feam/internal/workload"
)

// GroundTruth carries the hidden attributes of a compiled binary that the
// execution simulator needs. FEAM's prediction model never reads this
// struct; everything it may use is present in the binary's ELF metadata.
type GroundTruth struct {
	// CodeName and Suite identify the workload ("" for hello-world
	// programs).
	CodeName string
	Suite    workload.Suite
	// MPILevel grades MPI feature usage (0 for serial programs).
	MPILevel int

	// BuildSite is where the binary was compiled.
	BuildSite string
	// StackKey identifies the MPI stack used ("" for serial programs).
	StackKey string
	// Impl/ImplVersion name the MPI implementation linked in.
	Impl        string
	ImplVersion string
	// MPIABIEpoch is the implementation ABI generation linked against.
	MPIABIEpoch int

	// CompilerFamily/CompilerVersion identify the compiler.
	CompilerFamily  string
	CompilerVersion string
	// RuntimeEpochs maps runtime-library sonames to the minimum hidden ABI
	// epoch the binary requires of them.
	RuntimeEpochs map[string]int
	// FeatureLevel is the CPU ISA extension level the generated code needs.
	FeatureLevel int
	// BuildGlibc is the C library release of the build site.
	BuildGlibc libver.Version
	// Hello marks MPI hello-world test programs.
	Hello bool
	// Serial marks non-MPI programs.
	Serial bool
	// Static marks statically linked binaries: no dynamic dependencies,
	// but still launch-protocol bound to their MPI implementation.
	Static bool
}

// Artifact is a compiled binary plus its ground truth.
type Artifact struct {
	// Name is a descriptive identifier, e.g. "bt.ranger.openmpi-1.3-intel".
	Name string
	// Bytes is the complete ELF image.
	Bytes []byte
	Truth GroundTruth
}

// Size returns the image size in bytes.
func (a *Artifact) Size() int { return len(a.Bytes) }

// CompileError describes why a compilation failed.
type CompileError struct {
	Code   string
	Stack  string
	Reason string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("toolchain: cannot compile %s with %s: %s", e.Code, e.Stack, e.Reason)
}

// baseDeps is the universal dynamically linked base: every binary gets
// these, with glibc symbol-version references per the workload's demand.
func baseDeps() []string {
	return []string{"libm.so.6", "libpthread.so.0", "libc.so.6"}
}

// CanCompile applies the build-time compatibility rules that shrink the
// paper's test set: missing Fortran 90 support in pre-GCC-4 toolchains and
// code/compiler incompatibilities observed in practice.
func CanCompile(code *workload.Code, c Compiler) error {
	if !languageSupported(c, code.Lang) {
		return &CompileError{Code: code.Name, Stack: c.String(),
			Reason: fmt.Sprintf("no Fortran 90 compiler in %s", c)}
	}
	// 115.fds4 and 126.lammps exercise language corners the simulated PGI
	// front end rejects (mirroring the paper's "some benchmarks would not
	// compile with certain MPI stack combinations").
	if c.Family == PGI && (code.Name == "115.fds4" || code.Name == "126.lammps") {
		return &CompileError{Code: code.Name, Stack: c.String(), Reason: "PGI front-end rejects source"}
	}
	// The NPB 2.4 reference build system hard-codes g77-style flags its
	// Fortran kernels need; the PGI driver rejects them.
	if c.Family == PGI && code.Suite == workload.NPB && code.Lang == workload.Fortran77 {
		return &CompileError{Code: code.Name, Stack: c.String(), Reason: "NPB 2.4 make.def flags unsupported by PGI"}
	}
	return nil
}

// Compile builds an application binary for code using the given stack
// record at the build site. The stack must be registered at the site and
// its compiler installed there.
func Compile(code *workload.Code, stack *sitemodel.StackRecord, site *sitemodel.Site) (*Artifact, error) {
	family, ok := FamilyFromKey(stack.CompilerFamily)
	if !ok {
		return nil, fmt.Errorf("toolchain: unknown compiler family %q", stack.CompilerFamily)
	}
	comp := Compiler{Family: family, Version: stack.CompilerVersion}
	if _, found := FindCompiler(site, family); !found {
		return nil, &CompileError{Code: code.Name, Stack: stack.Key, Reason: "compiler not installed at site"}
	}
	if err := CanCompile(code, comp); err != nil {
		return nil, err
	}
	impl, ok := mpistack.ImplFromKey(stack.Impl)
	if !ok {
		return nil, fmt.Errorf("toolchain: unknown MPI implementation %q", stack.Impl)
	}
	rel := mpistack.Release{Impl: impl, Version: stack.ImplVersion}

	needed, verNeeds, imports, runtimeEpochs := linkSets(code.Lang, code.GlibcDemand(site.Glibc), comp, &rel, stack.Interconnect, code.MPILevel)

	img, err := elfimg.Build(elfimg.Spec{
		Class:    site.Arch.Class,
		Machine:  site.Arch.Machine,
		Type:     elfimg.TypeExec,
		Interp:   interpFor(site),
		Needed:   needed,
		VerNeeds: verNeeds,
		Imports:  imports,
		Exports:  []elfimg.ExportedSymbol{{Name: "main"}},
		Comments: buildComments(comp, site),
		TextSize: code.TextKB << 10,
	})
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Name:  fmt.Sprintf("%s.%s.%s", code.Name, site.Name, stack.Key),
		Bytes: img,
		Truth: GroundTruth{
			CodeName: code.Name, Suite: code.Suite, MPILevel: code.MPILevel,
			BuildSite: site.Name, StackKey: stack.Key,
			Impl: stack.Impl, ImplVersion: stack.ImplVersion, MPIABIEpoch: rel.ABIEpoch(),
			CompilerFamily: stack.CompilerFamily, CompilerVersion: stack.CompilerVersion,
			RuntimeEpochs: runtimeEpochs,
			FeatureLevel:  comp.FeatureLevel(site.Arch.FeatureLevel),
			BuildGlibc:    site.Glibc.Clone(),
		},
	}, nil
}

// CompileStatic builds a statically linked application binary. It requires
// the stack to have been installed with static archives — the paper notes
// that at sites without them, "scientists ... do not have the option to
// prepare statically linked binaries for migration" (§VI.C). The resulting
// binary has no dynamic dependencies, which also means FEAM's Table I
// identification cannot determine its MPI implementation: the launcher
// protocol still binds it to the implementation it embeds.
func CompileStatic(code *workload.Code, stack *sitemodel.StackRecord, site *sitemodel.Site) (*Artifact, error) {
	family, ok := FamilyFromKey(stack.CompilerFamily)
	if !ok {
		return nil, fmt.Errorf("toolchain: unknown compiler family %q", stack.CompilerFamily)
	}
	comp := Compiler{Family: family, Version: stack.CompilerVersion}
	if _, found := FindCompiler(site, family); !found {
		return nil, &CompileError{Code: code.Name, Stack: stack.Key, Reason: "compiler not installed at site"}
	}
	if err := CanCompile(code, comp); err != nil {
		return nil, err
	}
	if !stack.StaticLibs {
		return nil, &CompileError{Code: code.Name, Stack: stack.Key,
			Reason: "MPI implementation not installed with static libraries"}
	}
	impl, ok := mpistack.ImplFromKey(stack.Impl)
	if !ok {
		return nil, fmt.Errorf("toolchain: unknown MPI implementation %q", stack.Impl)
	}
	rel := mpistack.Release{Impl: impl, Version: stack.ImplVersion}
	img, err := elfimg.Build(elfimg.Spec{
		Class:   site.Arch.Class,
		Machine: site.Arch.Machine,
		Type:    elfimg.TypeExec,
		// Static binaries have no interpreter, NEEDED entries, or version
		// references; everything is embedded.
		Comments: buildComments(comp, site),
		TextSize: (code.TextKB + 2048) << 10, // static images are much larger
	})
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Name:  fmt.Sprintf("%s.%s.%s.static", code.Name, site.Name, stack.Key),
		Bytes: img,
		Truth: GroundTruth{
			CodeName: code.Name, Suite: code.Suite, MPILevel: code.MPILevel,
			BuildSite: site.Name, StackKey: stack.Key,
			Impl: stack.Impl, ImplVersion: stack.ImplVersion, MPIABIEpoch: rel.ABIEpoch(),
			CompilerFamily: stack.CompilerFamily, CompilerVersion: stack.CompilerVersion,
			FeatureLevel: comp.FeatureLevel(site.Arch.FeatureLevel),
			BuildGlibc:   site.Glibc.Clone(),
			Static:       true,
		},
	}, nil
}

// CompileHello builds the MPI "hello world" test program FEAM uses to probe
// stack usability and cross-site compatibility. It is a tiny C program:
// basic MPI usage, minimal glibc demand, but the same compiler runtime and
// MPI link set as a real application.
func CompileHello(stack *sitemodel.StackRecord, site *sitemodel.Site) (*Artifact, error) {
	family, ok := FamilyFromKey(stack.CompilerFamily)
	if !ok {
		return nil, fmt.Errorf("toolchain: unknown compiler family %q", stack.CompilerFamily)
	}
	comp := Compiler{Family: family, Version: stack.CompilerVersion}
	impl, ok := mpistack.ImplFromKey(stack.Impl)
	if !ok {
		return nil, fmt.Errorf("toolchain: unknown MPI implementation %q", stack.Impl)
	}
	rel := mpistack.Release{Impl: impl, Version: stack.ImplVersion}

	demand := libver.GlibcSymbolVersions(site.Glibc)
	if len(demand) > 1 {
		demand = demand[:1]
	}
	needed, verNeeds, imports, runtimeEpochs := linkSets(workload.C, demand, comp, &rel, stack.Interconnect, 1)
	img, err := elfimg.Build(elfimg.Spec{
		Class:    site.Arch.Class,
		Machine:  site.Arch.Machine,
		Type:     elfimg.TypeExec,
		Interp:   interpFor(site),
		Needed:   needed,
		VerNeeds: verNeeds,
		Imports:  imports,
		Exports:  []elfimg.ExportedSymbol{{Name: "main"}},
		Comments: buildComments(comp, site),
		TextSize: 8 << 10,
	})
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Name:  fmt.Sprintf("hello.%s.%s", site.Name, stack.Key),
		Bytes: img,
		Truth: GroundTruth{
			MPILevel: 1, Hello: true,
			BuildSite: site.Name, StackKey: stack.Key,
			Impl: stack.Impl, ImplVersion: stack.ImplVersion, MPIABIEpoch: rel.ABIEpoch(),
			CompilerFamily: stack.CompilerFamily, CompilerVersion: stack.CompilerVersion,
			RuntimeEpochs: runtimeEpochs,
			FeatureLevel:  comp.FeatureLevel(site.Arch.FeatureLevel),
			BuildGlibc:    site.Glibc.Clone(),
		},
	}, nil
}

// CompileSerialHello builds the non-MPI hello-world used for basic C
// library and environment testing.
func CompileSerialHello(comp Compiler, site *sitemodel.Site) (*Artifact, error) {
	demand := libver.GlibcSymbolVersions(site.Glibc)
	if len(demand) > 1 {
		demand = demand[:1]
	}
	needed := []string{"libc.so.6"}
	verNeeds := []elfimg.VerNeed{{File: "libc.so.6", Versions: demand}}
	img, err := elfimg.Build(elfimg.Spec{
		Class:    site.Arch.Class,
		Machine:  site.Arch.Machine,
		Type:     elfimg.TypeExec,
		Interp:   interpFor(site),
		Needed:   needed,
		VerNeeds: verNeeds,
		Comments: buildComments(comp, site),
		TextSize: 4 << 10,
	})
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Name:  fmt.Sprintf("hello-serial.%s", site.Name),
		Bytes: img,
		Truth: GroundTruth{
			Serial: true, Hello: true, BuildSite: site.Name,
			CompilerFamily: comp.Family.Key(), CompilerVersion: comp.Version,
			FeatureLevel: comp.FeatureLevel(site.Arch.FeatureLevel),
			BuildGlibc:   site.Glibc.Clone(),
		},
	}, nil
}

// mpiImportsFor returns the MPI entry points a binary of the given feature
// level imports (unversioned — the MPI libraries of this era did not use
// symbol versioning, which is exactly why ABI drift went undetected).
func mpiImportsFor(mpiLevel int) []elfimg.ImportedSymbol {
	syms := []elfimg.ImportedSymbol{
		{Name: "MPI_Init"}, {Name: "MPI_Comm_rank"}, {Name: "MPI_Comm_size"},
		{Name: "MPI_Send"}, {Name: "MPI_Recv"}, {Name: "MPI_Finalize"},
	}
	if mpiLevel >= 2 {
		syms = append(syms, elfimg.ImportedSymbol{Name: "MPI_Allreduce"},
			elfimg.ImportedSymbol{Name: "MPI_Bcast"}, elfimg.ImportedSymbol{Name: "MPI_Alltoall"})
	}
	if mpiLevel >= 3 {
		syms = append(syms, elfimg.ImportedSymbol{Name: "MPI_Put"},
			elfimg.ImportedSymbol{Name: "MPI_Win_create"},
			elfimg.ImportedSymbol{Name: "MPI_Type_create_struct"})
	}
	return syms
}

// linkSets assembles the NEEDED list, version references, symbol imports,
// and hidden runtime-epoch requirements for a binary: MPI libraries first
// (as the wrappers emit them), then compiler runtimes, then the universal
// base.
func linkSets(lang workload.Language, glibcDemand []string, comp Compiler, rel *mpistack.Release, interconnect string, mpiLevel int) ([]string, []elfimg.VerNeed, []elfimg.ImportedSymbol, map[string]int) {
	var needed []string
	var verNeeds []elfimg.VerNeed
	var imports []elfimg.ImportedSymbol
	runtimeEpochs := map[string]int{}

	if rel != nil {
		needed = append(needed, rel.MPISonames(lang.UsesFortran(), interconnect)...)
		imports = append(imports, mpiImportsFor(mpiLevel)...)
	}
	for _, dep := range comp.RuntimeDeps(lang) {
		needed = append(needed, dep.Soname)
		if len(dep.Versions) > 0 {
			verNeeds = append(verNeeds, elfimg.VerNeed{File: dep.Soname, Versions: dep.Versions})
		}
		version := ""
		if len(dep.Versions) > 0 {
			version = dep.Versions[len(dep.Versions)-1]
		}
		for _, sym := range dep.Symbols {
			im := elfimg.ImportedSymbol{Name: sym}
			if version != "" {
				im.Version, im.Library = version, dep.Soname
			}
			imports = append(imports, im)
		}
		if dep.Epoch > 0 {
			runtimeEpochs[dep.Soname] = dep.Epoch
		}
	}
	needed = append(needed, baseDeps()...)
	if len(glibcDemand) > 0 {
		verNeeds = append(verNeeds, elfimg.VerNeed{File: "libc.so.6", Versions: glibcDemand})
		// libm references track libc.
		verNeeds = append(verNeeds, elfimg.VerNeed{File: "libm.so.6", Versions: glibcDemand[:1]})
		base, top := glibcDemand[0], glibcDemand[len(glibcDemand)-1]
		imports = append(imports,
			elfimg.ImportedSymbol{Name: "printf", Version: base, Library: "libc.so.6"},
			elfimg.ImportedSymbol{Name: "exit", Version: base, Library: "libc.so.6"},
			elfimg.ImportedSymbol{Name: "memcpy", Version: top, Library: "libc.so.6"},
			elfimg.ImportedSymbol{Name: "sqrt", Version: glibcDemand[0], Library: "libm.so.6"},
		)
	}
	return needed, verNeeds, imports, runtimeEpochs
}

func interpFor(site *sitemodel.Site) string {
	if site.Arch.Class == elfimg.Class32 {
		return "/lib/ld-linux.so.2"
	}
	return "/lib64/ld-linux-x86-64.so.2"
}

func buildComments(comp Compiler, site *sitemodel.Site) []string {
	return []string{
		comp.CommentString(),
		fmt.Sprintf("built on %s %s (glibc %s)", site.OS.Distro, site.OS.Version, site.Glibc),
	}
}
