// Package toolchain simulates the compiler side of an MPI stack: the GNU,
// Intel and PGI compiler families, the runtime libraries each family links
// into application binaries (libg2c/libgfortran for GNU Fortran, libimf and
// friends for Intel, libpgc for PGI, libstdc++ with GLIBCXX symbol versions
// for C++), compiler installations at sites, and the Compile operation that
// turns a workload code plus an MPI stack into a genuine ELF application
// binary with faithful link-level metadata and hidden ground-truth
// attributes for the execution simulator.
package toolchain

import (
	"fmt"

	"feam/internal/libver"
	"feam/internal/workload"
)

// Family is a compiler vendor family.
type Family int

const (
	GNU Family = iota
	Intel
	PGI
)

// String returns the display name.
func (f Family) String() string {
	switch f {
	case GNU:
		return "GNU"
	case Intel:
		return "Intel"
	case PGI:
		return "PGI"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Key returns the lower-case identifier used in stack keys.
func (f Family) Key() string {
	switch f {
	case GNU:
		return "gnu"
	case Intel:
		return "intel"
	case PGI:
		return "pgi"
	default:
		return "unknown"
	}
}

// FamilyFromKey parses a lower-case family key.
func FamilyFromKey(key string) (Family, bool) {
	switch key {
	case "gnu":
		return GNU, true
	case "intel":
		return Intel, true
	case "pgi":
		return PGI, true
	}
	return 0, false
}

// Compiler is a specific compiler release.
type Compiler struct {
	Family  Family
	Version string
}

// String renders "Intel 11.1".
func (c Compiler) String() string { return fmt.Sprintf("%s %s", c.Family, c.Version) }

// major returns the leading version component.
func (c Compiler) major() int { return libver.MustParseVersion(c.Version).Major() }

// minor returns the second version component (0 when absent).
func (c Compiler) minor() int {
	v := libver.MustParseVersion(c.Version)
	if len(v) > 1 {
		return v[1]
	}
	return 0
}

// RuntimeEpoch is the hidden ABI generation of the family's unversioned
// runtime libraries. A binary built against epoch E runs correctly only when
// the runtime present at execution time has epoch >= E. Intel kept its math
// runtimes interface-stable across the 10.x-12.x era, so every Intel release
// shares one generation; PGI broke its runtime interface at release 10.
func (c Compiler) RuntimeEpoch() int {
	switch c.Family {
	case PGI:
		if c.major() >= 10 {
			return 2
		}
		return 1
	default:
		return 1
	}
}

// gfortranSoname returns the Fortran runtime soname for a GNU release:
// g77's libg2c before GCC 4, libgfortran.so.1 through GCC 4.3,
// libgfortran.so.3 from GCC 4.4.
func (c Compiler) gfortranSoname() string {
	switch {
	case c.major() < 4:
		return "libg2c.so.0"
	case c.major() == 4 && c.minor() < 4:
		return "libgfortran.so.1"
	default:
		return "libgfortran.so.3"
	}
}

// HasFortran90 reports whether the release can compile Fortran 90 sources;
// GNU releases before GCC 4 ship only g77.
func (c Compiler) HasFortran90() bool {
	return c.Family != GNU || c.major() >= 4
}

// glibcxxLadder returns the GLIBCXX version definitions the release's
// libstdc++.so.6 provides (and the newest entry is what C++ objects built by
// the release reference).
func (c Compiler) glibcxxLadder() []string {
	full := []string{
		"GLIBCXX_3.4", "GLIBCXX_3.4.1", "GLIBCXX_3.4.2", "GLIBCXX_3.4.3",
		"GLIBCXX_3.4.4", "GLIBCXX_3.4.5", "GLIBCXX_3.4.6", "GLIBCXX_3.4.7",
		"GLIBCXX_3.4.8", "GLIBCXX_3.4.9", "GLIBCXX_3.4.10", "GLIBCXX_3.4.11",
		"GLIBCXX_3.4.12", "GLIBCXX_3.4.13",
	}
	var n int
	switch {
	case c.Family != GNU:
		// Intel and PGI target the baseline GNU C++ ABI.
		n = 1
	case c.major() < 4:
		n = 1 // GCC 3.4: GLIBCXX_3.4 only
	case c.major() == 4 && c.minor() == 1:
		n = 9 // GCC 4.1: through GLIBCXX_3.4.8
	case c.major() == 4 && c.minor() < 4:
		n = 10
	default:
		n = 14 // GCC 4.4: through GLIBCXX_3.4.13
	}
	return full[:n]
}

// RuntimeDep is one runtime-library link dependency of a compiled binary.
type RuntimeDep struct {
	// Soname is the DT_NEEDED entry.
	Soname string
	// Versions are symbol versions referenced against the library.
	Versions []string
	// Symbols are representative entry points the binary imports from the
	// library (bound to the last entry of Versions when present).
	Symbols []string
	// Epoch is the required hidden ABI generation (0 = no requirement).
	Epoch int
}

// RuntimeDeps returns the runtime libraries a binary in the given language
// links when built by the compiler, excluding the universal base set
// (libm/libpthread/libc).
func (c Compiler) RuntimeDeps(lang workload.Language) []RuntimeDep {
	var deps []RuntimeDep
	switch c.Family {
	case GNU:
		if lang.UsesFortran() {
			fso := c.gfortranSoname()
			syms := []string{"_gfortran_st_write", "_gfortran_transfer_real"}
			if fso == "libg2c.so.0" {
				syms = []string{"s_wsfe", "do_fio", "e_wsfe"}
			}
			deps = append(deps, RuntimeDep{Soname: fso, Symbols: syms})
		}
	case Intel:
		epoch := c.RuntimeEpoch()
		deps = append(deps,
			RuntimeDep{Soname: "libimf.so", Epoch: epoch, Symbols: []string{"__libimf_exp", "__libimf_pow"}},
			RuntimeDep{Soname: "libsvml.so", Epoch: epoch, Symbols: []string{"__svml_sin2", "__svml_cos2"}},
			RuntimeDep{Soname: "libintlc.so.5", Epoch: epoch, Symbols: []string{"__intel_new_proc_init"}},
		)
		if lang.UsesFortran() {
			deps = append(deps,
				RuntimeDep{Soname: "libifcore.so.5", Epoch: epoch, Symbols: []string{"for_write_seq_lis", "for_read_seq_fmt"}},
				RuntimeDep{Soname: "libifport.so.5", Epoch: epoch, Symbols: []string{"for_date", "for_getenv"}},
			)
		}
	case PGI:
		epoch := c.RuntimeEpoch()
		deps = append(deps, RuntimeDep{Soname: "libpgc.so", Epoch: epoch, Symbols: []string{"__pgio_init", "__c_mcopy8"}})
		if lang.UsesFortran() {
			deps = append(deps,
				RuntimeDep{Soname: "libpgf90.so", Epoch: epoch, Symbols: []string{"pgf90_alloc", "pgf90_io_init"}},
				RuntimeDep{Soname: "libpgftnrtl.so", Epoch: epoch, Symbols: []string{"ftn_str_copy"}},
			)
		}
	}
	if lang.UsesCPlusPlus() {
		ladder := c.glibcxxLadder()
		deps = append(deps, RuntimeDep{
			Soname:   "libstdc++.so.6",
			Versions: []string{ladder[len(ladder)-1]},
			Symbols:  []string{"_ZNSt8ios_base4InitC1Ev", "_Znwm"},
		})
	}
	return deps
}

// FeatureLevel returns the CPU ISA extension level binaries built by this
// compiler at a site require at run time. The Intel compiler vectorizes for
// the host CPU (-xHost style), PGI targets a middle baseline, GNU stays
// conservative. Running on a CPU below the requirement traps with
// floating-point/illegal-instruction errors.
func (c Compiler) FeatureLevel(buildCPULevel int) int {
	switch c.Family {
	case Intel:
		return buildCPULevel
	case PGI:
		if buildCPULevel > 2 {
			return 2
		}
		return buildCPULevel
	default:
		return 1
	}
}

// VersionBanner returns the -V/--version output of the compiler driver.
func (c Compiler) VersionBanner() string {
	switch c.Family {
	case Intel:
		return fmt.Sprintf("icc (ICC) %s 20100414", c.Version)
	case PGI:
		return fmt.Sprintf("pgcc %s-0 64-bit target", c.Version)
	default:
		return fmt.Sprintf("gcc (GCC) %s", c.Version)
	}
}

// CommentString returns the .comment provenance a binary built by this
// compiler carries, in the style readelf -p .comment shows.
func (c Compiler) CommentString() string {
	switch c.Family {
	case Intel:
		return fmt.Sprintf("Intel(R) C Compiler %s", c.Version)
	case PGI:
		return fmt.Sprintf("PGI Compilers %s", c.Version)
	default:
		return fmt.Sprintf("GCC: (GNU) %s", c.Version)
	}
}
