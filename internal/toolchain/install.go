package toolchain

import (
	"fmt"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/sitemodel"
	"feam/internal/workload"
)

// CompilerInstall places a compiler and its runtime libraries at a site.
type CompilerInstall struct {
	Compiler
	// Prefix is the installation root for vendor compilers; GNU installs
	// into the system directories. Derived when empty.
	Prefix string
}

// DefaultPrefix returns the conventional install root for the vendor.
func (ci *CompilerInstall) DefaultPrefix() string {
	switch ci.Family {
	case Intel:
		return "/opt/intel/" + ci.Version
	case PGI:
		return "/opt/pgi/" + ci.Version
	default:
		return "/usr"
	}
}

// driverNames lists the compiler executables the install provides.
func (ci *CompilerInstall) driverNames() []string {
	switch ci.Family {
	case Intel:
		return []string{"icc", "icpc", "ifort"}
	case PGI:
		return []string{"pgcc", "pgCC", "pgf90"}
	default:
		if ci.major() < 4 {
			return []string{"gcc", "g++", "g77"}
		}
		return []string{"gcc", "g++", "gfortran"}
	}
}

// Materialize installs compiler drivers and runtime libraries at the site.
// Vendor runtime library directories are added to /etc/ld.so.conf, the way
// site administrators make them visible to every process.
func (ci *CompilerInstall) Materialize(site *sitemodel.Site) error {
	if ci.Prefix == "" {
		ci.Prefix = ci.DefaultPrefix()
	}
	binDir := ci.Prefix + "/bin"
	if ci.Family == GNU {
		binDir = "/usr/bin"
	}
	for _, drv := range ci.driverNames() {
		p := binDir + "/" + drv
		if err := site.FS().WriteString(p, fmt.Sprintf("#!/bin/sh\n# %s driver\n", drv)); err != nil {
			return err
		}
		if err := site.FS().SetAttr(p, sitemodel.AttrExecOutput, ci.VersionBanner()+"\n"); err != nil {
			return err
		}
	}

	libDir := ci.Prefix + "/lib"
	if ci.Family == GNU {
		libDir = site.SystemLibDir()
	}
	for _, lib := range ci.runtimeLibraries(site.Glibc) {
		if _, err := site.InstallLibrary(libDir, lib); err != nil {
			return fmt.Errorf("toolchain: %s: %v", ci.Compiler, err)
		}
	}
	if ci.Family != GNU {
		if err := site.AddLdSoConfDir(libDir); err != nil {
			return err
		}
	}
	return nil
}

// runtimeLibraries builds the installable runtime library set for the
// release: everything RuntimeDeps can reference across all languages.
func (ci *CompilerInstall) runtimeLibraries(glibc libver.Version) []sitemodel.Library {
	base := libver.GlibcSymbolVersions(glibc)
	if len(base) > 1 {
		base = base[:1]
	}
	libcNeed := []elfimg.VerNeed{{File: "libc.so.6", Versions: base}}
	comment := ci.CommentString()
	epoch := ci.RuntimeEpoch()

	// GNU runtimes are distro builds: like all locally built libraries they
	// reference symbols up to the distro's glibc, so copies of them cannot
	// migrate to older-glibc sites. Vendor (Intel/PGI) runtimes are built
	// for portability and reference only the baseline.
	distroLadder := libver.GlibcSymbolVersions(glibc)
	distroNeed := libcNeed
	if len(distroLadder) > 1 {
		distroNeed = []elfimg.VerNeed{{File: "libc.so.6",
			Versions: []string{distroLadder[0], distroLadder[len(distroLadder)-1]}}}
	}

	// Each runtime exports the entry points the compiler's generated code
	// imports (see Compiler.RuntimeDeps).
	exported := func(names ...string) []elfimg.ExportedSymbol {
		out := make([]elfimg.ExportedSymbol, 0, len(names))
		for _, n := range names {
			out = append(out, elfimg.ExportedSymbol{Name: n})
		}
		return out
	}

	var libs []sitemodel.Library
	switch ci.Family {
	case GNU:
		fso := ci.gfortranSoname()
		fortranSyms := exported("_gfortran_st_write", "_gfortran_transfer_real")
		if fso == "libg2c.so.0" {
			fortranSyms = exported("s_wsfe", "do_fio", "e_wsfe")
		}
		libs = append(libs, sitemodel.Library{
			FileName: fso + ".0.0", Soname: fso,
			Needed:   []string{"libm.so.6", "libc.so.6"},
			VerNeeds: distroNeed, Exports: fortranSyms,
			Comments: []string{comment}, TextSize: 800 << 10,
		})
		// libstdc++ keeps every historical versioned symbol (like glibc),
		// so C++ objects built by any same-or-older GCC resolve.
		var cxxExports []elfimg.ExportedSymbol
		for _, v := range ci.glibcxxLadder() {
			cxxExports = append(cxxExports,
				elfimg.ExportedSymbol{Name: "_ZNSt8ios_base4InitC1Ev", Version: v},
				elfimg.ExportedSymbol{Name: "_Znwm", Version: v})
		}
		libs = append(libs, sitemodel.Library{
			FileName: "libstdc++.so.6.0." + fmt.Sprint(len(ci.glibcxxLadder())),
			Soname:   "libstdc++.so.6",
			Needed:   []string{"libm.so.6", "libgcc_s.so.1", "libc.so.6"},
			VerNeeds: distroNeed,
			VerDefs:  append([]string{"libstdc++.so.6"}, ci.glibcxxLadder()...),
			Exports:  cxxExports,
			Comments: []string{comment}, TextSize: 900 << 10,
		})
	case Intel:
		intelSyms := map[string][]elfimg.ExportedSymbol{
			"libimf.so":      exported("__libimf_exp", "__libimf_pow"),
			"libsvml.so":     exported("__svml_sin2", "__svml_cos2"),
			"libintlc.so.5":  exported("__intel_new_proc_init"),
			"libifcore.so.5": exported("for_write_seq_lis", "for_read_seq_fmt"),
			"libifport.so.5": exported("for_date", "for_getenv"),
		}
		for _, so := range []string{"libimf.so", "libsvml.so", "libintlc.so.5", "libifcore.so.5", "libifport.so.5"} {
			libs = append(libs, sitemodel.Library{
				FileName: so, Soname: so, NoSymlinks: true,
				Needed:   []string{"libm.so.6", "libc.so.6"},
				VerNeeds: libcNeed, Exports: intelSyms[so],
				Comments: []string{comment},
				ABIEpoch: epoch, TextSize: 1600 << 10,
			})
		}
	case PGI:
		pgiSyms := map[string][]elfimg.ExportedSymbol{
			"libpgc.so":      exported("__pgio_init", "__c_mcopy8"),
			"libpgf90.so":    exported("pgf90_alloc", "pgf90_io_init"),
			"libpgftnrtl.so": exported("ftn_str_copy"),
		}
		for _, so := range []string{"libpgc.so", "libpgf90.so", "libpgftnrtl.so"} {
			libs = append(libs, sitemodel.Library{
				FileName: so, Soname: so, NoSymlinks: true,
				Needed:   []string{"libm.so.6", "libc.so.6"},
				VerNeeds: libcNeed, Exports: pgiSyms[so],
				Comments: []string{comment},
				ABIEpoch: epoch, TextSize: 1000 << 10,
			})
		}
	}
	return libs
}

// FindCompiler locates an installed compiler of the given family at a site
// by probing the conventional driver locations, returning its version.
func FindCompiler(site *sitemodel.Site, family Family) (Compiler, bool) {
	var candidates []string
	switch family {
	case Intel:
		candidates = globDrivers(site, "/opt/intel", "icc")
	case PGI:
		candidates = globDrivers(site, "/opt/pgi", "pgcc")
	default:
		candidates = []string{"/usr/bin/gcc"}
	}
	for _, p := range candidates {
		out, ok := site.FS().Attr(p, sitemodel.AttrExecOutput)
		if !ok {
			continue
		}
		if v, ok := parseBannerVersion(out); ok {
			return Compiler{Family: family, Version: v}, true
		}
	}
	return Compiler{}, false
}

// globDrivers finds versioned vendor driver paths like /opt/intel/11.1/bin/icc.
func globDrivers(site *sitemodel.Site, root, driver string) []string {
	if !site.FS().IsDir(root) {
		return nil
	}
	entries, err := site.FS().ReadDir(root)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		p := root + "/" + e.Name + "/bin/" + driver
		if site.FS().Exists(p) {
			out = append(out, p)
		}
	}
	return out
}

// parseBannerVersion extracts the release version from a compiler banner
// such as "gcc (GCC) 4.1.2" or "icc (ICC) 12 20100414". Release components
// are small numbers, which distinguishes them from date stamps.
func parseBannerVersion(banner string) (string, bool) {
	for _, f := range splitFields(banner) {
		v, err := libver.ParseVersion(f)
		if err != nil {
			continue
		}
		plausible := true
		for _, n := range v {
			if n > 99 {
				plausible = false
			}
		}
		if plausible {
			return v.String(), true
		}
	}
	return "", false
}

func splitFields(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\n' || r == '\t' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// languageSupported reports whether the compiler can build the code at all;
// pre-GCC-4 GNU toolchains lack a Fortran 90 compiler.
func languageSupported(c Compiler, lang workload.Language) bool {
	if lang == workload.Fortran90 && !c.HasFortran90() {
		return false
	}
	return true
}
