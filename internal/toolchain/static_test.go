package toolchain

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/workload"
)

func TestCompileStaticRequiresArchives(t *testing.T) {
	site := newSite("india", libver.V(2, 5), 2)
	gnu := &CompilerInstall{Compiler: Compiler{Family: GNU, Version: "4.1.2"}}
	if err := gnu.Materialize(site); err != nil {
		t.Fatal(err)
	}
	// Without static libraries installed, static compilation is impossible
	// (the paper's §VI.C constraint).
	noStatic := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "ethernet", WithFortran: true,
	}
	rec, err := noStatic.Materialize(site)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileStatic(workload.Find("is"), rec, site); err == nil {
		t.Fatal("static compile without archives accepted")
	} else if !strings.Contains(err.Error(), "static libraries") {
		t.Errorf("err = %v", err)
	}

	withStatic := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.MPICH2, Version: "1.4"},
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "ethernet", WithFortran: true, WithStaticLibs: true,
	}
	rec2, err := withStatic.Materialize(site)
	if err != nil {
		t.Fatal(err)
	}
	// Archives exist on disk.
	if !site.FS().Exists("/opt/mpich2-1.4-gnu/lib/libmpich.a") {
		t.Error("static archive not installed")
	}
	art, err := CompileStatic(workload.Find("is"), rec2, site)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Truth.Static {
		t.Error("artifact not marked static")
	}
	f, err := elfimg.Parse(art.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Needed) != 0 || f.Interp != "" {
		t.Errorf("static binary has dynamic metadata: needed=%v interp=%q", f.Needed, f.Interp)
	}
	// The Table I identification cannot classify it — the paper's scheme
	// needs dynamic dependencies.
	if _, ok := mpistack.Identify(f.Needed); ok {
		t.Error("static binary identified as MPI from link-level deps")
	}
	// Static images are much larger than dynamic ones.
	dyn, err := Compile(workload.Find("is"), rec2, site)
	if err != nil {
		t.Fatal(err)
	}
	if art.Size() <= dyn.Size() {
		t.Errorf("static %d <= dynamic %d", art.Size(), dyn.Size())
	}
}
