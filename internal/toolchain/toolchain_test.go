package toolchain

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/ldso"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/sitemodel"
	"feam/internal/workload"
)

func TestFamilyKeys(t *testing.T) {
	for f, key := range map[Family]string{GNU: "gnu", Intel: "intel", PGI: "pgi"} {
		if f.Key() != key {
			t.Errorf("%v.Key() = %q", f, f.Key())
		}
		got, ok := FamilyFromKey(key)
		if !ok || got != f {
			t.Errorf("FamilyFromKey(%q) = %v, %v", key, got, ok)
		}
	}
	if _, ok := FamilyFromKey("cray"); ok {
		t.Error("FamilyFromKey accepted junk")
	}
}

func TestGfortranSonameByRelease(t *testing.T) {
	cases := map[string]string{
		"3.4.6": "libg2c.so.0",
		"4.1.2": "libgfortran.so.1",
		"4.4.5": "libgfortran.so.3",
	}
	for v, want := range cases {
		c := Compiler{Family: GNU, Version: v}
		if got := c.gfortranSoname(); got != want {
			t.Errorf("GCC %s fortran runtime = %q, want %q", v, got, want)
		}
	}
}

func TestHasFortran90(t *testing.T) {
	if (Compiler{Family: GNU, Version: "3.4.6"}).HasFortran90() {
		t.Error("GCC 3.4 should not have Fortran 90")
	}
	if !(Compiler{Family: GNU, Version: "4.1.2"}).HasFortran90() {
		t.Error("GCC 4.1 should have Fortran 90")
	}
	if !(Compiler{Family: Intel, Version: "10.1"}).HasFortran90() {
		t.Error("Intel should have Fortran 90")
	}
}

func TestRuntimeDeps(t *testing.T) {
	// GNU Fortran links only the Fortran runtime.
	deps := (Compiler{Family: GNU, Version: "4.1.2"}).RuntimeDeps(workload.Fortran77)
	if len(deps) != 1 || deps[0].Soname != "libgfortran.so.1" || deps[0].Epoch != 0 {
		t.Errorf("GNU F77 deps = %+v", deps)
	}
	// Intel links its math runtimes with an epoch requirement.
	deps = (Compiler{Family: Intel, Version: "11.1"}).RuntimeDeps(workload.C)
	names := depNames(deps)
	if !strings.Contains(names, "libimf.so") || !strings.Contains(names, "libsvml.so") {
		t.Errorf("Intel C deps = %v", names)
	}
	for _, d := range deps {
		if d.Epoch != 1 {
			t.Errorf("Intel 11.1 epoch = %d", d.Epoch)
		}
	}
	// Intel Fortran adds libifcore.
	deps = (Compiler{Family: Intel, Version: "12"}).RuntimeDeps(workload.Fortran90)
	if !strings.Contains(depNames(deps), "libifcore.so.5") {
		t.Errorf("Intel F90 deps = %v", depNames(deps))
	}
	// C++ references the GLIBCXX ladder top of its GCC release.
	deps = (Compiler{Family: GNU, Version: "4.4.5"}).RuntimeDeps(workload.CPlusPlus)
	var cxx *RuntimeDep
	for i := range deps {
		if deps[i].Soname == "libstdc++.so.6" {
			cxx = &deps[i]
		}
	}
	if cxx == nil || len(cxx.Versions) != 1 || cxx.Versions[0] != "GLIBCXX_3.4.13" {
		t.Errorf("GCC 4.4 C++ dep = %+v", cxx)
	}
	// Intel C++ targets the baseline ABI.
	deps = (Compiler{Family: Intel, Version: "12"}).RuntimeDeps(workload.CPlusPlus)
	for _, d := range deps {
		if d.Soname == "libstdc++.so.6" && (len(d.Versions) != 1 || d.Versions[0] != "GLIBCXX_3.4") {
			t.Errorf("Intel C++ dep = %+v", d)
		}
	}
	// PGI Fortran.
	deps = (Compiler{Family: PGI, Version: "11.5"}).RuntimeDeps(workload.Fortran77)
	if !strings.Contains(depNames(deps), "libpgf90.so") {
		t.Errorf("PGI F77 deps = %v", depNames(deps))
	}
}

func depNames(deps []RuntimeDep) string {
	var names []string
	for _, d := range deps {
		names = append(names, d.Soname)
	}
	return strings.Join(names, ",")
}

func TestFeatureLevel(t *testing.T) {
	if (Compiler{Family: GNU, Version: "4.4.5"}).FeatureLevel(3) != 1 {
		t.Error("GNU should stay conservative")
	}
	if (Compiler{Family: Intel, Version: "12"}).FeatureLevel(3) != 3 {
		t.Error("Intel should target the host")
	}
	if (Compiler{Family: PGI, Version: "11.5"}).FeatureLevel(3) != 2 {
		t.Error("PGI should cap at level 2")
	}
	if (Compiler{Family: PGI, Version: "11.5"}).FeatureLevel(1) != 1 {
		t.Error("PGI cannot exceed the build host")
	}
}

func newSite(name string, glibc libver.Version, featureLevel int) *sitemodel.Site {
	s := sitemodel.New(name,
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "Xeon", FeatureLevel: featureLevel},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		glibc)
	if err := s.InstallCLibrary(); err != nil {
		panic(err)
	}
	return s
}

func TestCompilerInstallAndFind(t *testing.T) {
	site := newSite("fir", libver.V(2, 5), 1)
	gnu := &CompilerInstall{Compiler: Compiler{Family: GNU, Version: "4.1.2"}}
	if err := gnu.Materialize(site); err != nil {
		t.Fatal(err)
	}
	intel := &CompilerInstall{Compiler: Compiler{Family: Intel, Version: "12"}}
	if err := intel.Materialize(site); err != nil {
		t.Fatal(err)
	}
	// Drivers discoverable.
	c, ok := FindCompiler(site, GNU)
	if !ok || c.Version != "4.1.2" {
		t.Errorf("FindCompiler(GNU) = %+v, %v", c, ok)
	}
	if _, ok := FindCompiler(site, PGI); ok {
		t.Error("found a PGI compiler that is not installed")
	}
	// GNU runtimes land in the system lib dir.
	if !site.FS().Exists("/lib64/libgfortran.so.1") {
		t.Error("libgfortran not installed")
	}
	if !site.FS().Exists("/lib64/libstdc++.so.6") {
		t.Error("libstdc++ not installed")
	}
	// Intel runtimes land under /opt and are on the loader path.
	if !site.FS().Exists("/opt/intel/12/lib/libimf.so") {
		t.Error("libimf not installed")
	}
	dirs := site.DefaultLibDirs()
	found := false
	for _, d := range dirs {
		if d == "/opt/intel/12/lib" {
			found = true
		}
	}
	if !found {
		t.Errorf("intel lib dir not in ld.so.conf dirs: %v", dirs)
	}
	// Intel runtime epoch recorded (one stable generation across releases).
	if got := site.LibraryABIEpoch("/opt/intel/12/lib/libimf.so"); got != 1 {
		t.Errorf("libimf epoch = %d", got)
	}
	// Intel FindCompiler sees versioned directory.
	ic, ok := FindCompiler(site, Intel)
	if !ok || ic.Version != "12" {
		t.Errorf("FindCompiler(Intel) = %+v, %v", ic, ok)
	}
}

func TestCanCompileRules(t *testing.T) {
	gcc34 := Compiler{Family: GNU, Version: "3.4.6"}
	if err := CanCompile(workload.Find("107.leslie3d"), gcc34); err == nil {
		t.Error("F90 code should not compile with GCC 3.4")
	}
	if err := CanCompile(workload.Find("bt"), gcc34); err != nil {
		t.Errorf("F77 code should compile with GCC 3.4: %v", err)
	}
	pgi := Compiler{Family: PGI, Version: "11.5"}
	if err := CanCompile(workload.Find("115.fds4"), pgi); err == nil {
		t.Error("fds4 should not compile with PGI")
	}
	if err := CanCompile(workload.Find("126.lammps"), pgi); err == nil {
		t.Error("lammps should not compile with PGI")
	}
	var ce *CompileError
	err := CanCompile(workload.Find("115.fds4"), pgi)
	if ce, _ = err.(*CompileError); ce == nil || !strings.Contains(ce.Error(), "115.fds4") {
		t.Errorf("error = %v", err)
	}
}

// buildStackSite creates a site with GNU 4.1.2 and an Open MPI 1.4 stack.
func buildStackSite(t *testing.T) (*sitemodel.Site, *sitemodel.StackRecord) {
	t.Helper()
	site := newSite("india", libver.V(2, 5), 2)
	gnu := &CompilerInstall{Compiler: Compiler{Family: GNU, Version: "4.1.2"}}
	if err := gnu.Materialize(site); err != nil {
		t.Fatal(err)
	}
	inst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "ethernet", WithFortran: true,
	}
	rec, err := inst.Materialize(site)
	if err != nil {
		t.Fatal(err)
	}
	return site, rec
}

func TestCompileApplication(t *testing.T) {
	site, rec := buildStackSite(t)
	art, err := Compile(workload.Find("cg"), rec, site)
	if err != nil {
		t.Fatal(err)
	}
	if art.Name != "cg.india.openmpi-1.4-gnu" {
		t.Errorf("Name = %q", art.Name)
	}
	f, err := elfimg.Parse(art.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	needed := strings.Join(f.Needed, ",")
	// MPI libraries with Fortran bindings.
	for _, want := range []string{"libmpi.so.0", "libmpi_f77.so.0", "libnsl.so.1", "libutil.so.1", "libgfortran.so.1", "libm.so.6", "libc.so.6"} {
		if !strings.Contains(needed, want) {
			t.Errorf("NEEDED lacks %s: %v", want, f.Needed)
		}
	}
	// Identification works on the compiled binary (Table I).
	impl, ok := mpistack.Identify(f.Needed)
	if !ok || impl != mpistack.OpenMPI {
		t.Errorf("Identify = %v, %v", impl, ok)
	}
	// glibc demand: cg caps at 2.3.4 but build glibc is 2.5 -> refs top out
	// at 2.3.4.
	top := libver.HighestGlibc(f.VersionRefNames())
	if !top.Equal(libver.V(2, 3, 4)) {
		t.Errorf("glibc demand = %v", top)
	}
	// Comments carry compiler and OS provenance.
	comments := strings.Join(f.Comments, ";")
	if !strings.Contains(comments, "GCC: (GNU) 4.1.2") || !strings.Contains(comments, "glibc 2.5") {
		t.Errorf("Comments = %v", f.Comments)
	}
	// Ground truth.
	if art.Truth.MPIABIEpoch != 14 || art.Truth.FeatureLevel != 1 || art.Truth.StackKey != "openmpi-1.4-gnu" {
		t.Errorf("Truth = %+v", art.Truth)
	}
}

func TestCompileRequiresInstalledCompiler(t *testing.T) {
	site := newSite("bare", libver.V(2, 5), 1)
	rec := &sitemodel.StackRecord{
		Key: "openmpi-1.4-intel", Impl: "openmpi", ImplVersion: "1.4",
		CompilerFamily: "intel", CompilerVersion: "12", Interconnect: "ethernet",
	}
	if _, err := Compile(workload.Find("is"), rec, site); err == nil {
		t.Error("compile without installed compiler should fail")
	}
}

func TestCompileHello(t *testing.T) {
	site, rec := buildStackSite(t)
	art, err := CompileHello(rec, site)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Truth.Hello || art.Truth.MPILevel != 1 {
		t.Errorf("Truth = %+v", art.Truth)
	}
	f, err := elfimg.Parse(art.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	// Hello is a C program: no Fortran runtime.
	if strings.Contains(strings.Join(f.Needed, ","), "gfortran") {
		t.Errorf("hello links fortran: %v", f.Needed)
	}
	// Minimal glibc demand.
	top := libver.HighestGlibc(f.VersionRefNames())
	if !top.Equal(libver.V(2, 0)) {
		t.Errorf("hello glibc demand = %v", top)
	}
	// Still identifies as the right MPI implementation.
	impl, ok := mpistack.Identify(f.Needed)
	if !ok || impl != mpistack.OpenMPI {
		t.Errorf("Identify = %v, %v", impl, ok)
	}
}

func TestCompileSerialHello(t *testing.T) {
	site, _ := buildStackSite(t)
	art, err := CompileSerialHello(Compiler{Family: GNU, Version: "4.1.2"}, site)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Truth.Serial {
		t.Error("not marked serial")
	}
	f, err := elfimg.Parse(art.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Needed) != 1 || f.Needed[0] != "libc.so.6" {
		t.Errorf("NEEDED = %v", f.Needed)
	}
	if _, ok := mpistack.Identify(f.Needed); ok {
		t.Error("serial hello identified as MPI")
	}
}

func TestVersionBannerParsing(t *testing.T) {
	for _, c := range []Compiler{
		{Family: GNU, Version: "4.4.5"},
		{Family: Intel, Version: "11.1"},
		{Family: PGI, Version: "11.5"},
	} {
		v, ok := parseBannerVersion(c.VersionBanner())
		if !ok || v != c.Version {
			t.Errorf("parseBannerVersion(%q) = %q, %v", c.VersionBanner(), v, ok)
		}
	}
	if _, ok := parseBannerVersion("no version here"); ok {
		t.Error("parsed a version from junk")
	}
}

// TestCompiledBinarySymbols: compiled artifacts carry a dynamic symbol
// table whose MPI imports scale with the code's feature level and whose
// libc imports are version-bound.
func TestCompiledBinarySymbols(t *testing.T) {
	site, rec := buildStackSite(t)
	level1, err := Compile(workload.Find("ep"), rec, site) // MPILevel 1
	if err != nil {
		t.Fatal(err)
	}
	level3, err := Compile(workload.Find("lu"), rec, site) // MPILevel 3
	if err != nil {
		t.Fatal(err)
	}
	imports := func(art *Artifact) map[string]elfimg.ImportedSymbol {
		f, err := elfimg.Parse(art.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]elfimg.ImportedSymbol{}
		for _, im := range f.Imports {
			m[im.Name] = im
		}
		return m
	}
	i1, i3 := imports(level1), imports(level3)
	if _, ok := i1["MPI_Init"]; !ok {
		t.Error("level-1 code lacks MPI_Init import")
	}
	if _, ok := i1["MPI_Win_create"]; ok {
		t.Error("level-1 code imports one-sided MPI")
	}
	if _, ok := i3["MPI_Win_create"]; !ok {
		t.Error("level-3 code lacks one-sided MPI import")
	}
	// libc imports are version-bound; the Fortran runtime import is not.
	if im := i3["printf"]; im.Library != "libc.so.6" || im.Version == "" {
		t.Errorf("printf import = %+v", im)
	}
	if im, ok := i3["_gfortran_st_write"]; !ok || im.Version != "" {
		t.Errorf("fortran runtime import = %+v (ok=%v)", im, ok)
	}
	// Every import of the binary resolves under eager binding at its own
	// build site with the stack loaded.
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	site.Setenv("LD_LIBRARY_PATH", rec.Prefix+"/lib")
	res, err := ldso.ResolveBytes(level3.Bytes, level3.Name, ldso.Options{
		FS:           site.FS(),
		LibraryPath:  []string{rec.Prefix + "/lib"},
		DefaultDirs:  site.DefaultLibDirs(),
		CheckSymbols: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("eager binding at build site failed:\nmissing=%v\nversion=%v\nundefined=%v",
			res.Missing, res.VersionErrors, res.UndefinedSymbols)
	}
}
