// Package store is FEAM's persistence layer: a namespaced record store
// whose writes go through internal/vfs with the same transactional
// protocol as library staging (write to a private temp path, then an
// atomic rename into place), so a record is either fully present at its
// final path or absent — never half-written.
//
// The engine persists environment surveys, binary descriptions, bundles,
// and site records here so a killed-and-restarted process rehydrates fleet
// state instead of re-running 25-second site surveys (PAPER.md's phase-II
// discovery cost). Records are versioned and checksummed; a truncated or
// corrupt record reads as absent (counted, never fatal), which makes crash
// recovery a plain Open.
//
// Fault injection composes for free: every operation is a vfs operation,
// so a fault.Hook installed on the backing filesystem exercises the
// store's error paths exactly as it does staging's.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"path"
	"strings"
	"sync"
	"sync/atomic"

	"feam/internal/obs"
	"feam/internal/vfs"
)

// Version is the record-envelope format version. Decoders reject any
// other version as corrupt rather than guessing.
const Version = 1

// magic is the record header's leading token.
const magic = "feamstore"

// ErrCorrupt classifies a record that is present but unreadable: bad
// magic, wrong version, length mismatch, or checksum failure. Get reports
// it alongside ok=false so callers can distinguish "absent" from
// "damaged" while treating both as a miss.
var ErrCorrupt = errors.New("store: record corrupt")

// Option configures a Store at Open time.
type Option func(*Store)

// WithMetrics wires record-traffic counters into an obs registry
// (`store_load`, `store_commit`, `store_corrupt`).
func WithMetrics(m *obs.Registry) Option {
	return func(s *Store) { s.metrics = m }
}

// WithTracer emits store_load / store_commit spans for every record read
// and write; attach the engine's tracer to fold store latency into the
// same histograms as the rest of the pipeline.
func WithTracer(t *obs.Tracer) Option {
	return func(s *Store) { s.tracer = t }
}

// Store is a namespaced persistent record store over one vfs filesystem.
// All methods are safe for concurrent use: the backing vfs has no internal
// locking (sites serialize through the engine's SiteLock instead), so the
// store guards its filesystem with its own reader/writer lock. Per-record
// atomicity comes from the rename commit, so two writers racing on one key
// leave one complete record.
type Store struct {
	// mu serializes vfs access. Leaf lock: nothing blocking runs under it.
	mu      sync.RWMutex
	fs      *vfs.FS
	root    string
	metrics *obs.Registry
	tracer  *obs.Tracer
	seq     atomic.Uint64

	loads, commits, corrupt atomic.Int64
}

// Open returns a store rooted at dir on fs, creating the root and its
// staging area. Opening an existing root is how a restarted process
// reattaches to its persisted state.
func Open(fs *vfs.FS, root string, opts ...Option) (*Store, error) {
	if fs == nil {
		return nil, fmt.Errorf("store: nil filesystem")
	}
	s := &Store{fs: fs, root: path.Clean(root)}
	for _, opt := range opts {
		opt(s)
	}
	if err := fs.MkdirAll(s.tmpDir()); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", s.root, err)
	}
	return s, nil
}

func (s *Store) tmpDir() string { return path.Join(s.root, ".tmp") }

func (s *Store) count(c *atomic.Int64, name string) {
	c.Add(1)
	if s.metrics != nil {
		s.metrics.Counter(name).Add(1)
	}
}

// validKind restricts namespaces to path-safe literal names.
func validKind(kind string) error {
	if kind == "" || strings.HasPrefix(kind, ".") {
		return fmt.Errorf("store: invalid kind %q", kind)
	}
	for _, c := range kind {
		if !isSafeByte(byte(c)) {
			return fmt.Errorf("store: invalid kind %q", kind)
		}
	}
	return nil
}

func isSafeByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.'
}

// encodeKey maps an arbitrary record key onto a safe file name; unsafe
// bytes become %XX escapes (and '%' itself is escaped, so decoding is
// unambiguous).
func encodeKey(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		if isSafeByte(c) && c != '%' {
			b.WriteByte(c)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", c)
	}
	if b.Len() == 0 || strings.HasPrefix(b.String(), ".") {
		return "%" + b.String()
	}
	return b.String()
}

// decodeKey reverses encodeKey; malformed escapes yield ok=false.
func decodeKey(name string) (string, bool) {
	name = strings.TrimPrefix(name, "%")
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(name) {
			return "", false
		}
		var v int
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02X", &v); err != nil {
			return "", false
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), true
}

func (s *Store) recordPath(kind, key string) string {
	return path.Join(s.root, kind, encodeKey(key)+".rec")
}

func payloadSum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// encodeRecord wraps a payload in the versioned envelope: a one-line
// header carrying the format version, kind, payload length, and an FNV-64a
// checksum, followed by the raw payload bytes.
func encodeRecord(kind string, payload []byte) []byte {
	header := fmt.Sprintf("%s %d %s %d %016x\n", magic, Version, kind, len(payload), payloadSum(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeRecord validates the envelope and returns the payload. Every
// mismatch — truncation, bad magic, wrong version or kind, length or
// checksum disagreement — classifies as ErrCorrupt.
func decodeRecord(kind string, data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	var gotMagic, gotKind, sumHex string
	var gotVersion, plen int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %s %d %s",
		&gotMagic, &gotVersion, &gotKind, &plen, &sumHex); err != nil {
		return nil, fmt.Errorf("%w: unparseable header", ErrCorrupt)
	}
	if gotMagic != magic || gotVersion != Version || gotKind != kind {
		return nil, fmt.Errorf("%w: header %q/%d/%q, want %q/%d/%q",
			ErrCorrupt, gotMagic, gotVersion, gotKind, magic, Version, kind)
	}
	payload := data[nl+1:]
	if len(payload) != plen {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), plen)
	}
	var sum uint64
	if _, err := fmt.Sscanf(sumHex, "%016x", &sum); err != nil || sum != payloadSum(payload) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Put commits a record: the envelope is written to a private temp path,
// then atomically renamed over the destination. Readers racing a Put see
// either the old complete record or the new one.
func (s *Store) Put(kind, key string, payload []byte) error {
	sp := s.tracer.Start(obs.OpStoreCommit,
		obs.WithAttr(obs.AttrKind, kind), obs.WithAttr(obs.AttrKey, key))
	err := s.put(kind, key, payload)
	sp.End(err)
	if err == nil {
		s.count(&s.commits, "store_commit")
	}
	return err
}

func (s *Store) put(kind, key string, payload []byte) error {
	if err := validKind(kind); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.MkdirAll(path.Join(s.root, kind)); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	tmp := path.Join(s.tmpDir(), fmt.Sprintf("%s-%s-%d", kind, encodeKey(key), s.seq.Add(1)))
	if err := s.fs.WriteFile(tmp, encodeRecord(kind, payload)); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	dst := s.recordPath(kind, key)
	// vfs.Rename refuses an existing destination, so the commit removes
	// the old record first; the temp file survives a failed commit for
	// inspection-free retry (the next Put uses a fresh sequence number).
	if s.fs.Exists(dst) {
		if err := s.fs.Remove(dst); err != nil {
			return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
		}
	}
	if err := s.fs.Rename(tmp, dst); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	return nil
}

// Get reads a record. ok=false means the record is absent or damaged; a
// damaged record additionally reports ErrCorrupt (and counts toward
// `store_corrupt`) so callers can log it, but the contract for both is
// the same: treat as a miss and recompute.
func (s *Store) Get(kind, key string) ([]byte, bool, error) {
	sp := s.tracer.Start(obs.OpStoreLoad,
		obs.WithAttr(obs.AttrKind, kind), obs.WithAttr(obs.AttrKey, key))
	payload, ok, err := s.get(kind, key)
	sp.End(err)
	if ok {
		s.count(&s.loads, "store_load")
	}
	if err != nil {
		s.count(&s.corrupt, "store_corrupt")
	}
	return payload, ok, err
}

func (s *Store) get(kind, key string) ([]byte, bool, error) {
	if err := validKind(kind); err != nil {
		return nil, false, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := s.fs.ReadFileShared(s.recordPath(kind, key))
	if err != nil {
		return nil, false, nil
	}
	payload, err := decodeRecord(kind, data)
	if err != nil {
		return nil, false, fmt.Errorf("%s/%s: %w", kind, key, err)
	}
	return payload, true, nil
}

// List returns the sorted keys of every decodable record name in a kind;
// a missing namespace is an empty list.
func (s *Store) List(kind string) ([]string, error) {
	if err := validKind(kind); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos, err := s.fs.ReadDir(path.Join(s.root, kind))
	if err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list %s: %w", kind, err)
	}
	var keys []string
	for _, fi := range infos {
		name, found := strings.CutSuffix(fi.Name, ".rec")
		if !found {
			continue
		}
		if key, ok := decodeKey(name); ok {
			keys = append(keys, key)
		}
	}
	return keys, nil
}

// Delete removes a record; deleting an absent record is a no-op.
func (s *Store) Delete(kind, key string) error {
	if err := validKind(kind); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.fs.Remove(s.recordPath(kind, key))
	if err != nil && !errors.Is(err, vfs.ErrNotExist) {
		return fmt.Errorf("store: delete %s/%s: %w", kind, key, err)
	}
	return nil
}

// Stats is a lifetime summary of record traffic.
type Stats struct {
	Loads   int64
	Commits int64
	Corrupt int64
}

// Stats reports lifetime load/commit/corrupt counts.
func (s *Store) Stats() Stats {
	return Stats{Loads: s.loads.Load(), Commits: s.commits.Load(), Corrupt: s.corrupt.Load()}
}
