package store_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"feam/internal/fault"
	"feam/internal/obs"
	"feam/internal/store"
	"feam/internal/vfs"
)

func openStore(t *testing.T, opts ...store.Option) (*store.Store, *vfs.FS) {
	t.Helper()
	fs := vfs.New()
	s, err := store.Open(fs, "/state", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, fs
}

func TestPutGetRoundTrip(t *testing.T) {
	metrics := obs.NewRegistry()
	s, _ := openStore(t, store.WithMetrics(metrics))
	payload := []byte(`{"fingerprint":7}`)
	if err := s.Put("survey", "india", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("survey", "india")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	if _, ok, _ := s.Get("survey", "nowhere"); ok {
		t.Fatal("absent record returned ok")
	}
	if _, ok, _ := s.Get("bundle", "india"); ok {
		t.Fatal("kind namespaces must not alias")
	}
	if metrics.Counter("store_commit").Load() != 1 || metrics.Counter("store_load").Load() != 1 {
		t.Fatalf("commit/load counters = %d/%d, want 1/1",
			metrics.Counter("store_commit").Load(), metrics.Counter("store_load").Load())
	}
}

func TestOverwriteIsAtomicReplace(t *testing.T) {
	s, _ := openStore(t)
	if err := s.Put("bdc", "app", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bdc", "app", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("bdc", "app")
	if err != nil || !ok || string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v, %v", got, ok, err)
	}
	keys, err := s.List("bdc")
	if err != nil || len(keys) != 1 {
		t.Fatalf("List = %v, %v", keys, err)
	}
}

// TestRestartReattach: a fresh Store over the same filesystem and root —
// the killed-and-restarted process — sees every committed record.
func TestRestartReattach(t *testing.T) {
	s, fs := openStore(t)
	if err := s.Put("survey", "ranger", []byte("state")); err != nil {
		t.Fatal(err)
	}
	reopened, err := store.Open(fs, "/state")
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := reopened.Get("survey", "ranger")
	if err != nil || !ok || string(got) != "state" {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

// TestCorruptRecordsReadAsMisses: truncation, payload damage, header
// damage, and version skew all classify as ErrCorrupt with ok=false —
// crash recovery never propagates a fatal error.
func TestCorruptRecordsReadAsMisses(t *testing.T) {
	metrics := obs.NewRegistry()
	s, fs := openStore(t, store.WithMetrics(metrics))
	if err := s.Put("survey", "vic", []byte("precious survey data")); err != nil {
		t.Fatal(err)
	}
	paths, err := fs.Glob("/state/survey", "*.rec")
	if err != nil || len(paths) != 1 {
		t.Fatalf("record files = %v, %v", paths, err)
	}
	rec := paths[0]
	original, err := fs.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := fs.WriteFile(rec, original); err != nil {
			t.Fatal(err)
		}
	}

	cases := map[string][]byte{
		"truncated":      original[:len(original)-5],
		"payload-flip":   append(append([]byte{}, original[:len(original)-1]...), original[len(original)-1]^0xFF),
		"header-garbage": append([]byte("not a header\n"), original...),
		"empty":          {},
	}
	for name, data := range cases {
		if err := fs.WriteFile(rec, data); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.Get("survey", "vic")
		if ok || got != nil {
			t.Errorf("%s: corrupt record returned ok with %q", name, got)
		}
		if !errors.Is(err, store.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
		restore()
	}
	if got, ok, err := s.Get("survey", "vic"); !ok || err != nil || string(got) != "precious survey data" {
		t.Fatalf("restored record unreadable: %q, %v, %v", got, ok, err)
	}
	if c := metrics.Counter("store_corrupt").Load(); c != int64(len(cases)) {
		t.Fatalf("store_corrupt = %d, want %d", c, len(cases))
	}
}

func TestKeyEncodingAndList(t *testing.T) {
	s, _ := openStore(t)
	keys := []string{"plain", "with/slash", "sha:ab01", "..dotty", "sp ace"}
	for _, k := range keys {
		if err := s.Put("site", k, []byte(k)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	got, err := s.List("site")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("List = %v, want %d keys", got, len(keys))
	}
	for _, k := range keys {
		data, ok, err := s.Get("site", k)
		if err != nil || !ok || string(data) != k {
			t.Fatalf("round trip %q: %q, %v, %v", k, data, ok, err)
		}
	}
	if empty, err := s.List("nothing-here"); err != nil || len(empty) != 0 {
		t.Fatalf("List of empty kind = %v, %v", empty, err)
	}
	if err := s.Put("../escape", "k", nil); err == nil {
		t.Fatal("path-traversal kind accepted")
	}
}

func TestDelete(t *testing.T) {
	s, _ := openStore(t)
	if err := s.Put("survey", "gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("survey", "gone"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("survey", "gone"); ok {
		t.Fatal("deleted record still readable")
	}
	if err := s.Delete("survey", "gone"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestFaultInjectionThroughVFS: the store's only I/O path is the vfs, so
// a fault hook on the filesystem exercises the store's error handling; a
// failed commit must leave the previous record intact.
func TestFaultInjectionThroughVFS(t *testing.T) {
	s, fs := openStore(t)
	if err := s.Put("bundle", "app", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	script := &fault.Script{}
	fs.SetOpHook(fault.Hook(context.Background(), script))

	script.FailNext(fault.Transient, "write")
	if err := s.Put("bundle", "app", []byte("v2")); err == nil {
		t.Fatal("faulted write did not surface")
	}
	if got, ok, err := s.Get("bundle", "app"); !ok || err != nil || string(got) != "v1" {
		t.Fatalf("failed commit damaged the previous record: %q, %v, %v", got, ok, err)
	}

	script.FailNext(fault.Transient, "rename")
	if err := s.Put("bundle", "app", []byte("v3")); err == nil {
		t.Fatal("faulted rename did not surface")
	}
	if got, _, _ := s.Get("bundle", "app"); string(got) == "v3" {
		t.Fatal("record updated despite failed rename")
	}

	fs.SetOpHook(nil)
	if err := s.Put("bundle", "app", []byte("v4")); err != nil {
		t.Fatalf("store did not recover once faults cleared: %v", err)
	}
	if got, ok, _ := s.Get("bundle", "app"); !ok || string(got) != "v4" {
		t.Fatalf("post-recovery record = %q", got)
	}
}

// TestStoreSpans: with a tracer attached, every Put/Get emits a
// store_commit / store_load span feeding the shared histograms.
func TestStoreSpans(t *testing.T) {
	tr := obs.NewTracer(64)
	metrics := obs.NewRegistry()
	tr.AddSink(obs.NewRegistrySink(metrics))
	s, _ := openStore(t, store.WithTracer(tr), store.WithMetrics(metrics))
	if err := s.Put("survey", "x", []byte("p")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("survey", "x"); !ok {
		t.Fatal("get failed")
	}
	if n := metrics.Histogram(obs.OpStoreCommit).Count(); n != 1 {
		t.Fatalf("store_commit histogram count = %d, want 1", n)
	}
	if n := metrics.Histogram(obs.OpStoreLoad).Count(); n != 1 {
		t.Fatalf("store_load histogram count = %d, want 1", n)
	}
}

// TestConcurrentPuts: concurrent writers on overlapping keys always leave
// complete records (run under -race).
func TestConcurrentPuts(t *testing.T) {
	s, _ := openStore(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (seed+i)%10)
				if err := s.Put("survey", key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if data, ok, err := s.Get("survey", key); ok && (err != nil || string(data) != key) {
					t.Errorf("torn read for %s: %q, %v", key, data, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Commits == 0 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
