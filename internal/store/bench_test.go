package store_test

import (
	"fmt"
	"testing"

	"feam/internal/store"
	"feam/internal/vfs"
)

// BenchmarkStoreCommit measures one atomic record commit — temp write plus
// rename — over a warm namespace. Its ns/op is the store commit latency
// BENCH_PR6.json records.
func BenchmarkStoreCommit(b *testing.B) {
	for _, size := range []int{256, 16 << 10} {
		b.Run(fmt.Sprintf("payload-%d", size), func(b *testing.B) {
			fs := vfs.New()
			s, err := store.Open(fs, "/state")
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put("survey", fmt.Sprintf("site-%d", i%64), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreLoad measures the rehydration read path: envelope decode,
// checksum verification, payload return.
func BenchmarkStoreLoad(b *testing.B) {
	fs := vfs.New()
	s, err := store.Open(fs, "/state")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 64; i++ {
		if err := s.Put("survey", fmt.Sprintf("site-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get("survey", fmt.Sprintf("site-%d", i%64)); !ok || err != nil {
			b.Fatalf("load miss: %v", err)
		}
	}
}

// BenchmarkStoreParallel measures mixed load/commit traffic from many
// goroutines — concurrent engines persisting through one store.
func BenchmarkStoreParallel(b *testing.B) {
	fs := vfs.New()
	s, err := store.Open(fs, "/state")
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte(`{"fingerprint":1,"env":{}}`)
	for i := 0; i < 64; i++ {
		if err := s.Put("survey", fmt.Sprintf("site-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("site-%d", i%64)
			if i%8 == 0 {
				if err := s.Put("survey", key, payload); err != nil {
					b.Fatal(err)
				}
			} else if _, ok, err := s.Get("survey", key); !ok || err != nil {
				b.Fatalf("load miss: %v", err)
			}
			i++
		}
	})
}
