package usereffort

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func profile() MigrationProfile {
	return MigrationProfile{
		Stacks: 6, CandidateStacks: 2, MissingLibraries: 3,
		HasEnvTool: true, FirstVisit: true,
	}
}

func TestManualEstimate(t *testing.T) {
	e := Manual(profile())
	if e.Total(Expert) <= 0 || e.Total(Novice) <= e.Total(Expert) {
		t.Errorf("totals: expert %v novice %v", e.Total(Expert), e.Total(Novice))
	}
	// Missing libraries dominate manual effort: three hunts at 15 min
	// each is 45 expert minutes.
	found := false
	for _, task := range e.Tasks {
		if strings.Contains(task.Name, "missing library") {
			found = true
			if task.Count != 3 || task.Total(Expert) != 45*time.Minute {
				t.Errorf("library task = %+v", task)
			}
		}
	}
	if !found {
		t.Error("no library-hunting task")
	}
}

func TestEnvToolAffectsDiscovery(t *testing.T) {
	withTool := profile()
	withoutTool := profile()
	withoutTool.HasEnvTool = false
	if Manual(withoutTool).Total(Expert) <= Manual(withTool).Total(Expert) {
		t.Error("missing env tool should increase manual effort")
	}
}

func TestFEAMEffortSmallAndMostlyFirstVisit(t *testing.T) {
	first := WithFEAM(profile())
	repeat := profile()
	repeat.FirstVisit = false
	again := WithFEAM(repeat)
	if first.Total(Expert) <= again.Total(Expert) {
		t.Error("first visit should cost more (script writing)")
	}
	if again.Total(Novice) > 15*time.Minute {
		t.Errorf("repeat FEAM novice effort = %v", again.Total(Novice))
	}
}

func TestSavingsPositive(t *testing.T) {
	for _, persona := range []Persona{Expert, Novice} {
		if Savings(profile(), persona) <= 0 {
			t.Errorf("%v savings not positive", persona)
		}
	}
	// Property: savings grow monotonically with missing libraries.
	f := func(n uint8) bool {
		p := profile()
		p.MissingLibraries = int(n % 20)
		q := p
		q.MissingLibraries = p.MissingLibraries + 1
		return Savings(q, Novice) > Savings(p, Novice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	profiles := []MigrationProfile{profile(), profile(), {Stacks: 2, CandidateStacks: 1, HasEnvTool: true}}
	c := Aggregate(profiles)
	if c.Migrations != 3 {
		t.Errorf("Migrations = %d", c.Migrations)
	}
	if c.ManualNovice <= c.ManualExpert || c.FEAMExpert >= c.ManualExpert {
		t.Errorf("comparison = %+v", c)
	}
	out := c.String()
	for _, want := range []string{"3 migrations", "manual:", "with FEAM:", "savings:"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestEstimateString(t *testing.T) {
	out := Manual(profile()).String()
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "hello world") {
		t.Errorf("estimate rendering:\n%s", out)
	}
	if Expert.String() != "expert" || Novice.String() != "novice" {
		t.Error("persona names")
	}
}

func TestZeroProfile(t *testing.T) {
	var p MigrationProfile
	m := Manual(p)
	// Even an empty profile has the fixed discovery tasks.
	if m.Total(Expert) <= 0 {
		t.Error("zero profile should still cost something")
	}
	// Tasks with zero counts are omitted.
	for _, task := range m.Tasks {
		if task.Count == 0 {
			t.Errorf("zero-count task present: %+v", task)
		}
	}
}
