// Package usereffort implements the paper's stated future work:
// "quantifying the amount of user effort required to perform migration
// tasks so that we can more concretely compute the efficiency gains of
// using our methods" (§VII).
//
// The model decomposes a manual migration into the concrete site-
// preparation tasks FEAM automates — discovering the architecture and OS,
// determining the C library version, enumerating MPI stacks and their
// compilers, test-driving candidate stacks through the batch queue,
// running ldd and interpreting its output, hunting down and staging each
// missing shared library, and composing the environment configuration —
// and attaches per-task time estimates for two personas: an experienced
// HPC user and the novice scientist the paper's introduction is written
// for. FEAM's cost is what remains manual: supplying the submission-script
// templates once per site and reading the prediction report.
package usereffort

import (
	"fmt"
	"strings"
	"time"
)

// Persona selects whose time is being estimated.
type Persona int

const (
	// Expert is an experienced HPC user who knows module systems, ldd,
	// and batch schedulers.
	Expert Persona = iota
	// Novice is a domain scientist encountering the site for the first
	// time — the paper's target audience.
	Novice
)

func (p Persona) String() string {
	if p == Expert {
		return "expert"
	}
	return "novice"
}

// Task is one manual step with per-persona durations and a repetition
// count.
type Task struct {
	Name   string
	Expert time.Duration
	Novice time.Duration
	Count  int
}

// Total returns the task's total time for a persona.
func (t Task) Total(p Persona) time.Duration {
	d := t.Expert
	if p == Novice {
		d = t.Novice
	}
	return time.Duration(t.Count) * d
}

// Estimate is a set of tasks.
type Estimate struct {
	Label string
	Tasks []Task
}

// Total sums the estimate for a persona.
func (e Estimate) Total(p Persona) time.Duration {
	var total time.Duration
	for _, t := range e.Tasks {
		total += t.Total(p)
	}
	return total
}

// String renders the estimate as a table.
func (e Estimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", e.Label)
	for _, t := range e.Tasks {
		fmt.Fprintf(&b, "  %-44s x%-3d expert %-8s novice %s\n",
			t.Name, t.Count, t.Total(Expert), t.Total(Novice))
	}
	fmt.Fprintf(&b, "  %-44s      expert %-8s novice %s\n", "TOTAL",
		e.Total(Expert), e.Total(Novice))
	return b.String()
}

// MigrationProfile describes one migration's site-preparation workload —
// the quantities that drive manual effort.
type MigrationProfile struct {
	// Stacks is the number of MPI installations advertised at the target.
	Stacks int
	// CandidateStacks is how many share the binary's implementation and
	// would be test-driven.
	CandidateStacks int
	// MissingLibraries is how many shared libraries ldd reports missing
	// under the chosen stack.
	MissingLibraries int
	// HasEnvTool reports whether a module system exists (its absence makes
	// discovery slower).
	HasEnvTool bool
	// FirstVisit marks the user's first migration to this site (account
	// setup, documentation reading).
	FirstVisit bool
}

// Manual estimates the effort of preparing the site by hand.
func Manual(p MigrationProfile) Estimate {
	e := Estimate{Label: "manual migration"}
	add := func(name string, expert, novice time.Duration, count int) {
		if count > 0 {
			e.Tasks = append(e.Tasks, Task{Name: name, Expert: expert, Novice: novice, Count: count})
		}
	}
	if p.FirstVisit {
		add("read site documentation, locate login/scratch", 10*time.Minute, 45*time.Minute, 1)
	}
	add("determine architecture and OS", 1*time.Minute, 10*time.Minute, 1)
	add("determine C library version", 2*time.Minute, 20*time.Minute, 1)
	if p.HasEnvTool {
		add("enumerate MPI stacks via module/softenv", 3*time.Minute, 15*time.Minute, 1)
	} else {
		add("hunt MPI installations across the filesystem", 15*time.Minute, 60*time.Minute, 1)
	}
	add("identify compiler behind each wrapper", 2*time.Minute, 10*time.Minute, p.Stacks)
	add("compile+submit hello world per candidate stack", 10*time.Minute, 30*time.Minute, p.CandidateStacks)
	add("run ldd, interpret missing dependencies", 3*time.Minute, 25*time.Minute, 1)
	add("locate, transfer, and stage a missing library", 15*time.Minute, 60*time.Minute, p.MissingLibraries)
	add("compose environment configuration (paths, launcher)", 5*time.Minute, 30*time.Minute, 1)
	return e
}

// WithFEAM estimates the effort of the same migration using FEAM: the only
// manual inputs are the per-site submission scripts (once) and reading the
// prediction output.
func WithFEAM(p MigrationProfile) Estimate {
	e := Estimate{Label: "migration with FEAM"}
	if p.FirstVisit {
		e.Tasks = append(e.Tasks, Task{
			Name: "write serial+parallel submission scripts", Expert: 5 * time.Minute,
			Novice: 20 * time.Minute, Count: 1,
		})
	}
	e.Tasks = append(e.Tasks,
		Task{Name: "launch FEAM phases via debug queue", Expert: 2 * time.Minute, Novice: 5 * time.Minute, Count: 1},
		Task{Name: "read prediction report, run config script", Expert: 2 * time.Minute, Novice: 5 * time.Minute, Count: 1},
	)
	return e
}

// Savings compares the two approaches for a persona.
func Savings(p MigrationProfile, persona Persona) time.Duration {
	return Manual(p).Total(persona) - WithFEAM(p).Total(persona)
}

// Comparison aggregates effort over a set of migrations.
type Comparison struct {
	Migrations   int
	ManualExpert time.Duration
	ManualNovice time.Duration
	FEAMExpert   time.Duration
	FEAMNovice   time.Duration
}

// Aggregate sums profiles.
func Aggregate(profiles []MigrationProfile) Comparison {
	c := Comparison{Migrations: len(profiles)}
	for _, p := range profiles {
		c.ManualExpert += Manual(p).Total(Expert)
		c.ManualNovice += Manual(p).Total(Novice)
		c.FEAMExpert += WithFEAM(p).Total(Expert)
		c.FEAMNovice += WithFEAM(p).Total(Novice)
	}
	return c
}

// String renders the aggregate comparison.
func (c Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "user effort across %d migrations:\n", c.Migrations)
	fmt.Fprintf(&b, "  manual:    expert %v, novice %v\n", c.ManualExpert, c.ManualNovice)
	fmt.Fprintf(&b, "  with FEAM: expert %v, novice %v\n", c.FEAMExpert, c.FEAMNovice)
	if c.ManualExpert > 0 {
		fmt.Fprintf(&b, "  savings:   expert %.0f%%, novice %.0f%%\n",
			100*(1-float64(c.FEAMExpert)/float64(c.ManualExpert)),
			100*(1-float64(c.FEAMNovice)/float64(c.ManualNovice)))
	}
	return b.String()
}
