// assert.go evaluates a scenario's declarative assertions against the
// finished run and renders human-readable diffs for the failures — the
// part of the simulator that turns "site X should flip to not-ready after
// the upgrade" into a CI-checkable statement.
package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"feam/internal/feam"
)

// determinant name keys used in YAML and JSON output.
const (
	detKeyISA        = "isa"
	detKeyCLibrary   = "clibrary"
	detKeyMPI        = "mpi"
	detKeySharedLibs = "sharedlibs"
	detKeyABI        = "abi"
)

func parseDeterminant(s string) (feam.Determinant, error) {
	switch s {
	case detKeyISA:
		return feam.DetISA, nil
	case detKeyCLibrary, "c_library":
		return feam.DetCLibrary, nil
	case detKeyMPI, "mpistack", "mpi_stack":
		return feam.DetMPIStack, nil
	case detKeySharedLibs, "shared_libs":
		return feam.DetSharedLibs, nil
	case detKeyABI:
		return feam.DetABI, nil
	default:
		return 0, fmt.Errorf("unknown determinant %q (want isa, clibrary, mpi, sharedlibs, or abi)", s)
	}
}

func determinantKey(d feam.Determinant) string {
	switch d {
	case feam.DetISA:
		return detKeyISA
	case feam.DetCLibrary:
		return detKeyCLibrary
	case feam.DetMPIStack:
		return detKeyMPI
	case feam.DetSharedLibs:
		return detKeySharedLibs
	case feam.DetABI:
		return detKeyABI
	}
	return fmt.Sprintf("determinant-%d", int(d))
}

func parseOutcome(s string) (feam.Outcome, error) {
	switch s {
	case "pass":
		return feam.Pass, nil
	case "fail":
		return feam.Fail, nil
	case "resolved":
		return feam.Resolved, nil
	case "not evaluated", "unknown":
		return feam.Unknown, nil
	default:
		return 0, fmt.Errorf("unknown outcome %q (want pass, fail, resolved, or \"not evaluated\")", s)
	}
}

// error classes a prediction assertion can expect.
const (
	errClassNone            = "none"
	errClassAny             = "any"
	errClassSiteUnavailable = "site_unavailable"
	errClassProbeFailed     = "probe_failed"
)

func parseErrorClass(s string) (string, error) {
	switch s {
	case "", errClassNone, errClassAny, errClassSiteUnavailable, errClassProbeFailed:
		return s, nil
	default:
		return "", fmt.Errorf("unknown error class %q (want none, any, site_unavailable, or probe_failed)", s)
	}
}

// errorClass names an assessment error by the engine's sentinel it wraps.
func errorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, feam.ErrSiteUnavailable):
		return errClassSiteUnavailable
	case errors.Is(err, feam.ErrProbeFailed):
		return errClassProbeFailed
	default:
		return "error"
	}
}

// assertionDesc is the one-line identity of an assertion in results and
// diffs.
func assertionDesc(i int, a Assertion) string {
	var parts []string
	switch a.Type {
	case AssertPrediction:
		parts = append(parts, "site="+a.Site)
	case AssertSpans:
		parts = append(parts, "op="+a.Op)
		if a.Site != "" {
			parts = append(parts, "site="+a.Site)
		}
		if a.Since != "" {
			parts = append(parts, "since="+a.Since)
		}
	case AssertMetric:
		parts = append(parts, "metric="+a.Metric)
	case AssertRanking:
		parts = append(parts, "first="+a.First)
	}
	if a.Survey != "" {
		parts = append(parts, "survey="+a.Survey)
	}
	return fmt.Sprintf("assertions[%d] %s{%s}", i, a.Type, strings.Join(parts, ", "))
}

// evaluate checks one assertion against the run state.
func (r *runner) evaluate(i int, a Assertion) AssertionResult {
	ar := AssertionResult{Index: i, Description: assertionDesc(i, a), OK: true}
	fail := func(format string, args ...any) {
		ar.OK = false
		if ar.Diff != "" {
			ar.Diff += "\n"
		}
		ar.Diff += fmt.Sprintf("%s: %s", ar.Description, fmt.Sprintf(format, args...))
	}

	switch a.Type {
	case AssertPrediction:
		assessment, diag, ok := r.lookupAssessment(a)
		if !ok {
			fail("%s", diag)
			return ar
		}
		r.checkPrediction(a, assessment, fail)

	case AssertSpans:
		counts, err := r.sinceCounts(a.Since)
		if err != nil {
			fail("%v", err)
			return ar
		}
		got := counts[opKey{op: a.Op, site: a.Site}]
		if a.Min != nil && got < *a.Min {
			fail("%d %s span(s), want >= %d", got, a.Op, *a.Min)
		}
		if a.Max != nil && got > *a.Max {
			fail("%d %s span(s), want <= %d", got, a.Op, *a.Max)
		}

	case AssertMetric:
		got := r.metrics.Counter(a.Metric).Load()
		if a.Min != nil && got < *a.Min {
			fail("metric %s = %d, want >= %d", a.Metric, got, *a.Min)
		}
		if a.Max != nil && got > *a.Max {
			fail("metric %s = %d, want <= %d", a.Metric, got, *a.Max)
		}

	case AssertRanking:
		assessments, diag, ok := r.lookupSurvey(a.Survey)
		if !ok {
			fail("%s", diag)
			return ar
		}
		if len(assessments) == 0 {
			fail("survey ranked no sites")
			return ar
		}
		if first := assessments[0].Site; first != a.First {
			fail("best-ranked site is %s, want %s\n%s", first, a.First, rankingTable(assessments))
		}

	case AssertSummary:
		assessments, diag, ok := r.lookupSurvey(a.Survey)
		if !ok {
			fail("%s", diag)
			return ar
		}
		sum := summarizeSurvey(assessments)
		check := func(what string, got int, want *int) {
			if want != nil && got != *want {
				fail("%d %s site(s), want %d\n%s", got, what, *want, surveyTable(assessments))
			}
		}
		check("ready", sum.Ready, a.ReadyCount)
		check("not-ready", sum.NotReady, a.NotReadyCount)
		check("errored", sum.Errors, a.ErrorCount)

	default:
		fail("unknown assertion type %q", a.Type)
	}
	return ar
}

// lookupSurvey resolves an assertion's survey reference (default: the
// last survey executed).
func (r *runner) lookupSurvey(name string) ([]feam.SiteAssessment, string, bool) {
	if name == "" {
		if len(r.surveyOrder) == 0 {
			return nil, "the timeline ran no survey", false
		}
		name = r.surveyOrder[len(r.surveyOrder)-1]
	}
	assessments, ok := r.surveys[name]
	if !ok {
		return nil, fmt.Sprintf("no survey named %q ran (surveys: %s)",
			name, strings.Join(r.surveyOrder, ", ")), false
	}
	return assessments, "", true
}

func (r *runner) lookupAssessment(a Assertion) (feam.SiteAssessment, string, bool) {
	assessments, diag, ok := r.lookupSurvey(a.Survey)
	if !ok {
		return feam.SiteAssessment{}, diag, false
	}
	for _, as := range assessments {
		if as.Site == a.Site {
			return as, "", true
		}
	}
	var names []string
	for _, as := range assessments {
		names = append(names, as.Site)
	}
	sort.Strings(names)
	return feam.SiteAssessment{}, fmt.Sprintf("survey has no assessment for site %q (sites: %s)",
		a.Site, strings.Join(names, ", ")), false
}

// checkPrediction applies a prediction assertion's expectations to one
// assessment, reporting each mismatch with the assessment's trail.
func (r *runner) checkPrediction(a Assertion, as feam.SiteAssessment, fail func(string, ...any)) {
	if a.Error != "" {
		got := errorClass(as.Err)
		want := a.Error
		okErr := false
		switch want {
		case errClassNone:
			okErr = as.Err == nil
		case errClassAny:
			okErr = as.Err != nil
		default:
			okErr = got == want
		}
		if !okErr {
			detail := "nil"
			if as.Err != nil {
				detail = fmt.Sprintf("%s (%v)", got, as.Err)
			}
			fail("assessment error is %s, want %s", detail, want)
		}
	}
	p := as.Prediction
	if a.Ready != nil {
		switch {
		case p == nil:
			fail("no prediction to check ready against (assessment error: %v)", as.Err)
		case p.Ready != *a.Ready:
			fail("ready = %v, want %v\n%s", p.Ready, *a.Ready, predictionTrail(p))
		}
	}
	if a.Determinant != "" {
		det, err := parseDeterminant(a.Determinant)
		if err != nil {
			fail("%v", err)
			return
		}
		want, err := parseOutcome(a.Outcome)
		if err != nil {
			fail("%v", err)
			return
		}
		switch {
		case p == nil:
			fail("no prediction to check determinant %s against (assessment error: %v)", a.Determinant, as.Err)
		case p.Determinants[det].Outcome != want:
			res := p.Determinants[det]
			fail("determinant %s = %s, want %s\n%s", a.Determinant, res.Outcome, want, predictionTrail(p))
		}
	}
	if a.ReasonContains != "" {
		text := assessmentText(as)
		if !strings.Contains(text, a.ReasonContains) {
			fail("nothing in the assessment mentions %q\n%s", a.ReasonContains, indent(text))
		}
	}
}

// predictionTrail renders the determinant ladder and failure reasons — the
// body of a readable assertion diff.
func predictionTrail(p *feam.Prediction) string {
	var b strings.Builder
	b.WriteString("  determinant trail:\n")
	for _, d := range feam.Determinants() {
		res := p.Determinants[d]
		fmt.Fprintf(&b, "    %-10s %s", determinantKey(d), res.Outcome)
		if res.Detail != "" {
			fmt.Fprintf(&b, " — %s", res.Detail)
		}
		b.WriteByte('\n')
	}
	for _, reason := range p.Reasons {
		fmt.Fprintf(&b, "  reason: %s\n", reason)
	}
	if p.SelectedStack != nil {
		fmt.Fprintf(&b, "  selected stack: %s\n", p.SelectedStack.Key)
	}
	return strings.TrimRight(b.String(), "\n")
}

// assessmentText flattens everything a ReasonContains check may match:
// failure reasons, determinant details, unresolved-library diagnoses, and
// the assessment error.
func assessmentText(as feam.SiteAssessment) string {
	var parts []string
	if as.Err != nil {
		parts = append(parts, as.Err.Error())
	}
	if p := as.Prediction; p != nil {
		parts = append(parts, p.Reasons...)
		for _, d := range feam.Determinants() {
			if detail := p.Determinants[d].Detail; detail != "" {
				parts = append(parts, detail)
			}
		}
		for lib, why := range p.UnresolvedLibs {
			parts = append(parts, lib+": "+why)
		}
	}
	return strings.Join(parts, "\n")
}

// surveyTable lists each assessment on one line — the diff body for
// summary mismatches.
func surveyTable(assessments []feam.SiteAssessment) string {
	var b strings.Builder
	for _, as := range assessments {
		switch {
		case as.Err != nil:
			fmt.Fprintf(&b, "    %-16s %-10s %v\n", as.Site, errorClass(as.Err), as.Err)
		case as.Prediction != nil && as.Prediction.Ready:
			extra := "as-is"
			if n := len(as.Prediction.ResolvedLibs); n > 0 {
				extra = fmt.Sprintf("with %d staged libraries", n)
			}
			fmt.Fprintf(&b, "    %-16s ready %s\n", as.Site, extra)
		case as.Prediction != nil:
			reason := ""
			if len(as.Prediction.Reasons) > 0 {
				reason = as.Prediction.Reasons[0]
			}
			fmt.Fprintf(&b, "    %-16s not ready: %s\n", as.Site, reason)
		default:
			fmt.Fprintf(&b, "    %-16s (no prediction)\n", as.Site)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// rankingTable shows the survey's order — the diff body for ranking
// mismatches.
func rankingTable(assessments []feam.SiteAssessment) string {
	var b strings.Builder
	for i, as := range assessments {
		status := "error"
		if as.Err == nil && as.Prediction != nil {
			if as.Prediction.Ready {
				status = "ready"
			} else {
				status = "not ready"
			}
		}
		fmt.Fprintf(&b, "    %2d. %-16s %s\n", i+1, as.Site, status)
	}
	return strings.TrimRight(b.String(), "\n")
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n")
}
