package scenario

import (
	"context"
	"fmt"
	"time"

	"feam/internal/batch"
	"feam/internal/fault"
	"feam/internal/feam"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
)

// BatchRunner routes every probe execution through the site's simulated
// resource manager instead of invoking it directly: it renders a native
// submission script for the site's manager flavor (PBS, SGE, SLURM),
// substitutes the probe command for the %CMD% placeholder — the
// round-trip FEAM performs on user-supplied templates — parses the script
// back to confirm nothing was lost, and submits the job through the
// site's debug queue so probe runs pay queue wait and show up in CPU-hour
// accounting. Moved here from feam-testbed so both the CLI and the
// simulator share it.
type BatchRunner struct {
	Inner feam.ProgramRunner
	TB    *testbed.Testbed
}

const (
	probeQueue    = "debug"
	probeWalltime = 10 * time.Minute
	probeRuntime  = 30 * time.Second
)

// RunProgram implements feam.ProgramRunner.
func (r *BatchRunner) RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
	cluster := r.TB.Clusters[site.Name]
	if cluster == nil {
		// Not a testbed site (imported image): run directly.
		return r.Inner.RunProgram(ctx, art, site, stackKey, extraLibDirs)
	}
	spec := batch.ScriptSpec{
		Manager:  r.TB.Specs[site.Name].Manager,
		JobName:  "feam-probe",
		Queue:    probeQueue,
		Nodes:    1,
		Tasks:    4,
		WallTime: probeWalltime,
		Command:  batch.CmdPlaceholder,
	}
	cmd := fmt.Sprintf("mpirun -np %d ./%s", spec.Nodes*spec.Tasks, art.Name)
	script := batch.Substitute(batch.Generate(spec), cmd)
	parsed, err := batch.Parse(script)
	if err != nil {
		return false, "batch: generated script unparseable: " + err.Error()
	}
	if parsed.Manager != spec.Manager || parsed.Command != cmd {
		return false, fmt.Sprintf("batch: script round-trip lost state (%s %q)", parsed.Manager, parsed.Command)
	}
	res, err := cluster.Submit(parsed, func(int) (bool, string, time.Duration) {
		ok, detail := r.Inner.RunProgram(ctx, art, site, stackKey, extraLibDirs)
		return ok, detail, probeRuntime
	}, 1, 0)
	if err != nil {
		return false, "batch: " + err.Error()
	}
	return res.Success, res.Output
}

// BeginProbeBatch implements fault.BatchProbeRunner: the submission-script
// template is rendered, parsed back, and validated once per probe session
// instead of once per probe, and the inner runner's own session setup is
// opened once alongside it. Each probe then submits a copy of the validated
// spec carrying its own command. Sites without a cluster decline batching
// (return nil) so fault.OpenBatch falls back to direct execution.
func (r *BatchRunner) BeginProbeBatch(ctx context.Context, site *sitemodel.Site, stackKey string) fault.ProbeBatch {
	cluster := r.TB.Clusters[site.Name]
	if cluster == nil {
		return nil
	}
	spec := batch.ScriptSpec{
		Manager:  r.TB.Specs[site.Name].Manager,
		JobName:  "feam-probe",
		Queue:    probeQueue,
		Nodes:    1,
		Tasks:    4,
		WallTime: probeWalltime,
		Command:  batch.CmdPlaceholder,
	}
	parsed, err := batch.Parse(batch.Generate(spec))
	if err != nil {
		return &failedBatch{detail: "batch: generated script unparseable: " + err.Error()}
	}
	if parsed.Manager != spec.Manager || parsed.Command != batch.CmdPlaceholder {
		return &failedBatch{detail: fmt.Sprintf("batch: script round-trip lost state (%s %q)", parsed.Manager, parsed.Command)}
	}
	return &clusterProbeBatch{
		cluster: cluster,
		spec:    parsed,
		inner:   fault.OpenBatch(ctx, r.Inner, site, stackKey),
	}
}

// clusterProbeBatch is one open probe session against a site's cluster: the
// validated script spec is reused for every submission, with only the probe
// command swapped in.
type clusterProbeBatch struct {
	cluster *batch.Cluster
	spec    batch.ScriptSpec
	inner   fault.ProbeBatch
}

// RunProbe implements fault.ProbeBatch.
func (b *clusterProbeBatch) RunProbe(ctx context.Context, art *toolchain.Artifact, extraLibDirs []string) fault.ProbeResult {
	spec := b.spec
	spec.Command = fmt.Sprintf("mpirun -np %d ./%s", spec.Nodes*spec.Tasks, art.Name)
	var last fault.ProbeResult
	res, err := b.cluster.Submit(spec, func(int) (bool, string, time.Duration) {
		last = b.inner.RunProbe(ctx, art, extraLibDirs)
		return last.Success, last.Detail, probeRuntime
	}, 1, 0)
	if err != nil {
		return fault.ClassifyDetail(false, "batch: "+err.Error())
	}
	if res.Output == last.Detail {
		// The job ran the probe and its output is the probe's own detail:
		// keep the inner runner's structured classification.
		return fault.ProbeResult{
			Success:    res.Success,
			Detail:     res.Output,
			MissingLib: last.MissingLib,
			Transient:  last.Transient,
		}
	}
	// Queue-level outcome (walltime kill, scheduler text): classify from
	// the output the way the unbatched path would.
	return fault.ClassifyDetail(res.Success, res.Output)
}

// Close implements fault.ProbeBatch.
func (b *clusterProbeBatch) Close() { b.inner.Close() }

// failedBatch is a probe session whose script template failed validation;
// every probe reports the validation failure.
type failedBatch struct{ detail string }

// RunProbe implements fault.ProbeBatch.
func (b *failedBatch) RunProbe(context.Context, *toolchain.Artifact, []string) fault.ProbeResult {
	return fault.ClassifyDetail(false, b.detail)
}

// Close implements fault.ProbeBatch.
func (b *failedBatch) Close() {}
