package scenario

import (
	"context"
	"fmt"
	"time"

	"feam/internal/batch"
	"feam/internal/feam"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
)

// BatchRunner routes every probe execution through the site's simulated
// resource manager instead of invoking it directly: it renders a native
// submission script for the site's manager flavor (PBS, SGE, SLURM),
// substitutes the probe command for the %CMD% placeholder — the
// round-trip FEAM performs on user-supplied templates — parses the script
// back to confirm nothing was lost, and submits the job through the
// site's debug queue so probe runs pay queue wait and show up in CPU-hour
// accounting. Moved here from feam-testbed so both the CLI and the
// simulator share it.
type BatchRunner struct {
	Inner feam.ProgramRunner
	TB    *testbed.Testbed
}

const (
	probeQueue    = "debug"
	probeWalltime = 10 * time.Minute
	probeRuntime  = 30 * time.Second
)

// RunProgram implements feam.ProgramRunner.
func (r *BatchRunner) RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
	cluster := r.TB.Clusters[site.Name]
	if cluster == nil {
		// Not a testbed site (imported image): run directly.
		return r.Inner.RunProgram(ctx, art, site, stackKey, extraLibDirs)
	}
	spec := batch.ScriptSpec{
		Manager:  r.TB.Specs[site.Name].Manager,
		JobName:  "feam-probe",
		Queue:    probeQueue,
		Nodes:    1,
		Tasks:    4,
		WallTime: probeWalltime,
		Command:  batch.CmdPlaceholder,
	}
	cmd := fmt.Sprintf("mpirun -np %d ./%s", spec.Nodes*spec.Tasks, art.Name)
	script := batch.Substitute(batch.Generate(spec), cmd)
	parsed, err := batch.Parse(script)
	if err != nil {
		return false, "batch: generated script unparseable: " + err.Error()
	}
	if parsed.Manager != spec.Manager || parsed.Command != cmd {
		return false, fmt.Sprintf("batch: script round-trip lost state (%s %q)", parsed.Manager, parsed.Command)
	}
	res, err := cluster.Submit(parsed, func(int) (bool, string, time.Duration) {
		ok, detail := r.Inner.RunProgram(ctx, art, site, stackKey, extraLibDirs)
		return ok, detail, probeRuntime
	}, 1, 0)
	if err != nil {
		return false, "batch: " + err.Error()
	}
	return res.Success, res.Output
}
