package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioYAML throws mutated scenario documents at the loader. The
// committed corpus seeds the fuzzer, so mutations explore the real schema
// rather than random bytes. Load must never panic, and anything it
// accepts must satisfy the invariants the runner depends on.
func FuzzScenarioYAML(f *testing.F) {
	files, err := filepath.Glob(filepath.Join(scenarioDir, "*.yaml"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no corpus files to seed from")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("name: x\nbinary:\n  plain: true\n"))
	f.Add([]byte("---\n"))
	f.Add([]byte("a: [1, 'two', \"three\"]\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Load(data)
		if err != nil {
			return
		}
		// Loaded scenarios are validated: the invariants the runner
		// assumes must hold.
		if sc.Name == "" {
			t.Fatal("Load accepted a scenario without a name")
		}
		total := 0
		if sc.Fleet.Base == FleetBaseTable2 {
			total += len(table2SiteNames())
		}
		for _, g := range sc.Fleet.Groups {
			if g.Name == "" {
				t.Fatal("Load accepted a group without a name")
			}
			if g.Count < 1 {
				t.Fatalf("Load accepted group %q with count %d", g.Name, g.Count)
			}
			total += g.Count
		}
		if total > maxFleetSites {
			t.Fatalf("Load accepted a %d-site fleet (cap %d)", total, maxFleetSites)
		}
		names := map[string]bool{"start": true}
		for _, ev := range sc.Events {
			if !knownAction(ev.Action) {
				t.Fatalf("Load accepted unknown action %q", ev.Action)
			}
			if ev.Name == "" {
				t.Fatal("Load left an event unnamed")
			}
			if names[ev.Name] {
				t.Fatalf("Load accepted duplicate event name %q", ev.Name)
			}
			names[ev.Name] = true
			if ev.Action == ActionFaultRate && (ev.Rate <= 0 || ev.Rate > 1) {
				t.Fatalf("Load accepted fault rate %v", ev.Rate)
			}
		}
		for _, a := range sc.Assertions {
			switch a.Type {
			case AssertPrediction, AssertSpans, AssertMetric, AssertRanking, AssertSummary:
			default:
				t.Fatalf("Load accepted unknown assertion type %q", a.Type)
			}
			if (a.Type == AssertSpans || a.Type == AssertMetric) && a.Min == nil && a.Max == nil {
				t.Fatalf("Load accepted an unbounded %s assertion", a.Type)
			}
		}
	})
}
