// fleet.go expands a FleetSpec into concrete testbed site specs and builds
// them: the parameter-sweep layer that turns one YAML group into dozens or
// hundreds of heterogeneous synthetic sites. feam-testbed routes its fleet
// construction through here too, so the Table II base fleet has exactly
// one definition.
package scenario

import (
	"fmt"
	"strings"

	"feam/internal/batch"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/testbed"
	"feam/internal/toolchain"
)

// FleetBaseTable2 names the built-in base fleet: the paper's five Table II
// evaluation sites.
const FleetBaseTable2 = "table2"

// LoadFleet parses a fleet spec from a YAML document. It accepts both a
// full scenario document (only its fleet: section is used — feam-server
// can point straight at an existing scenario file) and a bare fleet
// document with top-level base:/groups: keys.
func LoadFleet(data []byte) (FleetSpec, error) {
	doc, err := parseYAML(data)
	if err != nil {
		return FleetSpec{}, fmt.Errorf("fleet: %w", err)
	}
	d := &decoder{}
	var fs FleetSpec
	if _, ok := doc["fleet"]; ok {
		if sub := d.sub(doc, "fleet", "document"); sub != nil {
			fs = decodeFleet(d, sub)
		}
	} else {
		fs = decodeFleet(d, doc)
	}
	if errs := append(d.errs, validateFleet(fs)...); len(errs) > 0 {
		return FleetSpec{}, fmt.Errorf("fleet: %s", strings.Join(errs, "; "))
	}
	return fs, nil
}

// validateFleet performs the fleet-level semantic checks shared by
// scenario validation and standalone fleet loading.
func validateFleet(fs FleetSpec) []string {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	switch fs.Base {
	case "", FleetBaseTable2:
	default:
		bad("fleet.base: unknown base fleet %q", fs.Base)
	}
	groups := map[string]bool{}
	total := 0
	if fs.Base == FleetBaseTable2 {
		total += len(table2SiteNames())
	}
	for i, g := range fs.Groups {
		path := fmt.Sprintf("fleet.groups[%d]", i)
		if g.Name == "" {
			bad("%s.name is required", path)
		} else if groups[g.Name] {
			bad("%s: duplicate group name %q", path, g.Name)
		}
		groups[g.Name] = true
		if g.Count < 1 {
			bad("%s.count must be at least 1", path)
		}
		total += g.Count
		for _, isa := range g.ISA {
			if !knownISA(isa) {
				bad("%s.isa: unknown ISA %q", path, isa)
			}
		}
		for _, v := range g.Glibc {
			if _, err := parseVersion(v); err != nil {
				bad("%s.glibc: %v", path, err)
			}
		}
		if _, err := parseManager(g.Manager); err != nil {
			bad("%s.manager: %v", path, err)
		}
		switch g.EnvTool {
		case "", "modules", "softenv":
		default:
			bad("%s.env_tool: unknown tool %q", path, g.EnvTool)
		}
		for _, c := range g.Compilers {
			if _, err := parseCompiler(c); err != nil {
				bad("%s.compilers: %v", path, err)
			}
		}
		for _, s := range g.Stacks {
			if _, err := parseStack(s, g.Compilers); err != nil {
				bad("%s.stacks: %v", path, err)
			}
		}
		for _, s := range g.Broken {
			if _, err := parseBrokenMark(s); err != nil {
				bad("%s.broken: %v", path, err)
			}
		}
	}
	if total > maxFleetSites {
		bad("fleet declares %d sites; the simulator caps at %d", total, maxFleetSites)
	}
	return errs
}

// table2SiteNames lists the base fleet's site names.
func table2SiteNames() []string {
	specs := testbed.DefaultSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

func knownISA(isa string) bool {
	switch isa {
	case "x86_64", "i686", "ppc64", "ppc":
		return true
	}
	return false
}

// parseVersion wraps libver.ParseVersion with a required-field check.
func parseVersion(s string) (libver.Version, error) {
	if s == "" {
		return nil, fmt.Errorf("a version is required")
	}
	v, err := libver.ParseVersion(s)
	if err != nil {
		return nil, fmt.Errorf("bad version %q", s)
	}
	return v, nil
}

// parseManager maps a YAML manager name to the batch flavor ("" = PBS).
func parseManager(s string) (batch.Manager, error) {
	switch s {
	case "", "pbs":
		return batch.PBS, nil
	case "sge":
		return batch.SGE, nil
	case "slurm":
		return batch.SLURM, nil
	default:
		return batch.PBS, fmt.Errorf("unknown batch manager %q", s)
	}
}

// parseCompiler parses "<family>-<version>", e.g. "gnu-4.1.2".
func parseCompiler(s string) (toolchain.Compiler, error) {
	i := strings.IndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return toolchain.Compiler{}, fmt.Errorf("compiler %q: want \"family-version\"", s)
	}
	fam, ok := toolchain.FamilyFromKey(s[:i])
	if !ok {
		return toolchain.Compiler{}, fmt.Errorf("compiler %q: unknown family %q", s, s[:i])
	}
	return toolchain.Compiler{Family: fam, Version: s[i+1:]}, nil
}

// parseStack parses "<impl>-<version>/<family>[+<family>...]", e.g.
// "openmpi-1.4/gnu+intel". Families must be installed by the group.
func parseStack(s string, compilers []string) (testbed.StackSpec, error) {
	impl, version, families, err := splitStackRef(s)
	if err != nil {
		return testbed.StackSpec{}, err
	}
	ss := testbed.StackSpec{Impl: impl, Version: version}
	for _, fk := range families {
		fam, ok := toolchain.FamilyFromKey(fk)
		if !ok {
			return testbed.StackSpec{}, fmt.Errorf("stack %q: unknown compiler family %q", s, fk)
		}
		found := false
		for _, c := range compilers {
			if comp, err := parseCompiler(c); err == nil && comp.Family == fam {
				found = true
				break
			}
		}
		if !found {
			return testbed.StackSpec{}, fmt.Errorf("stack %q wants the %s compiler, which the group does not install", s, fk)
		}
		ss.Compilers = append(ss.Compilers, fam)
	}
	return ss, nil
}

// brokenMark identifies one (stack, family) combination to mark broken.
type brokenMark struct {
	impl    mpistack.Impl
	version string
	family  toolchain.Family
}

// parseBrokenMark parses "<impl>-<version>/<family>".
func parseBrokenMark(s string) (brokenMark, error) {
	impl, version, families, err := splitStackRef(s)
	if err != nil {
		return brokenMark{}, err
	}
	if len(families) != 1 {
		return brokenMark{}, fmt.Errorf("broken mark %q: exactly one compiler family expected", s)
	}
	fam, ok := toolchain.FamilyFromKey(families[0])
	if !ok {
		return brokenMark{}, fmt.Errorf("broken mark %q: unknown compiler family %q", s, families[0])
	}
	return brokenMark{impl: impl, version: version, family: fam}, nil
}

// splitStackRef splits "<impl>-<version>/<family>[+...]" into its parts.
func splitStackRef(s string) (mpistack.Impl, string, []string, error) {
	slash := strings.IndexByte(s, '/')
	if slash <= 0 || slash == len(s)-1 {
		return 0, "", nil, fmt.Errorf("stack %q: want \"impl-version/family[+family]\"", s)
	}
	ref, famPart := s[:slash], s[slash+1:]
	dash := strings.IndexByte(ref, '-')
	if dash <= 0 || dash == len(ref)-1 {
		return 0, "", nil, fmt.Errorf("stack %q: want \"impl-version\" before the slash", s)
	}
	impl, ok := mpistack.ImplFromKey(ref[:dash])
	if !ok {
		return 0, "", nil, fmt.Errorf("stack %q: unknown MPI implementation %q", s, ref[:dash])
	}
	return impl, ref[dash+1:], strings.Split(famPart, "+"), nil
}

// pick sweeps a list round-robin by site index; empty lists yield def.
func pick(list []string, i int, def string) string {
	if len(list) == 0 {
		return def
	}
	return list[i%len(list)]
}

// ExpandFleet turns a validated FleetSpec into concrete testbed site
// specs: the base fleet's specs first, then each group expanded to Count
// sites with its list-valued fields (ISA, glibc) swept round-robin.
func ExpandFleet(fs FleetSpec) ([]testbed.SiteSpec, error) {
	var specs []testbed.SiteSpec
	switch fs.Base {
	case "":
	case FleetBaseTable2:
		specs = testbed.DefaultSpecs()
	default:
		return nil, fmt.Errorf("scenario: unknown base fleet %q", fs.Base)
	}
	for _, g := range fs.Groups {
		expanded, err := expandGroup(g)
		if err != nil {
			return nil, fmt.Errorf("scenario: group %s: %v", g.Name, err)
		}
		specs = append(specs, expanded...)
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			return nil, fmt.Errorf("scenario: duplicate site name %q in fleet", s.Name)
		}
		seen[s.Name] = true
	}
	return specs, nil
}

// GroupSiteName names the i-th site of a group; single-site groups use
// the bare group name.
func GroupSiteName(g FleetGroup, i int) string {
	if g.Count == 1 {
		return g.Name
	}
	return fmt.Sprintf("%s-%d", g.Name, i)
}

func expandGroup(g FleetGroup) ([]testbed.SiteSpec, error) {
	if g.Name == "" {
		return nil, fmt.Errorf("group needs a name")
	}
	count := g.Count
	if count < 1 {
		count = 1
	}
	manager, err := parseManager(g.Manager)
	if err != nil {
		return nil, err
	}
	var compilers []toolchain.Compiler
	for _, c := range g.Compilers {
		comp, err := parseCompiler(c)
		if err != nil {
			return nil, err
		}
		compilers = append(compilers, comp)
	}
	var stacks []testbed.StackSpec
	for _, s := range g.Stacks {
		ss, err := parseStack(s, g.Compilers)
		if err != nil {
			return nil, err
		}
		stacks = append(stacks, ss)
	}
	for _, b := range g.Broken {
		mark, err := parseBrokenMark(b)
		if err != nil {
			return nil, err
		}
		applied := false
		for i := range stacks {
			if stacks[i].Impl == mark.impl && stacks[i].Version == mark.version {
				if stacks[i].Broken == nil {
					stacks[i].Broken = map[toolchain.Family]bool{}
				}
				stacks[i].Broken[mark.family] = true
				applied = true
			}
		}
		if !applied {
			return nil, fmt.Errorf("broken mark %q matches no declared stack", b)
		}
	}

	out := make([]testbed.SiteSpec, 0, count)
	for i := 0; i < count; i++ {
		glibcStr := pick(g.Glibc, i, "2.5")
		glibc, err := parseVersion(glibcStr)
		if err != nil {
			return nil, err
		}
		spec := testbed.SiteSpec{
			Name:        GroupSiteName(g, i),
			Description: fmt.Sprintf("scenario group %s site %d", g.Name, i),
			SystemType:  orDefault(g.SystemType, "Cluster"),
			Cores:       g.Cores,
			ISA:         pick(g.ISA, i, "x86_64"),
			Distro:      orDefault(g.Distro, "CentOS"),
			OSVersion:   orDefault(g.OSVersion, "5.6"),
			Kernel:      orDefault(g.Kernel, "2.6.18-238.el5"),
			ReleaseFile: orDefault(g.ReleaseFile, "/etc/redhat-release"),
			Glibc:       glibc,
			CPUName:     orDefault(g.CPU, "Intel Xeon E5620 (Westmere)"),
			FeatureLevel: func() int {
				if g.FeatureLevel > 0 {
					return g.FeatureLevel
				}
				return 2
			}(),
			Compilers:         compilers,
			EnvTool:           g.EnvTool,
			Infiniband:        g.Infiniband,
			Manager:           manager,
			SysErrRate:        g.SysErrRate,
			CompatFortranLibs: g.CompatFortranLibs,
			Stacks:            stacks,
		}
		if spec.Cores == 0 {
			spec.Cores = 64
		}
		out = append(out, spec)
	}
	return out, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// BuildFleet materializes a FleetSpec into a built testbed: site
// filesystems populated, compilers and MPI stacks installed, batch
// clusters attached. This is the fleet constructor both the simulator and
// feam-testbed use.
func BuildFleet(fs FleetSpec) (*testbed.Testbed, error) {
	specs, err := ExpandFleet(fs)
	if err != nil {
		return nil, err
	}
	return testbed.BuildFrom(specs)
}

// BuildGroupSite materializes one extra site from a group template — the
// site_join churn event. The explicit name must not collide with an
// already-built site; sweepIndex positions the site in the group's
// ISA/glibc rotation.
func BuildGroupSite(g FleetGroup, name string, sweepIndex int) (*testbed.Testbed, error) {
	single := g
	single.Count = 1
	single.Name = name
	single.ISA = []string{pick(g.ISA, sweepIndex, "x86_64")}
	single.Glibc = []string{pick(g.Glibc, sweepIndex, "2.5")}
	return BuildFleet(FleetSpec{Groups: []FleetGroup{single}})
}
