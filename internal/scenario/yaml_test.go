package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLStructure(t *testing.T) {
	doc := `
# leading comment
name: demo
description: "a: quoted # not a comment"
seed: 42
fleet:
  base: table2
  groups:
    - name: pool
      count: 3
      isa: [x86_64, ppc64]
      glibc: ["2.5", '2.12']
events:
  - at: 0s
    action: survey
  - at: 1m
    action: upgrade_glibc
    target: pool
    version: "2.12"
empty:
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	want := map[string]any{
		"name":        "demo",
		"description": "a: quoted # not a comment",
		"seed":        "42",
		"fleet": map[string]any{
			"base": "table2",
			"groups": []any{
				map[string]any{
					"name":  "pool",
					"count": "3",
					"isa":   []any{"x86_64", "ppc64"},
					"glibc": []any{"2.5", "2.12"},
				},
			},
		},
		"events": []any{
			map[string]any{"at": "0s", "action": "survey"},
			map[string]any{"at": "1m", "action": "upgrade_glibc", "target": "pool", "version": "2.12"},
		},
		"empty": "",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed document mismatch\n got: %#v\nwant: %#v", got, want)
	}
}

func TestParseYAMLScalars(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{`k: plain`, "plain"},
		{`k: 'single ''quoted'''`, "single 'quoted'"},
		{`k: "tab\tnewline\nquote\" done"`, "tab\tnewline\nquote\" done"},
		{`k: [a, "b, c", 'd']`, []any{"a", "b, c", "d"}},
		{`k: []`, []any{}},
		{`k: value # trailing comment`, "value"},
		{`k: http://host/path#frag`, "http://host/path#frag"}, // '#' only after space
	}
	for _, tc := range cases {
		m, err := parseYAML([]byte(tc.in))
		if err != nil {
			t.Errorf("parseYAML(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(m["k"], tc.want) {
			t.Errorf("parseYAML(%q) = %#v, want %#v", tc.in, m["k"], tc.want)
		}
	}
}

func TestParseYAMLLeadingDocumentMarker(t *testing.T) {
	m, err := parseYAML([]byte("---\nname: x\n"))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	if m["name"] != "x" {
		t.Errorf("name = %#v, want %q", m["name"], "x")
	}
}

// TestParseYAMLErrors checks that every rejected construct carries its
// source line and a message naming the problem.
func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		line int
		msg  string
	}{
		{"tab indent", "a: 1\n\tb: 2\n", 2, "tab in indentation"},
		{"anchor", "a: 1\n&anchor b: 2\n", 2, "not supported"},
		{"alias", "*x\n", 1, "not supported"},
		{"block scalar", "|\n  text\n", 1, "not supported"},
		{"multi-doc", "a: 1\n---\nb: 2\n", 2, "multi-document"},
		{"flow mapping", "a: {k: v}\n", 1, "flow mappings"},
		{"duplicate key", "a: 1\na: 2\n", 2, `duplicate key "a"`},
		{"bad key", "a b: 1\n", 1, "invalid key"},
		{"no colon", "justtext\n", 1, "expected \"key: value\""},
		{"missing space after colon", "a:1\n", 1, "missing space"},
		{"over-indent in mapping", "a: 1\n  b: 2\n", 2, "unexpected indentation"},
		{"seq item in mapping", "a: 1\n- b\n", 2, "sequence item inside a mapping"},
		{"unterminated flow seq", "a: [1, 2\n", 1, "unterminated flow sequence"},
		{"nested flow seq", "a: [[1], 2]\n", 1, "nested flow collections"},
		{"empty flow element", "a: [1, , 2]\n", 1, "empty element"},
		{"unterminated single quote", "a: 'oops\n", 1, "unterminated single-quoted"},
		{"unterminated double quote", "a: \"oops\n", 1, "unterminated double-quoted"},
		{"bad escape", `a: "x\q"` + "\n", 1, "unsupported escape"},
		{"top-level sequence", "- a\n- b\n", 1, "document must be a mapping"},
		{"indented start", "  a: 1\n", 1, "column one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.in))
			if err == nil {
				t.Fatalf("parseYAML(%q) succeeded, want error containing %q", tc.in, tc.msg)
			}
			ye, ok := err.(*yamlError)
			if !ok {
				t.Fatalf("error is %T, want *yamlError: %v", err, err)
			}
			if ye.Line != tc.line {
				t.Errorf("error line = %d, want %d (%v)", ye.Line, tc.line, err)
			}
			if !strings.Contains(ye.Msg, tc.msg) {
				t.Errorf("error %q does not mention %q", ye.Msg, tc.msg)
			}
		})
	}
}

// TestParseYAMLInlineSequenceMappings covers the "- key: value" rewrite:
// later keys of the item continue at the key's column, and sibling items
// restart at the dash.
func TestParseYAMLInlineSequenceMappings(t *testing.T) {
	doc := `
items:
  - name: a
    value: 1
  - name: b
    nested:
      deep: true
  - plain-scalar
  -
`
	m, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	items, ok := m["items"].([]any)
	if !ok || len(items) != 4 {
		t.Fatalf("items = %#v, want 4-element sequence", m["items"])
	}
	first := items[0].(map[string]any)
	if first["name"] != "a" || first["value"] != "1" {
		t.Errorf("items[0] = %#v", first)
	}
	second := items[1].(map[string]any)
	nested, ok := second["nested"].(map[string]any)
	if !ok || nested["deep"] != "true" {
		t.Errorf("items[1] = %#v", second)
	}
	if items[2] != "plain-scalar" || items[3] != "" {
		t.Errorf("items[2:] = %#v", items[2:])
	}
}

func TestParseYAMLEmptyDocument(t *testing.T) {
	for _, in := range []string{"", "\n\n", "# only comments\n"} {
		m, err := parseYAML([]byte(in))
		if err != nil {
			t.Errorf("parseYAML(%q): %v", in, err)
		}
		if len(m) != 0 {
			t.Errorf("parseYAML(%q) = %#v, want empty mapping", in, m)
		}
	}
}
