// Package scenario is the fleet-scale scenario simulator: YAML files
// declare a fleet of heterogeneous synthetic sites (built from
// internal/sitemodel templates with parameter sweeps), a deterministic
// timeline of events (site churn, mid-survey C-library upgrades, library
// deletions, fault-rate spikes, partial outages, process restarts), and
// declarative assertions over the resulting predictions, determinant
// trails, span counts, and metrics.
//
// Every hardening PR so far earned its failure modes bespoke Go tests
// against tiny ad-hoc fleets; the simulator turns each failure mode into a
// committed scenario file under testdata/scenarios/ that CI replays as a
// subtest, so regression coverage grows by writing YAML, not test code.
// The cmd/feam-sim CLI runs, validates, and lists scenario files.
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Scenario is one loaded scenario file.
type Scenario struct {
	// Name identifies the scenario in results; Description says what it
	// proves.
	Name        string
	Description string
	// Seed drives every source of scripted nondeterminism: fault policies,
	// the execution simulator, and sweep assignment. Runs with equal seeds
	// are identical.
	Seed int64
	// Fleet declares the sites to build.
	Fleet FleetSpec
	// Binary declares the application whose readiness the scenario
	// predicts.
	Binary BinarySpec
	// Events is the timeline, executed in order of At (ties keep file
	// order).
	Events []Event
	// Assertions are checked after the timeline completes.
	Assertions []Assertion
}

// FleetSpec declares the simulated fleet.
type FleetSpec struct {
	// Base names a built-in fleet to start from: "" (empty) or "table2"
	// (the paper's five evaluation sites).
	Base string
	// Groups are parameter-sweep site templates expanded into Count sites
	// each.
	Groups []FleetGroup
}

// FleetGroup is a site template plus sweep parameters. Count sites named
// "<name>-0" ... "<name>-<count-1>" are generated (a single-site group uses
// the bare name); list-valued fields are swept round-robin across the
// group's sites.
type FleetGroup struct {
	Name  string
	Count int

	// ISA is the hardware architecture, swept when multiple are given:
	// "x86_64" (default), "i686", "ppc64", or "ppc".
	ISA []string
	// Glibc is the C library release, swept when multiple are given.
	Glibc []string

	SystemType  string
	Cores       int
	Distro      string
	OSVersion   string
	Kernel      string
	ReleaseFile string
	CPU         string
	// FeatureLevel is the ground-truth CPU ISA extension level.
	FeatureLevel int
	// EnvTool is "modules", "softenv", or "" (path search).
	EnvTool string
	// Manager is the batch system: "pbs" (default), "sge", or "slurm".
	Manager    string
	Infiniband bool
	SysErrRate float64
	// CompatFortranLibs installs the distribution's compatibility Fortran
	// runtime.
	CompatFortranLibs bool

	// Compilers lists installations as "<family>-<version>", e.g.
	// "gnu-4.1.2".
	Compilers []string
	// Stacks lists MPI installations as "<impl>-<version>/<family>[+...]",
	// e.g. "openmpi-1.4/gnu+intel".
	Stacks []string
	// Broken marks misconfigured stack builds as "<impl>-<version>/<family>".
	Broken []string
}

// BinarySpec declares the application binary. Exactly one of the two modes
// is used: compile (Workload at Source with Stack) or plain (a synthetic
// non-MPI executable with a C library requirement).
type BinarySpec struct {
	// Name overrides the binary's display name.
	Name string

	// Workload, Source, Stack select compile mode: build the named
	// workload (e.g. "cg") at the named fleet site with the named stack.
	Workload string
	Source   string
	Stack    string

	// Plain selects plain mode.
	Plain bool
	// Glibc is the plain binary's required C library version (default
	// "2.3.4", the ladder floor).
	Glibc string
	// Needs adds DT_NEEDED dependencies beyond libc to the plain binary.
	Needs []string
	// Imports adds undefined dynamic symbols to the plain binary, each
	// "name", "name@version:library", or "name@version" — the surface the
	// ABI determinant resolves. Versioned entries synthesize the matching
	// version-requirement record.
	Imports []string
}

// Event is one timeline entry. Fields beyond At/Name/Action apply per
// action; Validate rejects inapplicable ones.
type Event struct {
	// At orders the timeline (virtual time; nothing sleeps).
	At time.Duration
	// Name labels the event for assertions ("event-<index>" when empty).
	Name string
	// Action is one of the Action* constants.
	Action string

	// Targets names the sites an action applies to; empty means every
	// fleet site. Group names select all of the group's current sites.
	Targets []string

	// Version is the C library release for ActionUpgradeGlibc.
	Version string
	// Path is the file or glob removed by ActionRemoveLibrary, or the
	// library file rewritten by ActionStripSymbol.
	Path string
	// Symbol is the exported symbol ActionStripSymbol removes.
	Symbol string
	// Rate, Transient, Ops parameterize ActionFaultRate.
	Rate      float64
	Transient float64
	Ops       []string
	// Group names the fleet group template for ActionSiteJoin.
	Group string
	// Resolve enables the resolution model during ActionSurvey (requires
	// the scenario binary to be compile-mode, which produces a bundle).
	Resolve bool
	// Abi runs ActionSurvey with the extended five-determinant ladder
	// (symbol-level ABI resolution, agreement mode on) instead of the
	// paper's default four.
	Abi bool
}

// Timeline actions.
const (
	// ActionSurvey ranks the current fleet for the scenario binary and
	// records the assessments under the event name.
	ActionSurvey = "survey"
	// ActionUpgradeGlibc swaps the targets' installed C library family to
	// Version (up- or downgrade); the vfs generation counter invalidates
	// their cached surveys.
	ActionUpgradeGlibc = "upgrade_glibc"
	// ActionRemoveLibrary deletes files matching Path at the targets.
	ActionRemoveLibrary = "remove_library"
	// ActionFaultRate starts injecting faults at the targets: vfs
	// operations and probe runs fail with probability Rate (Transient
	// fraction retryable), deterministically from the scenario seed.
	ActionFaultRate = "fault_rate"
	// ActionClearFaults stops fault injection at the targets.
	ActionClearFaults = "clear_faults"
	// ActionOutage takes the targets down: every filesystem operation and
	// probe fails permanently and their cached surveys are invalidated, so
	// surveys degrade to site-unavailable assessments.
	ActionOutage = "outage"
	// ActionRestore ends an outage.
	ActionRestore = "restore"
	// ActionSiteJoin adds a new site built from the Group template.
	ActionSiteJoin = "site_join"
	// ActionSiteLeave removes the targets from the fleet.
	ActionSiteLeave = "site_leave"
	// ActionRestart kills the engine and rehydrates a fresh one (new
	// registry, reopened store) — the crash-recovery event.
	ActionRestart = "restart"
	// ActionInvalidate drops the targets' cached and persisted surveys.
	ActionInvalidate = "invalidate"
	// ActionStripSymbol rewrites the library at Path on the targets with
	// every export named Symbol removed — the soname survives but the
	// symbol surface shrinks, the seam between library-level and
	// symbol-level checking.
	ActionStripSymbol = "strip_symbol"
)

func knownAction(a string) bool {
	switch a {
	case ActionSurvey, ActionUpgradeGlibc, ActionRemoveLibrary, ActionFaultRate,
		ActionClearFaults, ActionOutage, ActionRestore, ActionSiteJoin,
		ActionSiteLeave, ActionRestart, ActionInvalidate, ActionStripSymbol:
		return true
	}
	return false
}

// Assertion is one declarative check over the finished run.
type Assertion struct {
	// Type is one of the Assert* constants.
	Type string

	// Survey names the survey event a prediction/summary/ranking assertion
	// reads (default: the last survey).
	Survey string
	// Site scopes prediction and span assertions to one site.
	Site string

	// Ready is the expected headline answer (prediction).
	Ready *bool
	// Determinant/Outcome check one determinant trail entry (prediction):
	// determinant "isa", "clibrary", "mpi", "sharedlibs", or "abi";
	// outcome "pass", "fail", "resolved", or "not evaluated".
	Determinant string
	Outcome     string
	// Error expects the assessment error class: "none",
	// "site_unavailable", "probe_failed", or "any" (prediction).
	Error string
	// ReasonContains expects a substring of the prediction's failure
	// reasons or determinant details (prediction).
	ReasonContains string

	// Op is the span operation a spans assertion counts (e.g. "discover");
	// Since restricts the count to spans after the named event.
	Op    string
	Since string

	// Metric names the counter a metric assertion reads.
	Metric string

	// First is the expected top-ranked site (ranking).
	First string

	// ReadyCount / NotReadyCount / ErrorCount are summary expectations.
	ReadyCount    *int
	NotReadyCount *int
	ErrorCount    *int

	// Min/Max bound counted quantities (spans, metric). Both nil is
	// rejected for those types.
	Min *int64
	Max *int64
}

// Assertion types.
const (
	// AssertPrediction checks one site's assessment in a survey.
	AssertPrediction = "prediction"
	// AssertSpans bounds the number of spans of one operation (optionally
	// per site, optionally since an event).
	AssertSpans = "spans"
	// AssertMetric bounds one metrics-registry counter.
	AssertMetric = "metric"
	// AssertRanking checks the best-ranked site of a survey.
	AssertRanking = "ranking"
	// AssertSummary checks a survey's ready/not-ready/error tallies.
	AssertSummary = "summary"
)

// Load parses and validates a scenario document. All structural and
// semantic problems are reported together, wrapped in one error.
func Load(data []byte) (*Scenario, error) {
	doc, err := parseYAML(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	d := &decoder{}
	sc := decodeScenario(d, doc)
	if errs := append(d.errs, validate(sc)...); len(errs) > 0 {
		return nil, fmt.Errorf("scenario: %s", strings.Join(errs, "; "))
	}
	return sc, nil
}

// decoder accumulates decode errors so one Load reports every problem.
type decoder struct {
	errs []string
}

func (d *decoder) errf(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

// unknown flags keys the schema does not define — the typo guard that
// keeps a misspelled assertion from silently asserting nothing.
func (d *decoder) unknown(m map[string]any, path string, known ...string) {
	var bad []string
	for k := range m {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	for _, k := range bad {
		d.errf("%s: unknown key %q", path, k)
	}
}

func (d *decoder) str(m map[string]any, key, path string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s.%s: expected a scalar", path, key)
		return ""
	}
	return s
}

func (d *decoder) integer(m map[string]any, key, path string) int64 {
	s := d.str(m, key, path)
	if s == "" {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.errf("%s.%s: %q is not an integer", path, key, s)
		return 0
	}
	return n
}

func (d *decoder) float(m map[string]any, key, path string) float64 {
	s := d.str(m, key, path)
	if s == "" {
		return 0
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.errf("%s.%s: %q is not a number", path, key, s)
		return 0
	}
	return f
}

func (d *decoder) boolean(m map[string]any, key, path string) bool {
	s := d.str(m, key, path)
	switch s {
	case "", "false", "no":
		return false
	case "true", "yes":
		return true
	default:
		d.errf("%s.%s: %q is not a boolean", path, key, s)
		return false
	}
}

// optBool distinguishes absent from false.
func (d *decoder) optBool(m map[string]any, key, path string) *bool {
	if _, ok := m[key]; !ok {
		return nil
	}
	v := d.boolean(m, key, path)
	return &v
}

// optInt distinguishes absent from zero.
func (d *decoder) optInt(m map[string]any, key, path string) *int {
	if _, ok := m[key]; !ok {
		return nil
	}
	v := int(d.integer(m, key, path))
	return &v
}

// optInt64 distinguishes absent from zero.
func (d *decoder) optInt64(m map[string]any, key, path string) *int64 {
	if _, ok := m[key]; !ok {
		return nil
	}
	v := d.integer(m, key, path)
	return &v
}

// duration accepts "30s"-style durations and bare integers (seconds).
func (d *decoder) duration(m map[string]any, key, path string) time.Duration {
	s := d.str(m, key, path)
	if s == "" {
		return 0
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Duration(n) * time.Second
	}
	dur, err := time.ParseDuration(s)
	if err != nil || dur < 0 {
		d.errf("%s.%s: %q is not a duration", path, key, s)
		return 0
	}
	return dur
}

// strList accepts a sequence of scalars or a single scalar.
func (d *decoder) strList(m map[string]any, key, path string) []string {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	switch vv := v.(type) {
	case string:
		if vv == "" {
			return nil
		}
		return []string{vv}
	case []any:
		out := make([]string, 0, len(vv))
		for i, item := range vv {
			s, ok := item.(string)
			if !ok {
				d.errf("%s.%s[%d]: expected a scalar", path, key, i)
				continue
			}
			out = append(out, s)
		}
		return out
	default:
		d.errf("%s.%s: expected a list", path, key)
		return nil
	}
}

// sub returns a nested mapping (nil when absent).
func (d *decoder) sub(m map[string]any, key, path string) map[string]any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	mm, ok := v.(map[string]any)
	if !ok {
		if s, isStr := v.(string); isStr && s == "" {
			return nil
		}
		d.errf("%s.%s: expected a mapping", path, key)
		return nil
	}
	return mm
}

// seq returns a nested sequence of mappings.
func (d *decoder) seq(m map[string]any, key, path string) []map[string]any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	items, ok := v.([]any)
	if !ok {
		if s, isStr := v.(string); isStr && s == "" {
			return nil
		}
		d.errf("%s.%s: expected a sequence", path, key)
		return nil
	}
	out := make([]map[string]any, 0, len(items))
	for i, item := range items {
		mm, ok := item.(map[string]any)
		if !ok {
			d.errf("%s.%s[%d]: expected a mapping", path, key, i)
			continue
		}
		out = append(out, mm)
	}
	return out
}

func decodeScenario(d *decoder, doc map[string]any) *Scenario {
	d.unknown(doc, "scenario", "name", "description", "seed", "fleet", "binary", "events", "assertions")
	sc := &Scenario{
		Name:        d.str(doc, "name", "scenario"),
		Description: d.str(doc, "description", "scenario"),
		Seed:        d.integer(doc, "seed", "scenario"),
	}
	if fleet := d.sub(doc, "fleet", "scenario"); fleet != nil {
		sc.Fleet = decodeFleet(d, fleet)
	}
	if bin := d.sub(doc, "binary", "scenario"); bin != nil {
		sc.Binary = decodeBinary(d, bin)
	}
	for i, ev := range d.seq(doc, "events", "scenario") {
		sc.Events = append(sc.Events, decodeEvent(d, ev, fmt.Sprintf("events[%d]", i)))
	}
	for i, as := range d.seq(doc, "assertions", "scenario") {
		sc.Assertions = append(sc.Assertions, decodeAssertion(d, as, fmt.Sprintf("assertions[%d]", i)))
	}
	return sc
}

func decodeFleet(d *decoder, m map[string]any) FleetSpec {
	d.unknown(m, "fleet", "base", "groups")
	fs := FleetSpec{Base: d.str(m, "base", "fleet")}
	for i, g := range d.seq(m, "groups", "fleet") {
		fs.Groups = append(fs.Groups, decodeGroup(d, g, fmt.Sprintf("fleet.groups[%d]", i)))
	}
	return fs
}

func decodeGroup(d *decoder, m map[string]any, path string) FleetGroup {
	d.unknown(m, path, "name", "count", "isa", "glibc", "system_type", "cores",
		"distro", "os_version", "kernel", "release_file", "cpu", "feature_level",
		"env_tool", "manager", "infiniband", "sys_err_rate", "compat_fortran_libs",
		"compilers", "stacks", "broken")
	g := FleetGroup{
		Name:              d.str(m, "name", path),
		Count:             int(d.integer(m, "count", path)),
		ISA:               d.strList(m, "isa", path),
		Glibc:             d.strList(m, "glibc", path),
		SystemType:        d.str(m, "system_type", path),
		Cores:             int(d.integer(m, "cores", path)),
		Distro:            d.str(m, "distro", path),
		OSVersion:         d.str(m, "os_version", path),
		Kernel:            d.str(m, "kernel", path),
		ReleaseFile:       d.str(m, "release_file", path),
		CPU:               d.str(m, "cpu", path),
		FeatureLevel:      int(d.integer(m, "feature_level", path)),
		EnvTool:           d.str(m, "env_tool", path),
		Manager:           d.str(m, "manager", path),
		Infiniband:        d.boolean(m, "infiniband", path),
		SysErrRate:        d.float(m, "sys_err_rate", path),
		CompatFortranLibs: d.boolean(m, "compat_fortran_libs", path),
		Compilers:         d.strList(m, "compilers", path),
		Stacks:            d.strList(m, "stacks", path),
		Broken:            d.strList(m, "broken", path),
	}
	if g.Count == 0 {
		g.Count = 1
	}
	return g
}

func decodeBinary(d *decoder, m map[string]any) BinarySpec {
	d.unknown(m, "binary", "name", "workload", "source", "stack", "plain", "glibc", "needs", "imports")
	return BinarySpec{
		Name:     d.str(m, "name", "binary"),
		Workload: d.str(m, "workload", "binary"),
		Source:   d.str(m, "source", "binary"),
		Stack:    d.str(m, "stack", "binary"),
		Plain:    d.boolean(m, "plain", "binary"),
		Glibc:    d.str(m, "glibc", "binary"),
		Needs:    d.strList(m, "needs", "binary"),
		Imports:  d.strList(m, "imports", "binary"),
	}
}

func decodeEvent(d *decoder, m map[string]any, path string) Event {
	d.unknown(m, path, "at", "name", "action", "target", "targets",
		"version", "path", "symbol", "rate", "transient", "ops", "group", "resolve", "abi")
	ev := Event{
		At:        d.duration(m, "at", path),
		Name:      d.str(m, "name", path),
		Action:    d.str(m, "action", path),
		Targets:   d.strList(m, "targets", path),
		Version:   d.str(m, "version", path),
		Path:      d.str(m, "path", path),
		Symbol:    d.str(m, "symbol", path),
		Rate:      d.float(m, "rate", path),
		Transient: d.float(m, "transient", path),
		Ops:       d.strList(m, "ops", path),
		Group:     d.str(m, "group", path),
		Resolve:   d.boolean(m, "resolve", path),
		Abi:       d.boolean(m, "abi", path),
	}
	if t := d.str(m, "target", path); t != "" {
		ev.Targets = append([]string{t}, ev.Targets...)
	}
	return ev
}

func decodeAssertion(d *decoder, m map[string]any, path string) Assertion {
	d.unknown(m, path, "type", "survey", "site", "ready", "determinant",
		"outcome", "error", "reason_contains", "op", "since", "metric",
		"first", "ready_count", "not_ready_count", "error_count", "min", "max")
	return Assertion{
		Type:           d.str(m, "type", path),
		Survey:         d.str(m, "survey", path),
		Site:           d.str(m, "site", path),
		Ready:          d.optBool(m, "ready", path),
		Determinant:    d.str(m, "determinant", path),
		Outcome:        d.str(m, "outcome", path),
		Error:          d.str(m, "error", path),
		ReasonContains: d.str(m, "reason_contains", path),
		Op:             d.str(m, "op", path),
		Since:          d.str(m, "since", path),
		Metric:         d.str(m, "metric", path),
		First:          d.str(m, "first", path),
		ReadyCount:     d.optInt(m, "ready_count", path),
		NotReadyCount:  d.optInt(m, "not_ready_count", path),
		ErrorCount:     d.optInt(m, "error_count", path),
		Min:            d.optInt64(m, "min", path),
		Max:            d.optInt64(m, "max", path),
	}
}

// parseImport splits a binary.imports entry "name[@version[:library]]".
// A versioned entry without a library defaults to libc.so.6 at build time.
func parseImport(s string) (name, version, library string, err error) {
	name = s
	if i := strings.IndexByte(s, '@'); i >= 0 {
		name = s[:i]
		rest := s[i+1:]
		version = rest
		if j := strings.IndexByte(rest, ':'); j >= 0 {
			version, library = rest[:j], rest[j+1:]
			if library == "" {
				return "", "", "", fmt.Errorf("empty library after %q", rest[:j+1])
			}
		}
		if version == "" {
			return "", "", "", fmt.Errorf("empty version in %q", s)
		}
	}
	if name == "" {
		return "", "", "", fmt.Errorf("empty symbol name in %q", s)
	}
	return name, version, library, nil
}

// maxFleetSites bounds scenario fleets; beyond this the simulator is the
// wrong tool (and a typo'd count would eat the CI budget).
const maxFleetSites = 5000

// validate performs semantic checks over a decoded scenario and returns
// every problem found.
func validate(sc *Scenario) []string {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	if sc.Name == "" {
		bad("scenario.name is required")
	}
	errs = append(errs, validateFleet(sc.Fleet)...)
	// Event validation below needs the group names for site_join refs.
	groups := map[string]bool{}
	for _, g := range sc.Fleet.Groups {
		groups[g.Name] = true
	}

	b := sc.Binary
	compileMode := b.Workload != "" || b.Source != "" || b.Stack != ""
	switch {
	case b.Plain && compileMode:
		bad("binary: plain mode and workload/source/stack are mutually exclusive")
	case compileMode && (b.Workload == "" || b.Source == "" || b.Stack == ""):
		bad("binary: compile mode needs workload, source, and stack together")
	case !b.Plain && !compileMode:
		bad("binary: declare either plain: true or workload/source/stack")
	}
	if b.Glibc != "" {
		if _, err := parseVersion(b.Glibc); err != nil {
			bad("binary.glibc: %v", err)
		}
	}
	if len(b.Imports) > 0 && !b.Plain {
		bad("binary.imports: only plain-mode binaries take explicit imports")
	}
	for i, imp := range b.Imports {
		if name, _, _, err := parseImport(imp); err != nil || name == "" {
			bad("binary.imports[%d]: %q is not name[@version[:library]]", i, imp)
		}
	}

	// eventActions maps event name → action ("start" marks run begin).
	eventActions := map[string]string{"start": "start"}
	surveys := 0
	for i := range sc.Events {
		ev := &sc.Events[i]
		path := fmt.Sprintf("events[%d]", i)
		if ev.Name == "" {
			ev.Name = fmt.Sprintf("event-%d", i)
		}
		if _, dup := eventActions[ev.Name]; dup {
			bad("%s: duplicate event name %q", path, ev.Name)
		}
		eventActions[ev.Name] = ev.Action
		if !knownAction(ev.Action) {
			bad("%s: unknown action %q", path, ev.Action)
			continue
		}
		switch ev.Action {
		case ActionSurvey:
			surveys++
		case ActionUpgradeGlibc:
			if _, err := parseVersion(ev.Version); err != nil {
				bad("%s.version: %v", path, err)
			}
		case ActionRemoveLibrary:
			if ev.Path == "" || !strings.HasPrefix(ev.Path, "/") {
				bad("%s.path: an absolute path or glob is required", path)
			}
		case ActionFaultRate:
			if ev.Rate <= 0 || ev.Rate > 1 {
				bad("%s.rate must be in (0, 1]", path)
			}
			if ev.Transient < 0 || ev.Transient > 1 {
				bad("%s.transient must be in [0, 1]", path)
			}
		case ActionSiteJoin:
			if ev.Group == "" {
				bad("%s.group: a fleet group template is required", path)
			} else if !groups[ev.Group] {
				bad("%s.group: unknown fleet group %q", path, ev.Group)
			}
		case ActionSiteLeave, ActionOutage:
			if len(ev.Targets) == 0 {
				bad("%s: %s requires explicit targets", path, ev.Action)
			}
		case ActionStripSymbol:
			if ev.Path == "" || !strings.HasPrefix(ev.Path, "/") {
				bad("%s.path: an absolute library path is required", path)
			}
			if ev.Symbol == "" {
				bad("%s.symbol: the export to strip is required", path)
			}
		}
	}
	if surveys == 0 && len(sc.Assertions) > 0 {
		needsSurvey := false
		for _, a := range sc.Assertions {
			switch a.Type {
			case AssertPrediction, AssertRanking, AssertSummary:
				needsSurvey = true
			}
		}
		if needsSurvey {
			bad("assertions reference survey results but the timeline has no survey event")
		}
	}

	for i, a := range sc.Assertions {
		path := fmt.Sprintf("assertions[%d]", i)
		if a.Survey != "" {
			if action, ok := eventActions[a.Survey]; !ok {
				bad("%s.survey: unknown event %q", path, a.Survey)
			} else if action != ActionSurvey {
				bad("%s.survey: event %q is a %s event, not a survey", path, a.Survey, action)
			}
		}
		switch a.Type {
		case AssertPrediction:
			if a.Site == "" {
				bad("%s: prediction assertions need a site", path)
			}
			if a.Determinant != "" {
				if _, err := parseDeterminant(a.Determinant); err != nil {
					bad("%s.determinant: %v", path, err)
				}
				if _, err := parseOutcome(a.Outcome); err != nil {
					bad("%s.outcome: %v", path, err)
				}
			} else if a.Outcome != "" {
				bad("%s.outcome needs a determinant", path)
			}
			if _, err := parseErrorClass(a.Error); err != nil {
				bad("%s.error: %v", path, err)
			}
			if a.Ready == nil && a.Determinant == "" && a.Error == "" && a.ReasonContains == "" {
				bad("%s: prediction assertion checks nothing", path)
			}
		case AssertSpans:
			if a.Op == "" {
				bad("%s: spans assertions need an op", path)
			}
			if a.Since != "" {
				if _, ok := eventActions[a.Since]; !ok {
					bad("%s.since: unknown event %q", path, a.Since)
				}
			}
			if a.Min == nil && a.Max == nil {
				bad("%s: spans assertions need min and/or max", path)
			}
		case AssertMetric:
			if a.Metric == "" {
				bad("%s: metric assertions need a metric name", path)
			}
			if a.Min == nil && a.Max == nil {
				bad("%s: metric assertions need min and/or max", path)
			}
		case AssertRanking:
			if a.First == "" {
				bad("%s: ranking assertions need a first site", path)
			}
		case AssertSummary:
			if a.ReadyCount == nil && a.NotReadyCount == nil && a.ErrorCount == nil {
				bad("%s: summary assertions need at least one count", path)
			}
		default:
			bad("%s: unknown assertion type %q", path, a.Type)
		}
	}
	return errs
}
