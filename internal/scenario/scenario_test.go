package scenario

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"feam/internal/feam"
	"feam/internal/sitemodel"
)

const scenarioDir = "../../testdata/scenarios"

// corpusFiles lists the committed scenario files, failing the test if the
// corpus ever shrinks below the floor the suite promises.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(scenarioDir, "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	if len(files) < 8 {
		t.Fatalf("scenario corpus has %d files, want at least 8", len(files))
	}
	return files
}

// TestScenarioCorpus replays every committed scenario file as a subtest —
// the CI entry point for the whole corpus. A failing assertion prints the
// scenario's own human-readable diff.
func TestScenarioCorpus(t *testing.T) {
	for _, path := range corpusFiles(t) {
		path := path
		t.Run(strings.TrimSuffix(filepath.Base(path), ".yaml"), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Load(data)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			res, err := Run(context.Background(), sc, RunOptions{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, a := range res.Assertions {
				if !a.OK {
					t.Errorf("%s", a.Diff)
				}
			}
			if res.Passed != (res.Failed == 0) {
				t.Errorf("Passed = %v with %d failed assertions", res.Passed, res.Failed)
			}
		})
	}
}

// TestScenarioCorpusCoverage pins the corpus's breadth: the failure modes
// the suite promises scenarios for must each appear in at least one file.
func TestScenarioCorpusCoverage(t *testing.T) {
	needed := map[string]bool{
		ActionSurvey: false, ActionUpgradeGlibc: false, ActionRemoveLibrary: false,
		ActionFaultRate: false, ActionOutage: false, ActionRestart: false,
		ActionSiteJoin: false, ActionSiteLeave: false,
	}
	for _, path := range corpusFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Load(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, ev := range sc.Events {
			if _, tracked := needed[ev.Action]; tracked {
				needed[ev.Action] = true
			}
		}
	}
	for action, seen := range needed {
		if !seen {
			t.Errorf("no committed scenario exercises the %s action", action)
		}
	}
}

// unfingerprintedRegistry simulates reverting the fingerprint-gated
// survey-caching guard: every lookup and store ignores the fingerprint,
// so a cached survey keeps being served after the site's environment
// changed underneath it.
type unfingerprintedRegistry struct {
	feam.SiteRegistry
}

func (r *unfingerprintedRegistry) LookupSurvey(site *sitemodel.Site, fingerprint uint64) (any, bool) {
	return r.SiteRegistry.LookupSurvey(site, 0)
}

func (r *unfingerprintedRegistry) StoreSurvey(site *sitemodel.Site, fingerprint uint64, value any) {
	r.SiteRegistry.StoreSurvey(site, 0, value)
}

// TestStaleSurveyScenarioCatchesRevertedGuard proves the corpus has
// teeth: stale-survey-regression.yaml passes against the real engine (the
// corpus test), and FAILS — with a readable assertion diff — when the
// fingerprint guard is simulated away. If someone reverts the guard, this
// scenario is the tripwire.
func TestStaleSurveyScenarioCatchesRevertedGuard(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(scenarioDir, "stale-survey-regression.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(context.Background(), sc, RunOptions{
		WrapRegistry: func(r feam.SiteRegistry) feam.SiteRegistry {
			return &unfingerprintedRegistry{SiteRegistry: r}
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Passed {
		t.Fatal("scenario passed with the fingerprint guard disabled; the regression tripwire is dead")
	}
	var diffs []string
	for _, a := range res.Assertions {
		if !a.OK {
			diffs = append(diffs, a.Diff)
		}
	}
	all := strings.Join(diffs, "\n")
	// The stale cached survey answers ready=true after the downgrade; the
	// diff must say so and show the (stale) determinant trail.
	if !strings.Contains(all, "ready = true, want false") {
		t.Errorf("failure diff does not show the stale ready answer:\n%s", all)
	}
	if !strings.Contains(all, "determinant trail:") {
		t.Errorf("failure diff has no determinant trail:\n%s", all)
	}
}

// TestCrashRecoveryNoRediscovery re-checks the crash-recovery property in
// Go (beyond the YAML assertions): after a restart event, the survey is
// answered from the persistent store without a single discover span.
func TestCrashRecoveryNoRediscovery(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(scenarioDir, "crash-recovery.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := Run(context.Background(), sc, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Passed {
		for _, a := range res.Assertions {
			if !a.OK {
				t.Errorf("%s", a.Diff)
			}
		}
		t.Fatal("crash-recovery scenario failed")
	}
	reh, ok := res.Surveys["rehydrated"]
	if !ok {
		t.Fatal("no rehydrated survey in result")
	}
	if reh.Ready != res.Sites {
		t.Errorf("post-restart survey: %d ready of %d sites", reh.Ready, res.Sites)
	}
}

// TestRunDeterminism: two runs of the same scenario with the same seed
// produce identical survey outcomes — the property every assertion in the
// corpus leans on.
func TestRunDeterminism(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(scenarioDir, "fault-spike.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		sc, err := Load(data)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		res, err := Run(context.Background(), sc, RunOptions{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	for name, sa := range a.Surveys {
		sb, ok := b.Surveys[name]
		if !ok {
			t.Fatalf("second run lost survey %q", name)
		}
		if sa.Ready != sb.Ready || sa.NotReady != sb.NotReady || sa.Errors != sb.Errors || sa.First != sb.First {
			t.Errorf("survey %q diverged: %+v vs %+v", name, sa, sb)
		}
		for i := range sa.Assessments {
			x, y := sa.Assessments[i], sb.Assessments[i]
			if x.Site != y.Site || x.Ready != y.Ready || x.Error != y.Error {
				t.Errorf("survey %q assessment %d diverged: %+v vs %+v", name, i, x, y)
			}
		}
	}
}

// TestLoadErrors exercises the loader's semantic validation: each invalid
// document must be rejected with an error naming the actual problem.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		msg  string
	}{
		{
			"missing name",
			"binary:\n  plain: true\n",
			"scenario.name is required",
		},
		{
			"unknown top-level key",
			"name: x\nbinary:\n  plain: true\nasertions:\n  - type: summary\n",
			`unknown key "asertions"`,
		},
		{
			"unknown assertion key (typo guard)",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: survey\nassertions:\n  - type: summary\n    raedy_count: 1\n",
			`unknown key "raedy_count"`,
		},
		{
			"no binary mode",
			"name: x\n",
			"declare either plain",
		},
		{
			"both binary modes",
			"name: x\nbinary:\n  plain: true\n  workload: cg\n  source: india\n  stack: s\n",
			"mutually exclusive",
		},
		{
			"partial compile mode",
			"name: x\nbinary:\n  workload: cg\n",
			"workload, source, and stack together",
		},
		{
			"unknown action",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: explode\n",
			`unknown action "explode"`,
		},
		{
			"upgrade without version",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: upgrade_glibc\n",
			"version is required",
		},
		{
			"relative removal path",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: remove_library\n    path: libm.so\n",
			"absolute path",
		},
		{
			"fault rate out of range",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: fault_rate\n    rate: 1.5\n",
			"rate must be in (0, 1]",
		},
		{
			"outage without targets",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: outage\n",
			"requires explicit targets",
		},
		{
			"join unknown group",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: site_join\n    group: ghost\n",
			`unknown fleet group "ghost"`,
		},
		{
			"duplicate event name",
			"name: x\nbinary:\n  plain: true\nevents:\n  - name: e\n    action: survey\n  - name: e\n    action: survey\n",
			`duplicate event name "e"`,
		},
		{
			"assertion references non-survey event",
			"name: x\nbinary:\n  plain: true\nevents:\n  - name: boom\n    action: restart\n  - action: survey\nassertions:\n  - type: summary\n    survey: boom\n    ready_count: 1\n",
			"not a survey",
		},
		{
			"assertion without survey event",
			"name: x\nbinary:\n  plain: true\nassertions:\n  - type: summary\n    ready_count: 1\n",
			"no survey event",
		},
		{
			"prediction without site",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: survey\nassertions:\n  - type: prediction\n    ready: true\n",
			"need a site",
		},
		{
			"prediction checks nothing",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: survey\nassertions:\n  - type: prediction\n    site: s\n",
			"checks nothing",
		},
		{
			"spans without bounds",
			"name: x\nbinary:\n  plain: true\nassertions:\n  - type: spans\n    op: discover\n",
			"min and/or max",
		},
		{
			"unknown determinant",
			"name: x\nbinary:\n  plain: true\nevents:\n  - action: survey\nassertions:\n  - type: prediction\n    site: s\n    determinant: vibes\n    outcome: pass\n",
			`unknown determinant "vibes"`,
		},
		{
			"unknown ISA",
			"name: x\nbinary:\n  plain: true\nfleet:\n  groups:\n    - name: g\n      isa: [sparc64]\nevents:\n  - action: survey\n",
			`unknown ISA "sparc64"`,
		},
		{
			"stack without its compiler",
			"name: x\nbinary:\n  plain: true\nfleet:\n  groups:\n    - name: g\n      stacks: [openmpi-1.4/intel]\nevents:\n  - action: survey\n",
			"the group does not install",
		},
		{
			"fleet too large",
			"name: x\nbinary:\n  plain: true\nfleet:\n  groups:\n    - name: g\n      count: 100000\nevents:\n  - action: survey\n",
			"caps at",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Load succeeded, want error containing %q", tc.msg)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Errorf("error %q does not mention %q", err, tc.msg)
			}
		})
	}
}

// TestExpandFleetSweep pins the round-robin sweep semantics group
// expansion promises: list-valued fields rotate by site index.
func TestExpandFleetSweep(t *testing.T) {
	specs, err := ExpandFleet(FleetSpec{Groups: []FleetGroup{{
		Name: "g", Count: 5,
		ISA:   []string{"x86_64", "ppc64"},
		Glibc: []string{"2.3.4", "2.5", "2.12"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 5 {
		t.Fatalf("expanded %d specs, want 5", len(specs))
	}
	wantISA := []string{"x86_64", "ppc64", "x86_64", "ppc64", "x86_64"}
	wantGlibc := []string{"2.3.4", "2.5", "2.12", "2.3.4", "2.5"}
	for i, s := range specs {
		if s.Name != "g-"+string(rune('0'+i)) {
			t.Errorf("specs[%d].Name = %q", i, s.Name)
		}
		if s.ISA != wantISA[i] {
			t.Errorf("specs[%d].ISA = %q, want %q", i, s.ISA, wantISA[i])
		}
		if got := s.Glibc.String(); got != wantGlibc[i] {
			t.Errorf("specs[%d].Glibc = %q, want %q", i, got, wantGlibc[i])
		}
	}
}

// TestExpandFleetCollisions: duplicate site names across base and groups
// are a build error, not a silent overwrite.
func TestExpandFleetCollisions(t *testing.T) {
	_, err := ExpandFleet(FleetSpec{
		Base:   FleetBaseTable2,
		Groups: []FleetGroup{{Name: "ranger", Count: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate site name") {
		t.Errorf("ExpandFleet = %v, want duplicate-site error", err)
	}
}
