// run.go executes a loaded scenario: build the fleet, walk the event
// timeline in virtual-time order, collect survey results and span/metric
// counts, and evaluate the scenario's assertions into a JSON-exportable
// Result. Everything scripted is deterministic for a given seed — fault
// policies are seeded per site, the execution simulator's own flakiness is
// disabled (injected faults are the only flakiness), and survey ordering
// is the engine's stable ranking.
package scenario

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"feam/internal/elfimg"
	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/fault"
	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/sitemodel"
	"feam/internal/store"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/vfs"
	"feam/internal/workload"
)

// RunOptions configures one scenario run.
type RunOptions struct {
	// Log receives human-readable progress lines (nil = silent).
	Log io.Writer
	// WrapRegistry, when set, wraps the engine's site-registry layer at
	// every engine construction (including restarts). It is a test seam:
	// the stale-survey regression test wraps the registry with one that
	// ignores survey fingerprints, simulating a revert of the
	// fingerprint-gated caching guard, and asserts the paired scenario
	// fails.
	WrapRegistry func(feam.SiteRegistry) feam.SiteRegistry
}

// Result is the JSON-exportable outcome of one scenario run.
type Result struct {
	Scenario    string         `json:"scenario"`
	Description string         `json:"description,omitempty"`
	Seed        int64          `json:"seed"`
	Sites       int            `json:"sites"`
	Events      []EventOutcome `json:"events"`
	// Surveys holds one entry per survey event, keyed by event name.
	Surveys    map[string]*SurveyResult `json:"surveys,omitempty"`
	Assertions []AssertionResult        `json:"assertions"`
	Passed     bool                     `json:"passed"`
	Failed     int                      `json:"failed_assertions"`
	// Metrics is the final counter snapshot of the run's metrics registry.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// EventOutcome records one executed timeline entry.
type EventOutcome struct {
	Name   string `json:"name"`
	Action string `json:"action"`
	At     string `json:"at"`
	// Sites is the fleet size after the event.
	Sites int    `json:"sites"`
	Error string `json:"error,omitempty"`
}

// SurveyResult summarizes one survey event.
type SurveyResult struct {
	Ready       int          `json:"ready"`
	NotReady    int          `json:"not_ready"`
	Errors      int          `json:"errors"`
	First       string       `json:"first,omitempty"`
	Assessments []Assessment `json:"assessments"`
}

// Assessment is the JSON form of one site's survey entry.
type Assessment struct {
	Site  string `json:"site"`
	Ready bool   `json:"ready"`
	// Error is the degradation class: "site_unavailable", "probe_failed",
	// or "error" for anything else; empty for clean assessments.
	Error        string            `json:"error,omitempty"`
	ErrorDetail  string            `json:"error_detail,omitempty"`
	Determinants map[string]string `json:"determinants,omitempty"`
	Reasons      []string          `json:"reasons,omitempty"`
	Stack        string            `json:"stack,omitempty"`
	ResolvedLibs int               `json:"resolved_libs,omitempty"`
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Index       int    `json:"index"`
	Description string `json:"description"`
	OK          bool   `json:"ok"`
	// Diff is the human-readable explanation of a failed assertion.
	Diff string `json:"diff,omitempty"`
}

// opKey indexes span counts: per (operation, site), with site "" holding
// the operation's total across sites.
type opKey struct {
	op   string
	site string
}

// spanCounter is a tracer sink that counts ended spans exactly — the ring
// buffer behind Tracer.Snapshot is lossy on large fleets, so assertions
// over span counts need their own sink.
type spanCounter struct {
	mu     sync.Mutex
	counts map[opKey]int64
}

func newSpanCounter() *spanCounter { return &spanCounter{counts: map[opKey]int64{}} }

func (c *spanCounter) SpanStarted(*obs.Span)          {}
func (c *spanCounter) SpanEvent(*obs.Span, obs.Event) {}
func (c *spanCounter) SpanEnded(s *obs.Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[opKey{op: s.Op}]++
	if s.Site != "" {
		c.counts[opKey{op: s.Op, site: s.Site}]++
	}
}

// snapshot copies the current counts (the per-event marks).
func (c *spanCounter) snapshot() map[opKey]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[opKey]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// runner is the mutable state of one scenario execution.
type runner struct {
	sc   *Scenario
	opts RunOptions

	tb      *testbed.Testbed
	sites   []*sitemodel.Site // current fleet, survey order
	metrics *obs.Registry
	tracer  *obs.Tracer
	counts  *spanCounter
	stateFS *vfs.FS
	eng     *feam.Engine

	desc     *feam.BinaryDescription
	appBytes []byte
	bundle   *feam.Bundle
	probe    feam.ProgramRunner

	faults  map[string]*fault.Policy
	outages map[string]bool
	joined  map[string]int

	surveys     map[string][]feam.SiteAssessment
	surveyOrder []string
	marks       map[string]map[opKey]int64
}

// Run executes a loaded scenario and returns its result. An error means
// the run itself could not proceed (fleet build failure, broken binary
// spec, an event that cannot apply); failed assertions are reported in the
// Result, not as an error.
func Run(ctx context.Context, sc *Scenario, opts RunOptions) (*Result, error) {
	r := &runner{
		sc:      sc,
		opts:    opts,
		metrics: obs.NewRegistry(),
		tracer:  obs.NewTracer(0),
		counts:  newSpanCounter(),
		stateFS: vfs.New(),
		faults:  map[string]*fault.Policy{},
		outages: map[string]bool{},
		joined:  map[string]int{},
		surveys: map[string][]feam.SiteAssessment{},
		marks:   map[string]map[opKey]int64{},
	}
	r.tracer.AddSink(r.counts)

	res := &Result{
		Scenario:    sc.Name,
		Description: sc.Description,
		Seed:        sc.Seed,
		Surveys:     map[string]*SurveyResult{},
	}

	if err := r.newEngine(); err != nil {
		return nil, err
	}
	tb, err := BuildFleet(sc.Fleet)
	if err != nil {
		return nil, err
	}
	r.tb = tb
	r.sites = append(r.sites, tb.Sites...)
	res.Sites = len(r.sites)
	r.logf("fleet: %d sites", len(r.sites))

	if err := r.prepareBinary(ctx); err != nil {
		return nil, err
	}
	r.marks["start"] = r.counts.snapshot()

	events := make([]Event, len(sc.Events))
	copy(events, sc.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		evErr := r.execute(ctx, ev)
		outcome := EventOutcome{
			Name: ev.Name, Action: ev.Action,
			At: ev.At.String(), Sites: len(r.sites),
		}
		if evErr != nil {
			outcome.Error = evErr.Error()
		}
		res.Events = append(res.Events, outcome)
		r.marks[ev.Name] = r.counts.snapshot()
		if evErr != nil {
			return res, fmt.Errorf("scenario %s: event %s (%s): %w", sc.Name, ev.Name, ev.Action, evErr)
		}
	}

	for name, assessments := range r.surveys {
		res.Surveys[name] = summarizeSurvey(assessments)
	}
	res.Metrics = r.metrics.Snapshot().Counters

	res.Passed = true
	for i, a := range sc.Assertions {
		ar := r.evaluate(i, a)
		res.Assertions = append(res.Assertions, ar)
		if !ar.OK {
			res.Passed = false
			res.Failed++
			r.logf("FAIL %s", ar.Diff)
		}
	}
	return res, nil
}

func (r *runner) logf(format string, args ...any) {
	if r.opts.Log != nil {
		fmt.Fprintf(r.opts.Log, format+"\n", args...)
	}
}

// newEngine builds a fresh stateless engine over a new registry shard set
// and the persistent store — called at start and again on every restart
// event, which is exactly what a process crash-and-rehydrate does. The
// tracer, metrics registry, and state filesystem survive across restarts
// (they model the observer, not the process).
func (r *runner) newEngine() error {
	st, err := store.Open(r.stateFS, "/state",
		store.WithMetrics(r.metrics), store.WithTracer(r.tracer))
	if err != nil {
		return fmt.Errorf("scenario: opening store: %w", err)
	}
	var sites feam.SiteRegistry = registry.New(registry.WithMetrics(r.metrics))
	if r.opts.WrapRegistry != nil {
		sites = r.opts.WrapRegistry(sites)
	}
	r.eng = feam.New(
		feam.WithTracer(r.tracer),
		feam.WithMetrics(r.metrics),
		feam.WithRegistry(sites),
		feam.WithStore(st),
	)
	return nil
}

// prepareBinary materializes the scenario's application: a synthetic plain
// executable, or a workload compiled at a fleet site (with a source-phase
// bundle when any event enables the resolution model).
func (r *runner) prepareBinary(ctx context.Context) error {
	b := r.sc.Binary
	if b.Plain {
		glibc := b.Glibc
		if glibc == "" {
			glibc = "2.3.4"
		}
		name := b.Name
		if name == "" {
			name = "app"
		}
		verNeeds := []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_" + glibc}},
		}
		var imports []elfimg.ImportedSymbol
		for _, imp := range b.Imports {
			name, version, library, err := parseImport(imp)
			if err != nil {
				return fmt.Errorf("scenario: binary.imports: %w", err)
			}
			if version != "" && library == "" {
				library = "libc.so.6"
			}
			imports = append(imports, elfimg.ImportedSymbol{Name: name, Version: version, Library: library})
			if version != "" {
				verNeeds = addVerNeed(verNeeds, library, version)
			}
		}
		img := elfimg.MustBuild(elfimg.Spec{
			Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
			Interp:   "/lib64/ld-linux-x86-64.so.2",
			Needed:   append([]string{"libc.so.6"}, b.Needs...),
			VerNeeds: verNeeds,
			Imports:  imports,
		})
		desc, err := r.eng.Describe(ctx, img, name)
		if err != nil {
			return fmt.Errorf("scenario: describing plain binary: %w", err)
		}
		r.desc, r.appBytes = desc, img
		return nil
	}

	src, ok := r.tb.ByName[b.Source]
	if !ok {
		return fmt.Errorf("scenario: binary source site %q is not in the fleet", b.Source)
	}
	rec := src.FindStack(b.Stack)
	if rec == nil {
		return fmt.Errorf("scenario: no stack %q at source site %s", b.Stack, b.Source)
	}
	code := workload.Find(b.Workload)
	if code == nil {
		return fmt.Errorf("scenario: unknown workload %q", b.Workload)
	}
	art, err := toolchain.Compile(code, rec, src)
	if err != nil {
		return fmt.Errorf("scenario: compiling %s at %s: %w", b.Workload, b.Source, err)
	}
	binPath := "/home/user/" + art.Name
	if err := src.FS().WriteFile(binPath, art.Bytes); err != nil {
		return fmt.Errorf("scenario: installing binary at %s: %w", b.Source, err)
	}

	sim := execsim.NewSimulator(r.sc.Seed)
	sim.TransientRate = 0 // scripted faults are the only flakiness
	r.probe = &routedRunner{r: r, inner: &BatchRunner{Inner: experiment.NewSimProbeRunner(sim), TB: r.tb}}

	needBundle := false
	for _, ev := range r.sc.Events {
		if ev.Action == ActionSurvey && ev.Resolve {
			needBundle = true
		}
	}
	if needBundle {
		snap := src.SnapshotEnv()
		err := testbed.ActivateStack(src, b.Stack)
		if err == nil {
			cfg := &feam.Config{
				Phase: "source", BinaryPath: binPath,
				SerialScript:   "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=1\n#PBS -l walltime=00:10:00\n%CMD%\n",
				ParallelScript: "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=4\n#PBS -l walltime=00:15:00\n%CMD%\n",
			}
			r.bundle, _, err = r.eng.RunSourcePhase(ctx, cfg, src, &BatchRunner{Inner: experiment.NewSimRunner(sim), TB: r.tb})
		}
		src.RestoreEnv(snap)
		if err != nil {
			return fmt.Errorf("scenario: source phase at %s: %w", b.Source, err)
		}
	}

	name := b.Name
	if name == "" {
		name = art.Name
	}
	desc, err := r.eng.Describe(ctx, art.Bytes, name)
	if err != nil {
		return fmt.Errorf("scenario: describing %s: %w", art.Name, err)
	}
	r.desc, r.appBytes = desc, art.Bytes
	return nil
}

// routedRunner applies the per-site fault policies to probe executions;
// site filesystems get theirs through vfs op hooks, probes get theirs
// here.
type routedRunner struct {
	r     *runner
	inner feam.ProgramRunner
}

func (rr *routedRunner) RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
	if p := rr.r.faults[site.Name]; p != nil {
		f := &fault.FaultyRunner{Inner: rr.inner, Inj: p}
		return f.RunProgram(ctx, art, site, stackKey, extraLibDirs)
	}
	return rr.inner.RunProgram(ctx, art, site, stackKey, extraLibDirs)
}

// BeginProbeBatch implements fault.BatchProbeRunner, threading the per-site
// fault policy into the opened session (the injector fires per probe even
// though the session setup is shared).
func (rr *routedRunner) BeginProbeBatch(ctx context.Context, site *sitemodel.Site, stackKey string) fault.ProbeBatch {
	if p := rr.r.faults[site.Name]; p != nil {
		f := &fault.FaultyRunner{Inner: rr.inner, Inj: p}
		return fault.OpenBatch(ctx, f, site, stackKey)
	}
	return fault.OpenBatch(ctx, rr.inner, site, stackKey)
}

// resolveTargets maps event target names to current fleet sites: exact
// site names, or group names selecting every current member of the group.
// An empty target list selects the whole fleet.
func (r *runner) resolveTargets(targets []string) ([]*sitemodel.Site, error) {
	if len(targets) == 0 {
		out := make([]*sitemodel.Site, len(r.sites))
		copy(out, r.sites)
		return out, nil
	}
	var out []*sitemodel.Site
	seen := map[string]bool{}
	add := func(s *sitemodel.Site) {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	for _, t := range targets {
		if s, ok := r.tb.ByName[t]; ok && r.inFleet(t) {
			add(s)
			continue
		}
		matched := false
		for _, s := range r.sites {
			if len(s.Name) > len(t) && s.Name[:len(t)] == t && s.Name[len(t)] == '-' {
				add(s)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("target %q matches no site or group in the current fleet", t)
		}
	}
	return out, nil
}

func (r *runner) inFleet(name string) bool {
	for _, s := range r.sites {
		if s.Name == name {
			return true
		}
	}
	return false
}

// siteSeed derives a per-site fault seed, so injection at one site is
// independent of operation interleaving at others (parallel surveys stay
// deterministic).
func siteSeed(base int64, site string) int64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return base ^ int64(h.Sum64())
}

// execute applies one timeline event.
func (r *runner) execute(ctx context.Context, ev Event) error {
	r.logf("[%s] %s %s", ev.At, ev.Action, ev.Name)
	switch ev.Action {
	case ActionSurvey:
		opts := feam.EvalOptions{Runner: r.probe}
		if ev.Abi {
			// The five-determinant ladder with agreement mode on: every
			// assessment also runs the independent soname-closure checker
			// and feeds the abi_agree/abi_disagree counters.
			opts.Evaluators = feam.ABIEvaluators(true)
		}
		if ev.Resolve {
			if r.bundle == nil {
				return fmt.Errorf("resolve requested but the binary has no source-phase bundle (plain binaries cannot resolve)")
			}
			opts.Bundle = r.bundle
			opts.Resolve = true
		}
		assessments := r.eng.RankSites(ctx, r.desc, r.appBytes, r.currentSites(), opts)
		r.surveys[ev.Name] = assessments
		r.surveyOrder = append(r.surveyOrder, ev.Name)
		sum := summarizeSurvey(assessments)
		r.logf("  survey %s: %d ready, %d not ready, %d errors",
			ev.Name, sum.Ready, sum.NotReady, sum.Errors)
		return nil

	case ActionUpgradeGlibc:
		v, err := parseVersion(ev.Version)
		if err != nil {
			return err
		}
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			if err := s.UpgradeCLibrary(v); err != nil {
				return err
			}
			r.logf("  %s: C library now %s (fs generation %d)", s.Name, v, s.FS().Generation())
		}
		return nil

	case ActionRemoveLibrary:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			if err := removeMatching(s, ev.Path); err != nil {
				return err
			}
		}
		return nil

	case ActionFaultRate:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			p := &fault.Policy{
				Rate:              ev.Rate,
				TransientFraction: ev.Transient,
				Seed:              siteSeed(r.sc.Seed, s.Name),
				Ops:               ev.Ops,
			}
			r.faults[s.Name] = p
			s.FS().SetOpHook(fault.Hook(ctx, p))
		}
		return nil

	case ActionClearFaults:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			delete(r.faults, s.Name)
			if !r.outages[s.Name] {
				s.FS().SetOpHook(nil)
			}
		}
		return nil

	case ActionOutage:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			r.outages[s.Name] = true
			s.FS().SetOpHook(func(op, path string) error {
				return fault.New(fault.Permanent, op, path)
			})
			// Cached and persisted surveys would mask the outage — the
			// site's filesystem is never touched on a fingerprint hit.
			r.eng.InvalidateSite(s.Name)
		}
		return nil

	case ActionRestore:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			delete(r.outages, s.Name)
			if p := r.faults[s.Name]; p != nil {
				s.FS().SetOpHook(fault.Hook(ctx, p))
			} else {
				s.FS().SetOpHook(nil)
			}
		}
		return nil

	case ActionSiteJoin:
		var tmpl *FleetGroup
		for i := range r.sc.Fleet.Groups {
			if r.sc.Fleet.Groups[i].Name == ev.Group {
				tmpl = &r.sc.Fleet.Groups[i]
			}
		}
		if tmpl == nil {
			return fmt.Errorf("site_join names unknown group %q", ev.Group)
		}
		n := r.joined[ev.Group]
		r.joined[ev.Group] = n + 1
		name := fmt.Sprintf("%s-j%d", ev.Group, n)
		built, err := BuildGroupSite(*tmpl, name, tmpl.Count+n)
		if err != nil {
			return err
		}
		s := built.Sites[0]
		r.tb.Sites = append(r.tb.Sites, s)
		r.tb.ByName[s.Name] = s
		r.tb.Specs[s.Name] = built.Specs[s.Name]
		r.tb.Clusters[s.Name] = built.Clusters[s.Name]
		r.sites = append(r.sites, s)
		r.logf("  joined %s (fleet now %d sites)", s.Name, len(r.sites))
		return nil

	case ActionSiteLeave:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			r.removeSite(s.Name)
			r.eng.InvalidateSite(s.Name)
		}
		r.logf("  fleet now %d sites", len(r.sites))
		return nil

	case ActionRestart:
		r.logf("  restarting engine (fresh registry, rehydrating from store)")
		return r.newEngine()

	case ActionInvalidate:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			r.eng.InvalidateSite(s.Name)
		}
		return nil

	case ActionStripSymbol:
		sites, err := r.resolveTargets(ev.Targets)
		if err != nil {
			return err
		}
		for _, s := range sites {
			if err := s.StripExport(ev.Path, ev.Symbol); err != nil {
				return err
			}
			r.logf("  %s: stripped export %s from %s (fs generation %d)",
				s.Name, ev.Symbol, ev.Path, s.FS().Generation())
		}
		return nil
	}
	return fmt.Errorf("unknown action %q", ev.Action)
}

// removeMatching deletes the file at path, or every file matching it as a
// base-name glob when it contains wildcards.
func removeMatching(s *sitemodel.Site, p string) error {
	fs := s.FS()
	if !hasGlobMeta(p) {
		if err := fs.Remove(p); err != nil {
			return fmt.Errorf("removing %s at %s: %w", p, s.Name, err)
		}
		return nil
	}
	dir, base := splitPath(p)
	matches, err := fs.Glob(dir, base)
	if err != nil {
		return fmt.Errorf("globbing %s at %s: %w", p, s.Name, err)
	}
	if len(matches) == 0 {
		return fmt.Errorf("%s matches nothing at %s", p, s.Name)
	}
	for _, m := range matches {
		if err := fs.Remove(m); err != nil {
			return fmt.Errorf("removing %s at %s: %w", m, s.Name, err)
		}
	}
	return nil
}

// addVerNeed merges one version requirement into the verneed table,
// deduplicating files and versions.
func addVerNeed(vns []elfimg.VerNeed, file, version string) []elfimg.VerNeed {
	for i := range vns {
		if vns[i].File != file {
			continue
		}
		for _, v := range vns[i].Versions {
			if v == version {
				return vns
			}
		}
		vns[i].Versions = append(vns[i].Versions, version)
		return vns
	}
	return append(vns, elfimg.VerNeed{File: file, Versions: []string{version}})
}

func hasGlobMeta(p string) bool {
	for i := 0; i < len(p); i++ {
		switch p[i] {
		case '*', '?', '[':
			return true
		}
	}
	return false
}

func splitPath(p string) (dir, base string) {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/", p[1:]
			}
			return p[:i], p[i+1:]
		}
	}
	return "/", p
}

func (r *runner) currentSites() []*sitemodel.Site {
	out := make([]*sitemodel.Site, len(r.sites))
	copy(out, r.sites)
	return out
}

func (r *runner) removeSite(name string) {
	for i, s := range r.sites {
		if s.Name == name {
			r.sites = append(r.sites[:i], r.sites[i+1:]...)
			break
		}
	}
	for i, s := range r.tb.Sites {
		if s.Name == name {
			r.tb.Sites = append(r.tb.Sites[:i], r.tb.Sites[i+1:]...)
			break
		}
	}
	delete(r.tb.ByName, name)
	delete(r.tb.Specs, name)
	delete(r.tb.Clusters, name)
}

// summarizeSurvey tallies one survey's assessments into the JSON form.
func summarizeSurvey(assessments []feam.SiteAssessment) *SurveyResult {
	sum := &SurveyResult{}
	for i, a := range assessments {
		aj := assessmentJSON(a)
		if i == 0 {
			sum.First = a.Site
		}
		switch {
		case a.Err != nil:
			sum.Errors++
		case a.Prediction != nil && a.Prediction.Ready:
			sum.Ready++
		default:
			sum.NotReady++
		}
		sum.Assessments = append(sum.Assessments, aj)
	}
	return sum
}

func assessmentJSON(a feam.SiteAssessment) Assessment {
	aj := Assessment{Site: a.Site}
	if a.Err != nil {
		aj.Error = errorClass(a.Err)
		aj.ErrorDetail = a.Err.Error()
	}
	if p := a.Prediction; p != nil {
		aj.Ready = p.Ready
		aj.Reasons = p.Reasons
		aj.Stack = p.StackKey()
		aj.ResolvedLibs = len(p.ResolvedLibs)
		aj.Determinants = map[string]string{}
		for _, d := range feam.Determinants() {
			res := p.Determinants[d]
			text := res.Outcome.String()
			if res.Detail != "" {
				text += " — " + res.Detail
			}
			aj.Determinants[determinantKey(d)] = text
		}
	}
	return aj
}

// sinceCounts returns span counts relative to a mark ("" or "start" =
// whole run).
func (r *runner) sinceCounts(since string) (map[opKey]int64, error) {
	now := r.counts.snapshot()
	if since == "" {
		return now, nil
	}
	mark, ok := r.marks[since]
	if !ok {
		return nil, fmt.Errorf("no mark for event %q", since)
	}
	out := make(map[opKey]int64, len(now))
	for k, v := range now {
		out[k] = v - mark[k]
	}
	return out, nil
}
