// yaml.go implements the YAML subset scenario files are written in. The
// repo carries no module dependencies (the engine builds with the standard
// library alone), so instead of importing a YAML package the loader parses
// the structural subset scenarios actually need:
//
//   - block mappings ("key: value", nested by indentation)
//   - block sequences ("- item", items may be scalars or mappings)
//   - flow sequences of scalars ("[a, b, c]")
//   - single- and double-quoted scalars, comments, blank lines
//
// Anchors, aliases, multi-document streams, flow mappings, and block
// scalars are rejected with positioned errors. Every value parses to
// map[string]any, []any, or string; typing (ints, durations, booleans) is
// applied by the decoder in scenario.go, which also reports unknown keys.
package scenario

import (
	"fmt"
	"strings"
)

// yamlError is a parse or decode failure with a 1-based line position.
type yamlError struct {
	Line int
	Msg  string
}

func (e *yamlError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
	}
	return e.Msg
}

func yerrf(line int, format string, args ...any) error {
	return &yamlError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// yline is one significant source line: indentation depth, content with
// comments stripped, and its position for error reporting.
type yline struct {
	indent int
	text   string
	n      int
}

// parseYAML parses a document into a top-level mapping.
func parseYAML(data []byte) (map[string]any, error) {
	lines, err := yamlLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	if lines[0].indent != 0 {
		return nil, yerrf(lines[0].n, "top-level content must start in column one")
	}
	p := &yparser{lines: lines}
	v, err := p.parseNode(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, yerrf(p.lines[p.pos].n, "unexpected content after document")
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, yerrf(lines[0].n, "document must be a mapping")
	}
	return m, nil
}

// yamlLines splits the input into significant lines: indentation counted,
// comments stripped outside quotes, blank lines and a leading "---" marker
// dropped. Tabs in indentation are rejected (YAML forbids them, and they
// make depth ambiguous).
func yamlLines(data []byte) ([]yline, error) {
	var out []yline
	for i, raw := range strings.Split(string(data), "\n") {
		n := i + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, yerrf(n, "tab in indentation; use spaces")
		}
		text := strings.TrimRight(stripComment(raw[indent:]), " \r")
		if text == "" {
			continue
		}
		if text == "---" && len(out) == 0 {
			continue
		}
		if strings.HasPrefix(text, "---") || strings.HasPrefix(text, "...") {
			return nil, yerrf(n, "multi-document streams are not supported")
		}
		for _, marker := range []string{"&", "*", "|", ">"} {
			if strings.HasPrefix(text, marker) {
				return nil, yerrf(n, "%q-style YAML (anchors, aliases, block scalars) is not supported", marker)
			}
		}
		out = append(out, yline{indent: indent, text: text, n: n})
	}
	return out, nil
}

// stripComment removes a trailing "#..." comment, respecting quotes. A '#'
// only opens a comment at line start or after whitespace, as in YAML.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

type yparser struct {
	lines []yline
	pos   int
}

// parseNode parses the block starting at the current position, whose lines
// share the given indentation.
func (p *yparser) parseNode(indent int) (any, error) {
	ln := p.lines[p.pos]
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

// parseMapping parses consecutive "key: value" lines at one indentation.
func (p *yparser) parseMapping(indent int) (map[string]any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, yerrf(ln.n, "unexpected indentation (expected column %d)", indent+1)
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			return nil, yerrf(ln.n, "sequence item inside a mapping")
		}
		key, rest, err := splitKey(ln.text, ln.n)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, yerrf(ln.n, "duplicate key %q", key)
		}
		p.pos++
		if rest == "" {
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseNode(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				m[key] = v
			} else {
				m[key] = "" // "key:" with no value
			}
			continue
		}
		v, err := parseInline(rest, ln.n)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// parseSequence parses consecutive "- item" lines at one indentation.
func (p *yparser) parseSequence(indent int) ([]any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, yerrf(ln.n, "unexpected indentation (expected column %d)", indent+1)
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			return nil, yerrf(ln.n, "expected a sequence item (\"- ...\")")
		}
		rest := strings.TrimLeft(strings.TrimPrefix(ln.text, "-"), " ")
		switch {
		case rest == "":
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseNode(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			} else {
				out = append(out, "")
			}
		case looksLikeKey(rest):
			// Inline mapping item: "- key: value". Rewrite this line to the
			// key's own column and parse a mapping from there, so further
			// keys of the same item continue at that indentation.
			offset := len(ln.text) - len(rest)
			p.lines[p.pos] = yline{indent: ln.indent + offset, text: rest, n: ln.n}
			item, err := p.parseMapping(ln.indent + offset)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
		default:
			p.pos++
			v, err := parseInline(rest, ln.n)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// looksLikeKey reports whether a sequence-item body opens a mapping
// ("key:" or "key: value" with an identifier key).
func looksLikeKey(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return false
	}
	return isIdentifier(s[:i])
}

// isIdentifier matches the unquoted key alphabet: letters, digits,
// underscores, dots and dashes, starting with a letter or underscore.
func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '-' || c == '.'):
		default:
			return false
		}
	}
	return true
}

// splitKey splits "key: value" (or "key:") into its parts.
func splitKey(s string, n int) (key, rest string, err error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", yerrf(n, "expected \"key: value\", got %q", s)
	}
	key = s[:i]
	if !isIdentifier(key) {
		return "", "", yerrf(n, "invalid key %q (unquoted identifier expected)", key)
	}
	rest = strings.TrimLeft(s[i+1:], " ")
	if rest != "" && s[i+1] != ' ' {
		return "", "", yerrf(n, "missing space after %q:", key)
	}
	return key, rest, nil
}

// parseInline parses a value that shares the line with its key: a flow
// sequence or a scalar.
func parseInline(s string, n int) (any, error) {
	if strings.HasPrefix(s, "[") {
		return parseFlowSeq(s, n)
	}
	if strings.HasPrefix(s, "{") {
		return nil, yerrf(n, "flow mappings ({...}) are not supported")
	}
	return parseScalar(s, n)
}

// parseFlowSeq parses "[a, b, c]" into a slice of scalars.
func parseFlowSeq(s string, n int) ([]any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, yerrf(n, "unterminated flow sequence %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	out := []any{}
	if body == "" {
		return out, nil
	}
	for _, part := range splitFlowItems(body) {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, yerrf(n, "empty element in flow sequence %q", s)
		}
		if strings.HasPrefix(part, "[") || strings.HasPrefix(part, "{") {
			return nil, yerrf(n, "nested flow collections are not supported")
		}
		v, err := parseScalar(part, n)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitFlowItems splits a flow-sequence body on commas outside quotes.
func splitFlowItems(s string) []string {
	var parts []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// parseScalar parses one scalar. Quoted strings lose their quotes (double
// quotes honor \\, \", \n, \t); everything else stays a raw string — the
// decoder applies typing where a typed field expects it.
func parseScalar(s string, n int) (any, error) {
	switch {
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, yerrf(n, "unterminated single-quoted scalar %q", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case strings.HasPrefix(s, `"`):
		if len(s) < 2 || !strings.HasSuffix(s, `"`) || strings.HasSuffix(s, `\"`) {
			return nil, yerrf(n, "unterminated double-quoted scalar %q", s)
		}
		var b strings.Builder
		body := s[1 : len(s)-1]
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c != '\\' {
				b.WriteByte(c)
				continue
			}
			i++
			if i >= len(body) {
				return nil, yerrf(n, "dangling escape in %q", s)
			}
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(body[i])
			default:
				return nil, yerrf(n, "unsupported escape \\%c in %q", body[i], s)
			}
		}
		return b.String(), nil
	default:
		return s, nil
	}
}
