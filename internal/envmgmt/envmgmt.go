// Package envmgmt simulates the user-environment management tools FEAM's
// Environment Discovery Component consults to enumerate MPI stacks:
// Environment Modules (modulefiles, `module avail`, `module list`,
// `module load`) and SoftEnv (a softenv database with keys added via
// `soft add`). Both operate on a site's virtual filesystem and environment
// variables exactly where a real installation would keep its state, so
// discovery code must find them the same way it would on a live system.
package envmgmt

import (
	"fmt"
	"sort"
	"strings"

	"feam/internal/vfs"
)

// Environment is the site surface the tools manipulate: a filesystem plus
// process-style environment variables.
type Environment interface {
	FS() *vfs.FS
	Getenv(key string) string
	Setenv(key, value string)
}

// Tool is a user-environment management system present at a site.
type Tool interface {
	// Name identifies the tool ("modules" or "softenv").
	Name() string
	// Avail lists every package key the tool can configure.
	Avail() ([]string, error)
	// Loaded lists the currently active package keys.
	Loaded() []string
	// Load activates a package, mutating PATH/LD_LIBRARY_PATH and friends.
	Load(key string) error
	// Unload deactivates a previously loaded package.
	Unload(key string) error
}

// ----------------------------------------------------------------------------
// Environment Modules

// ModulesRoot is the conventional modulefile directory.
const ModulesRoot = "/usr/share/Modules/modulefiles"

// loadedModulesVar mirrors the real Modules implementation, which tracks
// state in the LOADEDMODULES environment variable.
const loadedModulesVar = "LOADEDMODULES"

// Modules simulates Environment Modules over a site environment.
type Modules struct {
	env Environment
}

// NewModules returns a Modules tool bound to env. The modulefile root is
// created on first AddModulefile.
func NewModules(env Environment) *Modules { return &Modules{env: env} }

// Detect reports whether an Environment Modules installation is present at
// the site (a modulefiles directory exists).
func DetectModules(env Environment) *Modules {
	if env.FS().IsDir(ModulesRoot) {
		return NewModules(env)
	}
	return nil
}

func (m *Modules) Name() string { return "modules" }

// AddModulefile installs a modulefile under the conventional root. The body
// uses the real modulefile directive syntax subset FEAM understands:
// prepend-path, setenv, and comment lines.
func (m *Modules) AddModulefile(key, body string) error {
	if !strings.HasPrefix(body, "#%Module") {
		body = "#%Module1.0\n" + body
	}
	return m.env.FS().WriteString(ModulesRoot+"/"+key, body)
}

// Avail walks the modulefile tree, as `module avail` does.
func (m *Modules) Avail() ([]string, error) {
	fs := m.env.FS()
	if !fs.IsDir(ModulesRoot) {
		return nil, fmt.Errorf("envmgmt: no modulefiles directory")
	}
	var keys []string
	err := fs.Walk(ModulesRoot, func(p string, info vfs.FileInfo) error {
		if info.Kind == vfs.KindFile {
			keys = append(keys, strings.TrimPrefix(p, ModulesRoot+"/"))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Loaded parses LOADEDMODULES, the same state `module list` prints.
func (m *Modules) Loaded() []string {
	v := m.env.Getenv(loadedModulesVar)
	if v == "" {
		return nil
	}
	return strings.Split(v, ":")
}

// Load interprets the modulefile and applies its directives.
func (m *Modules) Load(key string) error {
	for _, l := range m.Loaded() {
		if l == key {
			return nil // already loaded
		}
	}
	body, err := m.env.FS().ReadFile(ModulesRoot + "/" + key)
	if err != nil {
		return fmt.Errorf("envmgmt: module %q not found: %v", key, err)
	}
	if err := applyModulefile(m.env, string(body), false); err != nil {
		return fmt.Errorf("envmgmt: module %q: %v", key, err)
	}
	loaded := append(m.Loaded(), key)
	m.env.Setenv(loadedModulesVar, strings.Join(loaded, ":"))
	return nil
}

// Unload reverses the modulefile's path directives.
func (m *Modules) Unload(key string) error {
	found := false
	var remaining []string
	for _, l := range m.Loaded() {
		if l == key {
			found = true
			continue
		}
		remaining = append(remaining, l)
	}
	if !found {
		return fmt.Errorf("envmgmt: module %q is not loaded", key)
	}
	body, err := m.env.FS().ReadFile(ModulesRoot + "/" + key)
	if err != nil {
		return err
	}
	if err := applyModulefile(m.env, string(body), true); err != nil {
		return err
	}
	m.env.Setenv(loadedModulesVar, strings.Join(remaining, ":"))
	return nil
}

// applyModulefile executes the directive subset. With reverse set, path
// prepends are removed and setenvs cleared.
func applyModulefile(env Environment, body string, reverse bool) error {
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "prepend-path":
			if len(fields) != 3 {
				return fmt.Errorf("malformed prepend-path: %q", line)
			}
			if reverse {
				RemovePathEntry(env, fields[1], fields[2])
			} else {
				PrependPathEntry(env, fields[1], fields[2])
			}
		case "setenv":
			if len(fields) != 3 {
				return fmt.Errorf("malformed setenv: %q", line)
			}
			if reverse {
				env.Setenv(fields[1], "")
			} else {
				env.Setenv(fields[1], fields[2])
			}
		case "module-whatis", "conflict":
			// informational; ignored
		default:
			return fmt.Errorf("unsupported modulefile directive %q", fields[0])
		}
	}
	return nil
}

// ----------------------------------------------------------------------------
// SoftEnv

// SoftEnvDB is the conventional softenv database path.
const SoftEnvDB = "/etc/softenv.db"

// softEnvVar tracks active keys, as the real SoftEnv does via SOFTENVLOADED
// style variables.
const softEnvVar = "SOFTENV_LOADED"

// SoftEnv simulates the MCS SoftEnv system: a flat database mapping keys to
// environment amendments.
type SoftEnv struct {
	env Environment
}

// NewSoftEnv returns a SoftEnv tool bound to env.
func NewSoftEnv(env Environment) *SoftEnv { return &SoftEnv{env: env} }

// DetectSoftEnv reports whether a SoftEnv database is present.
func DetectSoftEnv(env Environment) *SoftEnv {
	if env.FS().Exists(SoftEnvDB) {
		return NewSoftEnv(env)
	}
	return nil
}

func (s *SoftEnv) Name() string { return "softenv" }

// AddKey appends a key to the database. Each amendment has the form
// VAR+=value (path-style prepend) or VAR=value.
func (s *SoftEnv) AddKey(key string, amendments ...string) error {
	fs := s.env.FS()
	var existing string
	if data, err := fs.ReadFile(SoftEnvDB); err == nil {
		existing = string(data)
	}
	line := key + " " + strings.Join(amendments, " ") + "\n"
	return fs.WriteString(SoftEnvDB, existing+line)
}

func (s *SoftEnv) readDB() (map[string][]string, []string, error) {
	data, err := s.env.FS().ReadFile(SoftEnvDB)
	if err != nil {
		return nil, nil, fmt.Errorf("envmgmt: no softenv database: %v", err)
	}
	db := map[string][]string{}
	var order []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if _, ok := db[fields[0]]; !ok {
			order = append(order, fields[0])
		}
		db[fields[0]] = fields[1:]
	}
	return db, order, nil
}

// Avail lists database keys in definition order.
func (s *SoftEnv) Avail() ([]string, error) {
	_, order, err := s.readDB()
	return order, err
}

// Loaded lists active keys.
func (s *SoftEnv) Loaded() []string {
	v := s.env.Getenv(softEnvVar)
	if v == "" {
		return nil
	}
	return strings.Split(v, ":")
}

// Load applies a key's amendments (`soft add +key`).
func (s *SoftEnv) Load(key string) error {
	for _, l := range s.Loaded() {
		if l == key {
			return nil
		}
	}
	db, _, err := s.readDB()
	if err != nil {
		return err
	}
	amendments, ok := db[key]
	if !ok {
		return fmt.Errorf("envmgmt: softenv key %q not found", key)
	}
	for _, a := range amendments {
		if i := strings.Index(a, "+="); i > 0 {
			PrependPathEntry(s.env, a[:i], a[i+2:])
		} else if i := strings.IndexByte(a, '='); i > 0 {
			s.env.Setenv(a[:i], a[i+1:])
		} else {
			return fmt.Errorf("envmgmt: malformed softenv amendment %q", a)
		}
	}
	s.env.Setenv(softEnvVar, strings.Join(append(s.Loaded(), key), ":"))
	return nil
}

// Unload reverses a key's path amendments (`soft delete +key`).
func (s *SoftEnv) Unload(key string) error {
	found := false
	var remaining []string
	for _, l := range s.Loaded() {
		if l == key {
			found = true
			continue
		}
		remaining = append(remaining, l)
	}
	if !found {
		return fmt.Errorf("envmgmt: softenv key %q is not loaded", key)
	}
	db, _, err := s.readDB()
	if err != nil {
		return err
	}
	for _, a := range db[key] {
		if i := strings.Index(a, "+="); i > 0 {
			RemovePathEntry(s.env, a[:i], a[i+2:])
		} else if i := strings.IndexByte(a, '='); i > 0 {
			s.env.Setenv(a[:i], "")
		}
	}
	s.env.Setenv(softEnvVar, strings.Join(remaining, ":"))
	return nil
}

// ----------------------------------------------------------------------------
// Path-variable helpers shared by both tools (and by FEAM's own
// configuration scripts).

// PrependPathEntry adds dir to the front of a colon-separated path variable,
// removing any existing occurrence first.
func PrependPathEntry(env Environment, key, dir string) {
	RemovePathEntry(env, key, dir)
	cur := env.Getenv(key)
	if cur == "" {
		env.Setenv(key, dir)
		return
	}
	env.Setenv(key, dir+":"+cur)
}

// RemovePathEntry removes dir from a colon-separated path variable.
func RemovePathEntry(env Environment, key, dir string) {
	cur := env.Getenv(key)
	if cur == "" {
		return
	}
	var kept []string
	for _, d := range strings.Split(cur, ":") {
		if d != dir && d != "" {
			kept = append(kept, d)
		}
	}
	env.Setenv(key, strings.Join(kept, ":"))
}

// SplitPathVar splits a colon-separated path variable, dropping empties.
func SplitPathVar(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, d := range strings.Split(v, ":") {
		if d != "" {
			out = append(out, d)
		}
	}
	return out
}
