package envmgmt

import (
	"reflect"
	"testing"

	"feam/internal/vfs"
)

// fakeEnv is a minimal Environment for tests.
type fakeEnv struct {
	fs  *vfs.FS
	env map[string]string
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{fs: vfs.New(), env: map[string]string{}}
}

func (f *fakeEnv) FS() *vfs.FS            { return f.fs }
func (f *fakeEnv) Getenv(k string) string { return f.env[k] }
func (f *fakeEnv) Setenv(k, v string)     { f.env[k] = v }

func TestModulesAvailLoadedLoad(t *testing.T) {
	env := newFakeEnv()
	m := NewModules(env)
	err := m.AddModulefile("mpi/openmpi-1.4.3-intel", `
module-whatis "Open MPI 1.4.3 with Intel compilers"
prepend-path PATH /opt/openmpi-1.4.3-intel/bin
prepend-path LD_LIBRARY_PATH /opt/openmpi-1.4.3-intel/lib
setenv MPI_HOME /opt/openmpi-1.4.3-intel
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddModulefile("mpi/mvapich2-1.7a2-gnu", "prepend-path PATH /opt/mvapich2-1.7a2-gnu/bin\n"); err != nil {
		t.Fatal(err)
	}

	avail, err := m.Avail()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mpi/mvapich2-1.7a2-gnu", "mpi/openmpi-1.4.3-intel"}
	if !reflect.DeepEqual(avail, want) {
		t.Errorf("Avail = %v", avail)
	}

	if got := m.Loaded(); len(got) != 0 {
		t.Errorf("Loaded before load = %v", got)
	}
	if err := m.Load("mpi/openmpi-1.4.3-intel"); err != nil {
		t.Fatal(err)
	}
	if got := m.Loaded(); !reflect.DeepEqual(got, []string{"mpi/openmpi-1.4.3-intel"}) {
		t.Errorf("Loaded = %v", got)
	}
	if env.Getenv("PATH") != "/opt/openmpi-1.4.3-intel/bin" {
		t.Errorf("PATH = %q", env.Getenv("PATH"))
	}
	if env.Getenv("LD_LIBRARY_PATH") != "/opt/openmpi-1.4.3-intel/lib" {
		t.Errorf("LD_LIBRARY_PATH = %q", env.Getenv("LD_LIBRARY_PATH"))
	}
	if env.Getenv("MPI_HOME") != "/opt/openmpi-1.4.3-intel" {
		t.Errorf("MPI_HOME = %q", env.Getenv("MPI_HOME"))
	}

	// Loading a second module prepends ahead of the first.
	if err := m.Load("mpi/mvapich2-1.7a2-gnu"); err != nil {
		t.Fatal(err)
	}
	if env.Getenv("PATH") != "/opt/mvapich2-1.7a2-gnu/bin:/opt/openmpi-1.4.3-intel/bin" {
		t.Errorf("PATH after second load = %q", env.Getenv("PATH"))
	}

	// Idempotent re-load.
	if err := m.Load("mpi/mvapich2-1.7a2-gnu"); err != nil {
		t.Fatal(err)
	}
	if got := m.Loaded(); len(got) != 2 {
		t.Errorf("Loaded after re-load = %v", got)
	}
}

func TestModulesUnload(t *testing.T) {
	env := newFakeEnv()
	m := NewModules(env)
	if err := m.AddModulefile("mpi/a", "prepend-path PATH /opt/a/bin\nsetenv A_HOME /opt/a\n"); err != nil {
		t.Fatal(err)
	}
	if err := m.Load("mpi/a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unload("mpi/a"); err != nil {
		t.Fatal(err)
	}
	if env.Getenv("PATH") != "" {
		t.Errorf("PATH after unload = %q", env.Getenv("PATH"))
	}
	if got := m.Loaded(); len(got) != 0 {
		t.Errorf("Loaded after unload = %v", got)
	}
	if err := m.Unload("mpi/a"); err == nil {
		t.Error("unloading an unloaded module should fail")
	}
}

func TestModulesErrors(t *testing.T) {
	env := newFakeEnv()
	m := NewModules(env)
	if _, err := m.Avail(); err == nil {
		t.Error("Avail without modulefiles dir should fail")
	}
	if err := m.Load("missing"); err == nil {
		t.Error("loading a missing module should fail")
	}
	if err := m.AddModulefile("bad", "frobnicate X Y\n"); err != nil {
		t.Fatal(err)
	}
	if err := m.Load("bad"); err == nil {
		t.Error("unknown directive should fail")
	}
	if err := m.AddModulefile("bad2", "prepend-path PATH\n"); err != nil {
		t.Fatal(err)
	}
	if err := m.Load("bad2"); err == nil {
		t.Error("malformed prepend-path should fail")
	}
}

func TestDetectModules(t *testing.T) {
	env := newFakeEnv()
	if DetectModules(env) != nil {
		t.Error("detected modules on empty site")
	}
	m := NewModules(env)
	if err := m.AddModulefile("mpi/x", "prepend-path PATH /x\n"); err != nil {
		t.Fatal(err)
	}
	if DetectModules(env) == nil {
		t.Error("failed to detect installed modules")
	}
}

func TestSoftEnv(t *testing.T) {
	env := newFakeEnv()
	s := NewSoftEnv(env)
	if DetectSoftEnv(env) != nil {
		t.Error("detected softenv on empty site")
	}
	if err := s.AddKey("+mpich2-1.4-gnu", "PATH+=/opt/mpich2-1.4-gnu/bin", "LD_LIBRARY_PATH+=/opt/mpich2-1.4-gnu/lib"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddKey("+intel-11.1", "PATH+=/opt/intel/11.1/bin", "INTEL_LICENSE=/opt/intel/license"); err != nil {
		t.Fatal(err)
	}
	if DetectSoftEnv(env) == nil {
		t.Error("failed to detect softenv")
	}
	avail, err := s.Avail()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(avail, []string{"+mpich2-1.4-gnu", "+intel-11.1"}) {
		t.Errorf("Avail = %v", avail)
	}
	if err := s.Load("+mpich2-1.4-gnu"); err != nil {
		t.Fatal(err)
	}
	if env.Getenv("PATH") != "/opt/mpich2-1.4-gnu/bin" {
		t.Errorf("PATH = %q", env.Getenv("PATH"))
	}
	if err := s.Load("+intel-11.1"); err != nil {
		t.Fatal(err)
	}
	if env.Getenv("INTEL_LICENSE") != "/opt/intel/license" {
		t.Errorf("INTEL_LICENSE = %q", env.Getenv("INTEL_LICENSE"))
	}
	if got := s.Loaded(); !reflect.DeepEqual(got, []string{"+mpich2-1.4-gnu", "+intel-11.1"}) {
		t.Errorf("Loaded = %v", got)
	}
	if err := s.Unload("+mpich2-1.4-gnu"); err != nil {
		t.Fatal(err)
	}
	if env.Getenv("PATH") != "/opt/intel/11.1/bin" {
		t.Errorf("PATH after unload = %q", env.Getenv("PATH"))
	}
	if err := s.Load("+nope"); err == nil {
		t.Error("loading a missing key should fail")
	}
	if err := s.Unload("+nope"); err == nil {
		t.Error("unloading a missing key should fail")
	}
}

func TestPathHelpers(t *testing.T) {
	env := newFakeEnv()
	PrependPathEntry(env, "PATH", "/a")
	PrependPathEntry(env, "PATH", "/b")
	if env.Getenv("PATH") != "/b:/a" {
		t.Errorf("PATH = %q", env.Getenv("PATH"))
	}
	// Re-prepending an existing entry moves it to the front.
	PrependPathEntry(env, "PATH", "/a")
	if env.Getenv("PATH") != "/a:/b" {
		t.Errorf("PATH = %q", env.Getenv("PATH"))
	}
	RemovePathEntry(env, "PATH", "/b")
	if env.Getenv("PATH") != "/a" {
		t.Errorf("PATH = %q", env.Getenv("PATH"))
	}
	RemovePathEntry(env, "EMPTY", "/x") // no-op on empty
	if got := SplitPathVar("/a::/b:"); !reflect.DeepEqual(got, []string{"/a", "/b"}) {
		t.Errorf("SplitPathVar = %v", got)
	}
	if SplitPathVar("") != nil {
		t.Error("SplitPathVar(\"\") should be nil")
	}
}
