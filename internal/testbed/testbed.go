// Package testbed constructs the paper's evaluation environment: the five
// computing sites of Table II (Ranger, Forge, Blacklight, India, Fir) with
// their operating systems, C library versions, compilers, interconnects,
// user-environment management tools, and MPI stack matrices; plus the
// ground-truth failure knobs (CPU feature levels, broken stack
// combinations, system-error rates) that reproduce the paper's observed
// failure distribution.
package testbed

import (
	"fmt"

	"feam/internal/batch"
	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
)

// StackSpec is one row of a site's MPI stack matrix.
type StackSpec struct {
	Impl      mpistack.Impl
	Version   string
	Compilers []toolchain.Family
	// Broken marks the misconfigured combinations (per compiler family,
	// keyed by family) — stacks advertised by the site that cannot run any
	// program.
	Broken map[toolchain.Family]bool
}

// SiteSpec describes one Table II site.
type SiteSpec struct {
	Name        string
	Description string
	SystemType  string
	Cores       int

	// ISA is the hardware architecture: "x86_64" (the default and the only
	// one Table II uses), "i686", "ppc64", or "ppc". Scenario fleets use
	// the others to exercise the ISA determinant's failure path.
	ISA string

	Distro      string
	OSVersion   string
	Kernel      string
	ReleaseFile string

	Glibc   libver.Version
	CPUName string
	// FeatureLevel is the CPU ISA extension level (ground truth).
	FeatureLevel int

	Compilers []toolchain.Compiler
	// EnvTool is "modules", "softenv", or "" (path search only).
	EnvTool string
	// Infiniband controls whether IB transport libraries are installed.
	Infiniband bool
	// Manager is the batch system flavor.
	Manager batch.Manager
	// SysErrRate is the persistent system-error probability (ground
	// truth), scaled per suite by the execution simulator.
	SysErrRate float64
	// CompatFortranLibs installs the distribution's compatibility Fortran
	// runtime (libg2c.so.0, the compat-libf2c package) so binaries from
	// GCC-3.4-era sites run without resolution.
	CompatFortranLibs bool

	Stacks []StackSpec
}

// DefaultSpecs returns the Table II matrix. Versions, operating systems,
// glibc releases, compilers and stack combinations follow the paper; CPU
// feature levels, broken-stack choices, and system-error rates are the
// simulation's ground-truth calibration (documented in DESIGN.md).
func DefaultSpecs() []SiteSpec {
	g, i, p := toolchain.GNU, toolchain.Intel, toolchain.PGI
	return []SiteSpec{
		{
			Name: "ranger", Description: "XSEDE Ranger, Texas Advanced Computing Center",
			SystemType: "MPP", Cores: 62976,
			Distro: "CentOS", OSVersion: "4.9", Kernel: "2.6.9-89.ELsmp", ReleaseFile: "/etc/redhat-release",
			Glibc:   libver.V(2, 3, 4),
			CPUName: "AMD Opteron 8356 (Barcelona)", FeatureLevel: 2,
			Compilers: []toolchain.Compiler{
				{Family: g, Version: "3.4.6"},
				{Family: i, Version: "10.1"},
				{Family: p, Version: "7.2"},
			},
			EnvTool: "modules", Infiniband: true, Manager: batch.SGE,
			SysErrRate: 0.04,
			Stacks: []StackSpec{
				{Impl: mpistack.OpenMPI, Version: "1.3", Compilers: []toolchain.Family{i, g, p},
					Broken: map[toolchain.Family]bool{p: true}},
				{Impl: mpistack.MVAPICH2, Version: "1.2", Compilers: []toolchain.Family{i, g, p}},
			},
		},
		{
			Name: "forge", Description: "XSEDE Forge, National Center for Supercomputing Applications",
			SystemType: "Hybrid", Cores: 576,
			Distro: "Red Hat Enterprise Linux Server", OSVersion: "6.1", Kernel: "2.6.32-131.el6", ReleaseFile: "/etc/redhat-release",
			Glibc:   libver.V(2, 12),
			CPUName: "AMD Opteron 6136 (Magny-Cours)", FeatureLevel: 3,
			Compilers: []toolchain.Compiler{
				{Family: g, Version: "4.4.5"},
				{Family: i, Version: "12"},
			},
			EnvTool: "modules", Infiniband: true, Manager: batch.PBS,
			SysErrRate:        0.04,
			CompatFortranLibs: true,
			Stacks: []StackSpec{
				{Impl: mpistack.OpenMPI, Version: "1.4", Compilers: []toolchain.Family{g, i}},
				{Impl: mpistack.MVAPICH2, Version: "1.7rc1", Compilers: []toolchain.Family{i},
					Broken: map[toolchain.Family]bool{i: true}},
			},
		},
		{
			Name: "blacklight", Description: "XSEDE Blacklight, Pittsburgh Supercomputing Center",
			SystemType: "SMP", Cores: 4096,
			Distro: "SUSE Linux Enterprise Server", OSVersion: "11", Kernel: "2.6.32.13-0.5", ReleaseFile: "/etc/SuSE-release",
			Glibc:   libver.V(2, 11, 1),
			CPUName: "Intel Xeon X7560 (Nehalem-EX)", FeatureLevel: 2,
			Compilers: []toolchain.Compiler{
				{Family: g, Version: "4.4.3"},
				{Family: i, Version: "11.1"},
			},
			EnvTool: "softenv", Infiniband: false, Manager: batch.PBS,
			SysErrRate:        0.03,
			CompatFortranLibs: true,
			Stacks: []StackSpec{
				{Impl: mpistack.OpenMPI, Version: "1.4", Compilers: []toolchain.Family{i, g}},
			},
		},
		{
			Name: "india", Description: "FutureGrid India, Indiana University",
			SystemType: "Cluster", Cores: 920,
			Distro: "Red Hat Enterprise Linux Server", OSVersion: "5.6", Kernel: "2.6.18-238.el5", ReleaseFile: "/etc/redhat-release",
			Glibc:   libver.V(2, 5),
			CPUName: "Intel Xeon X5570 (Nehalem)", FeatureLevel: 2,
			Compilers: []toolchain.Compiler{
				{Family: g, Version: "4.1.2"},
				{Family: i, Version: "11.1"},
			},
			EnvTool: "modules", Infiniband: true, Manager: batch.PBS,
			SysErrRate: 0.05,
			Stacks: []StackSpec{
				{Impl: mpistack.OpenMPI, Version: "1.4", Compilers: []toolchain.Family{i, g}},
				{Impl: mpistack.MVAPICH2, Version: "1.7a2", Compilers: []toolchain.Family{i, g}},
				{Impl: mpistack.MPICH2, Version: "1.4", Compilers: []toolchain.Family{i, g}},
			},
		},
		{
			Name: "fir", Description: "ITS Fir, University of Virginia",
			SystemType: "Cluster", Cores: 1496,
			Distro: "CentOS", OSVersion: "5.6", Kernel: "2.6.18-238.el5", ReleaseFile: "/etc/redhat-release",
			Glibc:   libver.V(2, 5),
			CPUName: "Intel Xeon E5620 (Westmere)", FeatureLevel: 2,
			Compilers: []toolchain.Compiler{
				{Family: g, Version: "4.1.2"},
				{Family: i, Version: "12"},
				{Family: p, Version: "11.5"},
			},
			EnvTool: "", Infiniband: true, Manager: batch.SLURM,
			SysErrRate: 0.04,
			Stacks: []StackSpec{
				{Impl: mpistack.OpenMPI, Version: "1.4", Compilers: []toolchain.Family{i, g, p}},
				{Impl: mpistack.MVAPICH2, Version: "1.7a", Compilers: []toolchain.Family{i, g, p},
					Broken: map[toolchain.Family]bool{p: true}},
				{Impl: mpistack.MPICH2, Version: "1.3", Compilers: []toolchain.Family{i, g, p}},
			},
		},
	}
}

// Testbed is the built five-site environment.
type Testbed struct {
	Sites  []*sitemodel.Site
	ByName map[string]*sitemodel.Site
	Specs  map[string]SiteSpec
	// Clusters holds each site's batch system.
	Clusters map[string]*batch.Cluster
}

// Build materializes the default Table II testbed.
func Build() (*Testbed, error) { return BuildFrom(DefaultSpecs()) }

// BuildFrom materializes sites from explicit specs.
func BuildFrom(specs []SiteSpec) (*Testbed, error) {
	tb := &Testbed{
		ByName:   map[string]*sitemodel.Site{},
		Specs:    map[string]SiteSpec{},
		Clusters: map[string]*batch.Cluster{},
	}
	for _, spec := range specs {
		site, err := buildSite(spec)
		if err != nil {
			return nil, fmt.Errorf("testbed: %s: %v", spec.Name, err)
		}
		tb.Sites = append(tb.Sites, site)
		tb.ByName[spec.Name] = site
		tb.Specs[spec.Name] = spec
		tb.Clusters[spec.Name] = batch.NewCluster(spec.Manager)
	}
	return tb, nil
}

// ArchForISA maps an ISA name to its machine/class pair; unknown names
// fall back to x86_64.
func ArchForISA(isa string) (elfimg.Machine, elfimg.Class) {
	switch isa {
	case "i686":
		return elfimg.EM386, elfimg.Class32
	case "ppc":
		return elfimg.EMPPC, elfimg.Class32
	case "ppc64":
		return elfimg.EMPPC64, elfimg.Class64
	default:
		return elfimg.EMX8664, elfimg.Class64
	}
}

func buildSite(spec SiteSpec) (*sitemodel.Site, error) {
	machine, class := ArchForISA(spec.ISA)
	site := sitemodel.New(spec.Name,
		sitemodel.Arch{
			Machine: machine, Class: class,
			CPUName: spec.CPUName, FeatureLevel: spec.FeatureLevel,
		},
		sitemodel.OSInfo{
			Distro: spec.Distro, Version: spec.OSVersion,
			Kernel: spec.Kernel, ReleaseFile: spec.ReleaseFile,
		},
		spec.Glibc)
	site.Description = spec.Description
	site.SystemType = spec.SystemType
	site.Cores = spec.Cores
	site.SysErrRate = spec.SysErrRate
	site.Interconnects = []string{"ethernet"}
	if spec.Infiniband {
		site.Interconnects = append(site.Interconnects, "infiniband")
	}

	if err := site.InstallCLibrary(); err != nil {
		return nil, err
	}
	if spec.Infiniband {
		if err := installIBLibraries(site); err != nil {
			return nil, err
		}
	}
	for _, comp := range spec.Compilers {
		ci := &toolchain.CompilerInstall{Compiler: comp}
		if err := ci.Materialize(site); err != nil {
			return nil, err
		}
	}
	if spec.CompatFortranLibs {
		// compat-libf2c: built for compatibility, so it references only the
		// glibc baseline and runs on any older system too.
		base := libver.GlibcSymbolVersions(site.Glibc)[:1]
		if _, err := site.InstallLibrary("/usr/lib64", sitemodel.Library{
			FileName: "libg2c.so.0.0.0", Soname: "libg2c.so.0",
			Needed:   []string{"libm.so.6", "libc.so.6"},
			VerNeeds: []elfimg.VerNeed{{File: "libc.so.6", Versions: base}},
			Comments: []string{"compat-libf2c"}, TextSize: 200 << 10,
		}); err != nil {
			return nil, err
		}
	}

	interconnect := "ethernet"
	if spec.Infiniband {
		interconnect = "infiniband"
	}
	var modules *envmgmt.Modules
	var softenv *envmgmt.SoftEnv
	switch spec.EnvTool {
	case "modules":
		modules = envmgmt.NewModules(site)
	case "softenv":
		softenv = envmgmt.NewSoftEnv(site)
	}
	for _, ss := range spec.Stacks {
		for _, fam := range ss.Compilers {
			comp, ok := findCompiler(spec.Compilers, fam)
			if !ok {
				return nil, fmt.Errorf("stack %s-%s wants %s compiler, not installed",
					ss.Impl.Key(), ss.Version, fam.Key())
			}
			ic := interconnect
			if ss.Impl == mpistack.MPICH2 {
				ic = "ethernet" // MPICH2 builds in the testbed are TCP-only
			}
			inst := &mpistack.Install{
				Release:         mpistack.Release{Impl: ss.Impl, Version: ss.Version},
				CompilerFamily:  fam.Key(),
				CompilerVersion: comp.Version,
				Interconnect:    ic,
				Broken:          ss.Broken[fam],
				WithFortran:     true,
			}
			rec, err := inst.Materialize(site)
			if err != nil {
				return nil, err
			}
			if modules != nil {
				body := fmt.Sprintf("module-whatis \"%s %s with %s compilers\"\nprepend-path PATH %s/bin\nprepend-path LD_LIBRARY_PATH %s/lib\nsetenv MPI_HOME %s\n",
					ss.Impl, ss.Version, fam.Key(), rec.Prefix, rec.Prefix, rec.Prefix)
				if err := modules.AddModulefile(rec.Key, body); err != nil {
					return nil, err
				}
			}
			if softenv != nil {
				if err := softenv.AddKey("+"+rec.Key,
					"PATH+="+rec.Prefix+"/bin", "LD_LIBRARY_PATH+="+rec.Prefix+"/lib"); err != nil {
					return nil, err
				}
			}
		}
	}
	return site, nil
}

func findCompiler(comps []toolchain.Compiler, fam toolchain.Family) (toolchain.Compiler, bool) {
	for _, c := range comps {
		if c.Family == fam {
			return c, true
		}
	}
	return toolchain.Compiler{}, false
}

// installIBLibraries places the InfiniBand transport libraries in the
// system directories of IB-equipped sites.
func installIBLibraries(site *sitemodel.Site) error {
	base := libver.GlibcSymbolVersions(site.Glibc)[:1]
	libcNeed := []elfimg.VerNeed{{File: "libc.so.6", Versions: base}}
	for _, lib := range []sitemodel.Library{
		{FileName: "libibverbs.so.1.0.0", Needed: []string{"libdl.so.2", "libpthread.so.0", "libc.so.6"}, VerNeeds: libcNeed, TextSize: 80 << 10},
		{FileName: "libibumad.so.3.0.2", Needed: []string{"libc.so.6"}, VerNeeds: libcNeed, TextSize: 40 << 10},
		{FileName: "librdmacm.so.1.0.0", Needed: []string{"libibverbs.so.1", "libc.so.6"}, VerNeeds: libcNeed, TextSize: 60 << 10},
	} {
		if _, err := site.InstallLibrary("/usr/lib64", lib); err != nil {
			return err
		}
	}
	return nil
}

// ActivateStack loads a stack's environment at a site using its
// user-environment management tool when present, or manual path exports
// otherwise — the same action a user (or FEAM's configuration script)
// performs before launching.
func ActivateStack(site *sitemodel.Site, key string) error {
	rec := site.FindStack(key)
	if rec == nil {
		return fmt.Errorf("testbed: no stack %q at %s", key, site.Name)
	}
	switch tool := site.EnvTool().(type) {
	case *envmgmt.Modules:
		return tool.Load(key)
	case *envmgmt.SoftEnv:
		return tool.Load("+" + key)
	default:
		envmgmt.PrependPathEntry(site, "PATH", rec.Prefix+"/bin")
		envmgmt.PrependPathEntry(site, "LD_LIBRARY_PATH", rec.Prefix+"/lib")
		return nil
	}
}
