package testbed

import (
	"sync"
	"testing"

	"feam/internal/libver"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

var (
	sharedOnce sync.Once
	sharedTB   *Testbed
	sharedErr  error
)

// build returns a process-wide shared testbed; construction is expensive
// (five sites, dozens of ELF images) and the read-only tests can share it.
// Tests that mutate site state take care to snapshot/restore.
func build(t *testing.T) *Testbed {
	t.Helper()
	sharedOnce.Do(func() { sharedTB, sharedErr = Build() })
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedTB
}

func TestFiveSites(t *testing.T) {
	tb := build(t)
	if len(tb.Sites) != 5 {
		t.Fatalf("sites = %d", len(tb.Sites))
	}
	for _, name := range []string{"ranger", "forge", "blacklight", "india", "fir"} {
		if tb.ByName[name] == nil {
			t.Errorf("missing site %s", name)
		}
		if tb.Clusters[name] == nil {
			t.Errorf("missing cluster for %s", name)
		}
	}
}

func TestTable2Characteristics(t *testing.T) {
	tb := build(t)
	cases := []struct {
		site   string
		glibc  libver.Version
		distro string
	}{
		{"ranger", libver.V(2, 3, 4), "CentOS"},
		{"forge", libver.V(2, 12), "Red Hat Enterprise Linux Server"},
		{"blacklight", libver.V(2, 11, 1), "SUSE Linux Enterprise Server"},
		{"india", libver.V(2, 5), "Red Hat Enterprise Linux Server"},
		{"fir", libver.V(2, 5), "CentOS"},
	}
	for _, c := range cases {
		s := tb.ByName[c.site]
		if !s.Glibc.Equal(c.glibc) {
			t.Errorf("%s glibc = %v, want %v", c.site, s.Glibc, c.glibc)
		}
		if s.OS.Distro != c.distro {
			t.Errorf("%s distro = %q", c.site, s.OS.Distro)
		}
	}
}

func TestStackMatrix(t *testing.T) {
	tb := build(t)
	counts := map[string]int{"ranger": 6, "forge": 3, "blacklight": 2, "india": 6, "fir": 9}
	total := 0
	for name, want := range counts {
		got := len(tb.ByName[name].Stacks)
		if got != want {
			t.Errorf("%s stacks = %d, want %d", name, got, want)
		}
		total += got
	}
	if total != 26 {
		t.Errorf("total stacks = %d, want 26", total)
	}
	// Availability per the paper: Open MPI at 5 sites, MVAPICH2 at 4,
	// MPICH2 at 2.
	implSites := map[string]map[string]bool{}
	for _, site := range tb.Sites {
		for _, rec := range site.Stacks {
			if implSites[rec.Impl] == nil {
				implSites[rec.Impl] = map[string]bool{}
			}
			implSites[rec.Impl][site.Name] = true
		}
	}
	if len(implSites["openmpi"]) != 5 || len(implSites["mvapich2"]) != 4 || len(implSites["mpich2"]) != 2 {
		t.Errorf("impl site counts: openmpi=%d mvapich2=%d mpich2=%d",
			len(implSites["openmpi"]), len(implSites["mvapich2"]), len(implSites["mpich2"]))
	}
}

func TestCompilersInstalled(t *testing.T) {
	tb := build(t)
	for name, fams := range map[string][]toolchain.Family{
		"ranger":     {toolchain.GNU, toolchain.Intel, toolchain.PGI},
		"forge":      {toolchain.GNU, toolchain.Intel},
		"blacklight": {toolchain.GNU, toolchain.Intel},
		"india":      {toolchain.GNU, toolchain.Intel},
		"fir":        {toolchain.GNU, toolchain.Intel, toolchain.PGI},
	} {
		site := tb.ByName[name]
		for _, fam := range fams {
			if _, ok := toolchain.FindCompiler(site, fam); !ok {
				t.Errorf("%s: %v compiler not discoverable", name, fam)
			}
		}
	}
	// Ranger's GNU compiler is the F90-less 3.4.6.
	c, _ := toolchain.FindCompiler(tb.ByName["ranger"], toolchain.GNU)
	if c.HasFortran90() {
		t.Errorf("ranger GCC = %s should lack Fortran 90", c.Version)
	}
}

func TestEnvToolsPerSite(t *testing.T) {
	tb := build(t)
	for name, want := range map[string]string{
		"ranger": "modules", "forge": "modules", "blacklight": "softenv",
		"india": "modules", "fir": "",
	} {
		tool := tb.ByName[name].EnvTool()
		got := ""
		if tool != nil {
			got = tool.Name()
		}
		if got != want {
			t.Errorf("%s env tool = %q, want %q", name, got, want)
		}
	}
}

func TestBrokenStacks(t *testing.T) {
	tb := build(t)
	if rec := tb.ByName["ranger"].FindStack("openmpi-1.3-pgi"); rec == nil || !rec.Broken {
		t.Error("ranger openmpi-1.3-pgi should be broken")
	}
	if rec := tb.ByName["forge"].FindStack("mvapich2-1.7rc1-intel"); rec == nil || !rec.Broken {
		t.Error("forge mvapich2-1.7rc1-intel should be broken")
	}
	if rec := tb.ByName["india"].FindStack("openmpi-1.4-gnu"); rec == nil || rec.Broken {
		t.Error("india openmpi-1.4-gnu should work")
	}
}

func TestActivateStack(t *testing.T) {
	tb := build(t)
	// Modules site.
	india := tb.ByName["india"]
	snap := india.SnapshotEnv()
	if err := ActivateStack(india, "openmpi-1.4-intel"); err != nil {
		t.Fatal(err)
	}
	if got := india.Getenv("LD_LIBRARY_PATH"); got != "/opt/openmpi-1.4-intel/lib" {
		t.Errorf("india LD_LIBRARY_PATH = %q", got)
	}
	india.RestoreEnv(snap)

	// SoftEnv site.
	bl := tb.ByName["blacklight"]
	if err := ActivateStack(bl, "openmpi-1.4-gnu"); err != nil {
		t.Fatal(err)
	}
	if got := bl.Getenv("LD_LIBRARY_PATH"); got != "/opt/openmpi-1.4-gnu/lib" {
		t.Errorf("blacklight LD_LIBRARY_PATH = %q", got)
	}

	// Path-search site (no tool).
	fir := tb.ByName["fir"]
	if err := ActivateStack(fir, "mpich2-1.3-gnu"); err != nil {
		t.Fatal(err)
	}
	if got := fir.Getenv("LD_LIBRARY_PATH"); got != "/opt/mpich2-1.3-gnu/lib" {
		t.Errorf("fir LD_LIBRARY_PATH = %q", got)
	}

	if err := ActivateStack(fir, "nonexistent-1.0-gnu"); err == nil {
		t.Error("activating a ghost stack should fail")
	}
}

func TestIBLibraries(t *testing.T) {
	tb := build(t)
	if !tb.ByName["ranger"].FS().Exists("/usr/lib64/libibverbs.so.1") {
		t.Error("ranger lacks libibverbs")
	}
	if tb.ByName["blacklight"].FS().Exists("/usr/lib64/libibverbs.so.1") {
		t.Error("blacklight should not have IB libraries")
	}
}

// TestCompileAcrossTestbed compiles one code with every stack at every site
// that supports it, confirming the compile path works testbed-wide.
func TestCompileAcrossTestbed(t *testing.T) {
	tb := build(t)
	compiled := 0
	for _, site := range tb.Sites {
		for _, rec := range site.Stacks {
			art, err := toolchain.Compile(workload.Find("is"), rec, site)
			if err != nil {
				t.Errorf("%s/%s: %v", site.Name, rec.Key, err)
				continue
			}
			if art.Truth.BuildSite != site.Name {
				t.Errorf("truth build site = %q", art.Truth.BuildSite)
			}
			compiled++
		}
	}
	if compiled != 26 {
		t.Errorf("compiled %d IS binaries, want 26", compiled)
	}
}
