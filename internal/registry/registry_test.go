package registry_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/fault"
	"feam/internal/libver"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/sitemodel"
)

func newSite(t testing.TB, name string) *sitemodel.Site {
	t.Helper()
	return sitemodel.New(name,
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "x86_64"},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		libver.Version{2, 5})
}

func TestRegisterLookupInvalidate(t *testing.T) {
	r := registry.New()
	site := newSite(t, "india")
	if err := r.Register(site); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Site("india")
	if !ok || got != site {
		t.Fatalf("Site(india) = %v, %v", got, ok)
	}
	if _, ok := r.Site("nowhere"); ok {
		t.Fatal("unregistered site resolved")
	}
	if names := r.Sites(); len(names) != 1 || names[0] != "india" {
		t.Fatalf("Sites() = %v", names)
	}

	survey := &struct{ v int }{1}
	r.StoreSurvey(site, 42, survey)
	if v, ok := r.LookupSurvey(site, 42); !ok || v != survey {
		t.Fatal("stored survey not returned")
	}
	// Wrong fingerprint is a miss; the entry survives for the right one.
	if _, ok := r.LookupSurvey(site, 43); ok {
		t.Fatal("fingerprint mismatch must miss")
	}
	r.Invalidate("india")
	if _, ok := r.LookupSurvey(site, 42); ok {
		t.Fatal("invalidated survey still served")
	}
	// The site table and lock survive invalidation.
	if _, ok := r.Site("india"); !ok {
		t.Fatal("Invalidate dropped the site registration")
	}
}

// TestGenerationInvalidation: a survey cached under a fingerprint derived
// from the site's vfs generation reads as a miss after any filesystem
// mutation — the registry never watches sites, the key does the work.
func TestGenerationInvalidation(t *testing.T) {
	r := registry.New()
	site := newSite(t, "ranger")
	fp := site.FS().Generation()
	r.StoreSurvey(site, fp, "survey@gen")
	if _, ok := r.LookupSurvey(site, site.FS().Generation()); !ok {
		t.Fatal("unchanged generation should hit")
	}
	if err := site.FS().WriteFile("/tmp/mutation", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.LookupSurvey(site, site.FS().Generation()); ok {
		t.Fatal("generation bump must invalidate the cached survey")
	}
}

// TestDistinctSiteObjectsNeverShare: two Site objects with one name (and
// possibly colliding fingerprints) must not share a survey entry.
func TestDistinctSiteObjectsNeverShare(t *testing.T) {
	r := registry.New()
	a, b := newSite(t, "twin"), newSite(t, "twin")
	r.StoreSurvey(a, 7, "a-survey")
	if _, ok := r.LookupSurvey(b, 7); ok {
		t.Fatal("entry for site object a served to site object b")
	}
}

// TestShardEviction: inserting past a shard's capacity evicts least
// recently used entries and counts them (registry_evict).
func TestShardEviction(t *testing.T) {
	metrics := obs.NewRegistry()
	r := registry.New(registry.WithShards(1), registry.WithShardCapacity(4),
		registry.WithMetrics(metrics))
	sites := make([]*sitemodel.Site, 6)
	for i := range sites {
		sites[i] = newSite(t, fmt.Sprintf("site-%d", i))
		r.StoreSurvey(sites[i], uint64(i), i)
	}
	st := r.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.Surveys != 4 {
		t.Fatalf("cached surveys = %d, want 4 (capacity)", st.Surveys)
	}
	if got := metrics.Counter("registry_evict").Load(); got != 2 {
		t.Fatalf("registry_evict counter = %d, want 2", got)
	}
	// Oldest entries evicted first.
	if _, ok := r.LookupSurvey(sites[0], 0); ok {
		t.Fatal("LRU entry site-0 should have been evicted")
	}
	if _, ok := r.LookupSurvey(sites[5], 5); !ok {
		t.Fatal("most recent entry missing")
	}
}

// TestLRUTouchOrder: a lookup refreshes recency, so the untouched entry is
// the one evicted.
func TestLRUTouchOrder(t *testing.T) {
	r := registry.New(registry.WithShards(1), registry.WithShardCapacity(2))
	a, b, c := newSite(t, "a"), newSite(t, "b"), newSite(t, "c")
	r.StoreSurvey(a, 1, "a")
	r.StoreSurvey(b, 2, "b")
	if _, ok := r.LookupSurvey(a, 1); !ok { // touch a: b becomes LRU
		t.Fatal("expected hit on a")
	}
	r.StoreSurvey(c, 3, "c") // evicts b
	if _, ok := r.LookupSurvey(b, 2); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := r.LookupSurvey(a, 1); !ok {
		t.Fatal("touched entry a evicted out of order")
	}
}

func TestDescriptionCache(t *testing.T) {
	metrics := obs.NewRegistry()
	r := registry.New(registry.WithMetrics(metrics))
	r.StoreDescription("hash1", "app", "desc1")
	if v, ok := r.LookupDescription("hash1", "app"); !ok || v != "desc1" {
		t.Fatal("stored description not returned")
	}
	if _, ok := r.LookupDescription("hash1", "other"); ok {
		t.Fatal("name is part of the description key")
	}
	if _, ok := r.LookupDescription("hash2", "app"); ok {
		t.Fatal("hash is part of the description key")
	}
	if hits := metrics.Counter("registry_hit").Load(); hits != 1 {
		t.Fatalf("registry_hit = %d, want 1", hits)
	}
	if misses := metrics.Counter("registry_miss").Load(); misses != 2 {
		t.Fatalf("registry_miss = %d, want 2", misses)
	}
}

// TestSiteLockIdentity: one lock per name, created on demand, stable
// across registration.
func TestSiteLockIdentity(t *testing.T) {
	r := registry.New()
	l1 := r.SiteLock("forge")
	l2 := r.SiteLock("forge")
	if l1 != l2 {
		t.Fatal("SiteLock must return one lock per name")
	}
	if r.SiteLock("other") == l1 {
		t.Fatal("distinct names must get distinct locks")
	}
	site := newSite(t, "forge")
	if err := r.Register(site); err != nil {
		t.Fatal(err)
	}
	if r.SiteLock("forge") != l1 {
		t.Fatal("registration must keep the pre-existing lock")
	}
}

// TestFaultHook: an injected fault turns lookups into misses, drops
// stores, and surfaces on Register.
func TestFaultHook(t *testing.T) {
	script := &fault.Script{}
	r := registry.New(registry.WithFaultHook(fault.Hook(context.Background(), script)))
	site := newSite(t, "flaky")

	script.FailNext(fault.Permanent, "register")
	if err := r.Register(site); err == nil {
		t.Fatal("injected register fault not surfaced")
	}
	if err := r.Register(site); err != nil {
		t.Fatal(err)
	}
	r.StoreSurvey(site, 9, "v")
	script.FailNext(fault.Transient, "lookup")
	if _, ok := r.LookupSurvey(site, 9); ok {
		t.Fatal("injected lookup fault must read as a miss")
	}
	if _, ok := r.LookupSurvey(site, 9); !ok {
		t.Fatal("entry must survive a faulted lookup")
	}
	script.FailNext(fault.Transient, "store")
	other := newSite(t, "flaky2")
	r.StoreSurvey(other, 1, "dropped")
	if _, ok := r.LookupSurvey(other, 1); ok {
		t.Fatal("faulted store must drop the entry")
	}
}

// TestConcurrentSharding: hammer every operation from many goroutines;
// run under -race this is the shard-locking proof.
func TestConcurrentSharding(t *testing.T) {
	r := registry.New(registry.WithShards(4), registry.WithShardCapacity(8))
	sites := make([]*sitemodel.Site, 16)
	for i := range sites {
		sites[i] = newSite(t, fmt.Sprintf("c-%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				site := sites[(seed+i)%len(sites)]
				switch i % 5 {
				case 0:
					_ = r.Register(site)
				case 1:
					r.StoreSurvey(site, uint64(i), i)
				case 2:
					r.LookupSurvey(site, uint64(i))
				case 3:
					r.StoreDescription(fmt.Sprintf("h%d", i%10), site.Name, i)
					r.LookupDescription(fmt.Sprintf("h%d", i%10), site.Name)
				case 4:
					r.Invalidate(site.Name)
					_ = r.SiteLock(site.Name)
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if st.Surveys > 4*8 {
		t.Fatalf("cached surveys = %d exceed total capacity", st.Surveys)
	}
}
