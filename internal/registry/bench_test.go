package registry_test

import (
	"fmt"
	"testing"

	"feam/internal/registry"
	"feam/internal/sitemodel"
)

func benchSites(b *testing.B, n int) []*sitemodel.Site {
	b.Helper()
	sites := make([]*sitemodel.Site, n)
	for i := range sites {
		sites[i] = newSite(b, fmt.Sprintf("bench-%d", i))
	}
	return sites
}

// BenchmarkRegistryLookupSurvey measures the warm read path — the
// operation every cached Predict pays — and reports the achieved hit rate,
// which BENCH_PR6.json records as the registry's effectiveness number.
func BenchmarkRegistryLookupSurvey(b *testing.B) {
	r := registry.New()
	sites := benchSites(b, 32)
	for i, s := range sites {
		r.StoreSurvey(s, uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sites[i%len(sites)]
		if _, ok := r.LookupSurvey(s, uint64(i%len(sites))); !ok {
			b.Fatal("warm lookup missed")
		}
	}
	st := r.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit_rate")
}

// BenchmarkRegistryStoreSurvey measures the write path with LRU eviction
// pressure: the working set is twice the capacity, so every store evicts.
func BenchmarkRegistryStoreSurvey(b *testing.B) {
	r := registry.New(registry.WithShards(4), registry.WithShardCapacity(8))
	sites := benchSites(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StoreSurvey(sites[i%len(sites)], uint64(i), i)
	}
	b.ReportMetric(float64(r.Stats().Evictions)/float64(b.N), "evictions/op")
}

// BenchmarkRegistryParallel measures contended mixed traffic across all
// shards — the two-engines-one-registry deployment shape — and reports the
// aggregate hit rate under contention.
func BenchmarkRegistryParallel(b *testing.B) {
	r := registry.New()
	sites := benchSites(b, 64)
	for i, s := range sites {
		r.StoreSurvey(s, uint64(i), i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s := sites[i%len(sites)]
			if i%8 == 0 {
				r.StoreSurvey(s, uint64(i%len(sites)), i)
			} else {
				r.LookupSurvey(s, uint64(i%len(sites)))
			}
			i++
		}
	})
	st := r.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit_rate")
}

// BenchmarkRegistryShardCount contrasts a single global lock (1 shard)
// with the default sharding under parallel load; the gap is the reason the
// registry shards at all.
func BenchmarkRegistryShardCount(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			r := registry.New(registry.WithShards(shards))
			sites := benchSites(b, 64)
			for i, s := range sites {
				r.StoreSurvey(s, uint64(i), i)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					r.LookupSurvey(sites[i%len(sites)], uint64(i%len(sites)))
					i++
				}
			})
		})
	}
}
