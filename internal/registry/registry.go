// Package registry is FEAM's shared site-state layer: a sharded, bounded,
// concurrency-safe registry owning site registration, per-site
// serialization locks, and the memoized survey (EDC) and binary
// description (BDC) caches that used to live inside one feam.Engine.
//
// The paper's headline workload is assessing many (binary, site) pairs
// across a fleet; FEAM-as-a-service (ROADMAP item 1) runs many prediction
// engines over that fleet concurrently. The registry is the piece that
// makes the engines stateless: every engine reads and writes survey and
// description state here, so two engines sharing one registry see one
// coherent fleet and serialize site-mutating work on one set of locks.
//
// Layout: a fixed number of shards, each guarded by its own RWMutex, each
// holding a slice of the site table plus an LRU-bounded cache of survey
// and description entries. Survey entries are keyed by site name and
// validated against the caller's fingerprint (environment-variable hash +
// vfs mutation generation), so any site mutation reads as a miss without
// the registry ever watching the site. Evictions, hits, and misses are
// counted into an optional obs metrics registry (`registry_hit`,
// `registry_miss`, `registry_evict`).
package registry

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"feam/internal/obs"
	"feam/internal/sitemodel"
)

// Defaults: shard count balances lock contention against per-shard LRU
// bookkeeping; capacity bounds each shard's cache (surveys + descriptions
// share one LRU list) far above a testbed's working set.
const (
	DefaultShards        = 16
	DefaultShardCapacity = 256
)

// Option configures a Registry at construction.
type Option func(*Registry)

// WithShards sets the fixed shard count (minimum 1).
func WithShards(n int) Option {
	return func(r *Registry) {
		if n >= 1 {
			r.nshards = n
		}
	}
}

// WithShardCapacity bounds each shard's cache entries (minimum 1);
// insertion beyond the bound evicts the shard's least recently used entry.
func WithShardCapacity(n int) Option {
	return func(r *Registry) {
		if n >= 1 {
			r.capacity = n
		}
	}
}

// WithMetrics wires hit/miss/eviction counters into an obs registry
// (`registry_hit`, `registry_miss`, `registry_evict`).
func WithMetrics(m *obs.Registry) Option {
	return func(r *Registry) { r.metrics = m }
}

// WithFaultHook installs a fault-injection seam consulted before every
// registry operation; fault.Hook adapts a fault.Injector to it. A failed
// lookup reads as a cache miss, a failed store drops the entry, and a
// failed Register returns the error.
func WithFaultHook(h func(op, key string) error) Option {
	return func(r *Registry) { r.hook = h }
}

// Registry is the sharded site-state layer. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Registry struct {
	nshards  int
	capacity int
	shards   []shard
	metrics  *obs.Registry
	hook     func(op, key string) error

	hits, misses, evictions atomic.Int64
	// Exported counters are resolved once at construction so the hot
	// lookup path never takes the metrics registry's name-lookup lock.
	hitCtr, missCtr, evictCtr *obs.Counter
}

// shard is one lock domain: a slice of the site table plus the LRU-bounded
// survey/description caches. The mutex is a leaf lock — nothing blocking
// (surveys, probes, store I/O) may run while it is held.
//
// walks holds survey-shard walk records (not to be confused with the
// registry's own lock shards): one entry per (site, discovery root),
// colocated in the site's lock domain so Invalidate clears them together
// with the site's survey.
type shard struct {
	mu      sync.RWMutex
	sites   map[string]*siteEntry
	surveys map[string]*list.Element
	descs   map[descKey]*list.Element
	walks   map[walkKey]*list.Element
	lru     list.List
}

// siteEntry is one registered site and its serialization lock. The lock
// outlives re-registration so callers holding it stay correct across a
// site-object refresh.
type siteEntry struct {
	site *sitemodel.Site
	lock *sync.Mutex
}

// surveyEntry caches one environment survey under the fingerprint and site
// object it was computed for. The site pointer comparison keeps two
// distinct Site objects sharing a name from ever sharing an entry.
type surveyEntry struct {
	name        string
	site        *sitemodel.Site
	fingerprint uint64
	value       any
}

// walkKey identifies one survey-shard walk record: site name plus the
// discovery root that was walked.
type walkKey struct{ name, root string }

// walkEntry caches one shard walk under the tree stamp and site object it
// was computed for; a stamp or site-pointer mismatch is a miss.
type walkEntry struct {
	key   walkKey
	site  *sitemodel.Site
	stamp uint64
	value any
}

// descKey identifies a binary description: content hash plus the name it
// was described under (the name feeds stage-dir derivation).
type descKey struct{ hash, name string }

// descEntry caches one binary description.
type descEntry struct {
	key   descKey
	value any
}

// New returns a registry with DefaultShards shards of DefaultShardCapacity
// entries unless configured otherwise.
func New(opts ...Option) *Registry {
	r := &Registry{nshards: DefaultShards, capacity: DefaultShardCapacity}
	for _, opt := range opts {
		opt(r)
	}
	r.shards = make([]shard, r.nshards)
	for i := range r.shards {
		s := &r.shards[i]
		s.sites = map[string]*siteEntry{}
		s.surveys = map[string]*list.Element{}
		s.descs = map[descKey]*list.Element{}
		s.walks = map[walkKey]*list.Element{}
	}
	if r.metrics != nil {
		r.hitCtr = r.metrics.Counter("registry_hit")
		r.missCtr = r.metrics.Counter("registry_miss")
		r.evictCtr = r.metrics.Counter("registry_evict")
	}
	return r
}

func (r *Registry) shardFor(key string) *shard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return &r.shards[h.Sum64()%uint64(len(r.shards))]
}

// fail consults the fault hook for one operation.
func (r *Registry) fail(op, key string) error {
	if r.hook == nil {
		return nil
	}
	return r.hook(op, key)
}

func (r *Registry) count(c *atomic.Int64, ctr *obs.Counter) {
	c.Add(1)
	if ctr != nil {
		ctr.Add(1)
	}
}

// Register adds or refreshes a site in the registry's site table. It is
// idempotent; re-registering a name updates the site pointer but keeps the
// existing per-site lock.
func (r *Registry) Register(site *sitemodel.Site) error {
	if site == nil {
		return fmt.Errorf("registry: cannot register a nil site")
	}
	if err := r.fail("register", site.Name); err != nil {
		return fmt.Errorf("registry: register %s: %w", site.Name, err)
	}
	s := r.shardFor(site.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.sites[site.Name]; ok {
		ent.site = site
		return nil
	}
	s.sites[site.Name] = &siteEntry{site: site, lock: &sync.Mutex{}}
	return nil
}

// Site returns the registered site for a name.
func (r *Registry) Site(name string) (*sitemodel.Site, bool) {
	s := r.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent, ok := s.sites[name]
	if !ok || ent.site == nil {
		return nil, false
	}
	return ent.site, true
}

// Sites returns the sorted names of every registered site.
func (r *Registry) Sites() []string {
	var names []string
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for name, ent := range s.sites {
			if ent.site != nil {
				names = append(names, name)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// SiteLock returns the serialization lock for a site name, creating a
// table entry on first use. Everything that mutates a site's filesystem
// or environment must run under it when the registry is shared.
func (r *Registry) SiteLock(name string) *sync.Mutex {
	s := r.shardFor(name)
	s.mu.RLock()
	ent, ok := s.sites[name]
	s.mu.RUnlock()
	if ok {
		return ent.lock
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok = s.sites[name]; !ok {
		ent = &siteEntry{lock: &sync.Mutex{}}
		s.sites[name] = ent
	}
	return ent.lock
}

// LookupSurvey returns the cached survey for a site when the entry was
// computed for the same site object under the same fingerprint; any
// mismatch — mutation, invalidation, eviction, or a different Site object
// sharing the name — is a miss.
func (r *Registry) LookupSurvey(site *sitemodel.Site, fingerprint uint64) (any, bool) {
	if site == nil || r.fail("lookup", site.Name) != nil {
		r.count(&r.misses, r.missCtr)
		return nil, false
	}
	s := r.shardFor(site.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.surveys[site.Name]
	if ok {
		ent := el.Value.(*surveyEntry)
		if ent.site == site && ent.fingerprint == fingerprint {
			s.lru.MoveToFront(el)
			r.count(&r.hits, r.hitCtr)
			return ent.value, true
		}
	}
	r.count(&r.misses, r.missCtr)
	return nil, false
}

// StoreSurvey caches a survey result for a site object under its
// fingerprint, evicting the shard's least recently used entry when full.
func (r *Registry) StoreSurvey(site *sitemodel.Site, fingerprint uint64, value any) {
	if site == nil || r.fail("store", site.Name) != nil {
		return
	}
	s := r.shardFor(site.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.surveys[site.Name]; ok {
		ent := el.Value.(*surveyEntry)
		ent.site, ent.fingerprint, ent.value = site, fingerprint, value
		s.lru.MoveToFront(el)
		return
	}
	r.evictLocked(s)
	ent := &surveyEntry{name: site.Name, site: site, fingerprint: fingerprint, value: value}
	s.surveys[site.Name] = s.lru.PushFront(ent)
}

// LookupShard returns the cached shard-walk record for a site and
// discovery root when the entry was computed for the same site object
// under the same tree stamp; any mismatch — a mutation under the root,
// eviction, or a different Site object sharing the name — is a miss.
func (r *Registry) LookupShard(site *sitemodel.Site, root string, stamp uint64) (any, bool) {
	if site == nil || r.fail("lookup", site.Name) != nil {
		r.count(&r.misses, r.missCtr)
		return nil, false
	}
	key := walkKey{name: site.Name, root: root}
	s := r.shardFor(site.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.walks[key]; ok {
		ent := el.Value.(*walkEntry)
		if ent.site == site && ent.stamp == stamp {
			s.lru.MoveToFront(el)
			r.count(&r.hits, r.hitCtr)
			return ent.value, true
		}
	}
	r.count(&r.misses, r.missCtr)
	return nil, false
}

// StoreShard caches a shard-walk record for a site object under the
// root's tree stamp, evicting the shard's least recently used entry when
// full.
func (r *Registry) StoreShard(site *sitemodel.Site, root string, stamp uint64, value any) {
	if site == nil || r.fail("store", site.Name) != nil {
		return
	}
	key := walkKey{name: site.Name, root: root}
	s := r.shardFor(site.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.walks[key]; ok {
		ent := el.Value.(*walkEntry)
		ent.site, ent.stamp, ent.value = site, stamp, value
		s.lru.MoveToFront(el)
		return
	}
	r.evictLocked(s)
	s.walks[key] = s.lru.PushFront(&walkEntry{key: key, site: site, stamp: stamp, value: value})
}

// LookupDescription returns the cached binary description for a content
// hash and name.
func (r *Registry) LookupDescription(hash, name string) (any, bool) {
	key := descKey{hash: hash, name: name}
	if r.fail("lookup", name) != nil {
		r.count(&r.misses, r.missCtr)
		return nil, false
	}
	s := r.shardFor(hash + "\x00" + name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.descs[key]; ok {
		s.lru.MoveToFront(el)
		r.count(&r.hits, r.hitCtr)
		return el.Value.(*descEntry).value, true
	}
	r.count(&r.misses, r.missCtr)
	return nil, false
}

// StoreDescription caches a binary description, evicting the shard's
// least recently used entry when full.
func (r *Registry) StoreDescription(hash, name string, value any) {
	key := descKey{hash: hash, name: name}
	if r.fail("store", name) != nil {
		return
	}
	s := r.shardFor(hash + "\x00" + name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.descs[key]; ok {
		el.Value.(*descEntry).value = value
		s.lru.MoveToFront(el)
		return
	}
	r.evictLocked(s)
	s.descs[key] = s.lru.PushFront(&descEntry{key: key, value: value})
}

// evictLocked makes room for one insertion, dropping the least recently
// used entry when the shard is at capacity. Caller holds s.mu.
func (r *Registry) evictLocked(s *shard) {
	for s.lru.Len() >= r.capacity {
		el := s.lru.Back()
		if el == nil {
			return
		}
		s.lru.Remove(el)
		switch ent := el.Value.(type) {
		case *surveyEntry:
			delete(s.surveys, ent.name)
		case *descEntry:
			delete(s.descs, ent.key)
		case *walkEntry:
			delete(s.walks, ent.key)
		}
		r.count(&r.evictions, r.evictCtr)
	}
}

// Invalidate drops a site's cached survey and shard-walk records. The
// site table entry and its lock survive; normal mutations are caught by
// fingerprint and tree stamp, so this exists for callers that manage site
// state outside the site's filesystem and environment.
func (r *Registry) Invalidate(name string) {
	if r.fail("invalidate", name) != nil {
		return
	}
	s := r.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.surveys[name]; ok {
		s.lru.Remove(el)
		delete(s.surveys, name)
	}
	for key, el := range s.walks {
		if key.name == name {
			s.lru.Remove(el)
			delete(s.walks, key)
		}
	}
}

// Stats is a point-in-time summary of registry occupancy and traffic.
type Stats struct {
	Sites        int
	Surveys      int
	Descriptions int
	// ShardWalks counts cached survey-shard walk records.
	ShardWalks int
	Hits       int64
	Misses     int64
	Evictions  int64
}

// Stats reports current occupancy plus lifetime hit/miss/eviction counts.
func (r *Registry) Stats() Stats {
	st := Stats{
		Hits:      r.hits.Load(),
		Misses:    r.misses.Load(),
		Evictions: r.evictions.Load(),
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		st.Sites += len(s.sites)
		st.Surveys += len(s.surveys)
		st.Descriptions += len(s.descs)
		st.ShardWalks += len(s.walks)
		s.mu.RUnlock()
	}
	return st
}
