package vfs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadFile(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/etc/redhat-release", []byte("CentOS release 5.6 (Final)\n")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/etc/redhat-release")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "CentOS release 5.6 (Final)\n" {
		t.Errorf("content = %q", data)
	}
	// Mutating the returned slice must not alter the stored file.
	data[0] = 'X'
	again, _ := fs.ReadFile("/etc/redhat-release")
	if again[0] != 'C' {
		t.Error("ReadFile returned aliased storage")
	}
}

func TestWriteFileCreatesParents(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/opt/openmpi-1.4.3-intel/lib/libmpi.so.0", "elf"); err != nil {
		t.Fatal(err)
	}
	if !fs.IsDir("/opt/openmpi-1.4.3-intel/lib") {
		t.Error("parent directories not created")
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile("/nope")
	if !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	var pe *PathError
	if !errors.As(err, &pe) || pe.Path != "/nope" {
		t.Errorf("expected PathError for /nope, got %v", err)
	}
}

func TestMkdir(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/usr"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/usr"); !errors.Is(err, ErrExist) {
		t.Errorf("second mkdir err = %v, want ErrExist", err)
	}
	if err := fs.Mkdir("/a/b"); !errors.Is(err, ErrNotExist) {
		t.Errorf("mkdir with missing parent err = %v", err)
	}
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if !fs.IsDir("/a/b/c") {
		t.Error("MkdirAll did not create the full chain")
	}
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Errorf("MkdirAll should be idempotent: %v", err)
	}
}

func TestMkdirAllThroughFile(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/x", "data"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/x/y"); !errors.Is(err, ErrNotDir) {
		t.Errorf("err = %v, want ErrNotDir", err)
	}
}

func TestOverwriteDirWithFile(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/lib64"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteString("/lib64", "oops"); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v, want ErrIsDir", err)
	}
}

func TestSymlinkResolution(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/lib64/libmpich.so.1.2", "real"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("libmpich.so.1.2", "/lib64/libmpich.so.1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/lib64/libmpich.so.1", "/lib64/libmpich.so"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/lib64/libmpich.so")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "real" {
		t.Errorf("chained symlink read = %q", data)
	}
	rp, err := fs.ResolvePath("/lib64/libmpich.so")
	if err != nil {
		t.Fatal(err)
	}
	if rp != "/lib64/libmpich.so.1.2" {
		t.Errorf("ResolvePath = %q", rp)
	}
	li, err := fs.Lstat("/lib64/libmpich.so.1")
	if err != nil {
		t.Fatal(err)
	}
	if li.Kind != KindSymlink || li.Target != "libmpich.so.1.2" {
		t.Errorf("Lstat = %+v", li)
	}
	si, err := fs.Stat("/lib64/libmpich.so.1")
	if err != nil {
		t.Fatal(err)
	}
	if si.Kind != KindFile || si.Size != 4 {
		t.Errorf("Stat through symlink = %+v", si)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := New()
	if err := fs.Symlink("/b", "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/a"); !errors.Is(err, ErrLinkLoop) {
		t.Errorf("err = %v, want ErrLinkLoop", err)
	}
}

func TestSymlinkIntoDirectory(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/real/lib/libx.so.1", "x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/real", "/alias"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/alias/lib/libx.so.1")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x" {
		t.Errorf("read through dir symlink = %q", data)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	for _, f := range []string{"/d/z", "/d/a", "/d/m"} {
		if err := fs.WriteString(f, f); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, fi := range infos {
		names = append(names, fi.Name)
	}
	if strings.Join(names, ",") != "a,m,z" {
		t.Errorf("ReadDir order = %v", names)
	}
	if _, err := fs.ReadDir("/d/a"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/d/f", "x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err == nil {
		t.Error("removing non-empty directory should fail")
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/f") {
		t.Error("file still exists after Remove")
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestWalkAndSkipDir(t *testing.T) {
	fs := New()
	files := []string{"/a/1", "/a/2", "/b/sub/3", "/c"}
	for _, f := range files {
		if err := fs.WriteString(f, "x"); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	err := fs.Walk("/", func(p string, info FileInfo) error {
		if p == "/b" {
			return SkipDir
		}
		if info.Kind == KindFile {
			visited = append(visited, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(visited, ",") != "/a/1,/a/2,/c" {
		t.Errorf("visited = %v", visited)
	}
}

func TestGlob(t *testing.T) {
	fs := New()
	files := []string{
		"/usr/lib64/libmpi.so.0.0.2",
		"/usr/lib64/libm.so.6",
		"/opt/mvapich2-1.7a/lib/libmpich.so.1.2",
		"/opt/mvapich2-1.7a/bin/mpicc",
	}
	for _, f := range files {
		if err := fs.WriteString(f, "x"); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fs.Glob("/", "libmpi*")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/opt/mvapich2-1.7a/lib/libmpich.so.1.2", "/usr/lib64/libmpi.so.0.0.2"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Glob = %v, want %v", got, want)
	}
	if _, err := fs.Glob("/", "["); err == nil {
		t.Error("bad pattern should error")
	}
	none, err := fs.Glob("/opt", "*.conf")
	if err != nil || len(none) != 0 {
		t.Errorf("expected empty result, got %v err %v", none, err)
	}
}

func TestAttrs(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/lib/libfoo.so.1", "elf"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetAttr("/lib/libfoo.so.1", "abi-epoch", "3"); err != nil {
		t.Fatal(err)
	}
	v, ok := fs.Attr("/lib/libfoo.so.1", "abi-epoch")
	if !ok || v != "3" {
		t.Errorf("Attr = %q, %v", v, ok)
	}
	if _, ok := fs.Attr("/lib/libfoo.so.1", "missing"); ok {
		t.Error("missing attr should not be found")
	}
	if err := fs.SetAttr("/nope", "k", "v"); err == nil {
		t.Error("SetAttr on missing file should fail")
	}
}

func TestCopyFileTo(t *testing.T) {
	src, dst := New(), New()
	if err := src.WriteString("/lib/libg2c.so.0", "fortran"); err != nil {
		t.Fatal(err)
	}
	if err := src.SetAttr("/lib/libg2c.so.0", "abi-epoch", "7"); err != nil {
		t.Fatal(err)
	}
	if err := src.CopyFileTo(dst, "/lib/libg2c.so.0", "/feam/libs/libg2c.so.0"); err != nil {
		t.Fatal(err)
	}
	data, err := dst.ReadFile("/feam/libs/libg2c.so.0")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "fortran" {
		t.Errorf("copied content = %q", data)
	}
	if v, ok := dst.Attr("/feam/libs/libg2c.so.0", "abi-epoch"); !ok || v != "7" {
		t.Error("extended attributes did not travel with the copy")
	}
}

func TestTreeSize(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a/x", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/y", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	n, err := fs.TreeSize("/a")
	if err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Errorf("TreeSize = %d, want 150", n)
	}
}

func TestRelativePathsAreAbsolutized(t *testing.T) {
	fs := New()
	if err := fs.WriteString("tmp/x", "1"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/tmp/x") {
		t.Error("relative path was not rooted at /")
	}
}

func TestPathCleaning(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/a//b/../b/./c", "v"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v" {
		t.Errorf("content = %q", data)
	}
}

func TestWriteReadQuick(t *testing.T) {
	fs := New()
	// Property: any written content is read back verbatim under a sanitized
	// path derived from the seed byte.
	f := func(seed uint8, content []byte) bool {
		p := "/q/" + strings.Repeat("d", int(seed%5)+1) + "/f"
		if err := fs.WriteFile(p, content); err != nil {
			return false
		}
		got, err := fs.ReadFile(p)
		if err != nil || len(got) != len(content) {
			return false
		}
		for i := range got {
			if got[i] != content[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileKindString(t *testing.T) {
	if KindDir.String() != "dir" || KindFile.String() != "file" || KindSymlink.String() != "symlink" {
		t.Error("kind names")
	}
	if FileKind(9).String() != "FileKind(9)" {
		t.Errorf("unknown kind = %q", FileKind(9).String())
	}
}

func TestPathErrorMessage(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile("/missing")
	if err == nil || !strings.Contains(err.Error(), "read /missing:") {
		t.Errorf("err = %v", err)
	}
}

func TestAttrsMap(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/f", "x"); err != nil {
		t.Fatal(err)
	}
	if fs.Attrs("/f") != nil {
		t.Error("attrs on plain file should be nil")
	}
	if fs.Attrs("/missing") != nil {
		t.Error("attrs on missing file should be nil")
	}
	if err := fs.SetAttr("/f", "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetAttr("/f", "b", "2"); err != nil {
		t.Fatal(err)
	}
	m := fs.Attrs("/f")
	if len(m) != 2 || m["a"] != "1" || m["b"] != "2" {
		t.Errorf("Attrs = %v", m)
	}
	// Mutating the returned map must not alter stored attributes.
	m["a"] = "tampered"
	if v, _ := fs.Attr("/f", "a"); v != "1" {
		t.Error("Attrs aliases internal storage")
	}
}

func TestCopyFile(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/src/lib.so", "payload"); err != nil {
		t.Fatal(err)
	}
	if err := fs.CopyFile("/src/lib.so", "/dst/lib.so"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/dst/lib.so")
	if err != nil || string(data) != "payload" {
		t.Errorf("copy = %q, %v", data, err)
	}
	if err := fs.CopyFile("/missing", "/x"); err == nil {
		t.Error("copying a missing file should fail")
	}
}

func TestCopyFileToErrors(t *testing.T) {
	src, dst := New(), New()
	if err := src.CopyFileTo(dst, "/missing", "/x"); err == nil {
		t.Error("missing source accepted")
	}
	if err := src.WriteString("/f", "x"); err != nil {
		t.Fatal(err)
	}
	if err := dst.MkdirAll("/target"); err != nil {
		t.Fatal(err)
	}
	if err := src.CopyFileTo(dst, "/f", "/target"); err == nil {
		t.Error("copy onto a directory accepted")
	}
}

func TestSymlinkErrors(t *testing.T) {
	fs := New()
	if err := fs.WriteString("/exists", "x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/target", "/exists"); err == nil {
		t.Error("symlink over an existing file accepted")
	}
}

func TestMkdirAllThroughDirSymlink(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/real"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/real", "/alias"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/alias/sub/deep"); err != nil {
		t.Fatal(err)
	}
	if !fs.IsDir("/real/sub/deep") {
		t.Error("MkdirAll did not traverse the directory symlink")
	}
	// A dangling symlink in the path fails.
	if err := fs.Symlink("/nowhere", "/dangling"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/dangling/sub"); err == nil {
		t.Error("MkdirAll through a dangling symlink accepted")
	}
}

func TestRenameMovesSubtree(t *testing.T) {
	fs := New()
	mustWrite := func(p, s string) {
		t.Helper()
		if err := fs.WriteFile(p, []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("/stage/.tmp/liba.so.1", "A")
	mustWrite("/stage/.tmp/libb.so.2", "B")
	if err := fs.SetAttr("/stage/.tmp/liba.so.1", "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/stage/.tmp", "/stage/final"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/stage/.tmp") {
		t.Error("source still exists after rename")
	}
	data, err := fs.ReadFile("/stage/final/liba.so.1")
	if err != nil || string(data) != "A" {
		t.Errorf("moved file = %q, %v", data, err)
	}
	if v, ok := fs.Attr("/stage/final/liba.so.1", "k"); !ok || v != "v" {
		t.Error("attributes lost in rename")
	}
	// Destination parents are created as needed.
	if err := fs.Rename("/stage/final", "/new/deep/home"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/new/deep/home/libb.so.2") {
		t.Error("deep rename lost the subtree")
	}
}

func TestRenameRefusesBadTargets(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b/f", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// Existing destination.
	if err := fs.Rename("/a", "/b"); !errors.Is(err, ErrExist) {
		t.Errorf("rename onto existing = %v", err)
	}
	// Missing source.
	if err := fs.Rename("/nope", "/c"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename of missing = %v", err)
	}
	// Renaming a directory into its own subtree.
	if err := fs.Rename("/a", "/a/sub"); err == nil {
		t.Error("rename into own subtree accepted")
	}
	if !fs.Exists("/a/f") || !fs.Exists("/b/f") {
		t.Error("failed renames mutated state")
	}
}

func TestRemoveAll(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/tree/a/b/c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	gen := fs.Generation()
	if err := fs.RemoveAll("/tree"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/tree") {
		t.Error("subtree survives RemoveAll")
	}
	if fs.Generation() == gen {
		t.Error("RemoveAll did not bump the generation")
	}
	// Missing paths are fine, and do not bump the generation.
	gen = fs.Generation()
	if err := fs.RemoveAll("/tree"); err != nil {
		t.Errorf("RemoveAll of missing path = %v", err)
	}
	if err := fs.RemoveAll("/never/was/here"); err != nil {
		t.Errorf("RemoveAll of missing parents = %v", err)
	}
	if fs.Generation() != gen {
		t.Error("no-op RemoveAll bumped the generation")
	}
}

func TestOpHookInjectsFailures(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/ok", []byte("x")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected")
	var ops []string
	fs.SetOpHook(func(op, path string) error {
		ops = append(ops, op)
		if op == "write" {
			return boom
		}
		return nil
	})
	if err := fs.WriteFile("/fails", nil); !errors.Is(err, boom) {
		t.Errorf("hooked write = %v", err)
	}
	if fs.Exists("/fails") {
		t.Error("failed write left state behind")
	}
	if _, err := fs.ReadFile("/ok"); err != nil {
		t.Errorf("hooked read should pass: %v", err)
	}
	fs.SetOpHook(nil)
	if err := fs.WriteFile("/fails", nil); err != nil {
		t.Errorf("cleared hook still failing: %v", err)
	}
	want := map[string]bool{"write": true, "read": true}
	for _, op := range ops {
		delete(want, op)
	}
	if len(want) > 0 {
		t.Errorf("hook did not observe ops %v (saw %v)", want, ops)
	}
}

// TestTreeStamp pins the subtree-fingerprint contract sharded discovery
// depends on: stable across reads, changed by any mutation under the root
// (including same-size content rewrites and attribute changes), and
// untouched by mutations in sibling subtrees.
func TestTreeStamp(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/lib64/libc.so.6", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/opt/stack/lib/libmpi.so.0", []byte("mpi")); err != nil {
		t.Fatal(err)
	}
	lib1, err := fs.TreeStamp("/lib64")
	if err != nil {
		t.Fatal(err)
	}
	opt1, err := fs.TreeStamp("/opt/stack")
	if err != nil {
		t.Fatal(err)
	}
	if lib2, _ := fs.TreeStamp("/lib64"); lib2 != lib1 {
		t.Fatalf("stamp unstable across reads: %#x vs %#x", lib2, lib1)
	}

	// Same-size content rewrite must change the stamp.
	if err := fs.WriteFile("/lib64/libc.so.6", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	lib2, err := fs.TreeStamp("/lib64")
	if err != nil {
		t.Fatal(err)
	}
	if lib2 == lib1 {
		t.Fatal("same-size rewrite did not change the stamp")
	}
	// ... while the sibling subtree keeps its stamp.
	if opt2, _ := fs.TreeStamp("/opt/stack"); opt2 != opt1 {
		t.Fatalf("sibling subtree stamp changed: %#x vs %#x", opt2, opt1)
	}

	// Attribute changes are mutations too.
	if err := fs.SetAttr("/lib64/libc.so.6", "exec.output", "banner"); err != nil {
		t.Fatal(err)
	}
	lib3, _ := fs.TreeStamp("/lib64")
	if lib3 == lib2 {
		t.Fatal("SetAttr did not change the stamp")
	}

	// Creations, removals, and symlinks under the root all invalidate.
	if err := fs.Symlink("libc.so.6", "/lib64/libc.so"); err != nil {
		t.Fatal(err)
	}
	lib4, _ := fs.TreeStamp("/lib64")
	if lib4 == lib3 {
		t.Fatal("symlink creation did not change the stamp")
	}
	if err := fs.Remove("/lib64/libc.so"); err != nil {
		t.Fatal(err)
	}
	lib5, _ := fs.TreeStamp("/lib64")
	if lib5 == lib4 {
		t.Fatal("removal did not change the stamp")
	}

	// A rename into the subtree invalidates it.
	if err := fs.WriteFile("/tmp/new.so", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/tmp/new.so", "/opt/stack/lib/new.so"); err != nil {
		t.Fatal(err)
	}
	if opt3, _ := fs.TreeStamp("/opt/stack"); opt3 == opt1 {
		t.Fatal("rename into subtree did not change the stamp")
	}

	// Missing roots error; fault hooks apply.
	if _, err := fs.TreeStamp("/absent"); err == nil {
		t.Fatal("TreeStamp on a missing root should fail")
	}
	fs.SetOpHook(func(op, p string) error {
		if op == "walk" {
			return fmt.Errorf("injected")
		}
		return nil
	})
	if _, err := fs.TreeStamp("/lib64"); err == nil {
		t.Fatal("TreeStamp should consult the fault hook")
	}
}
