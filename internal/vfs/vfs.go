// Package vfs implements the in-memory POSIX-style filesystem that backs
// every simulated computing site. FEAM's discovery components exercise the
// same operations they would on a real system — reading files under /proc
// and /etc, walking library directories, following symlinks, glob-searching
// for shared objects — so the filesystem supports directories, regular files
// with extended attributes, symbolic links, and path-based lookup with link
// resolution.
//
// Extended attributes carry simulation-side metadata (for example a shared
// library's hidden ABI epoch) that is invisible to FEAM's prediction model
// but consumed by the ground-truth execution simulator.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// FileKind distinguishes node types.
type FileKind int

const (
	KindDir FileKind = iota
	KindFile
	KindSymlink
)

func (k FileKind) String() string {
	switch k {
	case KindDir:
		return "dir"
	case KindFile:
		return "file"
	case KindSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileKind(%d)", int(k))
	}
}

// node is a single filesystem entry.
type node struct {
	kind     FileKind
	children map[string]*node // KindDir
	data     []byte           // KindFile
	target   string           // KindSymlink
	mode     uint32           // permission bits; 0755 dirs, 0644 files by default
	attrs    map[string]string
}

// FS is an in-memory filesystem rooted at "/". The zero value is not usable;
// call New.
type FS struct {
	root *node
	// gen counts mutations (writes, removes, attribute and link changes).
	// Callers use it as a cheap change detector: equal generations mean no
	// mutation happened in between. See Generation.
	gen uint64
	// opHook, when set, runs before every public read or mutation with the
	// operation name and target path; a non-nil return fails the operation
	// with that error. It is the fault-injection seam: simulated sites fail
	// the way real parallel filesystems do, without special-casing any
	// caller. See SetOpHook.
	opHook func(op, path string) error
}

// New returns an empty filesystem containing only the root directory.
func New() *FS {
	return &FS{root: &node{kind: KindDir, children: map[string]*node{}, mode: 0o755}}
}

// Generation returns the filesystem's mutation counter. It increases on
// every state change (file writes, directory creation, symlinks, removals,
// attribute changes), so two equal readings bracket a mutation-free window.
// Discovery caches key their fingerprints on it.
func (fs *FS) Generation() uint64 { return fs.gen }

// SetOpHook installs (or, with nil, clears) the fault-injection hook. The
// hook is consulted at the top of every public read and mutation; returning
// an error fails the operation without touching state. Hooks must be safe
// for concurrent use when the filesystem is shared across goroutines.
func (fs *FS) SetOpHook(h func(op, path string) error) { fs.opHook = h }

// opErr consults the hook for one operation, wrapping any injected error
// in the operation's PathError so callers see ordinary filesystem failures.
func (fs *FS) opErr(op, path string) error {
	if fs.opHook == nil {
		return nil
	}
	if err := fs.opHook(op, path); err != nil {
		return &PathError{Op: op, Path: path, Err: err}
	}
	return nil
}

// PathError describes a failed filesystem operation.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }
func (e *PathError) Unwrap() error { return e.Err }

// Sentinel errors.
var (
	ErrNotExist    = fmt.Errorf("no such file or directory")
	ErrExist       = fmt.Errorf("file exists")
	ErrNotDir      = fmt.Errorf("not a directory")
	ErrIsDir       = fmt.Errorf("is a directory")
	ErrLinkLoop    = fmt.Errorf("too many levels of symbolic links")
	ErrInvalidPath = fmt.Errorf("invalid path")
)

const maxLinkDepth = 40

// clean canonicalizes a path to an absolute, slash-separated form.
func clean(p string) (string, error) {
	if p == "" {
		return "", ErrInvalidPath
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p), nil
}

// splitPath returns the path components of a cleaned absolute path.
func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// lookup walks to the node for p. When followLast is true, a symlink in the
// final position is resolved; intermediate symlinks are always resolved.
func (fs *FS) lookup(p string, followLast bool) (*node, string, error) {
	cp, err := clean(p)
	if err != nil {
		return nil, "", err
	}
	return fs.lookupFrom(fs.root, "/", splitPath(cp), followLast, 0)
}

func (fs *FS) lookupFrom(cur *node, curPath string, parts []string, followLast bool, depth int) (*node, string, error) {
	if depth > maxLinkDepth {
		return nil, "", ErrLinkLoop
	}
	for i, name := range parts {
		if cur.kind != KindDir {
			return nil, "", ErrNotDir
		}
		child, ok := cur.children[name]
		if !ok {
			return nil, "", ErrNotExist
		}
		childPath := path.Join(curPath, name)
		last := i == len(parts)-1
		if child.kind == KindSymlink && (!last || followLast) {
			targetPath := child.target
			if !strings.HasPrefix(targetPath, "/") {
				targetPath = path.Join(curPath, targetPath)
			}
			resolved, rp, err := fs.lookupFrom(fs.root, "/", splitPath(path.Clean(targetPath)), true, depth+1)
			if err != nil {
				return nil, "", err
			}
			if last {
				return resolved, rp, nil
			}
			cur, curPath = resolved, rp
			continue
		}
		cur, curPath = child, childPath
	}
	return cur, curPath, nil
}

// parentOf returns the directory node that should contain the final element
// of p, along with that element's name.
func (fs *FS) parentOf(p string) (*node, string, error) {
	cp, err := clean(p)
	if err != nil {
		return nil, "", err
	}
	if cp == "/" {
		return nil, "", &PathError{Op: "create", Path: p, Err: ErrExist}
	}
	dir, base := path.Split(cp)
	parent, _, err := fs.lookup(dir, true)
	if err != nil {
		return nil, "", &PathError{Op: "create", Path: p, Err: err}
	}
	if parent.kind != KindDir {
		return nil, "", &PathError{Op: "create", Path: p, Err: ErrNotDir}
	}
	return parent, base, nil
}

// Mkdir creates a single directory. The parent must exist.
func (fs *FS) Mkdir(p string) error {
	if err := fs.opErr("mkdir", p); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return &PathError{Op: "mkdir", Path: p, Err: ErrExist}
	}
	parent.children[base] = &node{kind: KindDir, children: map[string]*node{}, mode: 0o755}
	fs.gen++
	return nil
}

// MkdirAll creates a directory and any missing parents. Existing directories
// are left untouched.
func (fs *FS) MkdirAll(p string) error {
	if err := fs.opErr("mkdir", p); err != nil {
		return err
	}
	return fs.mkdirAll(p)
}

// mkdirAll is MkdirAll without the fault hook, for internal use by
// operations that already consulted the hook under their own name.
func (fs *FS) mkdirAll(p string) error {
	cp, err := clean(p)
	if err != nil {
		return &PathError{Op: "mkdir", Path: p, Err: err}
	}
	cur := fs.root
	for _, name := range splitPath(cp) {
		child, ok := cur.children[name]
		if !ok {
			child = &node{kind: KindDir, children: map[string]*node{}, mode: 0o755}
			cur.children[name] = child
			fs.gen++
		} else if child.kind == KindSymlink {
			resolved, _, err := fs.lookup(path.Join("/", name), true)
			if err != nil {
				return &PathError{Op: "mkdir", Path: p, Err: err}
			}
			child = resolved
		}
		if child.kind != KindDir {
			return &PathError{Op: "mkdir", Path: p, Err: ErrNotDir}
		}
		cur = child
	}
	return nil
}

// WriteFile creates or replaces a regular file, creating parents as needed.
func (fs *FS) WriteFile(p string, data []byte) error {
	if err := fs.opErr("write", p); err != nil {
		return err
	}
	cp, err := clean(p)
	if err != nil {
		return &PathError{Op: "write", Path: p, Err: err}
	}
	if err := fs.mkdirAll(path.Dir(cp)); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(cp)
	if err != nil {
		return err
	}
	if existing, ok := parent.children[base]; ok && existing.kind == KindDir {
		return &PathError{Op: "write", Path: p, Err: ErrIsDir}
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	parent.children[base] = &node{kind: KindFile, data: buf, mode: 0o644}
	fs.gen++
	return nil
}

// WriteString is WriteFile for string content.
func (fs *FS) WriteString(p, content string) error { return fs.WriteFile(p, []byte(content)) }

// ReadFileShared returns the file's contents WITHOUT copying. The returned
// slice aliases the stored data: callers must treat it as read-only. It
// exists for hot read-mostly paths (the dynamic-loader simulation parses
// multi-megabyte libraries thousands of times); everything else should use
// ReadFile.
func (fs *FS) ReadFileShared(p string) ([]byte, error) {
	if err := fs.opErr("read", p); err != nil {
		return nil, err
	}
	n, _, err := fs.lookup(p, true)
	if err != nil {
		return nil, &PathError{Op: "read", Path: p, Err: err}
	}
	if n.kind != KindFile {
		return nil, &PathError{Op: "read", Path: p, Err: ErrIsDir}
	}
	return n.data, nil
}

// ReadFile returns the contents of the file at p, following symlinks.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	if err := fs.opErr("read", p); err != nil {
		return nil, err
	}
	n, _, err := fs.lookup(p, true)
	if err != nil {
		return nil, &PathError{Op: "read", Path: p, Err: err}
	}
	if n.kind != KindFile {
		return nil, &PathError{Op: "read", Path: p, Err: ErrIsDir}
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// Symlink creates a symbolic link at linkPath pointing to target. The target
// need not exist.
func (fs *FS) Symlink(target, linkPath string) error {
	if err := fs.opErr("symlink", linkPath); err != nil {
		return err
	}
	if err := fs.mkdirAll(path.Dir(mustClean(linkPath))); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(linkPath)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return &PathError{Op: "symlink", Path: linkPath, Err: ErrExist}
	}
	parent.children[base] = &node{kind: KindSymlink, target: target, mode: 0o777}
	fs.gen++
	return nil
}

func mustClean(p string) string {
	cp, err := clean(p)
	if err != nil {
		return "/"
	}
	return cp
}

// Remove deletes the entry at p (without following a final symlink).
// Directories must be empty.
func (fs *FS) Remove(p string) error {
	if err := fs.opErr("remove", p); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	child, ok := parent.children[base]
	if !ok {
		return &PathError{Op: "remove", Path: p, Err: ErrNotExist}
	}
	if child.kind == KindDir && len(child.children) > 0 {
		return &PathError{Op: "remove", Path: p, Err: fmt.Errorf("directory not empty")}
	}
	delete(parent.children, base)
	fs.gen++
	return nil
}

// RemoveAll deletes the entry at p and, for directories, its whole subtree.
// A missing entry is not an error (matching os.RemoveAll).
func (fs *FS) RemoveAll(p string) error {
	if err := fs.opErr("removeall", p); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(p)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	if _, ok := parent.children[base]; !ok {
		return nil
	}
	delete(parent.children, base)
	fs.gen++
	return nil
}

// Rename atomically moves the entry at oldp (a file, symlink, or whole
// directory subtree) to newp, creating newp's parents as needed. The
// destination must not already exist — the transactional-staging commit
// protocol removes any stale destination first, then renames, so a
// half-written temp directory can never silently merge into live state.
func (fs *FS) Rename(oldp, newp string) error {
	if err := fs.opErr("rename", oldp); err != nil {
		return err
	}
	oparent, obase, err := fs.parentOf(oldp)
	if err != nil {
		return err
	}
	moving, ok := oparent.children[obase]
	if !ok {
		return &PathError{Op: "rename", Path: oldp, Err: ErrNotExist}
	}
	cp, err := clean(newp)
	if err != nil {
		return &PathError{Op: "rename", Path: newp, Err: err}
	}
	if err := fs.mkdirAll(path.Dir(cp)); err != nil {
		return err
	}
	nparent, nbase, err := fs.parentOf(cp)
	if err != nil {
		return err
	}
	if _, exists := nparent.children[nbase]; exists {
		return &PathError{Op: "rename", Path: newp, Err: ErrExist}
	}
	if nparent == moving || subtreeContains(moving, nparent) {
		return &PathError{Op: "rename", Path: newp, Err: ErrInvalidPath}
	}
	delete(oparent.children, obase)
	nparent.children[nbase] = moving
	fs.gen++
	return nil
}

// subtreeContains reports whether needle is a node inside root's subtree.
func subtreeContains(root, needle *node) bool {
	if root.kind != KindDir {
		return false
	}
	for _, child := range root.children {
		if child == needle || subtreeContains(child, needle) {
			return true
		}
	}
	return false
}

// FileInfo describes a filesystem entry.
type FileInfo struct {
	Name string
	Path string
	Kind FileKind
	Size int
	// Target is the link destination for symlinks.
	Target string
}

// Stat returns information about the entry at p, following symlinks.
func (fs *FS) Stat(p string) (FileInfo, error) {
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return FileInfo{}, &PathError{Op: "stat", Path: p, Err: err}
	}
	return infoFor(n, rp), nil
}

// Lstat returns information about the entry at p without following a final
// symlink.
func (fs *FS) Lstat(p string) (FileInfo, error) {
	n, rp, err := fs.lookup(p, false)
	if err != nil {
		return FileInfo{}, &PathError{Op: "lstat", Path: p, Err: err}
	}
	return infoFor(n, rp), nil
}

func infoFor(n *node, p string) FileInfo {
	fi := FileInfo{Name: path.Base(p), Path: p, Kind: n.kind, Target: n.target}
	if n.kind == KindFile {
		fi.Size = len(n.data)
	}
	return fi
}

// Exists reports whether p resolves to an existing entry.
func (fs *FS) Exists(p string) bool {
	_, _, err := fs.lookup(p, true)
	return err == nil
}

// IsDir reports whether p resolves to a directory.
func (fs *FS) IsDir(p string) bool {
	n, _, err := fs.lookup(p, true)
	return err == nil && n.kind == KindDir
}

// ReadDir lists a directory's entries sorted by name.
func (fs *FS) ReadDir(p string) ([]FileInfo, error) {
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return nil, &PathError{Op: "readdir", Path: p, Err: err}
	}
	if n.kind != KindDir {
		return nil, &PathError{Op: "readdir", Path: p, Err: ErrNotDir}
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FileInfo, 0, len(names))
	for _, name := range names {
		out = append(out, infoFor(n.children[name], path.Join(rp, name)))
	}
	return out, nil
}

// ResolvePath returns the canonical path p resolves to after following all
// symlinks (the realpath).
func (fs *FS) ResolvePath(p string) (string, error) {
	_, rp, err := fs.lookup(p, true)
	if err != nil {
		return "", &PathError{Op: "resolve", Path: p, Err: err}
	}
	return rp, nil
}

// SetAttr attaches an extended attribute to the entry at p (following
// symlinks). Attributes carry simulation-side metadata.
func (fs *FS) SetAttr(p, key, value string) error {
	if err := fs.opErr("setattr", p); err != nil {
		return err
	}
	n, _, err := fs.lookup(p, true)
	if err != nil {
		return &PathError{Op: "setattr", Path: p, Err: err}
	}
	if n.attrs == nil {
		n.attrs = map[string]string{}
	}
	n.attrs[key] = value
	fs.gen++
	return nil
}

// Attrs returns a copy of all extended attributes on the entry at p
// (following symlinks); nil when the entry is missing or has none.
func (fs *FS) Attrs(p string) map[string]string {
	n, _, err := fs.lookup(p, true)
	if err != nil || len(n.attrs) == 0 {
		return nil
	}
	out := make(map[string]string, len(n.attrs))
	for k, v := range n.attrs {
		out[k] = v
	}
	return out
}

// Attr reads an extended attribute; ok is false when absent.
func (fs *FS) Attr(p, key string) (value string, ok bool) {
	n, _, err := fs.lookup(p, true)
	if err != nil || n.attrs == nil {
		return "", false
	}
	value, ok = n.attrs[key]
	return value, ok
}

// WalkFunc visits an entry during Walk. Returning SkipDir for a directory
// prunes its subtree.
type WalkFunc func(p string, info FileInfo) error

// SkipDir prunes a directory subtree during Walk.
var SkipDir = fmt.Errorf("skip this directory")

// Walk traverses the tree rooted at p depth-first in sorted order, calling
// fn for every entry (symlinks are reported, not followed).
func (fs *FS) Walk(p string, fn WalkFunc) error {
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return &PathError{Op: "walk", Path: p, Err: err}
	}
	return walk(n, rp, fn)
}

func walk(n *node, p string, fn WalkFunc) error {
	if err := fn(p, infoFor(n, p)); err != nil {
		if err == SkipDir && n.kind == KindDir {
			return nil
		}
		return err
	}
	if n.kind != KindDir {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := walk(n.children[name], path.Join(p, name), fn); err != nil {
			if err == SkipDir {
				continue
			}
			return err
		}
	}
	return nil
}

// Glob returns the paths of all files whose base name matches pattern
// (path.Match syntax) anywhere under root, emulating the `locate`/`find
// -name` searches FEAM performs. Results are sorted.
func (fs *FS) Glob(root, pattern string) ([]string, error) {
	if _, err := path.Match(pattern, ""); err != nil {
		return nil, err
	}
	var out []string
	err := fs.Walk(root, func(p string, info FileInfo) error {
		if info.Kind == KindDir {
			return nil
		}
		if ok, _ := path.Match(pattern, info.Name); ok {
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// CopyFile copies a regular file within the filesystem.
func (fs *FS) CopyFile(src, dst string) error {
	data, err := fs.ReadFile(src)
	if err != nil {
		return err
	}
	return fs.WriteFile(dst, data)
}

// CopyFileTo copies a regular file from this filesystem into another one,
// the vfs equivalent of staging a shared-library copy at a target site.
func (fs *FS) CopyFileTo(other *FS, src, dst string) error {
	data, err := fs.ReadFile(src)
	if err != nil {
		return err
	}
	if err := other.WriteFile(dst, data); err != nil {
		return err
	}
	// Extended attributes travel with the file: the hidden ground-truth
	// metadata of a shared library is a property of its bytes.
	if n, _, err := fs.lookup(src, true); err == nil && n.attrs != nil {
		for k, v := range n.attrs {
			if err := other.SetAttr(dst, k, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// TreeSize returns the total byte size of all regular files under root.
func (fs *FS) TreeSize(root string) (int, error) {
	total := 0
	err := fs.Walk(root, func(p string, info FileInfo) error {
		if info.Kind == KindFile {
			total += info.Size
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}
