// Package vfs implements the in-memory POSIX-style filesystem that backs
// every simulated computing site. FEAM's discovery components exercise the
// same operations they would on a real system — reading files under /proc
// and /etc, walking library directories, following symlinks, glob-searching
// for shared objects — so the filesystem supports directories, regular files
// with extended attributes, symbolic links, and path-based lookup with link
// resolution.
//
// Extended attributes carry simulation-side metadata (for example a shared
// library's hidden ABI epoch) that is invisible to FEAM's prediction model
// but consumed by the ground-truth execution simulator.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// FileKind distinguishes node types.
type FileKind int

const (
	KindDir FileKind = iota
	KindFile
	KindSymlink
)

func (k FileKind) String() string {
	switch k {
	case KindDir:
		return "dir"
	case KindFile:
		return "file"
	case KindSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("FileKind(%d)", int(k))
	}
}

// node is a single filesystem entry.
type node struct {
	kind     FileKind
	children map[string]*node // KindDir
	data     []byte           // KindFile
	target   string           // KindSymlink
	mode     uint32           // permission bits; 0755 dirs, 0644 files by default
	attrs    map[string]string
	// ver is the filesystem generation at which this node was last created
	// or mutated in place (content replacement, attribute change). TreeStamp
	// folds it into subtree fingerprints so a same-size content rewrite is
	// still visible without hashing file data.
	ver uint64
	// stampVal caches the node's subtree stamp; it is valid while stampEpoch
	// equals the filesystem's stamp epoch. Mutations invalidate the cache
	// along the mutated path's ancestor chain (or bump the epoch when the
	// path cannot be resolved), so a re-stamp after a single-file change
	// re-hashes that file and its ancestors while siblings are served from
	// their caches. Both fields are guarded by FS.stampMu.
	stampVal   uint64
	stampEpoch uint64
}

// FS is an in-memory filesystem rooted at "/". The zero value is not usable;
// call New.
type FS struct {
	root *node
	// gen counts mutations (writes, removes, attribute and link changes).
	// Callers use it as a cheap change detector: equal generations mean no
	// mutation happened in between. See Generation.
	gen uint64
	// contentGen counts every mutation except extended-attribute updates.
	// See ContentGeneration.
	contentGen uint64
	// opHook, when set, runs before every public read or mutation with the
	// operation name and target path; a non-nil return fails the operation
	// with that error. It is the fault-injection seam: simulated sites fail
	// the way real parallel filesystems do, without special-casing any
	// caller. See SetOpHook.
	opHook func(op, path string) error
	// stamps memoizes TreeStamp results keyed by canonical subtree root.
	// Entries are invalidated by path containment on every mutation, so a
	// write under /lib64 drops the /lib64 stamp (and any enclosing one)
	// while leaving sibling subtrees' stamps valid. stampMu guards the memo
	// maps and the per-node stamp caches, and is held across a whole stamp
	// computation: concurrent TreeStamp readers are safe (they serialize),
	// but — like the rest of the filesystem — mutations must not race reads.
	stampMu sync.Mutex
	stamps  map[string]uint64
	// stampEpoch versions the per-node stamp caches: a node's cached stamp
	// is valid only while its stampEpoch matches. Bumping the epoch is the
	// wholesale invalidation used when a mutated path cannot be resolved.
	stampEpoch uint64
	// cachesLive records that some stamp or resolution cache has ever been
	// populated, letting mutations on never-stamped filesystems (testbed
	// construction does millions) skip invalidation entirely.
	cachesLive bool
	// resolved caches successful path resolutions for TreeStamp lookups
	// (path as given by the caller -> canonical path plus the resolved
	// node). Any mutation that can change how a path resolves — everything
	// except attribute updates is treated as such — clears it wholesale, so
	// a cached node pointer is always the node the path still resolves to
	// (attribute updates mutate nodes in place, never move them); the cache
	// exists to make repeated stamps of unchanged roots map-lookup cheap,
	// not to survive structural churn.
	resolved map[string]resolvedEntry
}

// resolvedEntry is one resolution-cache record: the canonical path and the
// node it resolved to.
type resolvedEntry struct {
	rp string
	n  *node
}

// New returns an empty filesystem containing only the root directory.
func New() *FS {
	// The stamp epoch starts above zero so a fresh node's zero stampEpoch
	// always reads as an invalid cache.
	return &FS{root: &node{kind: KindDir, children: map[string]*node{}, mode: 0o755}, stampEpoch: 1}
}

// Generation returns the filesystem's mutation counter. It increases on
// every state change (file writes, directory creation, symlinks, removals,
// attribute changes), so two equal readings bracket a mutation-free window.
// Discovery caches key their fingerprints on it.
func (fs *FS) Generation() uint64 { return fs.gen }

// ContentGeneration is Generation minus extended-attribute updates: it
// advances on namespace and file-content mutations but not on SetAttr.
// Caches of derived filesystem facts that never read attributes (directory
// layouts, search-path membership, tool detection) key on it so they
// survive attribute churn like simulated banner updates.
func (fs *FS) ContentGeneration() uint64 { return fs.contentGen }

// mutated records one state change at p: the generation advances and any
// memoized tree stamp whose subtree contains p (or is contained by it) is
// dropped. p should be the path the mutation was addressed to; the parent
// directory is resolved so symlinked prefixes invalidate the canonical
// subtree. When the canonical location cannot be determined the whole memo
// is cleared — correctness over retention. attrOnly marks extended-
// attribute updates, which leave the content generation and the resolution
// cache intact (attributes cannot change how any path resolves).
func (fs *FS) mutated(p string, attrOnly bool) {
	fs.gen++
	if !attrOnly {
		fs.contentGen++
	}
	fs.stampMu.Lock()
	defer fs.stampMu.Unlock()
	if !fs.cachesLive {
		return
	}
	if !attrOnly {
		clear(fs.resolved)
	}
	q := ""
	if cp, err := clean(p); err == nil {
		if cp == "/" {
			q = "/"
		} else {
			dir, base := path.Split(cp)
			if n, rp, err := fs.lookup(dir, true); err == nil && n.kind == KindDir {
				q = path.Join(rp, base)
			}
		}
	}
	if q == "" {
		fs.stampEpoch++
		clear(fs.stamps)
		return
	}
	fs.clearNodeChain(q)
	for k := range fs.stamps {
		if pathContains(k, q) || pathContains(q, k) {
			delete(fs.stamps, k)
		}
	}
}

// clearNodeChain invalidates the per-node stamp caches along the canonical
// path q, from the root down to (and including) q's own node. Descendants
// of a renamed or attribute-touched node keep their caches: their subtree
// stamps fold only their own names and versions, which the mutation did not
// change. Caller holds stampMu.
func (fs *FS) clearNodeChain(q string) {
	n := fs.root
	n.stampEpoch = 0
	for _, name := range splitPath(q) {
		c, ok := n.children[name]
		if !ok {
			return
		}
		c.stampEpoch = 0
		n = c
	}
}

// pathContains reports whether the subtree rooted at a contains b (both
// cleaned absolute paths; a contains itself).
func pathContains(a, b string) bool {
	return a == "/" || a == b || strings.HasPrefix(b, a+"/")
}

// TreeStamp returns a fingerprint of the subtree rooted at p: its shape
// (names and kinds), file sizes, symlink targets, and per-node mutation
// versions. Equal stamps mean the subtree is unchanged; any create, write,
// remove, rename, or attribute change under p yields a new stamp. Stamps
// are memoized per canonical root and survive mutations elsewhere in the
// filesystem, which is what makes sharded discovery incremental: after a
// library upgrade only the affected directory's stamp recomputes.
func (fs *FS) TreeStamp(p string) (uint64, error) {
	s, _, err := fs.TreeStampVisit(p, nil)
	return s, err
}

// TreeStampVisit is TreeStamp fused with a subtree traversal: when the
// stamp has to be recomputed, visit (if non-nil) is invoked once per node
// in the subtree (order unspecified) with the node's parent directory and
// name. When the stamp is served from the memo no traversal happens and
// visit never runs; the visited return distinguishes the two. Callers use
// this to re-derive per-subtree indexes in the same pass that detects the
// subtree changed, instead of stamping and then walking the same nodes
// twice. visit runs with the filesystem's stamp lock held and must not
// call back into the filesystem.
func (fs *FS) TreeStampVisit(p string, visit func(dir, name string, info FileInfo)) (stamp uint64, visited bool, err error) {
	if err := fs.opErr("walk", p); err != nil {
		return 0, false, err
	}
	fs.stampMu.Lock()
	defer fs.stampMu.Unlock()
	ent, haveEnt := fs.resolved[p]
	if haveEnt {
		if s, ok := fs.stamps[ent.rp]; ok {
			return s, false, nil
		}
	}
	n, rp := ent.n, ent.rp
	if !haveEnt {
		var lerr error
		n, rp, lerr = fs.lookup(p, true)
		if lerr != nil {
			return 0, false, &PathError{Op: "stamp", Path: p, Err: lerr}
		}
	}
	s := stampNode(path.Dir(rp), path.Base(rp), n, visit, fs.stampEpoch)
	if fs.stamps == nil {
		fs.stamps = map[string]uint64{}
	}
	if fs.resolved == nil {
		fs.resolved = map[string]resolvedEntry{}
	}
	fs.stamps[rp] = s
	fs.resolved[p] = resolvedEntry{rp: rp, n: n}
	fs.cachesLive = true
	return s, true, nil
}

// FNV-1a, inlined: stamping is on the survey hot path, and going through
// hash.Hash costs an interface dispatch and a byte-slice conversion per
// field, which profiles as a large share of an incremental re-survey.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString folds a string into the hash eight bytes per multiply round
// (instead of one): entry names are hashed for every node of a re-stamped
// subtree, so the byte-wise schedule showed up in fleet re-survey profiles.
func fnvString(h uint64, s string) uint64 {
	for len(s) >= 8 {
		v := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
		h = (h ^ v) * fnvPrime64
		s = s[8:]
	}
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvUint64 folds a 64-bit value into the hash in two rounds (halves
// instead of bytes): stamping mixes two of these per node, and the byte-wise
// schedule was measurable across a fleet re-survey. Two multiply rounds
// disperse counters and sizes just as well for fingerprinting purposes.
func fnvUint64(h, v uint64) uint64 {
	h = (h ^ (v & 0xffffffff)) * fnvPrime64
	return (h ^ (v >> 32)) * fnvPrime64
}

// stampNode folds one node (and, for directories, its children) into a
// subtree stamp, forwarding each node to visit when set. Children are
// combined commutatively (a wrapping sum of their subtree stamps) so no
// per-directory name sort or allocation is needed; each child's stamp
// covers its own name, which keeps renames visible. dir is the node's
// parent directory — child path prefixes are only materialized for
// directories, so a visit that filters by name stays allocation-light.
// Nodes whose cached stamp is still valid under epoch are not re-hashed;
// with a visitor they are traversed visit-only, so the callback still sees
// every node of the subtree. Caller holds stampMu.
func stampNode(dir, name string, n *node, visit func(dir, name string, info FileInfo), epoch uint64) uint64 {
	if n.stampEpoch == epoch {
		if visit != nil {
			visitSubtree(dir, name, n, visit)
		}
		return n.stampVal
	}
	h := fnvString(fnvOffset64, name)
	h = (h ^ uint64(n.kind)) * fnvPrime64
	h = fnvUint64(h, n.ver)
	if visit != nil {
		// Path is deliberately left empty: joining dir and name for every
		// node would defeat the single-pass design, and most visitors
		// filter by name before caring about the full path.
		fi := FileInfo{Name: name, Kind: n.kind, Target: n.target}
		if n.kind == KindFile {
			fi.Size = len(n.data)
		}
		visit(dir, name, fi)
	}
	switch n.kind {
	case KindFile:
		h = fnvUint64(h, uint64(len(n.data)))
	case KindSymlink:
		h = fnvString(h, n.target)
	case KindDir:
		var sub string
		if visit != nil && len(n.children) > 0 {
			sub = path.Join(dir, name)
		}
		var sum uint64
		for cname, c := range n.children {
			sum += stampNode(sub, cname, c, visit, epoch)
		}
		h = fnvUint64(h, sum)
	}
	n.stampVal, n.stampEpoch = h, epoch
	return h
}

// visitSubtree replays the visit callbacks for a subtree served from the
// per-node stamp cache: the same traversal as stampNode, minus the hashing.
func visitSubtree(dir, name string, n *node, visit func(dir, name string, info FileInfo)) {
	fi := FileInfo{Name: name, Kind: n.kind, Target: n.target}
	if n.kind == KindFile {
		fi.Size = len(n.data)
	}
	visit(dir, name, fi)
	if n.kind == KindDir && len(n.children) > 0 {
		sub := path.Join(dir, name)
		for cname, c := range n.children {
			visitSubtree(sub, cname, c, visit)
		}
	}
}

// SetOpHook installs (or, with nil, clears) the fault-injection hook. The
// hook is consulted at the top of every public read and mutation; returning
// an error fails the operation without touching state. Hooks must be safe
// for concurrent use when the filesystem is shared across goroutines.
func (fs *FS) SetOpHook(h func(op, path string) error) { fs.opHook = h }

// opErr consults the hook for one operation, wrapping any injected error
// in the operation's PathError so callers see ordinary filesystem failures.
func (fs *FS) opErr(op, path string) error {
	if fs.opHook == nil {
		return nil
	}
	if err := fs.opHook(op, path); err != nil {
		return &PathError{Op: op, Path: path, Err: err}
	}
	return nil
}

// PathError describes a failed filesystem operation.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }
func (e *PathError) Unwrap() error { return e.Err }

// Sentinel errors.
var (
	ErrNotExist    = fmt.Errorf("no such file or directory")
	ErrExist       = fmt.Errorf("file exists")
	ErrNotDir      = fmt.Errorf("not a directory")
	ErrIsDir       = fmt.Errorf("is a directory")
	ErrLinkLoop    = fmt.Errorf("too many levels of symbolic links")
	ErrInvalidPath = fmt.Errorf("invalid path")
)

const maxLinkDepth = 40

// clean canonicalizes a path to an absolute, slash-separated form.
func clean(p string) (string, error) {
	if p == "" {
		return "", ErrInvalidPath
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p), nil
}

// splitPath returns the path components of a cleaned absolute path.
func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// lookup walks to the node for p. When followLast is true, a symlink in the
// final position is resolved; intermediate symlinks are always resolved.
func (fs *FS) lookup(p string, followLast bool) (*node, string, error) {
	cp, err := clean(p)
	if err != nil {
		return nil, "", err
	}
	return fs.lookupFrom(fs.root, "/", splitPath(cp), followLast, 0)
}

func (fs *FS) lookupFrom(cur *node, curPath string, parts []string, followLast bool, depth int) (*node, string, error) {
	if depth > maxLinkDepth {
		return nil, "", ErrLinkLoop
	}
	for i, name := range parts {
		if cur.kind != KindDir {
			return nil, "", ErrNotDir
		}
		child, ok := cur.children[name]
		if !ok {
			return nil, "", ErrNotExist
		}
		childPath := path.Join(curPath, name)
		last := i == len(parts)-1
		if child.kind == KindSymlink && (!last || followLast) {
			targetPath := child.target
			if !strings.HasPrefix(targetPath, "/") {
				targetPath = path.Join(curPath, targetPath)
			}
			resolved, rp, err := fs.lookupFrom(fs.root, "/", splitPath(path.Clean(targetPath)), true, depth+1)
			if err != nil {
				return nil, "", err
			}
			if last {
				return resolved, rp, nil
			}
			cur, curPath = resolved, rp
			continue
		}
		cur, curPath = child, childPath
	}
	return cur, curPath, nil
}

// parentOf returns the directory node that should contain the final element
// of p, along with that element's name.
func (fs *FS) parentOf(p string) (*node, string, error) {
	cp, err := clean(p)
	if err != nil {
		return nil, "", err
	}
	if cp == "/" {
		return nil, "", &PathError{Op: "create", Path: p, Err: ErrExist}
	}
	dir, base := path.Split(cp)
	parent, _, err := fs.lookup(dir, true)
	if err != nil {
		return nil, "", &PathError{Op: "create", Path: p, Err: err}
	}
	if parent.kind != KindDir {
		return nil, "", &PathError{Op: "create", Path: p, Err: ErrNotDir}
	}
	return parent, base, nil
}

// Mkdir creates a single directory. The parent must exist.
func (fs *FS) Mkdir(p string) error {
	if err := fs.opErr("mkdir", p); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return &PathError{Op: "mkdir", Path: p, Err: ErrExist}
	}
	nn := &node{kind: KindDir, children: map[string]*node{}, mode: 0o755}
	parent.children[base] = nn
	fs.mutated(p, false)
	nn.ver = fs.gen
	return nil
}

// MkdirAll creates a directory and any missing parents. Existing directories
// are left untouched.
func (fs *FS) MkdirAll(p string) error {
	if err := fs.opErr("mkdir", p); err != nil {
		return err
	}
	return fs.mkdirAll(p)
}

// mkdirAll is MkdirAll without the fault hook, for internal use by
// operations that already consulted the hook under their own name.
func (fs *FS) mkdirAll(p string) error {
	cp, err := clean(p)
	if err != nil {
		return &PathError{Op: "mkdir", Path: p, Err: err}
	}
	cur, curPath := fs.root, "/"
	for _, name := range splitPath(cp) {
		childPath := path.Join(curPath, name)
		child, ok := cur.children[name]
		if !ok {
			child = &node{kind: KindDir, children: map[string]*node{}, mode: 0o755}
			cur.children[name] = child
			fs.mutated(childPath, false)
			child.ver = fs.gen
		} else if child.kind == KindSymlink {
			resolved, rp, err := fs.lookup(childPath, true)
			if err != nil {
				return &PathError{Op: "mkdir", Path: p, Err: err}
			}
			child, childPath = resolved, rp
		}
		if child.kind != KindDir {
			return &PathError{Op: "mkdir", Path: p, Err: ErrNotDir}
		}
		cur, curPath = child, childPath
	}
	return nil
}

// WriteFile creates or replaces a regular file, creating parents as needed.
func (fs *FS) WriteFile(p string, data []byte) error {
	if err := fs.opErr("write", p); err != nil {
		return err
	}
	cp, err := clean(p)
	if err != nil {
		return &PathError{Op: "write", Path: p, Err: err}
	}
	if err := fs.mkdirAll(path.Dir(cp)); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(cp)
	if err != nil {
		return err
	}
	if existing, ok := parent.children[base]; ok && existing.kind == KindDir {
		return &PathError{Op: "write", Path: p, Err: ErrIsDir}
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	nn := &node{kind: KindFile, data: buf, mode: 0o644}
	parent.children[base] = nn
	fs.mutated(cp, false)
	nn.ver = fs.gen
	return nil
}

// WriteString is WriteFile for string content.
func (fs *FS) WriteString(p, content string) error { return fs.WriteFile(p, []byte(content)) }

// ReadFileShared returns the file's contents WITHOUT copying. The returned
// slice aliases the stored data: callers must treat it as read-only. It
// exists for hot read-mostly paths (the dynamic-loader simulation parses
// multi-megabyte libraries thousands of times); everything else should use
// ReadFile.
func (fs *FS) ReadFileShared(p string) ([]byte, error) {
	if err := fs.opErr("read", p); err != nil {
		return nil, err
	}
	n, _, err := fs.lookup(p, true)
	if err != nil {
		return nil, &PathError{Op: "read", Path: p, Err: err}
	}
	if n.kind != KindFile {
		return nil, &PathError{Op: "read", Path: p, Err: ErrIsDir}
	}
	return n.data, nil
}

// ReadFile returns the contents of the file at p, following symlinks.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	if err := fs.opErr("read", p); err != nil {
		return nil, err
	}
	n, _, err := fs.lookup(p, true)
	if err != nil {
		return nil, &PathError{Op: "read", Path: p, Err: err}
	}
	if n.kind != KindFile {
		return nil, &PathError{Op: "read", Path: p, Err: ErrIsDir}
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// Symlink creates a symbolic link at linkPath pointing to target. The target
// need not exist.
func (fs *FS) Symlink(target, linkPath string) error {
	if err := fs.opErr("symlink", linkPath); err != nil {
		return err
	}
	if err := fs.mkdirAll(path.Dir(mustClean(linkPath))); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(linkPath)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return &PathError{Op: "symlink", Path: linkPath, Err: ErrExist}
	}
	nn := &node{kind: KindSymlink, target: target, mode: 0o777}
	parent.children[base] = nn
	fs.mutated(linkPath, false)
	nn.ver = fs.gen
	return nil
}

func mustClean(p string) string {
	cp, err := clean(p)
	if err != nil {
		return "/"
	}
	return cp
}

// Remove deletes the entry at p (without following a final symlink).
// Directories must be empty.
func (fs *FS) Remove(p string) error {
	if err := fs.opErr("remove", p); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	child, ok := parent.children[base]
	if !ok {
		return &PathError{Op: "remove", Path: p, Err: ErrNotExist}
	}
	if child.kind == KindDir && len(child.children) > 0 {
		return &PathError{Op: "remove", Path: p, Err: fmt.Errorf("directory not empty")}
	}
	delete(parent.children, base)
	fs.mutated(p, false)
	return nil
}

// RemoveAll deletes the entry at p and, for directories, its whole subtree.
// A missing entry is not an error (matching os.RemoveAll).
func (fs *FS) RemoveAll(p string) error {
	if err := fs.opErr("removeall", p); err != nil {
		return err
	}
	parent, base, err := fs.parentOf(p)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	if _, ok := parent.children[base]; !ok {
		return nil
	}
	delete(parent.children, base)
	fs.mutated(p, false)
	return nil
}

// Rename atomically moves the entry at oldp (a file, symlink, or whole
// directory subtree) to newp, creating newp's parents as needed. The
// destination must not already exist — the transactional-staging commit
// protocol removes any stale destination first, then renames, so a
// half-written temp directory can never silently merge into live state.
func (fs *FS) Rename(oldp, newp string) error {
	if err := fs.opErr("rename", oldp); err != nil {
		return err
	}
	oparent, obase, err := fs.parentOf(oldp)
	if err != nil {
		return err
	}
	moving, ok := oparent.children[obase]
	if !ok {
		return &PathError{Op: "rename", Path: oldp, Err: ErrNotExist}
	}
	cp, err := clean(newp)
	if err != nil {
		return &PathError{Op: "rename", Path: newp, Err: err}
	}
	if err := fs.mkdirAll(path.Dir(cp)); err != nil {
		return err
	}
	nparent, nbase, err := fs.parentOf(cp)
	if err != nil {
		return err
	}
	if _, exists := nparent.children[nbase]; exists {
		return &PathError{Op: "rename", Path: newp, Err: ErrExist}
	}
	if nparent == moving || subtreeContains(moving, nparent) {
		return &PathError{Op: "rename", Path: newp, Err: ErrInvalidPath}
	}
	delete(oparent.children, obase)
	fs.mutated(oldp, false)
	nparent.children[nbase] = moving
	fs.mutated(cp, false)
	return nil
}

// subtreeContains reports whether needle is a node inside root's subtree.
func subtreeContains(root, needle *node) bool {
	if root.kind != KindDir {
		return false
	}
	for _, child := range root.children {
		if child == needle || subtreeContains(child, needle) {
			return true
		}
	}
	return false
}

// FileInfo describes a filesystem entry.
type FileInfo struct {
	Name string
	Path string
	Kind FileKind
	Size int
	// Target is the link destination for symlinks.
	Target string
}

// Stat returns information about the entry at p, following symlinks.
func (fs *FS) Stat(p string) (FileInfo, error) {
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return FileInfo{}, &PathError{Op: "stat", Path: p, Err: err}
	}
	return infoFor(n, rp), nil
}

// Lstat returns information about the entry at p without following a final
// symlink.
func (fs *FS) Lstat(p string) (FileInfo, error) {
	n, rp, err := fs.lookup(p, false)
	if err != nil {
		return FileInfo{}, &PathError{Op: "lstat", Path: p, Err: err}
	}
	return infoFor(n, rp), nil
}

func infoFor(n *node, p string) FileInfo {
	fi := FileInfo{Name: path.Base(p), Path: p, Kind: n.kind, Target: n.target}
	if n.kind == KindFile {
		fi.Size = len(n.data)
	}
	return fi
}

// Exists reports whether p resolves to an existing entry.
func (fs *FS) Exists(p string) bool {
	_, _, err := fs.lookup(p, true)
	return err == nil
}

// IsDir reports whether p resolves to a directory.
func (fs *FS) IsDir(p string) bool {
	n, _, err := fs.lookup(p, true)
	return err == nil && n.kind == KindDir
}

// ReadDir lists a directory's entries sorted by name.
func (fs *FS) ReadDir(p string) ([]FileInfo, error) {
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return nil, &PathError{Op: "readdir", Path: p, Err: err}
	}
	if n.kind != KindDir {
		return nil, &PathError{Op: "readdir", Path: p, Err: ErrNotDir}
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FileInfo, 0, len(names))
	for _, name := range names {
		out = append(out, infoFor(n.children[name], path.Join(rp, name)))
	}
	return out, nil
}

// ResolvePath returns the canonical path p resolves to after following all
// symlinks (the realpath).
func (fs *FS) ResolvePath(p string) (string, error) {
	_, rp, err := fs.lookup(p, true)
	if err != nil {
		return "", &PathError{Op: "resolve", Path: p, Err: err}
	}
	return rp, nil
}

// SetAttr attaches an extended attribute to the entry at p (following
// symlinks). Attributes carry simulation-side metadata.
func (fs *FS) SetAttr(p, key, value string) error {
	if err := fs.opErr("setattr", p); err != nil {
		return err
	}
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return &PathError{Op: "setattr", Path: p, Err: err}
	}
	if n.attrs == nil {
		n.attrs = map[string]string{}
	}
	n.attrs[key] = value
	fs.mutated(rp, true)
	n.ver = fs.gen
	return nil
}

// Attrs returns a copy of all extended attributes on the entry at p
// (following symlinks); nil when the entry is missing or has none.
func (fs *FS) Attrs(p string) map[string]string {
	n, _, err := fs.lookup(p, true)
	if err != nil || len(n.attrs) == 0 {
		return nil
	}
	out := make(map[string]string, len(n.attrs))
	for k, v := range n.attrs {
		out[k] = v
	}
	return out
}

// Attr reads an extended attribute; ok is false when absent.
func (fs *FS) Attr(p, key string) (value string, ok bool) {
	n := fs.resolveCached(p)
	if n == nil || n.attrs == nil {
		return "", false
	}
	value, ok = n.attrs[key]
	return value, ok
}

// resolveCached resolves p through the resolution cache, falling back to
// (and priming the cache with) a full lookup. Only successful resolutions
// are cached; structural mutations clear the cache wholesale, so a cached
// node is always the node p still resolves to.
func (fs *FS) resolveCached(p string) *node {
	fs.stampMu.Lock()
	ent, ok := fs.resolved[p]
	fs.stampMu.Unlock()
	if ok {
		return ent.n
	}
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return nil
	}
	fs.stampMu.Lock()
	if fs.resolved == nil {
		fs.resolved = map[string]resolvedEntry{}
	}
	fs.resolved[p] = resolvedEntry{rp: rp, n: n}
	fs.cachesLive = true
	fs.stampMu.Unlock()
	return n
}

// WalkFunc visits an entry during Walk. Returning SkipDir for a directory
// prunes its subtree.
type WalkFunc func(p string, info FileInfo) error

// SkipDir prunes a directory subtree during Walk.
var SkipDir = fmt.Errorf("skip this directory")

// Walk traverses the tree rooted at p depth-first in sorted order, calling
// fn for every entry (symlinks are reported, not followed).
func (fs *FS) Walk(p string, fn WalkFunc) error {
	n, rp, err := fs.lookup(p, true)
	if err != nil {
		return &PathError{Op: "walk", Path: p, Err: err}
	}
	return walk(n, rp, fn)
}

func walk(n *node, p string, fn WalkFunc) error {
	if err := fn(p, infoFor(n, p)); err != nil {
		if err == SkipDir && n.kind == KindDir {
			return nil
		}
		return err
	}
	if n.kind != KindDir {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := walk(n.children[name], path.Join(p, name), fn); err != nil {
			if err == SkipDir {
				continue
			}
			return err
		}
	}
	return nil
}

// Glob returns the paths of all files whose base name matches pattern
// (path.Match syntax) anywhere under root, emulating the `locate`/`find
// -name` searches FEAM performs. Results are sorted.
func (fs *FS) Glob(root, pattern string) ([]string, error) {
	if _, err := path.Match(pattern, ""); err != nil {
		return nil, err
	}
	var out []string
	err := fs.Walk(root, func(p string, info FileInfo) error {
		if info.Kind == KindDir {
			return nil
		}
		if ok, _ := path.Match(pattern, info.Name); ok {
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// CopyFile copies a regular file within the filesystem.
func (fs *FS) CopyFile(src, dst string) error {
	data, err := fs.ReadFile(src)
	if err != nil {
		return err
	}
	return fs.WriteFile(dst, data)
}

// CopyFileTo copies a regular file from this filesystem into another one,
// the vfs equivalent of staging a shared-library copy at a target site.
func (fs *FS) CopyFileTo(other *FS, src, dst string) error {
	data, err := fs.ReadFile(src)
	if err != nil {
		return err
	}
	if err := other.WriteFile(dst, data); err != nil {
		return err
	}
	// Extended attributes travel with the file: the hidden ground-truth
	// metadata of a shared library is a property of its bytes.
	if n, _, err := fs.lookup(src, true); err == nil && n.attrs != nil {
		for k, v := range n.attrs {
			if err := other.SetAttr(dst, k, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// TreeSize returns the total byte size of all regular files under root.
func (fs *FS) TreeSize(root string) (int, error) {
	total := 0
	err := fs.Walk(root, func(p string, info FileInfo) error {
		if info.Kind == KindFile {
			total += info.Size
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}
