package fault

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Injector decides whether an operation fails. Implementations must be
// safe for concurrent use — site filesystems and runners are exercised
// from worker goroutines.
type Injector interface {
	// Fail returns nil to let the operation proceed, or a *Fault to make
	// it fail. Cancelling ctx aborts any injected latency; the ctx error
	// is returned in place of a fault.
	Fail(ctx context.Context, op, path string) error
}

// Policy is a deterministic rate-based injector: each (op, path, sequence)
// tuple is hashed to decide failure, so runs are reproducible for a given
// seed yet behave like random site flakiness. The zero value injects
// nothing.
type Policy struct {
	// Rate is the per-operation fault probability in [0, 1].
	Rate float64
	// TransientFraction is the share of injected faults classified
	// transient (the rest are permanent). 1 means every fault is
	// transient.
	TransientFraction float64
	// Seed drives the deterministic hash.
	Seed int64
	// Ops restricts injection to the named operations; empty means all.
	Ops []string
	// Latency is added to every injected fault (simulated slow-failure of
	// an overloaded filesystem). Keep it small in tests.
	Latency time.Duration

	seq      atomic.Uint64
	injected atomic.Uint64
}

// Injected returns how many faults the policy has delivered.
func (p *Policy) Injected() uint64 { return p.injected.Load() }

// Fail implements Injector.
func (p *Policy) Fail(ctx context.Context, op, path string) error {
	if p == nil || p.Rate <= 0 {
		return nil
	}
	if len(p.Ops) > 0 {
		found := false
		for _, o := range p.Ops {
			if o == op {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	n := p.seq.Add(1)
	if p.unit("fault", op, path, n) >= p.Rate {
		return nil
	}
	// The injected latency must honor cancellation: a cancelled Predict
	// has no business waiting out a simulated slow filesystem. A cancelled
	// wait is the caller's error, not an injected fault.
	if err := Sleep(ctx, p.Latency); err != nil {
		return err
	}
	class := Permanent
	if p.unit("class", op, path, n) < p.TransientFraction {
		class = Transient
	}
	p.injected.Add(1)
	return New(class, op, path)
}

// unit hashes the tuple deterministically to [0, 1).
func (p *Policy) unit(kind, op, path string, n uint64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(p.Seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(path))
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum64()%1e9) / 1e9
}

// scriptEntry is one queued decision: pass (fault == nil) or fail, for
// operations matching op (empty = any).
type scriptEntry struct {
	op    string
	fault *Fault
}

// Script is a deterministic scripted injector for tests: it fails exactly
// the operations enqueued with FailNext, in order, matching by op name.
// Operations with other names pass through without consuming the script —
// including the explicit passes queued by FailNth, so interleaved
// unrelated operations cannot shift which matching operation fails.
type Script struct {
	mu    sync.Mutex
	queue []scriptEntry
	// injected counts faults actually delivered.
	injected int
}

// FailNext enqueues a fault: the next operation whose op matches will fail
// with the given class. An empty op matches any operation.
func (s *Script) FailNext(class Class, op string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, scriptEntry{op: op, fault: &Fault{Class: class, Op: op}})
}

// FailNth enqueues (n-1) passes followed by one fault for the matching op:
// shorthand for letting a plan's first writes succeed and breaking the
// nth. Counting is per matching operation.
func (s *Script) FailNth(class Class, op string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 1; i < n; i++ {
		s.queue = append(s.queue, scriptEntry{op: op}) // explicit pass
	}
	s.queue = append(s.queue, scriptEntry{op: op, fault: &Fault{Class: class, Op: op}})
}

// Fail implements Injector. The script never sleeps, so ctx is unused
// beyond satisfying the interface.
func (s *Script) Fail(_ context.Context, op, path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	head := s.queue[0]
	if head.op != "" && head.op != op {
		return nil
	}
	s.queue = s.queue[:copy(s.queue, s.queue[1:])]
	if head.fault == nil {
		return nil
	}
	s.injected++
	return &Fault{Class: head.fault.Class, Op: op, Path: path}
}

// Injected returns how many faults the script has delivered.
func (s *Script) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// Remaining returns how many queue entries (passes and faults) are left.
func (s *Script) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Hook adapts an Injector to the vfs operation-hook signature
// (vfs.FS.SetOpHook), binding the installer's ctx into every hook call —
// vfs operations carry no context of their own. A nil injector clears
// the hook.
func Hook(ctx context.Context, inj Injector) func(op, path string) error {
	if inj == nil {
		return nil
	}
	return func(op, path string) error {
		return inj.Fail(ctx, op, path)
	}
}
