// Package fault makes failure a first-class, injectable input of the
// simulation. Real sites fail transiently — flaky parallel filesystems,
// overloaded metadata servers, misconfigured stacks (§III.B of the paper) —
// and a migration framework that treats every probe or staging error as
// final both under-predicts readiness and leaves half-finished state
// behind. This package provides:
//
//   - a typed Fault error carrying a transient-vs-permanent classification,
//   - injectable fault policies (deterministic error rates, scripted
//     nth-operation failures, optional latency) that plug into the vfs
//     operation hook and wrap probe-program runners,
//   - a context-aware retry helper with capped attempts and exponential
//     backoff that retries only faults classified transient,
//   - a structured ProbeResult so the prediction pipeline can classify
//     probe failures (missing library vs. broken stack vs. transient site
//     wobble) without string matching.
//
// FEAM's engine uses Retry around probe runs and staging writes; tests and
// the testbed CLI use the injectors to simulate flaky sites and verify the
// system degrades gracefully instead of corrupting state.
package fault

import (
	"errors"
	"fmt"
)

// Class classifies a fault's persistence.
type Class int

const (
	// Permanent faults do not go away on retry (bad path, full disk,
	// misconfigured stack).
	Permanent Class = iota
	// Transient faults are momentary (timeout, overloaded filesystem); a
	// retry may succeed.
	Transient
)

func (c Class) String() string {
	switch c {
	case Permanent:
		return "permanent"
	case Transient:
		return "transient"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Fault is an injected or classified failure of one operation.
type Fault struct {
	// Class is the persistence classification.
	Class Class
	// Op names the failed operation ("write", "setattr", "probe", ...).
	Op string
	// Path is the operation's subject (a file path, a stack key, ...).
	Path string
	// Err is the underlying cause, if any.
	Err error
}

// Error implements error.
func (f *Fault) Error() string {
	msg := fmt.Sprintf("%s fault: %s %s", f.Class, f.Op, f.Path)
	if f.Err != nil {
		msg += ": " + f.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// New returns a classified fault for an operation.
func New(class Class, op, path string) *Fault {
	return &Fault{Class: class, Op: op, Path: path}
}

// IsTransient reports whether err is (or wraps) a Fault classified
// transient. Every other error — including plain, unclassified errors — is
// treated as permanent: retrying an unknown failure is how half-staged
// state gets duplicated.
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Class == Transient
}

// AsFault extracts the Fault wrapped in err, if any.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}
