package fault

import (
	"context"
	"strings"

	"feam/internal/sitemodel"
	"feam/internal/toolchain"
)

// Runner is the probe-program execution interface, structurally identical
// to feam.ProgramRunner (declared here too so this package can wrap
// runners without importing the prediction pipeline).
type Runner interface {
	RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (success bool, detail string)
}

// ProbeResult is the structured outcome of one probe-program execution.
// It replaces substring matching on failure text: the runner that knows
// why a probe failed says so explicitly.
type ProbeResult struct {
	// Success reports a clean run.
	Success bool
	// Detail is the human-readable outcome text (job output).
	Detail string
	// MissingLib marks a failure caused by an unresolvable shared library
	// — the shared-library determinant's business, not the stack's.
	MissingLib bool
	// Transient marks a failure a retry may dodge (system wobble, injected
	// transient fault).
	Transient bool
}

// ProbeRunner is implemented by runners that can classify their own
// failures. The prediction pipeline prefers it over RunProgram's
// (bool, string) and falls back to ClassifyDetail otherwise.
type ProbeRunner interface {
	RunProbe(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) ProbeResult
}

// ClassifyDetail derives a ProbeResult from a legacy (success, detail)
// pair. The missing-library test anchors on the loader's "=> not found"
// arrow — a bare "not found" also appears in symbol-version errors
// ("version `GLIBC_2.12' not found"), which are ABI breaks that must
// condemn a stack, not be excused as resolvable.
func ClassifyDetail(success bool, detail string) ProbeResult {
	res := ProbeResult{Success: success, Detail: detail}
	if success {
		return res
	}
	res.MissingLib = strings.Contains(detail, "=> not found")
	res.Transient = strings.Contains(detail, "transient")
	return res
}

// ProbeBatch is one open probe session against a fixed (site, stack) pair:
// several probe executions sharing whatever per-session setup the runner
// amortizes — environment activation, submission-script rendering and
// round-trip validation, job-allocation bookkeeping. A batch is used from
// one goroutine and must be closed exactly once; Close releases the
// session state (restoring any environment the session activated).
type ProbeBatch interface {
	RunProbe(ctx context.Context, art *toolchain.Artifact, extraLibDirs []string) ProbeResult
	Close()
}

// BatchProbeRunner is implemented by runners that can amortize per-probe
// setup across a session. BeginProbeBatch may return nil to decline (for
// example when the site has no batch system); callers go through OpenBatch,
// which falls back to per-probe execution.
type BatchProbeRunner interface {
	BeginProbeBatch(ctx context.Context, site *sitemodel.Site, stackKey string) ProbeBatch
}

// OpenBatch opens a probe session on r against one (site, stack) pair.
// Runners implementing BatchProbeRunner get their native session; everyone
// else gets a pass-through batch that repeats setup per probe, so callers
// always probe through the batch interface.
func OpenBatch(ctx context.Context, r Runner, site *sitemodel.Site, stackKey string) ProbeBatch {
	if br, ok := r.(BatchProbeRunner); ok {
		if b := br.BeginProbeBatch(ctx, site, stackKey); b != nil {
			return b
		}
	}
	return &singleProbeBatch{r: r, site: site, stackKey: stackKey}
}

// singleProbeBatch adapts an unbatched runner to the ProbeBatch interface:
// each probe pays full setup, exactly as a direct RunProbe would.
type singleProbeBatch struct {
	r        Runner
	site     *sitemodel.Site
	stackKey string
}

// RunProbe implements ProbeBatch.
func (b *singleProbeBatch) RunProbe(ctx context.Context, art *toolchain.Artifact, extraLibDirs []string) ProbeResult {
	if pr, ok := b.r.(ProbeRunner); ok {
		return pr.RunProbe(ctx, art, b.site, b.stackKey, extraLibDirs)
	}
	ok, detail := b.r.RunProgram(ctx, art, b.site, b.stackKey, extraLibDirs)
	return ClassifyDetail(ok, detail)
}

// Close implements ProbeBatch.
func (b *singleProbeBatch) Close() {}

// FaultyRunner wraps a probe runner with an injector: before each probe
// the injector may fail the run outright, simulating batch-system or
// launch-path flakiness independent of the program under test.
type FaultyRunner struct {
	Inner Runner
	Inj   Injector
}

// RunProgram implements Runner.
func (f *FaultyRunner) RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
	res := f.RunProbe(ctx, art, site, stackKey, extraLibDirs)
	return res.Success, res.Detail
}

// RunProbe implements ProbeRunner.
func (f *FaultyRunner) RunProbe(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) ProbeResult {
	if f.Inj != nil {
		if err := f.Inj.Fail(ctx, "probe", site.Name+"/"+stackKey); err != nil {
			return ProbeResult{
				Success:   false,
				Detail:    err.Error(),
				Transient: IsTransient(err),
			}
		}
	}
	if pr, ok := f.Inner.(ProbeRunner); ok {
		return pr.RunProbe(ctx, art, site, stackKey, extraLibDirs)
	}
	ok, detail := f.Inner.RunProgram(ctx, art, site, stackKey, extraLibDirs)
	return ClassifyDetail(ok, detail)
}

// BeginProbeBatch implements BatchProbeRunner: the inner runner's session
// setup is amortized as usual, while the injector stays consulted on every
// probe — injected flakiness is per-execution, not per-session.
func (f *FaultyRunner) BeginProbeBatch(ctx context.Context, site *sitemodel.Site, stackKey string) ProbeBatch {
	return &faultyBatch{
		inner: OpenBatch(ctx, f.Inner, site, stackKey),
		inj:   f.Inj,
		key:   site.Name + "/" + stackKey,
	}
}

// faultyBatch interposes the injector in front of an open probe session.
type faultyBatch struct {
	inner ProbeBatch
	inj   Injector
	key   string
}

// RunProbe implements ProbeBatch.
func (b *faultyBatch) RunProbe(ctx context.Context, art *toolchain.Artifact, extraLibDirs []string) ProbeResult {
	if b.inj != nil {
		if err := b.inj.Fail(ctx, "probe", b.key); err != nil {
			return ProbeResult{
				Success:   false,
				Detail:    err.Error(),
				Transient: IsTransient(err),
			}
		}
	}
	return b.inner.RunProbe(ctx, art, extraLibDirs)
}

// Close implements ProbeBatch.
func (b *faultyBatch) Close() { b.inner.Close() }
