package fault

import (
	"context"
	"time"
)

// RetryPolicy caps and paces retries of transient faults. The zero value
// means "no retries" (a single attempt).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first try;
	// values below 1 behave as 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0 = no cap).
	MaxDelay time.Duration
}

// DefaultRetryPolicy mirrors the paper's observation that sites wobble:
// three attempts with a short exponential backoff. The delays are small
// because probe pacing is dominated by the batch system, not the retry
// loop; sites that need longer spacing configure their own policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// Backoff returns the delay before retry number retry (1-based).
func (p RetryPolicy) Backoff(retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Attempts returns the normalized attempt budget (minimum 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Sleep waits for d or until the context is done, whichever comes first.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry runs fn until it succeeds, fails permanently, or the attempt
// budget is exhausted. Only errors classified transient (IsTransient) are
// retried; permanent faults and plain errors fail fast. It returns the
// number of attempts made alongside fn's final error. A cancelled context
// stops the loop between attempts.
func Retry(ctx context.Context, p RetryPolicy, fn func() error) (attempts int, err error) {
	return RetryWithHook(ctx, p, nil, fn)
}

// RetryHook observes retry decisions: it is called after a transient
// failure that will be retried, with the just-failed attempt number
// (1-based) and the backoff about to be slept. Instrumentation uses it to
// count retries and account backoff time without owning the loop.
type RetryHook func(attempt int, backoff time.Duration)

// RetryWithHook is Retry with a per-retry observation hook (nil = none).
func RetryWithHook(ctx context.Context, p RetryPolicy, hook RetryHook, fn func() error) (attempts int, err error) {
	max := p.Attempts()
	for attempts = 1; ; attempts++ {
		err = fn()
		if err == nil || !IsTransient(err) || attempts >= max {
			return attempts, err
		}
		backoff := p.Backoff(attempts)
		if hook != nil {
			hook(attempts, backoff)
		}
		if serr := Sleep(ctx, backoff); serr != nil {
			return attempts, err
		}
	}
}
