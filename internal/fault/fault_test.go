package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFaultClassification(t *testing.T) {
	tr := New(Transient, "write", "/stage/lib.so")
	pe := New(Permanent, "write", "/stage/lib.so")
	if !IsTransient(tr) {
		t.Error("transient fault not classified transient")
	}
	if IsTransient(pe) {
		t.Error("permanent fault classified transient")
	}
	if IsTransient(errors.New("plain error")) {
		t.Error("plain error must be treated as permanent")
	}
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	// Classification survives wrapping (vfs wraps injected faults in
	// PathError-style containers).
	wrapped := fmt.Errorf("write /stage/lib.so: %w", tr)
	if !IsTransient(wrapped) {
		t.Error("wrapped transient fault lost its class")
	}
	if f, ok := AsFault(wrapped); !ok || f.Op != "write" {
		t.Errorf("AsFault(wrapped) = %v, %v", f, ok)
	}
}

func TestPolicyDeterministicRate(t *testing.T) {
	run := func(seed int64) (faults, transients int) {
		p := &Policy{Rate: 0.3, TransientFraction: 0.5, Seed: seed}
		for i := 0; i < 1000; i++ {
			if err := p.Fail(context.Background(), "write", fmt.Sprintf("/f%d", i)); err != nil {
				faults++
				if IsTransient(err) {
					transients++
				}
			}
		}
		return
	}
	f1, t1 := run(7)
	f2, t2 := run(7)
	if f1 != f2 || t1 != t2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", f1, t1, f2, t2)
	}
	if f1 < 200 || f1 > 400 {
		t.Errorf("rate 0.3 produced %d/1000 faults", f1)
	}
	if t1 == 0 || t1 == f1 {
		t.Errorf("transient fraction 0.5 produced %d/%d transients", t1, f1)
	}
	f3, _ := run(8)
	if f3 == f1 {
		t.Logf("note: different seeds coincided (%d faults) — acceptable but unusual", f3)
	}
}

// TestPolicyLatencyHonorsCancellation: an injected latency must not
// outlive the caller — a cancelled Predict used to block for the full
// simulated slow-filesystem delay. A cancelled wait surfaces the ctx
// error and is not counted as an injected fault.
func TestPolicyLatencyHonorsCancellation(t *testing.T) {
	p := &Policy{Rate: 1, TransientFraction: 1, Latency: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := p.Fail(ctx, "write", "/x")
	if time.Since(start) > time.Second {
		t.Fatal("cancelled Fail still slept the injected latency")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, ok := AsFault(err); ok {
		t.Error("cancellation was classified as an injected fault")
	}
	if p.Injected() != 0 {
		t.Errorf("Injected() = %d after cancelled wait", p.Injected())
	}
}

func TestPolicyOpFilterAndZeroValue(t *testing.T) {
	var zero Policy
	if err := zero.Fail(context.Background(), "write", "/x"); err != nil {
		t.Error("zero policy injected a fault")
	}
	p := &Policy{Rate: 1, TransientFraction: 1, Ops: []string{"setattr"}}
	if err := p.Fail(context.Background(), "write", "/x"); err != nil {
		t.Error("op filter did not exclude write")
	}
	if err := p.Fail(context.Background(), "setattr", "/x"); err == nil {
		t.Error("op filter excluded its own op")
	}
}

func TestScriptInjector(t *testing.T) {
	var s Script
	s.FailNth(Permanent, "write", 3)
	var errs []error
	for i := 0; i < 4; i++ {
		errs = append(errs, s.Fail(context.Background(), "write", fmt.Sprintf("/f%d", i)))
	}
	if errs[0] != nil || errs[1] != nil {
		t.Error("first two writes should pass")
	}
	if errs[2] == nil {
		t.Fatal("third write should fail")
	}
	if IsTransient(errs[2]) {
		t.Error("scripted permanent fault is transient")
	}
	if errs[3] != nil {
		t.Error("script exhausted but still failing")
	}
	if s.Injected() != 1 {
		t.Errorf("Injected = %d", s.Injected())
	}

	// Op matching: non-matching ops pass through without consuming.
	var s2 Script
	s2.FailNext(Transient, "probe")
	if err := s2.Fail(context.Background(), "write", "/x"); err != nil {
		t.Error("mismatched op consumed the script")
	}
	if err := s2.Fail(context.Background(), "probe", "site/stack"); err == nil || !IsTransient(err) {
		t.Errorf("probe fault = %v", err)
	}

	// FailNth passes are also op-scoped: interleaved unrelated operations
	// must not shift which matching operation fails.
	var s3 Script
	s3.FailNth(Permanent, "write", 2)
	if err := s3.Fail(context.Background(), "removeall", "/stage"); err != nil {
		t.Error("removeall consumed a write pass")
	}
	if err := s3.Fail(context.Background(), "write", "/f1"); err != nil {
		t.Error("first write should pass")
	}
	if err := s3.Fail(context.Background(), "setattr", "/f1"); err != nil {
		t.Error("setattr consumed the write fault")
	}
	if err := s3.Fail(context.Background(), "write", "/f2"); err == nil {
		t.Error("second write should fail")
	}
}

func TestRetryTransientOnly(t *testing.T) {
	ctx := context.Background()
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond}

	// Transient failures are retried until success.
	calls := 0
	attempts, err := Retry(ctx, p, func() error {
		calls++
		if calls < 3 {
			return New(Transient, "probe", "x")
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Errorf("transient retry: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// Permanent failures fail fast.
	calls = 0
	attempts, err = Retry(ctx, p, func() error {
		calls++
		return New(Permanent, "probe", "x")
	})
	if err == nil || attempts != 1 || calls != 1 {
		t.Errorf("permanent retry: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// The budget caps persistent transients.
	calls = 0
	attempts, err = Retry(ctx, p, func() error {
		calls++
		return New(Transient, "probe", "x")
	})
	if err == nil || attempts != 4 || calls != 4 {
		t.Errorf("exhausted retry: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// Zero policy = single attempt.
	calls = 0
	attempts, _ = Retry(ctx, RetryPolicy{}, func() error {
		calls++
		return New(Transient, "probe", "x")
	})
	if attempts != 1 || calls != 1 {
		t.Errorf("zero policy: attempts=%d calls=%d", attempts, calls)
	}
}

func TestRetryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	attempts, err := Retry(ctx, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour}, func() error {
		calls++
		return New(Transient, "probe", "x")
	})
	// The first attempt runs; the backoff sleep observes cancellation and
	// stops the loop with the last transient error.
	if attempts != 1 || calls != 1 {
		t.Errorf("attempts=%d calls=%d", attempts, calls)
	}
	if !IsTransient(err) {
		t.Errorf("final err = %v", err)
	}
}

func TestBackoffShape(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestClassifyDetail(t *testing.T) {
	cases := []struct {
		success   bool
		detail    string
		missing   bool
		transient bool
	}{
		{true, "clean exit", false, false},
		{false, "libmpich.so.1.0 => not found (needed by cg)", true, false},
		// A symbol-version error contains "not found" but is NOT a missing
		// library — the old substring check got this wrong.
		{false, "libc.so.6: version `GLIBC_2.12' not found (required by app)", false, false},
		{false, "communication timeout (transient overload)", false, true},
		{false, "mpd daemon spawn failure on allocated nodes", false, false},
	}
	for _, c := range cases {
		got := ClassifyDetail(c.success, c.detail)
		if got.MissingLib != c.missing || got.Transient != c.transient {
			t.Errorf("ClassifyDetail(%v, %q) = %+v", c.success, c.detail, got)
		}
	}
}

func TestRetryWithHookObservesEachBackoff(t *testing.T) {
	ctx := context.Background()
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond, MaxDelay: 25 * time.Microsecond}

	type call struct {
		attempt int
		backoff time.Duration
	}
	var calls []call
	hook := func(attempt int, backoff time.Duration) {
		calls = append(calls, call{attempt, backoff})
	}

	// Two transient failures, then success: the hook fires once per retry
	// decision with the failed attempt number and that attempt's backoff.
	n := 0
	attempts, err := RetryWithHook(ctx, p, hook, func() error {
		n++
		if n < 3 {
			return New(Transient, "probe", "x")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
	want := []call{{1, p.Backoff(1)}, {2, p.Backoff(2)}}
	if len(calls) != len(want) {
		t.Fatalf("hook calls = %+v, want %+v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("hook call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}

	// The hook must NOT fire for permanent failures or the final exhausted
	// attempt — only when a retry will actually happen.
	calls = nil
	if _, err := RetryWithHook(ctx, p, hook, func() error {
		return New(Permanent, "probe", "x")
	}); err == nil {
		t.Fatal("permanent fault did not surface")
	}
	if len(calls) != 0 {
		t.Errorf("hook fired %d times on a permanent fault", len(calls))
	}
	calls = nil
	attempts, _ = RetryWithHook(ctx, p, hook, func() error {
		return New(Transient, "probe", "x")
	})
	if attempts != 4 || len(calls) != 3 {
		t.Errorf("exhausted: attempts=%d hook calls=%d, want 4 and 3", attempts, len(calls))
	}
}
