package experiment

import (
	"sync"
	"testing"

	"feam/internal/execsim"
	"feam/internal/testbed"
	"feam/internal/workload"
)

// The full evaluation is expensive (hundreds of migrations, thousands of
// ELF builds); run it once and share across tests.
var (
	evalOnce sync.Once
	evalTB   *testbed.Testbed
	evalTS   *TestSet
	evalEV   *Evaluation
	evalErr  error
)

func sharedEval(t *testing.T) (*testbed.Testbed, *TestSet, *Evaluation) {
	t.Helper()
	evalOnce.Do(func() {
		evalTB, evalErr = testbed.Build()
		if evalErr != nil {
			return
		}
		sim := execsim.NewSimulator(2013)
		evalTS, evalErr = BuildTestSet(evalTB, sim)
		if evalErr != nil {
			return
		}
		evalEV, evalErr = Run(evalTB, evalTS, sim)
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return evalTB, evalTS, evalEV
}

func TestTestSetShape(t *testing.T) {
	_, ts, _ := sharedEval(t)
	nas := ts.CountBySuite(workload.NPB)
	spec := ts.CountBySuite(workload.SPECMPI)
	t.Logf("test set: %d NAS binaries, %d SPEC binaries", nas, spec)
	t.Logf("compile failures: %d, compile-site failures: %d",
		len(ts.CompileFailures), len(ts.CompileSiteFailures))
	// The paper's test set: 110 NPB and 147 SPEC binaries out of a
	// possible 182 each. The simulated attrition must land in the same
	// regime: meaningfully fewer than the maximum, with three-digit counts.
	if nas < 90 || nas > 160 {
		t.Errorf("NAS binaries = %d, want in the paper's regime (~110)", nas)
	}
	if spec < 110 || spec > 170 {
		t.Errorf("SPEC binaries = %d, want in the paper's regime (~147)", spec)
	}
	if len(ts.CompileFailures) == 0 {
		t.Error("expected some compile failures")
	}
	if len(ts.CompileSiteFailures) == 0 {
		t.Error("expected some compile-site execution failures")
	}
}

func TestMigrationsOnlyMatchingImpl(t *testing.T) {
	tb, ts, _ := sharedEval(t)
	migs := Migrations(tb, ts)
	if len(migs) == 0 {
		t.Fatal("no migrations")
	}
	for _, m := range migs {
		if m.Target == m.Bin.BuildSite {
			t.Fatalf("migration to build site: %s", m.Bin.ID())
		}
		site := tb.ByName[m.Target]
		found := false
		for _, rec := range site.Stacks {
			if rec.Impl == m.Bin.Impl {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s migrated to %s without a matching implementation", m.Bin.ID(), m.Target)
		}
	}
	// MPICH2 binaries only flow between india and fir.
	for _, m := range migs {
		if m.Bin.Impl == "mpich2" && m.Target != "india" && m.Target != "fir" {
			t.Errorf("mpich2 binary migrated to %s", m.Target)
		}
	}
	t.Logf("migration pairs: %d", len(migs))
}

func TestTable3Shape(t *testing.T) {
	_, _, ev := sharedEval(t)
	t3 := ev.Table3()
	for suite, name := range map[workload.Suite]string{workload.NPB: "NAS", workload.SPECMPI: "SPEC"} {
		b := t3.Basic[suite]
		e := t3.Extended[suite]
		t.Logf("Table III %s: basic %s, extended %s", name, b, e)
		// The paper: both modes above 90%.
		if b.Accuracy() < 0.88 {
			t.Errorf("%s basic accuracy = %.1f%%, want >= 90%%", name, 100*b.Accuracy())
		}
		if e.Accuracy() < 0.90 {
			t.Errorf("%s extended accuracy = %.1f%%, want >= 90%%", name, 100*e.Accuracy())
		}
		// Extended must not be worse than basic.
		if e.Accuracy()+0.02 < b.Accuracy() {
			t.Errorf("%s extended (%.1f%%) worse than basic (%.1f%%)",
				name, 100*e.Accuracy(), 100*b.Accuracy())
		}
	}
}

func TestTable4Shape(t *testing.T) {
	_, _, ev := sharedEval(t)
	t4 := ev.Table4()
	for suite, name := range map[workload.Suite]string{workload.NPB: "NAS", workload.SPECMPI: "SPEC"} {
		before := t4.Before[suite]
		after := t4.After[suite]
		t.Logf("Table IV %s: before %s, after %s, increase %.0f%%",
			name, before, after, t4.Increase(suite))
		// The paper: roughly half execute before resolution (58%/47%), and
		// resolution adds roughly a third more successes (33%/39%).
		if before.Pct() < 35 || before.Pct() > 72 {
			t.Errorf("%s before-resolution success = %.0f%%, want roughly half", name, before.Pct())
		}
		if after.Pct() <= before.Pct() {
			t.Errorf("%s resolution did not help: %.0f%% -> %.0f%%", name, before.Pct(), after.Pct())
		}
		if inc := t4.Increase(suite); inc < 12 || inc > 60 {
			t.Errorf("%s resolution increase = %.0f%%, want roughly a third", name, inc)
		}
	}
}

func TestStatsShape(t *testing.T) {
	_, _, ev := sharedEval(t)
	st := ev.Stats()
	t.Logf("max source phase %v, max target phase %v", st.MaxSource, st.MaxTarget)
	t.Logf("site bundles: %v", st.SiteBundleBytes)
	t.Logf("failure breakdown: %v", st.FailureBreakdown)
	t.Logf("pairs with resolution staging: %d", st.ResolvedPairs)
	// The paper: both phases < 5 minutes.
	if st.MaxSource.Minutes() >= 5 || st.MaxTarget.Minutes() >= 5 {
		t.Errorf("phase durations exceed five minutes: %v / %v", st.MaxSource, st.MaxTarget)
	}
	// Per-site bundles are tens of megabytes (paper: ~45 MB).
	for site, size := range st.SiteBundleBytes {
		if size < 4<<20 || size > 400<<20 {
			t.Errorf("%s bundle = %d bytes, want tens of MB", site, size)
		}
	}
	// Missing shared libraries dominate the failure classes (the paper:
	// "of the failing jobs, more than half were missing shared libraries").
	missing := st.FailureBreakdown["missing shared library"]
	total := st.FailureBreakdown.Total()
	if total == 0 || float64(missing)/float64(total) < 0.35 {
		t.Errorf("missing-library failures = %d of %d, want the dominant class", missing, total)
	}
	if st.ResolvedPairs == 0 {
		t.Error("resolution never staged anything")
	}
}

func TestBySite(t *testing.T) {
	tb, _, ev := sharedEval(t)
	rows := ev.BySite()
	if len(rows) != len(tb.Sites) {
		t.Fatalf("rows = %d, want %d", len(rows), len(tb.Sites))
	}
	totalPairs := 0
	for i, row := range rows {
		if i > 0 && rows[i-1].Site >= row.Site {
			t.Error("rows not sorted")
		}
		if row.Pairs != row.Extended.Total() || row.Pairs != row.After.Den {
			t.Errorf("%s: inconsistent counts %d/%d/%d", row.Site, row.Pairs, row.Extended.Total(), row.After.Den)
		}
		totalPairs += row.Pairs
		t.Logf("%-12s pairs=%-4d accuracy=%s success=%s", row.Site, row.Pairs, row.Extended, row.After)
	}
	if totalPairs != len(ev.Pairs) {
		t.Errorf("pairs sum %d != %d", totalPairs, len(ev.Pairs))
	}
	// forge hosts the broken MVAPICH2 stack: its success rate must trail
	// the best site.
	var best, forge float64
	for _, row := range rows {
		if row.After.Fraction() > best {
			best = row.After.Fraction()
		}
		if row.Site == "forge" {
			forge = row.After.Fraction()
		}
	}
	if forge >= best {
		t.Errorf("forge success %.2f should trail the best site %.2f", forge, best)
	}
}

func TestProbeCPUHoursAccounted(t *testing.T) {
	_, _, ev := sharedEval(t)
	if len(ev.ProbeCPUHours) != 5 {
		t.Fatalf("ProbeCPUHours = %v", ev.ProbeCPUHours)
	}
	total := 0.0
	for site, h := range ev.ProbeCPUHours {
		if h <= 0 {
			t.Errorf("%s: no probe accounting", site)
		}
		total += h
	}
	t.Logf("probe CPU hours: %v (total %.1f)", ev.ProbeCPUHours, total)
	// Probes are tiny debug-queue jobs: per-migration cost stays small
	// (the paper's point about debug-queue suitability).
	perPair := total / float64(len(ev.Pairs))
	if perPair > 0.2 {
		t.Errorf("probe cost per migration = %.3f CPU-hours, want small", perPair)
	}
}
