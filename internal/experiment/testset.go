package experiment

import (
	"fmt"

	"feam/internal/execsim"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

// TestBinary is one compiled application in the evaluation test set.
type TestBinary struct {
	Code      *workload.Code
	BuildSite string
	StackKey  string
	Impl      string
	Artifact  *toolchain.Artifact
	// Path is the conventional location of the binary on site filesystems.
	Path string
}

// ID identifies the binary.
func (b *TestBinary) ID() string { return b.Artifact.Name }

// TestSet is the paper's evaluation corpus: every (code, stack, site)
// combination that compiled AND executed at its compile site, mirroring the
// paper's attrition ("some benchmarks would not compile with certain MPI
// stack combinations while other binaries would not run at the site where
// they were compiled").
type TestSet struct {
	Binaries []*TestBinary
	// CompileFailures lists combinations rejected at build time.
	CompileFailures []string
	// CompileSiteFailures lists binaries that built but failed to run in
	// their own build environment.
	CompileSiteFailures []string
}

// CountBySuite returns the binary count for a suite.
func (ts *TestSet) CountBySuite(suite workload.Suite) int {
	n := 0
	for _, b := range ts.Binaries {
		if b.Code.Suite == suite {
			n++
		}
	}
	return n
}

// BuildTestSet compiles all fourteen codes with every stack at every site
// and verifies each binary at its compile site with the ground-truth
// simulator (stack activated, five retries).
func BuildTestSet(tb *testbed.Testbed, sim *execsim.Simulator) (*TestSet, error) {
	ts := &TestSet{}
	for _, site := range tb.Sites {
		for _, rec := range site.Stacks {
			for _, code := range workload.All() {
				art, err := toolchain.Compile(code, rec, site)
				if err != nil {
					ts.CompileFailures = append(ts.CompileFailures,
						fmt.Sprintf("%s @ %s/%s: %v", code.Name, site.Name, rec.Key, err))
					continue
				}
				ok, detail := runAtSite(sim, art, site, rec, nil)
				if !ok {
					ts.CompileSiteFailures = append(ts.CompileSiteFailures,
						fmt.Sprintf("%s: %s", art.Name, detail))
					continue
				}
				bin := &TestBinary{
					Code: code, BuildSite: site.Name, StackKey: rec.Key,
					Impl: rec.Impl, Artifact: art,
					Path: "/home/user/apps/" + art.Name,
				}
				if err := site.FS().WriteFile(bin.Path, art.Bytes); err != nil {
					return nil, err
				}
				ts.Binaries = append(ts.Binaries, bin)
			}
		}
	}
	return ts, nil
}

// runAtSite executes an artifact at a site under a stack with the site env
// activated for the run and restored afterwards.
func runAtSite(sim *execsim.Simulator, art *toolchain.Artifact, site *sitemodel.Site, rec *sitemodel.StackRecord, extraDirs []string) (bool, string) {
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	if rec != nil {
		if err := testbed.ActivateStack(site, rec.Key); err != nil {
			return false, err.Error()
		}
	}
	res := sim.Run(execsim.Request{Art: art, Site: site, Stack: rec, ExtraLibDirs: extraDirs})
	return res.Success(), res.Detail
}

// runAtSiteClass is runAtSite but returns the failure class for tallies.
func runAtSiteClass(sim *execsim.Simulator, art *toolchain.Artifact, site *sitemodel.Site, rec *sitemodel.StackRecord, extraDirs []string) execsim.Result {
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	if rec != nil {
		if err := testbed.ActivateStack(site, rec.Key); err != nil {
			return execsim.Result{Class: execsim.FailSystem, Detail: err.Error()}
		}
	}
	return sim.Run(execsim.Request{Art: art, Site: site, Stack: rec, ExtraLibDirs: extraDirs})
}

// Migration is one (binary, target site) evaluation pair. Only sites with a
// matching MPI implementation are targets — as in the paper, only those
// have any potential for successful execution.
type Migration struct {
	Bin    *TestBinary
	Target string
}

// Migrations enumerates the evaluation pairs.
func Migrations(tb *testbed.Testbed, ts *TestSet) []Migration {
	var out []Migration
	for _, bin := range ts.Binaries {
		for _, site := range tb.Sites {
			if site.Name == bin.BuildSite {
				continue
			}
			hasImpl := false
			for _, rec := range site.Stacks {
				if rec.Impl == bin.Impl {
					hasImpl = true
					break
				}
			}
			if hasImpl {
				out = append(out, Migration{Bin: bin, Target: site.Name})
			}
		}
	}
	return out
}
