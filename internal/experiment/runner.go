// Package experiment drives the paper's evaluation: it compiles the NPB and
// SPEC MPI2007 test set across the five-site testbed (Table II), migrates
// every binary to every target site with a matching MPI implementation,
// forms basic and extended FEAM predictions, executes the binaries with and
// without the resolution model, and tallies the prediction-accuracy
// (Table III) and resolution-impact (Table IV) results plus the §VI.C
// runtime and bundle-size statistics.
package experiment

import (
	"context"
	"fmt"
	"time"

	"feam/internal/batch"
	"feam/internal/execsim"
	"feam/internal/fault"
	"feam/internal/feam"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
)

// NewSimRunner adapts the ground-truth execution simulator to FEAM's
// ProgramRunner interface: it activates the named stack the way a user
// would, launches the probe, and reports the outcome text FEAM would read
// from the job's output.
func NewSimRunner(sim *execsim.Simulator) feam.RunnerFunc {
	return func(_ context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
		var rec *sitemodel.StackRecord
		snap := site.SnapshotEnv()
		defer site.RestoreEnv(snap)
		if stackKey != "" {
			rec = site.FindStack(stackKey)
			if rec == nil {
				return false, fmt.Sprintf("stack %s not installed", stackKey)
			}
			if err := testbed.ActivateStack(site, stackKey); err != nil {
				return false, err.Error()
			}
		}
		res := sim.Run(execsim.Request{
			Art: art, Site: site, Stack: rec, ExtraLibDirs: extraLibDirs,
		})
		return res.Success(), res.Detail
	}
}

// SimProbeRunner adapts the ground-truth simulator to FEAM's structured
// probe interface: failures carry the simulator's failure class directly
// (missing library, transient system error) instead of making FEAM guess
// by matching substrings of the job output. It also satisfies the legacy
// ProgramRunner interface for callers that only need (bool, string).
type SimProbeRunner struct {
	Sim *execsim.Simulator
}

// NewSimProbeRunner wraps a simulator as a structured probe runner.
func NewSimProbeRunner(sim *execsim.Simulator) *SimProbeRunner {
	return &SimProbeRunner{Sim: sim}
}

// RunProgram implements feam.ProgramRunner.
func (r *SimProbeRunner) RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
	res := r.RunProbe(ctx, art, site, stackKey, extraLibDirs)
	return res.Success, res.Detail
}

// RunProbe implements fault.ProbeRunner.
func (r *SimProbeRunner) RunProbe(_ context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) fault.ProbeResult {
	var rec *sitemodel.StackRecord
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	if stackKey != "" {
		rec = site.FindStack(stackKey)
		if rec == nil {
			return fault.ProbeResult{Detail: fmt.Sprintf("stack %s not installed", stackKey)}
		}
		if err := testbed.ActivateStack(site, stackKey); err != nil {
			return fault.ProbeResult{Detail: err.Error()}
		}
	}
	res := r.Sim.Run(execsim.Request{
		Art: art, Site: site, Stack: rec, ExtraLibDirs: extraLibDirs,
	})
	return fault.ProbeResult{
		Success:    res.Success(),
		Detail:     res.Detail,
		MissingLib: res.Class == execsim.FailMissingLib,
		Transient:  res.Transient(),
	}
}

// BeginProbeBatch implements fault.BatchProbeRunner: the environment
// snapshot, stack lookup, and stack activation happen once for the whole
// probe session instead of once per probe; Close restores the environment.
// A session whose stack cannot be activated still opens — every probe in it
// reports the setup failure, matching what per-probe execution would say.
func (r *SimProbeRunner) BeginProbeBatch(_ context.Context, site *sitemodel.Site, stackKey string) fault.ProbeBatch {
	b := &simProbeBatch{sim: r.Sim, site: site, snap: site.SnapshotEnv()}
	if stackKey != "" {
		b.rec = site.FindStack(stackKey)
		if b.rec == nil {
			site.RestoreEnv(b.snap)
			return &failedProbeBatch{detail: fmt.Sprintf("stack %s not installed", stackKey)}
		}
		if err := testbed.ActivateStack(site, stackKey); err != nil {
			site.RestoreEnv(b.snap)
			return &failedProbeBatch{detail: err.Error()}
		}
	}
	return b
}

// simProbeBatch is one open probe session against the simulator: the stack
// environment stays activated across probes and is restored on Close.
type simProbeBatch struct {
	sim  *execsim.Simulator
	site *sitemodel.Site
	rec  *sitemodel.StackRecord
	snap sitemodel.Snapshot
}

// RunProbe implements fault.ProbeBatch.
func (b *simProbeBatch) RunProbe(_ context.Context, art *toolchain.Artifact, extraLibDirs []string) fault.ProbeResult {
	res := b.sim.Run(execsim.Request{
		Art: art, Site: b.site, Stack: b.rec, ExtraLibDirs: extraLibDirs,
	})
	return fault.ProbeResult{
		Success:    res.Success(),
		Detail:     res.Detail,
		MissingLib: res.Class == execsim.FailMissingLib,
		Transient:  res.Transient(),
	}
}

// Close implements fault.ProbeBatch.
func (b *simProbeBatch) Close() { b.site.RestoreEnv(b.snap) }

// failedProbeBatch is a probe session whose setup failed; every probe
// reports the setup failure.
type failedProbeBatch struct{ detail string }

// RunProbe implements fault.ProbeBatch.
func (b *failedProbeBatch) RunProbe(context.Context, *toolchain.Artifact, []string) fault.ProbeResult {
	return fault.ProbeResult{Detail: b.detail}
}

// Close implements fault.ProbeBatch.
func (b *failedProbeBatch) Close() {}

// NewBatchRunner is NewSimRunner routed through each site's batch system:
// probe programs are submitted to the debug queue with the paper's retry
// policy, so queue waits and CPU-hour accounting accrue on the site's
// cluster — the §VI.C "running on compute nodes does use allocation hours"
// measurement.
func NewBatchRunner(sim *execsim.Simulator, tb *testbed.Testbed) feam.RunnerFunc {
	return func(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
		cluster := tb.Clusters[site.Name]
		if cluster == nil {
			return NewSimRunner(sim)(ctx, art, site, stackKey, extraLibDirs)
		}
		var rec *sitemodel.StackRecord
		snap := site.SnapshotEnv()
		defer site.RestoreEnv(snap)
		if stackKey != "" {
			rec = site.FindStack(stackKey)
			if rec == nil {
				return false, fmt.Sprintf("stack %s not installed", stackKey)
			}
			if err := testbed.ActivateStack(site, stackKey); err != nil {
				return false, err.Error()
			}
		}
		// Per-attempt simulator: the batch layer owns the retry loop.
		oneShot := *sim
		oneShot.MaxAttempts = 1
		spec := batch.ScriptSpec{
			Manager: cluster.Manager, JobName: "feam-probe", Queue: "debug",
			Nodes: 1, Tasks: 4, WallTime: 10 * time.Minute,
			Command: "mpiexec -n 4 " + art.Name,
		}
		result, err := cluster.Submit(spec, func(attempt int) (bool, string, time.Duration) {
			res := oneShot.Run(execsim.Request{
				Art: art, Site: site, Stack: rec, ExtraLibDirs: extraLibDirs,
			})
			return res.Success(), res.Detail, res.RunTime
		}, 5, 5*time.Minute)
		if err != nil {
			return false, err.Error()
		}
		return result.Success, result.Output
	}
}
