package experiment

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"feam/internal/batch"
	"feam/internal/execsim"
	"feam/internal/feam"
	"feam/internal/metrics"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/usereffort"
	"feam/internal/workload"
)

// PairOutcome is the complete record for one migration pair.
type PairOutcome struct {
	Migration
	// Basic and Extended are FEAM's predictions without/with the source
	// phase.
	Basic    *feam.Prediction
	Extended *feam.Prediction
	// ActualBefore/ActualAfter are the ground-truth executions without and
	// with the resolution model's staged libraries.
	ActualBefore execsim.Result
	ActualAfter  execsim.Result
	// StackUsed is the stack key the actual executions selected.
	StackUsed string
}

// Evaluation aggregates a full experiment run.
type Evaluation struct {
	Set   *TestSet
	Pairs []*PairOutcome

	// Bundles maps binary ID to its source-phase bundle.
	Bundles map[string]*feam.Bundle
	// SourceDurations/TargetDurations are simulated FEAM phase times.
	SourceDurations []time.Duration
	TargetDurations []time.Duration
	// ProbeCPUHours is, per site, the allocation hours FEAM's probe jobs
	// consumed through the batch system (§VI.C accounting).
	ProbeCPUHours map[string]float64
}

// Run executes the entire evaluation pipeline. FEAM's probe jobs are
// submitted through each site's batch system so allocation-hour accounting
// accrues. Work is spread across CPUs with one worker per site: everything
// that touches a given site's filesystem, environment, or batch cluster is
// serialized by the engine's per-site lock, and results land at
// deterministic indices, so the outcome is identical to a sequential run.
func Run(tb *testbed.Testbed, ts *TestSet, sim *execsim.Simulator) (*Evaluation, error) {
	return RunWithConcurrency(tb, ts, sim, len(tb.Sites))
}

// RunWithConcurrency is Run with an explicit worker count (1 = sequential).
// Each run gets a fresh engine so cached site surveys never leak between
// experiments.
func RunWithConcurrency(tb *testbed.Testbed, ts *TestSet, sim *execsim.Simulator, workers int) (*Evaluation, error) {
	return RunWithEngine(context.Background(), feam.New(), tb, ts, sim, workers)
}

// RunWithEngine is the full pipeline over a caller-supplied engine — the
// engine's BDC/EDC caches and per-site locks are shared with any other
// concurrent engine user (e.g. a RankSites survey running alongside the
// experiment).
func RunWithEngine(ctx context.Context, eng *feam.Engine, tb *testbed.Testbed, ts *TestSet, sim *execsim.Simulator, workers int) (*Evaluation, error) {
	if workers < 1 {
		workers = 1
	}
	runner := NewBatchRunner(sim, tb)
	ev := &Evaluation{Set: ts, Bundles: map[string]*feam.Bundle{}}

	// Phase I at every binary's guaranteed execution environment.
	bundles := make([]*feam.Bundle, len(ts.Binaries))
	sourceDur := make([]time.Duration, len(ts.Binaries))
	if err := forEach(len(ts.Binaries), workers, func(i int) error {
		bin := ts.Binaries[i]
		site := tb.ByName[bin.BuildSite]
		lock := eng.SiteLock(bin.BuildSite)
		lock.Lock()
		defer lock.Unlock()
		snap := site.SnapshotEnv()
		if err := testbed.ActivateStack(site, bin.StackKey); err != nil {
			site.RestoreEnv(snap)
			return err
		}
		cfg := configFor(tb, bin.BuildSite, "source", bin.Path)
		bundle, report, err := eng.RunSourcePhase(ctx, cfg, site, runner)
		site.RestoreEnv(snap)
		if err != nil {
			return fmt.Errorf("experiment: source phase for %s: %v", bin.ID(), err)
		}
		bundles[i] = bundle
		sourceDur[i] = report.Total()
		return nil
	}); err != nil {
		return nil, err
	}
	for i, bin := range ts.Binaries {
		ev.Bundles[bin.ID()] = bundles[i]
		ev.SourceDurations = append(ev.SourceDurations, sourceDur[i])
	}

	// Phase II at every target, plus ground-truth executions.
	migs := Migrations(tb, ts)
	pairs := make([]*PairOutcome, len(migs))
	targetDur := make([][2]time.Duration, len(migs))
	if err := forEach(len(migs), workers, func(i int) error {
		mig := migs[i]
		target := tb.ByName[mig.Target]
		bin := mig.Bin
		lock := eng.SiteLock(mig.Target)
		lock.Lock()
		defer lock.Unlock()
		if err := target.FS().WriteFile(bin.Path, bin.Artifact.Bytes); err != nil {
			return err
		}
		cfg := configFor(tb, mig.Target, "target", bin.Path)

		basic, reportB, err := eng.RunTargetPhase(ctx, cfg, target, nil, runner)
		if err != nil {
			return fmt.Errorf("experiment: basic target phase %s@%s: %v", bin.ID(), mig.Target, err)
		}
		bundle := ev.Bundles[bin.ID()]
		extended, reportE, err := eng.RunTargetPhase(ctx, cfg, target, bundle, runner)
		if err != nil {
			return fmt.Errorf("experiment: extended target phase %s@%s: %v", bin.ID(), mig.Target, err)
		}
		targetDur[i] = [2]time.Duration{reportB.Total(), reportE.Total()}

		// Ground truth: the user launches with the best matching stack (the
		// one FEAM selected when it selected one).
		stackKey := extended.StackKey()
		if stackKey == "" {
			stackKey = basic.StackKey()
		}
		if stackKey == "" {
			stackKey = defaultStackChoice(target, bin)
		}
		rec := target.FindStack(stackKey)
		before := runAtSiteClass(sim, bin.Artifact, target, rec, nil)
		after := runAtSiteClass(sim, bin.Artifact, target, rec, extended.ExtraLibDirs())

		pairs[i] = &PairOutcome{
			Migration: mig, Basic: basic, Extended: extended,
			ActualBefore: before, ActualAfter: after, StackUsed: stackKey,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	ev.Pairs = pairs
	for _, d := range targetDur {
		ev.TargetDurations = append(ev.TargetDurations, d[0], d[1])
	}
	ev.ProbeCPUHours = map[string]float64{}
	for name, cluster := range tb.Clusters {
		ev.ProbeCPUHours[name] = cluster.CPUHoursUsed()
	}
	return ev, nil
}

// forEach runs fn(0..n-1) across the given number of workers, returning the
// first error (remaining items still run; indices are dispatched through a
// channel so per-site locking provides the only ordering constraint).
func forEach(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	indices := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := range indices {
				if err := fn(i); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			errs <- firstErr
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// defaultStackChoice picks the stack a user would select by hand: the first
// advertised stack with the binary's implementation, preferring the build
// compiler family.
func defaultStackChoice(site *sitemodel.Site, bin *TestBinary) string {
	family := bin.Artifact.Truth.CompilerFamily
	var fallback string
	for _, rec := range site.Stacks {
		if rec.Impl != bin.Impl {
			continue
		}
		if rec.CompilerFamily == family {
			return rec.Key
		}
		if fallback == "" {
			fallback = rec.Key
		}
	}
	return fallback
}

// configFor builds the per-site FEAM configuration: submission scripts in
// the site's native batch dialect with the %CMD% placeholder, and the
// standard launch commands.
func configFor(tb *testbed.Testbed, siteName, phase, binaryPath string) *feam.Config {
	spec := tb.Specs[siteName]
	serial := batch.Generate(batch.ScriptSpec{
		Manager: spec.Manager, JobName: "feam-serial", Queue: "debug",
		Nodes: 1, Tasks: 1, WallTime: 10 * time.Minute, Command: batch.CmdPlaceholder,
	})
	parallel := batch.Generate(batch.ScriptSpec{
		Manager: spec.Manager, JobName: "feam-parallel", Queue: "debug",
		Nodes: 1, Tasks: 4, WallTime: 15 * time.Minute, Command: batch.CmdPlaceholder,
	})
	return &feam.Config{
		Phase:          phase,
		BinaryPath:     binaryPath,
		SerialScript:   serial,
		ParallelScript: parallel,
		MpiexecByImpl:  map[string]string{"mvapich2": "mpirun_rsh"},
	}
}

// ---------------------------------------------------------------------------
// Table III — prediction accuracy.

// Table3 holds prediction-accuracy confusion matrices per suite and mode.
type Table3 struct {
	Basic    map[workload.Suite]*metrics.Confusion
	Extended map[workload.Suite]*metrics.Confusion
}

// Table3 compares predictions against actual executions: basic predictions
// against runs without resolution, extended predictions against runs with
// the resolution configuration applied.
func (ev *Evaluation) Table3() *Table3 {
	t := &Table3{
		Basic:    map[workload.Suite]*metrics.Confusion{workload.NPB: {}, workload.SPECMPI: {}},
		Extended: map[workload.Suite]*metrics.Confusion{workload.NPB: {}, workload.SPECMPI: {}},
	}
	for _, p := range ev.Pairs {
		suite := p.Bin.Code.Suite
		t.Basic[suite].Add(p.Basic.Ready, p.ActualBefore.Success())
		t.Extended[suite].Add(p.Extended.Ready, p.ActualAfter.Success())
	}
	return t
}

// ---------------------------------------------------------------------------
// Table IV — resolution impact.

// Table4 holds before/after success rates and the relative increase.
type Table4 struct {
	Before map[workload.Suite]*metrics.Rate
	After  map[workload.Suite]*metrics.Rate
}

// Increase returns the relative improvement for a suite.
func (t *Table4) Increase(s workload.Suite) float64 {
	return metrics.RelativeIncrease(*t.Before[s], *t.After[s])
}

// Table4 computes actual execution success before and after resolution.
func (ev *Evaluation) Table4() *Table4 {
	t := &Table4{
		Before: map[workload.Suite]*metrics.Rate{workload.NPB: {}, workload.SPECMPI: {}},
		After:  map[workload.Suite]*metrics.Rate{workload.NPB: {}, workload.SPECMPI: {}},
	}
	for _, p := range ev.Pairs {
		suite := p.Bin.Code.Suite
		t.Before[suite].Add(p.ActualBefore.Success())
		t.After[suite].Add(p.ActualAfter.Success())
	}
	return t
}

// ---------------------------------------------------------------------------
// §VI.C statistics.

// Stats summarizes runtimes, bundle sizes, and the failure breakdown.
type Stats struct {
	// MaxSource/MaxTarget are the worst simulated FEAM phase durations —
	// the paper's "<5 minutes" claim.
	MaxSource time.Duration
	MaxTarget time.Duration
	// SiteBundleBytes is, per build site, the size of the union of all
	// library copies gathered for that site's binaries (the paper's ~45 MB
	// per-site bundle).
	SiteBundleBytes map[string]int
	// FailureBreakdown tallies pre-resolution failure classes.
	FailureBreakdown metrics.Tally
	// ResolvedPairs counts migrations where resolution staged libraries.
	ResolvedPairs int
}

// Stats computes the §VI.C statistics.
func (ev *Evaluation) Stats() *Stats {
	st := &Stats{SiteBundleBytes: map[string]int{}, FailureBreakdown: metrics.Tally{}}
	for _, d := range ev.SourceDurations {
		if d > st.MaxSource {
			st.MaxSource = d
		}
	}
	for _, d := range ev.TargetDurations {
		if d > st.MaxTarget {
			st.MaxTarget = d
		}
	}
	// Per-site union of gathered library copies.
	type key struct{ site, lib string }
	seen := map[key]bool{}
	for _, bin := range ev.Set.Binaries {
		bundle := ev.Bundles[bin.ID()]
		if bundle == nil {
			continue
		}
		for _, lc := range bundle.Libs {
			k := key{bin.BuildSite, lc.Name}
			if !seen[k] {
				seen[k] = true
				st.SiteBundleBytes[bin.BuildSite] += len(lc.Data)
			}
		}
	}
	for _, p := range ev.Pairs {
		if !p.ActualBefore.Success() {
			st.FailureBreakdown.Add(p.ActualBefore.Class.String())
		}
		if len(p.Extended.ResolvedLibs) > 0 {
			st.ResolvedPairs++
		}
	}
	return st
}

// EffortProfiles derives the user-effort model inputs (the paper's §VII
// future work) from the evaluation: one profile per migration pair,
// reflecting how much site preparation that pair would have demanded by
// hand.
func (ev *Evaluation) EffortProfiles(tb *testbed.Testbed) []usereffort.MigrationProfile {
	seenSite := map[string]bool{}
	var out []usereffort.MigrationProfile
	for _, p := range ev.Pairs {
		target := tb.ByName[p.Target]
		candidates := 0
		for _, rec := range target.Stacks {
			if rec.Impl == p.Bin.Impl {
				candidates++
			}
		}
		out = append(out, usereffort.MigrationProfile{
			Stacks:           len(target.Stacks),
			CandidateStacks:  candidates,
			MissingLibraries: len(p.Basic.MissingLibs),
			HasEnvTool:       target.EnvTool() != nil,
			FirstVisit:       !seenSite[p.Target],
		})
		seenSite[p.Target] = true
	}
	return out
}

// SiteRow is one target site's slice of the evaluation.
type SiteRow struct {
	Site string
	// Pairs is the number of migrations targeting the site.
	Pairs int
	// Extended is the extended-prediction confusion at the site.
	Extended metrics.Confusion
	// After is the post-resolution execution success at the site.
	After metrics.Rate
}

// BySite breaks the evaluation down per target site, ordered by site name.
func (ev *Evaluation) BySite() []SiteRow {
	idx := map[string]int{}
	var rows []SiteRow
	for _, p := range ev.Pairs {
		i, ok := idx[p.Target]
		if !ok {
			i = len(rows)
			idx[p.Target] = i
			rows = append(rows, SiteRow{Site: p.Target})
		}
		rows[i].Pairs++
		rows[i].Extended.Add(p.Extended.Ready, p.ActualAfter.Success())
		rows[i].After.Add(p.ActualAfter.Success())
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Site < rows[j].Site })
	return rows
}
