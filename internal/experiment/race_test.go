package experiment

import (
	"sync/atomic"
	"testing"

	"feam/internal/execsim"
)

func TestForEachRace(t *testing.T) {
	var count int64
	err := forEach(1000, 8, func(i int) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil || count != 1000 {
		t.Fatalf("count=%d err=%v", count, err)
	}
}

func TestParallelRunRaceSmall(t *testing.T) {
	tb := smallTestbed(t)
	sim := execsim.NewSimulator(7)
	ts, err := BuildTestSet(tb, sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithConcurrency(tb, ts, sim, 4); err != nil {
		t.Fatal(err)
	}
}
