package experiment

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"feam/internal/execsim"
	"feam/internal/feam"
)

func TestForEachRace(t *testing.T) {
	var count int64
	err := forEach(1000, 8, func(i int) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil || count != 1000 {
		t.Fatalf("count=%d err=%v", count, err)
	}
}

func TestParallelRunRaceSmall(t *testing.T) {
	tb := smallTestbed(t)
	sim := execsim.NewSimulator(7)
	ts, err := BuildTestSet(tb, sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithConcurrency(tb, ts, sim, 4); err != nil {
		t.Fatal(err)
	}
}

// TestSharedEngineRace drives a full concurrent experiment and concurrent
// site rankings through ONE engine at the same time. Under -race this
// exercises the BDC/EDC caches, the per-site locks and the observer list
// from every direction at once.
func TestSharedEngineRace(t *testing.T) {
	tb := smallTestbed(t)
	sim := execsim.NewSimulator(7)
	ts, err := BuildTestSet(tb, sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Binaries) == 0 {
		t.Fatal("empty test set")
	}
	bin := ts.Binaries[0]

	ctx := context.Background()
	eng := feam.New()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := RunWithEngine(ctx, eng, tb, ts, sim, 4); err != nil {
			errs <- err
		}
	}()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			desc, err := eng.Describe(ctx, bin.Artifact.Bytes, bin.Path)
			if err != nil {
				errs <- err
				return
			}
			ranked := eng.RankSitesParallel(ctx, desc, bin.Artifact.Bytes, tb.Sites,
				feam.EvalOptions{Runner: NewSimRunner(sim)}, len(tb.Sites))
			for _, a := range ranked {
				if a.Err != nil {
					errs <- a.Err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
