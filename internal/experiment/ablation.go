package experiment

import (
	"context"
	"fmt"

	"feam/internal/execsim"
	"feam/internal/feam"
	"feam/internal/metrics"
	"feam/internal/testbed"
	"feam/internal/workload"
)

// AblationConfig selects which FEAM mechanism to disable.
type AblationConfig struct {
	// Name labels the configuration.
	Name string
	// DisableResolution skips the resolution model entirely.
	DisableResolution bool
	// ShallowResolution stages copies without the recursive dependency
	// checks of §IV.
	ShallowResolution bool
	// NoProbes disables the hello-world stack usability tests; stack
	// presence alone satisfies the MPI determinant.
	NoProbes bool
}

// AblationConfigs returns the standard ablation ladder: the full system and
// one configuration per disabled mechanism.
func AblationConfigs() []AblationConfig {
	return []AblationConfig{
		{Name: "full"},
		{Name: "no-resolution", DisableResolution: true},
		{Name: "shallow-resolution", ShallowResolution: true},
		{Name: "no-probes", NoProbes: true},
	}
}

// Evaluators builds the determinant registry this configuration runs with:
// the full §V.C ladder, with individual evaluators reconfigured rather
// than the evaluation special-cased.
func (cfg AblationConfig) Evaluators() []feam.DeterminantEvaluator {
	return []feam.DeterminantEvaluator{
		feam.ISAEvaluator{},
		feam.CLibraryEvaluator{},
		feam.MPIStackEvaluator{PresenceOnly: cfg.NoProbes},
		feam.SharedLibsEvaluator{
			DisableResolution: cfg.DisableResolution,
			ShallowResolution: cfg.ShallowResolution,
		},
	}
}

// AblationResult summarizes one configuration across the migration matrix.
type AblationResult struct {
	Config AblationConfig
	// Accuracy is the extended-prediction confusion per suite.
	Accuracy map[workload.Suite]*metrics.Confusion
	// Success is the post-configuration execution success per suite.
	Success map[workload.Suite]*metrics.Rate
}

// RunAblations evaluates every ablation configuration over the migration
// matrix. One engine spans all configurations: the source-phase bundles,
// binary descriptions, and environment surveys are computed once and
// shared (the ablations are all target-side, differing only in their
// determinant registries).
func RunAblations(tb *testbed.Testbed, ts *TestSet, sim *execsim.Simulator) ([]AblationResult, error) {
	ctx := context.Background()
	eng := feam.New()
	runner := NewSimRunner(sim)

	// Source phases once.
	bundles := map[string]*feam.Bundle{}
	for _, bin := range ts.Binaries {
		site := tb.ByName[bin.BuildSite]
		snap := site.SnapshotEnv()
		if err := testbed.ActivateStack(site, bin.StackKey); err != nil {
			site.RestoreEnv(snap)
			return nil, err
		}
		bundle, _, err := eng.RunSourcePhase(ctx, configFor(tb, bin.BuildSite, "source", bin.Path), site, runner)
		site.RestoreEnv(snap)
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation source phase %s: %v", bin.ID(), err)
		}
		bundles[bin.ID()] = bundle
	}

	// Environment descriptions once per target site, before any staging
	// mutates the sites (every configuration sees the same pristine
	// survey).
	envs := map[string]*feam.EnvironmentDescription{}
	for _, site := range tb.Sites {
		env, err := eng.Discover(ctx, site)
		if err != nil {
			return nil, err
		}
		envs[site.Name] = env
	}

	migs := Migrations(tb, ts)
	var results []AblationResult
	for _, cfg := range AblationConfigs() {
		res := AblationResult{
			Config:   cfg,
			Accuracy: map[workload.Suite]*metrics.Confusion{workload.NPB: {}, workload.SPECMPI: {}},
			Success:  map[workload.Suite]*metrics.Rate{workload.NPB: {}, workload.SPECMPI: {}},
		}
		evaluators := cfg.Evaluators()
		for _, mig := range migs {
			target := tb.ByName[mig.Target]
			bin := mig.Bin
			desc, err := eng.Describe(ctx, bin.Artifact.Bytes, bin.Path)
			if err != nil {
				return nil, err
			}
			opts := feam.EvalOptions{
				Bundle:     bundles[bin.ID()],
				Runner:     runner,
				Resolve:    true,
				Evaluators: evaluators,
				StageDir:   fmt.Sprintf("/home/user/feam/ablate-%s/%s", cfg.Name, bin.ID()),
			}
			pred, err := eng.Evaluate(ctx, desc, bin.Artifact.Bytes, envs[mig.Target], target, opts)
			if err != nil {
				return nil, err
			}
			stackKey := pred.StackKey()
			if stackKey == "" {
				stackKey = defaultStackChoice(target, bin)
			}
			rec := target.FindStack(stackKey)
			actual := runAtSiteClass(sim, bin.Artifact, target, rec, pred.ExtraLibDirs())
			suite := bin.Code.Suite
			res.Accuracy[suite].Add(pred.Ready, actual.Success())
			res.Success[suite].Add(actual.Success())
		}
		results = append(results, res)
	}
	return results, nil
}
