package experiment

import (
	"testing"

	"feam/internal/execsim"
	"feam/internal/testbed"
	"feam/internal/workload"
)

// smallTestbed builds a two-site world (ranger + india) so the ablation
// matrix stays cheap.
func smallTestbed(t *testing.T) *testbed.Testbed {
	t.Helper()
	specs := testbed.DefaultSpecs()
	var picked []testbed.SiteSpec
	for _, s := range specs {
		if s.Name == "ranger" || s.Name == "india" {
			picked = append(picked, s)
		}
	}
	tb, err := testbed.BuildFrom(picked)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestRunAblations(t *testing.T) {
	tb := smallTestbed(t)
	sim := execsim.NewSimulator(5)
	sim.TransientRate = 0
	ts, err := BuildTestSet(tb, sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Binaries) == 0 {
		t.Fatal("empty test set")
	}
	results, err := RunAblations(tb, ts, sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("configs = %d", len(results))
	}
	byName := map[string]AblationResult{}
	for _, r := range results {
		byName[r.Config.Name] = r
	}
	total := func(r AblationResult, f func(workload.Suite) float64) float64 {
		return f(workload.NPB) + f(workload.SPECMPI)
	}
	successOf := func(r AblationResult) float64 {
		return total(r, func(s workload.Suite) float64 { return float64(r.Success[s].Num) })
	}
	full, noRes := byName["full"], byName["no-resolution"]
	shallow, noProbes := byName["shallow-resolution"], byName["no-probes"]

	// Resolution drives successes: disabling it must lose executions.
	if successOf(noRes) >= successOf(full) {
		t.Errorf("no-resolution successes %v >= full %v", successOf(noRes), successOf(full))
	}
	// Shallow resolution can stage at most what recursive staging does.
	if successOf(shallow) > successOf(full) {
		t.Errorf("shallow successes %v > full %v", successOf(shallow), successOf(full))
	}
	// Probes protect accuracy: without them, broken stacks and
	// cross-compatibility crashes go unpredicted. (ranger+india include a
	// broken PGI stack, so this must cost at least a little.)
	accOf := func(r AblationResult) float64 {
		c := 0.0
		n := 0.0
		for _, s := range []workload.Suite{workload.NPB, workload.SPECMPI} {
			c += float64(r.Accuracy[s].Correct())
			n += float64(r.Accuracy[s].Total())
		}
		return c / n
	}
	if accOf(noProbes) > accOf(full) {
		t.Errorf("no-probes accuracy %.3f > full %.3f", accOf(noProbes), accOf(full))
	}
	t.Logf("ablation: full acc=%.3f succ=%v; no-resolution acc=%.3f succ=%v; shallow succ=%v; no-probes acc=%.3f",
		accOf(full), successOf(full), accOf(noRes), successOf(noRes), successOf(shallow), accOf(noProbes))
}

// TestSeedStability: the evaluation shape is robust to the stochastic
// system-error seed — prediction accuracy stays high and resolution keeps
// helping across seeds.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed evaluation is slow")
	}
	for _, seed := range []int64{1, 99, 20130610} {
		tb := smallTestbed(t) // fresh sites per seed: staging dirs differ
		sim := execsim.NewSimulator(seed)
		ts, err := BuildTestSet(tb, sim)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Run(tb, ts, sim)
		if err != nil {
			t.Fatal(err)
		}
		t3, t4 := ev.Table3(), ev.Table4()
		for _, suite := range []workload.Suite{workload.NPB, workload.SPECMPI} {
			if acc := t3.Extended[suite].Accuracy(); acc < 0.88 {
				t.Errorf("seed %d %v: extended accuracy %.2f", seed, suite, acc)
			}
			before, after := t4.Before[suite], t4.After[suite]
			if after.Num < before.Num {
				t.Errorf("seed %d %v: resolution lost successes (%d -> %d)",
					seed, suite, before.Num, after.Num)
			}
		}
		t.Logf("seed %d: NAS ext %s, SPEC ext %s", seed,
			t3.Extended[workload.NPB], t3.Extended[workload.SPECMPI])
	}
}

// TestRunConcurrencyEquivalence: the parallel driver produces exactly the
// sequential results — per-pair predictions and outcomes included.
func TestRunConcurrencyEquivalence(t *testing.T) {
	runOnce := func(workers int) *Evaluation {
		tb := smallTestbed(t)
		sim := execsim.NewSimulator(7)
		ts, err := BuildTestSet(tb, sim)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := RunWithConcurrency(tb, ts, sim, workers)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	seq := runOnce(1)
	par := runOnce(4)
	if len(seq.Pairs) != len(par.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(seq.Pairs), len(par.Pairs))
	}
	for i := range seq.Pairs {
		a, b := seq.Pairs[i], par.Pairs[i]
		if a.Bin.ID() != b.Bin.ID() || a.Target != b.Target {
			t.Fatalf("pair %d identity differs: %s@%s vs %s@%s",
				i, a.Bin.ID(), a.Target, b.Bin.ID(), b.Target)
		}
		if a.Basic.Ready != b.Basic.Ready || a.Extended.Ready != b.Extended.Ready {
			t.Errorf("pair %d predictions differ", i)
		}
		if a.ActualBefore.Class != b.ActualBefore.Class || a.ActualAfter.Class != b.ActualAfter.Class {
			t.Errorf("pair %d outcomes differ: %v/%v vs %v/%v", i,
				a.ActualBefore.Class, a.ActualAfter.Class, b.ActualBefore.Class, b.ActualAfter.Class)
		}
		if a.StackUsed != b.StackUsed {
			t.Errorf("pair %d stacks differ: %q vs %q", i, a.StackUsed, b.StackUsed)
		}
	}
	// Aggregate tables agree exactly.
	s3, p3 := seq.Table3(), par.Table3()
	for _, suite := range []workload.Suite{workload.NPB, workload.SPECMPI} {
		if *s3.Extended[suite] != *p3.Extended[suite] || *s3.Basic[suite] != *p3.Basic[suite] {
			t.Errorf("%v confusion differs", suite)
		}
	}
}
