package libver

import (
	"fmt"
	"strings"
)

// Soname describes a shared-object name following the Unix convention
// lib<stem>.so.<major>[.<minor>[.<release>...]]. The soname recorded in
// DT_SONAME usually carries only the major version; the installed file name
// often carries the full version.
type Soname struct {
	// Stem is the library name without the "lib" prefix and ".so" suffix,
	// e.g. "mpich" for libmpich.so.1.2.
	Stem string
	// Version holds the numeric components after ".so.". It may be empty
	// for unversioned objects such as plain "libdl.so".
	Version Version
}

// ParseSoname parses a shared-object file or soname string. It accepts
// "libfoo.so", "libfoo.so.1", and "libfoo.so.1.2.3" forms, with or without a
// leading directory.
func ParseSoname(name string) (Soname, error) {
	base := name
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if !strings.HasPrefix(base, "lib") {
		return Soname{}, fmt.Errorf("libver: %q does not follow the lib<name>.so convention", name)
	}
	// Anchor on the LAST ".so" that ends the name or is followed by a
	// version dot. Matching the first ".so" substring misparses stems that
	// themselves contain ".so" — "libfoo.sock.so.1" is stem "foo.sock",
	// not a malformed version "ck.so.1".
	idx := -1
	for i := len(base) - len(".so"); i >= 0; i-- {
		if base[i:i+len(".so")] != ".so" {
			continue
		}
		if i+len(".so") == len(base) || base[i+len(".so")] == '.' {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Soname{}, fmt.Errorf("libver: %q has no .so suffix", name)
	}
	stem := base[len("lib"):idx]
	if stem == "" {
		return Soname{}, fmt.Errorf("libver: %q has an empty library stem", name)
	}
	rest := base[idx+len(".so"):]
	if rest == "" {
		return Soname{Stem: stem}, nil
	}
	v, err := ParseVersion(rest[1:])
	if err != nil {
		return Soname{}, fmt.Errorf("libver: %q: %v", name, err)
	}
	return Soname{Stem: stem, Version: v}, nil
}

// String renders the soname in canonical form.
func (s Soname) String() string {
	if s.Version.IsZero() {
		return "lib" + s.Stem + ".so"
	}
	return "lib" + s.Stem + ".so." + s.Version.String()
}

// Major returns the major version component (0 when unversioned).
func (s Soname) Major() int { return s.Version.Major() }

// LinkName returns the soname truncated to the major version, the form that
// appears in DT_SONAME and DT_NEEDED entries: libfoo.so.1.
func (s Soname) LinkName() string {
	if s.Version.IsZero() {
		return "lib" + s.Stem + ".so"
	}
	return fmt.Sprintf("lib%s.so.%d", s.Stem, s.Version.Major())
}

// CompatibleWith implements the paper's shared-library compatibility rule:
// two shared objects are API-compatible when they share the stem and the
// major version number. Minor and release components are ignored.
func (s Soname) CompatibleWith(o Soname) bool {
	return s.Stem == o.Stem && s.Major() == o.Major()
}

// SatisfiesNeeded reports whether an installed object named by s (possibly
// fully versioned, e.g. libmpich.so.1.2) satisfies a DT_NEEDED reference
// (usually major-only, e.g. libmpich.so.1). An unversioned reference is
// satisfied by any version of the same stem.
func (s Soname) SatisfiesNeeded(needed Soname) bool {
	if s.Stem != needed.Stem {
		return false
	}
	if needed.Version.IsZero() {
		return true
	}
	return s.Major() == needed.Major()
}

// IsCLibrary reports whether the soname names the system C library.
func (s Soname) IsCLibrary() bool { return s.Stem == "c" }

// IsDynamicLoaderName reports whether a file or NEEDED name refers to the
// dynamic loader (ld-linux*.so*, ld.so*), which does not follow the
// lib<name>.so convention and is never copied by the resolution model.
func IsDynamicLoaderName(name string) bool {
	base := name
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return strings.HasPrefix(base, "ld-linux") || strings.HasPrefix(base, "ld.so") ||
		strings.HasPrefix(base, "ld64.so")
}

// IsCLibraryName reports whether a file or NEEDED name refers to the system
// C library (libc.so*).
func IsCLibraryName(name string) bool {
	s, err := ParseSoname(name)
	return err == nil && s.IsCLibrary()
}
