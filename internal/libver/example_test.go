package libver_test

import (
	"fmt"

	"feam/internal/libver"
)

func ExampleParseSoname() {
	sn, _ := libver.ParseSoname("/usr/lib64/libmpich.so.1.2")
	fmt.Println(sn.Stem, sn.Version, sn.LinkName())
	// Output: mpich 1.2 libmpich.so.1
}

func ExampleSoname_CompatibleWith() {
	a, _ := libver.ParseSoname("libgfortran.so.3.0.0")
	b, _ := libver.ParseSoname("libgfortran.so.3")
	c, _ := libver.ParseSoname("libgfortran.so.1")
	fmt.Println(a.CompatibleWith(b), a.CompatibleWith(c))
	// Output: true false
}

func ExampleHighestGlibc() {
	refs := []string{"GLIBC_2.2.5", "GLIBC_2.12", "GCC_3.0"}
	fmt.Println(libver.HighestGlibc(refs))
	// Output: 2.12
}

func ExampleVersion_AtLeast() {
	site := libver.MustParseVersion("2.11.1")
	required := libver.MustParseVersion("2.5")
	fmt.Println(site.AtLeast(required))
	// Output: true
}
