// Package libver implements the version and naming conventions FEAM relies
// on: dotted release versions ("2.3.4"), shared-object naming
// (lib<name>.so.<major>.<minor>.<release>), the soname compatibility rule
// (equal stem and major version implies a compatible API), and glibc symbol
// versions ("GLIBC_2.12") as they appear in ELF version references.
package libver

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a dotted numeric release version such as 2.3.4. The zero value
// (nil) is "no version" and compares below every real version.
type Version []int

// ParseVersion parses a dotted numeric version string. Each component must
// be a non-negative decimal integer. Trailing non-numeric suffixes on the
// final component (as in "1.7rc1" or "1.7a2") are tolerated and ignored,
// matching the loose version strings found in MPI release names.
func ParseVersion(s string) (Version, error) {
	if s == "" {
		return nil, fmt.Errorf("libver: empty version string")
	}
	parts := strings.Split(s, ".")
	v := make(Version, 0, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			// Tolerate a suffix on the last component: "7rc1" -> 7.
			if i == len(parts)-1 {
				digits := leadingDigits(p)
				if digits == "" {
					return nil, fmt.Errorf("libver: bad version component %q in %q", p, s)
				}
				n, err = strconv.Atoi(digits)
				if err != nil {
					return nil, fmt.Errorf("libver: bad version component %q in %q", p, s)
				}
			} else {
				return nil, fmt.Errorf("libver: bad version component %q in %q", p, s)
			}
		}
		if n < 0 {
			return nil, fmt.Errorf("libver: negative version component in %q", s)
		}
		v = append(v, n)
	}
	return v, nil
}

// MustParseVersion is ParseVersion for statically known inputs; it panics on
// malformed strings.
func MustParseVersion(s string) Version {
	v, err := ParseVersion(s)
	if err != nil {
		panic(err)
	}
	return v
}

func leadingDigits(s string) string {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return s[:i]
}

// V builds a Version from integer components.
func V(parts ...int) Version { return Version(parts) }

// String renders the dotted form. A nil Version renders as "none".
func (v Version) String() string {
	if len(v) == 0 {
		return "none"
	}
	b := make([]string, len(v))
	for i, n := range v {
		b[i] = strconv.Itoa(n)
	}
	return strings.Join(b, ".")
}

// IsZero reports whether the version is absent.
func (v Version) IsZero() bool { return len(v) == 0 }

// Compare orders two versions component-wise; missing components compare as
// zero, so 2.3 == 2.3.0. It returns -1, 0, or +1.
func (v Version) Compare(o Version) int {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		a, b := 0, 0
		if i < len(v) {
			a = v[i]
		}
		if i < len(o) {
			b = o[i]
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
	}
	return 0
}

// AtLeast reports v >= o.
func (v Version) AtLeast(o Version) bool { return v.Compare(o) >= 0 }

// Less reports v < o.
func (v Version) Less(o Version) bool { return v.Compare(o) < 0 }

// Equal reports v == o under Compare semantics (2.3 equals 2.3.0).
func (v Version) Equal(o Version) bool { return v.Compare(o) == 0 }

// Major returns the first component, or 0 for the zero version.
func (v Version) Major() int {
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

// Clone returns an independent copy.
func (v Version) Clone() Version {
	if v == nil {
		return nil
	}
	c := make(Version, len(v))
	copy(c, v)
	return c
}

// Max returns the larger of two versions.
func Max(a, b Version) Version {
	if a.Compare(b) >= 0 {
		return a
	}
	return b
}
