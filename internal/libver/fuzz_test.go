package libver

import (
	"strings"
	"testing"
)

// FuzzParseSoname exercises the shared-object name parser with arbitrary
// input. Beyond "must not panic", a successful parse must be a fixed point:
// re-parsing the canonical String() form yields the same soname, and the
// derived names keep their documented relationships.
func FuzzParseSoname(f *testing.F) {
	for _, seed := range []string{
		"libmpich.so.1.2",
		"libc.so.6",
		"libdl.so",
		"libfoo.sock.so.1",
		"/usr/lib64/libm.so.6",
		"lib.so",
		"libx.so.",
		"libmpi.so.1.7rc1",
		"libstdc++.so.6.0.13",
		"ld-linux-x86-64.so.2",
		"liba.so.999999999999999999999999",
		"lib\x00.so.1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		s, err := ParseSoname(name)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSoname(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, name, err)
		}
		if s2.Stem != s.Stem || !s2.Version.Equal(s.Version) {
			t.Fatalf("round trip of %q changed %v to %v", name, s, s2)
		}
		link, err := ParseSoname(s.LinkName())
		if err != nil {
			t.Fatalf("link name %q of %q does not re-parse: %v", s.LinkName(), name, err)
		}
		if !s.SatisfiesNeeded(link) {
			t.Fatalf("%q does not satisfy its own link name %q", canon, s.LinkName())
		}
		if !s.CompatibleWith(s) {
			t.Fatalf("%q is not compatible with itself", canon)
		}
	})
}

// FuzzSymverRequirements feeds newline-separated symbol-version names
// through ParseSymbolVersion and HighestGlibc, the path a hostile binary's
// version-reference table reaches. HighestGlibc must skip malformed names
// and agree with a per-name maximum computed independently.
func FuzzSymverRequirements(f *testing.F) {
	for _, seed := range []string{
		"GLIBC_2.12\nGLIBC_2.5\nGCC_3.0",
		"GLIBC_2.2.5",
		"GLIBCXX_3.4\nCXXABI_1.3",
		"GLIBC_",
		"_2.0\nGLIBC",
		"GLIBC_2.0rc1\nGLIBC_0",
		"GLIBC_2.0\x00GLIBC_9.9",
		strings.Repeat("GLIBC_2.", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		names := strings.Split(input, "\n")
		var want Version
		for _, n := range names {
			sv, err := ParseSymbolVersion(n)
			if err != nil {
				continue
			}
			canon := sv.String()
			sv2, err := ParseSymbolVersion(canon)
			if err != nil {
				t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, n, err)
			}
			if sv2.Namespace != sv.Namespace || !sv2.Version.Equal(sv.Version) {
				t.Fatalf("round trip of %q changed %v to %v", n, sv, sv2)
			}
			if sv.IsGlibc() && (want.IsZero() || sv.Version.Compare(want) > 0) {
				want = sv.Version
			}
		}
		got := HighestGlibc(names)
		if !got.Equal(want) {
			t.Fatalf("HighestGlibc(%q) = %v, want %v", input, got, want)
		}
	})
}
