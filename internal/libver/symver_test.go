package libver

import "testing"

func TestParseSymbolVersion(t *testing.T) {
	sv, err := ParseSymbolVersion("GLIBC_2.12")
	if err != nil {
		t.Fatal(err)
	}
	if sv.Namespace != "GLIBC" || !sv.Version.Equal(V(2, 12)) {
		t.Errorf("got %+v", sv)
	}
	if !sv.IsGlibc() {
		t.Error("GLIBC_2.12 should be glibc")
	}
	if sv.String() != "GLIBC_2.12" {
		t.Errorf("String = %q", sv.String())
	}

	gcc, err := ParseSymbolVersion("GCC_3.0")
	if err != nil {
		t.Fatal(err)
	}
	if gcc.IsGlibc() {
		t.Error("GCC_3.0 should not be glibc")
	}

	for _, bad := range []string{"", "GLIBC", "_2.3", "GLIBC_", "GLIBC_x.y"} {
		if _, err := ParseSymbolVersion(bad); err == nil {
			t.Errorf("ParseSymbolVersion(%q) should fail", bad)
		}
	}
}

func TestHighestGlibc(t *testing.T) {
	names := []string{"GLIBC_2.2.5", "GLIBC_2.3.4", "GCC_3.0", "GLIBC_2.12", "GLIBCXX_3.4", "junk"}
	got := HighestGlibc(names)
	if !got.Equal(V(2, 12)) {
		t.Errorf("HighestGlibc = %v, want 2.12", got)
	}
	if !HighestGlibc(nil).IsZero() {
		t.Error("HighestGlibc(nil) should be zero")
	}
	if !HighestGlibc([]string{"GCC_3.0"}).IsZero() {
		t.Error("HighestGlibc without GLIBC names should be zero")
	}
}

func TestGlibcSymbolVersions(t *testing.T) {
	vs := GlibcSymbolVersions(V(2, 3, 4))
	if len(vs) == 0 {
		t.Fatal("no versions for glibc 2.3.4")
	}
	last := vs[len(vs)-1]
	if last != "GLIBC_2.3.4" {
		t.Errorf("last version = %q, want GLIBC_2.3.4", last)
	}
	for _, s := range vs {
		sv, err := ParseSymbolVersion(s)
		if err != nil {
			t.Fatalf("ladder emitted malformed version %q", s)
		}
		if sv.Version.Compare(V(2, 3, 4)) > 0 {
			t.Errorf("ladder version %s exceeds release 2.3.4", s)
		}
	}
	// A newer release includes strictly more definitions.
	newer := GlibcSymbolVersions(V(2, 12))
	if len(newer) <= len(vs) {
		t.Errorf("glibc 2.12 ladder (%d) should be longer than 2.3.4 ladder (%d)", len(newer), len(vs))
	}
	// The highest definition of release R is exactly R when R is on the ladder.
	if newer[len(newer)-1] != "GLIBC_2.12" {
		t.Errorf("2.12 ladder ends with %q", newer[len(newer)-1])
	}
}

func TestGlibcLadderConsistentWithHighestGlibc(t *testing.T) {
	// Property: for any release on the ladder, HighestGlibc over its own
	// definitions returns the release itself.
	for _, rel := range []Version{V(2, 3, 4), V(2, 5), V(2, 11, 1), V(2, 12)} {
		defs := GlibcSymbolVersions(rel)
		got := HighestGlibc(defs)
		// 2.11.1 is not a ladder entry; expect the highest entry <= release.
		if got.Compare(rel) > 0 {
			t.Errorf("HighestGlibc(%v defs) = %v exceeds release", rel, got)
		}
		if got.IsZero() {
			t.Errorf("HighestGlibc(%v defs) is zero", rel)
		}
	}
}
