package libver

import (
	"fmt"
	"strings"
)

// SymbolVersion is an ELF symbol-version name such as "GLIBC_2.12" or
// "GCC_3.0". FEAM's C-library determinant is computed from the highest
// GLIBC_* version referenced by a binary.
type SymbolVersion struct {
	// Namespace is the prefix before the underscore: "GLIBC", "GCC",
	// "GLIBCXX", ...
	Namespace string
	// Version is the dotted version following the namespace.
	Version Version
}

// ParseSymbolVersion parses a NAMESPACE_x.y[.z] symbol-version name.
func ParseSymbolVersion(s string) (SymbolVersion, error) {
	i := strings.LastIndexByte(s, '_')
	if i <= 0 || i == len(s)-1 {
		return SymbolVersion{}, fmt.Errorf("libver: malformed symbol version %q", s)
	}
	v, err := ParseVersion(s[i+1:])
	if err != nil {
		return SymbolVersion{}, fmt.Errorf("libver: malformed symbol version %q: %v", s, err)
	}
	return SymbolVersion{Namespace: s[:i], Version: v}, nil
}

// String renders the canonical NAMESPACE_x.y form.
func (sv SymbolVersion) String() string {
	return sv.Namespace + "_" + sv.Version.String()
}

// IsGlibc reports whether the version belongs to the GLIBC namespace.
func (sv SymbolVersion) IsGlibc() bool { return sv.Namespace == "GLIBC" }

// HighestGlibc scans a list of symbol-version names and returns the highest
// GLIBC_* version among them, or the zero Version when none is present.
// Malformed names are skipped: the BDC must tolerate exotic version strings
// in real binaries.
func HighestGlibc(names []string) Version {
	var best Version
	for _, n := range names {
		sv, err := ParseSymbolVersion(n)
		if err != nil || !sv.IsGlibc() {
			continue
		}
		if best.IsZero() || sv.Version.Compare(best) > 0 {
			best = sv.Version
		}
	}
	return best
}

// GlibcSymbolVersions returns the canonical ladder of GLIBC_* version
// definitions a C library of the given release provides, oldest first. Real
// glibc builds define every historical version tag up to their own release;
// the simulated C libraries installed at sites do the same so that version
// references resolve exactly as on a real system.
func GlibcSymbolVersions(release Version) []string {
	ladder := []Version{
		{2, 0}, {2, 1}, {2, 1, 1}, {2, 1, 2}, {2, 1, 3},
		{2, 2}, {2, 2, 1}, {2, 2, 2}, {2, 2, 3}, {2, 2, 4}, {2, 2, 5}, {2, 2, 6},
		{2, 3}, {2, 3, 2}, {2, 3, 3}, {2, 3, 4},
		{2, 4}, {2, 5}, {2, 6}, {2, 7}, {2, 8}, {2, 9},
		{2, 10}, {2, 11}, {2, 12}, {2, 13}, {2, 14}, {2, 15}, {2, 16}, {2, 17},
	}
	var out []string
	for _, v := range ladder {
		if v.Compare(release) <= 0 {
			out = append(out, SymbolVersion{Namespace: "GLIBC", Version: v}.String())
		}
	}
	return out
}
