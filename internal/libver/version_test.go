package libver

import (
	"testing"
	"testing/quick"
)

func TestParseVersion(t *testing.T) {
	cases := []struct {
		in   string
		want Version
		ok   bool
	}{
		{"2.3.4", V(2, 3, 4), true},
		{"1", V(1), true},
		{"0.0.0", V(0, 0, 0), true},
		{"1.7rc1", V(1, 7), true},
		{"1.7a2", V(1, 7), true},
		{"1.4.3", V(1, 4, 3), true},
		{"", nil, false},
		{"abc", nil, false},
		{"1..2", nil, false},
		{"1.x.2", nil, false},
		{"-1.2", nil, false},
	}
	for _, c := range cases {
		got, err := ParseVersion(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseVersion(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got.Compare(c.want) != 0 {
			t.Errorf("ParseVersion(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMustParseVersionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseVersion did not panic on malformed input")
		}
	}()
	MustParseVersion("not-a-version")
}

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2.3.4", "2.3.4", 0},
		{"2.3", "2.3.0", 0},
		{"2.3.4", "2.12", -1},
		{"2.12", "2.3.4", 1},
		{"2.5", "2.11.1", -1},
		{"1.4", "1.3", 1},
		{"3", "2.99.99", 1},
	}
	for _, c := range cases {
		a, b := MustParseVersion(c.a), MustParseVersion(c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestVersionCompareZero(t *testing.T) {
	var zero Version
	if zero.Compare(V(0)) != 0 {
		t.Errorf("nil version should equal 0")
	}
	if zero.Compare(V(1)) != -1 {
		t.Errorf("nil version should compare below 1")
	}
	if !zero.IsZero() {
		t.Errorf("nil version should be zero")
	}
	if zero.String() != "none" {
		t.Errorf("zero version String() = %q, want none", zero.String())
	}
}

func TestVersionHelpers(t *testing.T) {
	v := V(2, 11, 1)
	if !v.AtLeast(V(2, 5)) {
		t.Error("2.11.1 should be at least 2.5")
	}
	if v.AtLeast(V(2, 12)) {
		t.Error("2.11.1 should not be at least 2.12")
	}
	if !v.Less(V(2, 12)) {
		t.Error("2.11.1 should be less than 2.12")
	}
	if !v.Equal(V(2, 11, 1, 0)) {
		t.Error("2.11.1 should equal 2.11.1.0")
	}
	if v.Major() != 2 {
		t.Errorf("Major = %d, want 2", v.Major())
	}
	if Version(nil).Major() != 0 {
		t.Error("zero version Major should be 0")
	}
	if got := Max(V(1, 3), V(1, 4)); !got.Equal(V(1, 4)) {
		t.Errorf("Max(1.3, 1.4) = %v", got)
	}
	if got := Max(V(2), V(1, 9)); !got.Equal(V(2)) {
		t.Errorf("Max(2, 1.9) = %v", got)
	}
}

func TestVersionClone(t *testing.T) {
	v := V(1, 2, 3)
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares backing storage with original")
	}
	if Version(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestVersionRoundTripString(t *testing.T) {
	f := func(a, b, c uint8) bool {
		v := V(int(a), int(b), int(c))
		parsed, err := ParseVersion(v.String())
		return err == nil && parsed.Compare(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVersionCompareProperties(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(a1, a2, b1, b2 uint8) bool {
		a, b := V(int(a1), int(a2)), V(int(b1), int(b2))
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	// Transitivity over a small domain.
	tri := func(a1, b1, c1 uint8) bool {
		a, b, c := V(int(a1)), V(int(b1)), V(int(c1))
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}
