package libver

import "testing"

func TestParseSoname(t *testing.T) {
	cases := []struct {
		in      string
		stem    string
		version Version
		ok      bool
	}{
		{"libmpich.so.1.2", "mpich", V(1, 2), true},
		{"libmpi.so.0", "mpi", V(0), true},
		{"libc.so.6", "c", V(6), true},
		{"libdl.so", "dl", nil, true},
		{"/usr/lib64/libgfortran.so.3.0.0", "gfortran", V(3, 0, 0), true},
		{"libstdc++.so.6", "stdc++", V(6), true},
		{"libopen-rte.so.0", "open-rte", V(0), true},
		{"notalib.so.1", "", nil, false},
		{"libfoo", "", nil, false},
		{"lib.so.1", "", nil, false},
		{"libfoo.so.x", "", nil, false},
		{"libfoo.soup", "", nil, false},
		// Stems containing ".so" must anchor on the LAST ".so" suffix; a
		// first-substring match misparses these.
		{"libfoo.sock.so.1", "foo.sock", V(1), true},
		{"libfoo.sock.so", "foo.sock", nil, true},
		{"libassorted.so.2.1", "assorted", V(2, 1), true},
		{"libfoo.so.1.so.2", "foo.so.1", V(2), true},
		{"libfoo.sock", "", nil, false},
	}
	for _, c := range cases {
		got, err := ParseSoname(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseSoname(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if got.Stem != c.stem || got.Version.Compare(c.version) != 0 {
			t.Errorf("ParseSoname(%q) = %+v, want stem=%q version=%v", c.in, got, c.stem, c.version)
		}
	}
}

func TestSonameString(t *testing.T) {
	s, err := ParseSoname("libmpich.so.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "libmpich.so.1.2" {
		t.Errorf("String = %q", s.String())
	}
	if s.LinkName() != "libmpich.so.1" {
		t.Errorf("LinkName = %q", s.LinkName())
	}
	u := Soname{Stem: "dl"}
	if u.String() != "libdl.so" || u.LinkName() != "libdl.so" {
		t.Errorf("unversioned soname forms: %q %q", u.String(), u.LinkName())
	}
}

func TestSonameCompatibility(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"libmpich.so.1.2", "libmpich.so.1.0", true},  // same major
		{"libmpich.so.1.2", "libmpich.so.2.0", false}, // different major
		{"libmpich.so.1.2", "libmpi.so.1.2", false},   // different stem
		{"libgfortran.so.3.0.0", "libgfortran.so.3", true},
		{"libstdc++.so.5", "libstdc++.so.6", false},
	}
	for _, c := range cases {
		a, b := mustSoname(t, c.a), mustSoname(t, c.b)
		if got := a.CompatibleWith(b); got != c.want {
			t.Errorf("CompatibleWith(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := b.CompatibleWith(a); got != c.want {
			t.Errorf("CompatibleWith is not symmetric for (%s, %s)", c.a, c.b)
		}
	}
}

func TestSatisfiesNeeded(t *testing.T) {
	cases := []struct {
		installed, needed string
		want              bool
	}{
		{"libmpich.so.1.2", "libmpich.so.1", true},
		{"libmpich.so.1.2", "libmpich.so.2", false},
		{"libmpich.so.1.2", "libmpich.so", true}, // unversioned reference
		{"libm.so.6", "libc.so.6", false},
		{"libimf.so", "libimf.so", true},
	}
	for _, c := range cases {
		inst, need := mustSoname(t, c.installed), mustSoname(t, c.needed)
		if got := inst.SatisfiesNeeded(need); got != c.want {
			t.Errorf("SatisfiesNeeded(%s, %s) = %v, want %v", c.installed, c.needed, got, c.want)
		}
	}
}

func TestSpecialNames(t *testing.T) {
	if !IsCLibraryName("libc.so.6") {
		t.Error("libc.so.6 should be the C library")
	}
	if IsCLibraryName("libcrypt.so.1") {
		t.Error("libcrypt.so.1 is not the C library")
	}
	if !IsDynamicLoaderName("ld-linux-x86-64.so.2") {
		t.Error("ld-linux-x86-64.so.2 should be the loader")
	}
	if !IsDynamicLoaderName("/lib64/ld-linux-x86-64.so.2") {
		t.Error("loader detection should ignore directories")
	}
	if IsDynamicLoaderName("libldap.so.2") {
		t.Error("libldap is not the loader")
	}
}

func mustSoname(t *testing.T, s string) Soname {
	t.Helper()
	sn, err := ParseSoname(s)
	if err != nil {
		t.Fatalf("ParseSoname(%q): %v", s, err)
	}
	return sn
}
