// Package workload defines the MPI application codes the paper's test set
// is built from: the NAS Parallel Benchmarks 2.4 MPI reference
// implementation and the SPEC MPI2007 suite. Each code carries the
// properties that shape its compiled binary — implementation language
// (which runtime libraries get linked), how aggressively it exercises the C
// library (which symbol versions its objects reference), how advanced its
// MPI usage is (which determines sensitivity to MPI ABI drift between
// releases of the same implementation), and a typical binary size.
package workload

import "feam/internal/libver"

// Language of a code's implementation; determines linked runtimes.
type Language int

const (
	C Language = iota
	Fortran77
	Fortran90
	CPlusPlus
	// MixedCF is combined C and Fortran (127.GAPgeofem).
	MixedCF
)

func (l Language) String() string {
	switch l {
	case C:
		return "C"
	case Fortran77:
		return "Fortran77"
	case Fortran90:
		return "Fortran90"
	case CPlusPlus:
		return "C++"
	case MixedCF:
		return "C+Fortran"
	default:
		return "unknown"
	}
}

// UsesFortran reports whether Fortran runtime libraries are linked.
func (l Language) UsesFortran() bool {
	return l == Fortran77 || l == Fortran90 || l == MixedCF
}

// UsesCPlusPlus reports whether the C++ runtime is linked.
func (l Language) UsesCPlusPlus() bool { return l == CPlusPlus }

// Suite identifies a benchmark suite.
type Suite int

const (
	NPB Suite = iota
	SPECMPI
)

func (s Suite) String() string {
	switch s {
	case NPB:
		return "NAS"
	case SPECMPI:
		return "SPEC"
	}
	return "unknown"
}

// Code is one benchmark application.
type Code struct {
	Suite Suite
	// Name is the short identifier ("cg", "126.lammps").
	Name string
	// FullName is the descriptive title.
	FullName string
	// Domain is the application area from the paper's description.
	Domain string
	Lang   Language
	// GlibcDemandCap caps the newest GLIBC_* symbol version the code's
	// compiled objects reference; zero means the code references the
	// newest symbols of whatever glibc it is built against (large codes
	// touch recent interfaces; tiny kernels do not).
	GlibcDemandCap libver.Version
	// MPILevel grades MPI feature usage: 1 = basic point-to-point and
	// collectives only, 2 = heavier collective/datatype usage, 3 =
	// advanced features whose ABI shifted between implementation releases.
	MPILevel int
	// TextKB is the approximate binary text size in KiB.
	TextKB int
}

// ID returns "suite/name".
func (c *Code) ID() string { return c.Suite.String() + "/" + c.Name }

// NPBCodes returns the seven NPB 2.4 codes in the paper's test set: four
// kernels (IS, EP, CG, MG) and three pseudo-applications (BT, SP, LU).
func NPBCodes() []*Code {
	return []*Code{
		{Suite: NPB, Name: "is", FullName: "Integer Sort", Domain: "bucket sort kernel",
			Lang: C, GlibcDemandCap: libver.V(2, 3, 4), MPILevel: 1, TextKB: 90},
		{Suite: NPB, Name: "ep", FullName: "Embarrassingly Parallel", Domain: "random-number kernel",
			Lang: Fortran77, GlibcDemandCap: libver.V(2, 2, 5), MPILevel: 1, TextKB: 110},
		{Suite: NPB, Name: "cg", FullName: "Conjugate Gradient", Domain: "sparse linear algebra kernel",
			Lang: Fortran77, GlibcDemandCap: libver.V(2, 3, 4), MPILevel: 2, TextKB: 140},
		{Suite: NPB, Name: "mg", FullName: "Multi-Grid", Domain: "multigrid mesh kernel",
			Lang: Fortran77, GlibcDemandCap: libver.V(2, 3, 4), MPILevel: 2, TextKB: 160},
		{Suite: NPB, Name: "bt", FullName: "Block Tridiagonal", Domain: "CFD pseudo-application",
			Lang: Fortran77, GlibcDemandCap: libver.V(2, 5), MPILevel: 2, TextKB: 340},
		{Suite: NPB, Name: "sp", FullName: "Scalar Penta-diagonal", Domain: "CFD pseudo-application",
			Lang: Fortran77, GlibcDemandCap: libver.V(2, 5), MPILevel: 2, TextKB: 310},
		{Suite: NPB, Name: "lu", FullName: "Lower-Upper Gauss-Seidel", Domain: "CFD pseudo-application",
			Lang: Fortran77, MPILevel: 3, TextKB: 330},
	}
}

// SPECMPICodes returns the seven SPEC MPI2007 codes in the paper's test set.
func SPECMPICodes() []*Code {
	return []*Code{
		{Suite: SPECMPI, Name: "104.milc", FullName: "MILC", Domain: "quantum chromodynamics",
			Lang: C, MPILevel: 2, TextKB: 1100},
		{Suite: SPECMPI, Name: "107.leslie3d", FullName: "LESlie3d", Domain: "computational fluid dynamics",
			Lang: Fortran90, MPILevel: 2, TextKB: 900},
		{Suite: SPECMPI, Name: "115.fds4", FullName: "FDS4", Domain: "computational fluid dynamics (fire)",
			Lang: Fortran90, MPILevel: 3, TextKB: 1600},
		{Suite: SPECMPI, Name: "122.tachyon", FullName: "Tachyon", Domain: "parallel ray tracing",
			Lang: C, GlibcDemandCap: libver.V(2, 3, 4), MPILevel: 1, TextKB: 500},
		{Suite: SPECMPI, Name: "126.lammps", FullName: "LAMMPS", Domain: "molecular dynamics",
			Lang: CPlusPlus, MPILevel: 3, TextKB: 2600},
		{Suite: SPECMPI, Name: "127.GAPgeofem", FullName: "GAPgeofem", Domain: "geophysical FEM (weather)",
			Lang: MixedCF, GlibcDemandCap: libver.V(2, 5), MPILevel: 2, TextKB: 1400},
		{Suite: SPECMPI, Name: "129.tera_tf", FullName: "Tera_TF", Domain: "3D Eulerian hydrodynamics",
			Lang: Fortran90, GlibcDemandCap: libver.V(2, 5), MPILevel: 2, TextKB: 800},
	}
}

// All returns both suites' codes, NPB first.
func All() []*Code {
	return append(NPBCodes(), SPECMPICodes()...)
}

// Find returns the code with the given name from either suite, or nil.
func Find(name string) *Code {
	for _, c := range All() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// GlibcDemand resolves the glibc symbol versions a binary of this code
// references when built against a C library of release buildGlibc: the
// newest ladder entry not exceeding both the build glibc and the code's
// demand cap, together with the base entry.
func (c *Code) GlibcDemand(buildGlibc libver.Version) []string {
	cap := c.GlibcDemandCap
	effective := buildGlibc
	if !cap.IsZero() && cap.Less(buildGlibc) {
		effective = cap
	}
	ladder := libver.GlibcSymbolVersions(effective)
	if len(ladder) == 0 {
		return nil
	}
	if len(ladder) == 1 {
		return ladder
	}
	return []string{ladder[0], ladder[len(ladder)-1]}
}

// Class is an NPB problem class (S, W, A, B, C): the same source compiled
// with different problem sizes. The paper's test set is built from
// per-class binaries (e.g. cg.A.4); class does not change the dependency
// fingerprint, only the image size and run time.
type Class string

// Problem classes in increasing size.
const (
	ClassS Class = "S"
	ClassW Class = "W"
	ClassA Class = "A"
	ClassB Class = "B"
	ClassC Class = "C"
)

// Classes lists the supported problem classes, smallest first.
func Classes() []Class { return []Class{ClassS, ClassW, ClassA, ClassB, ClassC} }

// SizeFactor scales binary text size and run time relative to class A.
func (c Class) SizeFactor() float64 {
	switch c {
	case ClassS:
		return 0.1
	case ClassW:
		return 0.25
	case ClassA:
		return 1
	case ClassB:
		return 4
	case ClassC:
		return 16
	default:
		return 1
	}
}

// Valid reports whether the class is one of the supported sizes.
func (c Class) Valid() bool {
	for _, k := range Classes() {
		if c == k {
			return true
		}
	}
	return false
}

// WithClass returns a copy of the code sized for a problem class: the name
// gains the NPB-style class suffix and the text size scales. Dependency
// properties (language, MPI level, glibc demand) are unchanged — class is a
// compile-time constant, not a different program.
func (c *Code) WithClass(class Class) *Code {
	if !class.Valid() {
		class = ClassA
	}
	sized := *c
	sized.Name = c.Name + "." + string(class)
	sized.TextKB = int(float64(c.TextKB) * class.SizeFactor())
	if sized.TextKB < 8 {
		sized.TextKB = 8
	}
	return &sized
}
