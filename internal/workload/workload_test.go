package workload

import (
	"testing"

	"feam/internal/libver"
)

func TestSuiteContents(t *testing.T) {
	npb := NPBCodes()
	if len(npb) != 7 {
		t.Fatalf("NPB codes = %d, want 7", len(npb))
	}
	spec := SPECMPICodes()
	if len(spec) != 7 {
		t.Fatalf("SPEC codes = %d, want 7", len(spec))
	}
	if len(All()) != 14 {
		t.Errorf("All = %d", len(All()))
	}
	// The paper's named kernels and pseudo-applications are present.
	for _, name := range []string{"is", "ep", "cg", "mg", "bt", "sp", "lu"} {
		c := Find(name)
		if c == nil || c.Suite != NPB {
			t.Errorf("NPB code %q missing", name)
		}
	}
	for _, name := range []string{"104.milc", "107.leslie3d", "115.fds4", "122.tachyon", "126.lammps", "127.GAPgeofem", "129.tera_tf"} {
		c := Find(name)
		if c == nil || c.Suite != SPECMPI {
			t.Errorf("SPEC code %q missing", name)
		}
	}
	if Find("nonexistent") != nil {
		t.Error("Find invented a code")
	}
}

func TestCodeProperties(t *testing.T) {
	is := Find("is")
	if is.Lang != C || is.Lang.UsesFortran() {
		t.Error("IS should be a C code")
	}
	bt := Find("bt")
	if bt.Lang != Fortran77 || !bt.Lang.UsesFortran() {
		t.Error("BT should be Fortran 77")
	}
	lammps := Find("126.lammps")
	if lammps.Lang != CPlusPlus || !lammps.Lang.UsesCPlusPlus() {
		t.Error("LAMMPS should be C++")
	}
	gap := Find("127.GAPgeofem")
	if gap.Lang != MixedCF || !gap.Lang.UsesFortran() {
		t.Error("GAPgeofem should be mixed C/Fortran")
	}
	if is.ID() != "NAS/is" || lammps.ID() != "SPEC/126.lammps" {
		t.Errorf("IDs = %q, %q", is.ID(), lammps.ID())
	}
	for _, c := range All() {
		if c.MPILevel < 1 || c.MPILevel > 3 {
			t.Errorf("%s has MPILevel %d", c.Name, c.MPILevel)
		}
		if c.TextKB <= 0 {
			t.Errorf("%s has no size", c.Name)
		}
		if c.Domain == "" || c.FullName == "" {
			t.Errorf("%s lacks description", c.Name)
		}
	}
}

func TestLanguageString(t *testing.T) {
	for l, want := range map[Language]string{
		C: "C", Fortran77: "Fortran77", Fortran90: "Fortran90",
		CPlusPlus: "C++", MixedCF: "C+Fortran", Language(99): "unknown",
	} {
		if l.String() != want {
			t.Errorf("Language(%d) = %q, want %q", l, l.String(), want)
		}
	}
	if NPB.String() != "NAS" || SPECMPI.String() != "SPEC" || Suite(9).String() != "unknown" {
		t.Error("Suite.String broken")
	}
}

func TestGlibcDemand(t *testing.T) {
	// A capped code built on a new glibc references only up to its cap.
	ep := Find("ep") // cap 2.2.5
	refs := ep.GlibcDemand(libver.V(2, 12))
	if len(refs) == 0 {
		t.Fatal("no refs")
	}
	top := libver.HighestGlibc(refs)
	if !top.Equal(libver.V(2, 2, 5)) {
		t.Errorf("ep demand on 2.12 = %v", top)
	}
	// An uncapped code tracks the build glibc.
	lu := Find("lu")
	top = libver.HighestGlibc(lu.GlibcDemand(libver.V(2, 12)))
	if !top.Equal(libver.V(2, 12)) {
		t.Errorf("lu demand on 2.12 = %v", top)
	}
	// Built on an old glibc, demand cannot exceed the build environment.
	top = libver.HighestGlibc(lu.GlibcDemand(libver.V(2, 3, 4)))
	if !top.Equal(libver.V(2, 3, 4)) {
		t.Errorf("lu demand on 2.3.4 = %v", top)
	}
	// A mid-capped code stops at its cap.
	bt := Find("bt")
	top = libver.HighestGlibc(bt.GlibcDemand(libver.V(2, 12)))
	if !top.Equal(libver.V(2, 5)) {
		t.Errorf("bt demand on 2.12 = %v", top)
	}
	// Demands always include a base version that old systems satisfy.
	refs = lu.GlibcDemand(libver.V(2, 12))
	if refs[0] != "GLIBC_2.0" {
		t.Errorf("base ref = %q", refs[0])
	}
}

func TestProblemClasses(t *testing.T) {
	if len(Classes()) != 5 {
		t.Fatalf("classes = %v", Classes())
	}
	cg := Find("cg")
	a := cg.WithClass(ClassA)
	if a.Name != "cg.A" || a.TextKB != cg.TextKB {
		t.Errorf("class A = %+v", a)
	}
	cc := cg.WithClass(ClassC)
	if cc.TextKB != cg.TextKB*16 {
		t.Errorf("class C TextKB = %d", cc.TextKB)
	}
	s := cg.WithClass(ClassS)
	if s.TextKB >= cg.TextKB || s.TextKB < 8 {
		t.Errorf("class S TextKB = %d", s.TextKB)
	}
	// Dependency-relevant fields are untouched.
	if cc.Lang != cg.Lang || cc.MPILevel != cg.MPILevel ||
		!cc.GlibcDemandCap.Equal(cg.GlibcDemandCap) {
		t.Error("class changed dependency properties")
	}
	// The original is not mutated.
	if cg.Name != "cg" {
		t.Errorf("original mutated: %q", cg.Name)
	}
	// Invalid classes normalize to A.
	if got := cg.WithClass(Class("Z")); got.Name != "cg.A" {
		t.Errorf("invalid class = %q", got.Name)
	}
	if !ClassB.Valid() || Class("Q").Valid() {
		t.Error("Valid broken")
	}
	// Ordering of size factors.
	last := 0.0
	for _, k := range Classes() {
		if k.SizeFactor() <= last {
			t.Errorf("size factors not increasing at %s", k)
		}
		last = k.SizeFactor()
	}
}
