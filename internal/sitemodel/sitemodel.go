// Package sitemodel represents a simulated computing site: the discovery
// surface FEAM's Environment Discovery Component probes (filesystem,
// environment variables, /proc and /etc metadata, user-environment
// management tools) plus the ground-truth attributes the execution simulator
// needs (CPU feature level, broken MPI stack combinations, hidden library
// ABI epochs carried as vfs extended attributes).
//
// Nothing in this package interprets MPI or compiler semantics; sites are
// byte-level hosts. Higher layers (mpistack, toolchain, testbed) install
// concrete software onto them.
package sitemodel

import (
	"fmt"
	"hash/fnv"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/libver"
	"feam/internal/vfs"
)

// Arch describes a site's hardware architecture.
type Arch struct {
	Machine elfimg.Machine
	Class   elfimg.Class
	// CPUName is the marketing name surfaced by uname -p / /proc/cpuinfo.
	CPUName string
	// FeatureLevel is the ground-truth ISA extension level of the CPU
	// (think SSE2 < SSSE3 < SSE4). Binaries compiled with aggressive
	// vectorization at a high-level site trap with floating-point/illegal-
	// instruction errors on lower-level CPUs. Invisible to FEAM.
	FeatureLevel int
}

// Bits returns the word size of the architecture.
func (a Arch) Bits() int { return a.Class.Bits() }

// OSInfo describes the operating system installation.
type OSInfo struct {
	// Distro is the distribution name, e.g. "CentOS" or
	// "Red Hat Enterprise Linux Server".
	Distro string
	// Version is the distribution release, e.g. "5.6".
	Version string
	// Kernel is the kernel release string, e.g. "2.6.18-238.el5".
	Kernel string
	// ReleaseFile is the /etc file that identifies the distribution
	// ("/etc/redhat-release", "/etc/SuSE-release", ...).
	ReleaseFile string
}

// StackRecord is the ground-truth registration of an installed MPI stack.
// FEAM never reads this registry directly — it must rediscover stacks from
// module files and filesystem contents — but the execution simulator
// consults it to decide whether a selected stack actually functions.
type StackRecord struct {
	// Key is the canonical name, e.g. "openmpi-1.4.3-intel".
	Key string
	// Impl is the MPI implementation name in lower case: "openmpi",
	// "mpich2", "mvapich2".
	Impl string
	// ImplVersion is the release of the implementation.
	ImplVersion string
	// CompilerFamily is "gnu", "intel", or "pgi"; CompilerVersion its
	// release.
	CompilerFamily  string
	CompilerVersion string
	// Prefix is the installation root, e.g. /opt/openmpi-1.4.3-intel.
	Prefix string
	// Interconnect is "ethernet" or "infiniband".
	Interconnect string
	// ABIEpoch is the ground-truth binary-interface generation of the MPI
	// libraries; applications built against a newer epoch malfunction on
	// older ones when they use advanced MPI features.
	ABIEpoch int
	// Broken marks a misconfigured stack combination: advertised by the
	// site but unable to run any program (the failure mode §III.B of the
	// paper attributes to administrator error).
	Broken bool
	// StaticLibs reports whether the installation ships static archives
	// (.a); without them users cannot prepare statically linked binaries
	// for migration (§VI.C).
	StaticLibs bool
}

// Site is one simulated computing environment.
type Site struct {
	// Name is the short site name ("ranger", "forge", ...).
	Name string
	// Description is the human-readable identity from Table II.
	Description string
	// SystemType is "MPP", "SMP", "Hybrid", or "Cluster".
	SystemType string
	// Cores is the advertised core count.
	Cores int

	Arch  Arch
	OS    OSInfo
	Glibc libver.Version
	// Interconnects available at the site ("ethernet", "infiniband").
	Interconnects []string

	// Stacks is the ground-truth MPI stack registry (see StackRecord).
	Stacks []*StackRecord

	// SysErrRate is the ground-truth probability that a job at this site
	// hits a persistent system error (daemon spawn failure, communication
	// timeout) that survives the five retry attempts. Invisible to FEAM.
	SysErrRate float64

	fs  *vfs.FS
	env map[string]string

	// envFP memoizes EnvFingerprint between environment mutations. The
	// flag and value are atomics only so a reader racing a (contract-
	// violating) unlocked mutation degrades to a recompute instead of a
	// torn read; the env map itself still requires external serialization.
	envFP      atomic.Uint64
	envFPValid atomic.Bool
	// envTool memoizes EnvTool detection per filesystem content
	// generation (same racing-reader rationale as envFP).
	envTool atomic.Pointer[envToolMemo]
}

// New creates an empty site with a standard directory skeleton and default
// environment.
func New(name string, arch Arch, os OSInfo, glibc libver.Version) *Site {
	s := &Site{
		Name:  name,
		Arch:  arch,
		OS:    os,
		Glibc: glibc,
		fs:    vfs.New(),
		env:   map[string]string{},
	}
	for _, d := range []string{"/lib", "/usr/lib", "/etc", "/proc", "/tmp", "/home/user", "/opt", "/usr/bin", "/bin"} {
		mustMkdir(s.fs, d)
	}
	if arch.Class == elfimg.Class64 {
		mustMkdir(s.fs, "/lib64")
		mustMkdir(s.fs, "/usr/lib64")
	}
	s.env["PATH"] = "/usr/bin:/bin"
	s.env["HOME"] = "/home/user"
	s.writeSystemFiles()
	return s
}

func mustMkdir(fs *vfs.FS, dir string) {
	if err := fs.MkdirAll(dir); err != nil {
		panic(fmt.Sprintf("sitemodel: cannot create %s: %v", dir, err))
	}
}

// writeSystemFiles populates /proc/version, the distribution release file,
// and /proc/cpuinfo — the files the EDC reads.
func (s *Site) writeSystemFiles() {
	procVersion := fmt.Sprintf("Linux version %s (builder@%s) (gcc version unknown) #1 SMP\n",
		s.OS.Kernel, s.Name)
	if err := s.fs.WriteString("/proc/version", procVersion); err != nil {
		panic(err)
	}
	release := fmt.Sprintf("%s release %s\n", s.OS.Distro, s.OS.Version)
	if s.OS.ReleaseFile != "" {
		if err := s.fs.WriteString(s.OS.ReleaseFile, release); err != nil {
			panic(err)
		}
	}
	cpuinfo := fmt.Sprintf("processor\t: 0\nmodel name\t: %s\nflags\t: level%d\n",
		s.Arch.CPUName, s.Arch.FeatureLevel)
	if err := s.fs.WriteString("/proc/cpuinfo", cpuinfo); err != nil {
		panic(err)
	}
	// uname surface: machine and processor strings.
	uname := fmt.Sprintf("%s %s %s", unameMachine(s.Arch), s.OS.Kernel, s.Arch.CPUName)
	if err := s.fs.WriteString("/proc/sys/kernel/uname", uname); err != nil {
		panic(err)
	}
}

func unameMachine(a Arch) string {
	switch {
	case a.Machine == elfimg.EMX8664:
		return "x86_64"
	case a.Machine == elfimg.EM386:
		return "i686"
	case a.Machine == elfimg.EMPPC64:
		return "ppc64"
	case a.Machine == elfimg.EMPPC:
		return "ppc"
	default:
		return "unknown"
	}
}

// UnameMachine returns the `uname -p` processor string for the site.
func (s *Site) UnameMachine() string { return unameMachine(s.Arch) }

// FS exposes the site filesystem (envmgmt.Environment).
func (s *Site) FS() *vfs.FS { return s.fs }

// Getenv reads an environment variable (envmgmt.Environment).
func (s *Site) Getenv(key string) string { return s.env[key] }

// Setenv sets an environment variable (envmgmt.Environment).
func (s *Site) Setenv(key, value string) {
	s.envFPValid.Store(false)
	if value == "" {
		delete(s.env, key)
		return
	}
	s.env[key] = value
}

// EnvFingerprint condenses the environment variables into a hash, memoized
// until the next Setenv/RestoreEnv. Survey caching compares it on every
// engine operation, so repeat lookups must not re-sort the environment.
func (s *Site) EnvFingerprint() uint64 {
	if s.envFPValid.Load() {
		return s.envFP.Load()
	}
	h := fnv.New64a()
	keys := make([]string, 0, len(s.env))
	for k := range s.env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		io.WriteString(h, k)
		h.Write([]byte{0})
		io.WriteString(h, s.env[k])
		h.Write([]byte{1})
	}
	fp := h.Sum64()
	s.envFP.Store(fp)
	s.envFPValid.Store(true)
	return fp
}

// Environ returns a copy of the environment map.
func (s *Site) Environ() map[string]string {
	out := make(map[string]string, len(s.env))
	for k, v := range s.env {
		out[k] = v
	}
	return out
}

var _ envmgmt.Environment = (*Site)(nil)

// DefaultLibDirs returns the loader's built-in search directories for the
// site architecture, plus any directories from /etc/ld.so.conf.
func (s *Site) DefaultLibDirs() []string {
	var dirs []string
	if s.Arch.Class == elfimg.Class64 {
		dirs = append(dirs, "/lib64", "/usr/lib64")
	}
	dirs = append(dirs, "/lib", "/usr/lib")
	if data, err := s.fs.ReadFile("/etc/ld.so.conf"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "#") {
				dirs = append(dirs, line)
			}
		}
	}
	return dirs
}

// AddLdSoConfDir appends a directory to /etc/ld.so.conf.
func (s *Site) AddLdSoConfDir(dir string) error {
	var existing string
	if data, err := s.fs.ReadFile("/etc/ld.so.conf"); err == nil {
		existing = string(data)
	}
	return s.fs.WriteString("/etc/ld.so.conf", existing+dir+"\n")
}

// SystemLibDir is the primary library directory for the architecture.
func (s *Site) SystemLibDir() string {
	if s.Arch.Class == elfimg.Class64 {
		return "/lib64"
	}
	return "/lib"
}

// Attribute keys for ground-truth library metadata stored as vfs extended
// attributes.
const (
	AttrABIEpoch     = "sim.abi-epoch"
	AttrFeatureLevel = "sim.feature-level"
)

// Library describes a shared object to install at the site.
type Library struct {
	// FileName is the on-disk name, usually fully versioned
	// (libgfortran.so.1.0.0). The DT_SONAME link name and the unversioned
	// development name are created as symlinks automatically.
	FileName string
	// Soname overrides the DT_SONAME; when empty it is derived from
	// FileName truncated to the major version.
	Soname string
	// Needed lists the object's own DT_NEEDED dependencies.
	Needed []string
	// VerNeeds and VerDefs are GNU version references/definitions.
	VerNeeds []elfimg.VerNeed
	VerDefs  []string
	// Imports and Exports populate the dynamic symbol table.
	Imports []elfimg.ImportedSymbol
	Exports []elfimg.ExportedSymbol
	// Comments is the .comment provenance.
	Comments []string
	// ABIEpoch is the hidden binary-interface generation (0 = stable ABI,
	// never mismatches).
	ABIEpoch int
	// TextSize pads the image to a realistic size; defaults to 64 KiB.
	TextSize int
	// NoSymlinks suppresses creation of the soname/dev-name symlinks.
	NoSymlinks bool
	// Class/Machine override the site architecture (for 32-bit compat
	// libraries on 64-bit sites).
	Class   elfimg.Class
	Machine elfimg.Machine
}

// InstallLibrary builds the library ELF image and installs it (plus its
// soname and development symlinks) into dir. It returns the installed file
// path.
func (s *Site) InstallLibrary(dir string, lib Library) (string, error) {
	if lib.FileName == "" {
		return "", fmt.Errorf("sitemodel: library needs a file name")
	}
	cls, mach := lib.Class, lib.Machine
	if cls == 0 {
		cls = s.Arch.Class
	}
	if mach == 0 {
		mach = s.Arch.Machine
	}
	soname := lib.Soname
	if soname == "" {
		if sn, err := libver.ParseSoname(lib.FileName); err == nil {
			soname = sn.LinkName()
		} else {
			soname = lib.FileName
		}
	}
	textSize := lib.TextSize
	if textSize == 0 {
		textSize = 64 << 10
	}
	img, err := elfimg.Build(elfimg.Spec{
		Class:    cls,
		Machine:  mach,
		Type:     elfimg.TypeDyn,
		Soname:   soname,
		Needed:   lib.Needed,
		VerNeeds: lib.VerNeeds,
		VerDefs:  lib.VerDefs,
		Imports:  lib.Imports,
		Exports:  lib.Exports,
		Comments: lib.Comments,
		TextSize: textSize,
	})
	if err != nil {
		return "", fmt.Errorf("sitemodel: building %s: %v", lib.FileName, err)
	}
	full := path.Join(dir, lib.FileName)
	if err := s.fs.WriteFile(full, img); err != nil {
		return "", err
	}
	if lib.ABIEpoch != 0 {
		if err := s.fs.SetAttr(full, AttrABIEpoch, strconv.Itoa(lib.ABIEpoch)); err != nil {
			return "", err
		}
	}
	if !lib.NoSymlinks {
		for _, link := range symlinkNames(lib.FileName, soname) {
			lp := path.Join(dir, link)
			if s.fs.Exists(lp) {
				continue
			}
			if err := s.fs.Symlink(lib.FileName, lp); err != nil {
				return "", err
			}
		}
	}
	return full, nil
}

// symlinkNames returns the soname and development-name symlinks to create
// alongside an installed library file.
func symlinkNames(fileName, soname string) []string {
	var out []string
	if soname != fileName {
		out = append(out, soname)
	}
	if sn, err := libver.ParseSoname(fileName); err == nil && !sn.Version.IsZero() {
		dev := "lib" + sn.Stem + ".so"
		if dev != fileName && dev != soname {
			out = append(out, dev)
		}
	}
	return out
}

// LibraryABIEpoch reads the hidden ABI epoch of an installed library file
// (0 when unset).
func (s *Site) LibraryABIEpoch(p string) int {
	if v, ok := s.fs.Attr(p, AttrABIEpoch); ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 0
}

// RegisterStack records a ground-truth MPI stack installation.
func (s *Site) RegisterStack(rec *StackRecord) { s.Stacks = append(s.Stacks, rec) }

// FindStack returns the registered stack with the given key, or nil.
func (s *Site) FindStack(key string) *StackRecord {
	for _, r := range s.Stacks {
		if r.Key == key {
			return r
		}
	}
	return nil
}

// StackByPrefix returns the registered stack installed under prefix, or nil.
func (s *Site) StackByPrefix(prefix string) *StackRecord {
	for _, r := range s.Stacks {
		if r.Prefix == prefix {
			return r
		}
	}
	return nil
}

// HasInterconnect reports whether the site has the named network.
func (s *Site) HasInterconnect(name string) bool {
	for _, ic := range s.Interconnects {
		if ic == name {
			return true
		}
	}
	return false
}

// EnvTool returns the site's user-environment management tool, if any
// (Environment Modules preferred, then SoftEnv), via the same detection a
// user would perform.
func (s *Site) EnvTool() envmgmt.Tool {
	gen := s.fs.ContentGeneration()
	if m := s.envTool.Load(); m != nil && m.gen == gen {
		return m.tool
	}
	var tool envmgmt.Tool
	if m := envmgmt.DetectModules(s); m != nil {
		tool = m
	} else if se := envmgmt.DetectSoftEnv(s); se != nil {
		tool = se
	}
	s.envTool.Store(&envToolMemo{gen: gen, tool: tool})
	return tool
}

// envToolMemo caches EnvTool detection for one content generation.
// Detection only probes directory and file existence, so attribute
// updates never invalidate it.
type envToolMemo struct {
	gen  uint64
	tool envmgmt.Tool
}

// Snapshot captures the mutable environment so callers can make temporary
// changes (load a stack, stage libraries) and restore afterwards.
type Snapshot struct {
	env map[string]string
}

// SnapshotEnv copies the current environment variables.
func (s *Site) SnapshotEnv() Snapshot {
	return Snapshot{env: s.Environ()}
}

// RestoreEnv reinstates a snapshot taken earlier.
func (s *Site) RestoreEnv(snap Snapshot) {
	s.envFPValid.Store(false)
	s.env = make(map[string]string, len(snap.env))
	for k, v := range snap.env {
		s.env[k] = v
	}
}
