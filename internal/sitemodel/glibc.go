package sitemodel

import (
	"fmt"

	"feam/internal/elfimg"
	"feam/internal/libver"
)

// AttrExecOutput holds the text a file "prints" when executed directly on
// the command line. The C library binary is executable on real Linux
// systems and prints its release banner; the EDC parses that banner to learn
// the glibc version.
const AttrExecOutput = "sim.exec-output"

// glibcBanner is the first line a real glibc prints when run directly.
func glibcBanner(v libver.Version) string {
	return fmt.Sprintf("GNU C Library stable release version %s, by Roland McGrath et al.", v)
}

// InstallCLibrary installs the complete C-library family for the site's
// configured glibc version into the system library directory: libc itself
// (with the full GLIBC_* version-definition ladder), the dynamic loader, and
// the companion libraries every toolchain links (libm, libpthread, librt,
// libdl, libutil, libnsl, libcrypt, libgcc_s). All carry the version ladder
// so symbol-version references resolve exactly as on a real system.
func (s *Site) InstallCLibrary() error {
	dir := s.SystemLibDir()
	ladder := libver.GlibcSymbolVersions(s.Glibc)
	banner := glibcBanner(s.Glibc)

	libcFile := fmt.Sprintf("libc-%s.so", s.Glibc)
	// The C library exports its entry points at the versions they were
	// introduced or revised — and keeps every historical versioned symbol,
	// which is why old binaries run on newer glibc. printf/exit/malloc stay
	// at the base; memcpy (the classic symbol-version migration) is
	// exported at every ladder revision up to this release.
	libcExports := []elfimg.ExportedSymbol{
		{Name: "printf", Version: ladder[0]},
		{Name: "exit", Version: ladder[0]},
		{Name: "malloc", Version: ladder[0]},
	}
	for _, v := range ladder {
		libcExports = append(libcExports, elfimg.ExportedSymbol{Name: "memcpy", Version: v})
	}
	if _, err := s.InstallLibrary(dir, Library{
		FileName:   libcFile,
		Soname:     "libc.so.6",
		VerDefs:    append([]string{"libc.so.6"}, ladder...),
		Exports:    libcExports,
		Comments:   []string{banner},
		NoSymlinks: true,
		TextSize:   1400 << 10,
	}); err != nil {
		return err
	}
	if err := s.fs.Symlink(libcFile, dir+"/libc.so.6"); err != nil {
		return err
	}
	if err := s.fs.SetAttr(dir+"/"+libcFile, AttrExecOutput, banner+"\n"); err != nil {
		return err
	}

	loader := "ld-linux-x86-64.so.2"
	if s.Arch.Class == elfimg.Class32 {
		loader = "ld-linux.so.2"
	}
	loaderFile := fmt.Sprintf("ld-%s.so", s.Glibc)
	if _, err := s.InstallLibrary(dir, Library{
		FileName:   loaderFile,
		Soname:     loader,
		VerDefs:    append([]string{loader}, ladder...),
		NoSymlinks: true,
		TextSize:   120 << 10,
	}); err != nil {
		return err
	}
	if err := s.fs.Symlink(loaderFile, dir+"/"+loader); err != nil {
		return err
	}

	companions := []struct {
		stem  string
		major int
		size  int
	}{
		{"m", 6, 580 << 10},
		{"pthread", 0, 140 << 10},
		{"rt", 1, 50 << 10},
		{"dl", 2, 20 << 10},
		{"util", 1, 16 << 10},
		{"nsl", 1, 90 << 10},
		{"crypt", 1, 40 << 10},
	}
	for _, c := range companions {
		fileName := fmt.Sprintf("lib%s-%s.so", c.stem, s.Glibc)
		soname := fmt.Sprintf("lib%s.so.%d", c.stem, c.major)
		exports := []elfimg.ExportedSymbol{}
		if c.stem == "m" {
			exports = append(exports, elfimg.ExportedSymbol{Name: "sqrt", Version: ladder[0]},
				elfimg.ExportedSymbol{Name: "pow", Version: ladder[0]})
		}
		if _, err := s.InstallLibrary(dir, Library{
			FileName:   fileName,
			Soname:     soname,
			Needed:     []string{"libc.so.6"},
			VerNeeds:   []elfimg.VerNeed{{File: "libc.so.6", Versions: baseVerNeed(s.Glibc)}},
			VerDefs:    append([]string{soname}, ladder...),
			Exports:    exports,
			NoSymlinks: true,
			TextSize:   c.size,
		}); err != nil {
			return err
		}
		if err := s.fs.Symlink(fileName, dir+"/"+soname); err != nil {
			return err
		}
	}

	// libgcc_s ships with the system compiler but is universally present.
	if _, err := s.InstallLibrary(dir, Library{
		FileName: "libgcc_s.so.1",
		Soname:   "libgcc_s.so.1",
		Needed:   []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{{File: "libc.so.6", Versions: baseVerNeed(s.Glibc)}},
		VerDefs:  []string{"libgcc_s.so.1", "GCC_3.0", "GCC_3.3", "GCC_4.2.0"},
		TextSize: 90 << 10,
	}); err != nil {
		return err
	}
	return nil
}

// UpgradeCLibrary replaces the site's installed C-library family with
// release v — the administrator action (an OS update or rollback) that
// changes a site's compatibility surface mid-survey. The old family's
// files and link names are removed from the system library directory, the
// new family is installed, and the resulting filesystem mutations bump the
// vfs generation counter, so every cached survey of the site is
// invalidated by fingerprint without any explicit cache call.
func (s *Site) UpgradeCLibrary(v libver.Version) error {
	dir := s.SystemLibDir()
	old := s.Glibc
	loader := "ld-linux-x86-64.so.2"
	if s.Arch.Class == elfimg.Class32 {
		loader = "ld-linux.so.2"
	}
	removals := []string{
		fmt.Sprintf("libc-%s.so", old), "libc.so.6",
		fmt.Sprintf("ld-%s.so", old), loader,
		"libgcc_s.so.1", "libgcc_s.so",
	}
	for _, c := range []struct {
		stem  string
		major int
	}{{"m", 6}, {"pthread", 0}, {"rt", 1}, {"dl", 2}, {"util", 1}, {"nsl", 1}, {"crypt", 1}} {
		removals = append(removals,
			fmt.Sprintf("lib%s-%s.so", c.stem, old),
			fmt.Sprintf("lib%s.so.%d", c.stem, c.major),
			fmt.Sprintf("lib%s.so", c.stem))
	}
	for _, name := range removals {
		p := dir + "/" + name
		// Lstat, not Exists: the symlink entries must go even when their
		// target file was already removed earlier in the sweep.
		if _, err := s.fs.Lstat(p); err != nil {
			continue
		}
		if err := s.fs.Remove(p); err != nil {
			return fmt.Errorf("sitemodel: upgrading C library at %s: %v", s.Name, err)
		}
	}
	s.Glibc = v
	return s.InstallCLibrary()
}

// baseVerNeed is the GLIBC reference set system companion libraries carry:
// the lowest ladder entry available, which always resolves.
func baseVerNeed(glibc libver.Version) []string {
	ladder := libver.GlibcSymbolVersions(glibc)
	if len(ladder) == 0 {
		return nil
	}
	return ladder[:1]
}

// GlibcBannerFor exposes the banner format for tests and the EDC parser.
func GlibcBannerFor(v libver.Version) string { return glibcBanner(v) }
