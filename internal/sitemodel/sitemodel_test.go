package sitemodel

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/libver"
)

func testSite() *Site {
	return New("fir",
		Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "Xeon", FeatureLevel: 1},
		OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18-238.el5", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
}

func TestNewSiteSkeleton(t *testing.T) {
	s := testSite()
	for _, d := range []string{"/lib64", "/usr/lib64", "/lib", "/usr/lib", "/etc", "/tmp", "/opt"} {
		if !s.FS().IsDir(d) {
			t.Errorf("missing directory %s", d)
		}
	}
	rel, err := s.FS().ReadFile("/etc/redhat-release")
	if err != nil {
		t.Fatal(err)
	}
	if string(rel) != "CentOS release 5.6\n" {
		t.Errorf("release file = %q", rel)
	}
	pv, err := s.FS().ReadFile("/proc/version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(pv), "2.6.18-238.el5") {
		t.Errorf("/proc/version = %q", pv)
	}
	if s.UnameMachine() != "x86_64" {
		t.Errorf("UnameMachine = %q", s.UnameMachine())
	}
	if s.Getenv("PATH") == "" {
		t.Error("default PATH not set")
	}
}

func TestEnvHandling(t *testing.T) {
	s := testSite()
	s.Setenv("X", "1")
	if s.Getenv("X") != "1" {
		t.Error("Setenv/Getenv broken")
	}
	env := s.Environ()
	env["X"] = "2"
	if s.Getenv("X") != "1" {
		t.Error("Environ aliases internal map")
	}
	s.Setenv("X", "")
	if _, ok := s.Environ()["X"]; ok {
		t.Error("empty Setenv should delete the variable")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := testSite()
	s.Setenv("LD_LIBRARY_PATH", "/opt/x/lib")
	snap := s.SnapshotEnv()
	s.Setenv("LD_LIBRARY_PATH", "/feam/staged:/opt/x/lib")
	s.Setenv("NEW", "v")
	s.RestoreEnv(snap)
	if s.Getenv("LD_LIBRARY_PATH") != "/opt/x/lib" {
		t.Errorf("LD_LIBRARY_PATH = %q", s.Getenv("LD_LIBRARY_PATH"))
	}
	if s.Getenv("NEW") != "" {
		t.Error("NEW survived restore")
	}
}

func TestDefaultLibDirs(t *testing.T) {
	s := testSite()
	dirs := s.DefaultLibDirs()
	want := []string{"/lib64", "/usr/lib64", "/lib", "/usr/lib"}
	if len(dirs) != len(want) {
		t.Fatalf("dirs = %v", dirs)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Errorf("dirs[%d] = %q, want %q", i, dirs[i], want[i])
		}
	}
	if err := s.AddLdSoConfDir("/opt/intel/11.1/lib"); err != nil {
		t.Fatal(err)
	}
	dirs = s.DefaultLibDirs()
	if dirs[len(dirs)-1] != "/opt/intel/11.1/lib" {
		t.Errorf("ld.so.conf dir not appended: %v", dirs)
	}
}

func TestInstallLibrary(t *testing.T) {
	s := testSite()
	p, err := s.InstallLibrary("/usr/lib64", Library{
		FileName: "libgfortran.so.1.0.0",
		Needed:   []string{"libm.so.6", "libc.so.6"},
		VerDefs:  []string{"libgfortran.so.1", "GFORTRAN_1.0"},
		ABIEpoch: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p != "/usr/lib64/libgfortran.so.1.0.0" {
		t.Errorf("path = %q", p)
	}
	// The installed file is a genuine ELF image with the right soname.
	data, err := s.FS().ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	f, err := elfimg.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Soname != "libgfortran.so.1" {
		t.Errorf("soname = %q", f.Soname)
	}
	// Soname and dev symlinks exist and resolve to the real file.
	for _, link := range []string{"/usr/lib64/libgfortran.so.1", "/usr/lib64/libgfortran.so"} {
		rp, err := s.FS().ResolvePath(link)
		if err != nil {
			t.Fatalf("symlink %s: %v", link, err)
		}
		if rp != p {
			t.Errorf("%s resolves to %q", link, rp)
		}
	}
	if got := s.LibraryABIEpoch(p); got != 41 {
		t.Errorf("ABIEpoch = %d", got)
	}
	if got := s.LibraryABIEpoch("/usr/lib64/libgfortran.so.1"); got != 41 {
		t.Errorf("ABIEpoch through symlink = %d", got)
	}
}

func TestInstallLibraryValidation(t *testing.T) {
	s := testSite()
	if _, err := s.InstallLibrary("/lib64", Library{}); err == nil {
		t.Error("empty library accepted")
	}
}

func TestInstallLibraryNoClobberSymlink(t *testing.T) {
	s := testSite()
	if _, err := s.InstallLibrary("/lib64", Library{FileName: "libfoo.so.1.0"}); err != nil {
		t.Fatal(err)
	}
	// A second minor release must not fail on the existing symlinks.
	if _, err := s.InstallLibrary("/lib64", Library{FileName: "libfoo.so.1.1"}); err != nil {
		t.Fatalf("reinstall with existing symlinks: %v", err)
	}
}

func TestStackRegistry(t *testing.T) {
	s := testSite()
	rec := &StackRecord{Key: "openmpi-1.4-gnu", Impl: "openmpi", Prefix: "/opt/openmpi-1.4-gnu"}
	s.RegisterStack(rec)
	if s.FindStack("openmpi-1.4-gnu") != rec {
		t.Error("FindStack failed")
	}
	if s.FindStack("nope") != nil {
		t.Error("FindStack found a ghost")
	}
	if s.StackByPrefix("/opt/openmpi-1.4-gnu") != rec {
		t.Error("StackByPrefix failed")
	}
	if s.StackByPrefix("/opt/other") != nil {
		t.Error("StackByPrefix found a ghost")
	}
}

func TestHasInterconnect(t *testing.T) {
	s := testSite()
	s.Interconnects = []string{"ethernet", "infiniband"}
	if !s.HasInterconnect("infiniband") || s.HasInterconnect("myrinet") {
		t.Error("HasInterconnect broken")
	}
}

func TestInstallCLibrary(t *testing.T) {
	s := testSite()
	if err := s.InstallCLibrary(); err != nil {
		t.Fatal(err)
	}
	// libc.so.6 resolves to the versioned file and carries the ladder.
	data, err := s.FS().ReadFile("/lib64/libc.so.6")
	if err != nil {
		t.Fatal(err)
	}
	f, err := elfimg.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Soname != "libc.so.6" {
		t.Errorf("soname = %q", f.Soname)
	}
	found := false
	for _, vd := range f.VerDefs {
		if vd == "GLIBC_2.5" {
			found = true
		}
		if vd == "GLIBC_2.12" {
			t.Error("glibc 2.5 must not define GLIBC_2.12")
		}
	}
	if !found {
		t.Error("GLIBC_2.5 definition missing")
	}
	// The exec banner is attached for the EDC.
	out, ok := s.FS().Attr("/lib64/libc.so.6", AttrExecOutput)
	if !ok || !strings.Contains(out, "version 2.5") {
		t.Errorf("exec banner = %q ok=%v", out, ok)
	}
	// Companions exist.
	for _, l := range []string{"libm.so.6", "libpthread.so.0", "librt.so.1", "libdl.so.2", "libutil.so.1", "libnsl.so.1", "libcrypt.so.1", "libgcc_s.so.1"} {
		if !s.FS().Exists("/lib64/" + l) {
			t.Errorf("missing companion %s", l)
		}
	}
	// The loader is present.
	if !s.FS().Exists("/lib64/ld-linux-x86-64.so.2") {
		t.Error("missing dynamic loader")
	}
}

func TestEnvToolDetection(t *testing.T) {
	s := testSite()
	if s.EnvTool() != nil {
		t.Error("fresh site should have no env tool")
	}
	if err := s.FS().MkdirAll("/usr/share/Modules/modulefiles"); err != nil {
		t.Fatal(err)
	}
	tool := s.EnvTool()
	if tool == nil || tool.Name() != "modules" {
		t.Errorf("tool = %v", tool)
	}
}
