package sitemodel

import (
	"bytes"
	"testing"
	"testing/quick"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/vfs"
)

func richSite(t *testing.T) *Site {
	t.Helper()
	s := testSite()
	if err := s.InstallCLibrary(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallLibrary("/opt/x/lib", Library{
		FileName: "libx.so.1.2", ABIEpoch: 7,
	}); err != nil {
		t.Fatal(err)
	}
	s.Setenv("LD_LIBRARY_PATH", "/opt/x/lib")
	s.Interconnects = []string{"ethernet", "infiniband"}
	s.SysErrRate = 0.04
	s.Description = "Test Cluster, Testing University"
	s.SystemType = "Cluster"
	s.Cores = 128
	s.RegisterStack(&StackRecord{
		Key: "openmpi-1.4-gnu", Impl: "openmpi", ImplVersion: "1.4",
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Prefix: "/opt/openmpi-1.4-gnu", Interconnect: "infiniband",
		ABIEpoch: 14, StaticLibs: true,
	})
	s.RegisterStack(&StackRecord{
		Key: "mpich2-1.4-gnu", Impl: "mpich2", Broken: true,
	})
	return s
}

func TestSiteEncodeDecodeRoundTrip(t *testing.T) {
	s := richSite(t)
	data, err := EncodeSite(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSite(data)
	if err != nil {
		t.Fatal(err)
	}
	// Metadata.
	if got.Name != s.Name || got.Description != s.Description ||
		got.SystemType != s.SystemType || got.Cores != s.Cores {
		t.Errorf("identity: %+v", got)
	}
	if got.Arch != s.Arch {
		t.Errorf("arch: %+v vs %+v", got.Arch, s.Arch)
	}
	if got.OS != s.OS {
		t.Errorf("os: %+v vs %+v", got.OS, s.OS)
	}
	if !got.Glibc.Equal(s.Glibc) || got.SysErrRate != s.SysErrRate {
		t.Errorf("glibc/rate: %v %v", got.Glibc, got.SysErrRate)
	}
	if len(got.Interconnects) != 2 {
		t.Errorf("interconnects: %v", got.Interconnects)
	}
	// Environment.
	if got.Getenv("LD_LIBRARY_PATH") != "/opt/x/lib" {
		t.Errorf("env: %q", got.Getenv("LD_LIBRARY_PATH"))
	}
	// Stack registry.
	if len(got.Stacks) != 2 {
		t.Fatalf("stacks: %d", len(got.Stacks))
	}
	rec := got.FindStack("openmpi-1.4-gnu")
	if rec == nil || rec.ABIEpoch != 14 || !rec.StaticLibs || rec.CompilerVersion != "4.1.2" {
		t.Errorf("stack: %+v", rec)
	}
	if br := got.FindStack("mpich2-1.4-gnu"); br == nil || !br.Broken {
		t.Errorf("broken stack: %+v", br)
	}
	// Filesystem: files byte-identical, symlinks and attrs preserved.
	orig, err := s.FS().ReadFile("/lib64/libc.so.6")
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := got.FS().ReadFile("/lib64/libc.so.6")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, decoded) {
		t.Error("libc bytes differ")
	}
	li, err := got.FS().Lstat("/lib64/libc.so.6")
	if err != nil || li.Kind != vfs.KindSymlink {
		t.Errorf("libc.so.6 symlink: %+v, %v", li, err)
	}
	if got.LibraryABIEpoch("/opt/x/lib/libx.so.1.2") != 7 {
		t.Error("attrs lost")
	}
	if v, ok := got.FS().Attr("/lib64/libc.so.6", AttrExecOutput); !ok || v == "" {
		t.Error("exec banner lost")
	}
	// The round trip is a fixed point.
	data2, err := EncodeSite(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encode(decode(x)) != x")
	}
}

func TestSiteDecodeRejectsCorruption(t *testing.T) {
	data, err := EncodeSite(richSite(t))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/3] ^= 0x55
	if _, err := DecodeSite(bad); err == nil {
		t.Error("corruption accepted")
	}
	if _, err := DecodeSite(data[:10]); err == nil {
		t.Error("truncation accepted")
	}
	if _, err := DecodeSite([]byte("FEAMBNDLxxxxxxxxxx")); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestSiteDecodeGarbageQuick(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				panic(r)
			}
		}()
		_, _ = DecodeSite(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSiteImageSupportsExecution: a decoded site is a fully working world —
// the loader resolves binaries against it exactly as against the original.
func TestSiteImageSupportsExecution(t *testing.T) {
	s := richSite(t)
	data, err := EncodeSite(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSite(data)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded filesystem carries valid ELF images.
	raw, err := got.FS().ReadFile("/opt/x/lib/libx.so.1.2")
	if err != nil {
		t.Fatal(err)
	}
	f, err := elfimg.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Soname != "libx.so.1" {
		t.Errorf("soname = %q", f.Soname)
	}
	if !got.Glibc.Equal(libver.V(2, 5)) {
		t.Errorf("glibc = %v", got.Glibc)
	}
}
