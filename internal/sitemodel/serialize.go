package sitemodel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/vfs"
)

// Site image wire format: a self-contained snapshot of a simulated
// computing site — metadata, ground-truth stack registry, environment
// variables, and the complete filesystem tree with extended attributes.
//
//	magic "FEAMSITE" | version u16 | section count u32
//	per section: tag u8 | name length u16 | name | body length u32 | body
//	trailer: CRC-32 (IEEE)
//
// Tags: 'M' metadata, 'S' stack record, 'D' directory, 'F' file (body =
// attrs block length u32 | attrs | contents), 'L' symlink (body = target).
const (
	siteMagic   = "FEAMSITE"
	siteVersion = 1
)

const (
	siteSecMeta    = 'M'
	siteSecStack   = 'S'
	siteSecDir     = 'D'
	siteSecFile    = 'F'
	siteSecSymlink = 'L'
)

// EncodeSite serializes a site snapshot.
func EncodeSite(s *Site) ([]byte, error) {
	var sections []siteSection

	var meta bytes.Buffer
	fmt.Fprintf(&meta, "name=%s\n", s.Name)
	fmt.Fprintf(&meta, "description=%s\n", s.Description)
	fmt.Fprintf(&meta, "system-type=%s\n", s.SystemType)
	fmt.Fprintf(&meta, "cores=%d\n", s.Cores)
	fmt.Fprintf(&meta, "machine=%d\n", s.Arch.Machine)
	fmt.Fprintf(&meta, "class=%d\n", s.Arch.Class)
	fmt.Fprintf(&meta, "cpu=%s\n", s.Arch.CPUName)
	fmt.Fprintf(&meta, "feature-level=%d\n", s.Arch.FeatureLevel)
	fmt.Fprintf(&meta, "distro=%s\n", s.OS.Distro)
	fmt.Fprintf(&meta, "os-version=%s\n", s.OS.Version)
	fmt.Fprintf(&meta, "kernel=%s\n", s.OS.Kernel)
	fmt.Fprintf(&meta, "release-file=%s\n", s.OS.ReleaseFile)
	fmt.Fprintf(&meta, "glibc=%s\n", s.Glibc)
	fmt.Fprintf(&meta, "sys-err-rate=%g\n", s.SysErrRate)
	for _, ic := range s.Interconnects {
		fmt.Fprintf(&meta, "interconnect=%s\n", ic)
	}
	env := s.Environ()
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&meta, "env=%s=%s\n", k, env[k])
	}
	sections = append(sections, siteSection{tag: siteSecMeta, name: "meta", body: meta.Bytes()})

	for _, rec := range s.Stacks {
		var body bytes.Buffer
		fmt.Fprintf(&body, "impl=%s\nimpl-version=%s\ncompiler=%s/%s\nprefix=%s\ninterconnect=%s\nabi-epoch=%d\nbroken=%v\nstatic-libs=%v\n",
			rec.Impl, rec.ImplVersion, rec.CompilerFamily, rec.CompilerVersion,
			rec.Prefix, rec.Interconnect, rec.ABIEpoch, rec.Broken, rec.StaticLibs)
		sections = append(sections, siteSection{tag: siteSecStack, name: rec.Key, body: body.Bytes()})
	}

	err := s.fs.Walk("/", func(p string, info vfs.FileInfo) error {
		if p == "/" {
			return nil
		}
		li, err := s.fs.Lstat(p)
		if err != nil {
			return err
		}
		switch li.Kind {
		case vfs.KindDir:
			sections = append(sections, siteSection{tag: siteSecDir, name: p})
		case vfs.KindSymlink:
			sections = append(sections, siteSection{tag: siteSecSymlink, name: p, body: []byte(li.Target)})
		case vfs.KindFile:
			data, err := s.fs.ReadFile(p)
			if err != nil {
				return err
			}
			var attrs bytes.Buffer
			am := s.fs.Attrs(p)
			akeys := make([]string, 0, len(am))
			for k := range am {
				akeys = append(akeys, k)
			}
			sort.Strings(akeys)
			for _, k := range akeys {
				// Values may contain newlines (exec banners); quote them.
				fmt.Fprintf(&attrs, "%s=%s\n", k, strconv.Quote(am[k]))
			}
			var body bytes.Buffer
			var lenBuf [4]byte
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(attrs.Len()))
			body.Write(lenBuf[:])
			body.Write(attrs.Bytes())
			body.Write(data)
			sections = append(sections, siteSection{tag: siteSecFile, name: p, body: body.Bytes()})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out bytes.Buffer
	out.WriteString(siteMagic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], siteVersion)
	out.Write(u16[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(sections)))
	out.Write(u32[:])
	for _, sec := range sections {
		out.WriteByte(sec.tag)
		if len(sec.name) > 0xffff {
			return nil, fmt.Errorf("sitemodel: path too long: %q", sec.name)
		}
		binary.LittleEndian.PutUint16(u16[:], uint16(len(sec.name)))
		out.Write(u16[:])
		out.WriteString(sec.name)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(sec.body)))
		out.Write(u32[:])
		out.Write(sec.body)
	}
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(out.Bytes()))
	out.Write(u32[:])
	return out.Bytes(), nil
}

type siteSection struct {
	tag  byte
	name string
	body []byte
}

// DecodeSite reconstructs a site from its snapshot.
func DecodeSite(data []byte) (*Site, error) {
	if len(data) < len(siteMagic)+2+4+4 {
		return nil, fmt.Errorf("sitemodel: site image too short")
	}
	if string(data[:len(siteMagic)]) != siteMagic {
		return nil, fmt.Errorf("sitemodel: not a FEAM site image")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("sitemodel: site image checksum mismatch")
	}
	off := len(siteMagic)
	readU16 := func() (uint16, error) {
		if off+2 > len(body) {
			return 0, fmt.Errorf("sitemodel: truncated site image at %d", off)
		}
		v := binary.LittleEndian.Uint16(body[off:])
		off += 2
		return v, nil
	}
	readU32 := func() (uint32, error) {
		if off+4 > len(body) {
			return 0, fmt.Errorf("sitemodel: truncated site image at %d", off)
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, nil
	}
	readN := func(n int) ([]byte, error) {
		if n < 0 || off+n > len(body) {
			return nil, fmt.Errorf("sitemodel: truncated site image at %d", off)
		}
		b := body[off : off+n]
		off += n
		return b, nil
	}

	version, err := readU16()
	if err != nil {
		return nil, err
	}
	if version != siteVersion {
		return nil, fmt.Errorf("sitemodel: unsupported site image version %d", version)
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}

	s := &Site{fs: vfs.New(), env: map[string]string{}}
	for i := 0; i < int(count); i++ {
		tagB, err := readN(1)
		if err != nil {
			return nil, err
		}
		nameLen, err := readU16()
		if err != nil {
			return nil, err
		}
		nameB, err := readN(int(nameLen))
		if err != nil {
			return nil, err
		}
		bodyLen, err := readU32()
		if err != nil {
			return nil, err
		}
		secBody, err := readN(int(bodyLen))
		if err != nil {
			return nil, err
		}
		name := string(nameB)
		switch tagB[0] {
		case siteSecMeta:
			if err := decodeSiteMeta(s, string(secBody)); err != nil {
				return nil, err
			}
		case siteSecStack:
			rec := &StackRecord{Key: name}
			decodeStackRecord(rec, string(secBody))
			s.Stacks = append(s.Stacks, rec)
		case siteSecDir:
			if err := s.fs.MkdirAll(name); err != nil {
				return nil, err
			}
		case siteSecSymlink:
			if err := s.fs.Symlink(string(secBody), name); err != nil {
				return nil, err
			}
		case siteSecFile:
			if len(secBody) < 4 {
				return nil, fmt.Errorf("sitemodel: corrupt file section %q", name)
			}
			attrLen := int(binary.LittleEndian.Uint32(secBody))
			if 4+attrLen > len(secBody) {
				return nil, fmt.Errorf("sitemodel: corrupt file section %q", name)
			}
			if err := s.fs.WriteFile(name, secBody[4+attrLen:]); err != nil {
				return nil, err
			}
			for _, line := range strings.Split(string(secBody[4:4+attrLen]), "\n") {
				eq := strings.Index(line, "=")
				if eq <= 0 {
					continue
				}
				val, err := strconv.Unquote(line[eq+1:])
				if err != nil {
					return nil, fmt.Errorf("sitemodel: corrupt attribute on %q: %v", name, err)
				}
				if err := s.fs.SetAttr(name, line[:eq], val); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("sitemodel: unknown site section tag %q", tagB[0])
		}
	}
	if s.Name == "" {
		return nil, fmt.Errorf("sitemodel: site image lacks metadata")
	}
	return s, nil
}

func decodeSiteMeta(s *Site, meta string) error {
	for _, line := range strings.Split(meta, "\n") {
		eq := strings.Index(line, "=")
		if eq <= 0 {
			continue
		}
		key, val := line[:eq], line[eq+1:]
		switch key {
		case "name":
			s.Name = val
		case "description":
			s.Description = val
		case "system-type":
			s.SystemType = val
		case "cores":
			s.Cores, _ = strconv.Atoi(val)
		case "machine":
			n, _ := strconv.Atoi(val)
			s.Arch.Machine = elfimg.Machine(n)
		case "class":
			n, _ := strconv.Atoi(val)
			s.Arch.Class = elfimg.Class(n)
		case "cpu":
			s.Arch.CPUName = val
		case "feature-level":
			s.Arch.FeatureLevel, _ = strconv.Atoi(val)
		case "distro":
			s.OS.Distro = val
		case "os-version":
			s.OS.Version = val
		case "kernel":
			s.OS.Kernel = val
		case "release-file":
			s.OS.ReleaseFile = val
		case "glibc":
			v, err := libver.ParseVersion(val)
			if err != nil {
				return fmt.Errorf("sitemodel: site image glibc: %v", err)
			}
			s.Glibc = v
		case "sys-err-rate":
			s.SysErrRate, _ = strconv.ParseFloat(val, 64)
		case "interconnect":
			s.Interconnects = append(s.Interconnects, val)
		case "env":
			if eq2 := strings.Index(val, "="); eq2 > 0 {
				s.env[val[:eq2]] = val[eq2+1:]
			}
		}
	}
	return nil
}

func decodeStackRecord(rec *StackRecord, body string) {
	for _, line := range strings.Split(body, "\n") {
		eq := strings.Index(line, "=")
		if eq <= 0 {
			continue
		}
		key, val := line[:eq], line[eq+1:]
		switch key {
		case "impl":
			rec.Impl = val
		case "impl-version":
			rec.ImplVersion = val
		case "compiler":
			if i := strings.Index(val, "/"); i > 0 {
				rec.CompilerFamily, rec.CompilerVersion = val[:i], val[i+1:]
			}
		case "prefix":
			rec.Prefix = val
		case "interconnect":
			rec.Interconnect = val
		case "abi-epoch":
			rec.ABIEpoch, _ = strconv.Atoi(val)
		case "broken":
			rec.Broken = val == "true"
		case "static-libs":
			rec.StaticLibs = val == "true"
		}
	}
}
