package sitemodel

import (
	"fmt"

	"feam/internal/elfimg"
)

// StripExport rewrites the shared library at path with every export named
// symbol removed. The soname, dependencies, and version-definition tables
// survive unchanged, so library-level checks (soname presence, verneed
// satisfaction) still pass while symbol-level resolution sees the smaller
// surface — the failure mode a partial or vendor-trimmed library build
// leaves behind. The rewrite bumps the filesystem generation like any
// library mutation, invalidating cached surveys and symbol indexes.
func (s *Site) StripExport(path, symbol string) error {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("sitemodel: stripping %s from %s: %w", symbol, path, err)
	}
	f, err := elfimg.Parse(data)
	if err != nil {
		return fmt.Errorf("sitemodel: stripping %s from %s: %w", symbol, path, err)
	}
	kept := make([]elfimg.ExportedSymbol, 0, len(f.Exports))
	for _, ex := range f.Exports {
		if ex.Name != symbol {
			kept = append(kept, ex)
		}
	}
	if len(kept) == len(f.Exports) {
		return fmt.Errorf("sitemodel: %s exports no symbol %q", path, symbol)
	}
	img, err := elfimg.Build(elfimg.Spec{
		Class: f.Class, Machine: f.Machine, Type: f.Type,
		Interp: f.Interp, Soname: f.Soname, Needed: f.Needed,
		RPath: f.RPath, RunPath: f.RunPath,
		VerNeeds: f.VerNeeds, VerDefs: f.VerDefs,
		Comments: f.Comments, Imports: f.Imports, Exports: kept,
	})
	if err != nil {
		return fmt.Errorf("sitemodel: rebuilding %s without %s: %w", path, symbol, err)
	}
	return s.fs.WriteFile(path, img)
}
