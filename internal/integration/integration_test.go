// Package integration holds cross-cutting scenario tests that drive the
// whole stack — testbed, toolchain, FEAM phases, ground-truth execution —
// through situations the per-package tests do not compose: serial binaries,
// static binaries, bundle-only predictions, output files, 32-bit images,
// and failure injection against the discovery surface.
package integration

import (
	"strings"
	"sync"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

var (
	once  sync.Once
	tb    *testbed.Testbed
	tberr error
)

func world(t *testing.T) *testbed.Testbed {
	t.Helper()
	once.Do(func() { tb, tberr = testbed.Build() })
	if tberr != nil {
		t.Fatal(tberr)
	}
	return tb
}

func runner() feam.RunnerFunc {
	sim := execsim.NewSimulator(99)
	sim.TransientRate = 0
	return experiment.NewSimRunner(sim)
}

func pbsConfig(phase, binary string) *feam.Config {
	serial := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=1\n#PBS -l walltime=00:10:00\n%CMD%\n"
	parallel := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=4\n#PBS -l walltime=00:15:00\n%CMD%\n"
	return &feam.Config{Phase: phase, BinaryPath: binary,
		SerialScript: serial, ParallelScript: parallel}
}

// TestSerialBinaryPrediction: a non-MPI program sails through the MPI
// determinant and is judged on ISA, C library, and shared libraries alone.
func TestSerialBinaryPrediction(t *testing.T) {
	tb := world(t)
	india := tb.ByName["india"]
	fir := tb.ByName["fir"]
	comp := toolchain.Compiler{Family: toolchain.GNU, Version: "4.1.2"}
	art, err := toolchain.CompileSerialHello(comp, india)
	if err != nil {
		t.Fatal(err)
	}
	if err := fir.FS().WriteFile("/home/user/serial.bin", art.Bytes); err != nil {
		t.Fatal(err)
	}
	pred, _, err := feam.RunTargetPhase(pbsConfig("target", "/home/user/serial.bin"), fir, nil, runner())
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("serial binary not ready: %v", pred.Reasons)
	}
	if pred.Determinants[feam.DetMPIStack].Detail != "not an MPI application" {
		t.Errorf("MPI determinant = %+v", pred.Determinants[feam.DetMPIStack])
	}
	if pred.SelectedStack != nil {
		t.Error("serial binary selected an MPI stack")
	}
	if strings.Contains(pred.ConfigScript, "mpiexec") {
		t.Errorf("serial config script launches MPI:\n%s", pred.ConfigScript)
	}
}

// TestStaticBinaryPrediction: a statically linked binary has no dynamic
// metadata; FEAM predicts on ISA alone (the MPI implementation is
// undetectable — a real limitation the paper's identification scheme has),
// and the launcher binding makes the prediction optimistic.
func TestStaticBinaryPrediction(t *testing.T) {
	tb := world(t)
	india := tb.ByName["india"]
	// Install a static-capable stack.
	inst := &mpistack.Install{
		Release:        mpistack.Release{Impl: mpistack.OpenMPI, Version: "1.4"},
		CompilerFamily: "gnu", CompilerVersion: "4.1.2",
		Interconnect: "infiniband", WithFortran: true, WithStaticLibs: true,
		Prefix: "/opt/openmpi-static-test",
	}
	rec, err := inst.Materialize(india)
	if err != nil {
		t.Fatal(err)
	}
	art, err := toolchain.CompileStatic(workload.Find("is"), rec, india)
	if err != nil {
		t.Fatal(err)
	}
	fir := tb.ByName["fir"]
	if err := fir.FS().WriteFile("/home/user/is.static", art.Bytes); err != nil {
		t.Fatal(err)
	}
	pred, _, err := feam.RunTargetPhase(pbsConfig("target", "/home/user/is.static"), fir, nil, runner())
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("static binary not ready: %v", pred.Reasons)
	}
	// FEAM cannot see the MPI dependency.
	desc, err := feam.DescribeBytes(art.Bytes, "is.static")
	if err != nil {
		t.Fatal(err)
	}
	if desc.UsesMPI() {
		t.Error("static binary identified as MPI")
	}
	if !desc.RequiredGlibc.IsZero() {
		t.Errorf("static binary has glibc requirement %v", desc.RequiredGlibc)
	}
}

// TestOutputFilesWritten: the target phase leaves the prediction report and
// configuration script at the site, per §V.C.
func TestOutputFilesWritten(t *testing.T) {
	tb := world(t)
	india := tb.ByName["india"]
	fir := tb.ByName["fir"]
	rec := india.FindStack("openmpi-1.4-gnu")
	art, err := toolchain.Compile(workload.Find("is"), rec, india)
	if err != nil {
		t.Fatal(err)
	}
	if err := fir.FS().WriteFile("/home/user/is.out.bin", art.Bytes); err != nil {
		t.Fatal(err)
	}
	pred, report, err := feam.RunTargetPhase(pbsConfig("target", "/home/user/is.out.bin"), fir, nil, runner())
	if err != nil {
		t.Fatal(err)
	}
	data, err := fir.FS().ReadFile(feam.OutputDir + "/is.out.bin.prediction")
	if err != nil {
		t.Fatalf("prediction file: %v", err)
	}
	if !strings.Contains(string(data), "verdict:") {
		t.Errorf("prediction file content:\n%s", data)
	}
	if pred.Ready {
		script, err := fir.FS().ReadFile(feam.OutputDir + "/is.out.bin.configure.sh")
		if err != nil {
			t.Fatalf("config script file: %v", err)
		}
		if !strings.HasPrefix(string(script), "#!/bin/sh") {
			t.Errorf("config script:\n%s", script)
		}
	}
	noted := false
	for _, n := range report.Notes {
		if strings.Contains(n, "output written") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("report does not mention output files: %v", report.Notes)
	}
}

// Test32BitBinaryRejected: a 32-bit image fails the ISA determinant's word
// size check on the 64-bit testbed.
func Test32BitBinaryRejected(t *testing.T) {
	tb := world(t)
	fir := tb.ByName["fir"]
	img := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class32, Machine: elfimg.EM386, Type: elfimg.TypeExec,
		Interp: "/lib/ld-linux.so.2",
		Needed: []string{"libc.so.6"},
	})
	if err := fir.FS().WriteFile("/home/user/legacy32.bin", img); err != nil {
		t.Fatal(err)
	}
	pred, _, err := feam.RunTargetPhase(pbsConfig("target", "/home/user/legacy32.bin"), fir, nil, runner())
	if err != nil {
		t.Fatal(err)
	}
	// A 32-bit x86 binary runs on x86-64 hardware in reality; FEAM's model
	// compares the uname processor against the image, and our simulated
	// sites carry no 32-bit loader or libraries, so the ISA determinant
	// correctly refuses it.
	if pred.Ready {
		t.Fatal("32-bit binary predicted ready on a site without 32-bit support")
	}
	if pred.Determinants[feam.DetISA].Outcome != feam.Fail {
		t.Errorf("ISA determinant = %+v", pred.Determinants[feam.DetISA])
	}
	// And the ground truth agrees.
	sim := execsim.NewSimulator(1)
	res := sim.Run(execsim.Request{
		Art:  &toolchain.Artifact{Name: "legacy32", Bytes: img},
		Site: fir,
	})
	if res.Class != execsim.FailISA {
		t.Errorf("execution class = %v", res.Class)
	}
}

// TestDiscoveryFailureInjection: a site with a damaged /proc is
// undiscoverable, and FEAM degrades with an explicit error instead of a
// bogus prediction.
func TestDiscoveryFailureInjection(t *testing.T) {
	site := sitemodel.New("broken-proc",
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "X", FeatureLevel: 1},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
	if err := site.FS().Remove("/proc/sys/kernel/uname"); err != nil {
		t.Fatal(err)
	}
	if _, err := feam.Discover(site); err == nil {
		t.Fatal("discovery succeeded without a uname surface")
	}
}

// TestGlibcDiscoveryAPIFallback: when the C library cannot be "executed"
// (no banner attribute), the EDC falls back to reading the version
// definitions out of the library image.
func TestGlibcDiscoveryAPIFallback(t *testing.T) {
	site := sitemodel.New("no-banner",
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "X", FeatureLevel: 1},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
	if err := site.InstallCLibrary(); err != nil {
		t.Fatal(err)
	}
	// Strip the exec banner: simulates a site where the libc binary cannot
	// be run from the command line.
	if err := site.FS().SetAttr("/lib64/libc.so.6", sitemodel.AttrExecOutput, ""); err != nil {
		t.Fatal(err)
	}
	env, err := feam.Discover(site)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Glibc.Equal(libver.V(2, 5)) {
		t.Errorf("glibc = %v", env.Glibc)
	}
	if env.GlibcSource != "api" {
		t.Errorf("GlibcSource = %q", env.GlibcSource)
	}
}

// TestSegmentOnlyBinaryThroughBDC: a binary whose section headers were
// stripped still yields a usable description via the program-header
// fallback (the paper's degraded-tool path).
func TestSegmentOnlyBinaryThroughBDC(t *testing.T) {
	tb := world(t)
	india := tb.ByName["india"]
	rec := india.FindStack("openmpi-1.4-gnu")
	art, err := toolchain.Compile(workload.Find("cg"), rec, india)
	if err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), art.Bytes...)
	// Zero the section-header references in the ELF64 header.
	for _, off := range []int{40, 41, 42, 43, 44, 45, 46, 47, 60, 61, 62, 63} {
		img[off] = 0
	}
	desc, err := feam.DescribeBytes(img, "stripped.cg")
	if err != nil {
		t.Fatal(err)
	}
	if desc.MPIImpl != "openmpi" {
		t.Errorf("MPIImpl = %q", desc.MPIImpl)
	}
	if desc.RequiredGlibc.IsZero() {
		t.Error("glibc requirement lost in fallback")
	}
	// Comments live in unmapped sections: the degraded path loses build
	// provenance, exactly as on real systems.
	if desc.BuildComment != "" {
		t.Errorf("BuildComment = %q", desc.BuildComment)
	}
}

// TestLdSoConfDirsUsedByPrediction: libraries visible only through
// /etc/ld.so.conf are found by the shared-library determinant.
func TestLdSoConfDirsUsedByPrediction(t *testing.T) {
	tb := world(t)
	fir := tb.ByName["fir"]
	// Intel runtimes at fir live in /opt/intel/12/lib, reachable only via
	// ld.so.conf — an intel binary's libimf must resolve through it.
	india := tb.ByName["india"]
	rec := india.FindStack("openmpi-1.4-intel")
	art, err := toolchain.Compile(workload.Find("is"), rec, india)
	if err != nil {
		t.Fatal(err)
	}
	if err := fir.FS().WriteFile("/home/user/is.intel.bin", art.Bytes); err != nil {
		t.Fatal(err)
	}
	pred, _, err := feam.RunTargetPhase(pbsConfig("target", "/home/user/is.intel.bin"), fir, nil, runner())
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("intel binary not ready at fir: %v", pred.Reasons)
	}
	for _, m := range pred.MissingLibs {
		if strings.Contains(m, "libimf") {
			t.Error("libimf not found through ld.so.conf")
		}
	}
}
