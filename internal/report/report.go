// Package report renders the reproduction's tables in the layout of the
// paper: Table I (MPI identification fingerprints), Table II (target site
// characteristics), Table III (prediction accuracy), Table IV (resolution
// impact), and the §VI.C statistics.
package report

import (
	"fmt"
	"sort"
	"strings"

	"feam/internal/experiment"
	"feam/internal/mpistack"
	"feam/internal/testbed"
	"feam/internal/usereffort"
	"feam/internal/workload"
)

// Table1 renders the MPI implementation identification fingerprints.
func Table1() string {
	var b strings.Builder
	b.WriteString("TABLE I. IDENTIFYING LIBRARIES OF MPI IMPLEMENTATIONS\n\n")
	fmt.Fprintf(&b, "%-16s %s\n", "MPI Implementation", "Library Dependencies")
	for _, row := range mpistack.FingerprintTable() {
		fmt.Fprintf(&b, "%-16s %s\n", row[0], row[1])
	}
	return b.String()
}

// Table2 renders the five-site characteristics from the built testbed.
func Table2(tb *testbed.Testbed) string {
	var b strings.Builder
	b.WriteString("TABLE II. TARGET SITE CHARACTERISTICS\n\n")
	for _, site := range tb.Sites {
		spec := tb.Specs[site.Name]
		fmt.Fprintf(&b, "%s (%s - %d cores)\n", site.Description, site.SystemType, site.Cores)
		fmt.Fprintf(&b, "  OS: %s %s (kernel %s)\n", site.OS.Distro, site.OS.Version, site.OS.Kernel)
		fmt.Fprintf(&b, "  C library: %s\n", site.Glibc)
		var comps []string
		for _, c := range spec.Compilers {
			comps = append(comps, c.String())
		}
		fmt.Fprintf(&b, "  Compilers: %s\n", strings.Join(comps, ", "))
		fmt.Fprintf(&b, "  Batch: %s; Env tool: %s; Interconnects: %s\n",
			spec.Manager, orNone(spec.EnvTool), strings.Join(site.Interconnects, ", "))
		b.WriteString("  MPI stacks:\n")
		for _, rec := range site.Stacks {
			note := ""
			if rec.Broken {
				note = "  [misconfigured]"
			}
			fmt.Fprintf(&b, "    %-24s (%s %s, %s %s)%s\n",
				rec.Key, rec.Impl, rec.ImplVersion, rec.CompilerFamily, rec.CompilerVersion, note)
		}
	}
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "none (path search)"
	}
	return s
}

// Table3 renders prediction accuracy next to the paper's reported values.
func Table3(ev *experiment.Evaluation) string {
	t3 := ev.Table3()
	var b strings.Builder
	b.WriteString("TABLE III. ACCURACY OF PREDICTION MODEL\n\n")
	fmt.Fprintf(&b, "%-22s %-18s %-18s\n", "", "NAS", "SPEC")
	fmt.Fprintf(&b, "%-22s %-18s %-18s\n", "Basic Prediction",
		pct(t3.Basic[workload.NPB].Accuracy()), pct(t3.Basic[workload.SPECMPI].Accuracy()))
	fmt.Fprintf(&b, "%-22s %-18s %-18s\n", "Extended Prediction",
		pct(t3.Extended[workload.NPB].Accuracy()), pct(t3.Extended[workload.SPECMPI].Accuracy()))
	fmt.Fprintf(&b, "\n%-22s %-18s %-18s\n", "(paper: basic)", "94%", "92%")
	fmt.Fprintf(&b, "%-22s %-18s %-18s\n", "(paper: extended)", "99%", "93%")
	fmt.Fprintf(&b, "\nDetail: basic NAS %s, SPEC %s; extended NAS %s, SPEC %s\n",
		t3.Basic[workload.NPB], t3.Basic[workload.SPECMPI],
		t3.Extended[workload.NPB], t3.Extended[workload.SPECMPI])
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// Table4 renders the resolution-model impact next to the paper's values.
func Table4(ev *experiment.Evaluation) string {
	t4 := ev.Table4()
	var b strings.Builder
	b.WriteString("TABLE IV. IMPACT OF RESOLUTION MODEL\n\n")
	fmt.Fprintf(&b, "%-28s %-10s %-10s\n", "", "NAS", "SPEC")
	fmt.Fprintf(&b, "%-28s %-10s %-10s\n", "Before Resolution",
		fmt.Sprintf("%.0f%%", t4.Before[workload.NPB].Pct()),
		fmt.Sprintf("%.0f%%", t4.Before[workload.SPECMPI].Pct()))
	fmt.Fprintf(&b, "%-28s %-10s %-10s\n", "After Resolution",
		fmt.Sprintf("%.0f%%", t4.After[workload.NPB].Pct()),
		fmt.Sprintf("%.0f%%", t4.After[workload.SPECMPI].Pct()))
	fmt.Fprintf(&b, "%-28s %-10s %-10s\n", "Increase due to Resolution",
		fmt.Sprintf("%.0f%%", t4.Increase(workload.NPB)),
		fmt.Sprintf("%.0f%%", t4.Increase(workload.SPECMPI)))
	fmt.Fprintf(&b, "\n%-28s %-10s %-10s\n", "(paper: before)", "58%", "47%")
	fmt.Fprintf(&b, "%-28s %-10s %-10s\n", "(paper: after)", "78%", "66%")
	fmt.Fprintf(&b, "%-28s %-10s %-10s\n", "(paper: increase)", "33%", "39%")
	fmt.Fprintf(&b, "\nDetail: before NAS %s, SPEC %s; after NAS %s, SPEC %s\n",
		t4.Before[workload.NPB], t4.Before[workload.SPECMPI],
		t4.After[workload.NPB], t4.After[workload.SPECMPI])
	return b.String()
}

// Stats renders the §VI.C statistics.
func Stats(ev *experiment.Evaluation) string {
	st := ev.Stats()
	var b strings.Builder
	b.WriteString("EVALUATION STATISTICS (§VI.C)\n\n")
	fmt.Fprintf(&b, "Test set: %d NAS binaries, %d SPEC binaries (paper: 110 / 147)\n",
		ev.Set.CountBySuite(workload.NPB), ev.Set.CountBySuite(workload.SPECMPI))
	fmt.Fprintf(&b, "Migration pairs evaluated: %d\n", len(ev.Pairs))
	fmt.Fprintf(&b, "Longest source phase: %v; longest target phase: %v (paper: both < 5 min)\n",
		st.MaxSource, st.MaxTarget)
	b.WriteString("Per-site library bundles (paper: avg ~45 MB):\n")
	var sites []string
	for s := range st.SiteBundleBytes {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		fmt.Fprintf(&b, "  %-12s %5.1f MB\n", s, float64(st.SiteBundleBytes[s])/(1<<20))
	}
	b.WriteString("Failure classes before resolution:\n")
	var classes []string
	for c := range st.FailureBreakdown {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		return st.FailureBreakdown[classes[i]] > st.FailureBreakdown[classes[j]]
	})
	total := st.FailureBreakdown.Total()
	for _, c := range classes {
		n := st.FailureBreakdown[c]
		fmt.Fprintf(&b, "  %-36s %4d (%4.1f%%)\n", c, n, 100*float64(n)/float64(total))
	}
	fmt.Fprintf(&b, "Migrations with staged library copies: %d\n", st.ResolvedPairs)
	if len(ev.ProbeCPUHours) > 0 {
		b.WriteString("FEAM probe-job allocation hours per site (debug queue):\n")
		var names []string
		for n := range ev.ProbeCPUHours {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-12s %7.1f CPU-hours\n", n, ev.ProbeCPUHours[n])
		}
	}
	b.WriteString("\n")
	b.WriteString(BySite(ev))
	return b.String()
}

// Effort renders the user-effort comparison (the paper's §VII future work,
// implemented here): manual site preparation vs FEAM across the whole
// migration matrix.
func Effort(ev *experiment.Evaluation, tb *testbed.Testbed) string {
	profiles := ev.EffortProfiles(tb)
	c := usereffort.Aggregate(profiles)
	var b strings.Builder
	b.WriteString("USER EFFORT MODEL (paper §VII future work)\n\n")
	b.WriteString(c.String())
	if len(profiles) > 0 {
		b.WriteString("\nrepresentative single migration:\n")
		b.WriteString(usereffort.Manual(profiles[0]).String())
		b.WriteString(usereffort.WithFEAM(profiles[0]).String())
	}
	return b.String()
}

// Ablations renders the mechanism-ablation comparison.
func Ablations(results []experiment.AblationResult) string {
	var b strings.Builder
	b.WriteString("MECHANISM ABLATIONS (extended prediction + configured execution)\n\n")
	fmt.Fprintf(&b, "%-20s %-22s %-22s\n", "configuration", "accuracy (NAS/SPEC)", "success (NAS/SPEC)")
	for _, r := range results {
		fmt.Fprintf(&b, "%-20s %-22s %-22s\n", r.Config.Name,
			fmt.Sprintf("%.0f%% / %.0f%%",
				100*r.Accuracy[workload.NPB].Accuracy(), 100*r.Accuracy[workload.SPECMPI].Accuracy()),
			fmt.Sprintf("%.0f%% / %.0f%%",
				r.Success[workload.NPB].Pct(), r.Success[workload.SPECMPI].Pct()))
	}
	return b.String()
}

// BySite renders the per-target-site breakdown.
func BySite(ev *experiment.Evaluation) string {
	var b strings.Builder
	b.WriteString("PER-SITE BREAKDOWN (extended prediction, after resolution)\n\n")
	fmt.Fprintf(&b, "%-12s %-8s %-22s %-18s\n", "site", "pairs", "prediction accuracy", "execution success")
	for _, row := range ev.BySite() {
		fmt.Fprintf(&b, "%-12s %-8d %-22s %-18s\n",
			row.Site, row.Pairs, row.Extended.String(), row.After.String())
	}
	return b.String()
}
