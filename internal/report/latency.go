package report

import (
	"fmt"
	"strings"
	"time"

	"feam/internal/obs"
)

// latencyOrder is the pipeline order the latency table lists operations
// in; operations the run never exercised are omitted.
var latencyOrder = []string{
	obs.OpDescribe,
	obs.OpDiscover,
	obs.OpEvaluate,
	obs.OpDeterminant,
	obs.OpProbe,
	obs.OpStaging,
	obs.OpStagingOp,
	obs.OpRetrySleep,
	obs.OpAssess,
}

// Latency renders the per-phase wall-clock latency table from a metrics
// registry — count, bucket-estimated p50/p90/p99, observed max, and total
// time per pipeline operation. These are host latencies of the
// reproduction itself, not the paper's simulated phase times.
func Latency(reg *obs.Registry) string {
	snap := reg.Snapshot()
	byOp := make(map[string]obs.HistSnapshot, len(snap.Histograms))
	for _, h := range snap.Histograms {
		byOp[h.Op] = h
	}
	var b strings.Builder
	b.WriteString("PIPELINE LATENCY (host wall-clock per operation)\n\n")
	fmt.Fprintf(&b, "%-12s %9s %10s %10s %10s %10s %12s\n",
		"operation", "count", "p50", "p90", "p99", "max", "total")
	for _, op := range latencyOrder {
		h, ok := byOp[op]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %9d %10s %10s %10s %10s %12s\n",
			op, h.Count,
			roundLatency(h.Quantile(0.50)), roundLatency(h.Quantile(0.90)),
			roundLatency(h.Quantile(0.99)), roundLatency(h.Max),
			roundLatency(h.Sum))
	}
	return b.String()
}

// roundLatency trims durations to three significant time units so the
// table stays readable across nanosecond-to-second scales.
func roundLatency(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	default:
		return d.String()
	}
}
