package report

import (
	"fmt"
	"strings"
	"time"

	"feam/internal/obs"
)

// latencyOrder is the pipeline order the latency table lists operations
// in; operations the run never exercised are omitted.
var latencyOrder = []string{
	obs.OpDescribe,
	obs.OpDiscover,
	obs.OpEvaluate,
	obs.OpDeterminant,
	obs.OpProbe,
	obs.OpStaging,
	obs.OpStagingOp,
	obs.OpRetrySleep,
	obs.OpAssess,
}

// Latency renders the per-phase wall-clock latency table from a metrics
// registry — count, bucket-estimated p50/p90/p99, observed max, and total
// time per pipeline operation. These are host latencies of the
// reproduction itself, not the paper's simulated phase times.
func Latency(reg *obs.Registry) string {
	snap := reg.Snapshot()
	byOp := make(map[string]obs.HistSnapshot, len(snap.Histograms))
	for _, h := range snap.Histograms {
		byOp[h.Op] = h
	}
	var b strings.Builder
	b.WriteString("PIPELINE LATENCY (host wall-clock per operation)\n\n")
	fmt.Fprintf(&b, "%-12s %9s %10s %10s %10s %10s %12s\n",
		"operation", "count", "p50", "p90", "p99", "max", "total")
	for _, op := range latencyOrder {
		h, ok := byOp[op]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %9d %10s %10s %10s %10s %12s\n",
			op, h.Count,
			roundLatency(h.Quantile(0.50)), roundLatency(h.Quantile(0.90)),
			roundLatency(h.Quantile(0.99)), roundLatency(h.Max),
			roundLatency(h.Sum))
	}
	return b.String()
}

// EngineActivity renders a one-line engine activity summary from the
// metrics registry's span-derived counters — the replacement for the
// removed Observer-fed EngineCounters line. Counter names match the
// RegistrySink vocabulary (evaluations, bdc_hits/bdc_misses, probe_runs,
// staging_commits, ...), so any registry fed by an engine via WithMetrics
// renders here.
func EngineActivity(reg *obs.Registry) string {
	c := func(name string) int64 { return reg.Counter(name).Load() }
	return fmt.Sprintf("evaluations %d (%d ready), bdc cache %d/%d, edc cache %d/%d, probes %d (%d failed, %d retried), staging %d committed/%d rolled back (%d retried writes)",
		c("evaluations"), c("ready_predictions"),
		c("bdc_hits"), c("bdc_hits")+c("bdc_misses"),
		c("edc_hits"), c("edc_hits")+c("edc_misses"),
		c("probe_runs"), c("probe_failures"), c("probe_retries"),
		c("staging_commits"), c("staging_rollbacks"), c("staging_retries"))
}

// roundLatency trims durations to three significant time units so the
// table stays readable across nanosecond-to-second scales.
func roundLatency(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	default:
		return d.String()
	}
}
