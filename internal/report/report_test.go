package report

import (
	"strings"
	"sync"
	"testing"

	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/metrics"
	"feam/internal/testbed"
	"feam/internal/workload"
)

var (
	once sync.Once
	tb   *testbed.Testbed
	ev   *experiment.Evaluation
	err  error
)

func setup(t *testing.T) (*testbed.Testbed, *experiment.Evaluation) {
	t.Helper()
	once.Do(func() {
		tb, err = testbed.Build()
		if err != nil {
			return
		}
		sim := execsim.NewSimulator(2013)
		var ts *experiment.TestSet
		ts, err = experiment.BuildTestSet(tb, sim)
		if err != nil {
			return
		}
		ev, err = experiment.Run(tb, ts, sim)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb, ev
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"TABLE I", "MVAPICH2", "libibverbs", "Open MPI", "libnsl", "MPICH2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	tb, _ := setup(t)
	out := Table2(tb)
	for _, want := range []string{
		"TABLE II", "Ranger", "Forge", "Blacklight", "India", "Fir",
		"CentOS 4.9", "2.3.4", "SUSE Linux Enterprise Server", "misconfigured",
		"openmpi-1.3-intel", "mpich2-1.3-pgi",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestTable3And4(t *testing.T) {
	_, ev := setup(t)
	out3 := Table3(ev)
	for _, want := range []string{"TABLE III", "Basic Prediction", "Extended Prediction", "NAS", "SPEC", "paper"} {
		if !strings.Contains(out3, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
	out4 := Table4(ev)
	for _, want := range []string{"TABLE IV", "Before Resolution", "After Resolution", "Increase"} {
		if !strings.Contains(out4, want) {
			t.Errorf("Table4 missing %q", want)
		}
	}
}

func TestStats(t *testing.T) {
	_, ev := setup(t)
	out := Stats(ev)
	for _, want := range []string{"Test set", "Migration pairs", "bundles", "Failure classes", "missing shared library"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats missing %q", want)
		}
	}
}

func TestEffort(t *testing.T) {
	tb, ev := setup(t)
	out := Effort(ev, tb)
	for _, want := range []string{"USER EFFORT", "manual:", "with FEAM:", "savings:", "hello world"} {
		if !strings.Contains(out, want) {
			t.Errorf("Effort missing %q", want)
		}
	}
}

func TestAblationsRendering(t *testing.T) {
	results := []experiment.AblationResult{}
	// Rendering works on whatever RunAblations produces; use a synthetic
	// result to keep this test fast.
	r := experiment.AblationResult{
		Config:   experiment.AblationConfig{Name: "full"},
		Accuracy: map[workload.Suite]*metrics.Confusion{workload.NPB: {TP: 9, TN: 1}, workload.SPECMPI: {TP: 8, TN: 1, FP: 1}},
		Success:  map[workload.Suite]*metrics.Rate{workload.NPB: {Num: 6, Den: 10}, workload.SPECMPI: {Num: 5, Den: 10}},
	}
	results = append(results, r)
	out := Ablations(results)
	for _, want := range []string{"ABLATIONS", "full", "90%", "60% / 50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Ablations missing %q:\n%s", want, out)
		}
	}
}
