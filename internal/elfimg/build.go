package elfimg

import (
	"encoding/binary"
	"fmt"
)

// Build renders the spec into a complete little-endian ELF image.
func Build(spec Spec) ([]byte, error) {
	if spec.Class != Class32 && spec.Class != Class64 {
		return nil, fmt.Errorf("elfimg: invalid class %d", spec.Class)
	}
	if spec.Type != TypeExec && spec.Type != TypeDyn {
		return nil, fmt.Errorf("elfimg: invalid type %d", spec.Type)
	}
	if spec.Soname != "" && spec.Type != TypeDyn {
		return nil, fmt.Errorf("elfimg: soname only valid for shared objects")
	}
	b := &builder{spec: spec, le: binary.LittleEndian}
	return b.build()
}

// MustBuild is Build for statically known specs; it panics on error.
func MustBuild(spec Spec) []byte {
	img, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return img
}

type builder struct {
	spec Spec
	le   binary.ByteOrder
}

// Geometry per class.
func (b *builder) ehsize() int {
	if b.spec.Class == Class32 {
		return 52
	}
	return 64
}
func (b *builder) phentsize() int {
	if b.spec.Class == Class32 {
		return 32
	}
	return 56
}
func (b *builder) shentsize() int {
	if b.spec.Class == Class32 {
		return 40
	}
	return 64
}
func (b *builder) dynentsize() int {
	if b.spec.Class == Class32 {
		return 8
	}
	return 16
}
func (b *builder) symentsize() int {
	if b.spec.Class == Class32 {
		return 16
	}
	return 24
}

// vaddrBase is the load address of the single PT_LOAD segment mapping the
// whole file. Shared objects are position independent (base 0).
func (b *builder) vaddrBase() uint64 {
	if b.spec.Type == TypeDyn {
		return 0
	}
	if b.spec.Class == Class32 {
		return 0x08048000
	}
	return 0x400000
}

type section struct {
	name      string
	shType    uint32
	flags     uint64
	offset    uint64
	size      uint64
	link      uint32
	info      uint32
	align     uint64
	entsize   uint64
	data      []byte
	addr      uint64
	addrValid bool // whether addr should be set to base+offset
}

func align(n, a uint64) uint64 {
	if a == 0 {
		return n
	}
	return (n + a - 1) &^ (a - 1)
}

func (b *builder) build() ([]byte, error) {
	spec := b.spec
	dynstr := newStringTable()

	// Pre-intern all dynamic strings.
	neededOffs := make([]uint32, len(spec.Needed))
	for i, n := range spec.Needed {
		neededOffs[i] = dynstr.add(n)
	}
	var sonameOff, rpathOff, runpathOff uint32
	if spec.Soname != "" {
		sonameOff = dynstr.add(spec.Soname)
	}
	if spec.RPath != "" {
		rpathOff = dynstr.add(spec.RPath)
	}
	if spec.RunPath != "" {
		runpathOff = dynstr.add(spec.RunPath)
	}
	for _, vn := range spec.VerNeeds {
		dynstr.add(vn.File)
		for _, v := range vn.Versions {
			dynstr.add(v)
		}
	}
	for _, vd := range spec.VerDefs {
		dynstr.add(vd)
	}

	// Symbol names.
	for _, im := range spec.Imports {
		dynstr.add(im.Name)
	}
	for _, ex := range spec.Exports {
		dynstr.add(ex.Name)
	}

	// Version tables. Version indices share one namespace per object:
	// definitions take 1..len(VerDefs); needed versions continue after
	// them (and after the reserved LOCAL/GLOBAL slots).
	verdefData, verdefIdxOf := b.buildVerdef(dynstr)
	verneedStart := uint16(len(spec.VerDefs)) + 2
	verneedData, verneedIdxOf := b.buildVerneed(dynstr, verneedStart)

	// Comment section: NUL-terminated strings.
	var commentData []byte
	for _, c := range spec.Comments {
		commentData = append(commentData, c...)
		commentData = append(commentData, 0)
	}

	// Synthetic text payload (deterministic from spec identity).
	var textData []byte
	if spec.TextSize > 0 {
		textData = make([]byte, spec.TextSize)
		seed := elfHash(spec.Soname + spec.Interp + fmt.Sprint(len(spec.Needed)))
		x := uint64(seed)*2862933555777941757 + 3037000493
		for i := range textData {
			x = x*2862933555777941757 + 3037000493
			textData[i] = byte(x >> 56)
		}
	}

	// Dynamic symbol table and its parallel versym array.
	hasSymbols := len(spec.Imports)+len(spec.Exports) > 0
	var dynsymData, versymData []byte
	if hasSymbols {
		syment := b.symentsize()
		symCount := 1 + len(spec.Imports) + len(spec.Exports)
		dynsymData = make([]byte, symCount*syment)
		versymData = make([]byte, symCount*2)
		b.le.PutUint16(versymData[0:], verNdxLocal) // null symbol
		writeSym := func(slot int, nameOff uint32, defined bool) {
			off := slot * syment
			const stInfo = 0x12 // GLOBAL | FUNC
			var shndx uint16
			if defined {
				shndx = 1
			}
			if b.spec.Class == Class32 {
				b.le.PutUint32(dynsymData[off:], nameOff)
				b.le.PutUint32(dynsymData[off+4:], 0) // st_value
				b.le.PutUint32(dynsymData[off+8:], 0) // st_size
				dynsymData[off+12] = stInfo
				dynsymData[off+13] = 0
				b.le.PutUint16(dynsymData[off+14:], shndx)
			} else {
				b.le.PutUint32(dynsymData[off:], nameOff)
				dynsymData[off+4] = stInfo
				dynsymData[off+5] = 0
				b.le.PutUint16(dynsymData[off+6:], shndx)
				b.le.PutUint64(dynsymData[off+8:], 0)  // st_value
				b.le.PutUint64(dynsymData[off+16:], 0) // st_size
			}
		}
		slot := 1
		for _, im := range spec.Imports {
			if im.Version != "" {
				if _, ok := verneedIdxOf[[2]string{im.Library, im.Version}]; !ok {
					return nil, fmt.Errorf("elfimg: import %s binds version %s@%s not in VerNeeds",
						im.Name, im.Version, im.Library)
				}
			}
			writeSym(slot, dynstr.add(im.Name), false)
			idx := uint16(verNdxGlobal)
			if im.Version != "" {
				idx = verneedIdxOf[[2]string{im.Library, im.Version}]
			}
			b.le.PutUint16(versymData[slot*2:], idx)
			slot++
		}
		for _, ex := range spec.Exports {
			if ex.Version != "" {
				if _, ok := verdefIdxOf[ex.Version]; !ok {
					return nil, fmt.Errorf("elfimg: export %s binds version %s not in VerDefs",
						ex.Name, ex.Version)
				}
			}
			writeSym(slot, dynstr.add(ex.Name), true)
			idx := uint16(verNdxGlobal)
			if ex.Version != "" {
				idx = verdefIdxOf[ex.Version]
			}
			b.le.PutUint16(versymData[slot*2:], idx)
			slot++
		}
	}

	// Section list in file order. Index 0 is the null section.
	var sections []*section
	addSection := func(s *section) int {
		sections = append(sections, s)
		return len(sections) - 1
	}
	addSection(&section{name: ""}) // SHT_NULL

	var interpIdx int
	if spec.Interp != "" {
		interpIdx = addSection(&section{
			name: ".interp", shType: shtProgbits, flags: 2, /* SHF_ALLOC */
			data: append([]byte(spec.Interp), 0), align: 1, addrValid: true,
		})
	}
	var textIdx int
	if len(textData) > 0 {
		textIdx = addSection(&section{
			name: ".text", shType: shtProgbits, flags: 2 | 4, /* ALLOC|EXECINSTR */
			data: textData, align: 16, addrValid: true,
		})
	}
	_ = textIdx
	dynstrIdx := addSection(&section{
		name: ".dynstr", shType: shtStrtab, flags: 2,
		data: dynstr.data, align: 1, addrValid: true,
	})
	var dynsymIdx, versymIdx int
	if hasSymbols {
		dynsymIdx = addSection(&section{
			name: ".dynsym", shType: shtDynsym, flags: 2,
			data: dynsymData, align: 8, link: uint32(dynstrIdx),
			info: 1, entsize: uint64(b.symentsize()), addrValid: true,
		})
		versymIdx = addSection(&section{
			name: ".gnu.version", shType: shtGnuVersym, flags: 2,
			data: versymData, align: 2, link: uint32(dynsymIdx),
			entsize: 2, addrValid: true,
		})
	}
	var verneedIdx, verdefIdx int
	if len(verneedData) > 0 {
		verneedIdx = addSection(&section{
			name: ".gnu.version_r", shType: shtGnuVerneed, flags: 2,
			data: verneedData, align: 4, link: uint32(dynstrIdx),
			info: uint32(len(spec.VerNeeds)), addrValid: true,
		})
	}
	if len(verdefData) > 0 {
		verdefIdx = addSection(&section{
			name: ".gnu.version_d", shType: shtGnuVerdef, flags: 2,
			data: verdefData, align: 4, link: uint32(dynstrIdx),
			info: uint32(len(spec.VerDefs)), addrValid: true,
		})
	}
	dynamicIdx := addSection(&section{
		name: ".dynamic", shType: shtDynamic, flags: 2 | 1, /* ALLOC|WRITE */
		align: uint64(b.dynentsize()), link: uint32(dynstrIdx),
		entsize: uint64(b.dynentsize()), addrValid: true,
		// data filled in below once offsets are known
	})
	if len(commentData) > 0 {
		addSection(&section{
			name: ".comment", shType: shtProgbits, flags: 0,
			data: commentData, align: 1,
		})
	}
	shstrtab := newStringTable()
	shstrtabIdx := addSection(&section{
		name: ".shstrtab", shType: shtStrtab, flags: 0, align: 1,
	})
	for _, s := range sections {
		shstrtab.add(s.name)
	}
	sections[shstrtabIdx].data = shstrtab.data

	// Program header count: PT_LOAD always; PT_INTERP for executables with
	// an interpreter; PT_DYNAMIC always.
	phnum := 2
	if spec.Interp != "" {
		phnum = 3
	}

	// Lay out file offsets. The dynamic section size must be known first:
	// entries = needed + soname? + rpath? + strtab + strsz + verneed(2)? +
	// verdef(2)? + null.
	dynCount := len(spec.Needed) + 2 + 1 // needed + strtab/strsz + null
	if hasSymbols {
		dynCount += 3 // symtab, syment, versym
	}
	if spec.Soname != "" {
		dynCount++
	}
	if spec.RPath != "" {
		dynCount++
	}
	if spec.RunPath != "" {
		dynCount++
	}
	if len(verneedData) > 0 {
		dynCount += 2
	}
	if len(verdefData) > 0 {
		dynCount += 2
	}
	sections[dynamicIdx].data = make([]byte, dynCount*b.dynentsize())

	off := uint64(b.ehsize() + phnum*b.phentsize())
	base := b.vaddrBase()
	for i, s := range sections {
		if i == 0 {
			continue
		}
		off = align(off, s.align)
		s.offset = off
		s.size = uint64(len(s.data))
		if s.addrValid {
			s.addr = base + s.offset
		}
		off += s.size
	}
	shoff := align(off, 8)
	fileSize := shoff + uint64(len(sections)*b.shentsize())

	// Now fill the dynamic section with final addresses.
	dynstrSec := sections[dynstrIdx]
	var dyn []byte
	putDyn := func(tag int64, val uint64) {
		if b.spec.Class == Class32 {
			var buf [8]byte
			b.le.PutUint32(buf[0:], uint32(tag))
			b.le.PutUint32(buf[4:], uint32(val))
			dyn = append(dyn, buf[:]...)
		} else {
			var buf [16]byte
			b.le.PutUint64(buf[0:], uint64(tag))
			b.le.PutUint64(buf[8:], val)
			dyn = append(dyn, buf[:]...)
		}
	}
	for _, o := range neededOffs {
		putDyn(dtNeeded, uint64(o))
	}
	if spec.Soname != "" {
		putDyn(dtSoname, uint64(sonameOff))
	}
	if spec.RPath != "" {
		putDyn(dtRpath, uint64(rpathOff))
	}
	if spec.RunPath != "" {
		putDyn(dtRunpath, uint64(runpathOff))
	}
	putDyn(dtStrtab, dynstrSec.addr)
	putDyn(dtStrsz, dynstrSec.size)
	if hasSymbols {
		putDyn(dtSymtab, sections[dynsymIdx].addr)
		putDyn(dtSyment, uint64(b.symentsize()))
		putDyn(dtVersym, sections[versymIdx].addr)
	}
	if len(verneedData) > 0 {
		putDyn(dtVerneed, sections[verneedIdx].addr)
		putDyn(dtVerneednum, uint64(len(spec.VerNeeds)))
	}
	if len(verdefData) > 0 {
		putDyn(dtVerdef, sections[verdefIdx].addr)
		putDyn(dtVerdefnum, uint64(len(spec.VerDefs)))
	}
	putDyn(dtNull, 0)
	if len(dyn) != len(sections[dynamicIdx].data) {
		return nil, fmt.Errorf("elfimg: internal error: dynamic size mismatch (%d != %d)",
			len(dyn), len(sections[dynamicIdx].data))
	}
	sections[dynamicIdx].data = dyn

	// Assemble the file.
	img := make([]byte, fileSize)
	b.writeEhdr(img, phnum, shoff, len(sections), shstrtabIdx)
	b.writePhdrs(img, sections, interpIdx, dynamicIdx, spec.Interp != "", fileSize)
	for i, s := range sections {
		if i == 0 {
			continue
		}
		copy(img[s.offset:], s.data)
	}
	// Section header table.
	for i, s := range sections {
		b.writeShdr(img[shoff+uint64(i*b.shentsize()):], s, shstrtab)
	}
	return img, nil
}

// buildVerneed renders the version-needs table, assigning each (file,
// version) pair a globally unique versym index starting at start.
func (b *builder) buildVerneed(dynstr *stringTable, start uint16) ([]byte, map[[2]string]uint16) {
	spec := b.spec
	if len(spec.VerNeeds) == 0 {
		return nil, nil
	}
	idxOf := map[[2]string]uint16{}
	next := start
	var out []byte
	for i, vn := range spec.VerNeeds {
		entrySize := 16 + 16*len(vn.Versions)
		nextOff := uint32(entrySize)
		if i == len(spec.VerNeeds)-1 {
			nextOff = 0
		}
		var hdr [16]byte
		b.le.PutUint16(hdr[0:], 1)                        // vn_version
		b.le.PutUint16(hdr[2:], uint16(len(vn.Versions))) // vn_cnt
		b.le.PutUint32(hdr[4:], dynstr.add(vn.File))      // vn_file
		b.le.PutUint32(hdr[8:], 16)                       // vn_aux
		b.le.PutUint32(hdr[12:], nextOff)                 // vn_next
		out = append(out, hdr[:]...)
		for j, v := range vn.Versions {
			idxOf[[2]string{vn.File, v}] = next
			var aux [16]byte
			b.le.PutUint32(aux[0:], elfHash(v))    // vna_hash
			b.le.PutUint16(aux[4:], 0)             // vna_flags
			b.le.PutUint16(aux[6:], next)          // vna_other (version index)
			b.le.PutUint32(aux[8:], dynstr.add(v)) // vna_name
			next++
			auxNext := uint32(16)
			if j == len(vn.Versions)-1 {
				auxNext = 0
			}
			b.le.PutUint32(aux[12:], auxNext) // vna_next
			out = append(out, aux[:]...)
		}
	}
	return out, idxOf
}

// buildVerdef renders the version-definitions table; each definition's
// vd_ndx is its versym index.
func (b *builder) buildVerdef(dynstr *stringTable) ([]byte, map[string]uint16) {
	spec := b.spec
	if len(spec.VerDefs) == 0 {
		return nil, nil
	}
	idxOf := map[string]uint16{}
	var out []byte
	for i, vd := range spec.VerDefs {
		idxOf[vd] = uint16(i + 1)
		const entrySize = 20 + 8
		next := uint32(entrySize)
		if i == len(spec.VerDefs)-1 {
			next = 0
		}
		var hdr [20]byte
		b.le.PutUint16(hdr[0:], 1)           // vd_version
		b.le.PutUint16(hdr[2:], 0)           // vd_flags
		b.le.PutUint16(hdr[4:], uint16(i+1)) // vd_ndx
		b.le.PutUint16(hdr[6:], 1)           // vd_cnt
		b.le.PutUint32(hdr[8:], elfHash(vd)) // vd_hash
		b.le.PutUint32(hdr[12:], 20)         // vd_aux
		b.le.PutUint32(hdr[16:], next)       // vd_next
		out = append(out, hdr[:]...)
		var aux [8]byte
		b.le.PutUint32(aux[0:], dynstr.add(vd)) // vda_name
		b.le.PutUint32(aux[4:], 0)              // vda_next
		out = append(out, aux[:]...)
	}
	return out, idxOf
}

func (b *builder) writeEhdr(img []byte, phnum int, shoff uint64, shnum, shstrndx int) {
	img[0], img[1], img[2], img[3] = 0x7f, 'E', 'L', 'F'
	img[4] = byte(b.spec.Class)
	img[5] = 1 // ELFDATA2LSB
	img[6] = 1 // EV_CURRENT
	// e_ident[7..15] zero: SysV ABI.
	entry := b.vaddrBase()
	if b.spec.Class == Class32 {
		b.le.PutUint16(img[16:], uint16(b.spec.Type))
		b.le.PutUint16(img[18:], uint16(b.spec.Machine))
		b.le.PutUint32(img[20:], 1)
		b.le.PutUint32(img[24:], uint32(entry))
		b.le.PutUint32(img[28:], uint32(b.ehsize())) // e_phoff
		b.le.PutUint32(img[32:], uint32(shoff))
		b.le.PutUint32(img[36:], 0) // e_flags
		b.le.PutUint16(img[40:], uint16(b.ehsize()))
		b.le.PutUint16(img[42:], uint16(b.phentsize()))
		b.le.PutUint16(img[44:], uint16(phnum))
		b.le.PutUint16(img[46:], uint16(b.shentsize()))
		b.le.PutUint16(img[48:], uint16(shnum))
		b.le.PutUint16(img[50:], uint16(shstrndx))
		return
	}
	b.le.PutUint16(img[16:], uint16(b.spec.Type))
	b.le.PutUint16(img[18:], uint16(b.spec.Machine))
	b.le.PutUint32(img[20:], 1)
	b.le.PutUint64(img[24:], entry)
	b.le.PutUint64(img[32:], uint64(b.ehsize())) // e_phoff
	b.le.PutUint64(img[40:], shoff)
	b.le.PutUint32(img[48:], 0) // e_flags
	b.le.PutUint16(img[52:], uint16(b.ehsize()))
	b.le.PutUint16(img[54:], uint16(b.phentsize()))
	b.le.PutUint16(img[56:], uint16(phnum))
	b.le.PutUint16(img[58:], uint16(b.shentsize()))
	b.le.PutUint16(img[60:], uint16(shnum))
	b.le.PutUint16(img[62:], uint16(shstrndx))
}

func (b *builder) writePhdrs(img []byte, sections []*section, interpIdx, dynamicIdx int, hasInterp bool, fileSize uint64) {
	base := b.vaddrBase()
	phoff := b.ehsize()
	i := 0
	put := func(pType uint32, flags uint32, offset, vaddr, filesz, memsz, alignv uint64) {
		p := img[phoff+i*b.phentsize():]
		if b.spec.Class == Class32 {
			b.le.PutUint32(p[0:], pType)
			b.le.PutUint32(p[4:], uint32(offset))
			b.le.PutUint32(p[8:], uint32(vaddr))
			b.le.PutUint32(p[12:], uint32(vaddr))
			b.le.PutUint32(p[16:], uint32(filesz))
			b.le.PutUint32(p[20:], uint32(memsz))
			b.le.PutUint32(p[24:], flags)
			b.le.PutUint32(p[28:], uint32(alignv))
		} else {
			b.le.PutUint32(p[0:], pType)
			b.le.PutUint32(p[4:], flags)
			b.le.PutUint64(p[8:], offset)
			b.le.PutUint64(p[16:], vaddr)
			b.le.PutUint64(p[24:], vaddr)
			b.le.PutUint64(p[32:], filesz)
			b.le.PutUint64(p[40:], memsz)
			b.le.PutUint64(p[48:], alignv)
		}
		i++
	}
	// PT_LOAD mapping the whole file read/execute.
	put(ptLoad, 5 /* R+X */, 0, base, fileSize, fileSize, 0x1000)
	if hasInterp {
		s := sections[interpIdx]
		put(ptInterp, 4 /* R */, s.offset, s.addr, s.size, s.size, 1)
	}
	d := sections[dynamicIdx]
	put(ptDynamic, 6 /* R+W */, d.offset, d.addr, d.size, d.size, uint64(b.dynentsize()))
}

func (b *builder) writeShdr(dst []byte, s *section, shstrtab *stringTable) {
	nameOff := shstrtab.add(s.name)
	if b.spec.Class == Class32 {
		b.le.PutUint32(dst[0:], nameOff)
		b.le.PutUint32(dst[4:], s.shType)
		b.le.PutUint32(dst[8:], uint32(s.flags))
		b.le.PutUint32(dst[12:], uint32(s.addr))
		b.le.PutUint32(dst[16:], uint32(s.offset))
		b.le.PutUint32(dst[20:], uint32(s.size))
		b.le.PutUint32(dst[24:], s.link)
		b.le.PutUint32(dst[28:], s.info)
		b.le.PutUint32(dst[32:], uint32(s.align))
		b.le.PutUint32(dst[36:], uint32(s.entsize))
		return
	}
	b.le.PutUint32(dst[0:], nameOff)
	b.le.PutUint32(dst[4:], s.shType)
	b.le.PutUint64(dst[8:], s.flags)
	b.le.PutUint64(dst[16:], s.addr)
	b.le.PutUint64(dst[24:], s.offset)
	b.le.PutUint64(dst[32:], s.size)
	b.le.PutUint32(dst[40:], s.link)
	b.le.PutUint32(dst[44:], s.info)
	b.le.PutUint64(dst[48:], s.align)
	b.le.PutUint64(dst[56:], s.entsize)
}
