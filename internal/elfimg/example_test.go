package elfimg_test

import (
	"fmt"

	"feam/internal/elfimg"
)

// Example shows a build/parse round trip of a shared library image.
func Example() {
	img := elfimg.MustBuild(elfimg.Spec{
		Class:   elfimg.Class64,
		Machine: elfimg.EMX8664,
		Type:    elfimg.TypeDyn,
		Soname:  "libmpich.so.1.2",
		Needed:  []string{"libibverbs.so.1", "libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.3.4"}},
		},
		VerDefs: []string{"libmpich.so.1.2"},
	})
	f, _ := elfimg.Parse(img)
	fmt.Println(f.Format())
	fmt.Println(f.Soname)
	fmt.Println(f.Needed)
	fmt.Println(f.VersionRefsFor("libc.so.6"))
	// Output:
	// elf64-x86-64
	// libmpich.so.1.2
	// [libibverbs.so.1 libc.so.6]
	// [GLIBC_2.3.4]
}
