// Package elfimg builds and parses ELF images carrying exactly the metadata
// FEAM's Binary Description Component consumes: file class and machine
// (ISA/bitness), file type, the dynamic section (DT_NEEDED, DT_SONAME,
// DT_RPATH), GNU symbol-version references (.gnu.version_r) and definitions
// (.gnu.version_d), and the .comment section with build provenance.
//
// The builder emits genuine ELF32/ELF64 little-endian byte images with
// program headers, section headers and correctly linked string tables; the
// images parse with the standard library's debug/elf (used in tests as an
// independent oracle). The parser is an independent implementation that
// reads either the section-header view (the `objdump -p` path) or, as a
// fallback, only the program-header view (the degraded path the paper
// describes when tools such as ldd fail on a binary).
package elfimg

import "fmt"

// Class is the ELF word size.
type Class uint8

const (
	Class32 Class = 1
	Class64 Class = 2
)

func (c Class) String() string {
	switch c {
	case Class32:
		return "ELF32"
	case Class64:
		return "ELF64"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Bits returns the word size in bits.
func (c Class) Bits() int {
	if c == Class32 {
		return 32
	}
	return 64
}

// Machine is the ELF machine architecture.
type Machine uint16

const (
	EM386     Machine = 3
	EMPPC     Machine = 20
	EMPPC64   Machine = 21
	EMX8664   Machine = 62
	EMAARCH64 Machine = 183
)

func (m Machine) String() string {
	switch m {
	case EM386:
		return "i386"
	case EMPPC:
		return "ppc"
	case EMPPC64:
		return "ppc64"
	case EMX8664:
		return "x86-64"
	case EMAARCH64:
		return "aarch64"
	default:
		return fmt.Sprintf("machine-%d", uint16(m))
	}
}

// FileType is the ELF object file type.
type FileType uint16

const (
	TypeExec FileType = 2
	TypeDyn  FileType = 3
)

func (t FileType) String() string {
	switch t {
	case TypeExec:
		return "EXEC"
	case TypeDyn:
		return "DYN"
	default:
		return fmt.Sprintf("type-%d", uint16(t))
	}
}

// Dynamic tags used by the builder and parser.
const (
	dtNull       = 0
	dtNeeded     = 1
	dtStrtab     = 5
	dtStrsz      = 10
	dtSoname     = 14
	dtRpath      = 15
	dtRunpath    = 29
	dtVerneed    = 0x6ffffffe
	dtVerneednum = 0x6fffffff
	dtVerdef     = 0x6ffffffc
	dtVerdefnum  = 0x6ffffffd
)

// Section types.
const (
	shtNull       = 0
	shtProgbits   = 1
	shtStrtab     = 3
	shtDynamic    = 6
	shtNobits     = 8
	shtDynsym     = 11
	shtGnuVerdef  = 0x6ffffffd
	shtGnuVerneed = 0x6ffffffe
	shtGnuVersym  = 0x6fffffff
)

// Additional dynamic tags for the symbol table.
const (
	dtSymtab = 6
	dtSyment = 11
	dtVersym = 0x6ffffff0
)

// Special versym indices.
const (
	verNdxLocal  = 0
	verNdxGlobal = 1
)

// Program header types.
const (
	ptLoad    = 1
	ptDynamic = 2
	ptInterp  = 3
)

// VerNeed records the version requirements a binary places on one of its
// shared-library dependencies, e.g. {File: "libc.so.6",
// Versions: ["GLIBC_2.2.5", "GLIBC_2.3.4"]}.
type VerNeed struct {
	File     string
	Versions []string
}

// ImportedSymbol is an undefined dynamic symbol together with its GNU
// version binding: the name, the version it is bound to (may be empty), and
// the dependency file expected to provide it (from the version-needs table;
// empty for unversioned imports).
type ImportedSymbol struct {
	Name    string
	Version string
	Library string
}

// ExportedSymbol is a defined dynamic symbol, optionally bound to one of
// the object's version definitions.
type ExportedSymbol struct {
	Name    string
	Version string
}

// Spec describes the ELF image to build.
type Spec struct {
	Class   Class
	Machine Machine
	Type    FileType

	// Interp is the program-interpreter path, usually set for executables
	// (/lib64/ld-linux-x86-64.so.2).
	Interp string
	// Soname is the DT_SONAME entry; set for shared libraries.
	Soname string
	// Needed lists DT_NEEDED dependencies in link order.
	Needed []string
	// RPath is an optional DT_RPATH search path (legacy semantics:
	// searched before LD_LIBRARY_PATH and inherited by dependencies).
	RPath string
	// RunPath is an optional DT_RUNPATH search path (modern semantics:
	// searched after LD_LIBRARY_PATH, not inherited; its presence disables
	// DT_RPATH).
	RunPath string
	// VerNeeds are GNU version references, one per dependency that exports
	// versioned symbols the binary uses.
	VerNeeds []VerNeed
	// VerDefs are GNU version definitions this object provides (libraries
	// only); the first entry conventionally repeats the soname.
	VerDefs []string
	// Comments become NUL-separated strings in the .comment section, the
	// compiler/linker provenance `readelf -p .comment` would show.
	Comments []string
	// Imports are undefined dynamic symbols; a non-empty Version must
	// appear in the VerNeeds entry for the symbol's Library.
	Imports []ImportedSymbol
	// Exports are defined dynamic symbols; a non-empty Version must appear
	// in VerDefs.
	Exports []ExportedSymbol
	// TextSize adds a synthetic .text payload of this many bytes so images
	// have realistic sizes; content is deterministic.
	TextSize int
}

// elfHash is the SysV ELF hash used in version tables.
func elfHash(name string) uint32 {
	var h uint32
	for i := 0; i < len(name); i++ {
		h = (h << 4) + uint32(name[i])
		g := h & 0xf0000000
		if g != 0 {
			h ^= g >> 24
		}
		h &^= g
	}
	return h
}

// stringTable builds a NUL-separated string table with offset lookup.
type stringTable struct {
	data []byte
	off  map[string]uint32
}

func newStringTable() *stringTable {
	return &stringTable{data: []byte{0}, off: map[string]uint32{"": 0}}
}

func (st *stringTable) add(s string) uint32 {
	if o, ok := st.off[s]; ok {
		return o
	}
	o := uint32(len(st.data))
	st.data = append(st.data, s...)
	st.data = append(st.data, 0)
	st.off[s] = o
	return o
}
