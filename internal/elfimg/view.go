package elfimg

import (
	"encoding/binary"
	"fmt"
)

// View is a zero-copy window over an ELF image. Instead of materializing
// []string/map fields at parse time the way File does, a View records
// validated offsets into the input byte slice and hands out sub-slice
// aliases on demand: accessors and iterators never allocate, which is
// what keeps the EDC survey hot loop allocation-free when it classifies
// every shared object in a library directory.
//
// A View is produced by Parser.Parse and remains valid until the next
// Parse call on the same Parser (the scratch buffers backing the needed
// and version tables are reused) or until the input slice is mutated.
// Callers that need the data to outlive the Parser must copy it out —
// that is exactly what the Parse compatibility shim does.
type View struct {
	data []byte
	cls  Class
	mach Machine
	typ  FileType

	hasSections bool

	// Program-header geometry, kept so the segment fallback can re-walk
	// the table without allocating a slice of headers.
	phoff     uint64
	phnum     uint16
	phentsize uint16

	interp  region // raw bytes in data (may carry a trailing NUL)
	dynstr  region // dynamic string table in data
	comment region // .comment payload in data (section view only)

	soname  int32 // offsets into dynstr; -1 when absent
	rpath   int32
	runpath int32

	needed   []uint32  // dynstr offsets, scratch-backed
	verPairs []verPair // flattened verneed aux entries, scratch-backed
	vnFiles  []uint32  // dynstr offset of each verneed file entry, scratch-backed
	verDefs  []verDef  // verdef entries, scratch-backed

	dynsym region // symbol table in data (section view only)
	versym region // parallel version-index array, zero when absent
}

// region is a validated [off, off+size) window of the underlying image.
type region struct{ off, size uint64 }

// verPair is one (dependency file, version name) reference from the
// verneed table, flattened out of the aux chains at parse time.
type verPair struct {
	entry   uint16 // index into vnFiles: which dependency needs it
	idx     uint16 // versym index bound to this version
	nameOff uint32 // version name, dynstr offset
}

// verDef is one defined version from the verdef table.
type verDef struct {
	idx     uint16
	nameOff uint32
}

// SymbolRef is one dynamic symbol yielded by View.DynSymbols. The byte
// slices alias the image; none of them are retained by the View.
type SymbolRef struct {
	Name     []byte
	Version  []byte // nil when the symbol has no version binding
	Library  []byte // dependency providing the version (imports only)
	Imported bool   // SHN_UNDEF: satisfied by a dependency
}

// Parser decodes ELF images into Views. The zero value is ready to use.
// Scratch buffers (needed offsets, flattened version tables) are retained
// across calls, so a warmed-up Parser parses with zero heap allocations;
// the cost is that each Parse invalidates the previous View.
type Parser struct {
	view     View
	needed   []uint32
	verPairs []verPair
	vnFiles  []uint32
	verDefs  []verDef
}

// Parse decodes data and returns a View aliasing it. The returned pointer
// refers to storage inside the Parser and is invalidated by the next call.
func (p *Parser) Parse(data []byte) (*View, error) {
	v := &p.view
	*v = View{
		data:    data,
		soname:  -1,
		rpath:   -1,
		runpath: -1,
	}
	p.needed = p.needed[:0]
	p.verPairs = p.verPairs[:0]
	p.vnFiles = p.vnFiles[:0]
	p.verDefs = p.verDefs[:0]

	if len(data) < 52 {
		return nil, ErrNotELF
	}
	if data[0] != 0x7f || data[1] != 'E' || data[2] != 'L' || data[3] != 'F' {
		return nil, ErrNotELF
	}
	cls := Class(data[4])
	if cls != Class32 && cls != Class64 {
		return nil, fmt.Errorf("elfimg: unknown ELF class %d", data[4])
	}
	if data[5] != 1 {
		return nil, fmt.Errorf("elfimg: only little-endian images are supported")
	}
	v.cls = cls

	var shoff uint64
	var shnum, shentsize, shstrndx uint16
	t, err := v.u16(16)
	if err != nil {
		return nil, err
	}
	m, err := v.u16(18)
	if err != nil {
		return nil, err
	}
	v.typ, v.mach = FileType(t), Machine(m)
	if cls == Class32 {
		p32, _ := v.u32(28)
		s32, _ := v.u32(32)
		v.phoff, shoff = uint64(p32), uint64(s32)
		v.phentsize, _ = v.u16(42)
		v.phnum, _ = v.u16(44)
		shentsize, _ = v.u16(46)
		shnum, _ = v.u16(48)
		shstrndx, _ = v.u16(50)
	} else {
		v.phoff, _ = v.u64(32)
		shoff, _ = v.u64(40)
		v.phentsize, _ = v.u16(54)
		v.phnum, _ = v.u16(56)
		shentsize, _ = v.u16(58)
		shnum, _ = v.u16(60)
		shstrndx, _ = v.u16(62)
	}
	if v.typ != TypeExec && v.typ != TypeDyn {
		return nil, fmt.Errorf("elfimg: unsupported object type %v", v.typ)
	}

	// PT_INTERP comes from the program headers regardless of which view
	// wins below.
	for i := 0; i < int(v.phnum); i++ {
		ph, err := v.phdrAt(i)
		if err != nil {
			return nil, err
		}
		if ph.pType == ptInterp {
			if _, err := v.bytes(ph.offset, ph.filesz); err != nil {
				return nil, err
			}
			v.interp = region{ph.offset, ph.filesz}
		}
	}

	if shoff != 0 && shnum > 0 {
		if err := p.parseSections(v, shoff, shnum, shentsize, shstrndx); err == nil {
			v.hasSections = true
			v.needed, v.verPairs, v.vnFiles, v.verDefs = p.needed, p.verPairs, p.vnFiles, p.verDefs
			return v, nil
		}
		// Section table unusable: reset anything the failed attempt
		// recorded and fall back to the dynamic segment.
		p.needed = p.needed[:0]
		p.verPairs = p.verPairs[:0]
		p.vnFiles = p.vnFiles[:0]
		p.verDefs = p.verDefs[:0]
		v.dynstr, v.comment, v.dynsym, v.versym = region{}, region{}, region{}, region{}
		v.soname, v.rpath, v.runpath = -1, -1, -1
	}
	if err := p.parseSegments(v); err != nil {
		return nil, err
	}
	v.needed, v.verPairs, v.vnFiles, v.verDefs = p.needed, p.verPairs, p.vnFiles, p.verDefs
	return v, nil
}

// --- raw readers -----------------------------------------------------

func (v *View) u16(off uint64) (uint16, error) {
	if off+2 > uint64(len(v.data)) {
		return 0, fmt.Errorf("elfimg: truncated at %d", off)
	}
	return binary.LittleEndian.Uint16(v.data[off:]), nil
}

func (v *View) u32(off uint64) (uint32, error) {
	if off+4 > uint64(len(v.data)) {
		return 0, fmt.Errorf("elfimg: truncated at %d", off)
	}
	return binary.LittleEndian.Uint32(v.data[off:]), nil
}

func (v *View) u64(off uint64) (uint64, error) {
	if off+8 > uint64(len(v.data)) {
		return 0, fmt.Errorf("elfimg: truncated at %d", off)
	}
	return binary.LittleEndian.Uint64(v.data[off:]), nil
}

func (v *View) bytes(off, n uint64) ([]byte, error) {
	if off+n > uint64(len(v.data)) || off+n < off {
		return nil, fmt.Errorf("elfimg: truncated slice [%d:%d)", off, off+n)
	}
	return v.data[off : off+n], nil
}

func (v *View) phdrAt(i int) (progHdr, error) {
	base := v.phoff + uint64(i)*uint64(v.phentsize)
	pType, err := v.u32(base)
	if err != nil {
		return progHdr{}, err
	}
	var ph progHdr
	ph.pType = pType
	if v.cls == Class32 {
		o, _ := v.u32(base + 4)
		va, _ := v.u32(base + 8)
		fz, _ := v.u32(base + 16)
		ph.offset, ph.vaddr, ph.filesz = uint64(o), uint64(va), uint64(fz)
	} else {
		ph.offset, _ = v.u64(base + 8)
		ph.vaddr, _ = v.u64(base + 16)
		ph.filesz, _ = v.u64(base + 32)
	}
	return ph, nil
}

// dynstrAt returns the NUL-terminated string at a dynstr offset, as an
// alias of the image. Out-of-range offsets yield an empty slice, matching
// the forgiving strAt behavior of the materializing parser.
func (v *View) dynstrAt(off uint32) []byte {
	if uint64(off) >= v.dynstr.size {
		return v.data[:0]
	}
	tab := v.data[v.dynstr.off : v.dynstr.off+v.dynstr.size]
	end := int(off)
	for end < len(tab) && tab[end] != 0 {
		end++
	}
	return tab[off:end]
}

// --- section / segment location passes --------------------------------

func (p *Parser) parseSections(v *View, shoff uint64, shnum, shentsize, shstrndx uint16) error {
	type secRef struct {
		offset uint64
		size   uint64
		link   uint32
		info   uint32
	}
	var dynamic, comment, verneedSec, verdefSec, dynsymSec, versymSec secRef
	var haveDynamic, haveComment, haveVerneed, haveVerdef, haveDynsym, haveVersym bool

	shdrAt := func(i int) (nameOff uint32, s secRef, shType uint32, err error) {
		base := shoff + uint64(i)*uint64(shentsize)
		nameOff, err = v.u32(base)
		if err != nil {
			return 0, secRef{}, 0, err
		}
		shType, _ = v.u32(base + 4)
		if v.cls == Class32 {
			o, _ := v.u32(base + 16)
			sz, _ := v.u32(base + 20)
			s.offset, s.size = uint64(o), uint64(sz)
			s.link, _ = v.u32(base + 24)
			s.info, _ = v.u32(base + 28)
		} else {
			s.offset, _ = v.u64(base + 24)
			s.size, _ = v.u64(base + 32)
			s.link, _ = v.u32(base + 40)
			s.info, _ = v.u32(base + 44)
		}
		return nameOff, s, shType, nil
	}

	if int(shstrndx) >= int(shnum) {
		return fmt.Errorf("elfimg: shstrndx %d out of range", shstrndx)
	}
	_, strs, _, err := shdrAt(int(shstrndx))
	if err != nil {
		return err
	}
	shstr, err := v.bytes(strs.offset, strs.size)
	if err != nil {
		return err
	}
	nameIs := func(off uint32, want string) bool {
		if int(off) >= len(shstr) {
			return false
		}
		rest := shstr[off:]
		if len(rest) <= len(want) {
			return false
		}
		for i := 0; i < len(want); i++ {
			if rest[i] != want[i] {
				return false
			}
		}
		return rest[len(want)] == 0
	}
	// ".comment" has a terminating NUL at exactly len(want) — but nameIs
	// above requires len(rest) > len(want); a name at the very end of the
	// table without its NUL is malformed and treated as a non-match.

	var dynLink uint32
	for i := 0; i < int(shnum); i++ {
		nameOff, s, shType, err := shdrAt(i)
		if err != nil {
			return err
		}
		switch {
		case shType == shtDynamic:
			dynamic, haveDynamic, dynLink = s, true, s.link
		case nameIs(nameOff, ".comment"):
			comment, haveComment = s, true
		case shType == shtGnuVerneed:
			verneedSec, haveVerneed = s, true
		case shType == shtGnuVerdef:
			verdefSec, haveVerdef = s, true
		case shType == shtDynsym:
			dynsymSec, haveDynsym = s, true
		case shType == shtGnuVersym:
			versymSec, haveVersym = s, true
		}
	}
	if !haveDynamic {
		return fmt.Errorf("elfimg: no dynamic section")
	}
	if int(dynLink) >= int(shnum) {
		return fmt.Errorf("elfimg: dynamic sh_link out of range")
	}
	_, dynstrHdr, _, err := shdrAt(int(dynLink))
	if err != nil {
		return err
	}
	if _, err := v.bytes(dynstrHdr.offset, dynstrHdr.size); err != nil {
		return err
	}
	v.dynstr = region{dynstrHdr.offset, dynstrHdr.size}

	if err := p.scanDynamic(v, dynamic.offset, dynamic.size); err != nil {
		return err
	}
	if haveVerneed {
		if err := p.scanVerneed(v, verneedSec.offset, verneedSec.size, int(verneedSec.info)); err != nil {
			return err
		}
	}
	if haveVerdef {
		if err := p.scanVerdef(v, verdefSec.offset, verdefSec.size, int(verdefSec.info)); err != nil {
			return err
		}
	}
	if haveDynsym {
		syment := uint64(24)
		if v.cls == Class32 {
			syment = 16
		}
		if dynsymSec.size%syment != 0 {
			return fmt.Errorf("elfimg: dynsym size %d not a multiple of %d", dynsymSec.size, syment)
		}
		if _, err := v.bytes(dynsymSec.offset, dynsymSec.size); err != nil {
			return err
		}
		v.dynsym = region{dynsymSec.offset, dynsymSec.size}
		if haveVersym {
			v.versym = region{versymSec.offset, versymSec.size}
		}
	}
	if haveComment {
		if _, err := v.bytes(comment.offset, comment.size); err != nil {
			return err
		}
		v.comment = region{comment.offset, comment.size}
	}
	return nil
}

// parseSegments recovers the dynamic metadata using only program headers,
// the way the dynamic loader itself would. No symbol table or .comment is
// available on this path.
func (p *Parser) parseSegments(v *View) error {
	var dyn progHdr
	haveDyn := false
	for i := 0; i < int(v.phnum); i++ {
		ph, err := v.phdrAt(i)
		if err != nil {
			return err
		}
		if ph.pType == ptDynamic {
			dyn, haveDyn = ph, true
			break
		}
	}
	if !haveDyn {
		return fmt.Errorf("elfimg: no PT_DYNAMIC segment")
	}
	vaddrToOff := func(vaddr uint64) (uint64, bool) {
		for i := 0; i < int(v.phnum); i++ {
			ph, err := v.phdrAt(i)
			if err != nil {
				return 0, false
			}
			if ph.pType == ptLoad && vaddr >= ph.vaddr && vaddr < ph.vaddr+ph.filesz {
				return ph.offset + (vaddr - ph.vaddr), true
			}
		}
		return 0, false
	}

	entsize := uint64(16)
	if v.cls == Class32 {
		entsize = 8
	}
	// First pass locates the string table and version tables so the
	// second pass can resolve name offsets.
	var strtabAddr, strsz, verneedAddr, verdefAddr uint64
	var verneedNum, verdefNum int
	for off := dyn.offset; off+entsize <= dyn.offset+dyn.filesz; off += entsize {
		tag, val, err := v.dynEntry(off, entsize)
		if err != nil {
			return err
		}
		if tag == dtNull {
			break
		}
		switch tag {
		case dtStrtab:
			strtabAddr = val
		case dtStrsz:
			strsz = val
		case dtVerneed:
			verneedAddr = val
		case dtVerneednum:
			verneedNum = int(val)
		case dtVerdef:
			verdefAddr = val
		case dtVerdefnum:
			verdefNum = int(val)
		}
	}
	strOff, ok := vaddrToOff(strtabAddr)
	if !ok {
		return fmt.Errorf("elfimg: DT_STRTAB address %#x not mapped", strtabAddr)
	}
	if _, err := v.bytes(strOff, strsz); err != nil {
		return err
	}
	v.dynstr = region{strOff, strsz}

	if err := p.scanDynamic(v, dyn.offset, dyn.filesz); err != nil {
		return err
	}
	if verneedAddr != 0 {
		if off, ok := vaddrToOff(verneedAddr); ok {
			if err := p.scanVerneed(v, off, uint64(len(v.data))-off, verneedNum); err != nil {
				return err
			}
		}
	}
	if verdefAddr != 0 {
		if off, ok := vaddrToOff(verdefAddr); ok {
			if err := p.scanVerdef(v, off, uint64(len(v.data))-off, verdefNum); err != nil {
				return err
			}
		}
	}
	return nil
}

func (v *View) dynEntry(off, entsize uint64) (tag int64, val uint64, err error) {
	if v.cls == Class32 {
		t, err := v.u32(off)
		if err != nil {
			return 0, 0, err
		}
		val, _ := v.u32(off + 4)
		return int64(int32(t)), uint64(val), nil
	}
	t, err := v.u64(off)
	if err != nil {
		return 0, 0, err
	}
	val, _ = v.u64(off + 8)
	return int64(t), val, nil
}

// scanDynamic records the dynstr offsets of DT_NEEDED/SONAME/RPATH/RUNPATH
// entries. dynstr must already be located.
func (p *Parser) scanDynamic(v *View, off, size uint64) error {
	entsize := uint64(16)
	if v.cls == Class32 {
		entsize = 8
	}
	for cur := off; cur+entsize <= off+size; cur += entsize {
		tag, val, err := v.dynEntry(cur, entsize)
		if err != nil {
			return err
		}
		switch tag {
		case dtNull:
			return nil
		case dtNeeded:
			p.needed = append(p.needed, clampStr(val))
		case dtSoname:
			v.soname = int32(clampStr(val))
		case dtRpath:
			v.rpath = int32(clampStr(val))
		case dtRunpath:
			v.runpath = int32(clampStr(val))
		}
	}
	return nil
}

// clampStr narrows a dynamic-entry value to the uint32 range used for
// dynstr offsets; out-of-range values become an offset past any table,
// which dynstrAt resolves to the empty string — same forgiving behavior
// as the materializing parser.
func clampStr(val uint64) uint32 {
	if val > 0xfffffffe {
		return 0xffffffff
	}
	return uint32(val)
}

// scanVerneed flattens the verneed table into (file, version) pairs.
func (p *Parser) scanVerneed(v *View, off, maxSize uint64, count int) error {
	// A hostile count cannot exceed one entry per 16 bytes of table.
	if max := int(maxSize / 16); count > max {
		count = max
	}
	cur := off
	for i := 0; i < count; i++ {
		if cur+16 > off+maxSize {
			return fmt.Errorf("elfimg: truncated verneed")
		}
		cnt, err := v.u16(cur + 2)
		if err != nil {
			return err
		}
		fileOff, _ := v.u32(cur + 4)
		auxOff, _ := v.u32(cur + 8)
		next, _ := v.u32(cur + 12)
		entry := uint16(len(p.vnFiles))
		p.vnFiles = append(p.vnFiles, fileOff)
		aux := cur + uint64(auxOff)
		for j := 0; j < int(cnt); j++ {
			other, err := v.u16(aux + 6)
			if err != nil {
				return err
			}
			nameOff, err := v.u32(aux + 8)
			if err != nil {
				return err
			}
			auxNext, _ := v.u32(aux + 12)
			p.verPairs = append(p.verPairs, verPair{entry: entry, idx: other, nameOff: nameOff})
			if auxNext == 0 {
				break
			}
			aux += uint64(auxNext)
		}
		if next == 0 {
			break
		}
		cur += uint64(next)
	}
	return nil
}

// scanVerdef records the defined versions.
func (p *Parser) scanVerdef(v *View, off, maxSize uint64, count int) error {
	// A hostile count cannot exceed one entry per 20 bytes of table.
	if max := int(maxSize / 20); count > max {
		count = max
	}
	cur := off
	for i := 0; i < count; i++ {
		if cur+20 > off+maxSize {
			return fmt.Errorf("elfimg: truncated verdef")
		}
		ndx, err := v.u16(cur + 4)
		if err != nil {
			return err
		}
		auxOff, err := v.u32(cur + 12)
		if err != nil {
			return err
		}
		next, _ := v.u32(cur + 16)
		nameOff, err := v.u32(cur + uint64(auxOff))
		if err != nil {
			return err
		}
		p.verDefs = append(p.verDefs, verDef{idx: ndx, nameOff: nameOff})
		if next == 0 {
			break
		}
		cur += uint64(next)
	}
	return nil
}

// --- accessors --------------------------------------------------------

// Class returns the ELF class (32/64-bit).
func (v *View) Class() Class { return v.cls }

// Machine returns the target machine.
func (v *View) Machine() Machine { return v.mach }

// Type returns the object type (executable or shared object).
func (v *View) Type() FileType { return v.typ }

// HasSections reports whether the section-header view was usable; when
// false the View was recovered from program headers only, and symbol and
// .comment data are unavailable.
func (v *View) HasSections() bool { return v.hasSections }

// Interp returns the PT_INTERP payload without its trailing NULs, or nil.
func (v *View) Interp() []byte {
	if v.interp.size == 0 {
		return nil
	}
	raw := v.data[v.interp.off : v.interp.off+v.interp.size]
	end := len(raw)
	for end > 0 && raw[end-1] == 0 {
		end--
	}
	return raw[:end]
}

// Soname returns the DT_SONAME string, or nil when absent.
func (v *View) Soname() []byte {
	if v.soname < 0 {
		return nil
	}
	return v.dynstrAt(uint32(v.soname))
}

// RPath returns the DT_RPATH string, or nil when absent.
func (v *View) RPath() []byte {
	if v.rpath < 0 {
		return nil
	}
	return v.dynstrAt(uint32(v.rpath))
}

// RunPath returns the DT_RUNPATH string, or nil when absent.
func (v *View) RunPath() []byte {
	if v.runpath < 0 {
		return nil
	}
	return v.dynstrAt(uint32(v.runpath))
}

// NeededCount returns the number of DT_NEEDED entries.
func (v *View) NeededCount() int { return len(v.needed) }

// NeededAt returns the i-th DT_NEEDED dependency name.
func (v *View) NeededAt(i int) []byte { return v.dynstrAt(v.needed[i]) }

// VerNeedCount returns the number of verneed file entries.
func (v *View) VerNeedCount() int { return len(v.vnFiles) }

// VerNeedFileAt returns the dependency file name of the i-th verneed entry.
func (v *View) VerNeedFileAt(i int) []byte { return v.dynstrAt(v.vnFiles[i]) }

// VerNeeds walks the flattened (entry, version) requirements in table
// order: entry indexes VerNeedFileAt. The walk stops when fn returns
// false. Entries whose aux chain is empty yield no pairs — use
// VerNeedCount/VerNeedFileAt to see every referenced file.
func (v *View) VerNeeds(fn func(entry int, version []byte) bool) {
	for i := range v.verPairs {
		pr := &v.verPairs[i]
		if !fn(int(pr.entry), v.dynstrAt(pr.nameOff)) {
			return
		}
	}
}

// VerDefCount returns the number of verdef entries.
func (v *View) VerDefCount() int { return len(v.verDefs) }

// VerDefs walks the defined version names in table order until fn
// returns false.
func (v *View) VerDefs(fn func(version []byte) bool) {
	for i := range v.verDefs {
		if !fn(v.dynstrAt(v.verDefs[i].nameOff)) {
			return
		}
	}
}

// Comments walks the NUL-separated .comment entries (section view only)
// until fn returns false.
func (v *View) Comments(fn func(comment []byte) bool) {
	raw := v.data[v.comment.off : v.comment.off+v.comment.size]
	start := 0
	for i := 0; i <= len(raw); i++ {
		if i == len(raw) || raw[i] == 0 {
			if i > start {
				if !fn(raw[start:i]) {
					return
				}
			}
			start = i + 1
		}
	}
}

// versionFor resolves a versym index to its (library, version) names. The
// linear scans stay allocation-free; version tables are small (a handful
// of entries for real shared objects), and verdef bindings take
// precedence over verneed ones, matching the materializing parser's
// last-write-wins map construction.
func (v *View) versionFor(idx uint16) (lib, ver []byte, ok bool) {
	for i := range v.verDefs {
		if v.verDefs[i].idx == idx {
			return nil, v.dynstrAt(v.verDefs[i].nameOff), true
		}
	}
	for i := range v.verPairs {
		if v.verPairs[i].idx == idx {
			return v.dynstrAt(v.vnFiles[v.verPairs[i].entry]), v.dynstrAt(v.verPairs[i].nameOff), true
		}
	}
	return nil, nil, false
}

// DynSymbols walks the dynamic symbol table (section view only) until fn
// returns false. Slot 0 and unnamed slots are skipped, mirroring the
// materializing parser.
func (v *View) DynSymbols(fn func(sym SymbolRef) bool) {
	if v.dynsym.size == 0 {
		return
	}
	syment := uint64(24)
	if v.cls == Class32 {
		syment = 16
	}
	count := int(v.dynsym.size / syment)
	for slot := 1; slot < count; slot++ {
		base := v.dynsym.off + uint64(slot)*syment
		nameOff, err := v.u32(base)
		if err != nil {
			return
		}
		var shndx uint16
		if v.cls == Class32 {
			shndx, _ = v.u16(base + 14)
		} else {
			shndx, _ = v.u16(base + 6)
		}
		name := v.dynstrAt(nameOff)
		if len(name) == 0 {
			continue
		}
		var sym SymbolRef
		sym.Name = name
		sym.Imported = shndx == 0
		if v.versym.size != 0 {
			if raw, err := v.u16(v.versym.off + uint64(slot)*2); err == nil {
				raw &= 0x7fff // clear the hidden bit
				if raw > verNdxGlobal {
					if lib, ver, ok := v.versionFor(raw); ok {
						sym.Library, sym.Version = lib, ver
					}
				}
			}
		}
		if !sym.Imported {
			sym.Library = nil
		}
		if !fn(sym) {
			return
		}
	}
}

// DynSymbolCount returns the number of dynamic symbol slots (including
// slot 0 and unnamed slots, which the walkers skip), or 0 when the image
// carries no symbol table.
func (v *View) DynSymbolCount() int {
	if v.dynsym.size == 0 {
		return 0
	}
	syment := uint64(24)
	if v.cls == Class32 {
		syment = 16
	}
	return int(v.dynsym.size / syment)
}

// Imports walks the undefined (imported) dynamic symbols only, in table
// order, until fn returns false. It is DynSymbols filtered to
// sym.Imported — the requirement side of an ABI resolution.
func (v *View) Imports(fn func(sym SymbolRef) bool) {
	v.DynSymbols(func(sym SymbolRef) bool {
		if !sym.Imported {
			return true
		}
		return fn(sym)
	})
}

// Exports walks the defined dynamic symbols only, in table order, until
// fn returns false: the provider side of an ABI resolution. version is
// nil for unversioned exports.
func (v *View) Exports(fn func(name, version []byte) bool) {
	v.DynSymbols(func(sym SymbolRef) bool {
		if sym.Imported {
			return true
		}
		return fn(sym.Name, sym.Version)
	})
}

// VerDefAt returns the i-th defined version name, indexing the same table
// VerDefs walks.
func (v *View) VerDefAt(i int) []byte { return v.dynstrAt(v.verDefs[i].nameOff) }
