package elfimg

import (
	"bytes"
	"testing"
)

// viewSpec is a representative application binary: interpreter, nine
// dependencies, glibc version references, and a toolchain comment.
var viewSpec = Spec{
	Class: Class64, Machine: EMX8664, Type: TypeExec,
	Interp: "/lib64/ld-linux-x86-64.so.2",
	Needed: []string{"libmpi.so.0", "libopen-rte.so.0", "libopen-pal.so.0",
		"libnsl.so.1", "libutil.so.1", "libgfortran.so.1", "libm.so.6",
		"libpthread.so.0", "libc.so.6"},
	VerNeeds: []VerNeed{{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_2.3.4"}}},
	Comments: []string{"GCC: (GNU) 4.1.2"},
	TextSize: 4 << 10,
}

// TestViewMatchesParse pins the View accessors against the materializing
// Parse shim on the same image: every field the File carries must be
// reachable through the View with identical content.
func TestViewMatchesParse(t *testing.T) {
	img := MustBuild(viewSpec)
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	v, err := p.Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class() != f.Class || v.Machine() != f.Machine || v.Type() != f.Type {
		t.Fatalf("header mismatch: view %v/%v/%v file %v/%v/%v",
			v.Class(), v.Machine(), v.Type(), f.Class, f.Machine, f.Type)
	}
	if got := string(v.Interp()); got != f.Interp {
		t.Fatalf("interp: view %q file %q", got, f.Interp)
	}
	if v.NeededCount() != len(f.Needed) {
		t.Fatalf("needed count: view %d file %d", v.NeededCount(), len(f.Needed))
	}
	for i, want := range f.Needed {
		if got := string(v.NeededAt(i)); got != want {
			t.Fatalf("needed[%d]: view %q file %q", i, got, want)
		}
	}
	if v.VerNeedCount() != len(f.VerNeeds) {
		t.Fatalf("verneed count: view %d file %d", v.VerNeedCount(), len(f.VerNeeds))
	}
	var pairs int
	v.VerNeeds(func(entry int, version []byte) bool {
		file := string(v.VerNeedFileAt(entry))
		if file != f.VerNeeds[entry].File {
			t.Fatalf("verneed entry %d: view file %q want %q", entry, file, f.VerNeeds[entry].File)
		}
		want := f.VerNeeds[entry].Versions[pairs]
		if string(version) != want {
			t.Fatalf("verneed version: view %q want %q", version, want)
		}
		pairs++
		return true
	})
	if pairs != len(f.VerNeeds[0].Versions) {
		t.Fatalf("verneed pairs: view %d want %d", pairs, len(f.VerNeeds[0].Versions))
	}
	var comments []string
	v.Comments(func(c []byte) bool { comments = append(comments, string(c)); return true })
	if len(comments) != len(f.Comments) || comments[0] != f.Comments[0] {
		t.Fatalf("comments: view %v file %v", comments, f.Comments)
	}
	var imports, exports int
	v.DynSymbols(func(sym SymbolRef) bool {
		if sym.Imported {
			want := f.Imports[imports]
			if string(sym.Name) != want.Name || string(sym.Version) != want.Version || string(sym.Library) != want.Library {
				t.Fatalf("import %d: view %q/%q/%q want %+v", imports, sym.Name, sym.Version, sym.Library, want)
			}
			imports++
		} else {
			want := f.Exports[exports]
			if string(sym.Name) != want.Name || string(sym.Version) != want.Version {
				t.Fatalf("export %d: view %q/%q want %+v", exports, sym.Name, sym.Version, want)
			}
			exports++
		}
		return true
	})
	if imports != len(f.Imports) || exports != len(f.Exports) {
		t.Fatalf("symbols: view %d/%d file %d/%d", imports, exports, len(f.Imports), len(f.Exports))
	}
}

// TestViewSharedLibrary covers soname/verdef accessors on a shared object.
func TestViewSharedLibrary(t *testing.T) {
	img := MustBuild(Spec{
		Class: Class64, Machine: EMX8664, Type: TypeDyn,
		Soname:  "libc.so.6",
		VerDefs: []string{"GLIBC_2.0", "GLIBC_2.3.4", "GLIBC_2.5"},
	})
	var p Parser
	v, err := p.Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Soname(), []byte("libc.so.6")) {
		t.Fatalf("soname: %q", v.Soname())
	}
	var defs []string
	v.VerDefs(func(ver []byte) bool { defs = append(defs, string(ver)); return true })
	want := []string{"GLIBC_2.0", "GLIBC_2.3.4", "GLIBC_2.5"}
	if len(defs) != len(want) {
		t.Fatalf("verdefs: %v", defs)
	}
	for i := range want {
		if defs[i] != want[i] {
			t.Fatalf("verdefs: %v want %v", defs, want)
		}
	}
	if v.RPath() != nil || v.RunPath() != nil {
		t.Fatalf("unexpected rpath/runpath: %q %q", v.RPath(), v.RunPath())
	}
}

// TestViewParseAllocs is the diet regression gate: a warmed-up Parser must
// parse and walk every accessor with zero heap allocations per image.
// CI fails if this number ever becomes nonzero.
func TestViewParseAllocs(t *testing.T) {
	exe := MustBuild(viewSpec)
	lib := MustBuild(Spec{
		Class: Class64, Machine: EMX8664, Type: TypeDyn,
		Soname:  "libc.so.6",
		VerDefs: []string{"GLIBC_2.0", "GLIBC_2.3.4"},
	})
	var p Parser
	for _, img := range [][]byte{exe, lib} {
		if _, err := p.Parse(img); err != nil {
			t.Fatal(err)
		}
	}
	var sink int
	walk := func(img []byte) {
		v, err := p.Parse(img)
		if err != nil {
			t.Fatal(err)
		}
		sink += len(v.Interp()) + len(v.Soname()) + len(v.RPath()) + len(v.RunPath())
		for i := 0; i < v.NeededCount(); i++ {
			sink += len(v.NeededAt(i))
		}
		v.VerNeeds(func(entry int, version []byte) bool {
			sink += len(v.VerNeedFileAt(entry)) + len(version)
			return true
		})
		v.VerDefs(func(version []byte) bool { sink += len(version); return true })
		v.Comments(func(c []byte) bool { sink += len(c); return true })
		v.DynSymbols(func(sym SymbolRef) bool {
			sink += len(sym.Name) + len(sym.Version) + len(sym.Library)
			return true
		})
	}
	allocs := testing.AllocsPerRun(200, func() {
		walk(exe)
		walk(lib)
	})
	if allocs != 0 {
		t.Fatalf("View parse+accessor path allocated %.1f times per run, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("walk did not observe any data")
	}
}

// TestParserReuseInvalidation documents the aliasing contract: a second
// Parse on the same Parser repoints the View at the new image.
func TestParserReuseInvalidation(t *testing.T) {
	a := MustBuild(Spec{Class: Class64, Machine: EMX8664, Type: TypeDyn, Soname: "liba.so.1"})
	b := MustBuild(Spec{Class: Class64, Machine: EMX8664, Type: TypeDyn, Soname: "libb.so.2"})
	var p Parser
	v, err := p.Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Soname()) != "liba.so.1" {
		t.Fatalf("first parse: %q", v.Soname())
	}
	v2, err := p.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v {
		t.Fatal("Parser should reuse its View storage")
	}
	if string(v.Soname()) != "libb.so.2" {
		t.Fatalf("after reuse: %q", v.Soname())
	}
}
