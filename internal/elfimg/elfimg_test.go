package elfimg

import (
	"bytes"
	"debug/elf"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleExecSpec is a representative MPI application binary: an x86-64
// executable linked against Open MPI with glibc version references.
func sampleExecSpec() Spec {
	return Spec{
		Class:   Class64,
		Machine: EMX8664,
		Type:    TypeExec,
		Interp:  "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{
			"libmpi.so.0", "libopen-rte.so.0", "libopen-pal.so.0",
			"libnsl.so.1", "libutil.so.1", "libm.so.6", "libpthread.so.0", "libc.so.6",
		},
		VerNeeds: []VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.2.5", "GLIBC_2.3.4"}},
			{File: "libpthread.so.0", Versions: []string{"GLIBC_2.2.5"}},
		},
		Comments: []string{"GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-50)"},
		TextSize: 2048,
	}
}

// sampleLibSpec is a representative shared library with version definitions.
func sampleLibSpec() Spec {
	return Spec{
		Class:   Class64,
		Machine: EMX8664,
		Type:    TypeDyn,
		Soname:  "libmpich.so.1",
		Needed:  []string{"libibverbs.so.1", "libibumad.so.3", "libpthread.so.0", "libc.so.6"},
		VerNeeds: []VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.2.5"}},
		},
		VerDefs:  []string{"libmpich.so.1", "MPICH2_1.2"},
		Comments: []string{"GCC: (GNU) 4.1.2"},
		TextSize: 4096,
	}
}

func TestBuildParseRoundTripExec(t *testing.T) {
	spec := sampleExecSpec()
	img, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasSections {
		t.Error("expected section-header view")
	}
	if f.Class != Class64 || f.Machine != EMX8664 || f.Type != TypeExec {
		t.Errorf("identity = %v %v %v", f.Class, f.Machine, f.Type)
	}
	if f.Interp != spec.Interp {
		t.Errorf("Interp = %q", f.Interp)
	}
	if !reflect.DeepEqual(f.Needed, spec.Needed) {
		t.Errorf("Needed = %v", f.Needed)
	}
	if !reflect.DeepEqual(f.VerNeeds, spec.VerNeeds) {
		t.Errorf("VerNeeds = %+v", f.VerNeeds)
	}
	if !reflect.DeepEqual(f.Comments, spec.Comments) {
		t.Errorf("Comments = %v", f.Comments)
	}
	if f.Format() != "elf64-x86-64" {
		t.Errorf("Format = %q", f.Format())
	}
	if f.IsSharedLibrary() {
		t.Error("executable should not be a shared library")
	}
}

func TestBuildParseRoundTripLibrary(t *testing.T) {
	spec := sampleLibSpec()
	img, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if f.Soname != "libmpich.so.1" {
		t.Errorf("Soname = %q", f.Soname)
	}
	if !reflect.DeepEqual(f.VerDefs, spec.VerDefs) {
		t.Errorf("VerDefs = %v", f.VerDefs)
	}
	if !f.IsSharedLibrary() {
		t.Error("expected shared library")
	}
}

func TestBuildParseRoundTrip32Bit(t *testing.T) {
	spec := sampleExecSpec()
	spec.Class = Class32
	spec.Machine = EM386
	spec.Interp = "/lib/ld-linux.so.2"
	img, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if f.Class != Class32 || f.Machine != EM386 {
		t.Errorf("identity = %v %v", f.Class, f.Machine)
	}
	if f.Class.Bits() != 32 {
		t.Errorf("Bits = %d", f.Class.Bits())
	}
	if !reflect.DeepEqual(f.Needed, spec.Needed) {
		t.Errorf("Needed = %v", f.Needed)
	}
	if !reflect.DeepEqual(f.VerNeeds, spec.VerNeeds) {
		t.Errorf("VerNeeds = %+v", f.VerNeeds)
	}
	if f.Format() != "elf32-i386" {
		t.Errorf("Format = %q", f.Format())
	}
}

// TestDebugElfOracle validates the builder output against the standard
// library's independent ELF implementation.
func TestDebugElfOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"exec64", sampleExecSpec()},
		{"lib64", sampleLibSpec()},
		{"exec32", func() Spec {
			s := sampleExecSpec()
			s.Class = Class32
			s.Machine = EM386
			return s
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img := MustBuild(tc.spec)
			ef, err := elf.NewFile(bytes.NewReader(img))
			if err != nil {
				t.Fatalf("debug/elf rejected image: %v", err)
			}
			defer ef.Close()
			libs, err := ef.ImportedLibraries()
			if err != nil {
				t.Fatalf("ImportedLibraries: %v", err)
			}
			if !reflect.DeepEqual(libs, tc.spec.Needed) {
				t.Errorf("debug/elf NEEDED = %v, want %v", libs, tc.spec.Needed)
			}
			wantMachine := elf.EM_X86_64
			if tc.spec.Class == Class32 {
				wantMachine = elf.EM_386
			}
			if ef.Machine != wantMachine {
				t.Errorf("debug/elf machine = %v", ef.Machine)
			}
			if tc.spec.Soname != "" {
				sonames, err := ef.DynString(elf.DT_SONAME)
				if err != nil || len(sonames) != 1 || sonames[0] != tc.spec.Soname {
					t.Errorf("debug/elf soname = %v (err %v)", sonames, err)
				}
			}
			if sec := ef.Section(".comment"); sec == nil && len(tc.spec.Comments) > 0 {
				t.Error("debug/elf cannot find .comment")
			}
		})
	}
}

// TestSegmentOnlyFallback strips the section-header view and verifies the
// parser recovers the dynamic metadata from program headers alone.
func TestSegmentOnlyFallback(t *testing.T) {
	spec := sampleLibSpec()
	img := MustBuild(spec)
	// Zero e_shoff/e_shnum/e_shstrndx in the ELF64 header.
	for _, off := range []int{40, 41, 42, 43, 44, 45, 46, 47, 60, 61, 62, 63} {
		img[off] = 0
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasSections {
		t.Error("expected program-header fallback")
	}
	if f.Soname != spec.Soname {
		t.Errorf("Soname = %q", f.Soname)
	}
	if !reflect.DeepEqual(f.Needed, spec.Needed) {
		t.Errorf("Needed = %v", f.Needed)
	}
	if !reflect.DeepEqual(f.VerNeeds, spec.VerNeeds) {
		t.Errorf("VerNeeds = %+v", f.VerNeeds)
	}
	if !reflect.DeepEqual(f.VerDefs, spec.VerDefs) {
		t.Errorf("VerDefs = %v", f.VerDefs)
	}
	// Comments live in an unmapped section and must be absent here.
	if len(f.Comments) != 0 {
		t.Errorf("Comments should be unavailable in segment view, got %v", f.Comments)
	}
}

func TestRPathRoundTrip(t *testing.T) {
	spec := sampleExecSpec()
	spec.RPath = "/opt/openmpi-1.4.3-intel/lib"
	img := MustBuild(spec)
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if f.RPath != spec.RPath {
		t.Errorf("RPath = %q", f.RPath)
	}
}

func TestVersionHelpers(t *testing.T) {
	img := MustBuild(sampleExecSpec())
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	refs := f.VersionRefNames()
	if len(refs) != 3 {
		t.Errorf("VersionRefNames = %v", refs)
	}
	libc := f.VersionRefsFor("libc.so.6")
	if len(libc) != 2 || libc[1] != "GLIBC_2.3.4" {
		t.Errorf("VersionRefsFor(libc) = %v", libc)
	}
	if f.VersionRefsFor("libmpi.so.0") != nil {
		t.Error("unexpected version refs for libmpi")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{Class: 9, Machine: EMX8664, Type: TypeExec}); err == nil {
		t.Error("invalid class accepted")
	}
	if _, err := Build(Spec{Class: Class64, Machine: EMX8664, Type: 7}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := Build(Spec{Class: Class64, Machine: EMX8664, Type: TypeExec, Soname: "libx.so.1"}); err == nil {
		t.Error("soname on executable accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(nil); err != ErrNotELF {
		t.Errorf("nil: %v", err)
	}
	if _, err := Parse(make([]byte, 100)); err != ErrNotELF {
		t.Errorf("zeros: %v", err)
	}
	junk := append([]byte{0x7f, 'E', 'L', 'F', 5}, make([]byte, 100)...)
	if _, err := Parse(junk); err == nil {
		t.Error("bad class accepted")
	}
	be := append([]byte{0x7f, 'E', 'L', 'F', 2, 2}, make([]byte, 100)...)
	if _, err := Parse(be); err == nil {
		t.Error("big-endian accepted")
	}
}

func TestParseTruncated(t *testing.T) {
	img := MustBuild(sampleExecSpec())
	// Any truncation must produce an error or a valid partial parse — never
	// a panic.
	for _, n := range []int{52, 64, 100, 200, len(img) / 2, len(img) - 1} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse panicked on %d-byte prefix: %v", n, r)
				}
			}()
			_, _ = Parse(img[:n])
		}()
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	MustBuild(Spec{})
}

func TestDeterministicBuild(t *testing.T) {
	a := MustBuild(sampleExecSpec())
	b := MustBuild(sampleExecSpec())
	if !bytes.Equal(a, b) {
		t.Error("Build is not deterministic")
	}
}

func TestTextPayloadAffectsSize(t *testing.T) {
	small := sampleExecSpec()
	small.TextSize = 0
	large := sampleExecSpec()
	large.TextSize = 1 << 20
	a, b := MustBuild(small), MustBuild(large)
	if len(b)-len(a) < 1<<20 {
		t.Errorf("text payload not reflected in size: %d vs %d", len(a), len(b))
	}
}

// Property: NEEDED entries survive a build/parse round trip for arbitrary
// well-formed library names.
func TestNeededRoundTripQuick(t *testing.T) {
	f := func(stems []string) bool {
		if len(stems) > 20 {
			stems = stems[:20]
		}
		var needed []string
		for i, s := range stems {
			// Sanitize to a plausible soname; the dynamic string table can
			// hold arbitrary bytes but sonames never contain NUL.
			clean := make([]rune, 0, len(s))
			for _, r := range s {
				if r > 0 && r != '/' && r < 128 {
					clean = append(clean, r)
				}
			}
			if len(clean) == 0 {
				clean = []rune{'x'}
			}
			needed = append(needed, "lib"+string(clean)+".so."+string(rune('0'+i%10)))
		}
		spec := Spec{Class: Class64, Machine: EMX8664, Type: TypeDyn, Soname: "libq.so.1", Needed: needed}
		img, err := Build(spec)
		if err != nil {
			return false
		}
		parsed, err := Parse(img)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(parsed.Needed, needed) ||
			(len(needed) == 0 && len(parsed.Needed) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestElfHashMatchesKnownValues(t *testing.T) {
	// The empty string hashes to 0 by definition; the GLIBC value pins the
	// implementation against accidental change.
	cases := map[string]uint32{
		"":            0,
		"GLIBC_2.2.5": 0x09691a75,
	}
	for in, want := range cases {
		if got := elfHash(in); got != want {
			t.Errorf("elfHash(%q) = %#x, want %#x", in, got, want)
		}
	}
}
