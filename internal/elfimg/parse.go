package elfimg

import (
	"fmt"
	"strings"
)

// File is the parsed view of an ELF image — the metadata FEAM's Binary
// Description Component extracts with objdump/readelf on a real system.
// It materializes every field up front; callers on the survey hot path
// that only need a few fields should use Parser/View instead, which
// aliases the input and does not allocate.
type File struct {
	Class   Class
	Machine Machine
	Type    FileType

	Interp   string
	Soname   string
	RPath    string
	RunPath  string
	Needed   []string
	VerNeeds []VerNeed
	VerDefs  []string
	Comments []string
	// Imports and Exports are the dynamic symbols with their version
	// bindings (populated only when the image carries a symbol table and
	// the section-header view is available).
	Imports []ImportedSymbol
	Exports []ExportedSymbol

	// HasSections reports whether the section-header view was available.
	// When false, the file was parsed from program headers only and the
	// .comment section (unmapped) could not be recovered — mirroring the
	// degraded-tool path described in the paper.
	HasSections bool
}

// Format returns an objdump-style format description such as
// "elf64-x86-64".
func (f *File) Format() string {
	bits := "64"
	if f.Class == Class32 {
		bits = "32"
	}
	return fmt.Sprintf("elf%s-%s", bits, f.Machine)
}

// IsSharedLibrary reports whether the object is a shared library (ET_DYN
// with a soname, or any ET_DYN without an interpreter).
func (f *File) IsSharedLibrary() bool {
	return f.Type == TypeDyn && (f.Soname != "" || f.Interp == "")
}

// VersionRefNames flattens all referenced symbol-version names.
func (f *File) VersionRefNames() []string {
	var out []string
	for _, vn := range f.VerNeeds {
		out = append(out, vn.Versions...)
	}
	return out
}

// VersionRefsFor returns the version names referenced against a dependency.
func (f *File) VersionRefsFor(depName string) []string {
	for _, vn := range f.VerNeeds {
		if vn.File == depName {
			return vn.Versions
		}
	}
	return nil
}

// ErrNotELF is returned for images without the ELF magic.
var ErrNotELF = fmt.Errorf("elfimg: not an ELF file")

// progHdr is one decoded program header.
type progHdr struct {
	pType  uint32
	offset uint64
	vaddr  uint64
	filesz uint64
}

// Parse decodes an ELF image into a fully materialized File. It is a
// compatibility shim over Parser/View: the View does the decoding, and
// this copies every field out so the result is independent of the input
// slice. It prefers the section-header view and falls back to the
// program-header (dynamic segment) view for images whose section table
// is missing or unusable.
func Parse(data []byte) (*File, error) {
	var p Parser
	v, err := p.Parse(data)
	if err != nil {
		return nil, err
	}
	return v.Materialize(), nil
}

// Materialize copies the View out into a File that owns its memory.
func (v *View) Materialize() *File {
	f := &File{
		Class:       v.Class(),
		Machine:     v.Machine(),
		Type:        v.Type(),
		HasSections: v.HasSections(),
		Interp:      strings.TrimRight(string(v.Interp()), "\x00"),
	}
	if s := v.Soname(); v.soname >= 0 {
		f.Soname = string(s)
	}
	if s := v.RPath(); v.rpath >= 0 {
		f.RPath = string(s)
	}
	if s := v.RunPath(); v.runpath >= 0 {
		f.RunPath = string(s)
	}
	for i := 0; i < v.NeededCount(); i++ {
		f.Needed = append(f.Needed, string(v.NeededAt(i)))
	}
	if n := v.VerNeedCount(); n > 0 {
		f.VerNeeds = make([]VerNeed, n)
		for i := 0; i < n; i++ {
			f.VerNeeds[i].File = string(v.VerNeedFileAt(i))
		}
		v.VerNeeds(func(entry int, version []byte) bool {
			f.VerNeeds[entry].Versions = append(f.VerNeeds[entry].Versions, string(version))
			return true
		})
	}
	v.VerDefs(func(version []byte) bool {
		f.VerDefs = append(f.VerDefs, string(version))
		return true
	})
	v.Comments(func(comment []byte) bool {
		f.Comments = append(f.Comments, string(comment))
		return true
	})
	v.DynSymbols(func(sym SymbolRef) bool {
		if sym.Imported {
			f.Imports = append(f.Imports, ImportedSymbol{
				Name:    string(sym.Name),
				Version: string(sym.Version),
				Library: string(sym.Library),
			})
		} else {
			f.Exports = append(f.Exports, ExportedSymbol{
				Name:    string(sym.Name),
				Version: string(sym.Version),
			})
		}
		return true
	})
	return f
}
