package elfimg

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// File is the parsed view of an ELF image — the metadata FEAM's Binary
// Description Component extracts with objdump/readelf on a real system.
type File struct {
	Class   Class
	Machine Machine
	Type    FileType

	Interp   string
	Soname   string
	RPath    string
	RunPath  string
	Needed   []string
	VerNeeds []VerNeed
	VerDefs  []string
	Comments []string
	// Imports and Exports are the dynamic symbols with their version
	// bindings (populated only when the image carries a symbol table and
	// the section-header view is available).
	Imports []ImportedSymbol
	Exports []ExportedSymbol

	// HasSections reports whether the section-header view was available.
	// When false, the file was parsed from program headers only and the
	// .comment section (unmapped) could not be recovered — mirroring the
	// degraded-tool path described in the paper.
	HasSections bool
}

// Format returns an objdump-style format description such as
// "elf64-x86-64".
func (f *File) Format() string {
	bits := "64"
	if f.Class == Class32 {
		bits = "32"
	}
	return fmt.Sprintf("elf%s-%s", bits, f.Machine)
}

// IsSharedLibrary reports whether the object is a shared library (ET_DYN
// with a soname, or any ET_DYN without an interpreter).
func (f *File) IsSharedLibrary() bool {
	return f.Type == TypeDyn && (f.Soname != "" || f.Interp == "")
}

// VersionRefNames flattens all referenced symbol-version names.
func (f *File) VersionRefNames() []string {
	var out []string
	for _, vn := range f.VerNeeds {
		out = append(out, vn.Versions...)
	}
	return out
}

// VersionRefsFor returns the version names referenced against a dependency.
func (f *File) VersionRefsFor(depName string) []string {
	for _, vn := range f.VerNeeds {
		if vn.File == depName {
			return vn.Versions
		}
	}
	return nil
}

// ErrNotELF is returned for images without the ELF magic.
var ErrNotELF = fmt.Errorf("elfimg: not an ELF file")

type reader struct {
	data []byte
	le   binary.ByteOrder
	cls  Class
}

func (r *reader) u16(off uint64) (uint16, error) {
	if off+2 > uint64(len(r.data)) {
		return 0, fmt.Errorf("elfimg: truncated at %d", off)
	}
	return r.le.Uint16(r.data[off:]), nil
}

func (r *reader) u32(off uint64) (uint32, error) {
	if off+4 > uint64(len(r.data)) {
		return 0, fmt.Errorf("elfimg: truncated at %d", off)
	}
	return r.le.Uint32(r.data[off:]), nil
}

func (r *reader) u64(off uint64) (uint64, error) {
	if off+8 > uint64(len(r.data)) {
		return 0, fmt.Errorf("elfimg: truncated at %d", off)
	}
	return r.le.Uint64(r.data[off:]), nil
}

func (r *reader) bytes(off, n uint64) ([]byte, error) {
	if off+n > uint64(len(r.data)) || off+n < off {
		return nil, fmt.Errorf("elfimg: truncated slice [%d:%d)", off, off+n)
	}
	return r.data[off : off+n], nil
}

type sectionHdr struct {
	name   string
	shType uint32
	addr   uint64
	offset uint64
	size   uint64
	link   uint32
	info   uint32
}

type progHdr struct {
	pType  uint32
	offset uint64
	vaddr  uint64
	filesz uint64
}

// Parse decodes an ELF image. It prefers the section-header view and falls
// back to the program-header (dynamic segment) view for images whose section
// table is missing or unusable.
func Parse(data []byte) (*File, error) {
	if len(data) < 52 {
		return nil, ErrNotELF
	}
	if data[0] != 0x7f || data[1] != 'E' || data[2] != 'L' || data[3] != 'F' {
		return nil, ErrNotELF
	}
	cls := Class(data[4])
	if cls != Class32 && cls != Class64 {
		return nil, fmt.Errorf("elfimg: unknown ELF class %d", data[4])
	}
	if data[5] != 1 {
		return nil, fmt.Errorf("elfimg: only little-endian images are supported")
	}
	r := &reader{data: data, le: binary.LittleEndian, cls: cls}

	f := &File{Class: cls}
	var shoff, phoff uint64
	var shnum, phnum, shentsize, phentsize, shstrndx uint16
	var err error
	if cls == Class32 {
		var t, m uint16
		if t, err = r.u16(16); err != nil {
			return nil, err
		}
		if m, err = r.u16(18); err != nil {
			return nil, err
		}
		f.Type, f.Machine = FileType(t), Machine(m)
		p32, _ := r.u32(28)
		s32, _ := r.u32(32)
		phoff, shoff = uint64(p32), uint64(s32)
		phentsize, _ = r.u16(42)
		phnum, _ = r.u16(44)
		shentsize, _ = r.u16(46)
		shnum, _ = r.u16(48)
		shstrndx, _ = r.u16(50)
	} else {
		var t, m uint16
		if t, err = r.u16(16); err != nil {
			return nil, err
		}
		if m, err = r.u16(18); err != nil {
			return nil, err
		}
		f.Type, f.Machine = FileType(t), Machine(m)
		phoff, _ = r.u64(32)
		shoff, _ = r.u64(40)
		phentsize, _ = r.u16(54)
		phnum, _ = r.u16(56)
		shentsize, _ = r.u16(58)
		shnum, _ = r.u16(60)
		shstrndx, _ = r.u16(62)
	}
	if f.Type != TypeExec && f.Type != TypeDyn {
		return nil, fmt.Errorf("elfimg: unsupported object type %v", f.Type)
	}

	phdrs, err := parsePhdrs(r, phoff, phnum, phentsize)
	if err != nil {
		return nil, err
	}
	for _, ph := range phdrs {
		if ph.pType == ptInterp {
			raw, err := r.bytes(ph.offset, ph.filesz)
			if err != nil {
				return nil, err
			}
			f.Interp = strings.TrimRight(string(raw), "\x00")
		}
	}

	if shoff != 0 && shnum > 0 {
		if err := parseWithSections(r, f, shoff, shnum, shentsize, shstrndx); err == nil {
			f.HasSections = true
			return f, nil
		}
	}
	// Fallback: dynamic segment only.
	if err := parseFromSegments(r, f, phdrs); err != nil {
		return nil, err
	}
	return f, nil
}

func parsePhdrs(r *reader, phoff uint64, phnum, phentsize uint16) ([]progHdr, error) {
	out := make([]progHdr, 0, phnum)
	for i := 0; i < int(phnum); i++ {
		base := phoff + uint64(i)*uint64(phentsize)
		pType, err := r.u32(base)
		if err != nil {
			return nil, err
		}
		var ph progHdr
		ph.pType = pType
		if r.cls == Class32 {
			o, _ := r.u32(base + 4)
			v, _ := r.u32(base + 8)
			fz, _ := r.u32(base + 16)
			ph.offset, ph.vaddr, ph.filesz = uint64(o), uint64(v), uint64(fz)
		} else {
			ph.offset, _ = r.u64(base + 8)
			ph.vaddr, _ = r.u64(base + 16)
			ph.filesz, _ = r.u64(base + 32)
		}
		out = append(out, ph)
	}
	return out, nil
}

func parseWithSections(r *reader, f *File, shoff uint64, shnum, shentsize, shstrndx uint16) error {
	hdrs := make([]sectionHdr, shnum)
	nameOffs := make([]uint32, shnum)
	for i := 0; i < int(shnum); i++ {
		base := shoff + uint64(i)*uint64(shentsize)
		no, err := r.u32(base)
		if err != nil {
			return err
		}
		nameOffs[i] = no
		var s sectionHdr
		s.shType, _ = r.u32(base + 4)
		if r.cls == Class32 {
			a, _ := r.u32(base + 12)
			o, _ := r.u32(base + 16)
			sz, _ := r.u32(base + 20)
			s.addr, s.offset, s.size = uint64(a), uint64(o), uint64(sz)
			s.link, _ = r.u32(base + 24)
			s.info, _ = r.u32(base + 28)
		} else {
			s.addr, _ = r.u64(base + 16)
			s.offset, _ = r.u64(base + 24)
			s.size, _ = r.u64(base + 32)
			s.link, _ = r.u32(base + 40)
			s.info, _ = r.u32(base + 44)
		}
		hdrs[i] = s
	}
	if int(shstrndx) >= len(hdrs) {
		return fmt.Errorf("elfimg: shstrndx %d out of range", shstrndx)
	}
	strs := hdrs[shstrndx]
	strData, err := r.bytes(strs.offset, strs.size)
	if err != nil {
		return err
	}
	nameAt := func(off uint32) string {
		if int(off) >= len(strData) {
			return ""
		}
		end := int(off)
		for end < len(strData) && strData[end] != 0 {
			end++
		}
		return string(strData[off:end])
	}
	for i := range hdrs {
		hdrs[i].name = nameAt(nameOffs[i])
	}

	var dynamic, comment *sectionHdr
	var verneedSec, verdefSec *sectionHdr
	var dynsymSec, versymSec *sectionHdr
	for i := range hdrs {
		h := &hdrs[i]
		switch {
		case h.shType == shtDynamic:
			dynamic = h
		case h.name == ".comment":
			comment = h
		case h.shType == shtGnuVerneed:
			verneedSec = h
		case h.shType == shtGnuVerdef:
			verdefSec = h
		case h.shType == shtDynsym:
			dynsymSec = h
		case h.shType == shtGnuVersym:
			versymSec = h
		}
	}
	if dynamic == nil {
		return fmt.Errorf("elfimg: no dynamic section")
	}
	if int(dynamic.link) >= len(hdrs) {
		return fmt.Errorf("elfimg: dynamic sh_link out of range")
	}
	dynstrHdr := hdrs[dynamic.link]
	dynstr, err := r.bytes(dynstrHdr.offset, dynstrHdr.size)
	if err != nil {
		return err
	}
	if err := parseDynamic(r, f, dynamic.offset, dynamic.size, dynstr); err != nil {
		return err
	}
	verIdx := map[uint16][2]string{} // versym index -> (library, version)
	if verneedSec != nil {
		vns, idx, err := parseVerneed(r, verneedSec.offset, verneedSec.size, int(verneedSec.info), dynstr)
		if err != nil {
			return err
		}
		f.VerNeeds = vns
		for k, v := range idx {
			verIdx[k] = v
		}
	}
	if verdefSec != nil {
		vds, idx, err := parseVerdef(r, verdefSec.offset, verdefSec.size, int(verdefSec.info), dynstr)
		if err != nil {
			return err
		}
		f.VerDefs = vds
		for k, v := range idx {
			verIdx[k] = [2]string{"", v}
		}
	}
	if dynsymSec != nil {
		if err := parseDynsym(r, f, dynsymSec, versymSec, dynstr, verIdx); err != nil {
			return err
		}
	}
	if comment != nil {
		raw, err := r.bytes(comment.offset, comment.size)
		if err != nil {
			return err
		}
		for _, part := range strings.Split(string(raw), "\x00") {
			if part != "" {
				f.Comments = append(f.Comments, part)
			}
		}
	}
	return nil
}

// parseFromSegments recovers the dynamic metadata using only program
// headers, the way the dynamic loader itself would.
func parseFromSegments(r *reader, f *File, phdrs []progHdr) error {
	var dyn *progHdr
	for i := range phdrs {
		if phdrs[i].pType == ptDynamic {
			dyn = &phdrs[i]
			break
		}
	}
	if dyn == nil {
		return fmt.Errorf("elfimg: no PT_DYNAMIC segment")
	}
	vaddrToOff := func(vaddr uint64) (uint64, bool) {
		for _, ph := range phdrs {
			if ph.pType == ptLoad && vaddr >= ph.vaddr && vaddr < ph.vaddr+ph.filesz {
				return ph.offset + (vaddr - ph.vaddr), true
			}
		}
		return 0, false
	}
	// First pass to locate the string table and version tables.
	entsize := uint64(16)
	if r.cls == Class32 {
		entsize = 8
	}
	var strtabAddr, strsz, verneedAddr, verdefAddr uint64
	var verneedNum, verdefNum int
	type rawDyn struct {
		tag int64
		val uint64
	}
	var entries []rawDyn
	for off := dyn.offset; off+entsize <= dyn.offset+dyn.filesz; off += entsize {
		var tag int64
		var val uint64
		if r.cls == Class32 {
			t, err := r.u32(off)
			if err != nil {
				return err
			}
			v, _ := r.u32(off + 4)
			tag, val = int64(int32(t)), uint64(v)
		} else {
			t, err := r.u64(off)
			if err != nil {
				return err
			}
			val, _ = r.u64(off + 8)
			tag = int64(t)
		}
		if tag == dtNull {
			break
		}
		entries = append(entries, rawDyn{tag, val})
		switch tag {
		case dtStrtab:
			strtabAddr = val
		case dtStrsz:
			strsz = val
		case dtVerneed:
			verneedAddr = val
		case dtVerneednum:
			verneedNum = int(val)
		case dtVerdef:
			verdefAddr = val
		case dtVerdefnum:
			verdefNum = int(val)
		}
	}
	strOff, ok := vaddrToOff(strtabAddr)
	if !ok {
		return fmt.Errorf("elfimg: DT_STRTAB address %#x not mapped", strtabAddr)
	}
	dynstr, err := r.bytes(strOff, strsz)
	if err != nil {
		return err
	}
	strAt := func(off uint64) string {
		if off >= uint64(len(dynstr)) {
			return ""
		}
		end := off
		for end < uint64(len(dynstr)) && dynstr[end] != 0 {
			end++
		}
		return string(dynstr[off:end])
	}
	for _, e := range entries {
		switch e.tag {
		case dtNeeded:
			f.Needed = append(f.Needed, strAt(e.val))
		case dtSoname:
			f.Soname = strAt(e.val)
		case dtRpath:
			f.RPath = strAt(e.val)
		case dtRunpath:
			f.RunPath = strAt(e.val)
		}
	}
	if verneedAddr != 0 {
		if off, ok := vaddrToOff(verneedAddr); ok {
			vns, _, err := parseVerneed(r, off, uint64(len(r.data))-off, verneedNum, dynstr)
			if err != nil {
				return err
			}
			f.VerNeeds = vns
		}
	}
	if verdefAddr != 0 {
		if off, ok := vaddrToOff(verdefAddr); ok {
			vds, _, err := parseVerdef(r, off, uint64(len(r.data))-off, verdefNum, dynstr)
			if err != nil {
				return err
			}
			f.VerDefs = vds
		}
	}
	return nil
}

func parseDynamic(r *reader, f *File, off, size uint64, dynstr []byte) error {
	entsize := uint64(16)
	if r.cls == Class32 {
		entsize = 8
	}
	strAt := func(o uint64) string {
		if o >= uint64(len(dynstr)) {
			return ""
		}
		end := o
		for end < uint64(len(dynstr)) && dynstr[end] != 0 {
			end++
		}
		return string(dynstr[o:end])
	}
	for cur := off; cur+entsize <= off+size; cur += entsize {
		var tag int64
		var val uint64
		if r.cls == Class32 {
			t, err := r.u32(cur)
			if err != nil {
				return err
			}
			v, _ := r.u32(cur + 4)
			tag, val = int64(int32(t)), uint64(v)
		} else {
			t, err := r.u64(cur)
			if err != nil {
				return err
			}
			val, _ = r.u64(cur + 8)
			tag = int64(t)
		}
		switch tag {
		case dtNull:
			return nil
		case dtNeeded:
			f.Needed = append(f.Needed, strAt(val))
		case dtSoname:
			f.Soname = strAt(val)
		case dtRpath:
			f.RPath = strAt(val)
		case dtRunpath:
			f.RunPath = strAt(val)
		}
	}
	return nil
}

func parseVerneed(r *reader, off, maxSize uint64, count int, dynstr []byte) ([]VerNeed, map[uint16][2]string, error) {
	strAt := func(o uint32) string {
		if uint64(o) >= uint64(len(dynstr)) {
			return ""
		}
		end := int(o)
		for end < len(dynstr) && dynstr[end] != 0 {
			end++
		}
		return string(dynstr[o:end])
	}
	var out []VerNeed
	idxOf := map[uint16][2]string{}
	// A hostile count cannot exceed one entry per 16 bytes of table.
	if max := int(maxSize / 16); count > max {
		count = max
	}
	cur := off
	for i := 0; i < count; i++ {
		if cur+16 > off+maxSize {
			return nil, nil, fmt.Errorf("elfimg: truncated verneed")
		}
		cnt, err := r.u16(cur + 2)
		if err != nil {
			return nil, nil, err
		}
		fileOff, _ := r.u32(cur + 4)
		auxOff, _ := r.u32(cur + 8)
		next, _ := r.u32(cur + 12)
		vn := VerNeed{File: strAt(fileOff)}
		aux := cur + uint64(auxOff)
		for j := 0; j < int(cnt); j++ {
			other, err := r.u16(aux + 6)
			if err != nil {
				return nil, nil, err
			}
			nameOff, err := r.u32(aux + 8)
			if err != nil {
				return nil, nil, err
			}
			auxNext, _ := r.u32(aux + 12)
			name := strAt(nameOff)
			vn.Versions = append(vn.Versions, name)
			idxOf[other] = [2]string{vn.File, name}
			if auxNext == 0 {
				break
			}
			aux += uint64(auxNext)
		}
		out = append(out, vn)
		if next == 0 {
			break
		}
		cur += uint64(next)
	}
	return out, idxOf, nil
}

func parseVerdef(r *reader, off, maxSize uint64, count int, dynstr []byte) ([]string, map[uint16]string, error) {
	strAt := func(o uint32) string {
		if uint64(o) >= uint64(len(dynstr)) {
			return ""
		}
		end := int(o)
		for end < len(dynstr) && dynstr[end] != 0 {
			end++
		}
		return string(dynstr[o:end])
	}
	var out []string
	idxOf := map[uint16]string{}
	// A hostile count cannot exceed one entry per 20 bytes of table.
	if max := int(maxSize / 20); count > max {
		count = max
	}
	cur := off
	for i := 0; i < count; i++ {
		if cur+20 > off+maxSize {
			return nil, nil, fmt.Errorf("elfimg: truncated verdef")
		}
		ndx, err := r.u16(cur + 4)
		if err != nil {
			return nil, nil, err
		}
		auxOff, err := r.u32(cur + 12)
		if err != nil {
			return nil, nil, err
		}
		next, _ := r.u32(cur + 16)
		nameOff, err := r.u32(cur + uint64(auxOff))
		if err != nil {
			return nil, nil, err
		}
		name := strAt(nameOff)
		out = append(out, name)
		idxOf[ndx] = name
		if next == 0 {
			break
		}
		cur += uint64(next)
	}
	return out, idxOf, nil
}

// parseDynsym decodes the dynamic symbol table and its parallel versym
// array into imported/exported symbols with version bindings.
func parseDynsym(r *reader, f *File, dynsym, versym *sectionHdr, dynstr []byte, verIdx map[uint16][2]string) error {
	syment := uint64(24)
	if r.cls == Class32 {
		syment = 16
	}
	if dynsym.size%syment != 0 {
		return fmt.Errorf("elfimg: dynsym size %d not a multiple of %d", dynsym.size, syment)
	}
	count := int(dynsym.size / syment)
	strAt := func(o uint32) string {
		if uint64(o) >= uint64(len(dynstr)) {
			return ""
		}
		end := int(o)
		for end < len(dynstr) && dynstr[end] != 0 {
			end++
		}
		return string(dynstr[o:end])
	}
	versionAt := func(slot int) (lib, ver string) {
		if versym == nil {
			return "", ""
		}
		v, err := r.u16(versym.offset + uint64(slot)*2)
		if err != nil {
			return "", ""
		}
		v &= 0x7fff // clear the hidden bit
		if v <= verNdxGlobal {
			return "", ""
		}
		pair := verIdx[v]
		return pair[0], pair[1]
	}
	for slot := 1; slot < count; slot++ {
		base := dynsym.offset + uint64(slot)*syment
		nameOff, err := r.u32(base)
		if err != nil {
			return err
		}
		var shndx uint16
		if r.cls == Class32 {
			shndx, _ = r.u16(base + 14)
		} else {
			shndx, _ = r.u16(base + 6)
		}
		name := strAt(nameOff)
		if name == "" {
			continue
		}
		lib, ver := versionAt(slot)
		if shndx == 0 { // SHN_UNDEF: imported
			f.Imports = append(f.Imports, ImportedSymbol{Name: name, Version: ver, Library: lib})
		} else {
			f.Exports = append(f.Exports, ExportedSymbol{Name: name, Version: ver})
		}
	}
	return nil
}
