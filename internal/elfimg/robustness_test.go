package elfimg

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanicsOnMutations flips bytes across a valid image and
// requires Parse to either error or return a parseable result — never
// panic. Binary inspection tools face hostile inputs; the BDC must too.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	base := MustBuild(symbolLibSpec())
	rng := rand.New(rand.NewSource(2013))
	for trial := 0; trial < 2000; trial++ {
		img := append([]byte(nil), base...)
		// Flip 1-4 bytes anywhere in the image.
		for n := 0; n < 1+rng.Intn(4); n++ {
			img[rng.Intn(len(img))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on mutation trial %d: %v", trial, r)
				}
			}()
			_, _ = Parse(img)
		}()
	}
}

// TestParseNeverPanicsOnTruncations checks every truncation point of a
// valid image.
func TestParseNeverPanicsOnTruncations(t *testing.T) {
	base := MustBuild(symbolExecSpec())
	step := 1
	if len(base) > 4096 {
		step = len(base) / 4096
	}
	for n := 0; n < len(base); n += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked at truncation %d: %v", n, r)
				}
			}()
			_, _ = Parse(base[:n])
		}()
	}
}

// TestParseHeaderFieldSweep drives each ELF header field through hostile
// values.
func TestParseHeaderFieldSweep(t *testing.T) {
	base := MustBuild(sampleLibSpec())
	hostile := []byte{0x00, 0x01, 0x7f, 0x80, 0xff}
	// Sweep every header byte (the first 64).
	for off := 0; off < 64; off++ {
		for _, v := range hostile {
			img := append([]byte(nil), base...)
			img[off] = v
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Parse panicked with header[%d]=%#x: %v", off, v, r)
					}
				}()
				_, _ = Parse(img)
			}()
		}
	}
}
