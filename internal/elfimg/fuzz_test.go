package elfimg

import "testing"

// fuzzSeeds are realistic images rendered by the package's own builder —
// the richest inputs the parser accepts — so mutation starts from valid
// headers rather than having to rediscover the magic and geometry.
func fuzzSeeds() [][]byte {
	seeds := [][]byte{
		nil,
		[]byte("\x7fELF"),
		[]byte("not an elf at all"),
	}
	specs := []Spec{
		{Class: Class64, Machine: EMX8664, Type: TypeExec,
			Interp:   "/lib64/ld-linux-x86-64.so.2",
			Needed:   []string{"libmpich.so.1", "libc.so.6"},
			VerNeeds: []VerNeed{{File: "libc.so.6", Versions: []string{"GLIBC_2.2.5", "GLIBC_2.12"}}},
			Comments: []string{"GCC: (GNU) 4.1.2", "built on CentOS 5.6 (glibc 2.5)"},
			TextSize: 64},
		{Class: Class64, Machine: EMX8664, Type: TypeDyn,
			Soname:  "libmpich.so.1",
			Needed:  []string{"libc.so.6"},
			VerDefs: []string{"libmpich.so.1", "MPICH_1.2"},
			Exports: []ExportedSymbol{{Name: "MPI_Init", Version: "MPICH_1.2"}}},
		{Class: Class32, Machine: EM386, Type: TypeExec,
			Interp: "/lib/ld-linux.so.2",
			Needed: []string{"libc.so.6"}},
	}
	for _, spec := range specs {
		seeds = append(seeds, MustBuild(spec))
	}
	return seeds
}

// FuzzParseELF throws mutated images at the ELF parser. Parse must reject
// garbage with an error, never a panic or hang, and on acceptance every
// accessor must be callable: the BDC calls them on whatever bytes a user
// hands it.
func FuzzParseELF(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			if file != nil {
				t.Fatalf("Parse returned both a file and error %v", err)
			}
			return
		}
		// Every accessor the BDC touches must work on an accepted image.
		_ = file.Format()
		_ = file.IsSharedLibrary()
		_ = file.Class.Bits()
		_ = file.Machine.String()
		_ = file.Type.String()
		for _, name := range file.VersionRefNames() {
			_ = name
		}
		for _, dep := range file.Needed {
			_ = file.VersionRefsFor(dep)
		}
	})
}
