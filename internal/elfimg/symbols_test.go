package elfimg

import (
	"bytes"
	"debug/elf"
	"reflect"
	"testing"
)

// symbolExecSpec is an executable importing versioned libc symbols and
// unversioned MPI symbols — the shape real mpicc output has.
func symbolExecSpec() Spec {
	return Spec{
		Class:   Class64,
		Machine: EMX8664,
		Type:    TypeExec,
		Interp:  "/lib64/ld-linux-x86-64.so.2",
		Needed:  []string{"libmpi.so.0", "libm.so.6", "libc.so.6"},
		VerNeeds: []VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.2.5", "GLIBC_2.3.4"}},
			{File: "libm.so.6", Versions: []string{"GLIBC_2.2.5"}},
		},
		Imports: []ImportedSymbol{
			{Name: "MPI_Init"},
			{Name: "MPI_Comm_rank"},
			{Name: "printf", Version: "GLIBC_2.2.5", Library: "libc.so.6"},
			{Name: "memcpy", Version: "GLIBC_2.3.4", Library: "libc.so.6"},
			{Name: "sqrt", Version: "GLIBC_2.2.5", Library: "libm.so.6"},
		},
		Exports:  []ExportedSymbol{{Name: "main"}},
		TextSize: 512,
	}
}

// symbolLibSpec is a shared library exporting versioned symbols.
func symbolLibSpec() Spec {
	return Spec{
		Class:   Class64,
		Machine: EMX8664,
		Type:    TypeDyn,
		Soname:  "libmpich.so.1",
		Needed:  []string{"libc.so.6"},
		VerNeeds: []VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.2.5"}},
		},
		VerDefs: []string{"libmpich.so.1", "MPICH_1.2"},
		Imports: []ImportedSymbol{
			{Name: "malloc", Version: "GLIBC_2.2.5", Library: "libc.so.6"},
		},
		Exports: []ExportedSymbol{
			{Name: "MPI_Init", Version: "MPICH_1.2"},
			{Name: "MPI_Send", Version: "MPICH_1.2"},
			{Name: "MPID_Internal"},
		},
		TextSize: 1024,
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"exec", symbolExecSpec()},
		{"lib", symbolLibSpec()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img, err := Build(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Parse(img)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(f.Imports, tc.spec.Imports) {
				t.Errorf("Imports = %+v\nwant      %+v", f.Imports, tc.spec.Imports)
			}
			if !reflect.DeepEqual(f.Exports, tc.spec.Exports) {
				t.Errorf("Exports = %+v\nwant      %+v", f.Exports, tc.spec.Exports)
			}
			// Pre-symbol metadata is unaffected.
			if !reflect.DeepEqual(f.Needed, tc.spec.Needed) {
				t.Errorf("Needed = %v", f.Needed)
			}
			if !reflect.DeepEqual(f.VerNeeds, tc.spec.VerNeeds) {
				t.Errorf("VerNeeds = %+v", f.VerNeeds)
			}
		})
	}
}

func TestSymbolRoundTrip32(t *testing.T) {
	spec := symbolExecSpec()
	spec.Class = Class32
	spec.Machine = EM386
	spec.Interp = "/lib/ld-linux.so.2"
	img, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Imports, spec.Imports) {
		t.Errorf("Imports = %+v", f.Imports)
	}
	if !reflect.DeepEqual(f.Exports, spec.Exports) {
		t.Errorf("Exports = %+v", f.Exports)
	}
}

// TestDebugElfImportedSymbols validates symbol+version encoding against the
// standard library's independent implementation.
func TestDebugElfImportedSymbols(t *testing.T) {
	img := MustBuild(symbolExecSpec())
	ef, err := elf.NewFile(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	syms, err := ef.ImportedSymbols()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		"MPI_Init":      {"", ""},
		"MPI_Comm_rank": {"", ""},
		"printf":        {"GLIBC_2.2.5", "libc.so.6"},
		"memcpy":        {"GLIBC_2.3.4", "libc.so.6"},
		"sqrt":          {"GLIBC_2.2.5", "libm.so.6"},
	}
	if len(syms) != len(want) {
		t.Fatalf("debug/elf sees %d imports: %+v", len(syms), syms)
	}
	for _, s := range syms {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected import %q", s.Name)
			continue
		}
		if s.Version != w[0] || s.Library != w[1] {
			t.Errorf("%s: version=%q library=%q, want %q %q", s.Name, s.Version, s.Library, w[0], w[1])
		}
	}
	// DynamicSymbols sees both imports and exports.
	dyn, err := ef.DynamicSymbols()
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 6 { // 5 imports + main
		t.Errorf("DynamicSymbols = %d", len(dyn))
	}
}

func TestSymbolValidation(t *testing.T) {
	spec := symbolExecSpec()
	spec.Imports = append(spec.Imports, ImportedSymbol{
		Name: "bogus", Version: "GLIBC_9.9", Library: "libc.so.6",
	})
	if _, err := Build(spec); err == nil {
		t.Error("import with unknown version accepted")
	}
	lib := symbolLibSpec()
	lib.Exports = append(lib.Exports, ExportedSymbol{Name: "x", Version: "NOPE_1.0"})
	if _, err := Build(lib); err == nil {
		t.Error("export with unknown version accepted")
	}
}

func TestSymbolFreeImagesUnchanged(t *testing.T) {
	// Images without symbols must not grow symbol sections.
	img := MustBuild(sampleExecSpec())
	ef, err := elf.NewFile(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	if sec := ef.Section(".dynsym"); sec != nil {
		t.Error("symbol-free image has a .dynsym section")
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Imports) != 0 || len(f.Exports) != 0 {
		t.Error("phantom symbols parsed")
	}
}

func TestVersymIndicesUniqueAcrossFiles(t *testing.T) {
	// Two dependencies with identically named versions must get distinct
	// indices (the historical vna_other collision bug).
	spec := Spec{
		Class: Class64, Machine: EMX8664, Type: TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"liba.so.1", "libb.so.1", "libc.so.6"},
		VerNeeds: []VerNeed{
			{File: "liba.so.1", Versions: []string{"V_1.0"}},
			{File: "libb.so.1", Versions: []string{"V_1.0"}},
		},
		Imports: []ImportedSymbol{
			{Name: "a_fn", Version: "V_1.0", Library: "liba.so.1"},
			{Name: "b_fn", Version: "V_1.0", Library: "libb.so.1"},
		},
	}
	img := MustBuild(spec)
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Imports) != 2 {
		t.Fatalf("Imports = %+v", f.Imports)
	}
	if f.Imports[0].Library != "liba.so.1" || f.Imports[1].Library != "libb.so.1" {
		t.Errorf("library bindings collided: %+v", f.Imports)
	}
	// And debug/elf agrees.
	ef, err := elf.NewFile(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	syms, err := ef.ImportedSymbols()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range syms {
		switch s.Name {
		case "a_fn":
			if s.Library != "liba.so.1" {
				t.Errorf("a_fn bound to %q", s.Library)
			}
		case "b_fn":
			if s.Library != "libb.so.1" {
				t.Errorf("b_fn bound to %q", s.Library)
			}
		}
	}
}
