package feam

import "feam/internal/metrics"

// Observer receives engine lifecycle events: evaluations, cache lookups,
// and probe-program executions. Implementations must be safe for
// concurrent use — the engine notifies from whichever goroutine performed
// the work. Register with Engine.AddObserver.
type Observer interface {
	// EvaluationStarted fires when the TEC begins evaluating a binary at a
	// site; EvaluationFinished fires when it completes, with the headline
	// readiness answer (false when err != nil or the evaluation was
	// gated off by a failed determinant).
	EvaluationStarted(binary, site string)
	EvaluationFinished(binary, site string, ready bool, err error)
	// CacheAccess fires on every memoized-component lookup. component is
	// "bdc" (binary descriptions) or "edc" (environment descriptions); key
	// is the binary name or site name.
	CacheAccess(component, key string, hit bool)
	// ProbeRun fires after each probe-program execution during stack
	// usability testing.
	ProbeRun(site, stackKey string, success bool)
}

// NopObserver is an Observer that ignores every event; embed it to
// implement only the events of interest.
type NopObserver struct{}

func (NopObserver) EvaluationStarted(binary, site string)                  {}
func (NopObserver) EvaluationFinished(binary, site string, ready bool, err error) {}
func (NopObserver) CacheAccess(component, key string, hit bool)            {}
func (NopObserver) ProbeRun(site, stackKey string, success bool)           {}

// countersObserver adapts engine events onto metrics.EngineCounters.
type countersObserver struct {
	c *metrics.EngineCounters
}

// NewCountersObserver returns an Observer that tallies engine activity
// into the given counters.
func NewCountersObserver(c *metrics.EngineCounters) Observer {
	return &countersObserver{c: c}
}

func (o *countersObserver) EvaluationStarted(binary, site string) {}

func (o *countersObserver) EvaluationFinished(binary, site string, ready bool, err error) {
	o.c.Evaluations.Add(1)
	if ready {
		o.c.ReadyPredictions.Add(1)
	}
}

func (o *countersObserver) CacheAccess(component, key string, hit bool) {
	switch component {
	case "bdc":
		if hit {
			o.c.BDCHits.Add(1)
		} else {
			o.c.BDCMisses.Add(1)
		}
	case "edc":
		if hit {
			o.c.EDCHits.Add(1)
		} else {
			o.c.EDCMisses.Add(1)
		}
	}
}

func (o *countersObserver) ProbeRun(site, stackKey string, success bool) {
	o.c.ProbeRuns.Add(1)
	if !success {
		o.c.ProbeFailures.Add(1)
	}
}
