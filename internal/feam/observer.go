package feam

import (
	"strconv"

	"feam/internal/metrics"
	"feam/internal/obs"
)

// Observer receives engine lifecycle events: evaluations, cache lookups,
// and probe-program executions. Implementations must be safe for
// concurrent use — the engine notifies from whichever goroutine performed
// the work. Register with Engine.AddObserver.
type Observer interface {
	// EvaluationStarted fires when the TEC begins evaluating a binary at a
	// site; EvaluationFinished fires when it completes, with the headline
	// readiness answer (false when err != nil or the evaluation was
	// gated off by a failed determinant).
	EvaluationStarted(binary, site string)
	EvaluationFinished(binary, site string, ready bool, err error)
	// CacheAccess fires on every memoized-component lookup. component is
	// "bdc" (binary descriptions) or "edc" (environment descriptions); key
	// is the binary name or site name.
	CacheAccess(component, key string, hit bool)
	// ProbeRun fires after each probe-program execution during stack
	// usability testing.
	ProbeRun(site, stackKey string, success bool)
	// ProbeRetried fires when a transient probe failure is retried;
	// attempt is the attempt number that just failed (1-based).
	ProbeRetried(site, stackKey string, attempt int)
	// StagingRetried fires when a transient staging-write failure is
	// retried; path is the destination being written.
	StagingRetried(site, path string, attempt int)
	// StagingOutcome fires when transactional library staging finishes:
	// committed reports whether the stage directory was atomically
	// published (true) or rolled back (false); libs is the number of
	// library copies in the plan.
	StagingOutcome(site, dir string, committed bool, libs int)
}

// NopObserver is an Observer that ignores every event; embed it to
// implement only the events of interest.
type NopObserver struct{}

func (NopObserver) EvaluationStarted(binary, site string)                         {}
func (NopObserver) EvaluationFinished(binary, site string, ready bool, err error) {}
func (NopObserver) CacheAccess(component, key string, hit bool)                   {}
func (NopObserver) ProbeRun(site, stackKey string, success bool)                  {}
func (NopObserver) ProbeRetried(site, stackKey string, attempt int)               {}
func (NopObserver) StagingRetried(site, path string, attempt int)                 {}
func (NopObserver) StagingOutcome(site, dir string, committed bool, libs int)     {}

// observerSink adapts a legacy Observer onto the span stream: the engine
// instruments itself with spans only, and this sink translates span
// lifecycle back into the Observer vocabulary, preserving the exact event
// counts and ordering the pre-tracing engine delivered.
type observerSink struct {
	o Observer
}

func (s *observerSink) SpanStarted(sp *obs.Span) {
	if sp.Op == obs.OpEvaluate {
		s.o.EvaluationStarted(sp.Binary, sp.Site)
	}
}

func (s *observerSink) SpanEnded(sp *obs.Span) {
	switch sp.Op {
	case obs.OpEvaluate:
		s.o.EvaluationFinished(sp.Binary, sp.Site, sp.Attrs[obs.AttrReady] == "true", sp.Cause())
	case obs.OpProbe:
		s.o.ProbeRun(sp.Site, sp.Attrs[obs.AttrStack], sp.Attrs[obs.AttrSuccess] == "true")
	case obs.OpStaging:
		libs, _ := strconv.Atoi(sp.Attrs[obs.AttrLibs])
		s.o.StagingOutcome(sp.Site, sp.Attrs[obs.AttrDir], sp.Attrs[obs.AttrCommitted] == "true", libs)
	}
}

func (s *observerSink) SpanEvent(sp *obs.Span, e obs.Event) {
	switch e.Name {
	case obs.EvCache:
		s.o.CacheAccess(e.Attrs[obs.AttrComponent], e.Attrs[obs.AttrKey], e.Attrs[obs.AttrHit] == "true")
	case obs.EvProbeRetry:
		attempt, _ := strconv.Atoi(e.Attrs[obs.AttrAttempt])
		s.o.ProbeRetried(sp.Site, e.Attrs[obs.AttrStack], attempt)
	case obs.EvStagingRetry:
		attempt, _ := strconv.Atoi(e.Attrs[obs.AttrAttempt])
		s.o.StagingRetried(sp.Site, e.Attrs[obs.AttrPath], attempt)
	}
}

// countersObserver adapts engine events onto metrics.EngineCounters.
type countersObserver struct {
	c *metrics.EngineCounters
}

// NewCountersObserver returns an Observer that tallies engine activity
// into the given counters.
func NewCountersObserver(c *metrics.EngineCounters) Observer {
	return &countersObserver{c: c}
}

func (o *countersObserver) EvaluationStarted(binary, site string) {}

func (o *countersObserver) EvaluationFinished(binary, site string, ready bool, err error) {
	o.c.Evaluations.Add(1)
	if ready {
		o.c.ReadyPredictions.Add(1)
	}
}

func (o *countersObserver) CacheAccess(component, key string, hit bool) {
	switch component {
	case "bdc":
		if hit {
			o.c.BDCHits.Add(1)
		} else {
			o.c.BDCMisses.Add(1)
		}
	case "edc":
		if hit {
			o.c.EDCHits.Add(1)
		} else {
			o.c.EDCMisses.Add(1)
		}
	}
}

func (o *countersObserver) ProbeRun(site, stackKey string, success bool) {
	o.c.ProbeRuns.Add(1)
	if !success {
		o.c.ProbeFailures.Add(1)
	}
}

func (o *countersObserver) ProbeRetried(site, stackKey string, attempt int) {
	o.c.ProbeRetries.Add(1)
}

func (o *countersObserver) StagingRetried(site, path string, attempt int) {
	o.c.StagingRetries.Add(1)
}

func (o *countersObserver) StagingOutcome(site, dir string, committed bool, libs int) {
	if committed {
		o.c.StagingCommits.Add(1)
	} else {
		o.c.StagingRollbacks.Add(1)
	}
}
