package feam_test

import (
	"fmt"

	"feam/internal/elfimg"
	"feam/internal/feam"
	"feam/internal/mpistack"
)

// ExampleDescribeBytes shows the Binary Description Component on a
// hand-built MPI binary image.
func ExampleDescribeBytes() {
	img := elfimg.MustBuild(elfimg.Spec{
		Class:   elfimg.Class64,
		Machine: elfimg.EMX8664,
		Type:    elfimg.TypeExec,
		Interp:  "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libmpich.so.1.2", "libibverbs.so.1", "libibumad.so.3",
			"libm.so.6", "libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_2.5"}},
		},
		Comments: []string{"Intel(R) C Compiler 11.1"},
	})
	desc, _ := feam.DescribeBytes(img, "milc.bin")
	fmt.Println(desc.Format)
	fmt.Println(desc.MPIImpl)
	fmt.Println(desc.RequiredGlibc)
	fmt.Println(desc.BuildComment)
	// Output:
	// elf64-x86-64
	// mvapich2
	// 2.5
	// Intel(R) C Compiler 11.1
}

// ExampleIdentify demonstrates the paper's Table I identification scheme.
func ExampleIdentify() {
	needed := []string{"libmpi.so.0", "libnsl.so.1", "libutil.so.1", "libc.so.6"}
	impl, ok := mpistack.Identify(needed)
	fmt.Println(impl, ok)
	// Output: Open MPI true
}
