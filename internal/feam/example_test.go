package feam_test

import (
	"context"
	"fmt"

	"feam/internal/elfimg"
	"feam/internal/fault"
	"feam/internal/feam"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/obs"
	"feam/internal/sitemodel"
)

// ExampleDescribeBytes shows the Binary Description Component on a
// hand-built MPI binary image.
func ExampleDescribeBytes() {
	img := elfimg.MustBuild(elfimg.Spec{
		Class:   elfimg.Class64,
		Machine: elfimg.EMX8664,
		Type:    elfimg.TypeExec,
		Interp:  "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libmpich.so.1.2", "libibverbs.so.1", "libibumad.so.3",
			"libm.so.6", "libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.0", "GLIBC_2.5"}},
		},
		Comments: []string{"Intel(R) C Compiler 11.1"},
	})
	desc, _ := feam.DescribeBytes(img, "milc.bin")
	fmt.Println(desc.Format)
	fmt.Println(desc.MPIImpl)
	fmt.Println(desc.RequiredGlibc)
	fmt.Println(desc.BuildComment)
	// Output:
	// elf64-x86-64
	// mvapich2
	// 2.5
	// Intel(R) C Compiler 11.1
}

// ExampleIdentify demonstrates the paper's Table I identification scheme.
func ExampleIdentify() {
	needed := []string{"libmpi.so.0", "libnsl.so.1", "libutil.so.1", "libc.so.6"}
	impl, ok := mpistack.Identify(needed)
	fmt.Println(impl, ok)
	// Output: Open MPI true
}

// ExampleNew builds an engine with functional options: a bounded ranking
// fan-out, a single-attempt retry policy, and a shared metrics registry.
func ExampleNew() {
	eng := feam.New(
		feam.WithWorkers(2),
		feam.WithRetryPolicy(fault.RetryPolicy{MaxAttempts: 1}),
		feam.WithMetrics(obs.NewRegistry()),
	)
	fmt.Println(eng.Tracer() != nil)
	fmt.Println(eng.Metrics() != nil)
	// Output:
	// true
	// true
}

// ExampleEngine_Predict evaluates a plain dynamically linked binary
// against a minimal site: Predict describes the raw bytes, surveys the
// site, and walks the determinant ladder.
func ExampleEngine_Predict() {
	site := sitemodel.New("edge",
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "X", FeatureLevel: 1},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
	if err := site.InstallCLibrary(); err != nil {
		panic(err)
	}
	img := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.3.4"}},
		},
	})

	eng := feam.New()
	pred, err := eng.Predict(context.Background(), feam.EvalRequest{
		Binary: img, BinaryName: "app", Site: site,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("ready:", pred.Ready)
	for _, d := range feam.Determinants() {
		fmt.Printf("%s: %s\n", d, pred.Determinants[d].Outcome)
	}
	// Output:
	// ready: true
	// ISA compatibility: pass
	// C library compatibility: pass
	// MPI stack compatibility: pass
	// shared library compatibility: pass
	// ABI symbol resolution: not evaluated
}
