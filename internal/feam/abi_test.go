package feam_test

import (
	"context"
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/feam"
	"feam/internal/obs"
)

// TestPredictWithABICheck drives the extended five-determinant ladder
// end to end on a real compiled binary: the ABI determinant must run,
// attach the per-symbol report, and agree with the closure checker on a
// clean site.
func TestPredictWithABICheck(t *testing.T) {
	tb := sharedTestbed(t)
	site := tb.ByName["india"]
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.abi")
	if err != nil {
		t.Fatal(err)
	}

	eng := feam.New(feam.WithABICheck(true))
	pred, err := eng.Predict(context.Background(), feam.EvalRequest{
		Desc: desc, Binary: art.Bytes, Site: site,
		Options: feam.EvalOptions{Runner: experimentRunner()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("india should be ready: %v", pred.Reasons)
	}
	for _, d := range feam.Determinants() {
		if pred.Determinants[d].Outcome != feam.Pass {
			t.Errorf("%s = %v (%s), want Pass", d, pred.Determinants[d].Outcome, pred.Determinants[d].Detail)
		}
	}
	if pred.ABI == nil {
		t.Fatal("prediction carries no ABI report")
	}
	if !pred.ABI.OK() || pred.ABI.Total == 0 {
		t.Fatalf("ABI report not clean: %s", pred.ABI.Summary())
	}
	if pred.ABI.Agreement == nil || !pred.ABI.Agreement.Agree {
		t.Fatalf("agreement mode did not run or disagreed: %+v", pred.ABI.Agreement)
	}
	if got := eng.Metrics().Counter("abi_agree").Load(); got < 1 {
		t.Errorf("abi_agree counter = %d, want >= 1", got)
	}
	if got := eng.Metrics().Histogram(obs.OpABICheck).Count(); got < 1 {
		t.Errorf("abi_check histogram count = %d, want >= 1", got)
	}
	if got := eng.Metrics().Histogram(obs.OpSymIndex).Count(); got < 1 {
		t.Errorf("sym_index histogram count = %d, want >= 1", got)
	}
}

// countSpans tallies tracer spans by op.
func countSpans(eng *feam.Engine, op string) int {
	n := 0
	for _, sp := range eng.Tracer().Snapshot() {
		if sp.Op == op {
			n++
		}
	}
	return n
}

// TestSymbolIndexCachedAcrossChecks pins the KindSymIndex caching
// contract: one index build serves repeated ABI checks (no second
// OpSymIndex span), and any filesystem mutation invalidates it through
// the content-generation stamp.
func TestSymbolIndexCachedAcrossChecks(t *testing.T) {
	tb := sharedTestbed(t)
	site := tb.ByName["forge"]
	eng := feam.New()
	ctx := context.Background()
	bin := plainBinary()

	if _, err := eng.ABICheck(ctx, site, bin, "probe", false); err != nil {
		t.Fatal(err)
	}
	if got := countSpans(eng, obs.OpSymIndex); got != 1 {
		t.Fatalf("first check emitted %d sym_index spans, want 1", got)
	}
	if _, err := eng.ABICheck(ctx, site, bin, "probe", false); err != nil {
		t.Fatal(err)
	}
	if got := countSpans(eng, obs.OpSymIndex); got != 1 {
		t.Fatalf("cached check rebuilt the index: %d sym_index spans, want 1", got)
	}
	if got := countSpans(eng, obs.OpABICheck); got != 2 {
		t.Fatalf("abi_check spans = %d, want 2", got)
	}

	// Installing a new library bumps the vfs content generation; the next
	// check must rebuild and see the new exports.
	lib := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeDyn,
		Soname:  "libfresh.so.1",
		Exports: []elfimg.ExportedSymbol{{Name: "fresh_symbol"}},
	})
	if err := site.FS().WriteFile("/lib64/libfresh.so.1", lib); err != nil {
		t.Fatal(err)
	}
	r, err := eng.ABICheck(ctx, site, bin, "probe", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := countSpans(eng, obs.OpSymIndex); got != 2 {
		t.Fatalf("mutation did not invalidate the index: %d sym_index spans, want 2", got)
	}
	if r.Libraries == 0 {
		t.Fatal("rebuilt report indexes no libraries")
	}
}

// TestMPIStackABIStandardClass: a binary built against MVAPICH2 lands on
// blacklight, which installs only Open MPI. The paper's
// same-implementation ladder refuses; the ABI-standard class admits the
// foreign stack because it exports the MPI entry points the binary
// imports (arXiv:2308.11214).
func TestMPIStackABIStandardClass(t *testing.T) {
	tb := sharedTestbed(t)
	site := tb.ByName["blacklight"]
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.mvapich")
	if err != nil {
		t.Fatal(err)
	}
	eng := feam.New()

	// Paper-faithful ladder: no MVAPICH2 at blacklight, so the MPI
	// determinant fails.
	base, err := eng.Predict(context.Background(), feam.EvalRequest{
		Desc: desc, Binary: art.Bytes, Site: site,
		Options: feam.EvalOptions{Runner: experimentRunner()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Determinants[feam.DetMPIStack].Outcome != feam.Fail {
		t.Fatalf("default ladder accepted a foreign-implementation site: %+v",
			base.Determinants[feam.DetMPIStack])
	}

	// Extended ladder: the ABI-standard class admits Open MPI's exported
	// surface.
	ext, err := eng.Predict(context.Background(), feam.EvalRequest{
		Desc: desc, Binary: art.Bytes, Site: site,
		Options: feam.EvalOptions{
			Runner:     experimentRunner(),
			Evaluators: feam.ABIEvaluators(false),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := ext.Determinants[feam.DetMPIStack]
	if got.Outcome != feam.Pass {
		t.Fatalf("ABI-standard class did not admit the foreign stack: %v (%s)", got.Outcome, got.Detail)
	}
	if !strings.Contains(got.Detail, "ABI-standard") {
		t.Errorf("detail does not name the compatibility class: %q", got.Detail)
	}
	if ext.SelectedStack == nil || ext.SelectedStack.Impl == desc.MPIImpl {
		t.Errorf("expected a foreign-implementation stack selection, got %+v", ext.SelectedStack)
	}
}
