package feam_test

import (
	"context"
	"testing"

	"feam/internal/feam"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
)

// rankBundle builds the MVAPICH2-1.2 cg bundle at ranger used by the
// ordering tests (fir/india can resolve its missing libraries from it).
func rankBundle(t *testing.T, tb *testbed.Testbed, binName string) (*feam.BinaryDescription, []byte, *feam.Bundle) {
	t.Helper()
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, binName)
	if err != nil {
		t.Fatal(err)
	}
	ranger := tb.ByName["ranger"]
	path := "/home/user/" + binName
	if err := ranger.FS().WriteFile(path, art.Bytes); err != nil {
		t.Fatal(err)
	}
	snap := ranger.SnapshotEnv()
	if err := testbed.ActivateStack(ranger, "mvapich2-1.2-gnu"); err != nil {
		t.Fatal(err)
	}
	bundle, _, err := feam.RunSourcePhase(testConfig("source", path), ranger, experimentRunner())
	ranger.RestoreEnv(snap)
	if err != nil {
		t.Fatal(err)
	}
	return desc, art.Bytes, bundle
}

// TestRankSitesOrderingClasses covers the full ranking ladder in one
// survey: ready-as-is (ranger, the build site) ahead of
// ready-with-staging (india, resolution required) ahead of
// partial-determinant credit (blacklight passes ISA and C library but has
// no MVAPICH2) ahead of a failed survey (no uname surface).
func TestRankSitesOrderingClasses(t *testing.T) {
	tb := sharedTestbed(t)
	desc, appBytes, bundle := rankBundle(t, tb, "cg.rank-classes")

	broken := minimalSite(t)
	if err := broken.FS().Remove("/proc/sys/kernel/uname"); err != nil {
		t.Fatal(err)
	}
	// Deliberately worst-first input: the ranking must reorder it fully.
	sites := []*sitemodel.Site{broken, tb.ByName["blacklight"], tb.ByName["india"], tb.ByName["ranger"]}
	opts := feam.EvalOptions{Bundle: bundle, Resolve: true, Runner: experimentRunner()}
	ranked := feam.RankSites(desc, appBytes, sites, opts)
	if len(ranked) != 4 {
		t.Fatalf("ranked = %d", len(ranked))
	}

	if ranked[0].Site != "ranger" {
		t.Fatalf("first = %s, want ranger (ready as-is)", ranked[0].Site)
	}
	if p := ranked[0].Prediction; p == nil || !p.Ready || len(p.ResolvedLibs) != 0 {
		t.Errorf("ranger should be ready without staging: %+v", ranked[0].Prediction)
	}
	if ranked[1].Site != "india" {
		t.Fatalf("second = %s, want india (ready with staging)", ranked[1].Site)
	}
	if p := ranked[1].Prediction; p == nil || !p.Ready || len(p.ResolvedLibs) == 0 {
		t.Errorf("india should be ready via staged libraries: %+v", ranked[1].Prediction)
	}
	if ranked[2].Site != "blacklight" {
		t.Fatalf("third = %s, want blacklight (partial credit)", ranked[2].Site)
	}
	if p := ranked[2].Prediction; p == nil || p.Ready {
		t.Errorf("blacklight should not be ready")
	} else {
		if p.Determinants[feam.DetISA].Outcome != feam.Pass ||
			p.Determinants[feam.DetCLibrary].Outcome != feam.Pass {
			t.Errorf("blacklight should earn ISA and C library credit: %+v", p.Determinants)
		}
		if p.Determinants[feam.DetMPIStack].Outcome != feam.Fail {
			t.Errorf("blacklight should fail the MPI determinant: %+v", p.Determinants)
		}
	}
	if ranked[3].Err == nil {
		t.Error("broken site's survey error lost")
	}

	// The concurrent fan-out must produce the identical ranking.
	eng := feam.New()
	par := eng.RankSitesParallel(context.Background(), desc, appBytes, sites, opts, 4)
	for i := range ranked {
		if par[i].Site != ranked[i].Site {
			t.Fatalf("parallel rank %d = %s, sequential = %s", i, par[i].Site, ranked[i].Site)
		}
	}
}

// TestRankSitesStableTies: forge (broken MVAPICH2 stack) and blacklight
// (no MVAPICH2 at all) both fail the MPI determinant with identical
// partial credit, so the ranking must keep whichever order the caller
// supplied — in both directions, and under the concurrent fan-out.
func TestRankSitesStableTies(t *testing.T) {
	tb := sharedTestbed(t)
	desc, appBytes, _ := rankBundle(t, tb, "cg.rank-ties")
	forge, blacklight := tb.ByName["forge"], tb.ByName["blacklight"]
	opts := feam.EvalOptions{Runner: experimentRunner()}

	for _, order := range [][]*sitemodel.Site{{forge, blacklight}, {blacklight, forge}} {
		ranked := feam.RankSites(desc, appBytes, order, opts)
		if len(ranked) != 2 {
			t.Fatalf("ranked = %d", len(ranked))
		}
		for i, a := range ranked {
			if a.Site != order[i].Name {
				t.Errorf("tie broke input order: got %s at %d, want %s", a.Site, i, order[i].Name)
			}
			if a.Prediction == nil || a.Prediction.Ready {
				t.Errorf("%s should not be ready", a.Site)
			}
		}
		// Both must have failed on the same determinant for the tie to be
		// meaningful.
		if ranked[0].Prediction.Determinants[feam.DetMPIStack].Outcome != feam.Fail ||
			ranked[1].Prediction.Determinants[feam.DetMPIStack].Outcome != feam.Fail {
			t.Fatalf("expected both sites to fail the MPI determinant")
		}
		eng := feam.New()
		par := eng.RankSitesParallel(context.Background(), desc, appBytes, order, opts, 2)
		for i, a := range par {
			if a.Site != order[i].Name {
				t.Errorf("parallel tie broke input order: got %s at %d", a.Site, i)
			}
		}
	}
}
