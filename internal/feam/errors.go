package feam

import "errors"

// Sentinel errors for the prediction pipeline. They wrap the underlying
// cause (often a fault.Fault carrying the transient/permanent taxonomy), so
// callers branch with errors.Is on the sentinel and can still reach the
// cause with errors.As — no string matching.
var (
	// ErrNoEnvironment reports that an evaluation was requested without
	// the inputs needed to form one: a missing site, or neither a binary
	// description, binary bytes, nor a bundle to derive one from.
	ErrNoEnvironment = errors.New("feam: no environment to evaluate")

	// ErrSiteUnavailable reports that a candidate site could not be
	// surveyed — the Environment Discovery Component failed, so no
	// prediction was attempted there.
	ErrSiteUnavailable = errors.New("feam: site unavailable")

	// ErrProbeFailed reports that the determinant ladder aborted on an
	// infrastructure failure (a probe run, image build, or library scan
	// erroring out — not a NOT-READY verdict, which is a valid prediction).
	ErrProbeFailed = errors.New("feam: evaluation aborted")

	// ErrBadBinary reports that a binary image could not be described: it
	// is not a parseable ELF object, or could not be read from the site.
	ErrBadBinary = errors.New("feam: bad binary")

	// ErrBadBundle reports a malformed or unreadable source-phase bundle —
	// a corrupt archive, a failed manifest check, or a truncated member.
	ErrBadBundle = errors.New("feam: bad bundle")

	// ErrBadConfig reports an invalid user configuration: an unknown key,
	// a missing required field, or an unusable submission script.
	ErrBadConfig = errors.New("feam: bad config")
)
