package feam_test

import (
	"context"
	"errors"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/fault"
	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/sitemodel"
)

// plainBinary builds a minimal dynamically linked executable that the edge
// site (minimalSite) can satisfy: one libc dependency, no MPI.
func plainBinary() []byte {
	return elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.3.4"}},
		},
	})
}

// TestTracingEmitsDeterminantSpans drives the concurrent ranking path and
// checks the issue's acceptance shape: at least one determinant span per
// site, each parented to that site's evaluate span, which in turn parents
// to the assess span the fan-out opened.
func TestTracingEmitsDeterminantSpans(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.tracing")
	if err != nil {
		t.Fatal(err)
	}
	sites := []*sitemodel.Site{tb.ByName["ranger"], tb.ByName["india"], tb.ByName["blacklight"]}

	eng := feam.New()
	eng.RankSitesParallel(context.Background(), desc, art.Bytes, sites,
		feam.EvalOptions{Runner: experimentRunner()}, len(sites))

	spans := eng.Tracer().Snapshot()
	byID := make(map[uint64]obs.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	detPerSite := map[string]int{}
	for _, sp := range spans {
		if sp.Op != obs.OpDeterminant {
			continue
		}
		detPerSite[sp.Site]++
		ev, ok := byID[sp.Parent]
		if !ok || ev.Op != obs.OpEvaluate {
			t.Fatalf("determinant span %q at %s: parent is %+v, want an evaluate span", sp.Determinant, sp.Site, ev)
		}
		as, ok := byID[ev.Parent]
		if !ok || as.Op != obs.OpAssess || as.Site != sp.Site {
			t.Fatalf("evaluate span at %s: parent is %+v, want the site's assess span", sp.Site, as)
		}
	}
	for _, s := range sites {
		if detPerSite[s.Name] < 1 {
			t.Errorf("site %s: %d determinant spans, want >= 1", s.Name, detPerSite[s.Name])
		}
	}
	// Every site passes ISA and C library before diverging, so each should
	// carry at least two determinant spans.
	for _, s := range sites {
		if detPerSite[s.Name] < 2 {
			t.Errorf("site %s: only %d determinant spans", s.Name, detPerSite[s.Name])
		}
	}
}

// TestHistogramsNoLostSamplesUnderRankSitesParallel: concurrent ranking
// rounds must account every evaluation in the evaluate histogram — the
// lock-free recording path may not drop samples (run under -race by the
// obs make target).
func TestHistogramsNoLostSamplesUnderRankSitesParallel(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.histo")
	if err != nil {
		t.Fatal(err)
	}
	sites := []*sitemodel.Site{tb.ByName["ranger"], tb.ByName["india"], tb.ByName["blacklight"], tb.ByName["forge"]}

	eng := feam.New()
	const rounds = 5
	for r := 0; r < rounds; r++ {
		eng.RankSitesParallel(context.Background(), desc, art.Bytes, sites,
			feam.EvalOptions{Runner: experimentRunner()}, 4)
	}
	want := uint64(rounds * len(sites))
	if got := eng.Metrics().Histogram(obs.OpEvaluate).Count(); got != want {
		t.Fatalf("evaluate histogram count = %d, want %d", got, want)
	}
	if got := eng.Metrics().Counter("evaluations").Load(); got != int64(want) {
		t.Fatalf("evaluations counter = %d, want %d", got, want)
	}
	if got := eng.Metrics().Histogram(obs.OpAssess).Count(); got != want {
		t.Fatalf("assess histogram count = %d, want %d", got, want)
	}
}

// explodingEvaluator aborts the ladder with an infrastructure error.
type explodingEvaluator struct{}

func (explodingEvaluator) Determinant() feam.Determinant { return feam.DetISA }
func (explodingEvaluator) Evaluate(*feam.EvalContext) error {
	return errors.New("probe infrastructure exploded")
}

func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()
	eng := feam.New()

	// Unsatisfiable requests wrap ErrNoEnvironment.
	if _, err := eng.Predict(ctx, feam.EvalRequest{}); !errors.Is(err, feam.ErrNoEnvironment) {
		t.Errorf("empty request: err = %v", err)
	}
	site := minimalSite(t)
	if _, err := eng.Predict(ctx, feam.EvalRequest{Site: site}); !errors.Is(err, feam.ErrNoEnvironment) {
		t.Errorf("no binary: err = %v", err)
	}
	if _, err := eng.Evaluate(ctx, nil, nil, nil, site, feam.EvalOptions{}); !errors.Is(err, feam.ErrNoEnvironment) {
		t.Errorf("nil Evaluate inputs: err = %v", err)
	}

	// A site whose survey surface is gone wraps ErrSiteUnavailable.
	broken := minimalSite(t)
	if err := broken.FS().Remove("/proc/sys/kernel/uname"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Predict(ctx, feam.EvalRequest{Binary: plainBinary(), BinaryName: "app", Site: broken})
	if !errors.Is(err, feam.ErrSiteUnavailable) {
		t.Errorf("broken survey: err = %v", err)
	}
	// The same classification surfaces through the ranking fan-out.
	desc, derr := feam.DescribeBytes(plainBinary(), "app.sentinel")
	if derr != nil {
		t.Fatal(derr)
	}
	ranked := eng.RankSitesParallel(ctx, desc, plainBinary(), []*sitemodel.Site{broken}, feam.EvalOptions{}, 1)
	if len(ranked) != 1 || !errors.Is(ranked[0].Err, feam.ErrSiteUnavailable) {
		t.Errorf("ranked broken site: %+v", ranked)
	}

	// An evaluator infrastructure error wraps ErrProbeFailed and still
	// returns the partial prediction trail.
	pred, err := eng.Predict(ctx, feam.EvalRequest{
		Binary: plainBinary(), BinaryName: "app", Site: site,
		Options: feam.EvalOptions{Evaluators: []feam.DeterminantEvaluator{explodingEvaluator{}}},
	})
	if !errors.Is(err, feam.ErrProbeFailed) {
		t.Errorf("exploding evaluator: err = %v", err)
	}
	if pred == nil || pred.Ready {
		t.Errorf("partial prediction = %+v", pred)
	}

	// The sentinels are mutually exclusive classifications.
	if errors.Is(err, feam.ErrSiteUnavailable) || errors.Is(err, feam.ErrNoEnvironment) {
		t.Errorf("probe failure also matches other sentinels: %v", err)
	}
}

// TestPredictEvaluateEquivalence: Evaluate is a thin veneer over Predict —
// both must produce the same verdict and determinant trail.
func TestPredictEvaluateEquivalence(t *testing.T) {
	ctx := context.Background()
	site := minimalSite(t)
	img := plainBinary()
	eng := feam.New()
	desc, err := eng.Describe(ctx, img, "app.equiv")
	if err != nil {
		t.Fatal(err)
	}
	env, err := feam.Discover(site)
	if err != nil {
		t.Fatal(err)
	}

	viaEvaluate, err := eng.Evaluate(ctx, desc, img, env, site, feam.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaPredict, err := eng.Predict(ctx, feam.EvalRequest{Desc: desc, Binary: img, Env: env, Site: site})
	if err != nil {
		t.Fatal(err)
	}
	if viaEvaluate.Ready != viaPredict.Ready {
		t.Fatalf("Ready: Evaluate=%v Predict=%v", viaEvaluate.Ready, viaPredict.Ready)
	}
	for _, d := range feam.Determinants() {
		if viaEvaluate.Determinants[d].Outcome != viaPredict.Determinants[d].Outcome {
			t.Errorf("%s: Evaluate=%v Predict=%v", d,
				viaEvaluate.Determinants[d].Outcome, viaPredict.Determinants[d].Outcome)
		}
	}
	// Predict can also derive the description itself from the raw bytes.
	viaBytes, err := eng.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.equiv", Env: env, Site: site})
	if err != nil {
		t.Fatal(err)
	}
	if viaBytes.Ready != viaPredict.Ready {
		t.Errorf("bytes-described Ready = %v, want %v", viaBytes.Ready, viaPredict.Ready)
	}
}

// TestFunctionalOptionsWireTheEngine: every option must land on the
// constructed engine — shared tracer/registry instances, the registry
// sink feeding span-derived counters, and a custom ladder honored.
func TestFunctionalOptionsWireTheEngine(t *testing.T) {
	ctx := context.Background()
	tr := obs.NewTracer(64)
	reg := obs.NewRegistry()
	shared := registry.New(registry.WithMetrics(reg))
	eng := feam.New(
		feam.WithTracer(tr),
		feam.WithMetrics(reg),
		feam.WithRegistry(shared),
		feam.WithWorkers(2),
		feam.WithRetryPolicy(fault.RetryPolicy{MaxAttempts: 1}),
		feam.WithEvaluators(feam.DefaultEvaluators()),
	)
	if eng.Tracer() != tr {
		t.Fatal("WithTracer instance not adopted")
	}
	if eng.Metrics() != reg {
		t.Fatal("WithMetrics instance not adopted")
	}
	if eng.Registry() != feam.SiteRegistry(shared) {
		t.Fatal("WithRegistry site-registry instance not adopted")
	}
	if eng.SiteLock("wiring-probe") != shared.SiteLock("wiring-probe") {
		t.Fatal("engine site locks must come from the shared registry")
	}

	site := minimalSite(t)
	pred, err := eng.Predict(ctx, feam.EvalRequest{Binary: plainBinary(), BinaryName: "app.opts", Site: site})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("prediction = %+v", pred)
	}
	if got := reg.Counter("evaluations").Load(); got != 1 {
		t.Errorf("evaluations counter = %d, want 1 (registry sink not wired)", got)
	}
	if got := reg.Histogram(obs.OpEvaluate).Count(); got != 1 {
		t.Errorf("registry evaluate count = %d, want 1 (registry sink not wired)", got)
	}
	if tr.Total() == 0 {
		t.Error("tracer saw no spans")
	}

	// A zero-option engine still comes fully wired (private layers).
	plain := feam.New()
	if plain.Tracer() == nil || plain.Metrics() == nil || plain.Registry() == nil {
		t.Error("zero-option engine missing tracer, metrics, or site registry")
	}
	// The shared registry saw the evaluated site's survey traffic.
	if st := shared.Stats(); st.Surveys == 0 || st.Sites == 0 {
		t.Errorf("shared registry stats = %+v, want surveyed site recorded", st)
	}
}
