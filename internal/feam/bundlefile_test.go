package feam_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"feam/internal/feam"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

// makeBundle produces a real source-phase bundle from the shared testbed.
func makeBundle(t *testing.T) *feam.Bundle {
	t.Helper()
	tb := sharedTestbed(t)
	ranger := tb.ByName["ranger"]
	rec := ranger.FindStack("mvapich2-1.2-gnu")
	art, err := toolchain.Compile(workload.Find("cg"), rec, ranger)
	if err != nil {
		t.Fatal(err)
	}
	path := "/home/user/bundle-test-" + art.Name
	if err := ranger.FS().WriteFile(path, art.Bytes); err != nil {
		t.Fatal(err)
	}
	snap := ranger.SnapshotEnv()
	defer ranger.RestoreEnv(snap)
	if err := testbed.ActivateStack(ranger, "mvapich2-1.2-gnu"); err != nil {
		t.Fatal(err)
	}
	runner := experimentRunner()
	bundle, _, err := feam.RunSourcePhase(testConfig("source", path), ranger, runner)
	if err != nil {
		t.Fatal(err)
	}
	return bundle
}

func TestBundleEncodeDecodeRoundTrip(t *testing.T) {
	bundle := makeBundle(t)
	data, err := feam.EncodeBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("FEAMBNDL")) {
		t.Error("missing magic")
	}
	got, err := feam.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SourceSite != bundle.SourceSite || !got.SourceGlibc.Equal(bundle.SourceGlibc) ||
		got.SourceStack != bundle.SourceStack {
		t.Errorf("meta: %q/%v/%q", got.SourceSite, got.SourceGlibc, got.SourceStack)
	}
	if got.App.Name != bundle.App.Name || got.App.MPIImpl != bundle.App.MPIImpl {
		t.Errorf("app: %+v", got.App)
	}
	if !reflect.DeepEqual(got.App.Needed, bundle.App.Needed) {
		t.Errorf("needed: %v vs %v", got.App.Needed, bundle.App.Needed)
	}
	if !got.App.RequiredGlibc.Equal(bundle.App.RequiredGlibc) {
		t.Errorf("required glibc: %v", got.App.RequiredGlibc)
	}
	if len(got.Libs) != len(bundle.Libs) {
		t.Fatalf("libs: %d vs %d", len(got.Libs), len(bundle.Libs))
	}
	for i := range got.Libs {
		a, b := got.Libs[i], bundle.Libs[i]
		if a.Name != b.Name || a.OriginPath != b.OriginPath {
			t.Errorf("lib %d: %q/%q vs %q/%q", i, a.Name, a.OriginPath, b.Name, b.OriginPath)
		}
		if !bytes.Equal(a.Data, b.Data) {
			t.Errorf("lib %s payload differs", a.Name)
		}
		if !reflect.DeepEqual(a.Attrs, b.Attrs) {
			t.Errorf("lib %s attrs %v vs %v", a.Name, a.Attrs, b.Attrs)
		}
		// Descriptions are re-derived and must match the originals.
		if a.Desc.Soname != b.Desc.Soname || !a.Desc.RequiredGlibc.Equal(b.Desc.RequiredGlibc) {
			t.Errorf("lib %s description drifted", a.Name)
		}
	}
	if got.MPIHello == nil || !bytes.Equal(got.MPIHello.Bytes, bundle.MPIHello.Bytes) {
		t.Error("MPI hello payload differs")
	}
	if got.MPIHello.Truth.StackKey != bundle.MPIHello.Truth.StackKey ||
		got.MPIHello.Truth.FeatureLevel != bundle.MPIHello.Truth.FeatureLevel ||
		!got.MPIHello.Truth.Hello {
		t.Errorf("hello truth: %+v", got.MPIHello.Truth)
	}
	if !bytes.Equal(got.AppBytes, bundle.AppBytes) {
		t.Error("application payload differs")
	}
	if got.Size() != bundle.Size() {
		t.Errorf("Size: %d vs %d", got.Size(), bundle.Size())
	}
}

func TestBundleDecodeRejectsCorruption(t *testing.T) {
	bundle := makeBundle(t)
	data, err := feam.EncodeBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle: the checksum must catch it.
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0xff
	if _, err := feam.DecodeBundle(corrupted); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption not detected: %v", err)
	}
	// Truncations never panic and always error.
	for _, n := range []int{0, 4, 8, 14, 20, len(data) / 2, len(data) - 1} {
		if _, err := feam.DecodeBundle(data[:n]); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
	// Wrong magic.
	bad := append([]byte("NOTABNDL"), data[8:]...)
	if _, err := feam.DecodeBundle(bad); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestBundleDecodeGarbageQuick(t *testing.T) {
	// Property: DecodeBundle never panics on arbitrary input.
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DecodeBundle panicked: %v", r)
			}
		}()
		_, _ = feam.DecodeBundle(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBundleTransportScenario ships a serialized bundle to a target site
// through its filesystem and uses it in a target phase — the full workflow
// the paper describes, including the "binary not present at target" mode.
func TestBundleTransportScenario(t *testing.T) {
	tb := sharedTestbed(t)
	bundle := makeBundle(t)
	india := tb.ByName["india"]

	data, err := feam.EncodeBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if err := india.FS().WriteFile("/home/user/cg.feambundle", data); err != nil {
		t.Fatal(err)
	}
	// At the target, read it back off the site filesystem.
	raw, err := india.FS().ReadFile("/home/user/cg.feambundle")
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := feam.DecodeBundle(raw)
	if err != nil {
		t.Fatal(err)
	}

	// Target phase without the binary on site: the bundle alone suffices.
	cfg := testConfig("target", "")
	cfg.BundlePath = "/home/user/cg.feambundle"
	pred, _, err := feam.RunTargetPhase(cfg, india, shipped, experimentRunner())
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("not ready: %v", pred.Reasons)
	}
	if len(pred.ResolvedLibs) == 0 {
		t.Error("expected resolution from the shipped bundle")
	}
}

func TestEncodeBundleValidation(t *testing.T) {
	if _, err := feam.EncodeBundle(nil); err == nil {
		t.Error("nil bundle accepted")
	}
	if _, err := feam.EncodeBundle(&feam.Bundle{}); err == nil {
		t.Error("empty bundle accepted")
	}
}
