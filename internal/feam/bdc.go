package feam

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/ldso"
	"feam/internal/libver"
	"feam/internal/mpistack"
	"feam/internal/sitemodel"
)

// BinaryDescription is the Binary Description Component's output — the
// information Figure 3 lists.
type BinaryDescription struct {
	// Name is the binary's identifier (file name or supplied label).
	Name string
	// ContentHash is the hex SHA-256 of the described image. It keys the
	// engine's description cache and makes derived staging directories
	// collision-free.
	ContentHash string
	// Format is the objdump-style file format ("elf64-x86-64").
	Format string
	ISA    elfimg.Machine
	Bits   int
	Type   elfimg.FileType

	// Soname and LibVersion are set when the binary is itself a shared
	// library (the recursive resolution path).
	Soname     string
	LibVersion libver.Version

	// Needed lists the DT_NEEDED dependencies in link order.
	Needed []string
	// RequiredGlibc is the highest GLIBC_* version the binary references —
	// the application's "required C library version" (§III.C).
	RequiredGlibc libver.Version
	// VerNeeds preserves the full version-reference table.
	VerNeeds []elfimg.VerNeed

	// MPIImpl is the identified MPI implementation key ("", "openmpi",
	// "mpich2", "mvapich2") per the Table I scheme.
	MPIImpl string

	// BuildComment, BuildOS, and BuildGlibc come from the optional
	// .comment section when present: the compiler/linker provenance and
	// the OS/C library the binary was created with.
	BuildComment string
	BuildOS      string
	BuildGlibc   libver.Version
}

// IsSharedLibrary reports whether the described object is a library.
func (d *BinaryDescription) IsSharedLibrary() bool {
	return d.Type == elfimg.TypeDyn && d.Soname != ""
}

// UsesMPI reports whether an MPI implementation was identified.
func (d *BinaryDescription) UsesMPI() bool { return d.MPIImpl != "" }

// DescribeBytes runs the BDC's description process on a raw binary image
// (the objdump -p / readelf -p .comment equivalent). It is memoized
// through the package-level default engine; identical content described
// under the same name returns a shared description.
func DescribeBytes(data []byte, name string) (*BinaryDescription, error) {
	return DefaultEngine().Describe(context.Background(), data, name)
}

// describeBytes is the uncached description process; hash is the image's
// precomputed content hash.
func describeBytes(data []byte, name, hash string) (*BinaryDescription, error) {
	f, err := elfimg.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w: cannot describe %s: %w", ErrBadBinary, name, err)
	}
	desc := &BinaryDescription{
		Name:          name,
		ContentHash:   hash,
		Format:        f.Format(),
		ISA:           f.Machine,
		Bits:          f.Class.Bits(),
		Type:          f.Type,
		Soname:        f.Soname,
		Needed:        append([]string(nil), f.Needed...),
		VerNeeds:      append([]elfimg.VerNeed(nil), f.VerNeeds...),
		RequiredGlibc: libver.HighestGlibc(f.VersionRefNames()),
	}
	if f.Soname != "" {
		if sn, err := libver.ParseSoname(f.Soname); err == nil {
			desc.LibVersion = sn.Version
		}
	}
	if impl, ok := mpistack.Identify(f.Needed); ok {
		desc.MPIImpl = impl.Key()
	}
	parseComments(desc, f.Comments)
	return desc, nil
}

// DescribeFile describes a binary on a site's filesystem.
func DescribeFile(site *sitemodel.Site, path string) (*BinaryDescription, error) {
	data, err := site.FS().ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: reading %s: %w", ErrBadBinary, path, err)
	}
	return DescribeBytes(data, path)
}

// parseComments extracts build provenance from .comment strings such as
// "GCC: (GNU) 4.1.2" and "built on CentOS 5.6 (glibc 2.5)".
func parseComments(desc *BinaryDescription, comments []string) {
	for _, c := range comments {
		switch {
		case strings.HasPrefix(c, "GCC:") || strings.HasPrefix(c, "Intel(R)") || strings.HasPrefix(c, "PGI"):
			if desc.BuildComment == "" {
				desc.BuildComment = c
			}
		case strings.HasPrefix(c, "built on "):
			rest := strings.TrimPrefix(c, "built on ")
			if i := strings.Index(rest, " (glibc "); i >= 0 {
				desc.BuildOS = rest[:i]
				verStr := strings.TrimSuffix(rest[i+len(" (glibc "):], ")")
				if v, err := libver.ParseVersion(verStr); err == nil {
					desc.BuildGlibc = v
				}
			} else {
				desc.BuildOS = rest
			}
		}
	}
}

// LibraryCopy is one shared library gathered at a guaranteed execution
// environment for use by the resolution model.
type LibraryCopy struct {
	// Name is the DT_NEEDED name the copy satisfies.
	Name string
	// OriginPath is where the copy was found at the source site.
	OriginPath string
	// Data is the library image.
	Data []byte
	// Attrs preserves the file's extended attributes so a staged copy is
	// byte-for-byte (and metadata-for-metadata) identical to the original.
	Attrs map[string]string
	// Desc is the BDC description of the copy (the recursive description
	// process of §V.A).
	Desc *BinaryDescription
}

// GatherResult is the source-phase library collection outcome.
type GatherResult struct {
	Copies []*LibraryCopy
	// NotFound lists dependencies that could not be located even with the
	// fallback searches.
	NotFound []string
	// SearchFallbacks counts dependencies that needed the locate/find
	// fallbacks because the ldd path missed them.
	SearchFallbacks int
}

// GatherLibraries locates and copies every shared library the binary is
// linked against at a guaranteed execution environment, excluding the C
// library and the dynamic loader (§IV: resolution copies everything except
// libc). The primary mechanism is the ldd equivalent (dynamic-loader
// resolution under the site's current environment); libraries the loader
// cannot place are hunted with the locate/find-style filesystem searches.
func GatherLibraries(site *sitemodel.Site, binary []byte, name string) (*GatherResult, error) {
	res := &GatherResult{}
	resolution, err := ldso.ResolveBytes(binary, name, ldso.Options{
		FS:          site.FS(),
		LibraryPath: envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH")),
		DefaultDirs: site.DefaultLibDirs(),
	})
	if err != nil {
		return nil, fmt.Errorf("%w: gathering libraries for %s: %w", ErrBadBinary, name, err)
	}
	located := map[string]string{}
	for _, dep := range resolution.Order {
		located[dep] = resolution.Objects[dep].Path
	}
	// Fallback searches for anything the loader missed.
	for _, m := range resolution.Missing {
		if p, ok := searchLibrary(site, m.Name); ok {
			located[m.Name] = p
			res.SearchFallbacks++
		} else {
			res.NotFound = append(res.NotFound, m.Name)
		}
	}
	names := make([]string, 0, len(located))
	for n := range located {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, dep := range names {
		if libver.IsCLibraryName(dep) || libver.IsDynamicLoaderName(dep) {
			continue
		}
		p := located[dep]
		data, err := site.FS().ReadFile(p)
		if err != nil {
			res.NotFound = append(res.NotFound, dep)
			continue
		}
		desc, err := DescribeBytes(data, dep)
		if err != nil {
			res.NotFound = append(res.NotFound, dep)
			continue
		}
		res.Copies = append(res.Copies, &LibraryCopy{
			Name: dep, OriginPath: p, Data: data,
			Attrs: site.FS().Attrs(p), Desc: desc,
		})
	}
	sort.Strings(res.NotFound)
	return res, nil
}

// searchLibrary applies the BDC's fallback search methods: a locate-style
// whole-filesystem name search, then a find over the common library
// locations and LD_LIBRARY_PATH.
func searchLibrary(site *sitemodel.Site, name string) (string, bool) {
	// locate: exact-name matches anywhere.
	if hits, err := site.FS().Glob("/", name); err == nil && len(hits) > 0 {
		return hits[0], true
	}
	// find: common locations plus the environment's library path.
	dirs := append(site.DefaultLibDirs(), envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH"))...)
	dirs = append(dirs, "/opt")
	for _, dir := range dirs {
		if !site.FS().IsDir(dir) {
			continue
		}
		if hits, err := site.FS().Glob(dir, name); err == nil && len(hits) > 0 {
			return hits[0], true
		}
	}
	return "", false
}
