package feam

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"

	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/libver"
	"feam/internal/obs"
	"feam/internal/sitemodel"
	"feam/internal/vfs"
)

// The sharded survey index.
//
// The EDC's filesystem searches — locate-style scans for the C library and
// MPI shared objects — used to walk the whole site filesystem on every
// uncached survey. Discovery only ever cares about a handful of roots: the
// loader's default library directories, LD_LIBRARY_PATH entries, and the
// installation prefixes under /opt. Each such root is one survey shard: a
// walk of that subtree recording every survey-relevant shared object (with
// its glibc banner/API version and any MPI stack it reveals, parsed at walk
// time), cached in the registry — and, when configured, the store — under
// the subtree's vfs tree stamp. A C-library upgrade bumps only the system
// library directory's stamp, so the next survey re-walks exactly that shard
// and reuses the rest.

// shardLib is one survey-relevant shared object found in a shard walk.
type shardLib struct {
	Path string `json:"path"`
	Name string `json:"name"`
	// Glibc and GlibcSource carry the C-library version determined at walk
	// time — from the library's execution banner ("exec-banner") or its
	// version-definition table ("api") — so a cached shard answers the
	// glibc question without touching the filesystem.
	Glibc       string `json:"glibc,omitempty"`
	GlibcSource string `json:"glibc_source,omitempty"`
}

// shardRecord is the cached result of walking one shard root.
type shardRecord struct {
	Root  string     `json:"root"`
	Stamp uint64     `json:"stamp"`
	Libs  []shardLib `json:"libs,omitempty"`
	// Stacks are the MPI installations whose prefix lies under this root,
	// parsed from the path naming scheme and the wrapper banner (both of
	// which live under the same prefix, so the stamp covers them).
	Stacks []StackInfo `json:"stacks,omitempty"`
}

// surveyRelevant mirrors the EDC's search patterns: the C library by exact
// name, MPI implementation libraries by prefix.
func surveyRelevant(name string) bool {
	return name == "libc.so.6" ||
		strings.HasPrefix(name, "libmpi.so") ||
		strings.HasPrefix(name, "libmpich.so")
}

// shardRoots returns the sorted discovery roots for a site: default
// library directories, LD_LIBRARY_PATH entries, and each installation
// prefix under /opt. Every root is one independently cached shard.
func shardRoots(site *sitemodel.Site) []string {
	seen := map[string]bool{}
	var roots []string
	add := func(dir string) {
		if dir == "" || dir == "/" || seen[dir] || !site.FS().IsDir(dir) {
			return
		}
		seen[dir] = true
		roots = append(roots, dir)
	}
	for _, d := range site.DefaultLibDirs() {
		add(d)
	}
	for _, d := range envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH")) {
		add(d)
	}
	if entries, err := site.FS().ReadDir("/opt"); err == nil {
		for _, ent := range entries {
			add("/opt/" + ent.Name)
		}
	}
	sort.Strings(roots)
	return roots
}

// underRoot reports whether p lies in the subtree rooted at root.
func underRoot(root, p string) bool {
	return p == root || strings.HasPrefix(p, root+"/")
}

// rootsShardKey is the registry key for the cached shard-root list; like
// sysShardRoot, the NUL prefix keeps it disjoint from real roots.
const rootsShardKey = "\x00roots"

// shardRootsCached caches the root list per site. Roots depend only on the
// environment (LD_LIBRARY_PATH), directory layout, and ld.so.conf content
// — never on extended attributes — so the cache keys on the environment
// fingerprint mixed with the filesystem's content generation and survives
// attribute churn (banner updates during a C-library rollout).
func (e *Engine) shardRootsCached(site *sitemodel.Site) []string {
	stamp := site.EnvFingerprint() ^ bits.RotateLeft64(site.FS().ContentGeneration(), 32)
	if v, ok := e.sites.LookupShard(site, rootsShardKey, stamp); ok {
		return v.([]string)
	}
	roots := shardRoots(site)
	e.sites.StoreShard(site, rootsShardKey, stamp, roots)
	return roots
}

// walkShard traverses one shard root with Walk and finishes the record.
// It is the fallback for shards whose tree stamp was served from the memo
// (so no stamp traversal ran) but whose record was in neither the registry
// nor the store — a fresh engine over a warmed filesystem.
func walkShard(site *sitemodel.Site, root string, stamp uint64, parser *elfimg.Parser) (*shardRecord, error) {
	var libs []shardLib
	err := site.FS().Walk(root, func(p string, info vfs.FileInfo) error {
		if info.Kind == vfs.KindDir || !surveyRelevant(info.Name) {
			return nil
		}
		libs = append(libs, shardLib{Path: p, Name: info.Name})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return finishShardRecord(site, root, stamp, libs, parser), nil
}

// finishShardRecord turns the survey-relevant entries found under a root
// into a complete shard record: C-library images are resolved to a version
// in place (banner first, then the version-definition table through the
// zero-copy View on the caller's reusable parser), and MPI installation
// prefixes under the root are parsed into stack records — so the merge
// phase of a survey never touches the filesystem for cached shards.
func finishShardRecord(site *sitemodel.Site, root string, stamp uint64, libs []shardLib, parser *elfimg.Parser) *shardRecord {
	rec := &shardRecord{Root: root, Stamp: stamp, Libs: libs}
	for i := range rec.Libs {
		if rec.Libs[i].Name == "libc.so.6" {
			recordGlibc(site, rec.Libs[i].Path, &rec.Libs[i], parser)
		}
	}
	// MPI libraries under /opt reveal installation prefixes via the path
	// naming scheme; only prefixes inside this root belong to this shard
	// (the /opt/<key> shard covers a nested LD_LIBRARY_PATH root's libs).
	var prefixes map[string]bool
	for _, lib := range rec.Libs {
		if lib.Name == "libc.so.6" || !strings.HasPrefix(lib.Path, "/opt/") {
			continue
		}
		if i := strings.Index(lib.Path, "/lib/"); i > 0 {
			if prefix := lib.Path[:i]; underRoot(root, prefix) {
				if prefixes == nil {
					prefixes = map[string]bool{}
				}
				prefixes[prefix] = true
			}
		}
	}
	if len(prefixes) == 0 {
		return rec
	}
	keys := make([]string, 0, len(prefixes))
	for p := range prefixes {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, prefix := range keys {
		base := prefix[strings.LastIndexByte(prefix, '/')+1:]
		if info, ok := stackFromKey(site, base, "path-search"); ok {
			info.Prefix = prefix
			rec.Stacks = append(rec.Stacks, info)
		}
	}
	return rec
}

// recordGlibc resolves one C-library image to a version the way the EDC
// does: execute-and-parse the banner, fall back to the API's version
// definitions. An unresolvable library records an empty source.
func recordGlibc(site *sitemodel.Site, p string, lib *shardLib, parser *elfimg.Parser) {
	if banner, ok := site.FS().Attr(p, sitemodel.AttrExecOutput); ok {
		if v, ok := parseGlibcBanner(banner); ok {
			lib.Glibc, lib.GlibcSource = v.String(), "exec-banner"
			return
		}
	}
	if data, err := site.FS().ReadFileShared(p); err == nil {
		if v, err := parser.Parse(data); err == nil {
			if s := highestGlibcFromView(v); s != "" {
				lib.Glibc, lib.GlibcSource = s, "api"
			}
		}
	}
}

// highestGlibcFromView scans a View's version definitions for the highest
// GLIBC_* release without materializing the image.
func highestGlibcFromView(v *elfimg.View) string {
	var best libver.Version
	v.VerDefs(func(ver []byte) bool {
		s := string(ver)
		if !strings.HasPrefix(s, "GLIBC_") {
			return true
		}
		if parsed, err := libver.ParseVersion(strings.TrimPrefix(s, "GLIBC_")); err == nil {
			if best.IsZero() || parsed.Compare(best) > 0 {
				best = parsed
			}
		}
		return true
	})
	if best.IsZero() {
		return ""
	}
	return best.String()
}

// shardStoreKey derives the persistent-store key for one shard: the site
// name plus the fnv hash of the root path.
func shardStoreKey(site *sitemodel.Site, root string) string {
	h := fnv.New64a()
	io.WriteString(h, root)
	return site.Name + "/" + strconv.FormatUint(h.Sum64(), 16)
}

// loadShardRecord rehydrates one shard record from the store when it
// matches the root's current tree stamp.
func (e *Engine) loadShardRecord(site *sitemodel.Site, root string, stamp uint64) (*shardRecord, bool) {
	if e.store == nil {
		return nil, false
	}
	payload, ok, _ := e.store.Get(KindShard, shardStoreKey(site, root))
	if !ok {
		return nil, false
	}
	var rec shardRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Root != root || rec.Stamp != stamp {
		return nil, false
	}
	return &rec, true
}

// persistShardRecord writes one shard record (best-effort, like all
// survey persistence).
func (e *Engine) persistShardRecord(site *sitemodel.Site, rec *shardRecord) {
	if e.store == nil {
		return
	}
	if payload, err := json.Marshal(rec); err == nil {
		_ = e.store.Put(KindShard, shardStoreKey(site, rec.Root), payload)
	}
}

// surveyShards resolves every shard for a site. The serial phase stamps
// each root — a stamp recompute doubles as the shard traversal via
// TreeStampVisit, so a mutated shard is walked exactly once — and consults
// the registry and store. Shards that still need work (version parsing for
// freshly traversed shards, a full walk for memo-hit stamps with no cached
// record) fan out across a bounded worker pool, each worker reusing one
// zero-copy ELF parser. Each shard rebuild is traced as an OpShardWalk
// span. Records come back in root order; nil entries mark shards that were
// unreadable (vanished mid-survey or failing under fault injection), and
// discovery proceeds without them — matching the old glob searches that
// ignored per-directory errors.
func (e *Engine) surveyShards(ctx context.Context, site *sitemodel.Site) ([]*shardRecord, error) {
	roots := e.shardRootsCached(site)
	recs := make([]*shardRecord, len(roots))
	stamps := make([]uint64, len(roots))
	libs := make([][]shardLib, len(roots))
	traversed := make([]bool, len(roots))
	var pending []int
	for i, root := range roots {
		var collected []shardLib
		stamp, visited, err := site.FS().TreeStampVisit(root,
			func(dir, name string, info vfs.FileInfo) {
				if info.Kind == vfs.KindDir || !surveyRelevant(name) {
					return
				}
				collected = append(collected, shardLib{Path: dir + "/" + name, Name: name})
			})
		if err != nil {
			continue
		}
		stamps[i] = stamp
		if v, ok := e.sites.LookupShard(site, root, stamp); ok {
			recs[i] = v.(*shardRecord)
			continue
		}
		if rec, ok := e.loadShardRecord(site, root, stamp); ok {
			e.sites.StoreShard(site, root, stamp, rec)
			recs[i] = rec
			continue
		}
		libs[i], traversed[i] = collected, visited
		pending = append(pending, i)
	}
	if len(pending) == 0 || ctx.Err() != nil {
		return recs, ctx.Err()
	}
	parent := obs.SpanFromContext(ctx)
	buildOne := func(i int, parser *elfimg.Parser) {
		sp := e.tracer.Start(obs.OpShardWalk,
			obs.WithParent(parent), obs.WithSite(site.Name))
		sp.SetAttr(obs.AttrDir, roots[i])
		var rec *shardRecord
		var err error
		if traversed[i] {
			rec = finishShardRecord(site, roots[i], stamps[i], libs[i], parser)
		} else {
			rec, err = walkShard(site, roots[i], stamps[i], parser)
		}
		sp.End(err)
		if err != nil {
			return
		}
		recs[i] = rec
		e.sites.StoreShard(site, roots[i], stamps[i], rec)
		e.persistShardRecord(site, rec)
	}
	workers := e.workers
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		var parser elfimg.Parser
		for _, i := range pending {
			if ctx.Err() != nil {
				break
			}
			buildOne(i, &parser)
		}
		return recs, ctx.Err()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var parser elfimg.Parser
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				buildOne(i, &parser)
			}
		}()
	}
	for _, i := range pending {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return recs, ctx.Err()
}

// findShardLib returns the lexicographically first record of a library
// name across all shards (the order the old whole-filesystem locate search
// produced within these roots).
func findShardLib(shards []*shardRecord, name string) (shardLib, bool) {
	var best shardLib
	found := false
	for _, rec := range shards {
		if rec == nil {
			continue
		}
		for _, lib := range rec.Libs {
			if lib.Name != name {
				continue
			}
			if !found || lib.Path < best.Path {
				best, found = lib, true
			}
		}
	}
	return best, found
}

// mpiccShardKey is the registry key for the cached PATH wrapper scan.
const mpiccShardKey = "\x00mpicc"

// mpiccDirsCached returns the PATH directories containing an mpicc
// wrapper, in PATH order, cached like the root list: wrapper existence
// depends on PATH and the namespace, never on attributes.
func (e *Engine) mpiccDirsCached(site *sitemodel.Site) []string {
	stamp := site.EnvFingerprint() ^ bits.RotateLeft64(site.FS().ContentGeneration(), 32)
	if v, ok := e.sites.LookupShard(site, mpiccShardKey, stamp); ok {
		return v.([]string)
	}
	var dirs []string
	for _, dir := range envmgmt.SplitPathVar(site.Getenv("PATH")) {
		if site.FS().Exists(dir + "/mpicc") {
			dirs = append(dirs, dir)
		}
	}
	e.sites.StoreShard(site, mpiccShardKey, stamp, dirs)
	return dirs
}

// sysShardRoot is the registry key for the cached system survey; the NUL
// prefix keeps it disjoint from real filesystem roots.
const sysShardRoot = "\x00system"

// sysRecord caches the parsed system surface (uname, /proc/version,
// /etc/*release) keyed by the tree stamps of /proc and /etc.
type sysRecord struct {
	UnameProcessor string
	ISA            elfimg.Machine
	Bits           int
	OSType         string
	OSVersion      string
	Distro         string
}

// discoverSystemCached is discoverSystem behind the shard cache: the
// parsed system surface is reused until /proc or /etc changes. Sites whose
// stamps cannot be read (fault injection, outages) take the live path so
// failures surface exactly as they did before.
func (e *Engine) discoverSystemCached(site *sitemodel.Site, env *EnvironmentDescription) error {
	ps, perr := site.FS().TreeStamp("/proc")
	es, eerr := site.FS().TreeStamp("/etc")
	if perr != nil || eerr != nil {
		return discoverSystem(site, env)
	}
	stamp := ps ^ bits.RotateLeft64(es, 32)
	if v, ok := e.sites.LookupShard(site, sysShardRoot, stamp); ok {
		rec := v.(*sysRecord)
		env.UnameProcessor, env.ISA, env.Bits = rec.UnameProcessor, rec.ISA, rec.Bits
		env.OSType, env.OSVersion, env.Distro = rec.OSType, rec.OSVersion, rec.Distro
		return nil
	}
	if err := discoverSystem(site, env); err != nil {
		return err
	}
	e.sites.StoreShard(site, sysShardRoot, stamp, &sysRecord{
		UnameProcessor: env.UnameProcessor, ISA: env.ISA, Bits: env.Bits,
		OSType: env.OSType, OSVersion: env.OSVersion, Distro: env.Distro,
	})
	return nil
}
