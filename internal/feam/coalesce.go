package feam

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Coalescer deduplicates concurrent identical predictions over one
// engine: when K callers ask for the same (binary, site, options) at the
// same time, one leader takes the site lock and runs the evaluation while
// the other K-1 wait for its result — singleflight for the Target
// Evaluation Component. A serving layer fronted by many clients asking
// "is my binary ready for site X?" would otherwise serialize K full
// evaluations behind the site lock, each one re-probing stacks the
// previous caller just probed.
//
// The returned *Prediction is shared between the leader and its
// followers; callers must treat it as immutable.
type Coalescer struct {
	eng *Engine

	mu      sync.Mutex
	flights map[flightKey]*flight

	leads     atomic.Uint64
	coalesced atomic.Uint64
}

// flightKey identifies an evaluation for deduplication purposes: the
// binary's content hash, the target site, and a digest of the options
// that steer the outcome. The site's environment fingerprint participates
// implicitly — the engine's survey cache is fingerprint-keyed, so a
// changed site invalidates the cached survey, not the coalescing.
type flightKey struct {
	binHash string
	site    string
	opts    uint64
}

// flight is one in-progress evaluation. done is closed once pred/err are
// set; they are immutable afterwards.
type flight struct {
	done chan struct{}
	pred *Prediction
	err  error
}

// NewCoalescer wraps an engine with in-flight request deduplication.
func NewCoalescer(e *Engine) *Coalescer {
	return &Coalescer{eng: e, flights: map[flightKey]*flight{}}
}

// CoalescerStats reports deduplication effectiveness.
type CoalescerStats struct {
	// Leads counts evaluations actually run (flight leaders).
	Leads uint64
	// Coalesced counts requests that attached to an in-flight evaluation
	// instead of running their own.
	Coalesced uint64
}

// Stats returns cumulative coalescing counters.
func (c *Coalescer) Stats() CoalescerStats {
	return CoalescerStats{Leads: c.leads.Load(), Coalesced: c.coalesced.Load()}
}

// HitRate returns the fraction of requests served by an already-running
// evaluation (0 when no requests have been seen).
func (s CoalescerStats) HitRate() float64 {
	total := s.Leads + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Coalesced) / float64(total)
}

// Predict runs one evaluation, deduplicating against identical in-flight
// requests. The leader takes the engine's per-site lock (callers must NOT
// hold it) and evaluates; followers wait for the leader, honoring their
// own ctx. coalesced reports whether this call rode an existing flight.
//
// A follower whose leader was cancelled retries as its own flight rather
// than inheriting the cancellation — the leader's ctx is not the
// follower's.
func (c *Coalescer) Predict(ctx context.Context, req EvalRequest) (pred *Prediction, coalesced bool, err error) {
	key, ok := c.keyOf(req)
	if !ok {
		// No binary identity to coalesce on; let Predict produce its
		// usual diagnostic.
		pred, err = c.lead(ctx, req)
		return pred, false, err
	}
	for {
		c.mu.Lock()
		if f := c.flights[key]; f != nil {
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-ctx.Done():
				return nil, true, fmt.Errorf("%w: awaiting coalesced evaluation: %w", ErrProbeFailed, ctx.Err())
			case <-f.done:
			}
			if f.err != nil && errors.Is(f.err, context.Canceled) && ctx.Err() == nil {
				// The leader was cancelled but this caller was not:
				// its request is still live, so run it.
				continue
			}
			return f.pred, true, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		f.pred, f.err = c.lead(ctx, req)
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return f.pred, false, f.err
	}
}

// lead runs one evaluation under the site lock — the same discipline as
// assessSite: lock, survey through the memoized EDC, evaluate.
func (c *Coalescer) lead(ctx context.Context, req EvalRequest) (*Prediction, error) {
	c.leads.Add(1)
	if req.Site == nil {
		return nil, fmt.Errorf("%w: request names no site", ErrNoEnvironment)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: evaluation not started: %w", ErrProbeFailed, err)
	}
	lock := c.eng.SiteLock(req.Site.Name)
	lock.Lock()
	defer lock.Unlock()
	return c.eng.Predict(ctx, req)
}

// keyOf derives the deduplication key. Requests without any binary
// identity (no description, bytes, or bundle) are not coalescable.
func (c *Coalescer) keyOf(req EvalRequest) (flightKey, bool) {
	if req.Site == nil {
		return flightKey{}, false
	}
	var binHash string
	switch {
	case req.Desc != nil && req.Desc.ContentHash != "":
		binHash = req.Desc.ContentHash
	case req.Binary != nil:
		binHash = contentHash(req.Binary)
	case req.Options.Bundle != nil && req.Options.Bundle.App != nil:
		binHash = req.Options.Bundle.App.ContentHash
	default:
		return flightKey{}, false
	}
	return flightKey{binHash: binHash, site: req.Site.Name, opts: optionsDigest(req.Options)}, true
}

// optionsDigest fingerprints the evaluation options that change the
// outcome. Runner and Evaluators identities are deliberately excluded: a
// server hands every request the same ones, and function values have no
// stable identity to hash.
func optionsDigest(o EvalOptions) uint64 {
	h := fnv.New64a()
	bundleHash := ""
	if o.Bundle != nil && o.Bundle.App != nil {
		bundleHash = o.Bundle.App.ContentHash
	}
	fmt.Fprintf(h, "resolve=%t shallow=%t stage=%s bundle=%s probe=%t",
		o.Resolve, o.ShallowResolution, o.StageDir, bundleHash, o.Runner != nil)
	return h.Sum64()
}
