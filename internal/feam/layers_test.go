package feam_test

import (
	"context"
	"sync"
	"testing"

	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/sitemodel"
	"feam/internal/store"
	"feam/internal/vfs"
)

// TestTwoEnginesSharedRegistry: the registry is the engine's only mutable
// state, so two engines constructed over one registry must produce
// identical predictions while ranking the same fleet concurrently (the
// issue's shared-state acceptance check; run under -race by make race).
func TestTwoEnginesSharedRegistry(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.shared")
	if err != nil {
		t.Fatal(err)
	}
	sites := []*sitemodel.Site{tb.ByName["ranger"], tb.ByName["india"], tb.ByName["blacklight"], tb.ByName["forge"]}

	shared := registry.New()
	engines := []*feam.Engine{
		feam.New(feam.WithRegistry(shared)),
		feam.New(feam.WithRegistry(shared)),
	}
	results := make([][]feam.SiteAssessment, len(engines))
	var wg sync.WaitGroup
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng *feam.Engine) {
			defer wg.Done()
			results[i] = eng.RankSitesParallel(context.Background(), desc, art.Bytes, sites,
				feam.EvalOptions{Runner: experimentRunner()}, len(sites))
		}(i, eng)
	}
	wg.Wait()

	a, b := results[0], results[1]
	if len(a) != len(sites) || len(b) != len(sites) {
		t.Fatalf("ranked %d and %d sites, want %d", len(a), len(b), len(sites))
	}
	for i := range a {
		if a[i].Site != b[i].Site {
			t.Fatalf("rank %d: engine A ordered %s, engine B ordered %s", i, a[i].Site, b[i].Site)
		}
		pa, pb := a[i].Prediction, b[i].Prediction
		if (pa == nil) != (pb == nil) {
			t.Fatalf("%s: one engine produced no prediction", a[i].Site)
		}
		if pa == nil {
			continue
		}
		if pa.Ready != pb.Ready {
			t.Errorf("%s: Ready diverges (%v vs %v)", a[i].Site, pa.Ready, pb.Ready)
		}
		for _, d := range feam.Determinants() {
			if pa.Determinants[d].Outcome != pb.Determinants[d].Outcome {
				t.Errorf("%s/%s: outcome diverges (%v vs %v)", a[i].Site, d,
					pa.Determinants[d].Outcome, pb.Determinants[d].Outcome)
			}
		}
	}
	// Both engines hand out the same per-site lock from the shared layer.
	if engines[0].SiteLock("ranger") != engines[1].SiteLock("ranger") {
		t.Fatal("engines sharing a registry must share site locks")
	}
}

// TestStoreRehydration is the issue's restart acceptance test: a process
// that surveyed and described through a store is killed; a fresh engine
// (new registry — no warm memory) over a reopened store must answer the
// same prediction with ZERO discover spans, because the survey rehydrates
// from disk instead of re-running.
func TestStoreRehydration(t *testing.T) {
	ctx := context.Background()
	stateFS := vfs.New()
	st1, err := store.Open(stateFS, "/state")
	if err != nil {
		t.Fatal(err)
	}
	site := minimalSite(t)
	img := plainBinary()

	eng1 := feam.New(feam.WithStore(st1))
	pred1, err := eng1.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.rehydrate", Site: site})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := eng1.Describe(ctx, img, "app.rehydrate")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng1.SaveBundle(&feam.Bundle{App: desc, AppBytes: img, SourceSite: site.Name}); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the store over the same filesystem; fresh registry,
	// fresh engine, no shared in-memory state with eng1.
	st2, err := store.Open(stateFS, "/state")
	if err != nil {
		t.Fatal(err)
	}
	eng2 := feam.New(feam.WithStore(st2), feam.WithRegistry(registry.New()))
	pred2, err := eng2.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.rehydrate", Site: site})
	if err != nil {
		t.Fatal(err)
	}
	if pred1.Ready != pred2.Ready {
		t.Fatalf("restarted engine predicts Ready=%v, original predicted %v", pred2.Ready, pred1.Ready)
	}
	for _, sp := range eng2.Tracer().Snapshot() {
		if sp.Op == obs.OpDiscover {
			t.Fatalf("rehydrated engine ran a survey: discover span at %s", sp.Site)
		}
	}
	if st2.Stats().Loads == 0 {
		t.Fatal("restarted engine never read the store")
	}
	// The persisted bundle and fleet inventory also survive the restart.
	if _, ok, err := eng2.LoadBundle(desc.ContentHash); !ok || err != nil {
		t.Fatalf("LoadBundle after restart = %v, %v", ok, err)
	}
	names, err := eng2.StoredSites()
	if err != nil || len(names) != 1 || names[0] != site.Name {
		t.Fatalf("StoredSites after restart = %v, %v", names, err)
	}
}

// TestStaleSurveyRecordReSurveys: rehydration is fingerprint-gated — after
// the site mutates, the persisted survey no longer matches and a fresh
// engine must fall back to a real survey rather than serve stale state.
func TestStaleSurveyRecordReSurveys(t *testing.T) {
	ctx := context.Background()
	stateFS := vfs.New()
	st1, err := store.Open(stateFS, "/state")
	if err != nil {
		t.Fatal(err)
	}
	site := minimalSite(t)
	img := plainBinary()
	eng1 := feam.New(feam.WithStore(st1))
	if _, err := eng1.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.stale", Site: site}); err != nil {
		t.Fatal(err)
	}
	// Mutate the site: its vfs generation (part of the fingerprint) bumps.
	if err := site.FS().WriteFile("/tmp/new-module", []byte("x")); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(stateFS, "/state")
	if err != nil {
		t.Fatal(err)
	}
	eng2 := feam.New(feam.WithStore(st2), feam.WithRegistry(registry.New()))
	if _, err := eng2.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.stale", Site: site}); err != nil {
		t.Fatal(err)
	}
	var discovers int
	for _, sp := range eng2.Tracer().Snapshot() {
		if sp.Op == obs.OpDiscover {
			discovers++
		}
	}
	if discovers == 0 {
		t.Fatal("stale persisted survey must force a real re-survey")
	}
}

// TestCorruptSurveyRecordReSurveys: a damaged record on disk reads as a
// miss — the restarted engine re-surveys cleanly and repairs the record
// with the fresh result.
func TestCorruptSurveyRecordReSurveys(t *testing.T) {
	ctx := context.Background()
	stateFS := vfs.New()
	st1, err := store.Open(stateFS, "/state")
	if err != nil {
		t.Fatal(err)
	}
	site := minimalSite(t)
	img := plainBinary()
	eng1 := feam.New(feam.WithStore(st1))
	if _, err := eng1.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.corrupt", Site: site}); err != nil {
		t.Fatal(err)
	}
	recs, err := stateFS.Glob("/state/"+feam.KindSurvey, "*.rec")
	if err != nil || len(recs) != 1 {
		t.Fatalf("survey records = %v, %v", recs, err)
	}
	if err := stateFS.WriteFile(recs[0], []byte("feamstore garbage that is not a record")); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(stateFS, "/state")
	if err != nil {
		t.Fatal(err)
	}
	eng2 := feam.New(feam.WithStore(st2), feam.WithRegistry(registry.New()))
	pred, err := eng2.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.corrupt", Site: site})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("prediction after corrupt record = %+v", pred)
	}
	if st2.Stats().Corrupt == 0 {
		t.Fatal("corrupt record read was not counted")
	}
	var discovers int
	for _, sp := range eng2.Tracer().Snapshot() {
		if sp.Op == obs.OpDiscover {
			discovers++
		}
	}
	if discovers == 0 {
		t.Fatal("corrupt record must force a real re-survey")
	}
	// The re-survey repaired the record: a third engine rehydrates again.
	st3, err := store.Open(stateFS, "/state")
	if err != nil {
		t.Fatal(err)
	}
	eng3 := feam.New(feam.WithStore(st3), feam.WithRegistry(registry.New()))
	if _, err := eng3.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.corrupt", Site: site}); err != nil {
		t.Fatal(err)
	}
	for _, sp := range eng3.Tracer().Snapshot() {
		if sp.Op == obs.OpDiscover {
			t.Fatal("repaired record should rehydrate without a survey")
		}
	}
}

// TestEngineHoldsNoState: the registry sees all cache traffic — an engine
// built over an empty registry has no private memory of prior work.
func TestEngineHoldsNoState(t *testing.T) {
	ctx := context.Background()
	site := minimalSite(t)
	img := plainBinary()

	shared := registry.New()
	eng := feam.New(feam.WithRegistry(shared))
	if _, err := eng.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.stateless", Site: site}); err != nil {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.Surveys == 0 || st.Descriptions == 0 || st.Sites == 0 {
		t.Fatalf("registry stats %+v: engine kept state privately", st)
	}
	// Swapping the registry out from under an identically-built engine
	// forgets everything: the next predict re-surveys.
	fresh := feam.New(feam.WithRegistry(registry.New()))
	if _, err := fresh.Predict(ctx, feam.EvalRequest{Binary: img, BinaryName: "app.stateless", Site: site}); err != nil {
		t.Fatal(err)
	}
	var discovers int
	for _, sp := range fresh.Tracer().Snapshot() {
		if sp.Op == obs.OpDiscover {
			discovers++
		}
	}
	if discovers != 1 {
		t.Fatalf("engine with a fresh registry ran %d surveys, want 1", discovers)
	}
}
