// Package feam implements the paper's contribution: FEAM, a Framework for
// Efficient Application Migration. It predicts whether MPI application
// binaries are ready to execute at target computing sites and raises the
// success rate by resolving missing shared libraries with copies gathered at
// a guaranteed execution environment.
//
// The package mirrors the paper's architecture exactly (Figure 2):
//
//   - BDC, the Binary Description Component (bdc.go), gathers everything
//     Figure 3 lists about an application binary and its dependencies.
//   - EDC, the Environment Discovery Component (edc.go), gathers everything
//     Figure 4 lists about a computing site.
//   - TEC, the Target Evaluation Component (tec.go), matches the two and
//     decides execution readiness per the four-determinant prediction model
//     (Figure 1), running MPI "hello world" probes to confirm stack
//     usability, and applying the resolution model to missing shared
//     libraries.
//
// FEAM runs in two phases: an optional source phase at a guaranteed
// execution environment (produces a portable Bundle) and a required target
// phase at each target site (produces a Prediction and a site configuration
// script). Predictions made with only the target phase are "basic";
// adding the source phase enables the extended compatibility tests and the
// resolution model.
package feam

import (
	"context"
	"fmt"

	"feam/internal/sitemodel"
	"feam/internal/toolchain"
)

// Determinant is one of the prediction model's four questions (Figure 1).
type Determinant int

const (
	// DetISA: was the application compiled for a compatible ISA?
	DetISA Determinant = iota
	// DetCLibrary: are the application's C library requirements met?
	DetCLibrary
	// DetMPIStack: is there a compatible MPI stack functioning?
	DetMPIStack
	// DetSharedLibs: are all required shared library versions available?
	DetSharedLibs
	// DetABI: does every undefined dynamic symbol of the binary resolve
	// against the site's exported-symbol index? This fifth determinant is
	// not part of the paper's Figure 1 ladder; it is installed by
	// WithABICheck and stays "not evaluated" under the default ladder.
	DetABI
)

func (d Determinant) String() string {
	switch d {
	case DetISA:
		return "ISA compatibility"
	case DetCLibrary:
		return "C library compatibility"
	case DetMPIStack:
		return "MPI stack compatibility"
	case DetSharedLibs:
		return "shared library compatibility"
	case DetABI:
		return "ABI symbol resolution"
	default:
		return fmt.Sprintf("Determinant(%d)", int(d))
	}
}

// Determinants lists the model's questions in evaluation order: ISA and C
// library first (cheap gates), then MPI stack and shared libraries (§V.C),
// and finally the symbol-level ABI check (evaluated only when the engine
// was built WithABICheck).
func Determinants() []Determinant {
	return []Determinant{DetISA, DetCLibrary, DetMPIStack, DetSharedLibs, DetABI}
}

// Outcome is a determinant's verdict.
type Outcome int

const (
	// Unknown: not evaluated (an earlier gate failed).
	Unknown Outcome = iota
	// Pass: compatible as-is.
	Pass
	// Fail: incompatible.
	Fail
	// Resolved: incompatible as-is but fixed by the resolution model.
	Resolved
)

func (o Outcome) String() string {
	switch o {
	case Unknown:
		return "not evaluated"
	case Pass:
		return "pass"
	case Fail:
		return "fail"
	case Resolved:
		return "resolved"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// DeterminantResult pairs an outcome with its evidence.
type DeterminantResult struct {
	Outcome Outcome
	Detail  string
}

// ProgramRunner executes a test program at a site with a selected stack
// named by its key. FEAM uses it only for the probe programs the paper's
// TEC runs ("hello world" executions); the production implementation
// submits through the batch system, and the simulation harness backs it
// with the execution simulator. The stack key refers to whatever `module
// load <key>`-style selection means at the site; an empty key runs without
// an MPI stack (serial probes).
type ProgramRunner interface {
	RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (success bool, detail string)
}

// RunnerFunc adapts a function to ProgramRunner.
type RunnerFunc func(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string)

// RunProgram implements ProgramRunner.
func (f RunnerFunc) RunProgram(ctx context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extraLibDirs []string) (bool, string) {
	return f(ctx, art, site, stackKey, extraLibDirs)
}
