package feam

import (
	"feam/internal/fault"
	"feam/internal/obs"
	"feam/internal/registry"
)

// Option configures an Engine at construction time. Pass options to New;
// the zero configuration is the paper's default pipeline (§V.C determinant
// order, host-sized worker pool, default transient-retry policy, a private
// tracer, metrics registry, and site registry, no persistent store).
type Option func(*engineConfig)

type engineConfig struct {
	evaluators []DeterminantEvaluator
	workers    int
	retry      fault.RetryPolicy
	tracer     *obs.Tracer
	metrics    *obs.Registry
	sites      SiteRegistry
	store      Store
	abiCheck   bool
	abiAgree   bool
}

// WithEvaluators sets the determinant registry. The slice is captured
// as-is; pass evaluators in the order they should gate.
func WithEvaluators(evals []DeterminantEvaluator) Option {
	return func(c *engineConfig) { c.evaluators = evals }
}

// WithWorkers sets the default fan-out width for RankSites (minimum 1).
func WithWorkers(n int) Option {
	return func(c *engineConfig) {
		if n < 1 {
			n = 1
		}
		c.workers = n
	}
}

// WithRetryPolicy sets the transient-fault retry policy used around probe
// runs and staging writes. The zero policy disables retries.
func WithRetryPolicy(p fault.RetryPolicy) Option {
	return func(c *engineConfig) { c.retry = p }
}

// WithTracer sets the engine's span tracer. Sharing one tracer across
// engines merges their span streams (ring buffer, sinks, exports). A nil
// tracer is replaced by a private default-capacity tracer.
func WithTracer(t *obs.Tracer) Option {
	return func(c *engineConfig) { c.tracer = t }
}

// WithMetrics sets the metrics registry the engine's span stream feeds.
// Sharing one registry across engines aggregates their latency histograms
// and event counters. A nil registry is replaced by a private one.
func WithMetrics(r *obs.Registry) Option {
	return func(c *engineConfig) { c.metrics = r }
}

// WithRegistry sets the engine's site-state layer: site table, per-site
// locks, and the memoized survey/description caches. Engines sharing one
// SiteRegistry share one coherent fleet — one set of site locks, one set
// of caches — which is what makes running many stateless engines over the
// same sites safe. A nil registry is replaced by a private sharded one
// (internal/registry) wired to the engine's metrics.
func WithRegistry(r SiteRegistry) Option {
	return func(c *engineConfig) { c.sites = r }
}

// WithStore sets the engine's persistence layer. With a store configured
// the engine persists surveys, binary descriptions, bundles, and site
// records as it computes them, and a restarted process rehydrates them
// instead of re-running discovery. Without one the engine is purely
// in-memory.
func WithStore(s Store) Option {
	return func(c *engineConfig) { c.store = s }
}

// WithABICheck installs the extended five-determinant ladder
// (ABIEvaluators): the paper's four rungs with the ABI-standard MPI
// stack class enabled, plus symbol-level ABI resolution as a fifth
// determinant. agreement additionally runs the independent
// soname-closure checker per evaluation and publishes the
// abi_agree/abi_disagree counters. The option overrides WithEvaluators;
// the paper-faithful four-rung ladder stays the default without it.
func WithABICheck(agreement bool) Option {
	return func(c *engineConfig) { c.abiCheck, c.abiAgree = true, agreement }
}

// New returns an engine configured by opts. Every engine carries a tracer,
// a metrics registry, and a site registry (private ones unless injected
// with WithTracer / WithMetrics / WithRegistry): all pipeline operations
// emit spans, a registry sink derives the latency histograms and event
// counters from them, and all engine state lives in the site registry —
// plus the store, when one is configured with WithStore.
func New(opts ...Option) *Engine {
	cfg := engineConfig{
		evaluators: DefaultEvaluators(),
		workers:    defaultWorkers(),
		retry:      fault.DefaultRetryPolicy(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.abiCheck {
		cfg.evaluators = ABIEvaluators(cfg.abiAgree)
	}
	if cfg.tracer == nil {
		cfg.tracer = obs.NewTracer(0)
	}
	if cfg.metrics == nil {
		cfg.metrics = obs.NewRegistry()
	}
	if cfg.sites == nil {
		cfg.sites = registry.New(registry.WithMetrics(cfg.metrics))
	}
	e := &Engine{
		evaluators: cfg.evaluators,
		workers:    cfg.workers,
		retry:      cfg.retry,
		sites:      cfg.sites,
		store:      cfg.store,
		tracer:     cfg.tracer,
		reg:        cfg.metrics,
	}
	e.tracer.AddSink(obs.NewRegistrySink(e.reg))
	return e
}
