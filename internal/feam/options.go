package feam

import (
	"sync"

	"feam/internal/fault"
	"feam/internal/obs"
)

// Option configures an Engine at construction time. Pass options to New;
// the zero configuration is the paper's default pipeline (§V.C determinant
// order, host-sized worker pool, default transient-retry policy, a private
// tracer and metrics registry).
type Option func(*engineConfig)

type engineConfig struct {
	evaluators []DeterminantEvaluator
	workers    int
	retry      fault.RetryPolicy
	tracer     *obs.Tracer
	registry   *obs.Registry
	observers  []Observer
}

// WithEvaluators sets the determinant registry. The slice is captured
// as-is; pass evaluators in the order they should gate.
func WithEvaluators(evals []DeterminantEvaluator) Option {
	return func(c *engineConfig) { c.evaluators = evals }
}

// WithWorkers sets the default fan-out width for RankSites (minimum 1).
func WithWorkers(n int) Option {
	return func(c *engineConfig) {
		if n < 1 {
			n = 1
		}
		c.workers = n
	}
}

// WithRetryPolicy sets the transient-fault retry policy used around probe
// runs and staging writes. The zero policy disables retries.
func WithRetryPolicy(p fault.RetryPolicy) Option {
	return func(c *engineConfig) { c.retry = p }
}

// WithObserver registers a legacy Observer; it is adapted onto the span
// stream, so it sees exactly the events AddObserver delivered before the
// tracing layer existed. May be given multiple times.
func WithObserver(o Observer) Option {
	return func(c *engineConfig) {
		if o != nil {
			c.observers = append(c.observers, o)
		}
	}
}

// WithTracer sets the engine's span tracer. Sharing one tracer across
// engines merges their span streams (ring buffer, sinks, exports). A nil
// tracer is replaced by a private default-capacity tracer.
func WithTracer(t *obs.Tracer) Option {
	return func(c *engineConfig) { c.tracer = t }
}

// WithRegistry sets the metrics registry the engine's span stream feeds.
// Sharing one registry across engines aggregates their latency histograms
// and event counters. A nil registry is replaced by a private one.
func WithRegistry(r *obs.Registry) Option {
	return func(c *engineConfig) { c.registry = r }
}

// New returns an engine configured by opts. Every engine carries a tracer
// and a metrics registry (private ones unless injected with WithTracer /
// WithRegistry): all pipeline operations emit spans, and a registry sink
// derives the latency histograms and event counters from them.
func New(opts ...Option) *Engine {
	cfg := engineConfig{
		evaluators: DefaultEvaluators(),
		workers:    defaultWorkers(),
		retry:      fault.DefaultRetryPolicy(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.tracer == nil {
		cfg.tracer = obs.NewTracer(0)
	}
	if cfg.registry == nil {
		cfg.registry = obs.NewRegistry()
	}
	e := &Engine{
		evaluators: cfg.evaluators,
		workers:    cfg.workers,
		retry:      cfg.retry,
		tracer:     cfg.tracer,
		reg:        cfg.registry,
		bdc:        map[bdcKey]*BinaryDescription{},
		edc:        map[string]*edcEntry{},
		siteLocks:  map[string]*sync.Mutex{},
	}
	e.tracer.AddSink(obs.NewRegistrySink(e.reg))
	for _, o := range cfg.observers {
		e.AddObserver(o)
	}
	return e
}
