package feam_test

import (
	"strings"
	"testing"

	"feam/internal/feam"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

func TestDescribeFile(t *testing.T) {
	tb := sharedTestbed(t)
	india := tb.ByName["india"]
	rec := india.FindStack("openmpi-1.4-gnu")
	art, err := toolchain.Compile(workload.Find("is"), rec, india)
	if err != nil {
		t.Fatal(err)
	}
	if err := india.FS().WriteFile("/home/user/describe-me", art.Bytes); err != nil {
		t.Fatal(err)
	}
	desc, err := feam.DescribeFile(india, "/home/user/describe-me")
	if err != nil {
		t.Fatal(err)
	}
	if desc.Name != "/home/user/describe-me" || desc.MPIImpl != "openmpi" {
		t.Errorf("desc = %+v", desc)
	}
	if _, err := feam.DescribeFile(india, "/no/such/file"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBundleFindLibraryCompatibility(t *testing.T) {
	bundle := &feam.Bundle{
		Libs: []*feam.LibraryCopy{
			{Name: "libmpich.so.1.0", Desc: &feam.BinaryDescription{}},
			{Name: "libgfortran.so.1", Desc: &feam.BinaryDescription{}},
		},
	}
	// Exact hit.
	if lc := bundle.FindLibrary("libmpich.so.1.0"); lc == nil {
		t.Error("exact lookup failed")
	}
	// Soname-major compatibility: a libmpich.so.1 reference is satisfied by
	// the 1.0 copy.
	if lc := bundle.FindLibrary("libmpich.so.1"); lc == nil || lc.Name != "libmpich.so.1.0" {
		t.Errorf("compat lookup = %+v", lc)
	}
	// Different major misses.
	if bundle.FindLibrary("libmpich.so.2") != nil {
		t.Error("major mismatch matched")
	}
	// Non-soname names never match loosely.
	if bundle.FindLibrary("ld-linux-x86-64.so.2") != nil {
		t.Error("loader name matched")
	}
}

func TestBundleSummary(t *testing.T) {
	bundle := makeBundle(t)
	out := bundle.Summary()
	for _, want := range []string{"bundle for", "ranger", "libraries", "requires glibc"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary missing %q:\n%s", want, out)
		}
	}
}

// TestBundleOnlyTargetPhaseSyntheticImage: a target phase with neither the
// binary on site nor AppBytes in the bundle reconstructs a loader probe
// from the description (tec.syntheticImage).
func TestBundleOnlyTargetPhaseSyntheticImage(t *testing.T) {
	tb := sharedTestbed(t)
	bundle := makeBundle(t)
	bundle.AppBytes = nil // strip the binary: description-only mode
	india := tb.ByName["india"]
	cfg := testConfig("target", "")
	cfg.BundlePath = "/home/user/desc-only.feambundle"
	pred, _, err := feam.RunTargetPhase(cfg, india, bundle, experimentRunner())
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic probe reproduces the real binary's missing-library set.
	joined := strings.Join(pred.MissingLibs, ",")
	if len(pred.ResolvedLibs) == 0 && !strings.Contains(joined, "libmpich.so.1.0") {
		t.Errorf("prediction = ready=%v missing=%v resolved=%v",
			pred.Ready, pred.MissingLibs, pred.ResolvedLibs)
	}
	if !pred.Ready {
		t.Errorf("description-only resolution failed: %v", pred.Reasons)
	}
}

func TestRankSitesWithErrorSite(t *testing.T) {
	tb := sharedTestbed(t)
	india := tb.ByName["india"]
	rec := india.FindStack("openmpi-1.4-gnu")
	art, err := toolchain.Compile(workload.Find("is"), rec, india)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := feam.DescribeBytes(art.Bytes, "is.rank-err")
	if err != nil {
		t.Fatal(err)
	}
	// A site whose discovery fails (no uname surface) must rank last, with
	// the error surfaced rather than swallowed.
	broken := minimalSite(t)
	if err := broken.FS().Remove("/proc/sys/kernel/uname"); err != nil {
		t.Fatal(err)
	}
	ranked := feam.RankSites(desc, art.Bytes, []*sitemodel.Site{broken, tb.ByName["fir"]},
		feam.EvalOptions{Runner: experimentRunner()})
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Site != "fir" || ranked[0].Err != nil {
		t.Errorf("first = %+v", ranked[0])
	}
	if ranked[1].Err == nil {
		t.Error("broken site's error lost")
	}
}

func TestStackKeyAndExtraLibDirsOnEmptyPrediction(t *testing.T) {
	p := &feam.Prediction{}
	if p.StackKey() != "" {
		t.Error("StackKey on empty prediction")
	}
	if p.ExtraLibDirs() != nil {
		t.Error("ExtraLibDirs on empty prediction")
	}
}
