package feam_test

import (
	"strings"
	"sync"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/execsim"
	"feam/internal/experiment"
	"feam/internal/feam"
	"feam/internal/libver"
	"feam/internal/sitemodel"
	"feam/internal/testbed"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

var (
	tbOnce sync.Once
	tbVal  *testbed.Testbed
	tbErr  error
)

func sharedTestbed(t *testing.T) *testbed.Testbed {
	t.Helper()
	tbOnce.Do(func() { tbVal, tbErr = testbed.Build() })
	if tbErr != nil {
		t.Fatal(tbErr)
	}
	return tbVal
}

func quietSim() *execsim.Simulator {
	sim := execsim.NewSimulator(42)
	sim.TransientRate = 0
	return sim
}

// experimentRunner is the execsim-backed probe runner used across tests.
func experimentRunner() feam.RunnerFunc { return experiment.NewSimRunner(quietSim()) }

// compileAt builds a code at a site with a named stack, activating the
// stack environment for the compile the way a user would.
func compileAt(t *testing.T, tb *testbed.Testbed, siteName, stackKey, code string) *toolchain.Artifact {
	t.Helper()
	site := tb.ByName[siteName]
	rec := site.FindStack(stackKey)
	if rec == nil {
		t.Fatalf("no stack %s at %s", stackKey, siteName)
	}
	art, err := toolchain.Compile(workload.Find(code), rec, site)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestDescribeBytes(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.binary")
	if err != nil {
		t.Fatal(err)
	}
	if desc.Format != "elf64-x86-64" || desc.Bits != 64 {
		t.Errorf("format = %q bits = %d", desc.Format, desc.Bits)
	}
	if desc.MPIImpl != "openmpi" {
		t.Errorf("MPIImpl = %q", desc.MPIImpl)
	}
	if !desc.RequiredGlibc.Equal(libver.V(2, 3, 4)) {
		t.Errorf("RequiredGlibc = %v", desc.RequiredGlibc)
	}
	if !strings.Contains(desc.BuildComment, "GCC") {
		t.Errorf("BuildComment = %q", desc.BuildComment)
	}
	if !desc.BuildGlibc.Equal(libver.V(2, 5)) {
		t.Errorf("BuildGlibc = %v", desc.BuildGlibc)
	}
	if desc.IsSharedLibrary() || !desc.UsesMPI() {
		t.Error("classification wrong")
	}
	if _, err := feam.DescribeBytes([]byte("not elf"), "x"); err == nil {
		t.Error("junk accepted")
	}
}

func TestDescribeSharedLibrary(t *testing.T) {
	tb := sharedTestbed(t)
	india := tb.ByName["india"]
	data, err := india.FS().ReadFile("/opt/mvapich2-1.7a2-gnu/lib/libmpich.so.1.2")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := feam.DescribeBytes(data, "libmpich.so.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if !desc.IsSharedLibrary() {
		t.Error("library not classified as shared library")
	}
	if desc.Soname != "libmpich.so.1.2" {
		t.Errorf("Soname = %q", desc.Soname)
	}
	if !desc.LibVersion.Equal(libver.V(1, 2)) {
		t.Errorf("LibVersion = %v", desc.LibVersion)
	}
}

func TestGatherLibraries(t *testing.T) {
	tb := sharedTestbed(t)
	india := tb.ByName["india"]
	snap := india.SnapshotEnv()
	defer india.RestoreEnv(snap)
	if err := testbed.ActivateStack(india, "openmpi-1.4-gnu"); err != nil {
		t.Fatal(err)
	}
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "cg")
	res, err := feam.GatherLibraries(india, art.Bytes, "cg")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NotFound) != 0 {
		t.Errorf("NotFound = %v", res.NotFound)
	}
	names := map[string]bool{}
	for _, lc := range res.Copies {
		names[lc.Name] = true
		if len(lc.Data) == 0 {
			t.Errorf("%s copy is empty", lc.Name)
		}
		if lc.Desc == nil {
			t.Errorf("%s copy lacks a description", lc.Name)
		}
	}
	for _, want := range []string{"libmpi.so.0", "libgfortran.so.1", "libm.so.6"} {
		if !names[want] {
			t.Errorf("copies lack %s (have %v)", want, names)
		}
	}
	// The C library and loader are never copied (§IV).
	if names["libc.so.6"] {
		t.Error("libc must not be copied")
	}
}

func TestGatherLibrariesFallbackSearch(t *testing.T) {
	tb := sharedTestbed(t)
	fir := tb.ByName["fir"]
	snap := fir.SnapshotEnv()
	defer fir.RestoreEnv(snap)
	// Do NOT activate the stack: the loader will miss the MPI libraries and
	// the gather must fall back to filesystem searches under /opt.
	art := compileAt(t, tb, "fir", "mpich2-1.3-gnu", "is")
	res, err := feam.GatherLibraries(fir, art.Bytes, "is")
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchFallbacks == 0 {
		t.Error("expected fallback searches")
	}
	found := false
	for _, lc := range res.Copies {
		if lc.Name == "libmpich.so.1.2" {
			found = true
			if !strings.HasPrefix(lc.OriginPath, "/opt/") {
				t.Errorf("libmpich found at %q", lc.OriginPath)
			}
		}
	}
	if !found {
		t.Error("fallback search did not locate libmpich")
	}
}

func TestDiscoverModulesSite(t *testing.T) {
	tb := sharedTestbed(t)
	india := tb.ByName["india"]
	snap := india.SnapshotEnv()
	defer india.RestoreEnv(snap)

	env, err := feam.Discover(india)
	if err != nil {
		t.Fatal(err)
	}
	if env.ISA != elfimg.EMX8664 || env.Bits != 64 {
		t.Errorf("ISA = %v/%d", env.ISA, env.Bits)
	}
	if env.OSType != "Linux" || !strings.Contains(env.Distro, "Red Hat") {
		t.Errorf("OS = %q %q", env.OSType, env.Distro)
	}
	if !env.Glibc.Equal(libver.V(2, 5)) || env.GlibcSource != "exec-banner" {
		t.Errorf("glibc = %v via %q", env.Glibc, env.GlibcSource)
	}
	if env.EnvTool != "modules" {
		t.Errorf("EnvTool = %q", env.EnvTool)
	}
	if len(env.Available) != 6 {
		t.Errorf("Available = %d stacks", len(env.Available))
	}
	if env.Loaded != nil {
		t.Errorf("Loaded = %+v before any module load", env.Loaded)
	}
	// Stack details parsed from keys and wrapper banners.
	var ompIntel *feam.StackInfo
	for i := range env.Available {
		if env.Available[i].Key == "openmpi-1.4-intel" {
			ompIntel = &env.Available[i]
		}
	}
	if ompIntel == nil {
		t.Fatalf("openmpi-1.4-intel not discovered: %+v", env.Available)
	}
	if ompIntel.Impl != "openmpi" || ompIntel.ImplVersion != "1.4" || ompIntel.CompilerFamily != "intel" {
		t.Errorf("stack info = %+v", ompIntel)
	}
	if ompIntel.CompilerVersion != "11.1" {
		t.Errorf("compiler version = %q", ompIntel.CompilerVersion)
	}

	// After loading a module, the loaded stack is reported.
	if err := testbed.ActivateStack(india, "mvapich2-1.7a2-gnu"); err != nil {
		t.Fatal(err)
	}
	env, err = feam.Discover(india)
	if err != nil {
		t.Fatal(err)
	}
	if env.Loaded == nil || env.Loaded.Key != "mvapich2-1.7a2-gnu" {
		t.Errorf("Loaded = %+v", env.Loaded)
	}
}

func TestDiscoverSoftEnvAndPathSearchSites(t *testing.T) {
	tb := sharedTestbed(t)
	bl := tb.ByName["blacklight"]
	env, err := feam.Discover(bl)
	if err != nil {
		t.Fatal(err)
	}
	if env.EnvTool != "softenv" {
		t.Errorf("blacklight tool = %q", env.EnvTool)
	}
	if len(env.Available) != 2 {
		t.Errorf("blacklight stacks = %+v", env.Available)
	}
	if !env.Glibc.Equal(libver.V(2, 11, 1)) {
		t.Errorf("blacklight glibc = %v", env.Glibc)
	}

	fir := tb.ByName["fir"]
	env, err = feam.Discover(fir)
	if err != nil {
		t.Fatal(err)
	}
	if env.EnvTool != "" {
		t.Errorf("fir tool = %q", env.EnvTool)
	}
	if len(env.Available) != 9 {
		t.Errorf("fir stacks = %d: %+v", len(env.Available), env.Available)
	}
	for _, s := range env.Available {
		if s.DiscoveredVia != "path-search" {
			t.Errorf("fir stack %s via %q", s.Key, s.DiscoveredVia)
		}
	}
}

func TestEvaluateReadyAtCompatibleSite(t *testing.T) {
	tb := sharedTestbed(t)
	runner := experiment.NewSimRunner(quietSim())
	// india and fir share glibc, GCC, and MPI versions: a gnu Open MPI
	// binary migrates cleanly.
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.india")
	if err != nil {
		t.Fatal(err)
	}
	fir := tb.ByName["fir"]
	env, err := feam.Discover(fir)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := feam.Evaluate(desc, art.Bytes, env, fir, feam.EvalOptions{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Fatalf("not ready: %v", pred.Reasons)
	}
	if pred.SelectedStack == nil || pred.SelectedStack.CompilerFamily != "gnu" {
		t.Errorf("selected stack = %+v (want the gnu build preferred)", pred.SelectedStack)
	}
	if pred.Determinants[feam.DetISA].Outcome != feam.Pass ||
		pred.Determinants[feam.DetCLibrary].Outcome != feam.Pass ||
		pred.Determinants[feam.DetMPIStack].Outcome != feam.Pass ||
		pred.Determinants[feam.DetSharedLibs].Outcome != feam.Pass {
		t.Errorf("determinants = %+v", pred.Determinants)
	}
	if !strings.Contains(pred.ConfigScript, "mpiexec") {
		t.Errorf("ConfigScript = %q", pred.ConfigScript)
	}
}

func TestEvaluateCLibraryGate(t *testing.T) {
	tb := sharedTestbed(t)
	runner := experiment.NewSimRunner(quietSim())
	// An uncapped code built on forge (glibc 2.12) cannot run on ranger
	// (2.3.4); evaluation stops at the C library determinant.
	art := compileAt(t, tb, "forge", "openmpi-1.4-gnu", "lu")
	desc, err := feam.DescribeBytes(art.Bytes, "lu.forge")
	if err != nil {
		t.Fatal(err)
	}
	ranger := tb.ByName["ranger"]
	env, err := feam.Discover(ranger)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := feam.Evaluate(desc, art.Bytes, env, ranger, feam.EvalOptions{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Ready {
		t.Fatal("predicted ready despite glibc gap")
	}
	if pred.Determinants[feam.DetCLibrary].Outcome != feam.Fail {
		t.Errorf("C library determinant = %+v", pred.Determinants[feam.DetCLibrary])
	}
	// Later determinants were never evaluated (the paper's early exit).
	if pred.Determinants[feam.DetMPIStack].Outcome != feam.Unknown {
		t.Errorf("MPI determinant = %+v", pred.Determinants[feam.DetMPIStack])
	}
}

func TestEvaluateNoMatchingImplementation(t *testing.T) {
	tb := sharedTestbed(t)
	runner := experiment.NewSimRunner(quietSim())
	// An MPICH2 binary cannot run at blacklight (Open MPI only).
	art := compileAt(t, tb, "india", "mpich2-1.4-gnu", "is")
	desc, err := feam.DescribeBytes(art.Bytes, "is.india.mpich2")
	if err != nil {
		t.Fatal(err)
	}
	bl := tb.ByName["blacklight"]
	env, err := feam.Discover(bl)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := feam.Evaluate(desc, art.Bytes, env, bl, feam.EvalOptions{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Ready {
		t.Fatal("predicted ready without a matching MPI implementation")
	}
	if pred.Determinants[feam.DetMPIStack].Outcome != feam.Fail {
		t.Errorf("MPI determinant = %+v", pred.Determinants[feam.DetMPIStack])
	}
}

func TestEvaluateBrokenStackDetected(t *testing.T) {
	tb := sharedTestbed(t)
	runner := experiment.NewSimRunner(quietSim())
	// MVAPICH2 binaries migrating to forge find only the broken
	// mvapich2-1.7rc1-intel; the hello-world probe exposes it.
	art := compileAt(t, tb, "india", "mvapich2-1.7a2-intel", "is")
	desc, err := feam.DescribeBytes(art.Bytes, "is.india.mvapich2")
	if err != nil {
		t.Fatal(err)
	}
	forge := tb.ByName["forge"]
	env, err := feam.Discover(forge)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := feam.Evaluate(desc, art.Bytes, env, forge, feam.EvalOptions{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Ready {
		t.Fatal("predicted ready on a broken stack")
	}
	if !strings.Contains(pred.Determinants[feam.DetMPIStack].Detail, "hello world failed") {
		t.Errorf("MPI determinant detail = %q", pred.Determinants[feam.DetMPIStack].Detail)
	}
}

// TestSourceAndTargetPhasesWithResolution exercises the full two-phase flow
// on the paper's flagship resolution scenario: an MVAPICH2 1.2 binary from
// ranger needs libmpich.so.1.0 at india, which only the bundle can provide.
func TestSourceAndTargetPhasesWithResolution(t *testing.T) {
	tb := sharedTestbed(t)
	sim := quietSim()
	runner := experiment.NewSimRunner(sim)
	ranger := tb.ByName["ranger"]
	india := tb.ByName["india"]

	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	if err := ranger.FS().WriteFile("/home/user/cg.bin", art.Bytes); err != nil {
		t.Fatal(err)
	}

	snap := ranger.SnapshotEnv()
	if err := testbed.ActivateStack(ranger, "mvapich2-1.2-gnu"); err != nil {
		t.Fatal(err)
	}
	srcCfg := testConfig("source", "/home/user/cg.bin")
	bundle, report, err := feam.RunSourcePhase(srcCfg, ranger, runner)
	ranger.RestoreEnv(snap)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total().Minutes() >= 5 {
		t.Errorf("source phase took %v", report.Total())
	}
	if bundle.MPIHello == nil {
		t.Error("bundle lacks the MPI hello world")
	}
	if bundle.FindLibrary("libmpich.so.1.0") == nil {
		t.Errorf("bundle lacks libmpich.so.1.0: %s", bundle.Summary())
	}
	if bundle.SourceStack != "mvapich2-1.2-gnu" {
		t.Errorf("SourceStack = %q", bundle.SourceStack)
	}
	if bundle.Size() <= 0 {
		t.Error("empty bundle")
	}

	// Basic target phase at india: missing library, no resolution.
	if err := india.FS().WriteFile("/home/user/cg.bin", art.Bytes); err != nil {
		t.Fatal(err)
	}
	tgtCfg := testConfig("target", "/home/user/cg.bin")
	basic, _, err := feam.RunTargetPhase(tgtCfg, india, nil, runner)
	if err != nil {
		t.Fatal(err)
	}
	if basic.Ready {
		t.Fatal("basic prediction should fail on the missing MVAPICH2 1.2 library")
	}
	// Both the MVAPICH2 1.2 library and the GCC-3.4 Fortran runtime are
	// absent at india.
	missing := strings.Join(basic.MissingLibs, ",")
	if !strings.Contains(missing, "libmpich.so.1.0") || !strings.Contains(missing, "libg2c.so.0") {
		t.Errorf("MissingLibs = %v", basic.MissingLibs)
	}

	// Extended target phase: resolution stages the copy and predicts ready.
	ext, report2, err := feam.RunTargetPhase(tgtCfg, india, bundle, runner)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Ready {
		t.Fatalf("extended prediction not ready: %v", ext.Reasons)
	}
	if report2.Total().Minutes() >= 5 {
		t.Errorf("target phase took %v", report2.Total())
	}
	if ext.Determinants[feam.DetSharedLibs].Outcome != feam.Resolved {
		t.Errorf("shared libs determinant = %+v", ext.Determinants[feam.DetSharedLibs])
	}
	found := false
	for _, r := range ext.ResolvedLibs {
		if r == "libmpich.so.1.0" {
			found = true
		}
	}
	if !found {
		t.Errorf("ResolvedLibs = %v", ext.ResolvedLibs)
	}
	if !strings.Contains(ext.ConfigScript, ext.StageDir) {
		t.Errorf("ConfigScript does not export the staged dir:\n%s", ext.ConfigScript)
	}

	// Ground truth: the staged configuration actually runs.
	rec := india.FindStack(ext.StackKey())
	snap = india.SnapshotEnv()
	if err := testbed.ActivateStack(india, ext.StackKey()); err != nil {
		t.Fatal(err)
	}
	res := sim.Run(execsim.Request{Art: art, Site: india, Stack: rec, ExtraLibDirs: ext.ExtraLibDirs()})
	india.RestoreEnv(snap)
	if !res.Success() {
		t.Errorf("resolved execution failed: %v %s", res.Class, res.Detail)
	}
}

// TestResolutionRejectsIncompatibleCopies checks the §VI.C unresolvable
// class: copies requiring a newer C library than the target provides.
func TestResolutionRejectsIncompatibleCopies(t *testing.T) {
	tb := sharedTestbed(t)
	runner := experiment.NewSimRunner(quietSim())
	india := tb.ByName["india"]
	ranger := tb.ByName["ranger"]

	// MVAPICH2 1.7a2 binary from india needs libmpich.so.1.2 at ranger;
	// the india copy references GLIBC_2.5 which ranger (2.3.4) lacks.
	art := compileAt(t, tb, "india", "mvapich2-1.7a2-gnu", "is")
	if err := india.FS().WriteFile("/home/user/is.bin", art.Bytes); err != nil {
		t.Fatal(err)
	}
	snap := india.SnapshotEnv()
	if err := testbed.ActivateStack(india, "mvapich2-1.7a2-gnu"); err != nil {
		t.Fatal(err)
	}
	bundle, _, err := feam.RunSourcePhase(testConfig("source", "/home/user/is.bin"), india, runner)
	india.RestoreEnv(snap)
	if err != nil {
		t.Fatal(err)
	}

	if err := ranger.FS().WriteFile("/home/user/is.bin", art.Bytes); err != nil {
		t.Fatal(err)
	}
	pred, _, err := feam.RunTargetPhase(testConfig("target", "/home/user/is.bin"), ranger, bundle, runner)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Ready {
		t.Fatal("predicted ready with an incompatible copy")
	}
	reason, ok := pred.UnresolvedLibs["libmpich.so.1.2"]
	if !ok || !strings.Contains(reason, "glibc") {
		t.Errorf("UnresolvedLibs = %v", pred.UnresolvedLibs)
	}
}

func testConfig(phase, binary string) *feam.Config {
	serial := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=1\n#PBS -l walltime=00:10:00\n%CMD%\n"
	parallel := "#!/bin/sh\n#PBS -N feam\n#PBS -q debug\n#PBS -l nodes=1:ppn=4\n#PBS -l walltime=00:15:00\n%CMD%\n"
	return &feam.Config{
		Phase:          phase,
		BinaryPath:     binary,
		SerialScript:   serial,
		ParallelScript: parallel,
		MpiexecByImpl:  map[string]string{},
	}
}

// TestRankSites surveys all five sites for a binary with a known best home.
func TestRankSites(t *testing.T) {
	tb := sharedTestbed(t)
	// An MVAPICH2 1.2 gnu binary from ranger: fir/india need resolution,
	// forge's MVAPICH2 is broken, blacklight has no MVAPICH2 at all.
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.rank")
	if err != nil {
		t.Fatal(err)
	}
	// Build the bundle for resolution.
	ranger := tb.ByName["ranger"]
	if err := ranger.FS().WriteFile("/home/user/cg.rank", art.Bytes); err != nil {
		t.Fatal(err)
	}
	snap := ranger.SnapshotEnv()
	if err := testbed.ActivateStack(ranger, "mvapich2-1.2-gnu"); err != nil {
		t.Fatal(err)
	}
	bundle, _, err := feam.RunSourcePhase(testConfig("source", "/home/user/cg.rank"), ranger, experimentRunner())
	ranger.RestoreEnv(snap)
	if err != nil {
		t.Fatal(err)
	}

	var targets []*sitemodel.Site
	for _, s := range tb.Sites {
		if s.Name != "ranger" {
			targets = append(targets, s)
		}
	}
	ranked := feam.RankSites(desc, art.Bytes, targets, feam.EvalOptions{
		Bundle: bundle, Resolve: true, Runner: experimentRunner(),
	})
	if len(ranked) != 4 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	// The two resolution-capable sites come first.
	firstTwo := map[string]bool{ranked[0].Site: true, ranked[1].Site: true}
	if !firstTwo["india"] || !firstTwo["fir"] {
		t.Errorf("top sites = %v, want india+fir", firstTwo)
	}
	for _, a := range ranked[:2] {
		if a.Prediction == nil || !a.Prediction.Ready {
			t.Errorf("%s should be ready", a.Site)
		}
	}
	// blacklight (no MVAPICH2) and forge (broken MVAPICH2) trail.
	for _, a := range ranked[2:] {
		if a.Prediction == nil || a.Prediction.Ready {
			t.Errorf("%s should not be ready", a.Site)
		}
	}
}

// TestEvaluateDeterministic: repeated evaluations of the same pair produce
// identical predictions.
func TestEvaluateDeterministic(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "mg")
	desc, err := feam.DescribeBytes(art.Bytes, "mg.det")
	if err != nil {
		t.Fatal(err)
	}
	fir := tb.ByName["fir"]
	env, err := feam.Discover(fir)
	if err != nil {
		t.Fatal(err)
	}
	runner := experimentRunner()
	var first *feam.Prediction
	for i := 0; i < 5; i++ {
		pred, err := feam.Evaluate(desc, art.Bytes, env, fir, feam.EvalOptions{Runner: runner})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = pred
			continue
		}
		if pred.Ready != first.Ready || pred.StackKey() != first.StackKey() ||
			strings.Join(pred.MissingLibs, ",") != strings.Join(first.MissingLibs, ",") ||
			pred.ConfigScript != first.ConfigScript {
			t.Fatalf("prediction changed on iteration %d", i)
		}
	}
}

// TestStackPreferenceMatchesBuildCompiler: candidates sharing the binary's
// compiler family are tried first.
func TestStackPreferenceMatchesBuildCompiler(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "india", "openmpi-1.4-intel", "is")
	desc, err := feam.DescribeBytes(art.Bytes, "is.pref")
	if err != nil {
		t.Fatal(err)
	}
	fir := tb.ByName["fir"]
	env, err := feam.Discover(fir)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := feam.Evaluate(desc, art.Bytes, env, fir, feam.EvalOptions{Runner: experimentRunner()})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready || pred.SelectedStack.CompilerFamily != "intel" {
		t.Errorf("selected = %+v", pred.SelectedStack)
	}
}
