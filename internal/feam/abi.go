// abi.go wires the internal/abicheck symbol-resolution analyzer into the
// engine: a fifth DeterminantEvaluator behind the WithABICheck option, a
// KindSymIndex caching layer over the sharded registry and the persistent
// store, and the cross-tool agreement mode that runs the independent
// soname-closure checker and publishes abi_agree/abi_disagree counters
// (the tool-agreement measurement of Sochat & Haines, arXiv:2212.03364).
package feam

import (
	"context"
	"encoding/json"
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"feam/internal/abicheck"
	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/ldso"
	"feam/internal/obs"
	"feam/internal/sitemodel"
)

// symIndexShardKey is the registry shard key holding the cached per-site
// *abicheck.Index; like the survey's \x00roots sentinel, the NUL prefix
// keeps it disjoint from real shard roots.
const symIndexShardKey = "\x00symindex"

// ABIEvaluator is the fifth determinant: every undefined dynamic symbol
// of the binary must resolve against the site's exported-symbol index.
// It runs under the selected stack's environment (like the shared-library
// evaluator), so a chosen MPI stack's exports are part of the surface.
type ABIEvaluator struct {
	// Agreement additionally runs the independent soname-closure checker
	// over the same binary and records whether the two tools agree, via
	// the abi_agree/abi_disagree counters and the report's Agreement
	// field. The determinant verdict always comes from the index
	// resolver; agreement is a measurement, not a vote.
	Agreement bool
}

func (ABIEvaluator) Determinant() Determinant { return DetABI }

func (a ABIEvaluator) Evaluate(ec *EvalContext) error {
	site, pred := ec.Site, ec.Pred
	probe := ec.AppBytes
	if probe == nil {
		img, err := syntheticImage(ec.Desc)
		if err != nil {
			return err
		}
		probe = img
	}
	snap := site.SnapshotEnv()
	loadStackEnv(site, pred.SelectedStack)
	report, err := ec.Engine.abiReport(site, probe, ec.Desc.Name, a.Agreement, ec.span)
	site.RestoreEnv(snap)
	if err != nil {
		return err
	}
	pred.ABI = report
	if report.OK() {
		pred.pass(DetABI, report.Summary())
		return nil
	}
	diff := report.Diff()
	if len(diff) > 4 {
		diff = append(diff[:4], fmt.Sprintf("and %d more", len(diff)-4))
	}
	pred.fail(DetABI, report.Summary()+": "+strings.Join(diff, "; "))
	return nil
}

// ABIEvaluators returns the extended determinant ladder: the paper's four
// evaluators with the ABI-standard MPI stack class enabled, plus the
// symbol-resolution evaluator. WithABICheck installs this ladder; it is
// also the registry to pass via EvalOptions.Evaluators for a one-off
// ABI-checked evaluation on a default engine.
func ABIEvaluators(agreement bool) []DeterminantEvaluator {
	return []DeterminantEvaluator{
		ISAEvaluator{},
		CLibraryEvaluator{},
		MPIStackEvaluator{ABIStandard: true},
		SharedLibsEvaluator{},
		ABIEvaluator{Agreement: agreement},
	}
}

// ABICheck resolves a binary's dynamic symbols against one site's
// exported-symbol index, outside any prediction: the entry point behind
// cmd/feam-abi and GET /v1/abi/{site}. The index is served from the
// KindSymIndex registry/store layer when its env-fingerprint/generation
// stamp still matches. Callers coordinating with concurrent surveys
// should hold the engine's SiteLock, as the server handler does.
func (e *Engine) ABICheck(ctx context.Context, site *sitemodel.Site, bin []byte, name string, agreement bool) (*abicheck.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.abiReport(site, bin, name, agreement, nil)
}

// abiReport builds (or reuses) the site index, resolves the binary, and
// optionally runs the agreement comparison.
func (e *Engine) abiReport(site *sitemodel.Site, bin []byte, name string, agreement bool, parent *obs.Span) (*abicheck.Report, error) {
	ix := e.symbolIndex(site, parent)
	sp := e.tracer.Start(obs.OpABICheck,
		obs.WithParent(parent), obs.WithSite(site.Name), obs.WithBinary(name))
	report, err := abicheck.Check(bin, name, ix)
	if err != nil {
		sp.End(err)
		return nil, err
	}
	sp.SetAttr(obs.AttrSuccess, strconv.FormatBool(report.OK()))
	if agreement {
		opts := ldso.Options{
			FS:          site.FS(),
			LibraryPath: envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH")),
			DefaultDirs: site.DefaultLibDirs(),
		}
		ag, aerr := abicheck.Compare(report, bin, name, opts)
		if aerr != nil {
			sp.End(aerr)
			return nil, aerr
		}
		counter := "abi_disagree"
		if ag.Agree {
			counter = "abi_agree"
		}
		e.reg.Counter(counter).Add(1)
		sp.SetAttr("agree", strconv.FormatBool(ag.Agree))
	}
	sp.End(nil)
	return report, nil
}

// symbolIndex serves the per-site exported-symbol index through the
// KindSymIndex layer: sharded registry first, then the persistent store,
// then a real build (the only path that emits an OpSymIndex span). The
// stamp mixes the environment fingerprint with the filesystem content
// generation, so both a stack-environment change and any library
// mutation invalidate the index — the same rule the survey shards use.
func (e *Engine) symbolIndex(site *sitemodel.Site, parent *obs.Span) *abicheck.Index {
	stamp := site.EnvFingerprint() ^ bits.RotateLeft64(site.FS().ContentGeneration(), 32)
	if v, ok := e.sites.LookupShard(site, symIndexShardKey, stamp); ok {
		return v.(*abicheck.Index)
	}
	if ix, ok := e.loadSymIndex(site, stamp); ok {
		e.sites.StoreShard(site, symIndexShardKey, stamp, ix)
		return ix
	}
	sp := e.tracer.Start(obs.OpSymIndex,
		obs.WithParent(parent), obs.WithSite(site.Name))
	ix := abicheck.BuildIndex(site, nil, stamp)
	sp.SetAttr(obs.AttrLibs, strconv.Itoa(ix.Libraries()))
	sp.End(nil)
	e.sites.StoreShard(site, symIndexShardKey, stamp, ix)
	e.persistSymIndex(site, ix)
	return ix
}

// loadSymIndex rehydrates a persisted symbol index when its stamp still
// matches; absent, stale, or corrupt records are all misses.
func (e *Engine) loadSymIndex(site *sitemodel.Site, stamp uint64) (*abicheck.Index, bool) {
	if e.store == nil {
		return nil, false
	}
	payload, ok, _ := e.store.Get(KindSymIndex, site.Name)
	if !ok {
		return nil, false
	}
	var snap abicheck.Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, false
	}
	if snap.Site != site.Name || snap.Stamp != stamp {
		return nil, false
	}
	return abicheck.FromSnapshot(&snap), true
}

// persistSymIndex writes the index snapshot (best-effort, like surveys).
func (e *Engine) persistSymIndex(site *sitemodel.Site, ix *abicheck.Index) {
	if e.store == nil {
		return
	}
	if payload, err := json.Marshal(ix.Snapshot()); err == nil {
		_ = e.store.Put(KindSymIndex, site.Name, payload)
	}
}

// selectStackABIStandard is the MPI determinant's ABI-standard fallback:
// when no same-implementation stack is usable, admit any installed stack
// whose libraries export the MPI entry points the binary actually
// imports (or the full standardized surface when the binary is not at
// hand). prior carries the same-implementation failure detail for the
// combined refusal message.
func selectStackABIStandard(ec *EvalContext, prior string) (*StackInfo, string) {
	cls := elfimg.Class64
	if ec.Desc.Bits == 32 {
		cls = elfimg.Class32
	}
	needs := mpiImportNames(ec.AppBytes)
	if len(needs) == 0 {
		needs = abicheck.StandardMPISymbols
	}
	for i := range ec.Env.Available {
		cand := &ec.Env.Available[i]
		if cand.Impl == ec.Desc.MPIImpl || cand.Prefix == "" {
			continue
		}
		ix := abicheck.BuildIndex(ec.Site, []string{cand.Prefix + "/lib"}, 0)
		if ix.ProvidesAll(needs, cls, ec.Desc.ISA) {
			return cand, fmt.Sprintf("%s exports the standardized MPI symbol surface (ABI-standard class, %d entry points)",
				cand.Key, len(needs))
		}
	}
	return nil, prior + "; no installed stack exports the standardized MPI symbol surface"
}

// mpiImportNames extracts the MPI_-prefixed imported symbol names of a
// binary image (nil input or unparsable images yield none).
func mpiImportNames(bin []byte) []string {
	if bin == nil {
		return nil
	}
	var p elfimg.Parser
	v, err := p.Parse(bin)
	if err != nil {
		return nil
	}
	var names []string
	v.Imports(func(sym elfimg.SymbolRef) bool {
		if len(sym.Name) > 4 && string(sym.Name[:4]) == "MPI_" {
			names = append(names, string(sym.Name))
		}
		return true
	})
	return names
}
