package feam_test

import (
	"strings"
	"testing"

	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/feam"
	"feam/internal/libver"
	"feam/internal/sitemodel"
)

func minimalSite(t *testing.T) *sitemodel.Site {
	t.Helper()
	s := sitemodel.New("edge",
		sitemodel.Arch{Machine: elfimg.EMX8664, Class: elfimg.Class64, CPUName: "X", FeatureLevel: 1},
		sitemodel.OSInfo{Distro: "CentOS", Version: "5.6", Kernel: "2.6.18", ReleaseFile: "/etc/redhat-release"},
		libver.V(2, 5))
	if err := s.InstallCLibrary(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiscoverWithCorruptLibc: a garbage C library file defeats both the
// exec-banner and the API fallback; discovery still succeeds with an
// undetermined glibc, and the C-library determinant passes permissively
// (the paper's tools-may-be-broken degradation).
func TestDiscoverWithCorruptLibc(t *testing.T) {
	s := minimalSite(t)
	if err := s.FS().WriteString("/lib64/libc-2.5.so", "THIS IS NOT AN ELF"); err != nil {
		t.Fatal(err)
	}
	env, err := feam.Discover(s)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Glibc.IsZero() {
		t.Errorf("glibc = %v from a corrupt library", env.Glibc)
	}
	// A prediction still forms; the C library determinant passes with a
	// note rather than blocking on missing information.
	img := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeExec,
		Interp: "/lib64/ld-linux-x86-64.so.2",
		Needed: []string{"libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.3.4"}},
		},
	})
	desc, err := feam.DescribeBytes(img, "app")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := feam.Evaluate(desc, img, env, s, feam.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Determinants[feam.DetCLibrary].Outcome != feam.Pass {
		t.Errorf("C library determinant = %+v", pred.Determinants[feam.DetCLibrary])
	}
	if !strings.Contains(pred.Determinants[feam.DetCLibrary].Detail, "undetermined") {
		t.Errorf("detail = %q", pred.Determinants[feam.DetCLibrary].Detail)
	}
}

// TestDiscoverWithEmptyModulesDir: an installed-but-empty Environment
// Modules tree yields a modules site with zero stacks (not an error, and
// not a fallback to path search — the tool exists and answered).
func TestDiscoverWithEmptyModulesDir(t *testing.T) {
	s := minimalSite(t)
	if err := s.FS().MkdirAll(envmgmt.ModulesRoot); err != nil {
		t.Fatal(err)
	}
	env, err := feam.Discover(s)
	if err != nil {
		t.Fatal(err)
	}
	if env.EnvTool != "modules" {
		t.Errorf("EnvTool = %q", env.EnvTool)
	}
	if len(env.Available) != 0 {
		t.Errorf("Available = %+v", env.Available)
	}
}

// TestDiscoverMissingReleaseFile: without any /etc/*release the distro is
// simply unknown; everything else proceeds.
func TestDiscoverMissingReleaseFile(t *testing.T) {
	s := minimalSite(t)
	if err := s.FS().Remove("/etc/redhat-release"); err != nil {
		t.Fatal(err)
	}
	env, err := feam.Discover(s)
	if err != nil {
		t.Fatal(err)
	}
	if env.Distro != "" {
		t.Errorf("Distro = %q", env.Distro)
	}
	if env.OSType != "Linux" {
		t.Errorf("OSType = %q", env.OSType)
	}
}

// TestDiscoverWrapperWithoutBanner: a stack whose mpicc cannot be executed
// still appears, just without a confirmed compiler version.
func TestDiscoverWrapperWithoutBanner(t *testing.T) {
	s := minimalSite(t)
	if err := s.FS().WriteString("/opt/openmpi-1.4-gnu/lib/libmpi.so.0", "stub"); err != nil {
		t.Fatal(err)
	}
	// A real ELF so path search finds the prefix, but a bare wrapper file
	// with no exec output.
	if _, err := s.InstallLibrary("/opt/openmpi-1.4-gnu/lib", sitemodel.Library{
		FileName: "libmpi.so.0.0.2",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.FS().WriteString("/opt/openmpi-1.4-gnu/bin/mpicc", "#!/bin/sh\n"); err != nil {
		t.Fatal(err)
	}
	env, err := feam.Discover(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Available) != 1 {
		t.Fatalf("Available = %+v", env.Available)
	}
	if env.Available[0].Key != "openmpi-1.4-gnu" {
		t.Errorf("key = %q", env.Available[0].Key)
	}
	if env.Available[0].CompilerVersion != "" {
		t.Errorf("compiler version = %q without a banner", env.Available[0].CompilerVersion)
	}
}

// TestEvaluateSharedLibraryInput: the TEC accepts a shared library as its
// subject (the recursive-resolution path exposed at the top level).
func TestEvaluateSharedLibraryInput(t *testing.T) {
	s := minimalSite(t)
	img := elfimg.MustBuild(elfimg.Spec{
		Class: elfimg.Class64, Machine: elfimg.EMX8664, Type: elfimg.TypeDyn,
		Soname: "libscience.so.2",
		Needed: []string{"libm.so.6", "libc.so.6"},
		VerNeeds: []elfimg.VerNeed{
			{File: "libc.so.6", Versions: []string{"GLIBC_2.3.4"}},
		},
		VerDefs: []string{"libscience.so.2"},
	})
	desc, err := feam.DescribeBytes(img, "libscience.so.2")
	if err != nil {
		t.Fatal(err)
	}
	if !desc.IsSharedLibrary() || !desc.LibVersion.Equal(libver.V(2)) {
		t.Errorf("desc = %+v", desc)
	}
	env, err := feam.Discover(s)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := feam.Evaluate(desc, img, env, s, feam.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Ready {
		t.Errorf("library not ready: %v", pred.Reasons)
	}
	// Not an MPI application: the stack determinant passes trivially.
	if pred.Determinants[feam.DetMPIStack].Detail != "not an MPI application" {
		t.Errorf("MPI determinant = %+v", pred.Determinants[feam.DetMPIStack])
	}
}
