package feam

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"feam/internal/sitemodel"
)

// OutputDir is where FEAM's target phase writes its user-facing output
// files at a site.
const OutputDir = "/home/user/feam-output"

// Render produces the user-facing prediction report the paper's TEC writes
// ("if at any point we determine that execution cannot occur, the reasons
// are detailed to the user via an output file").
func (p *Prediction) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FEAM prediction for %s at %s\n", p.Binary, p.Site)
	mode := "basic (target phase only)"
	if p.Extended {
		mode = "extended (source + target phases)"
	}
	fmt.Fprintf(&b, "mode: %s\n", mode)
	if p.Ready {
		b.WriteString("verdict: READY — execution is predicted to succeed\n")
	} else {
		b.WriteString("verdict: NOT READY\n")
	}
	b.WriteString("\ndeterminants:\n")
	for _, d := range Determinants() {
		res := p.Determinants[d]
		fmt.Fprintf(&b, "  %-30s %-13s %s\n", d.String()+":", res.Outcome, res.Detail)
	}
	if p.SelectedStack != nil {
		s := p.SelectedStack
		fmt.Fprintf(&b, "\nselected MPI stack: %s (%s %s, %s %s, via %s)\n",
			s.Key, s.Impl, s.ImplVersion, s.CompilerFamily, s.CompilerVersion, s.DiscoveredVia)
	}
	if len(p.MissingLibs) > 0 {
		fmt.Fprintf(&b, "\nmissing shared libraries: %s\n", strings.Join(p.MissingLibs, ", "))
	}
	if len(p.ResolvedLibs) > 0 {
		fmt.Fprintf(&b, "resolved from bundle (staged at %s): %s\n",
			p.StageDir, strings.Join(p.ResolvedLibs, ", "))
	}
	if len(p.UnresolvedLibs) > 0 {
		b.WriteString("unresolvable:\n")
		names := make([]string, 0, len(p.UnresolvedLibs))
		for n := range p.UnresolvedLibs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %s: %s\n", n, p.UnresolvedLibs[n])
		}
	}
	for _, r := range p.Reasons {
		fmt.Fprintf(&b, "reason: %s\n", r)
	}
	return b.String()
}

// WriteOutputFiles writes the prediction report (and, when ready, the
// configuration script) into the site's FEAM output directory, returning
// the paths written.
func (p *Prediction) WriteOutputFiles(site *sitemodel.Site) ([]string, error) {
	base := path.Join(OutputDir, path.Base(p.Binary))
	var written []string
	reportPath := base + ".prediction"
	if err := site.FS().WriteString(reportPath, p.Render()); err != nil {
		return nil, err
	}
	written = append(written, reportPath)
	if p.Ready && p.ConfigScript != "" {
		scriptPath := base + ".configure.sh"
		if err := site.FS().WriteString(scriptPath, p.ConfigScript); err != nil {
			return nil, err
		}
		written = append(written, scriptPath)
	}
	return written, nil
}
