package feam

import (
	"strings"
	"testing"
)

const validSerial = "#!/bin/sh\n#PBS -N s\n#PBS -l nodes=1:ppn=1\n#PBS -l walltime=00:05:00\n%CMD%\n"
const validParallel = "#!/bin/sh\n#PBS -N p\n#PBS -l nodes=1:ppn=4\n#PBS -l walltime=00:10:00\n%CMD%\n"

func TestParseConfig(t *testing.T) {
	text := `
# FEAM configuration
phase = target
binary = /home/user/bt.A.4
bundle = /home/user/bt.bundle
mpiexec.mvapich2 = mpirun_rsh
serial_script = <<EOS
` + strings.TrimSuffix(validSerial, "\n") + `
EOS
parallel_script = <<EOS
` + strings.TrimSuffix(validParallel, "\n") + `
EOS
`
	cfg, err := ParseConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Phase != "target" || cfg.BinaryPath != "/home/user/bt.A.4" || cfg.BundlePath != "/home/user/bt.bundle" {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.LaunchCommand("mvapich2") != "mpirun_rsh" {
		t.Errorf("mvapich2 launch = %q", cfg.LaunchCommand("mvapich2"))
	}
	if cfg.LaunchCommand("openmpi") != DefaultLaunchCommand {
		t.Errorf("openmpi launch = %q", cfg.LaunchCommand("openmpi"))
	}
	if !strings.Contains(cfg.SerialScript, "#PBS") {
		t.Errorf("SerialScript = %q", cfg.SerialScript)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"missing equals":       "phase target\n",
		"unknown key":          "frobnicate = yes\n",
		"unterminated heredoc": "serial_script = <<EOS\nnever closed\n",
		"empty heredoc marker": "serial_script = <<\nx\n",
	}
	for name, text := range cases {
		if _, err := ParseConfig(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() *Config {
		return &Config{
			Phase: "target", BinaryPath: "/b",
			SerialScript: validSerial, ParallelScript: validParallel,
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := base()
	c.Phase = "weird"
	if err := c.Validate(); err == nil {
		t.Error("bad phase accepted")
	}
	c = base()
	c.Phase = "source"
	c.BinaryPath = ""
	if err := c.Validate(); err == nil {
		t.Error("source phase without binary accepted")
	}
	c = base()
	c.BinaryPath = ""
	if err := c.Validate(); err == nil {
		t.Error("target phase without binary or bundle accepted")
	}
	c = base()
	c.BinaryPath = ""
	c.BundlePath = "/bundle"
	if err := c.Validate(); err != nil {
		t.Errorf("bundle-only target rejected: %v", err)
	}
	c = base()
	c.SerialScript = "#!/bin/sh\n#PBS -N x\necho fixed\n" // no placeholder
	if err := c.Validate(); err == nil {
		t.Error("script without placeholder accepted")
	}
	c = base()
	c.SerialScript = "echo %CMD%\n" // no scheduler directives
	if err := c.Validate(); err == nil {
		t.Error("script without directives accepted")
	}
}

func TestDeterminantAndOutcomeStrings(t *testing.T) {
	if len(Determinants()) != 5 {
		t.Fatal("the model has five determinants (four paper rungs + ABI)")
	}
	for d, want := range map[Determinant]string{
		DetISA: "ISA compatibility", DetCLibrary: "C library compatibility",
		DetMPIStack: "MPI stack compatibility", DetSharedLibs: "shared library compatibility",
		DetABI: "ABI symbol resolution",
	} {
		if d.String() != want {
			t.Errorf("%d = %q", d, d.String())
		}
	}
	for o, want := range map[Outcome]string{
		Unknown: "not evaluated", Pass: "pass", Fail: "fail", Resolved: "resolved",
	} {
		if o.String() != want {
			t.Errorf("%d = %q", o, o.String())
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Phase: "target", Site: "india"}
	r.step("discovery", 25e9)
	r.step("probes", 50e9)
	r.note("prediction: READY")
	if r.Total() != 75e9 {
		t.Errorf("Total = %v", r.Total())
	}
	out := r.String()
	for _, want := range []string{"target phase at india", "discovery", "probes", "READY"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPredictionRender(t *testing.T) {
	p := &Prediction{
		Binary: "/home/user/cg.bin", Site: "india", Extended: true, Ready: true,
		Determinants: map[Determinant]DeterminantResult{
			DetISA:        {Outcome: Pass, Detail: "x86-64 matches"},
			DetCLibrary:   {Outcome: Pass, Detail: "2.5 >= 2.3.4"},
			DetMPIStack:   {Outcome: Pass, Detail: "stack selected"},
			DetSharedLibs: {Outcome: Resolved, Detail: "2 resolved"},
		},
		SelectedStack: &StackInfo{Key: "mvapich2-1.7a2-gnu", Impl: "mvapich2",
			ImplVersion: "1.7a2", CompilerFamily: "gnu", CompilerVersion: "4.1.2",
			DiscoveredVia: "modules"},
		MissingLibs:    []string{"libmpich.so.1.0"},
		ResolvedLibs:   []string{"libmpich.so.1.0"},
		StageDir:       "/home/user/feam/staged/cg.bin",
		UnresolvedLibs: map[string]string{},
		ConfigScript:   "#!/bin/sh\nmodule load mvapich2-1.7a2-gnu\n",
	}
	out := p.Render()
	for _, want := range []string{
		"READY", "extended", "resolved", "mvapich2-1.7a2-gnu",
		"libmpich.so.1.0", "staged",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Not-ready rendering includes reasons and unresolvables.
	p.Ready = false
	p.Reasons = []string{"shared library compatibility: unresolvable"}
	p.UnresolvedLibs["libmpich.so.1.2"] = "copy requires glibc 2.5"
	out = p.Render()
	for _, want := range []string{"NOT READY", "unresolvable", "copy requires glibc 2.5", "reason:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
