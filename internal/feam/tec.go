package feam

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
)

// EvalOptions configures a Target Evaluation Component run.
type EvalOptions struct {
	// Bundle enables the extended compatibility tests and the resolution
	// model (nil = basic prediction).
	Bundle *Bundle
	// Runner executes probe programs; without it, stack usability tests
	// are skipped and stack presence alone decides the MPI determinant.
	Runner ProgramRunner
	// Resolve applies the resolution model to missing shared libraries
	// (requires Bundle).
	Resolve bool
	// StageDir is where library copies are staged on the target
	// filesystem; derived from the binary name when empty.
	StageDir string
	// Config supplies launch-command overrides.
	Config *Config
	// ShallowResolution disables the recursive part of the resolution
	// model: copies are staged without checking or resolving their own
	// dependencies. This exists for the ablation study — the paper's model
	// is recursive (§IV) — and is never set in normal operation.
	ShallowResolution bool
}

// Prediction is the TEC's verdict for one binary at one target site.
type Prediction struct {
	// Binary and Site identify the evaluation.
	Binary string
	Site   string
	// Extended records whether source-phase information was available.
	Extended bool

	// Ready is the headline answer: is the site ready to execute the
	// binary without recompilation?
	Ready bool
	// Determinants holds the per-question outcomes.
	Determinants map[Determinant]DeterminantResult
	// Reasons lists human-readable failure explanations.
	Reasons []string

	// SelectedStack is the compatible, functioning stack the TEC chose.
	SelectedStack *StackInfo
	// MissingLibs lists shared libraries absent at the target before
	// resolution.
	MissingLibs []string
	// ResolvedLibs lists libraries fixed by staging bundle copies;
	// UnresolvedLibs maps still-missing names to the reason resolution
	// could not use a copy.
	ResolvedLibs   []string
	UnresolvedLibs map[string]string
	// StageDir is where resolved copies were placed.
	StageDir string

	// ConfigScript is the emitted site-configuration script that sets up
	// the environment for execution.
	ConfigScript string
}

// ExtraLibDirs returns the loader directories execution must add (the
// staged copies), if any.
func (p *Prediction) ExtraLibDirs() []string {
	if len(p.ResolvedLibs) == 0 {
		return nil
	}
	return []string{p.StageDir}
}

// StackKey returns the selected stack's key, or "".
func (p *Prediction) StackKey() string {
	if p.SelectedStack == nil {
		return ""
	}
	return p.SelectedStack.Key
}

func (p *Prediction) fail(d Determinant, reason string) {
	p.Determinants[d] = DeterminantResult{Outcome: Fail, Detail: reason}
	p.Reasons = append(p.Reasons, fmt.Sprintf("%s: %s", d, reason))
	p.Ready = false
}

func (p *Prediction) pass(d Determinant, detail string) {
	p.Determinants[d] = DeterminantResult{Outcome: Pass, Detail: detail}
}

// Evaluate runs the Target Evaluation Component: it matches a binary
// description against an environment description per the prediction model,
// tests candidate MPI stacks with probe programs, and optionally applies
// the resolution model. appBytes may be nil when a bundle carries the
// description (the paper's "binary not present at target" mode); a
// synthetic probe image is reconstructed from the description for the
// loader checks.
func Evaluate(desc *BinaryDescription, appBytes []byte, env *EnvironmentDescription, site *sitemodel.Site, opts EvalOptions) (*Prediction, error) {
	if desc == nil || env == nil || site == nil {
		return nil, fmt.Errorf("feam: Evaluate requires a description, environment, and site")
	}
	pred := &Prediction{
		Binary:         desc.Name,
		Site:           env.SiteName,
		Extended:       opts.Bundle != nil,
		Ready:          true,
		Determinants:   map[Determinant]DeterminantResult{},
		UnresolvedLibs: map[string]string{},
	}
	for _, d := range Determinants() {
		pred.Determinants[d] = DeterminantResult{Outcome: Unknown}
	}

	// 1. ISA compatibility (architecture and word size).
	if desc.ISA != env.ISA || desc.Bits != env.Bits {
		pred.fail(DetISA, fmt.Sprintf("binary is %s but site is %s (%d-bit)",
			desc.Format, env.UnameProcessor, env.Bits))
		return pred, nil
	}
	pred.pass(DetISA, fmt.Sprintf("%s matches site processor %s", desc.Format, env.UnameProcessor))

	// 2. C library compatibility: site version must be >= the binary's
	// required version.
	switch {
	case desc.RequiredGlibc.IsZero():
		pred.pass(DetCLibrary, "binary has no C library version requirement")
	case env.Glibc.IsZero():
		pred.pass(DetCLibrary, "site C library version undetermined; assuming compatible")
	case env.Glibc.AtLeast(desc.RequiredGlibc):
		pred.pass(DetCLibrary, fmt.Sprintf("site glibc %s >= required %s", env.Glibc, desc.RequiredGlibc))
	default:
		pred.fail(DetCLibrary, fmt.Sprintf("site glibc %s < required %s", env.Glibc, desc.RequiredGlibc))
		return pred, nil
	}

	// 3. MPI stack compatibility: an available stack of the same
	// implementation that demonstrably functions.
	if !desc.UsesMPI() {
		pred.pass(DetMPIStack, "not an MPI application")
	} else {
		selected, detail := selectStack(desc, env, site, opts)
		if selected == nil {
			pred.fail(DetMPIStack, detail)
			return pred, nil
		}
		pred.SelectedStack = selected
		pred.pass(DetMPIStack, detail)
	}

	// 4. Shared library compatibility under the selected stack's
	// environment.
	probe := appBytes
	if probe == nil {
		img, err := syntheticImage(desc)
		if err != nil {
			return nil, err
		}
		probe = img
	}
	snap := site.SnapshotEnv()
	loadStackEnv(site, pred.SelectedStack)
	missing, err := MissingLibraries(site, probe, desc.Name, nil)
	site.RestoreEnv(snap)
	if err != nil {
		return nil, err
	}
	pred.MissingLibs = missing
	if len(missing) == 0 {
		pred.pass(DetSharedLibs, "all required shared libraries present")
	} else if opts.Resolve && opts.Bundle != nil {
		resolveMissing(pred, missing, env, site, opts)
		if len(pred.UnresolvedLibs) == 0 {
			pred.Determinants[DetSharedLibs] = DeterminantResult{
				Outcome: Resolved,
				Detail:  fmt.Sprintf("%d missing libraries resolved from bundle", len(pred.ResolvedLibs)),
			}
		} else {
			var parts []string
			for name, why := range pred.UnresolvedLibs {
				parts = append(parts, name+" ("+why+")")
			}
			sort.Strings(parts)
			pred.fail(DetSharedLibs, "unresolvable: "+strings.Join(parts, ", "))
			return pred, nil
		}
	} else {
		pred.fail(DetSharedLibs, "missing: "+strings.Join(missing, ", "))
		return pred, nil
	}

	pred.ConfigScript = configScript(pred, desc, opts.Config)
	return pred, nil
}

// syntheticImage reconstructs a loader-probe ELF image from a description
// (used when the application binary is not present at the target site).
func syntheticImage(desc *BinaryDescription) ([]byte, error) {
	cls := elfimg.Class64
	if desc.Bits == 32 {
		cls = elfimg.Class32
	}
	return elfimg.Build(elfimg.Spec{
		Class:    cls,
		Machine:  desc.ISA,
		Type:     elfimg.TypeExec,
		Interp:   "/lib64/ld-linux-x86-64.so.2",
		Needed:   desc.Needed,
		VerNeeds: desc.VerNeeds,
	})
}

// selectStack finds a compatible, functioning MPI stack. Candidates share
// the binary's implementation; those matching the build compiler family are
// preferred. Each candidate is validated with probe programs: a natively
// compiled hello world when the site has the stack's compiler, plus the
// bundle's source-site hello world for extended cross-compatibility tests.
func selectStack(desc *BinaryDescription, env *EnvironmentDescription, site *sitemodel.Site, opts EvalOptions) (*StackInfo, string) {
	candidates := env.FindStacks(desc.MPIImpl)
	if len(candidates) == 0 {
		return nil, fmt.Sprintf("no %s installation available at site", desc.MPIImpl)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		pi := compilerFamilyOf(desc.BuildComment) == candidates[i].CompilerFamily
		pj := compilerFamilyOf(desc.BuildComment) == candidates[j].CompilerFamily
		return pi && !pj
	})
	var failures []string
	for i := range candidates {
		cand := &candidates[i]
		ok, detail := testStack(cand, site, opts)
		if ok {
			return cand, fmt.Sprintf("stack %s selected (%s)", cand.Key, detail)
		}
		failures = append(failures, fmt.Sprintf("%s: %s", cand.Key, detail))
	}
	return nil, "no functioning compatible stack: " + strings.Join(failures, "; ")
}

// compilerFamilyOf extracts the compiler family from a .comment provenance
// string.
func compilerFamilyOf(comment string) string {
	switch {
	case strings.HasPrefix(comment, "GCC:"):
		return "gnu"
	case strings.HasPrefix(comment, "Intel"):
		return "intel"
	case strings.HasPrefix(comment, "PGI"):
		return "pgi"
	default:
		return ""
	}
}

// testStack checks that a candidate stack actually functions by running
// hello-world probes under it (§III.B: advertised stacks can be
// misconfigured and unusable).
func testStack(cand *StackInfo, site *sitemodel.Site, opts EvalOptions) (bool, string) {
	if opts.Runner == nil {
		return true, "presence only (no probe runner)"
	}
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	loadStackEnv(site, cand)

	tested := false
	// Native compile test: possible when the stack's compiler is present.
	if family, ok := toolchain.FamilyFromKey(cand.CompilerFamily); ok {
		if _, found := toolchain.FindCompiler(site, family); found {
			rec := stackRecordFromInfo(cand)
			hello, err := toolchain.CompileHello(rec, site)
			if err == nil {
				okRun, detail := opts.Runner.RunProgram(hello, site, cand.Key, nil)
				if !okRun {
					return false, "native hello world failed: " + detail
				}
				tested = true
			}
		}
	}
	// Extended test: the source site's hello world under this stack. A
	// failure whose output shows a missing shared library does not condemn
	// the stack — missing libraries are the shared-library determinant's
	// business and the resolution model may still fix them; crashes and
	// launch failures (ABI breaks, floating point errors, misconfigured
	// stacks) do.
	if opts.Bundle != nil && opts.Bundle.MPIHello != nil {
		okRun, detail := opts.Runner.RunProgram(opts.Bundle.MPIHello, site, cand.Key, nil)
		if !okRun && !strings.Contains(detail, "not found") {
			return false, "source-site hello world failed: " + detail
		}
		tested = true
	}
	if !tested {
		return true, "presence only (no testable probe)"
	}
	if opts.Bundle != nil {
		return true, "native and source hello worlds pass"
	}
	return true, "native hello world passes"
}

// stackRecordFromInfo converts discovered stack information into the record
// form the toolchain consumes. Every field is EDC-discoverable; no ground
// truth is involved.
func stackRecordFromInfo(info *StackInfo) *sitemodel.StackRecord {
	return &sitemodel.StackRecord{
		Key:             info.Key,
		Impl:            info.Impl,
		ImplVersion:     info.ImplVersion,
		CompilerFamily:  info.CompilerFamily,
		CompilerVersion: info.CompilerVersion,
		Prefix:          info.Prefix,
	}
}

// loadStackEnv activates a stack in the site environment the way `module
// load` (or a manual PATH/LD_LIBRARY_PATH export) would.
func loadStackEnv(site *sitemodel.Site, stack *StackInfo) {
	if stack == nil {
		return
	}
	envmgmt.PrependPathEntry(site, "PATH", stack.Prefix+"/bin")
	envmgmt.PrependPathEntry(site, "LD_LIBRARY_PATH", stack.Prefix+"/lib")
}

// resolveMissing applies the resolution model (§IV): for every missing
// shared library, the prediction model is applied recursively to the
// bundled copy — ISA, C library requirement, and the copy's own shared
// library dependencies (which may recursively require further copies).
// Usable copies are staged at the target and exposed via the loader path.
func resolveMissing(pred *Prediction, missing []string, env *EnvironmentDescription, site *sitemodel.Site, opts EvalOptions) {
	stageDir := opts.StageDir
	if stageDir == "" {
		stageDir = "/home/user/feam/staged/" + path.Base(pred.Binary)
	}
	pred.StageDir = stageDir

	snap := site.SnapshotEnv()
	loadStackEnv(site, pred.SelectedStack)
	defer site.RestoreEnv(snap)

	planned := map[string]*LibraryCopy{}
	pending := append([]string(nil), missing...)
	const maxPlanned = 256
	for len(pending) > 0 {
		name := pending[0]
		pending = pending[1:]
		if _, done := planned[name]; done {
			continue
		}
		if _, bad := pred.UnresolvedLibs[name]; bad {
			continue
		}
		copyLib := opts.Bundle.FindLibrary(name)
		if copyLib == nil {
			pred.UnresolvedLibs[name] = "no copy in bundle"
			continue
		}
		// Recursive prediction on the copy: ISA determinant.
		if copyLib.Desc.ISA != env.ISA || copyLib.Desc.Bits != env.Bits {
			pred.UnresolvedLibs[name] = fmt.Sprintf("copy is %s, site is %d-bit %s",
				copyLib.Desc.Format, env.Bits, env.UnameProcessor)
			continue
		}
		// C library determinant.
		if !copyLib.Desc.RequiredGlibc.IsZero() && !env.Glibc.IsZero() &&
			env.Glibc.Less(copyLib.Desc.RequiredGlibc) {
			pred.UnresolvedLibs[name] = fmt.Sprintf("copy requires glibc %s, site has %s",
				copyLib.Desc.RequiredGlibc, env.Glibc)
			continue
		}
		if len(planned) >= maxPlanned {
			pred.UnresolvedLibs[name] = "resolution plan too large"
			continue
		}
		planned[name] = copyLib
		if opts.ShallowResolution {
			continue
		}
		// Shared library determinant, recursively: the copy's own
		// dependencies must be present at the target or resolvable too.
		for _, dep := range copyLib.Desc.Needed {
			if dep == name {
				continue
			}
			if _, already := planned[dep]; already {
				continue
			}
			if targetHasLibrary(site, dep, copyLib.Desc) {
				continue
			}
			pending = append(pending, dep)
		}
	}

	// Any unresolved dependency poisons the libraries that needed it; the
	// remaining plan is staged.
	if len(pred.UnresolvedLibs) > 0 {
		// Keep the partial stage anyway — FEAM reports the determinant as
		// failed; staged files are harmless.
		for name := range pred.UnresolvedLibs {
			delete(planned, name)
		}
	}
	names := make([]string, 0, len(planned))
	for n := range planned {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		lc := planned[name]
		dst := stageDir + "/" + name
		if err := site.FS().WriteFile(dst, lc.Data); err != nil {
			pred.UnresolvedLibs[name] = "staging failed: " + err.Error()
			continue
		}
		for k, v := range lc.Attrs {
			if err := site.FS().SetAttr(dst, k, v); err != nil {
				pred.UnresolvedLibs[name] = "staging failed: " + err.Error()
				break
			}
		}
		pred.ResolvedLibs = append(pred.ResolvedLibs, name)
	}
}

// targetHasLibrary checks whether a NEEDED name resolves at the target
// under the current environment, with the loader's class filtering.
func targetHasLibrary(site *sitemodel.Site, name string, requester *BinaryDescription) bool {
	dirs := append(envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH")), site.DefaultLibDirs()...)
	for _, dir := range dirs {
		p := dir + "/" + name
		data, err := site.FS().ReadFileShared(p)
		if err != nil {
			continue
		}
		f, err := elfimg.Parse(data)
		if err != nil {
			continue
		}
		if f.Machine == requester.ISA && f.Class.Bits() == requester.Bits {
			return true
		}
	}
	return false
}

// configScript emits the site-configuration script FEAM hands the user: the
// environment settings that make the predicted-ready execution happen.
func configScript(pred *Prediction, desc *BinaryDescription, cfg *Config) string {
	var b strings.Builder
	b.WriteString("#!/bin/sh\n")
	fmt.Fprintf(&b, "# FEAM site configuration for %s at %s\n", pred.Binary, pred.Site)
	if pred.SelectedStack != nil {
		s := pred.SelectedStack
		if s.DiscoveredVia == "modules" {
			fmt.Fprintf(&b, "module load %s\n", s.Key)
		} else if s.DiscoveredVia == "softenv" {
			fmt.Fprintf(&b, "soft add +%s\n", s.Key)
		} else {
			fmt.Fprintf(&b, "export PATH=%s/bin:$PATH\n", s.Prefix)
			fmt.Fprintf(&b, "export LD_LIBRARY_PATH=%s/lib:$LD_LIBRARY_PATH\n", s.Prefix)
		}
	}
	if len(pred.ResolvedLibs) > 0 {
		fmt.Fprintf(&b, "# %d shared libraries staged by the FEAM resolution model\n", len(pred.ResolvedLibs))
		fmt.Fprintf(&b, "export LD_LIBRARY_PATH=%s:$LD_LIBRARY_PATH\n", pred.StageDir)
	}
	launch := DefaultLaunchCommand
	if cfg != nil && desc.MPIImpl != "" {
		launch = cfg.LaunchCommand(desc.MPIImpl)
	}
	if desc.MPIImpl != "" {
		fmt.Fprintf(&b, "exec %s -n \"${NP:-4}\" %s\n", launch, pred.Binary)
	} else {
		fmt.Fprintf(&b, "exec %s\n", pred.Binary)
	}
	return b.String()
}
