package feam

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"feam/internal/abicheck"
	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/fault"
	"feam/internal/obs"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
	"feam/internal/vfs"
)

// EvalOptions configures a Target Evaluation Component run.
type EvalOptions struct {
	// Bundle enables the extended compatibility tests and the resolution
	// model (nil = basic prediction).
	Bundle *Bundle
	// Runner executes probe programs; without it, stack usability tests
	// are skipped and stack presence alone decides the MPI determinant.
	Runner ProgramRunner
	// Resolve applies the resolution model to missing shared libraries
	// (requires Bundle).
	Resolve bool
	// StageDir is where library copies are staged on the target
	// filesystem; derived from the binary content hash and site name when
	// empty.
	StageDir string
	// Config supplies launch-command overrides.
	Config *Config
	// ShallowResolution disables the recursive part of the resolution
	// model: copies are staged without checking or resolving their own
	// dependencies. This exists for the ablation study — the paper's model
	// is recursive (§IV) — and is never set in normal operation.
	ShallowResolution bool
	// Evaluators overrides the engine's determinant registry for this
	// evaluation (nil = the engine's default ladder). The ablation study
	// uses this to disable or reconfigure individual determinants.
	Evaluators []DeterminantEvaluator
}

// Prediction is the TEC's verdict for one binary at one target site.
type Prediction struct {
	// Binary and Site identify the evaluation.
	Binary string
	Site   string
	// Extended records whether source-phase information was available.
	Extended bool

	// Ready is the headline answer: is the site ready to execute the
	// binary without recompilation?
	Ready bool
	// Determinants holds the per-question outcomes.
	Determinants map[Determinant]DeterminantResult
	// Reasons lists human-readable failure explanations.
	Reasons []string

	// SelectedStack is the compatible, functioning stack the TEC chose.
	SelectedStack *StackInfo
	// MissingLibs lists shared libraries absent at the target before
	// resolution.
	MissingLibs []string
	// ResolvedLibs lists libraries fixed by staging bundle copies;
	// UnresolvedLibs maps still-missing names to the reason resolution
	// could not use a copy.
	ResolvedLibs   []string
	UnresolvedLibs map[string]string
	// StageDir is where resolved copies were placed.
	StageDir string

	// ConfigScript is the emitted site-configuration script that sets up
	// the environment for execution.
	ConfigScript string

	// ABI is the symbol-resolution report when the ABI determinant ran
	// (engines built WithABICheck, or an ABIEvaluator in
	// EvalOptions.Evaluators); nil under the paper's default ladder.
	ABI *abicheck.Report
}

// ExtraLibDirs returns the loader directories execution must add (the
// staged copies), if any.
func (p *Prediction) ExtraLibDirs() []string {
	if len(p.ResolvedLibs) == 0 {
		return nil
	}
	return []string{p.StageDir}
}

// StackKey returns the selected stack's key, or "".
func (p *Prediction) StackKey() string {
	if p.SelectedStack == nil {
		return ""
	}
	return p.SelectedStack.Key
}

func (p *Prediction) fail(d Determinant, reason string) {
	p.Determinants[d] = DeterminantResult{Outcome: Fail, Detail: reason}
	p.Reasons = append(p.Reasons, fmt.Sprintf("%s: %s", d, reason))
	p.Ready = false
}

func (p *Prediction) pass(d Determinant, detail string) {
	p.Determinants[d] = DeterminantResult{Outcome: Pass, Detail: detail}
}

// Evaluate runs the Target Evaluation Component through the package-level
// default engine. See Engine.Evaluate for the semantics; new code that
// evaluates repeatedly should hold its own Engine to share the caches
// deliberately.
func Evaluate(desc *BinaryDescription, appBytes []byte, env *EnvironmentDescription, site *sitemodel.Site, opts EvalOptions) (*Prediction, error) {
	return DefaultEngine().Evaluate(context.Background(), desc, appBytes, env, site, opts)
}

// interpFor returns the conventional program-interpreter path for an
// ISA/class pair — the value a binary built for that target would carry
// in PT_INTERP.
func interpFor(machine elfimg.Machine, bits int) string {
	switch machine {
	case elfimg.EM386:
		return "/lib/ld-linux.so.2"
	case elfimg.EMPPC:
		return "/lib/ld.so.1"
	case elfimg.EMPPC64:
		return "/lib64/ld64.so.1"
	case elfimg.EMAARCH64:
		return "/lib/ld-linux-aarch64.so.1"
	case elfimg.EMX8664:
		return "/lib64/ld-linux-x86-64.so.2"
	}
	// Unknown machine: fall back on the class-conventional glibc layout.
	if bits == 32 {
		return "/lib/ld-linux.so.2"
	}
	return "/lib64/ld-linux-x86-64.so.2"
}

// syntheticImage reconstructs a loader-probe ELF image from a description
// (used when the application binary is not present at the target site).
// The interpreter path follows the description's ISA — a synthetic probe
// for a 32-bit or non-x86 binary must not claim the x86-64 loader.
func syntheticImage(desc *BinaryDescription) ([]byte, error) {
	cls := elfimg.Class64
	if desc.Bits == 32 {
		cls = elfimg.Class32
	}
	return elfimg.Build(elfimg.Spec{
		Class:    cls,
		Machine:  desc.ISA,
		Type:     elfimg.TypeExec,
		Interp:   interpFor(desc.ISA, desc.Bits),
		Needed:   desc.Needed,
		VerNeeds: desc.VerNeeds,
	})
}

// selectStack finds a compatible, functioning MPI stack. Candidates share
// the binary's implementation; those matching the build compiler family are
// preferred. Each candidate is validated with probe programs: a natively
// compiled hello world when the site has the stack's compiler, plus the
// bundle's source-site hello world for extended cross-compatibility tests.
func selectStack(ec *EvalContext, presenceOnly bool) (*StackInfo, string) {
	desc, env := ec.Desc, ec.Env
	candidates := env.FindStacks(desc.MPIImpl)
	if len(candidates) == 0 {
		return nil, fmt.Sprintf("no %s installation available at site", desc.MPIImpl)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		pi := compilerFamilyOf(desc.BuildComment) == candidates[i].CompilerFamily
		pj := compilerFamilyOf(desc.BuildComment) == candidates[j].CompilerFamily
		return pi && !pj
	})
	var failures []string
	for i := range candidates {
		cand := &candidates[i]
		ok, detail := testStack(ec, cand, presenceOnly)
		if ok {
			return cand, fmt.Sprintf("stack %s selected (%s)", cand.Key, detail)
		}
		failures = append(failures, fmt.Sprintf("%s: %s", cand.Key, detail))
	}
	return nil, "no functioning compatible stack: " + strings.Join(failures, "; ")
}

// compilerFamilyOf extracts the compiler family from a .comment provenance
// string.
func compilerFamilyOf(comment string) string {
	switch {
	case strings.HasPrefix(comment, "GCC:"):
		return "gnu"
	case strings.HasPrefix(comment, "Intel"):
		return "intel"
	case strings.HasPrefix(comment, "PGI"):
		return "pgi"
	default:
		return ""
	}
}

// runProbe executes a probe program through an open probe session, under
// the engine's retry policy: transient failures (batch-system wobble,
// injected transient faults) are retried with backoff; permanent failures
// and successes return immediately. Every attempt emits one probe span;
// retries are events on the enclosing span, carrying the nominal backoff
// about to be slept. Runners that classify their own failures do so inside
// the session; legacy (bool, string) runners are classified from the
// output text by fault.ClassifyDetail in the session adapter.
func runProbe(ec *EvalContext, pb fault.ProbeBatch, art *toolchain.Artifact, stackKey string, extraLibDirs []string) fault.ProbeResult {
	site := ec.Site
	policy := ec.Engine.RetryPolicy()
	var res fault.ProbeResult
	for attempt := 1; ; attempt++ {
		sp := ec.Engine.tracer.Start(obs.OpProbe,
			obs.WithParent(ec.span), obs.WithSite(site.Name),
			obs.WithAttr(obs.AttrStack, stackKey),
			obs.WithAttr(obs.AttrAttempt, strconv.Itoa(attempt)))
		res = pb.RunProbe(ec.Context, art, extraLibDirs)
		sp.SetAttr(obs.AttrSuccess, strconv.FormatBool(res.Success))
		if !res.Success {
			sp.SetAttr(obs.AttrDetail, res.Detail)
		}
		sp.End(nil)
		if res.Success || !res.Transient || attempt >= policy.Attempts() {
			return res
		}
		backoff := policy.Backoff(attempt)
		ec.span.Event(obs.EvProbeRetry,
			obs.AttrStack, stackKey,
			obs.AttrAttempt, strconv.Itoa(attempt),
			obs.AttrBackoffNS, strconv.FormatInt(int64(backoff), 10))
		if fault.Sleep(ec.Context, backoff) != nil {
			return res
		}
	}
}

// testStack checks that a candidate stack actually functions by running
// hello-world probes under it (§III.B: advertised stacks can be
// misconfigured and unusable).
func testStack(ec *EvalContext, cand *StackInfo, presenceOnly bool) (bool, string) {
	opts, site := ec.Opts, ec.Site
	if presenceOnly || opts.Runner == nil {
		return true, "presence only (no probe runner)"
	}
	snap := site.SnapshotEnv()
	defer site.RestoreEnv(snap)
	loadStackEnv(site, cand)
	// One probe session per candidate: the runner's per-session setup
	// (environment activation, submission-script template validation) is
	// paid once and shared by both hello-world probes below.
	pb := fault.OpenBatch(ec.Context, opts.Runner, site, cand.Key)
	defer pb.Close()

	tested := false
	// Native compile test: possible when the stack's compiler is present.
	if family, ok := toolchain.FamilyFromKey(cand.CompilerFamily); ok {
		if _, found := toolchain.FindCompiler(site, family); found {
			rec := stackRecordFromInfo(cand)
			hello, err := toolchain.CompileHello(rec, site)
			if err == nil {
				res := runProbe(ec, pb, hello, cand.Key, nil)
				if !res.Success {
					return false, "native hello world failed: " + res.Detail
				}
				tested = true
			}
		}
	}
	// Extended test: the source site's hello world under this stack. A
	// failure classified as a missing shared library does not condemn the
	// stack — missing libraries are the shared-library determinant's
	// business and the resolution model may still fix them; crashes and
	// launch failures (ABI breaks, symbol-version mismatches, misconfigured
	// stacks) do.
	if opts.Bundle != nil && opts.Bundle.MPIHello != nil {
		res := runProbe(ec, pb, opts.Bundle.MPIHello, cand.Key, nil)
		if !res.Success && !res.MissingLib {
			return false, "source-site hello world failed: " + res.Detail
		}
		tested = true
	}
	if !tested {
		return true, "presence only (no testable probe)"
	}
	if opts.Bundle != nil {
		return true, "native and source hello worlds pass"
	}
	return true, "native hello world passes"
}

// stackRecordFromInfo converts discovered stack information into the record
// form the toolchain consumes. Every field is EDC-discoverable; no ground
// truth is involved.
func stackRecordFromInfo(info *StackInfo) *sitemodel.StackRecord {
	return &sitemodel.StackRecord{
		Key:             info.Key,
		Impl:            info.Impl,
		ImplVersion:     info.ImplVersion,
		CompilerFamily:  info.CompilerFamily,
		CompilerVersion: info.CompilerVersion,
		Prefix:          info.Prefix,
	}
}

// loadStackEnv activates a stack in the site environment the way `module
// load` (or a manual PATH/LD_LIBRARY_PATH export) would.
func loadStackEnv(site *sitemodel.Site, stack *StackInfo) {
	if stack == nil {
		return
	}
	envmgmt.PrependPathEntry(site, "PATH", stack.Prefix+"/bin")
	envmgmt.PrependPathEntry(site, "LD_LIBRARY_PATH", stack.Prefix+"/lib")
}

// resolveMissing applies the resolution model (§IV): for every missing
// shared library, the prediction model is applied recursively to the
// bundled copy — ISA, C library requirement, and the copy's own shared
// library dependencies (which may recursively require further copies).
// Usable copies are staged at the target and exposed via the loader path.
//
// Staging is transactional: the whole plan is written into a temporary
// directory and published into StageDir with an atomic rename, or rolled
// back on fault — a failed run never leaves a half-populated StageDir.
func resolveMissing(ec *EvalContext, missing []string, shallow bool) {
	pred, env, site, opts := ec.Pred, ec.Env, ec.Site, ec.Opts
	stageDir := opts.StageDir
	if stageDir == "" {
		stageDir = deriveStageDir(ec.Desc, env.SiteName)
	}
	pred.StageDir = stageDir

	snap := site.SnapshotEnv()
	loadStackEnv(site, pred.SelectedStack)
	defer site.RestoreEnv(snap)

	planned := map[string]*LibraryCopy{}
	// requiredBy records reverse dependency edges (dep -> planned copies
	// that need it) so an unresolvable dependency can evict its dependents
	// transitively.
	requiredBy := map[string][]string{}
	pending := append([]string(nil), missing...)
	const maxPlanned = 256
	for len(pending) > 0 {
		name := pending[0]
		pending = pending[1:]
		if _, done := planned[name]; done {
			continue
		}
		if _, bad := pred.UnresolvedLibs[name]; bad {
			continue
		}
		copyLib := opts.Bundle.FindLibrary(name)
		if copyLib == nil {
			pred.UnresolvedLibs[name] = "no copy in bundle"
			continue
		}
		// Recursive prediction on the copy: ISA determinant.
		if copyLib.Desc.ISA != env.ISA || copyLib.Desc.Bits != env.Bits {
			pred.UnresolvedLibs[name] = fmt.Sprintf("copy is %s, site is %d-bit %s",
				copyLib.Desc.Format, env.Bits, env.UnameProcessor)
			continue
		}
		// C library determinant.
		if !copyLib.Desc.RequiredGlibc.IsZero() && !env.Glibc.IsZero() &&
			env.Glibc.Less(copyLib.Desc.RequiredGlibc) {
			pred.UnresolvedLibs[name] = fmt.Sprintf("copy requires glibc %s, site has %s",
				copyLib.Desc.RequiredGlibc, env.Glibc)
			continue
		}
		if len(planned) >= maxPlanned {
			pred.UnresolvedLibs[name] = "resolution plan too large"
			continue
		}
		planned[name] = copyLib
		if shallow {
			continue
		}
		// Shared library determinant, recursively: the copy's own
		// dependencies must be present at the target or resolvable too.
		for _, dep := range copyLib.Desc.Needed {
			if dep == name {
				continue
			}
			if _, already := planned[dep]; already {
				requiredBy[dep] = append(requiredBy[dep], name)
				continue
			}
			if targetHasLibrary(site, dep, copyLib.Desc) {
				continue
			}
			requiredBy[dep] = append(requiredBy[dep], name)
			pending = append(pending, dep)
		}
	}

	// Transitive poisoning: a planned copy whose dependency chain bottoms
	// out in an unresolvable library cannot load either. Walk the reverse
	// edges from every unresolvable name and evict dependents recursively —
	// staging them would publish copies the loader can never satisfy.
	evictQueue := make([]string, 0, len(pred.UnresolvedLibs))
	for n := range pred.UnresolvedLibs {
		evictQueue = append(evictQueue, n)
	}
	sort.Strings(evictQueue)
	for len(evictQueue) > 0 {
		bad := evictQueue[0]
		evictQueue = evictQueue[1:]
		for _, parent := range requiredBy[bad] {
			if _, isPlanned := planned[parent]; !isPlanned {
				continue
			}
			delete(planned, parent)
			pred.UnresolvedLibs[parent] = "copy depends on unresolvable " + bad
			evictQueue = append(evictQueue, parent)
		}
	}

	names := make([]string, 0, len(planned))
	for n := range planned {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return
	}
	stagePlan(ec, stageDir, names, planned)
}

// stagePlan writes a resolution plan to the target transactionally: every
// copy lands in a temporary sibling directory first, then the whole set is
// published with RemoveAll+Rename. Any permanent fault (or a transient one
// that outlives the retry budget) rolls the transaction back, marks the
// whole plan unresolved, and leaves no trace under StageDir.
func stagePlan(ec *EvalContext, stageDir string, names []string, planned map[string]*LibraryCopy) {
	pred, site := ec.Pred, ec.Site
	fs := site.FS()
	tmp := stageDir + ".staging"
	// The staging span wraps the whole transaction; while it runs it is the
	// parent for every staging operation and retry event underneath.
	sp := ec.Engine.tracer.Start(obs.OpStaging,
		obs.WithParent(ec.span), obs.WithSite(site.Name),
		obs.WithAttr(obs.AttrDir, stageDir),
		obs.WithAttr(obs.AttrLibs, strconv.Itoa(len(names))))
	prev := ec.span
	ec.span = sp
	defer func() { ec.span = prev }()
	rollback := func(reason string, err error) {
		failStaging(ec, names, reason)
		sp.SetAttr(obs.AttrCommitted, "false")
		sp.End(err)
	}
	// Clear debris from an earlier aborted transaction before writing.
	if err := retryFSOp(ec, tmp, func() error { return fs.RemoveAll(tmp) }); err != nil {
		rollback("staging setup failed: "+err.Error(), err)
		return
	}
	for _, name := range names {
		if err := stageOne(ec, tmp, name, planned[name]); err != nil {
			fs.RemoveAll(tmp)
			rollback(fmt.Sprintf("staging rolled back (fault writing %s: %v)", name, err), err)
			return
		}
	}
	if err := commitStage(ec, tmp, stageDir); err != nil {
		fs.RemoveAll(tmp)
		rollback("staging commit failed: "+err.Error(), err)
		return
	}
	pred.ResolvedLibs = append(pred.ResolvedLibs, names...)
	sp.SetAttr(obs.AttrCommitted, "true")
	sp.End(nil)
}

// failStaging records a rolled-back staging transaction: every planned
// library becomes unresolved with the shared reason.
func failStaging(ec *EvalContext, names []string, reason string) {
	for _, name := range names {
		ec.Pred.UnresolvedLibs[name] = reason
	}
}

// retryFSOp runs one staging filesystem operation under the engine's
// transient-retry policy. Each attempt is a staging_op span; each retry is
// an event on the enclosing staging span carrying the nominal backoff.
func retryFSOp(ec *EvalContext, path string, op func() error) error {
	site := ec.Site
	parent := ec.span
	tracer := ec.Engine.tracer
	_, err := fault.RetryWithHook(ec.Context, ec.Engine.RetryPolicy(),
		func(attempt int, backoff time.Duration) {
			parent.Event(obs.EvStagingRetry,
				obs.AttrPath, path,
				obs.AttrAttempt, strconv.Itoa(attempt),
				obs.AttrBackoffNS, strconv.FormatInt(int64(backoff), 10))
		},
		func() error {
			sp := tracer.Start(obs.OpStagingOp,
				obs.WithParent(parent), obs.WithSite(site.Name),
				obs.WithAttr(obs.AttrPath, path))
			err := op()
			sp.End(err)
			return err
		})
	return err
}

// stageOne writes one library copy (content plus attributes) into the
// staging directory, retrying transient faults under the engine's policy.
func stageOne(ec *EvalContext, tmp, name string, lc *LibraryCopy) error {
	dst := tmp + "/" + name
	return retryFSOp(ec, dst, func() error { return writeCopy(ec.Site.FS(), dst, lc) })
}

// writeCopy writes one library copy's data and attributes. Attributes go
// in sorted order so fault-injection sequences are deterministic.
func writeCopy(fs *vfs.FS, dst string, lc *LibraryCopy) error {
	if err := fs.WriteFile(dst, lc.Data); err != nil {
		return err
	}
	keys := make([]string, 0, len(lc.Attrs))
	for k := range lc.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := fs.SetAttr(dst, k, lc.Attrs[k]); err != nil {
			return err
		}
	}
	return nil
}

// commitStage atomically publishes a fully staged temporary directory as
// StageDir, retrying transient faults under the engine's policy.
func commitStage(ec *EvalContext, tmp, stageDir string) error {
	fs := ec.Site.FS()
	return retryFSOp(ec, stageDir, func() error {
		if err := fs.RemoveAll(stageDir); err != nil {
			return err
		}
		return fs.Rename(tmp, stageDir)
	})
}

// targetHasLibrary checks whether a NEEDED name resolves at the target
// under the current environment, with the loader's class filtering.
func targetHasLibrary(site *sitemodel.Site, name string, requester *BinaryDescription) bool {
	dirs := append(envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH")), site.DefaultLibDirs()...)
	for _, dir := range dirs {
		p := dir + "/" + name
		data, err := site.FS().ReadFileShared(p)
		if err != nil {
			continue
		}
		f, err := elfimg.Parse(data)
		if err != nil {
			continue
		}
		if f.Machine == requester.ISA && f.Class.Bits() == requester.Bits {
			return true
		}
	}
	return false
}

// shellQuote wraps a string in single quotes for safe use as a shell
// word — binary names with spaces or metacharacters must not be split or
// expanded by the emitted configuration script.
func shellQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

// configScript emits the site-configuration script FEAM hands the user: the
// environment settings that make the predicted-ready execution happen.
func configScript(pred *Prediction, desc *BinaryDescription, cfg *Config) string {
	var b strings.Builder
	b.WriteString("#!/bin/sh\n")
	fmt.Fprintf(&b, "# FEAM site configuration for %s at %s\n", pred.Binary, pred.Site)
	if pred.SelectedStack != nil {
		s := pred.SelectedStack
		if s.DiscoveredVia == "modules" {
			fmt.Fprintf(&b, "module load %s\n", s.Key)
		} else if s.DiscoveredVia == "softenv" {
			fmt.Fprintf(&b, "soft add +%s\n", s.Key)
		} else {
			fmt.Fprintf(&b, "export PATH=%s/bin:$PATH\n", s.Prefix)
			fmt.Fprintf(&b, "export LD_LIBRARY_PATH=%s/lib:$LD_LIBRARY_PATH\n", s.Prefix)
		}
	}
	if len(pred.ResolvedLibs) > 0 {
		fmt.Fprintf(&b, "# %d shared libraries staged by the FEAM resolution model\n", len(pred.ResolvedLibs))
		fmt.Fprintf(&b, "export LD_LIBRARY_PATH=%s:$LD_LIBRARY_PATH\n", pred.StageDir)
	}
	launch := DefaultLaunchCommand
	if cfg != nil && desc.MPIImpl != "" {
		launch = cfg.LaunchCommand(desc.MPIImpl)
	}
	if desc.MPIImpl != "" {
		fmt.Fprintf(&b, "exec %s -n \"${NP:-4}\" %s\n", launch, shellQuote(pred.Binary))
	} else {
		fmt.Fprintf(&b, "exec %s\n", shellQuote(pred.Binary))
	}
	return b.String()
}
