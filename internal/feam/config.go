package feam

import (
	"fmt"
	"strings"

	"feam/internal/batch"
)

// Config is the user-supplied configuration file. The paper keeps FEAM's
// required user input minimal: a serial and a parallel submission script for
// the site (the only site knowledge FEAM does not discover itself), which
// phase to run, the binary location when applicable, and optional per-MPI
// launch command overrides (mpiexec is the default).
type Config struct {
	// Phase is "source" or "target".
	Phase string
	// BinaryPath locates the application binary (optional in a target
	// phase when a bundle is supplied).
	BinaryPath string
	// BundlePath locates a source-phase bundle to use (optional).
	BundlePath string
	// SerialScript and ParallelScript are submission script templates
	// containing the %CMD% placeholder.
	SerialScript   string
	ParallelScript string
	// MpiexecByImpl overrides the launch command per implementation key.
	MpiexecByImpl map[string]string
}

// DefaultLaunchCommand is used when no override is configured (§V.C).
const DefaultLaunchCommand = "mpiexec"

// LaunchCommand returns the launch command for an implementation.
func (c *Config) LaunchCommand(impl string) string {
	if cmd, ok := c.MpiexecByImpl[impl]; ok && cmd != "" {
		return cmd
	}
	return DefaultLaunchCommand
}

// Validate checks the configuration for a runnable phase.
func (c *Config) Validate() error {
	switch c.Phase {
	case "source":
		if c.BinaryPath == "" {
			return fmt.Errorf("%w: source phase requires a binary location", ErrBadConfig)
		}
	case "target":
		if c.BinaryPath == "" && c.BundlePath == "" {
			return fmt.Errorf("%w: target phase requires a binary or a bundle", ErrBadConfig)
		}
	default:
		return fmt.Errorf("%w: phase must be \"source\" or \"target\", got %q", ErrBadConfig, c.Phase)
	}
	if c.SerialScript == "" || c.ParallelScript == "" {
		return fmt.Errorf("%w: serial and parallel submission scripts are required", ErrBadConfig)
	}
	if !strings.Contains(c.SerialScript, batch.CmdPlaceholder) ||
		!strings.Contains(c.ParallelScript, batch.CmdPlaceholder) {
		return fmt.Errorf("%w: submission scripts must contain the %s placeholder", ErrBadConfig, batch.CmdPlaceholder)
	}
	// The scripts must parse under a known resource manager.
	if _, err := batch.Parse(c.SerialScript); err != nil {
		return fmt.Errorf("%w: serial script: %w", ErrBadConfig, err)
	}
	if _, err := batch.Parse(c.ParallelScript); err != nil {
		return fmt.Errorf("%w: parallel script: %w", ErrBadConfig, err)
	}
	return nil
}

// ParseConfig reads the key = value configuration format:
//
//	phase = target
//	binary = /home/user/bt.A.4
//	serial_script = <<EOF ... EOF   (heredoc blocks for scripts)
//	mpiexec.mvapich2 = mpirun_rsh
func ParseConfig(text string) (*Config, error) {
	cfg := &Config{MpiexecByImpl: map[string]string{}}
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("%w: line %d: missing '=': %q", ErrBadConfig, i+1, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		// Heredoc blocks for multi-line script values.
		if strings.HasPrefix(val, "<<") {
			marker := strings.TrimSpace(strings.TrimPrefix(val, "<<"))
			if marker == "" {
				return nil, fmt.Errorf("%w: line %d: empty heredoc marker", ErrBadConfig, i+1)
			}
			var body []string
			j := i + 1
			for ; j < len(lines); j++ {
				if strings.TrimSpace(lines[j]) == marker {
					break
				}
				body = append(body, lines[j])
			}
			if j == len(lines) {
				return nil, fmt.Errorf("%w: line %d: unterminated heredoc %q", ErrBadConfig, i+1, marker)
			}
			val = strings.Join(body, "\n")
			i = j
		}
		switch {
		case key == "phase":
			cfg.Phase = val
		case key == "binary":
			cfg.BinaryPath = val
		case key == "bundle":
			cfg.BundlePath = val
		case key == "serial_script":
			cfg.SerialScript = val
		case key == "parallel_script":
			cfg.ParallelScript = val
		case strings.HasPrefix(key, "mpiexec."):
			cfg.MpiexecByImpl[strings.TrimPrefix(key, "mpiexec.")] = val
		default:
			return nil, fmt.Errorf("%w: unknown key %q", ErrBadConfig, key)
		}
	}
	return cfg, nil
}
