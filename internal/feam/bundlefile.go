package feam

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"

	"feam/internal/elfimg"
	"feam/internal/libver"
	"feam/internal/toolchain"
	"feam/internal/workload"
)

func elfVerNeed(file string, versions []string) elfimg.VerNeed {
	return elfimg.VerNeed{File: file, Versions: versions}
}

// Bundle wire format. The paper: "The output from a source phase is bundled
// for the user and must be copied to each target site if it is to be used
// in a target phase." The format is a self-contained archive:
//
//	magic "FEAMBNDL" | format version u16 | section count u32
//	per section: tag u8 | name length u16 | name | body length u32 | body
//	trailer: CRC-32 (IEEE) of everything before it
//
// Section tags: 'M' metadata (key=value lines), 'D' application
// description, 'L' library copy (name = NEEDED name; body = attrs block +
// description + raw ELF), 'H' hello artifact, 'A' application binary.
const (
	bundleMagic   = "FEAMBNDL"
	bundleVersion = 1
)

const (
	secMeta        = 'M'
	secDescription = 'D'
	secLibrary     = 'L'
	secHello       = 'H'
	secAppBinary   = 'A'
)

// EncodeBundle serializes a bundle to its portable archive form.
func EncodeBundle(b *Bundle) ([]byte, error) {
	if b == nil || b.App == nil {
		return nil, fmt.Errorf("%w: cannot encode an empty bundle", ErrBadBundle)
	}
	var sections []section

	meta := fmt.Sprintf("source-site=%s\nsource-glibc=%s\nsource-stack=%s\n",
		b.SourceSite, b.SourceGlibc, b.SourceStack)
	sections = append(sections, section{tag: secMeta, name: "meta", body: []byte(meta)})

	appDesc, err := encodeDescription(b.App)
	if err != nil {
		return nil, err
	}
	sections = append(sections, section{tag: secDescription, name: b.App.Name, body: appDesc})

	for _, lc := range b.Libs {
		body, err := encodeLibraryCopy(lc)
		if err != nil {
			return nil, err
		}
		sections = append(sections, section{tag: secLibrary, name: lc.Name, body: body})
	}
	if b.MPIHello != nil {
		body, err := encodeArtifact(b.MPIHello)
		if err != nil {
			return nil, err
		}
		sections = append(sections, section{tag: secHello, name: "mpi-hello", body: body})
	}
	if b.SerialHello != nil {
		body, err := encodeArtifact(b.SerialHello)
		if err != nil {
			return nil, err
		}
		sections = append(sections, section{tag: secHello, name: "serial-hello", body: body})
	}
	if len(b.AppBytes) > 0 {
		sections = append(sections, section{tag: secAppBinary, name: b.App.Name, body: b.AppBytes})
	}

	var out bytes.Buffer
	out.WriteString(bundleMagic)
	writeU16(&out, bundleVersion)
	writeU32(&out, uint32(len(sections)))
	for _, s := range sections {
		out.WriteByte(s.tag)
		if len(s.name) > 0xffff {
			return nil, fmt.Errorf("%w: section name too long", ErrBadBundle)
		}
		writeU16(&out, uint16(len(s.name)))
		out.WriteString(s.name)
		writeU32(&out, uint32(len(s.body)))
		out.Write(s.body)
	}
	crc := crc32.ChecksumIEEE(out.Bytes())
	writeU32(&out, crc)
	return out.Bytes(), nil
}

// DecodeBundle parses an archive produced by EncodeBundle, verifying the
// checksum and reconstructing every component. Library descriptions are
// re-derived from the embedded ELF images (the archive stores evidence, not
// trust).
func DecodeBundle(data []byte) (*Bundle, error) {
	if len(data) < len(bundleMagic)+2+4+4 {
		return nil, fmt.Errorf("%w: archive too short", ErrBadBundle)
	}
	if string(data[:len(bundleMagic)]) != bundleMagic {
		return nil, fmt.Errorf("%w: not a FEAM bundle", ErrBadBundle)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch (corrupted in transit?)", ErrBadBundle)
	}
	r := &byteReader{data: body, off: len(bundleMagic)}
	version := r.u16()
	if version != bundleVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadBundle, version)
	}
	count := int(r.u32())
	b := &Bundle{}
	for i := 0; i < count; i++ {
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated archive: %w", ErrBadBundle, r.err)
		}
		tag := r.u8()
		name := string(r.bytes(int(r.u16())))
		secBody := r.bytes(int(r.u32()))
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated section %d: %w", ErrBadBundle, i, r.err)
		}
		switch tag {
		case secMeta:
			parseBundleMeta(b, string(secBody))
		case secDescription:
			desc, err := decodeDescription(secBody, name)
			if err != nil {
				return nil, err
			}
			b.App = desc
		case secLibrary:
			lc, err := decodeLibraryCopy(secBody, name)
			if err != nil {
				return nil, err
			}
			b.Libs = append(b.Libs, lc)
		case secHello:
			art, err := decodeArtifact(secBody)
			if err != nil {
				return nil, err
			}
			if name == "mpi-hello" {
				b.MPIHello = art
			} else {
				b.SerialHello = art
			}
		case secAppBinary:
			b.AppBytes = append([]byte(nil), secBody...)
		default:
			return nil, fmt.Errorf("%w: unknown section tag %q", ErrBadBundle, tag)
		}
	}
	if b.App == nil {
		return nil, fmt.Errorf("%w: archive lacks an application description", ErrBadBundle)
	}
	return b, nil
}

type section struct {
	tag  byte
	name string
	body []byte
}

func parseBundleMeta(b *Bundle, meta string) {
	for _, line := range bytes.Split([]byte(meta), []byte("\n")) {
		kv := bytes.SplitN(line, []byte("="), 2)
		if len(kv) != 2 {
			continue
		}
		switch string(kv[0]) {
		case "source-site":
			b.SourceSite = string(kv[1])
		case "source-glibc":
			if v, err := libver.ParseVersion(string(kv[1])); err == nil {
				b.SourceGlibc = v
			}
		case "source-stack":
			b.SourceStack = string(kv[1])
		}
	}
}

// encodeDescription stores the fields of a BinaryDescription that cannot be
// re-derived (the name) plus the raw ELF needed to re-derive the rest; for
// the application the bundle may omit the binary, so the description itself
// is serialized as key=value lines.
func encodeDescription(d *BinaryDescription) ([]byte, error) {
	var out bytes.Buffer
	fmt.Fprintf(&out, "name=%s\n", d.Name)
	fmt.Fprintf(&out, "content-hash=%s\n", d.ContentHash)
	fmt.Fprintf(&out, "format=%s\n", d.Format)
	fmt.Fprintf(&out, "isa=%d\n", d.ISA)
	fmt.Fprintf(&out, "bits=%d\n", d.Bits)
	fmt.Fprintf(&out, "type=%d\n", d.Type)
	fmt.Fprintf(&out, "soname=%s\n", d.Soname)
	fmt.Fprintf(&out, "required-glibc=%s\n", glibcOrEmpty(d.RequiredGlibc))
	fmt.Fprintf(&out, "mpi=%s\n", d.MPIImpl)
	fmt.Fprintf(&out, "build-comment=%s\n", d.BuildComment)
	fmt.Fprintf(&out, "build-os=%s\n", d.BuildOS)
	fmt.Fprintf(&out, "build-glibc=%s\n", glibcOrEmpty(d.BuildGlibc))
	for _, n := range d.Needed {
		fmt.Fprintf(&out, "needed=%s\n", n)
	}
	for _, vn := range d.VerNeeds {
		fmt.Fprintf(&out, "verneed=%s", vn.File)
		for _, v := range vn.Versions {
			fmt.Fprintf(&out, ",%s", v)
		}
		out.WriteByte('\n')
	}
	return out.Bytes(), nil
}

func glibcOrEmpty(v libver.Version) string {
	if v.IsZero() {
		return ""
	}
	return v.String()
}

func decodeDescription(body []byte, name string) (*BinaryDescription, error) {
	d := &BinaryDescription{Name: name}
	for _, line := range bytes.Split(body, []byte("\n")) {
		kv := bytes.SplitN(line, []byte("="), 2)
		if len(kv) != 2 {
			continue
		}
		key, val := string(kv[0]), string(kv[1])
		switch key {
		case "name":
			d.Name = val
		case "content-hash":
			d.ContentHash = val
		case "format":
			d.Format = val
		case "isa":
			fmt.Sscanf(val, "%d", &d.ISA)
		case "bits":
			fmt.Sscanf(val, "%d", &d.Bits)
		case "type":
			fmt.Sscanf(val, "%d", &d.Type)
		case "soname":
			d.Soname = val
		case "required-glibc":
			if val != "" {
				v, err := libver.ParseVersion(val)
				if err != nil {
					return nil, fmt.Errorf("%w: description: %w", ErrBadBundle, err)
				}
				d.RequiredGlibc = v
			}
		case "mpi":
			d.MPIImpl = val
		case "build-comment":
			d.BuildComment = val
		case "build-os":
			d.BuildOS = val
		case "build-glibc":
			if val != "" {
				if v, err := libver.ParseVersion(val); err == nil {
					d.BuildGlibc = v
				}
			}
		case "needed":
			d.Needed = append(d.Needed, val)
		case "verneed":
			parts := bytes.Split([]byte(val), []byte(","))
			if len(parts) >= 1 {
				vn := struct {
					File     string
					Versions []string
				}{File: string(parts[0])}
				for _, p := range parts[1:] {
					vn.Versions = append(vn.Versions, string(p))
				}
				d.VerNeeds = append(d.VerNeeds, elfVerNeed(vn.File, vn.Versions))
			}
		}
	}
	return d, nil
}

// encodeLibraryCopy: attrs block (key=value lines) | u32 attrs length
// prefix | origin path line | raw ELF bytes.
func encodeLibraryCopy(lc *LibraryCopy) ([]byte, error) {
	var attrs bytes.Buffer
	fmt.Fprintf(&attrs, "origin=%s\n", lc.OriginPath)
	akeys := make([]string, 0, len(lc.Attrs))
	for k := range lc.Attrs {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	for _, k := range akeys {
		// Values may contain newlines; quote them.
		fmt.Fprintf(&attrs, "attr:%s=%s\n", k, strconv.Quote(lc.Attrs[k]))
	}
	var out bytes.Buffer
	writeU32(&out, uint32(attrs.Len()))
	out.Write(attrs.Bytes())
	out.Write(lc.Data)
	return out.Bytes(), nil
}

func decodeLibraryCopy(body []byte, name string) (*LibraryCopy, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated library section %q", ErrBadBundle, name)
	}
	attrLen := int(binary.LittleEndian.Uint32(body))
	if 4+attrLen > len(body) {
		return nil, fmt.Errorf("%w: corrupt library section %q", ErrBadBundle, name)
	}
	lc := &LibraryCopy{Name: name}
	for _, line := range bytes.Split(body[4:4+attrLen], []byte("\n")) {
		kv := bytes.SplitN(line, []byte("="), 2)
		if len(kv) != 2 {
			continue
		}
		key, val := string(kv[0]), string(kv[1])
		switch {
		case key == "origin":
			lc.OriginPath = val
		case len(key) > 5 && key[:5] == "attr:":
			if lc.Attrs == nil {
				lc.Attrs = map[string]string{}
			}
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, fmt.Errorf("%w: library %q: corrupt attribute: %w", ErrBadBundle, name, err)
			}
			lc.Attrs[key[5:]] = unq
		}
	}
	lc.Data = append([]byte(nil), body[4+attrLen:]...)
	desc, err := DescribeBytes(lc.Data, name)
	if err != nil {
		return nil, fmt.Errorf("%w: library %q: %w", ErrBadBundle, name, err)
	}
	lc.Desc = desc
	return lc, nil
}

// encodeArtifact stores a probe program: ground-truth header lines then the
// ELF image. The ground truth is simulation bookkeeping that must survive
// the copy (it is a property of the binary's machine code); FEAM's
// prediction logic never reads it.
func encodeArtifact(a *toolchain.Artifact) ([]byte, error) {
	var hdr bytes.Buffer
	fmt.Fprintf(&hdr, "name=%s\n", a.Name)
	fmt.Fprintf(&hdr, "build-site=%s\n", a.Truth.BuildSite)
	fmt.Fprintf(&hdr, "stack=%s\n", a.Truth.StackKey)
	fmt.Fprintf(&hdr, "impl=%s\n", a.Truth.Impl)
	fmt.Fprintf(&hdr, "impl-version=%s\n", a.Truth.ImplVersion)
	fmt.Fprintf(&hdr, "mpi-epoch=%d\n", a.Truth.MPIABIEpoch)
	fmt.Fprintf(&hdr, "mpi-level=%d\n", a.Truth.MPILevel)
	fmt.Fprintf(&hdr, "compiler=%s/%s\n", a.Truth.CompilerFamily, a.Truth.CompilerVersion)
	fmt.Fprintf(&hdr, "feature-level=%d\n", a.Truth.FeatureLevel)
	fmt.Fprintf(&hdr, "build-glibc=%s\n", glibcOrEmpty(a.Truth.BuildGlibc))
	fmt.Fprintf(&hdr, "hello=%v\n", a.Truth.Hello)
	fmt.Fprintf(&hdr, "serial=%v\n", a.Truth.Serial)
	fmt.Fprintf(&hdr, "suite=%d\n", a.Truth.Suite)
	for so, e := range a.Truth.RuntimeEpochs {
		fmt.Fprintf(&hdr, "runtime-epoch=%s,%d\n", so, e)
	}
	var out bytes.Buffer
	writeU32(&out, uint32(hdr.Len()))
	out.Write(hdr.Bytes())
	out.Write(a.Bytes)
	return out.Bytes(), nil
}

func decodeArtifact(body []byte) (*toolchain.Artifact, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated artifact section", ErrBadBundle)
	}
	hdrLen := int(binary.LittleEndian.Uint32(body))
	if 4+hdrLen > len(body) {
		return nil, fmt.Errorf("%w: corrupt artifact section", ErrBadBundle)
	}
	a := &toolchain.Artifact{}
	for _, line := range bytes.Split(body[4:4+hdrLen], []byte("\n")) {
		kv := bytes.SplitN(line, []byte("="), 2)
		if len(kv) != 2 {
			continue
		}
		key, val := string(kv[0]), string(kv[1])
		switch key {
		case "name":
			a.Name = val
		case "build-site":
			a.Truth.BuildSite = val
		case "stack":
			a.Truth.StackKey = val
		case "impl":
			a.Truth.Impl = val
		case "impl-version":
			a.Truth.ImplVersion = val
		case "mpi-epoch":
			fmt.Sscanf(val, "%d", &a.Truth.MPIABIEpoch)
		case "mpi-level":
			fmt.Sscanf(val, "%d", &a.Truth.MPILevel)
		case "compiler":
			parts := bytes.SplitN([]byte(val), []byte("/"), 2)
			if len(parts) == 2 {
				a.Truth.CompilerFamily = string(parts[0])
				a.Truth.CompilerVersion = string(parts[1])
			}
		case "feature-level":
			fmt.Sscanf(val, "%d", &a.Truth.FeatureLevel)
		case "build-glibc":
			if val != "" {
				if v, err := libver.ParseVersion(val); err == nil {
					a.Truth.BuildGlibc = v
				}
			}
		case "hello":
			a.Truth.Hello = val == "true"
		case "serial":
			a.Truth.Serial = val == "true"
		case "suite":
			var s int
			fmt.Sscanf(val, "%d", &s)
			a.Truth.Suite = workload.Suite(s)
		case "runtime-epoch":
			parts := bytes.SplitN([]byte(val), []byte(","), 2)
			if len(parts) == 2 {
				if a.Truth.RuntimeEpochs == nil {
					a.Truth.RuntimeEpochs = map[string]int{}
				}
				var e int
				fmt.Sscanf(string(parts[1]), "%d", &e)
				a.Truth.RuntimeEpochs[string(parts[0])] = e
			}
		}
	}
	a.Bytes = append([]byte(nil), body[4+hdrLen:]...)
	return a, nil
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

type byteReader struct {
	data []byte
	off  int
	err  error
}

func (r *byteReader) u8() byte {
	if r.err != nil || r.off+1 > len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *byteReader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *byteReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		r.fail()
		return nil
	}
	v := r.data[r.off : r.off+n]
	r.off += n
	return v
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("unexpected end of data at offset %d", r.off)
	}
}
