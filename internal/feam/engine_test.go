package feam_test

import (
	"context"
	"sync"
	"testing"

	"feam/internal/feam"
)

// TestEngineEDCCache: repeat discovery of an unchanged site is served from
// the engine's cache (same pointer), and any environment or filesystem
// mutation produces a fresh survey.
func TestEngineEDCCache(t *testing.T) {
	site := minimalSite(t)
	ctx := context.Background()
	eng := feam.New()
	edcHits := eng.Metrics().Counter("edc_hits")
	edcMisses := eng.Metrics().Counter("edc_misses")

	env1, err := eng.Discover(ctx, site)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := eng.Discover(ctx, site)
	if err != nil {
		t.Fatal(err)
	}
	if env1 != env2 {
		t.Error("unchanged site should be served from the EDC cache")
	}
	if edcHits.Load() != 1 || edcMisses.Load() != 1 {
		t.Errorf("edc hits=%d misses=%d, want 1/1",
			edcHits.Load(), edcMisses.Load())
	}

	// Environment mutation changes the fingerprint.
	site.Setenv("MODULEPATH", "/tmp/elsewhere")
	env3, err := eng.Discover(ctx, site)
	if err != nil {
		t.Fatal(err)
	}
	if env3 == env2 {
		t.Error("env mutation should invalidate the cached description")
	}

	// Filesystem mutation bumps the vfs generation counter.
	if err := site.FS().WriteFile("/tmp/marker", []byte("x")); err != nil {
		t.Fatal(err)
	}
	env4, err := eng.Discover(ctx, site)
	if err != nil {
		t.Fatal(err)
	}
	if env4 == env3 {
		t.Error("fs mutation should invalidate the cached description")
	}

	// Explicit invalidation also forces a fresh survey.
	before := edcMisses.Load()
	eng.InvalidateSite(site.Name)
	if _, err := eng.Discover(ctx, site); err != nil {
		t.Fatal(err)
	}
	if edcMisses.Load() != before+1 {
		t.Error("InvalidateSite should force a cache miss")
	}
}

// TestEngineEDCCacheDistinctSites: two different Site objects sharing a
// name must never share cache entries, even if their fingerprints collide.
func TestEngineEDCCacheDistinctSites(t *testing.T) {
	a, b := minimalSite(t), minimalSite(t)
	ctx := context.Background()
	eng := feam.New()
	envA, err := eng.Discover(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	envB, err := eng.Discover(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if envA == envB {
		t.Error("distinct sites with the same name must not share a cache entry")
	}
}

// TestEngineBDCCache: describing the same bytes twice hits the binary
// description cache; different content or a different name misses.
func TestEngineBDCCache(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "ep")
	ctx := context.Background()
	eng := feam.New()

	d1, err := eng.Describe(ctx, art.Bytes, "ep.A")
	if err != nil {
		t.Fatal(err)
	}
	if d1.ContentHash == "" {
		t.Error("description should carry the binary's content hash")
	}
	d2, err := eng.Describe(ctx, art.Bytes, "ep.A")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("identical bytes+name should return the memoized description")
	}
	// Same bytes under a different name is a distinct BDC entry (the name
	// feeds stage-dir derivation) but shares the content hash.
	d3, err := eng.Describe(ctx, art.Bytes, "ep.B")
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 || d3.ContentHash != d1.ContentHash {
		t.Error("renamed binary should re-describe under the same content hash")
	}
	hits := eng.Metrics().Counter("bdc_hits").Load()
	misses := eng.Metrics().Counter("bdc_misses").Load()
	if hits != 1 || misses != 2 {
		t.Errorf("bdc hits=%d misses=%d, want 1/2", hits, misses)
	}
}

// TestEngineContextCancellation: a cancelled context aborts Describe,
// Discover and Evaluate with the context's error.
func TestEngineContextCancellation(t *testing.T) {
	tb := sharedTestbed(t)
	india := tb.ByName["india"]
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "ep")
	eng := feam.New()
	ctx, cancel := context.WithCancel(context.Background())

	desc, err := eng.Describe(ctx, art.Bytes, art.Name)
	if err != nil {
		t.Fatal(err)
	}
	env, err := eng.Discover(ctx, india)
	if err != nil {
		t.Fatal(err)
	}

	cancel()
	if _, err := eng.Describe(ctx, art.Bytes, "other-name"); err == nil {
		t.Error("Describe should fail after cancellation")
	}
	if _, err := eng.Discover(ctx, minimalSite(t)); err == nil {
		t.Error("Discover should fail after cancellation")
	}
	if _, err := eng.Evaluate(ctx, desc, art.Bytes, env, india, feam.EvalOptions{}); err == nil {
		t.Error("Evaluate should fail after cancellation")
	}
}

// TestEngineEvaluateNoInlineDeterminants: a custom evaluator list fully
// replaces the built-in pipeline — with an empty registry nothing is
// evaluated, proving Evaluate itself holds no determinant logic.
func TestEngineEvaluateNoInlineDeterminants(t *testing.T) {
	tb := sharedTestbed(t)
	india := tb.ByName["india"]
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "ep")
	ctx := context.Background()
	eng := feam.New()

	desc, err := eng.Describe(ctx, art.Bytes, art.Name)
	if err != nil {
		t.Fatal(err)
	}
	env, err := eng.Discover(ctx, india)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := eng.Evaluate(ctx, desc, art.Bytes, env, india,
		feam.EvalOptions{Evaluators: []feam.DeterminantEvaluator{}})
	if err != nil {
		t.Fatal(err)
	}
	for det, res := range pred.Determinants {
		if res.Outcome != feam.Unknown {
			t.Errorf("determinant %v evaluated with an empty registry: %v", det, res.Outcome)
		}
	}
	// A single-evaluator registry touches exactly its own determinant.
	pred, err = eng.Evaluate(ctx, desc, art.Bytes, env, india,
		feam.EvalOptions{Evaluators: []feam.DeterminantEvaluator{feam.ISAEvaluator{}}})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Determinants[feam.DetISA].Outcome != feam.Pass {
		t.Errorf("ISA should pass: %+v", pred.Determinants[feam.DetISA])
	}
	if pred.Determinants[feam.DetMPIStack].Outcome != feam.Unknown {
		t.Error("MPI determinant must stay untouched without its evaluator")
	}
}

// TestEngineConcurrentSharedUse: many goroutines share one engine for
// discovery, description and evaluation against the same sites. Run under
// -race this exercises the cache and metrics locking.
func TestEngineConcurrentSharedUse(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "ep")
	ctx := context.Background()
	eng := feam.New()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, site := range tb.Sites {
				lock := eng.SiteLock(site.Name)
				lock.Lock()
				env, err := eng.Discover(ctx, site)
				if err != nil {
					lock.Unlock()
					errs <- err
					return
				}
				desc, err := eng.Describe(ctx, art.Bytes, art.Name)
				if err != nil {
					lock.Unlock()
					errs <- err
					return
				}
				if _, err := eng.Evaluate(ctx, desc, art.Bytes, env, site, feam.EvalOptions{}); err != nil {
					lock.Unlock()
					errs <- err
					return
				}
				lock.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := eng.Metrics().Counter("evaluations").Load(); got != int64(8*len(tb.Sites)) {
		t.Errorf("evaluations = %d, want %d", got, 8*len(tb.Sites))
	}
	if eng.Metrics().Counter("edc_hits").Load() == 0 {
		t.Error("concurrent re-discovery should hit the EDC cache")
	}
}

// TestBundleRoundTripContentHash: the content hash survives bundle
// encode/decode so staged-directory derivation is stable across transport.
func TestBundleRoundTripContentHash(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "india", "openmpi-1.4-gnu", "ep")
	desc, err := feam.DescribeBytes(art.Bytes, "ep.hash")
	if err != nil {
		t.Fatal(err)
	}
	data, err := feam.EncodeBundle(&feam.Bundle{App: desc})
	if err != nil {
		t.Fatal(err)
	}
	back, err := feam.DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.App.ContentHash != desc.ContentHash || back.App.ContentHash == "" {
		t.Errorf("content hash lost in round trip: %q vs %q", back.App.ContentHash, desc.ContentHash)
	}
}
