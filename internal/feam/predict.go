package feam

import (
	"context"
	"fmt"
	"strconv"

	"feam/internal/obs"
	"feam/internal/sitemodel"
)

// EvalRequest names the inputs of one Target Evaluation Component run.
// Site is required. The binary may arrive three ways, resolved in this
// order: an explicit description (Desc), raw bytes (Binary, described
// through the memoized BDC under BinaryName), or the description bundled
// in Options.Bundle. Env may be nil; Predict then surveys Site through
// the memoized EDC.
type EvalRequest struct {
	// Desc is the binary description; nil derives it from Binary or the
	// bundle.
	Desc *BinaryDescription
	// Binary is the application image when present at the target; nil in
	// the paper's "binary not present" mode.
	Binary []byte
	// BinaryName is the name Binary is described under (defaults to the
	// bundle's or an anonymous placeholder).
	BinaryName string
	// Env is the site's environment description; nil surveys Site.
	Env *EnvironmentDescription
	// Site is the target site (required).
	Site *sitemodel.Site
	// Options configures the evaluation.
	Options EvalOptions
}

// Predict runs the Target Evaluation Component for one request: each
// registered determinant evaluator (Options.Evaluators overrides the
// engine's registry) records its outcome on the prediction, and a Fail
// gates off the rest — the paper's cheap-checks-first ladder.
//
// The caller must hold SiteLock(site.Name) when the site is shared across
// goroutines; evaluation temporarily mutates the site environment while
// testing candidate stacks and stages library copies when resolving.
//
// When an evaluator errors, Predict returns the partial prediction built
// so far (Ready=false, with the determinant trail up to the failure)
// alongside an error wrapping ErrProbeFailed, so callers ranking many
// sites can keep the trail for diagnosis instead of discarding the whole
// assessment. A failed survey of Site wraps ErrSiteUnavailable; an
// unsatisfiable request wraps ErrNoEnvironment.
func (e *Engine) Predict(ctx context.Context, req EvalRequest) (*Prediction, error) {
	if req.Site == nil {
		return nil, fmt.Errorf("%w: request names no site", ErrNoEnvironment)
	}
	desc := req.Desc
	if desc == nil {
		switch {
		case req.Binary != nil:
			name := req.BinaryName
			if name == "" {
				name = "a.out"
			}
			d, err := e.Describe(ctx, req.Binary, name)
			if err != nil {
				return nil, err
			}
			desc = d
		case req.Options.Bundle != nil && req.Options.Bundle.App != nil:
			desc = req.Options.Bundle.App
			if req.Binary == nil {
				req.Binary = req.Options.Bundle.AppBytes
			}
		default:
			return nil, fmt.Errorf("%w: request carries no binary description, bytes, or bundle", ErrNoEnvironment)
		}
	}
	env := req.Env
	if env == nil {
		surveyed, err := e.Discover(ctx, req.Site)
		if err != nil {
			return nil, fmt.Errorf("%w: survey of %s failed: %w", ErrSiteUnavailable, req.Site.Name, err)
		}
		env = surveyed
	}

	opts := req.Options
	pred := &Prediction{
		Binary:         desc.Name,
		Site:           env.SiteName,
		Extended:       opts.Bundle != nil,
		Ready:          true,
		Determinants:   map[Determinant]DeterminantResult{},
		UnresolvedLibs: map[string]string{},
	}
	for _, d := range Determinants() {
		pred.Determinants[d] = DeterminantResult{Outcome: Unknown}
	}

	sp := e.tracer.Start(obs.OpEvaluate,
		obs.WithParent(obs.SpanFromContext(ctx)),
		obs.WithBinary(desc.Name), obs.WithSite(env.SiteName))
	endEval := func(ready bool, err error) {
		sp.SetAttr(obs.AttrReady, strconv.FormatBool(ready))
		sp.End(err)
	}

	evals := opts.Evaluators
	if evals == nil {
		evals = e.defaultEvaluators()
	}
	ec := &EvalContext{
		Context:  ctx,
		Engine:   e,
		Desc:     desc,
		AppBytes: req.Binary,
		Env:      env,
		Site:     req.Site,
		Opts:     &opts,
		Pred:     pred,
	}
	for _, de := range evals {
		if err := ctx.Err(); err != nil {
			pred.Ready = false
			endEval(false, err)
			return pred, err
		}
		det := de.Determinant()
		dsp := e.tracer.Start(obs.OpDeterminant,
			obs.WithParent(sp), obs.WithDeterminant(det.String()),
			obs.WithBinary(desc.Name), obs.WithSite(env.SiteName))
		ec.span = dsp
		err := de.Evaluate(ec)
		ec.span = sp
		res := pred.Determinants[det]
		dsp.SetAttr("outcome", res.Outcome.String())
		dsp.End(err)
		if err != nil {
			pred.Ready = false
			if ctx.Err() == nil {
				err = fmt.Errorf("%w: determinant %s: %w", ErrProbeFailed, det, err)
			}
			endEval(false, err)
			return pred, err
		}
		if res.Outcome == Fail {
			endEval(false, nil)
			return pred, nil
		}
	}

	pred.ConfigScript = configScript(pred, desc, opts.Config)
	endEval(pred.Ready, nil)
	return pred, nil
}
