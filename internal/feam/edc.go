package feam

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"feam/internal/elfimg"
	"feam/internal/envmgmt"
	"feam/internal/ldso"
	"feam/internal/libver"
	"feam/internal/sitemodel"
)

// StackInfo is one MPI stack the EDC discovered at a site. Everything here
// is learned from the discovery surface (module keys, path names, wrapper
// banners) — never from the site's ground-truth registry.
type StackInfo struct {
	// Key is the canonical name, e.g. "openmpi-1.4-intel".
	Key string
	// Impl is the implementation key ("openmpi", "mpich2", "mvapich2").
	Impl string
	// ImplVersion is the release parsed from the key/path.
	ImplVersion string
	// CompilerFamily/CompilerVersion come from the key and the wrapper's
	// version banner.
	CompilerFamily  string
	CompilerVersion string
	// Prefix is the installation root.
	Prefix string
	// DiscoveredVia records the mechanism: "modules", "softenv", or
	// "path-search".
	DiscoveredVia string
}

// EnvironmentDescription is the EDC's output — the information Figure 4
// lists.
type EnvironmentDescription struct {
	SiteName string

	// ISA and Bits describe the hardware architecture (uname -p).
	ISA  elfimg.Machine
	Bits int
	// UnameProcessor is the raw processor string.
	UnameProcessor string

	// OSType/OSVersion come from /proc/version; Distro from /etc/*release.
	OSType    string
	OSVersion string
	Distro    string

	// Glibc is the C library version; GlibcSource records how it was
	// learned ("exec-banner" by running the C library, "api" from the
	// library's version definitions).
	Glibc       libver.Version
	GlibcSource string

	// EnvTool names the user-environment management tool found ("modules",
	// "softenv", or "" when none).
	EnvTool string
	// Available lists every discovered MPI stack.
	Available []StackInfo
	// Loaded is the currently selected stack, when one is active.
	Loaded *StackInfo
}

// FindStacks returns the available stacks using the given implementation.
func (e *EnvironmentDescription) FindStacks(impl string) []StackInfo {
	var out []StackInfo
	for _, s := range e.Available {
		if s.Impl == impl {
			out = append(out, s)
		}
	}
	return out
}

// Discover runs the Environment Discovery Component at a site. It is
// memoized through the package-level default engine: repeat surveys of an
// unchanged site return the cached description.
func Discover(site *sitemodel.Site) (*EnvironmentDescription, error) {
	return DefaultEngine().Discover(context.Background(), site)
}

// surveySite is the uncached survey: the system surface first (a failure
// there means the site is unreachable), then the sharded filesystem index,
// then the glibc and MPI-stack determinations merged out of it.
func (e *Engine) surveySite(ctx context.Context, site *sitemodel.Site) (*EnvironmentDescription, error) {
	env := &EnvironmentDescription{SiteName: site.Name}
	if err := e.discoverSystemCached(site, env); err != nil {
		return nil, err
	}
	shards, err := e.surveyShards(ctx, site)
	if err != nil {
		return nil, err
	}
	discoverGlibc(site, env, shards)
	e.discoverStacks(site, env, shards)
	return env, nil
}

// discoverSystem reads the uname surface, /proc/version and /etc/*release.
func discoverSystem(site *sitemodel.Site, env *EnvironmentDescription) error {
	raw, err := site.FS().ReadFile("/proc/sys/kernel/uname")
	if err != nil {
		return fmt.Errorf("%w: uname unavailable: %w", ErrSiteUnavailable, err)
	}
	fields := strings.Fields(string(raw))
	if len(fields) > 0 {
		env.UnameProcessor = fields[0]
	}
	switch env.UnameProcessor {
	case "x86_64":
		env.ISA, env.Bits = elfimg.EMX8664, 64
	case "i686", "i586", "i386":
		env.ISA, env.Bits = elfimg.EM386, 32
	case "ppc64":
		env.ISA, env.Bits = elfimg.EMPPC64, 64
	case "ppc":
		env.ISA, env.Bits = elfimg.EMPPC, 32
	default:
		return fmt.Errorf("%w: unrecognized processor %q", ErrSiteUnavailable, env.UnameProcessor)
	}
	if data, err := site.FS().ReadFile("/proc/version"); err == nil {
		f := strings.Fields(string(data))
		if len(f) >= 3 && f[0] == "Linux" && f[1] == "version" {
			env.OSType = "Linux"
			env.OSVersion = f[2]
		}
	}
	// Confirm distribution from /etc/*release files.
	for _, rel := range []string{"/etc/redhat-release", "/etc/centos-release", "/etc/SuSE-release", "/etc/lsb-release"} {
		if data, err := site.FS().ReadFile(rel); err == nil {
			env.Distro = strings.TrimSpace(strings.Split(string(data), "\n")[0])
			break
		}
	}
	return nil
}

// discoverGlibc determines the C library version: first by "executing" the
// C library binary and parsing its banner, then by falling back to the
// library's own version-definition table (the C library API path). The
// library is located through the shard index; a whole-filesystem search
// remains as the last resort for a C library living outside every
// discovery root.
func discoverGlibc(site *sitemodel.Site, env *EnvironmentDescription, shards []*shardRecord) {
	if lib, ok := findShardLib(shards, "libc.so.6"); ok {
		// The version was resolved at walk time (banner, then version
		// definitions); an empty source means neither technique worked.
		if lib.GlibcSource != "" {
			if v, err := libver.ParseVersion(lib.Glibc); err == nil {
				env.Glibc, env.GlibcSource = v, lib.GlibcSource
			}
		}
		return
	}
	// Last resort: a C library living outside every discovery root, found
	// by the legacy whole-filesystem search and resolved live.
	p, found := searchLibrary(site, "libc.so.6")
	if !found {
		return
	}
	if banner, ok := site.FS().Attr(p, sitemodel.AttrExecOutput); ok {
		if v, ok := parseGlibcBanner(banner); ok {
			env.Glibc, env.GlibcSource = v, "exec-banner"
			return
		}
	}
	if data, err := site.FS().ReadFileShared(p); err == nil {
		if f, err := elfimg.Parse(data); err == nil {
			if v := libver.HighestGlibc(f.VerDefs); !v.IsZero() {
				env.Glibc, env.GlibcSource = v, "api"
			}
		}
	}
}

// parseGlibcBanner extracts "2.5" from "GNU C Library stable release
// version 2.5, by ...". It scans in place rather than splitting the banner
// into fields: the call sits on the per-site survey path, where a
// fleet-wide C-library rollout parses one banner per re-surveyed site.
func parseGlibcBanner(banner string) (libver.Version, bool) {
	const kw = "version"
	rest := banner
	for {
		i := strings.Index(rest, kw)
		if i < 0 {
			return nil, false
		}
		wordStart := i == 0 || isBannerSpace(rest[i-1])
		j := i + len(kw)
		wordEnd := j < len(rest) && isBannerSpace(rest[j])
		rest = rest[j:]
		if !wordStart || !wordEnd {
			continue
		}
		k := 0
		for k < len(rest) && isBannerSpace(rest[k]) {
			k++
		}
		e := k
		for e < len(rest) && !isBannerSpace(rest[e]) {
			e++
		}
		vs := strings.TrimSuffix(rest[k:e], ",")
		if v, err := libver.ParseVersion(vs); err == nil {
			return v, true
		}
	}
}

func isBannerSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// discoverStacks enumerates MPI stacks via user-environment management
// tools, falling back to the shard index's record of MPI libraries and a
// PATH scan for compiler wrappers.
func (e *Engine) discoverStacks(site *sitemodel.Site, env *EnvironmentDescription, shards []*shardRecord) {
	tool := site.EnvTool()
	if tool != nil {
		env.EnvTool = tool.Name()
		if keys, err := tool.Avail(); err == nil {
			for _, key := range keys {
				if info, ok := stackFromKey(site, key, tool.Name()); ok {
					env.Available = append(env.Available, info)
				}
			}
		}
		for _, key := range tool.Loaded() {
			if info, ok := stackFromKey(site, key, tool.Name()); ok {
				loaded := info
				env.Loaded = &loaded
				break
			}
		}
		if len(env.Available) > 0 {
			return
		}
	}
	// Path search: installation prefixes were parsed into stack records at
	// walk time; merge them across shards (deduplicating by prefix), then
	// add installations only reachable through PATH wrappers.
	byPrefix := map[string]StackInfo{}
	for _, rec := range shards {
		if rec == nil {
			continue
		}
		for _, s := range rec.Stacks {
			byPrefix[s.Prefix] = s
		}
	}
	mpiccDirs := e.mpiccDirsCached(site)
	for _, dir := range mpiccDirs {
		prefix := strings.TrimSuffix(dir, "/bin")
		if _, ok := byPrefix[prefix]; ok {
			continue
		}
		base := prefix[strings.LastIndexByte(prefix, '/')+1:]
		if info, ok := stackFromKey(site, base, "path-search"); ok {
			info.Prefix = prefix
			byPrefix[prefix] = info
		}
	}
	keys := make([]string, 0, len(byPrefix))
	for p := range byPrefix {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, prefix := range keys {
		env.Available = append(env.Available, byPrefix[prefix])
	}
	// Loaded stack: the first mpicc on PATH identifies the active
	// installation.
	for _, dir := range mpiccDirs {
		prefix := strings.TrimSuffix(dir, "/bin")
		if info, ok := byPrefix[prefix]; ok {
			loaded := info
			env.Loaded = &loaded
			break
		}
	}
}

// stackFromKey parses a stack name of the form <impl>-<version>-<compiler>
// (the naming scheme used by module keys, softenv keys, and installation
// paths, e.g. "openmpi-1.4.3-intel"), then confirms the compiler version by
// reading the mpicc wrapper's banner.
func stackFromKey(site *sitemodel.Site, key, via string) (StackInfo, bool) {
	key = strings.TrimPrefix(key, "mpi/")
	key = strings.TrimPrefix(key, "+")
	parts := strings.Split(key, "-")
	if len(parts) < 3 {
		return StackInfo{}, false
	}
	impl := parts[0]
	switch impl {
	case "openmpi", "mpich2", "mvapich2":
	default:
		return StackInfo{}, false
	}
	family := parts[len(parts)-1]
	switch family {
	case "gnu", "intel", "pgi":
	default:
		return StackInfo{}, false
	}
	version := strings.Join(parts[1:len(parts)-1], "-")
	info := StackInfo{
		Key: key, Impl: impl, ImplVersion: version,
		CompilerFamily: family, DiscoveredVia: via,
		Prefix: "/opt/" + key,
	}
	// Wrapper version banner reveals the compiler release (the paper's
	// `mpicc -V` technique).
	if banner, ok := site.FS().Attr(info.Prefix+"/bin/mpicc", sitemodel.AttrExecOutput); ok {
		for _, line := range strings.Split(banner, "\n") {
			if strings.Contains(line, "cc") || strings.Contains(line, "CC") {
				if v, ok := parseCompilerVersionField(line); ok {
					info.CompilerVersion = v
				}
			}
		}
	}
	return info, true
}

// parseCompilerVersionField pulls a plausible release number out of a
// compiler banner line.
func parseCompilerVersionField(line string) (string, bool) {
	for _, f := range strings.Fields(line) {
		v, err := libver.ParseVersion(f)
		if err != nil {
			continue
		}
		ok := true
		for _, n := range v {
			if n > 99 {
				ok = false
			}
		}
		if ok {
			return v.String(), true
		}
	}
	return "", false
}

// MissingLibraries runs the EDC's ldd-equivalent check for a described
// binary under the site's current environment (plus optional staged
// directories), returning the DT_NEEDED names that cannot be resolved.
func MissingLibraries(site *sitemodel.Site, binary []byte, name string, extraDirs []string) ([]string, error) {
	resolution, err := ldso.ResolveBytes(binary, name, ldso.Options{
		FS:              site.FS(),
		LibraryPath:     envmgmt.SplitPathVar(site.Getenv("LD_LIBRARY_PATH")),
		DefaultDirs:     site.DefaultLibDirs(),
		ExtraSearchDirs: extraDirs,
	})
	if err != nil {
		return nil, err
	}
	return resolution.MissingNames(), nil
}
