package feam

import (
	"context"
	"fmt"
	"path"
	"sort"
	"strings"

	"feam/internal/obs"
	"feam/internal/sitemodel"
)

// EvalContext carries one evaluation's state through the determinant
// ladder. Evaluators read the description and environment and record their
// outcome on Pred; the shared-library evaluator may additionally stage
// library copies onto the site.
type EvalContext struct {
	Context context.Context
	Engine  *Engine

	Desc *BinaryDescription
	// AppBytes is the application image when present at the target; nil in
	// the paper's "binary not present" mode (a synthetic probe image is
	// reconstructed from Desc).
	AppBytes []byte
	Env      *EnvironmentDescription
	Site     *sitemodel.Site
	Opts     *EvalOptions
	Pred     *Prediction

	// span is the current parent span — the running determinant's during
	// ladder evaluation, the staging transaction's inside stagePlan. Probe
	// attempts, staging operations, and retry events attach under it.
	span *obs.Span
}

// DeterminantEvaluator answers one of the prediction model's execution
// readiness questions. Evaluators run in registration order and record
// their outcome on the prediction; a Fail outcome gates off the evaluators
// after it (the paper's §V.C cheap-checks-first ladder). A returned error
// aborts the evaluation entirely (infrastructure failure, not a verdict).
type DeterminantEvaluator interface {
	// Determinant identifies the question this evaluator answers.
	Determinant() Determinant
	Evaluate(ec *EvalContext) error
}

// DefaultEvaluators returns the full determinant registry in the paper's
// §V.C order: ISA, C library, MPI stack, shared libraries.
func DefaultEvaluators() []DeterminantEvaluator {
	return []DeterminantEvaluator{
		ISAEvaluator{},
		CLibraryEvaluator{},
		MPIStackEvaluator{},
		SharedLibsEvaluator{},
	}
}

// ISAEvaluator checks architecture and word-size compatibility.
type ISAEvaluator struct{}

func (ISAEvaluator) Determinant() Determinant { return DetISA }

func (ISAEvaluator) Evaluate(ec *EvalContext) error {
	desc, env := ec.Desc, ec.Env
	if desc.ISA != env.ISA || desc.Bits != env.Bits {
		ec.Pred.fail(DetISA, fmt.Sprintf("binary is %s but site is %s (%d-bit)",
			desc.Format, env.UnameProcessor, env.Bits))
		return nil
	}
	ec.Pred.pass(DetISA, fmt.Sprintf("%s matches site processor %s", desc.Format, env.UnameProcessor))
	return nil
}

// CLibraryEvaluator checks that the site's C library version satisfies the
// binary's requirement.
type CLibraryEvaluator struct{}

func (CLibraryEvaluator) Determinant() Determinant { return DetCLibrary }

func (CLibraryEvaluator) Evaluate(ec *EvalContext) error {
	desc, env, pred := ec.Desc, ec.Env, ec.Pred
	switch {
	case desc.RequiredGlibc.IsZero():
		pred.pass(DetCLibrary, "binary has no C library version requirement")
	case env.Glibc.IsZero():
		pred.pass(DetCLibrary, "site C library version undetermined; assuming compatible")
	case env.Glibc.AtLeast(desc.RequiredGlibc):
		pred.pass(DetCLibrary, fmt.Sprintf("site glibc %s >= required %s", env.Glibc, desc.RequiredGlibc))
	default:
		pred.fail(DetCLibrary, fmt.Sprintf("site glibc %s < required %s", env.Glibc, desc.RequiredGlibc))
	}
	return nil
}

// MPIStackEvaluator finds a compatible, functioning MPI stack. PresenceOnly
// skips the probe-program usability tests and accepts stack presence alone
// — the ablation study's "no probes" configuration; it is equivalent to
// evaluating without a Runner.
type MPIStackEvaluator struct {
	PresenceOnly bool
	// ABIStandard additionally admits the "ABI-standard" compatibility
	// class: when no same-implementation stack works, a stack of any
	// implementation is accepted if its libraries export the standardized
	// MPI symbol surface the binary imports (arXiv:2308.11214). Off by
	// default — the paper's ladder matches by implementation name only.
	ABIStandard bool
}

func (MPIStackEvaluator) Determinant() Determinant { return DetMPIStack }

func (m MPIStackEvaluator) Evaluate(ec *EvalContext) error {
	if !ec.Desc.UsesMPI() {
		ec.Pred.pass(DetMPIStack, "not an MPI application")
		return nil
	}
	selected, detail := selectStack(ec, m.PresenceOnly)
	if selected == nil && m.ABIStandard {
		selected, detail = selectStackABIStandard(ec, detail)
	}
	if selected == nil {
		ec.Pred.fail(DetMPIStack, detail)
		return nil
	}
	ec.Pred.SelectedStack = selected
	ec.Pred.pass(DetMPIStack, detail)
	return nil
}

// SharedLibsEvaluator checks shared-library availability under the
// selected stack's environment and, when a bundle is present, applies the
// resolution model to missing libraries. DisableResolution turns the model
// off entirely; ShallowResolution disables its recursive part (copies are
// staged without resolving their own dependencies). Both exist for the
// ablation study — the paper's model is recursive (§IV).
type SharedLibsEvaluator struct {
	DisableResolution bool
	ShallowResolution bool
}

func (SharedLibsEvaluator) Determinant() Determinant { return DetSharedLibs }

func (s SharedLibsEvaluator) Evaluate(ec *EvalContext) error {
	pred, site, opts := ec.Pred, ec.Site, ec.Opts
	probe := ec.AppBytes
	if probe == nil {
		img, err := syntheticImage(ec.Desc)
		if err != nil {
			return err
		}
		probe = img
	}
	snap := site.SnapshotEnv()
	loadStackEnv(site, pred.SelectedStack)
	missing, err := MissingLibraries(site, probe, ec.Desc.Name, nil)
	site.RestoreEnv(snap)
	if err != nil {
		return err
	}
	pred.MissingLibs = missing
	resolve := opts.Resolve && opts.Bundle != nil && !s.DisableResolution
	switch {
	case len(missing) == 0:
		pred.pass(DetSharedLibs, "all required shared libraries present")
	case resolve:
		resolveMissing(ec, missing, s.ShallowResolution || opts.ShallowResolution)
		if len(pred.UnresolvedLibs) == 0 {
			pred.Determinants[DetSharedLibs] = DeterminantResult{
				Outcome: Resolved,
				Detail:  fmt.Sprintf("%d missing libraries resolved from bundle", len(pred.ResolvedLibs)),
			}
		} else {
			var parts []string
			for name, why := range pred.UnresolvedLibs {
				parts = append(parts, name+" ("+why+")")
			}
			sort.Strings(parts)
			pred.fail(DetSharedLibs, "unresolvable: "+strings.Join(parts, ", "))
		}
	default:
		pred.fail(DetSharedLibs, "missing: "+strings.Join(missing, ", "))
	}
	return nil
}

// deriveStageDir builds the default staging directory for resolved library
// copies. The binary's content hash and the site name make it unique: two
// different binaries sharing a file name, or one binary evaluated at
// several sites that happen to share a filesystem, cannot collide.
func deriveStageDir(desc *BinaryDescription, siteName string) string {
	h := desc.ContentHash
	if h == "" {
		h = "nohash"
	} else if len(h) > 12 {
		h = h[:12]
	}
	return fmt.Sprintf("/home/user/feam/staged/%s-%s-%s", path.Base(desc.Name), h, siteName)
}
