package feam

import (
	"fmt"

	"feam/internal/libver"
	"feam/internal/toolchain"
)

// Bundle is the output of FEAM's source phase: everything a target phase
// needs from the guaranteed execution environment, copied once per
// application binary and shipped to each target site. Running both phases
// also means the application binary itself need not be present at a target
// site to form a prediction.
type Bundle struct {
	// App is the BDC description of the application binary.
	App *BinaryDescription
	// AppBytes optionally carries the binary itself (needed only when the
	// target phase should also stage the application for execution).
	AppBytes []byte

	// Libs are the gathered shared-library copies (everything the
	// application links except the C library and loader).
	Libs []*LibraryCopy

	// MPIHello is the MPI "hello world" compiled at the source site with
	// the application's stack; running it at a target site under a
	// candidate stack is the extended compatibility test.
	MPIHello *toolchain.Artifact
	// SerialHello is the non-MPI probe for basic environment checks.
	SerialHello *toolchain.Artifact

	// SourceSite, SourceGlibc and SourceStack record the guaranteed
	// environment's identity.
	SourceSite  string
	SourceGlibc libver.Version
	SourceStack string

	// GatherNotes carries the library-collection diagnostics.
	GatherNotes *GatherResult
}

// FindLibrary returns the bundled copy satisfying a NEEDED name, or nil.
// Lookup tries the exact name first, then soname-convention compatibility
// (same stem, same major version).
func (b *Bundle) FindLibrary(name string) *LibraryCopy {
	for _, lc := range b.Libs {
		if lc.Name == name {
			return lc
		}
	}
	want, err := libver.ParseSoname(name)
	if err != nil {
		return nil
	}
	for _, lc := range b.Libs {
		have, err := libver.ParseSoname(lc.Name)
		if err != nil {
			continue
		}
		if have.SatisfiesNeeded(want) {
			return lc
		}
	}
	return nil
}

// Size returns the total bundle payload in bytes (library copies, probe
// binaries, and the application when included) — the quantity the paper
// reports averaging 45 MB per site across its whole test set.
func (b *Bundle) Size() int {
	total := len(b.AppBytes)
	for _, lc := range b.Libs {
		total += len(lc.Data)
	}
	if b.MPIHello != nil {
		total += b.MPIHello.Size()
	}
	if b.SerialHello != nil {
		total += b.SerialHello.Size()
	}
	return total
}

// Summary renders a one-line-per-item bundle listing.
func (b *Bundle) Summary() string {
	out := fmt.Sprintf("bundle for %s from %s (stack %s, glibc %s): %d libraries, %d bytes\n",
		b.App.Name, b.SourceSite, b.SourceStack, b.SourceGlibc, len(b.Libs), b.Size())
	for _, lc := range b.Libs {
		out += fmt.Sprintf("  %s (from %s, requires glibc %s)\n", lc.Name, lc.OriginPath, lc.Desc.RequiredGlibc)
	}
	return out
}
