package feam

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"feam/internal/fault"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/sitemodel"
)

// Engine is the stateless prediction core: the determinant-evaluator
// ladder, the worker-pool width, the retry policy, and the observability
// wiring — configuration fixed at construction, never mutated. All engine
// *state* (site table, per-site locks, memoized BDC and EDC caches,
// persisted surveys and bundles) lives behind the SiteRegistry and Store
// layers, so any number of engines sharing one registry and store see one
// coherent fleet; the paper's headline use case — assessing many
// (binary, site) pairs — scales by adding engines, not by growing one.
//
// Concurrency contract: the engine is immutable and its layers are safe
// for concurrent use. Sites themselves are NOT internally synchronized —
// any caller running engine operations against the same site from
// multiple goroutines must hold SiteLock(site.Name) around them. RankSites
// does this itself; Evaluate and the phase runners leave it to the caller
// so a caller can group several operations (stage a binary, activate a
// stack, evaluate) into one critical section without deadlocking. Engines
// sharing one registry share one set of site locks, which is what makes
// cross-engine evaluation of one site safe.
type Engine struct {
	evaluators []DeterminantEvaluator
	workers    int
	retry      fault.RetryPolicy

	// sites is the in-memory state layer (never nil); store is the
	// optional persistence layer a restarted process rehydrates from.
	sites SiteRegistry
	store Store

	// tracer and reg are fixed at construction: every pipeline operation
	// emits spans through tracer, and reg holds the latency histograms and
	// event counters a registry sink derives from them. External observers
	// attach span sinks to the tracer or read the registry; there is no
	// separate callback vocabulary.
	tracer *obs.Tracer
	reg    *obs.Registry
}

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// defaultEngine backs the package-level free functions so the pre-engine
// public surface keeps working (and transparently gains the caches).
var (
	defaultEngineOnce sync.Once
	defaultEngineVal  *Engine
)

// DefaultEngine returns the shared package-level engine used by the free
// Describe/Discover/Evaluate/phase functions.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngineVal = New() })
	return defaultEngineVal
}

// Tracer returns the engine's span tracer (never nil). Attach sinks for
// streaming export, or snapshot it for the ring buffer's recent history.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Metrics returns the engine's metrics registry (never nil): latency
// histograms per pipeline operation plus event counters, renderable as
// JSON or Prometheus text exposition format.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// defaultEvaluators returns the construction-time determinant ladder.
func (e *Engine) defaultEvaluators() []DeterminantEvaluator { return e.evaluators }

// Workers returns the engine's default RankSites fan-out width.
func (e *Engine) Workers() int { return e.workers }

// RetryPolicy returns the engine's transient-fault retry policy.
func (e *Engine) RetryPolicy() fault.RetryPolicy { return e.retry }

// SiteLock returns the registry's serialization lock for a site name,
// creating it on first use. Everything that mutates a site's filesystem or
// environment (stack activation, staging, probe runs) must run under it
// when the engine — or the registry — is shared across goroutines.
func (e *Engine) SiteLock(name string) *sync.Mutex {
	return e.sites.SiteLock(name)
}

// contentHash returns the hex SHA-256 of a binary image — the BDC cache key
// and the unique component of derived staging directories.
func contentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Describe is the memoized BDC: identical binary content described under
// the same name returns the registry-cached description, and with a store
// configured a restarted process rehydrates the record instead of
// re-parsing. The returned description is shared — callers must treat it
// as immutable.
func (e *Engine) Describe(ctx context.Context, data []byte, name string) (*BinaryDescription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := e.tracer.Start(obs.OpDescribe,
		obs.WithParent(obs.SpanFromContext(ctx)), obs.WithBinary(name))
	hash := contentHash(data)
	if v, ok := e.sites.LookupDescription(hash, name); ok {
		sp.Event(obs.EvCache, obs.AttrComponent, "bdc", obs.AttrKey, name,
			obs.AttrHit, "true", obs.AttrSource, "registry")
		sp.End(nil)
		return v.(*BinaryDescription), nil
	}
	if desc, ok := e.loadDescription(hash, name); ok {
		e.sites.StoreDescription(hash, name, desc)
		sp.Event(obs.EvCache, obs.AttrComponent, "bdc", obs.AttrKey, name,
			obs.AttrHit, "true", obs.AttrSource, "store")
		sp.End(nil)
		return desc, nil
	}
	sp.Event(obs.EvCache, obs.AttrComponent, "bdc", obs.AttrKey, name, obs.AttrHit, "false")
	desc, err := describeBytes(data, name, hash)
	if err != nil {
		sp.End(err)
		return nil, err
	}
	e.sites.StoreDescription(hash, name, desc)
	e.persistDescription(desc)
	sp.End(nil)
	return desc, nil
}

// siteFingerprint condenses everything discovery depends on into a cheap
// comparison value: the environment variables (stack activation mutates
// PATH/LD_LIBRARY_PATH/LOADEDMODULES through envmgmt) and the filesystem
// mutation generation (module files, installed libraries, staged copies).
func siteFingerprint(site *sitemodel.Site) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], site.EnvFingerprint())
	binary.LittleEndian.PutUint64(buf[8:], site.FS().Generation())
	h.Write(buf[:])
	return h.Sum64()
}

// Discover is the memoized EDC: repeat surveys of an unchanged site return
// the registry-cached environment description, and with a store configured
// a restarted process rehydrates the persisted survey instead of
// re-running discovery. The cache invalidates whenever the site's
// environment variables or filesystem change — loading a stack through
// envmgmt, staging libraries, or installing software all produce a fresh
// survey. The returned description is shared and must be treated as
// immutable.
func (e *Engine) Discover(ctx context.Context, site *sitemodel.Site) (*EnvironmentDescription, error) {
	env, _, err := e.discoverCached(ctx, site)
	return env, err
}

// discoverCached is Discover plus a cache-hit indicator (the phase runners
// report cached surveys at a fraction of the simulated cost). The lookup
// is traced as a registry span; an OpDiscover span is emitted only when a
// real survey runs, so "zero discover spans" is the observable proof that
// a process rehydrated instead of re-surveying.
func (e *Engine) discoverCached(ctx context.Context, site *sitemodel.Site) (*EnvironmentDescription, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	_ = e.sites.Register(site)
	fp := siteFingerprint(site)
	lsp := e.tracer.Start(obs.OpRegistry,
		obs.WithParent(obs.SpanFromContext(ctx)), obs.WithSite(site.Name))
	if v, ok := e.sites.LookupSurvey(site, fp); ok {
		lsp.Event(obs.EvCache, obs.AttrComponent, "edc", obs.AttrKey, site.Name,
			obs.AttrHit, "true", obs.AttrSource, "registry")
		lsp.End(nil)
		return v.(*EnvironmentDescription), true, nil
	}
	if env, ok := e.loadSurvey(site, fp); ok {
		e.sites.StoreSurvey(site, fp, env)
		lsp.Event(obs.EvCache, obs.AttrComponent, "edc", obs.AttrKey, site.Name,
			obs.AttrHit, "true", obs.AttrSource, "store")
		lsp.End(nil)
		return env, true, nil
	}
	lsp.Event(obs.EvCache, obs.AttrComponent, "edc", obs.AttrKey, site.Name, obs.AttrHit, "false")
	lsp.End(nil)

	sp := e.tracer.Start(obs.OpDiscover,
		obs.WithParent(obs.SpanFromContext(ctx)), obs.WithSite(site.Name))
	env, err := e.surveySite(obs.ContextWithSpan(ctx, sp), site)
	if err != nil {
		sp.End(err)
		return nil, false, err
	}
	sp.End(nil)
	e.sites.StoreSurvey(site, fp, env)
	e.persistSurvey(site, fp, env)
	return env, false, nil
}

// InvalidateSite drops a site's cached environment description from the
// registry and, when a store is configured, deletes the persisted survey
// record. Normal mutations are detected by fingerprint; this exists for
// callers that manage site state outside the site's filesystem and
// environment.
func (e *Engine) InvalidateSite(name string) {
	e.sites.Invalidate(name)
	if e.store != nil {
		_ = e.store.Delete(KindSurvey, name)
	}
}

// Evaluate runs the Target Evaluation Component through the engine's
// determinant registry (or opts.Evaluators when set): each registered
// evaluator records its determinant's outcome on the prediction, and a Fail
// gates off the rest — the paper's cheap-checks-first ladder. appBytes may
// be nil when a bundle carries the description; the shared-library
// determinant reconstructs a synthetic probe image from the description.
//
// The caller must hold SiteLock(site.Name) when the site is shared across
// goroutines; Evaluate temporarily mutates the site environment while
// testing candidate stacks and stages library copies when resolving.
//
// When an evaluator errors, Evaluate returns the partial prediction built
// so far (Ready=false, with the determinant trail up to the failure)
// alongside the error, so callers ranking many sites can keep the trail
// for diagnosis instead of discarding the whole assessment.
func (e *Engine) Evaluate(ctx context.Context, desc *BinaryDescription, appBytes []byte, env *EnvironmentDescription, site *sitemodel.Site, opts EvalOptions) (*Prediction, error) {
	if desc == nil || env == nil || site == nil {
		return nil, fmt.Errorf("%w: Evaluate requires a description, environment, and site", ErrNoEnvironment)
	}
	return e.Predict(ctx, EvalRequest{
		Desc:    desc,
		Binary:  appBytes,
		Env:     env,
		Site:    site,
		Options: opts,
	})
}

// compile-time proof that the production registry satisfies the engine's
// state-layer contract.
var _ SiteRegistry = (*registry.Registry)(nil)
