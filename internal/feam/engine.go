package feam

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"

	"feam/internal/fault"
	"feam/internal/obs"
	"feam/internal/sitemodel"
)

// Engine is the central prediction pipeline: it owns the memoized BDC and
// EDC caches, the determinant-evaluator registry, the per-site locks that
// serialize site-mutating work, and the observer hooks. One engine is meant
// to be shared across many evaluations — the paper's headline use case is
// assessing many (binary, site) pairs, and re-running description and
// discovery for every pair is pure waste.
//
// Concurrency contract: the engine's caches and lock registry are safe for
// concurrent use. Sites themselves are NOT internally synchronized — any
// caller running engine operations against the same site from multiple
// goroutines must hold SiteLock(site.Name) around them. RankSites does this
// itself; Evaluate and the phase runners leave it to the caller so a caller
// can group several operations (stage a binary, activate a stack, evaluate)
// into one critical section without deadlocking.
type Engine struct {
	mu         sync.Mutex
	evaluators []DeterminantEvaluator
	workers    int
	retry      fault.RetryPolicy
	bdc        map[bdcKey]*BinaryDescription
	edc        map[string]*edcEntry
	siteLocks  map[string]*sync.Mutex

	// tracer and reg are fixed at construction: every pipeline operation
	// emits spans through tracer, and reg holds the latency histograms and
	// event counters a registry sink derives from them. Legacy Observers
	// are adapted onto the same span stream (see observerSink).
	tracer *obs.Tracer
	reg    *obs.Registry
}

// bdcKey identifies a binary description: content hash plus the name the
// caller described it under (the name is part of the description).
type bdcKey struct {
	hash string
	name string
}

// edcEntry is one cached environment description with the fingerprint it
// was computed under and the site object it belongs to.
type edcEntry struct {
	site        *sitemodel.Site
	fingerprint uint64
	env         *EnvironmentDescription
}

// maxBDCEntries bounds the description cache; beyond it the cache resets
// (descriptions are cheap to recompute, an eviction policy is not worth
// the bookkeeping).
const maxBDCEntries = 4096

// NewEngine returns an engine with the paper's default determinant
// registry (§V.C order) and a worker pool sized to the host.
//
// Deprecated: use New, which takes functional options (WithEvaluators,
// WithWorkers, WithRetryPolicy, WithObserver, WithTracer, WithRegistry).
func NewEngine() *Engine {
	return New()
}

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// defaultEngine backs the package-level free functions so the pre-engine
// public surface keeps working (and transparently gains the caches).
var (
	defaultEngineOnce sync.Once
	defaultEngineVal  *Engine
)

// DefaultEngine returns the shared package-level engine used by the free
// Describe/Discover/Evaluate/phase functions.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngineVal = New() })
	return defaultEngineVal
}

// Tracer returns the engine's span tracer (never nil). Attach sinks for
// streaming export, or snapshot it for the ring buffer's recent history.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Metrics returns the engine's metrics registry (never nil): latency
// histograms per pipeline operation plus event counters, renderable as
// JSON or Prometheus text exposition format.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// SetEvaluators replaces the engine's default determinant registry. The
// slice is captured as-is; pass evaluators in the order they should gate.
// Safe to call while other goroutines evaluate — in-flight evaluations
// keep the registry they started with.
//
// Deprecated: configure at construction with New(WithEvaluators(...)).
func (e *Engine) SetEvaluators(evals []DeterminantEvaluator) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evaluators = evals
}

// defaultEvaluators snapshots the current registry.
func (e *Engine) defaultEvaluators() []DeterminantEvaluator {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evaluators
}

// SetWorkers sets the default fan-out width for RankSites (minimum 1).
// Safe to call concurrently with RankSites; in-flight surveys keep the
// width they started with.
//
// Deprecated: configure at construction with New(WithWorkers(n)).
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.workers = n
}

// Workers returns the engine's default RankSites fan-out width.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers
}

// SetRetryPolicy replaces the engine's transient-fault retry policy, used
// around probe-program runs and staging writes. The zero policy disables
// retries.
//
// Deprecated: configure at construction with New(WithRetryPolicy(p)).
func (e *Engine) SetRetryPolicy(p fault.RetryPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retry = p
}

// RetryPolicy returns the engine's transient-fault retry policy.
func (e *Engine) RetryPolicy() fault.RetryPolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.retry
}

// AddObserver registers a hook for engine events. Observers must be safe
// for concurrent notification; they are invoked from worker goroutines.
// The observer is adapted onto the engine's span stream, so it sees the
// same events it did before the tracing layer existed.
func (e *Engine) AddObserver(o Observer) {
	if o == nil {
		return
	}
	e.tracer.AddSink(&observerSink{o: o})
}

// SiteLock returns the engine's serialization lock for a site name,
// creating it on first use. Everything that mutates a site's filesystem or
// environment (stack activation, staging, probe runs) must run under it
// when the engine is shared across goroutines.
func (e *Engine) SiteLock(name string) *sync.Mutex {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.siteLocks[name]
	if !ok {
		l = &sync.Mutex{}
		e.siteLocks[name] = l
	}
	return l
}

// contentHash returns the hex SHA-256 of a binary image — the BDC cache key
// and the unique component of derived staging directories.
func contentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Describe is the memoized BDC: identical binary content described under
// the same name returns the cached description. The returned description is
// shared — callers must treat it as immutable.
func (e *Engine) Describe(ctx context.Context, data []byte, name string) (*BinaryDescription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := e.tracer.Start(obs.OpDescribe,
		obs.WithParent(obs.SpanFromContext(ctx)), obs.WithBinary(name))
	key := bdcKey{hash: contentHash(data), name: name}
	e.mu.Lock()
	if desc, ok := e.bdc[key]; ok {
		e.mu.Unlock()
		sp.Event(obs.EvCache, obs.AttrComponent, "bdc", obs.AttrKey, name, obs.AttrHit, "true")
		sp.End(nil)
		return desc, nil
	}
	e.mu.Unlock()
	sp.Event(obs.EvCache, obs.AttrComponent, "bdc", obs.AttrKey, name, obs.AttrHit, "false")
	desc, err := describeBytes(data, name, key.hash)
	if err != nil {
		sp.End(err)
		return nil, err
	}
	e.mu.Lock()
	if len(e.bdc) >= maxBDCEntries {
		e.bdc = map[bdcKey]*BinaryDescription{}
	}
	e.bdc[key] = desc
	e.mu.Unlock()
	sp.End(nil)
	return desc, nil
}

// siteFingerprint condenses everything discovery depends on into a cheap
// comparison value: the environment variables (stack activation mutates
// PATH/LD_LIBRARY_PATH/LOADEDMODULES through envmgmt) and the filesystem
// mutation generation (module files, installed libraries, staged copies).
func siteFingerprint(site *sitemodel.Site) uint64 {
	h := fnv.New64a()
	env := site.Environ()
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		io.WriteString(h, k)
		h.Write([]byte{0})
		io.WriteString(h, env[k])
		h.Write([]byte{1})
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], site.FS().Generation())
	h.Write(buf[:])
	return h.Sum64()
}

// Discover is the memoized EDC: repeat surveys of an unchanged site return
// the cached environment description. The cache invalidates whenever the
// site's environment variables or filesystem change — loading a stack
// through envmgmt, staging libraries, or installing software all produce a
// fresh survey. The returned description is shared and must be treated as
// immutable.
func (e *Engine) Discover(ctx context.Context, site *sitemodel.Site) (*EnvironmentDescription, error) {
	env, _, err := e.discoverCached(ctx, site)
	return env, err
}

// discoverCached is Discover plus a cache-hit indicator (the phase runners
// report cached surveys at a fraction of the simulated cost).
func (e *Engine) discoverCached(ctx context.Context, site *sitemodel.Site) (*EnvironmentDescription, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	sp := e.tracer.Start(obs.OpDiscover,
		obs.WithParent(obs.SpanFromContext(ctx)), obs.WithSite(site.Name))
	fp := siteFingerprint(site)
	e.mu.Lock()
	if ent, ok := e.edc[site.Name]; ok && ent.site == site && ent.fingerprint == fp {
		e.mu.Unlock()
		sp.Event(obs.EvCache, obs.AttrComponent, "edc", obs.AttrKey, site.Name, obs.AttrHit, "true")
		sp.End(nil)
		return ent.env, true, nil
	}
	e.mu.Unlock()
	sp.Event(obs.EvCache, obs.AttrComponent, "edc", obs.AttrKey, site.Name, obs.AttrHit, "false")
	env, err := discoverSite(site)
	if err != nil {
		sp.End(err)
		return nil, false, err
	}
	e.mu.Lock()
	e.edc[site.Name] = &edcEntry{site: site, fingerprint: fp, env: env}
	e.mu.Unlock()
	sp.End(nil)
	return env, false, nil
}

// InvalidateSite drops a site's cached environment description. Normal
// mutations are detected by fingerprint; this exists for callers that
// manage site state outside the site's filesystem and environment.
func (e *Engine) InvalidateSite(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.edc, name)
}

// Evaluate runs the Target Evaluation Component through the engine's
// determinant registry (or opts.Evaluators when set): each registered
// evaluator records its determinant's outcome on the prediction, and a Fail
// gates off the rest — the paper's cheap-checks-first ladder. appBytes may
// be nil when a bundle carries the description; the shared-library
// determinant reconstructs a synthetic probe image from the description.
//
// The caller must hold SiteLock(site.Name) when the site is shared across
// goroutines; Evaluate temporarily mutates the site environment while
// testing candidate stacks and stages library copies when resolving.
//
// When an evaluator errors, Evaluate returns the partial prediction built
// so far (Ready=false, with the determinant trail up to the failure)
// alongside the error, so callers ranking many sites can keep the trail
// for diagnosis instead of discarding the whole assessment.
func (e *Engine) Evaluate(ctx context.Context, desc *BinaryDescription, appBytes []byte, env *EnvironmentDescription, site *sitemodel.Site, opts EvalOptions) (*Prediction, error) {
	if desc == nil || env == nil || site == nil {
		return nil, fmt.Errorf("%w: Evaluate requires a description, environment, and site", ErrNoEnvironment)
	}
	return e.Predict(ctx, EvalRequest{
		Desc:    desc,
		Binary:  appBytes,
		Env:     env,
		Site:    site,
		Options: opts,
	})
}
