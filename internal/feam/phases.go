package feam

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"feam/internal/obs"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
)

// StepTiming records one phase step's simulated cost.
type StepTiming struct {
	Name     string
	Duration time.Duration
}

// Report summarizes a phase run: what happened and how long it took in
// simulated time. The paper reports both phases always completing in under
// five minutes, making FEAM debug-queue friendly.
type Report struct {
	Phase string
	Site  string
	Steps []StepTiming
	Notes []string
}

// Total is the phase's simulated duration.
func (r *Report) Total() time.Duration {
	var t time.Duration
	for _, s := range r.Steps {
		t += s.Duration
	}
	return t
}

func (r *Report) step(name string, d time.Duration) {
	r.Steps = append(r.Steps, StepTiming{Name: name, Duration: d})
}

func (r *Report) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders a human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FEAM %s phase at %s: %s total\n", r.Phase, r.Site, r.Total())
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  %-28s %s\n", s.Name, s.Duration)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Simulated step costs. File metadata operations are cheap; probe-program
// executions dominate because they pass through the batch system's debug
// queue. A cached environment survey is a memory lookup — it costs a
// nominal second of bookkeeping instead of the full site sweep.
const (
	costDescribe        = 2 * time.Second
	costDiscovery       = 25 * time.Second
	costDiscoveryCached = 1 * time.Second
	costPerLibrary      = 1 * time.Second
	costProbeRun        = 50 * time.Second
	costStaging         = 5 * time.Second
)

// RunSourcePhase executes FEAM's optional phase I through the package-level
// default engine. See Engine.RunSourcePhase.
func RunSourcePhase(cfg *Config, site *sitemodel.Site, runner ProgramRunner) (*Bundle, *Report, error) {
	return DefaultEngine().RunSourcePhase(context.Background(), cfg, site, runner)
}

// RunSourcePhase executes FEAM's optional phase I at a guaranteed execution
// environment: describe the binary, discover the environment, confirm the
// loaded stack matches the binary, gather library copies, and compile the
// probe programs. The result is a portable Bundle.
//
// The caller must hold SiteLock(site.Name) when the site is shared across
// goroutines.
func (e *Engine) RunSourcePhase(ctx context.Context, cfg *Config, site *sitemodel.Site, runner ProgramRunner) (*Bundle, *Report, error) {
	report := &Report{Phase: "source", Site: site.Name}
	if cfg.Phase != "source" {
		return nil, nil, fmt.Errorf("%w: config requests phase %q, not source", ErrBadConfig, cfg.Phase)
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	appBytes, err := site.FS().ReadFile(cfg.BinaryPath)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: application binary: %w", ErrBadBinary, err)
	}

	desc, err := e.Describe(ctx, appBytes, cfg.BinaryPath)
	if err != nil {
		return nil, nil, err
	}
	report.step("binary description (BDC)", costDescribe)

	env, cached, err := e.discoverCached(ctx, site)
	if err != nil {
		return nil, nil, err
	}
	if cached {
		report.step("environment discovery (EDC, cached)", costDiscoveryCached)
	} else {
		report.step("environment discovery (EDC)", costDiscovery)
	}

	// Confirm the currently selected stack matches the binary (§V.B).
	var stackKey string
	if desc.UsesMPI() {
		if env.Loaded == nil {
			report.note("no MPI stack loaded in the guaranteed environment; probes may be unrepresentative")
		} else if env.Loaded.Impl != desc.MPIImpl {
			// A stack mismatch at the guaranteed environment is a violated
			// phase-I precondition, not a pipeline fault: the user must load
			// the right stack and rerun, so no sentinel classifies it.
			//lint:ignore faultwrap precondition violation reported verbatim to the user, not routed through the taxonomy
			return nil, report, fmt.Errorf("feam: guaranteed environment has %s loaded but binary uses %s",
				env.Loaded.Impl, desc.MPIImpl)
		} else {
			stackKey = env.Loaded.Key
			report.note("loaded stack %s matches binary's %s", env.Loaded.Key, desc.MPIImpl)
		}
	}

	gather, err := GatherLibraries(site, appBytes, cfg.BinaryPath)
	if err != nil {
		return nil, report, err
	}
	report.step("library gathering", time.Duration(len(gather.Copies))*costPerLibrary)
	if len(gather.NotFound) > 0 {
		report.note("could not locate: %s", strings.Join(gather.NotFound, ", "))
	}

	bundle := &Bundle{
		App:         desc,
		AppBytes:    appBytes,
		Libs:        gather.Copies,
		SourceSite:  site.Name,
		SourceGlibc: site.Glibc.Clone(),
		SourceStack: stackKey,
		GatherNotes: gather,
	}

	// Compile and sanity-run the probe programs.
	if desc.UsesMPI() && env.Loaded != nil {
		rec := stackRecordFromInfo(env.Loaded)
		if hello, err := toolchain.CompileHello(rec, site); err == nil {
			bundle.MPIHello = hello
			if runner != nil {
				psp := e.tracer.Start(obs.OpProbe,
					obs.WithSite(site.Name), obs.WithBinary(cfg.BinaryPath),
					obs.WithAttr(obs.AttrStack, env.Loaded.Key),
					obs.WithAttr(obs.AttrAttempt, "1"))
				ok, detail := runner.RunProgram(ctx, hello, site, env.Loaded.Key, nil)
				psp.SetAttr(obs.AttrSuccess, strconv.FormatBool(ok))
				if !ok {
					psp.SetAttr(obs.AttrDetail, detail)
					report.note("source-site hello world FAILED: %s", detail)
				}
				psp.End(nil)
				report.step("MPI hello world probe", costProbeRun)
			}
		}
	}
	if family, ok := toolchain.FamilyFromKey(compilerFamilyOf(desc.BuildComment)); ok {
		if comp, found := toolchain.FindCompiler(site, family); found {
			if serial, err := toolchain.CompileSerialHello(comp, site); err == nil {
				bundle.SerialHello = serial
			}
		}
	}
	report.note("bundle size %d bytes (%d libraries)", bundle.Size(), len(bundle.Libs))
	// With a store configured the bundle is persisted under its content
	// hash so a restarted process rehydrates it instead of re-running the
	// source phase. Best-effort: a store fault is reported, not fatal.
	if e.store != nil {
		if err := e.SaveBundle(bundle); err != nil {
			report.note("bundle not persisted: %v", err)
		} else {
			report.note("bundle persisted under %s", desc.ContentHash[:12])
		}
	}
	return bundle, report, nil
}

// RunTargetPhase executes FEAM's required phase II through the
// package-level default engine. See Engine.RunTargetPhase.
func RunTargetPhase(cfg *Config, site *sitemodel.Site, bundle *Bundle, runner ProgramRunner) (*Prediction, *Report, error) {
	return DefaultEngine().RunTargetPhase(context.Background(), cfg, site, bundle, runner)
}

// RunTargetPhase executes FEAM's required phase II at a target site,
// producing the prediction and (when ready) the configuration script.
// bundle may be nil (basic prediction).
//
// The caller must hold SiteLock(site.Name) when the site is shared across
// goroutines.
func (e *Engine) RunTargetPhase(ctx context.Context, cfg *Config, site *sitemodel.Site, bundle *Bundle, runner ProgramRunner) (*Prediction, *Report, error) {
	report := &Report{Phase: "target", Site: site.Name}
	if cfg.Phase != "target" {
		return nil, nil, fmt.Errorf("%w: config requests phase %q, not target", ErrBadConfig, cfg.Phase)
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}

	var desc *BinaryDescription
	var appBytes []byte
	switch {
	case cfg.BinaryPath != "" && site.FS().Exists(cfg.BinaryPath):
		data, err := site.FS().ReadFile(cfg.BinaryPath)
		if err != nil {
			return nil, nil, err
		}
		appBytes = data
		d, err := e.Describe(ctx, data, cfg.BinaryPath)
		if err != nil {
			return nil, nil, err
		}
		desc = d
		report.step("binary description (BDC)", costDescribe)
	case bundle != nil:
		desc = bundle.App
		appBytes = bundle.AppBytes
		report.note("using bundled description from %s", bundle.SourceSite)
	default:
		return nil, nil, fmt.Errorf("%w: no binary at %q and no bundle", ErrNoEnvironment, cfg.BinaryPath)
	}

	env, cached, err := e.discoverCached(ctx, site)
	if err != nil {
		return nil, report, err
	}
	if cached {
		report.step("environment discovery (EDC, cached)", costDiscoveryCached)
	} else {
		report.step("environment discovery (EDC)", costDiscovery)
	}

	pred, err := e.Evaluate(ctx, desc, appBytes, env, site, EvalOptions{
		Bundle:  bundle,
		Runner:  runner,
		Resolve: bundle != nil,
		Config:  cfg,
	})
	if err != nil {
		return nil, report, err
	}
	// Probe runs: one per tested candidate stack (approximate: one when a
	// stack was selected, plus the extended cross test).
	if pred.SelectedStack != nil && runner != nil {
		report.step("stack usability probes", costProbeRun)
		if bundle != nil {
			report.step("extended compatibility probes", costProbeRun)
		}
	}
	report.step("target evaluation (TEC)", costDescribe)
	if len(pred.ResolvedLibs) > 0 {
		report.step("library resolution staging", costStaging+time.Duration(len(pred.ResolvedLibs))*costPerLibrary)
	}
	if pred.Ready {
		report.note("prediction: READY (stack %s)", pred.StackKey())
	} else {
		report.note("prediction: NOT READY — %s", strings.Join(pred.Reasons, "; "))
	}
	// The paper's TEC details its outcome to the user via output files.
	paths, err := pred.WriteOutputFiles(site)
	if err != nil {
		return nil, report, err
	}
	report.note("output written to %s", strings.Join(paths, ", "))
	return pred, report, nil
}
