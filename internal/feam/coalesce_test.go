package feam_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"feam/internal/feam"
	"feam/internal/obs"
)

// gateEvaluator blocks evaluation until the gate is released, holding a
// flight open so the test can attach followers deterministically.
type gateEvaluator struct {
	gate    <-chan struct{}
	entered chan struct{} // closed when the first evaluation starts
	once    sync.Once
}

func (g *gateEvaluator) Determinant() feam.Determinant { return feam.DetISA }
func (g *gateEvaluator) Evaluate(ec *feam.EvalContext) error {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	ec.Pred.Determinants[feam.DetISA] = feam.DeterminantResult{Outcome: feam.Pass}
	return nil
}

// TestCoalescerDeduplicatesConcurrentIdenticalPredicts: K identical
// concurrent predictions must run exactly one engine evaluation (and one
// site survey) — the followers ride the leader's flight and share its
// result.
func TestCoalescerDeduplicatesConcurrentIdenticalPredicts(t *testing.T) {
	tb := sharedTestbed(t)
	site := tb.ByName["india"]
	img := plainBinary()

	eng := feam.New()
	co := feam.NewCoalescer(eng)
	gate := make(chan struct{})
	ev := &gateEvaluator{gate: gate, entered: make(chan struct{})}
	req := feam.EvalRequest{
		Binary: img, BinaryName: "app.coalesce", Site: site,
		Options: feam.EvalOptions{Evaluators: []feam.DeterminantEvaluator{ev}},
	}

	const K = 8
	var wg sync.WaitGroup
	preds := make([]*feam.Prediction, K)
	flags := make([]bool, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preds[i], flags[i], errs[i] = co.Predict(context.Background(), req)
		}(i)
	}

	// Wait for the leader to enter evaluation, then for every other
	// request to attach to its flight, before letting it finish.
	<-ev.entered
	deadline := time.Now().Add(5 * time.Second)
	for co.Stats().Coalesced < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced", co.Stats().Coalesced, K-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	leaders := 0
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if preds[i] != preds[0] {
			t.Errorf("request %d got a different prediction object", i)
		}
		if !flags[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
	st := co.Stats()
	if st.Leads != 1 || st.Coalesced != K-1 {
		t.Errorf("stats = %+v, want 1 lead / %d coalesced", st, K-1)
	}
	if hr := st.HitRate(); hr <= 0.8 {
		t.Errorf("hit rate = %.2f, want > 0.8", hr)
	}
	// Exactly one evaluation and one survey ran — counted by the metrics
	// registry, which unlike the trace ring never drops samples.
	if got := eng.Metrics().Counter("evaluations").Load(); got != 1 {
		t.Errorf("evaluations = %d, want 1", got)
	}
	if got := eng.Metrics().Histogram(obs.OpDiscover).Count(); got != 1 {
		t.Errorf("discover spans = %d, want 1", got)
	}
}

// TestCoalescerFollowerHonorsOwnContext: a follower abandoning a slow
// flight returns promptly with its own ctx error; the leader is
// unaffected.
func TestCoalescerFollowerHonorsOwnContext(t *testing.T) {
	tb := sharedTestbed(t)
	site := tb.ByName["india"]
	img := plainBinary()

	eng := feam.New()
	co := feam.NewCoalescer(eng)
	gate := make(chan struct{})
	ev := &gateEvaluator{gate: gate, entered: make(chan struct{})}
	req := feam.EvalRequest{
		Binary: img, BinaryName: "app.coalesce2", Site: site,
		Options: feam.EvalOptions{Evaluators: []feam.DeterminantEvaluator{ev}},
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := co.Predict(context.Background(), req)
		leaderDone <- err
	}()
	<-ev.entered

	fctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, coalesced, err := co.Predict(fctx, req)
		if !coalesced {
			t.Error("second request did not coalesce")
		}
		followerDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for co.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never attached")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower still waiting on the flight")
	}

	close(gate)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader err = %v", err)
	}
}
