package feam

import (
	"sort"

	"feam/internal/sitemodel"
)

// SiteAssessment is one site's evaluation in a multi-site survey.
type SiteAssessment struct {
	Site       string
	Prediction *Prediction
	// Err records a discovery/evaluation failure at the site.
	Err error
}

// RankSites runs the Target Evaluation Component against every candidate
// site and orders the results best-first — the paper's headline use case:
// "For scientists who do not have much experience, time, or support to
// explore new computing sites ... an efficient automated solution for
// quickly assessing many new computing sites."
//
// Ordering: ready sites first (those needing no resolution ahead of those
// needing staged libraries), then not-ready sites by how far they got
// through the determinant ladder, then failed surveys.
func RankSites(desc *BinaryDescription, appBytes []byte, sites []*sitemodel.Site, opts EvalOptions) []SiteAssessment {
	out := make([]SiteAssessment, 0, len(sites))
	for _, site := range sites {
		a := SiteAssessment{Site: site.Name}
		env, err := Discover(site)
		if err != nil {
			a.Err = err
			out = append(out, a)
			continue
		}
		pred, err := Evaluate(desc, appBytes, env, site, opts)
		if err != nil {
			a.Err = err
			out = append(out, a)
			continue
		}
		a.Prediction = pred
		out = append(out, a)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return assessmentScore(out[i]) > assessmentScore(out[j])
	})
	return out
}

// assessmentScore orders assessments: higher is better.
func assessmentScore(a SiteAssessment) int {
	if a.Err != nil || a.Prediction == nil {
		return -1
	}
	p := a.Prediction
	if p.Ready {
		if len(p.ResolvedLibs) == 0 {
			return 100 // runs as-is
		}
		return 90 // runs with staged libraries
	}
	// Credit for every determinant passed before the failure.
	score := 0
	for _, d := range Determinants() {
		switch p.Determinants[d].Outcome {
		case Pass, Resolved:
			score += 10
		case Fail:
			return score
		}
	}
	return score
}
