package feam

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"feam/internal/obs"
	"feam/internal/sitemodel"
)

// SiteAssessment is one site's evaluation in a multi-site survey.
type SiteAssessment struct {
	Site       string
	Prediction *Prediction
	// Err records a discovery/evaluation failure at the site. A failing
	// site degrades to an assessment carrying Err (and, when evaluation
	// got far enough, a partial Prediction with the determinant trail up
	// to the fault) instead of poisoning the whole survey.
	Err error
}

// RankSites runs the Target Evaluation Component against every candidate
// site through the package-level default engine and orders the results
// best-first. See Engine.RankSites.
func RankSites(desc *BinaryDescription, appBytes []byte, sites []*sitemodel.Site, opts EvalOptions) []SiteAssessment {
	return DefaultEngine().RankSites(context.Background(), desc, appBytes, sites, opts)
}

// RankSites surveys and evaluates every candidate site with the engine's
// default worker count and orders the results best-first — the paper's
// headline use case: "For scientists who do not have much experience,
// time, or support to explore new computing sites ... an efficient
// automated solution for quickly assessing many new computing sites."
//
// Ordering: ready sites first (those needing no resolution ahead of those
// needing staged libraries), then not-ready sites by how far they got
// through the determinant ladder, then failed surveys. Ties keep the
// caller's site order.
func (e *Engine) RankSites(ctx context.Context, desc *BinaryDescription, appBytes []byte, sites []*sitemodel.Site, opts EvalOptions) []SiteAssessment {
	return e.RankSitesParallel(ctx, desc, appBytes, sites, opts, e.Workers())
}

// RankSitesParallel is RankSites with an explicit fan-out width. Sites are
// assessed by up to workers goroutines; work on any single site is
// serialized through the engine's per-site locks, so the same site may
// safely appear in concurrent surveys (or be concurrently evaluated by
// other engine callers holding SiteLock).
func (e *Engine) RankSitesParallel(ctx context.Context, desc *BinaryDescription, appBytes []byte, sites []*sitemodel.Site, opts EvalOptions, workers int) []SiteAssessment {
	out := make([]SiteAssessment, len(sites))
	if workers < 1 {
		workers = 1
	}
	if workers > len(sites) {
		workers = len(sites)
	}
	if workers <= 1 {
		for i, site := range sites {
			out[i] = e.assessSite(ctx, desc, appBytes, site, opts)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, site := range sites {
			wg.Add(1)
			go func(i int, site *sitemodel.Site) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				out[i] = e.assessSite(ctx, desc, appBytes, site, opts)
			}(i, site)
		}
		wg.Wait()
	}
	// Workers wrote results at their input index, so the stable sort
	// preserves the caller's order on equal scores regardless of which
	// goroutine finished first.
	sort.SliceStable(out, func(i, j int) bool {
		return assessmentScore(out[i]) > assessmentScore(out[j])
	})
	return out
}

// assessSite surveys and evaluates one site under its serialization lock.
// Failures degrade gracefully: an evaluator error keeps the partial
// prediction (the determinant trail up to the fault) beside Err, and a
// panicking evaluator or runner is contained to this site's assessment
// rather than taking down the whole survey.
func (e *Engine) assessSite(ctx context.Context, desc *BinaryDescription, appBytes []byte, site *sitemodel.Site, opts EvalOptions) (a SiteAssessment) {
	a = SiteAssessment{Site: site.Name}
	binName := ""
	if desc != nil {
		binName = desc.Name
	}
	sp := e.tracer.Start(obs.OpAssess,
		obs.WithParent(obs.SpanFromContext(ctx)),
		obs.WithSite(site.Name), obs.WithBinary(binName))
	defer func() {
		if r := recover(); r != nil {
			a.Err = fmt.Errorf("%w: site %s assessment panicked: %v", ErrProbeFailed, site.Name, r)
		}
		sp.End(a.Err)
	}()
	if err := ctx.Err(); err != nil {
		a.Err = err
		return a
	}
	lock := e.SiteLock(site.Name)
	lock.Lock()
	defer lock.Unlock()
	ctx = obs.ContextWithSpan(ctx, sp)
	env, err := e.Discover(ctx, site)
	if err != nil {
		a.Err = fmt.Errorf("%w: survey of %s failed: %w", ErrSiteUnavailable, site.Name, err)
		return a
	}
	pred, err := e.Evaluate(ctx, desc, appBytes, env, site, opts)
	a.Prediction = pred
	a.Err = err
	return a
}

// assessmentScore orders assessments: higher is better.
func assessmentScore(a SiteAssessment) int {
	if a.Err != nil || a.Prediction == nil {
		return -1
	}
	p := a.Prediction
	if p.Ready {
		if len(p.ResolvedLibs) == 0 {
			return 100 // runs as-is
		}
		return 90 // runs with staged libraries
	}
	// Credit for every determinant passed before the failure.
	score := 0
	for _, d := range Determinants() {
		switch p.Determinants[d].Outcome {
		case Pass, Resolved:
			score += 10
		case Fail:
			return score
		}
	}
	return score
}
