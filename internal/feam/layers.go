package feam

import (
	"encoding/json"
	"fmt"
	"sync"

	"feam/internal/sitemodel"
)

// SiteRegistry is the engine's in-memory state layer: site registration,
// per-site serialization locks, and the memoized survey and description
// caches. internal/registry provides the sharded production
// implementation; the engine itself holds no cache maps or site tables,
// so any number of engines sharing one SiteRegistry see one coherent
// fleet. Cached values are stored opaquely: surveys are
// *EnvironmentDescription, descriptions are *BinaryDescription.
type SiteRegistry interface {
	Register(site *sitemodel.Site) error
	Site(name string) (*sitemodel.Site, bool)
	SiteLock(name string) *sync.Mutex
	LookupSurvey(site *sitemodel.Site, fingerprint uint64) (any, bool)
	StoreSurvey(site *sitemodel.Site, fingerprint uint64, value any)
	LookupDescription(hash, name string) (any, bool)
	StoreDescription(hash, name string, value any)
	// LookupShard and StoreShard cache one survey-shard walk result
	// (*shardRecord) per (site, shard root), validated by the root's vfs
	// tree stamp: a stamp mismatch — any mutation under the root — is a
	// miss, which is what makes whole-site re-surveys incremental.
	LookupShard(site *sitemodel.Site, root string, stamp uint64) (any, bool)
	StoreShard(site *sitemodel.Site, root string, stamp uint64, value any)
	Invalidate(name string)
}

// Store is the engine's persistence layer: namespaced records a restarted
// process rehydrates instead of re-surveying. Get's ok=false means absent
// or damaged — either way the engine recomputes; err is diagnostic only.
// internal/store provides the versioned, atomic-rename implementation.
type Store interface {
	Put(kind, key string, payload []byte) error
	Get(kind, key string) ([]byte, bool, error)
	List(kind string) ([]string, error)
	Delete(kind, key string) error
}

// Store record namespaces the engine writes.
const (
	// KindSurvey holds one surveyRecord per site name.
	KindSurvey = "survey"
	// KindDescription holds one *BinaryDescription per content hash+name.
	KindDescription = "bdc"
	// KindBundle holds one encoded Bundle per application content hash.
	KindBundle = "bundle"
	// KindSite holds one siteRecord per site name (fleet inventory).
	KindSite = "site"
	// KindShard holds one shardRecord per site name + fnv-hashed shard
	// root, keyed by the root's tree stamp. Stale records are harmless:
	// a stamp mismatch reads as a miss and the shard is re-walked.
	KindShard = "shard"
	// KindSymIndex holds one abicheck.Snapshot per site name, stamped
	// with the env fingerprint + vfs content generation it was built
	// under; stale records read as misses and the index is rebuilt.
	KindSymIndex = "symindex"
)

// surveyRecord is the persisted form of one environment survey: the EDC
// output plus the fingerprint it was computed under, so rehydration only
// succeeds for an unchanged site.
type surveyRecord struct {
	Fingerprint uint64                  `json:"fingerprint"`
	Env         *EnvironmentDescription `json:"env"`
}

// siteRecord is the persisted fleet-inventory entry for one surveyed site.
type siteRecord struct {
	Name       string `json:"name"`
	SystemType string `json:"system_type,omitempty"`
	Arch       string `json:"arch,omitempty"`
	OS         string `json:"os,omitempty"`
	Glibc      string `json:"glibc,omitempty"`
	Cores      int    `json:"cores,omitempty"`
}

// descriptionKey joins the BDC cache key components for the store.
func descriptionKey(hash, name string) string { return hash + "/" + name }

// loadSurvey rehydrates a site's survey from the store when a record
// exists under the exact fingerprint. Absent, stale, or corrupt records
// are all misses.
func (e *Engine) loadSurvey(site *sitemodel.Site, fingerprint uint64) (*EnvironmentDescription, bool) {
	if e.store == nil {
		return nil, false
	}
	payload, ok, _ := e.store.Get(KindSurvey, site.Name)
	if !ok {
		return nil, false
	}
	var rec surveyRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Env == nil {
		return nil, false
	}
	if rec.Fingerprint != fingerprint {
		return nil, false
	}
	return rec.Env, true
}

// persistSurvey writes a site's survey and fleet-inventory records.
// Persistence is best-effort: a store fault never fails the survey that
// produced the data.
func (e *Engine) persistSurvey(site *sitemodel.Site, fingerprint uint64, env *EnvironmentDescription) {
	if e.store == nil {
		return
	}
	if payload, err := json.Marshal(surveyRecord{Fingerprint: fingerprint, Env: env}); err == nil {
		_ = e.store.Put(KindSurvey, site.Name, payload)
	}
	rec := siteRecord{
		Name:       site.Name,
		SystemType: site.SystemType,
		Arch:       site.Arch.CPUName,
		OS:         site.OS.Distro + " " + site.OS.Version,
		Glibc:      site.Glibc.String(),
		Cores:      site.Cores,
	}
	if payload, err := json.Marshal(rec); err == nil {
		_ = e.store.Put(KindSite, site.Name, payload)
	}
}

// loadDescription rehydrates a binary description from the store.
func (e *Engine) loadDescription(hash, name string) (*BinaryDescription, bool) {
	if e.store == nil {
		return nil, false
	}
	payload, ok, _ := e.store.Get(KindDescription, descriptionKey(hash, name))
	if !ok {
		return nil, false
	}
	var desc BinaryDescription
	if err := json.Unmarshal(payload, &desc); err != nil || desc.ContentHash != hash {
		return nil, false
	}
	return &desc, true
}

// persistDescription writes a binary description record (best-effort).
func (e *Engine) persistDescription(desc *BinaryDescription) {
	if e.store == nil {
		return
	}
	if payload, err := json.Marshal(desc); err == nil {
		_ = e.store.Put(KindDescription, descriptionKey(desc.ContentHash, desc.Name), payload)
	}
}

// SaveBundle persists a bundle keyed by its application's content hash so
// a restarted process can skip the source phase. Requires a store.
func (e *Engine) SaveBundle(b *Bundle) error {
	if e.store == nil {
		//lint:ignore faultwrap API misuse by the caller, not a pipeline fault
		return fmt.Errorf("feam: SaveBundle requires an engine with a store (WithStore)")
	}
	if b == nil || b.App == nil || b.App.ContentHash == "" {
		//lint:ignore faultwrap API misuse by the caller, not a pipeline fault
		return fmt.Errorf("feam: SaveBundle requires a bundle with a described application")
	}
	data, err := EncodeBundle(b)
	if err != nil {
		return err
	}
	return e.store.Put(KindBundle, b.App.ContentHash, data)
}

// LoadBundle rehydrates a persisted bundle by application content hash.
// ok=false means no usable record (absent, corrupt, or undecodable).
func (e *Engine) LoadBundle(hash string) (*Bundle, bool, error) {
	if e.store == nil {
		return nil, false, nil
	}
	data, ok, err := e.store.Get(KindBundle, hash)
	if !ok {
		return nil, false, err
	}
	b, derr := DecodeBundle(data)
	if derr != nil {
		return nil, false, derr
	}
	return b, true, nil
}

// StoredSites lists the fleet-inventory records persisted by surveys —
// the site names a restarted process knows about before touching any
// site. Without a store the list is empty.
func (e *Engine) StoredSites() ([]string, error) {
	if e.store == nil {
		return nil, nil
	}
	return e.store.List(KindSite)
}

// Registry returns the engine's site-state layer (never nil).
func (e *Engine) Registry() SiteRegistry { return e.sites }

// Store returns the engine's persistence layer (nil unless configured
// with WithStore).
func (e *Engine) Store() Store { return e.store }
