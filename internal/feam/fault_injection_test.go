package feam_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"feam/internal/experiment"
	"feam/internal/fault"
	"feam/internal/feam"
	"feam/internal/obs"
	"feam/internal/registry"
	"feam/internal/sitemodel"
	"feam/internal/toolchain"
)

// faultEngine returns a fresh engine plus its private metrics registry, so
// each test observes only its own retry/rollback activity.
func faultEngine() (*feam.Engine, *obs.Registry) {
	eng := feam.New()
	return eng, eng.Metrics()
}

// TestStagingRollbackIsAllOrNothing breaks the second staging write with a
// permanent fault: the transaction must roll back completely — no stage
// directory, no temp directory, no ResolvedLibs — and every planned
// library must explain the rollback in UnresolvedLibs.
func TestStagingRollbackIsAllOrNothing(t *testing.T) {
	tb := sharedTestbed(t)
	desc, appBytes, bundle := rankBundle(t, tb, "cg.fault-rollback")
	india := tb.ByName["india"]
	eng, counters := faultEngine()
	ctx := context.Background()

	var script fault.Script
	script.FailNth(fault.Permanent, "write", 2)
	india.FS().SetOpHook(fault.Hook(ctx, &script))
	defer india.FS().SetOpHook(nil)

	env, err := eng.Discover(ctx, india)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := eng.Evaluate(ctx, desc, appBytes, env, india, feam.EvalOptions{
		Bundle: bundle, Resolve: true, Runner: experimentRunner(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if script.Injected() != 1 {
		t.Fatalf("faults injected = %d, want 1", script.Injected())
	}
	if pred.Ready {
		t.Error("prediction ready despite staging rollback")
	}
	if len(pred.ResolvedLibs) != 0 {
		t.Errorf("ResolvedLibs = %v after rollback", pred.ResolvedLibs)
	}
	if len(pred.UnresolvedLibs) == 0 {
		t.Fatal("rollback left no explanation in UnresolvedLibs")
	}
	for lib, reason := range pred.UnresolvedLibs {
		if !strings.Contains(reason, "staging rolled back") {
			t.Errorf("UnresolvedLibs[%s] = %q, want a rollback explanation", lib, reason)
		}
	}
	// All-or-nothing: neither the published directory nor the staging
	// temp directory survives.
	if india.FS().Exists(pred.StageDir) {
		t.Errorf("stage dir %s exists after rollback", pred.StageDir)
	}
	if india.FS().Exists(pred.StageDir + ".staging") {
		t.Errorf("staging temp dir survived rollback")
	}
	if got := counters.Counter("staging_rollbacks").Load(); got != 1 {
		t.Errorf("StagingRollbacks = %d, want 1", got)
	}
	if got := counters.Counter("staging_commits").Load(); got != 0 {
		t.Errorf("StagingCommits = %d, want 0", got)
	}
}

// TestStagingRetriesTransientFaultThenCommits injects a single transient
// write fault: the write must be retried under the engine policy and the
// whole plan committed atomically.
func TestStagingRetriesTransientFaultThenCommits(t *testing.T) {
	tb := sharedTestbed(t)
	desc, appBytes, bundle := rankBundle(t, tb, "cg.fault-retry-commit")
	india := tb.ByName["india"]
	eng, counters := faultEngine()
	ctx := context.Background()

	var script fault.Script
	script.FailNext(fault.Transient, "write")
	india.FS().SetOpHook(fault.Hook(ctx, &script))
	defer india.FS().SetOpHook(nil)

	env, err := eng.Discover(ctx, india)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := eng.Evaluate(ctx, desc, appBytes, env, india, feam.EvalOptions{
		Bundle: bundle, Resolve: true, Runner: experimentRunner(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if script.Injected() != 1 {
		t.Fatalf("faults injected = %d, want 1", script.Injected())
	}
	if !pred.Ready {
		t.Fatalf("prediction not ready despite retryable fault: %v", pred.Reasons)
	}
	if len(pred.ResolvedLibs) == 0 {
		t.Fatal("no libraries resolved")
	}
	for _, lib := range pred.ResolvedLibs {
		if !india.FS().Exists(pred.StageDir + "/" + lib) {
			t.Errorf("committed stage dir missing %s", lib)
		}
	}
	if india.FS().Exists(pred.StageDir + ".staging") {
		t.Error("staging temp dir survived commit")
	}
	if got := counters.Counter("staging_retries").Load(); got != 1 {
		t.Errorf("StagingRetries = %d, want 1", got)
	}
	if got := counters.Counter("staging_commits").Load(); got != 1 {
		t.Errorf("StagingCommits = %d, want 1", got)
	}
	if got := counters.Counter("staging_rollbacks").Load(); got != 0 {
		t.Errorf("StagingRollbacks = %d, want 0", got)
	}
}

// TestProbeRetriesTransientFault injects one transient probe fault: the
// probe must be retried (and succeed), leaving the stack selected.
func TestProbeRetriesTransientFault(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.fault-probe-retry")
	if err != nil {
		t.Fatal(err)
	}
	india := tb.ByName["india"]
	eng, counters := faultEngine()
	ctx := context.Background()

	var script fault.Script
	script.FailNext(fault.Transient, "probe")
	runner := &fault.FaultyRunner{
		Inner: experiment.NewSimProbeRunner(quietSim()),
		Inj:   &script,
	}

	env, err := eng.Discover(ctx, india)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := eng.Evaluate(ctx, desc, art.Bytes, env, india, feam.EvalOptions{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if script.Injected() != 1 {
		t.Fatalf("faults injected = %d, want 1", script.Injected())
	}
	if pred.Determinants[feam.DetMPIStack].Outcome != feam.Pass {
		t.Errorf("MPI determinant = %+v, want Pass after transient retry",
			pred.Determinants[feam.DetMPIStack])
	}
	if got := counters.Counter("probe_retries").Load(); got != 1 {
		t.Errorf("ProbeRetries = %d, want 1", got)
	}
}

// TestProbePermanentFaultFailsFast: a permanent probe fault must not be
// retried; the faulted candidate stack is condemned and evaluation moves
// on to the next candidate gracefully.
func TestProbePermanentFaultFailsFast(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.fault-probe-permanent")
	if err != nil {
		t.Fatal(err)
	}
	india := tb.ByName["india"]
	eng, counters := faultEngine()
	ctx := context.Background()

	var script fault.Script
	script.FailNext(fault.Permanent, "probe")
	runner := &fault.FaultyRunner{
		Inner: experiment.NewSimProbeRunner(quietSim()),
		Inj:   &script,
	}

	env, err := eng.Discover(ctx, india)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := eng.Evaluate(ctx, desc, art.Bytes, env, india, feam.EvalOptions{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	if got := counters.Counter("probe_retries").Load(); got != 0 {
		t.Errorf("ProbeRetries = %d, want 0 (permanent faults fail fast)", got)
	}
	if script.Injected() != 1 {
		t.Fatalf("faults injected = %d, want 1", script.Injected())
	}
	// The first candidate was condemned by the fault, but the survey
	// carried on: either another candidate was selected or the MPI
	// determinant failed with the fault recorded — never an aborted run.
	if pred.Determinants[feam.DetMPIStack].Outcome == feam.Pass {
		if pred.SelectedStack == nil {
			t.Error("MPI determinant passed without a selected stack")
		}
	} else if !strings.Contains(pred.Determinants[feam.DetMPIStack].Detail, "permanent fault") {
		t.Errorf("MPI determinant detail lost the fault: %+v", pred.Determinants[feam.DetMPIStack])
	}
}

// TestTransitivePoisoningEvictsDependents removes libmpich.so.1.0 from
// the bundle: the app's direct need for it is unresolvable ("no copy in
// bundle"), and libmpichf90.so.1.0 — whose copy NEEDs libmpich.so.1.0 —
// must be evicted from the staging plan rather than staged as a copy the
// loader can never satisfy.
func TestTransitivePoisoningEvictsDependents(t *testing.T) {
	tb := sharedTestbed(t)
	desc, appBytes, bundle := rankBundle(t, tb, "cg.fault-poisoning")
	var kept []*feam.LibraryCopy
	for _, lc := range bundle.Libs {
		if strings.HasPrefix(lc.Name, "libmpich.so") {
			continue
		}
		kept = append(kept, lc)
	}
	if len(kept) == len(bundle.Libs) {
		t.Fatal("bundle carries no libmpich copy to remove")
	}
	bundle.Libs = kept

	india := tb.ByName["india"]
	eng, _ := faultEngine()
	ctx := context.Background()
	env, err := eng.Discover(ctx, india)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := eng.Evaluate(ctx, desc, appBytes, env, india, feam.EvalOptions{
		Bundle: bundle, Resolve: true, Runner: experimentRunner(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Ready {
		t.Error("prediction ready despite unresolvable MPI library")
	}
	if got := pred.UnresolvedLibs["libmpich.so.1.0"]; !strings.Contains(got, "no copy in bundle") {
		t.Errorf("libmpich.so.1.0 reason = %q", got)
	}
	if got := pred.UnresolvedLibs["libmpichf90.so.1.0"]; !strings.Contains(got, "depends on unresolvable libmpich.so.1.0") {
		t.Errorf("libmpichf90.so.1.0 reason = %q, want transitive eviction", got)
	}
	for _, lib := range pred.ResolvedLibs {
		if lib == "libmpichf90.so.1.0" {
			t.Error("poisoned dependent was staged anyway")
		}
	}
	// The independent library still resolves — poisoning is precise, not
	// a blanket failure.
	found := false
	for _, lib := range pred.ResolvedLibs {
		if lib == "libg2c.so.0" {
			found = true
		}
	}
	if !found {
		t.Errorf("libg2c.so.0 should still resolve; ResolvedLibs = %v, unresolved = %v",
			pred.ResolvedLibs, pred.UnresolvedLibs)
	}
}

// failingEvaluator reports DetMPIStack and always errors.
type failingEvaluator struct{}

func (failingEvaluator) Determinant() feam.Determinant { return feam.DetMPIStack }
func (failingEvaluator) Evaluate(ec *feam.EvalContext) error {
	return errors.New("evaluator infrastructure failure")
}

// TestRankSitesKeepsPartialTrailOnEvaluatorError: a failing evaluator must
// degrade the site to an assessment with Err AND the partial determinant
// trail of everything that ran before it — not a discarded prediction.
func TestRankSitesKeepsPartialTrailOnEvaluatorError(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.fault-partial-trail")
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := faultEngine()
	evals := []feam.DeterminantEvaluator{feam.DefaultEvaluators()[0], failingEvaluator{}}
	sites := []*sitemodel.Site{tb.ByName["india"], tb.ByName["fir"]}
	ranked := eng.RankSitesParallel(context.Background(), desc, art.Bytes, sites,
		feam.EvalOptions{Evaluators: evals}, 2)
	for _, a := range ranked {
		if a.Err == nil {
			t.Errorf("%s: evaluator error lost", a.Site)
			continue
		}
		if a.Prediction == nil {
			t.Errorf("%s: partial prediction discarded", a.Site)
			continue
		}
		if a.Prediction.Ready {
			t.Errorf("%s: errored evaluation still claims ready", a.Site)
		}
		if a.Prediction.Determinants[feam.DetISA].Outcome != feam.Pass {
			t.Errorf("%s: partial trail lost the ISA pass: %+v",
				a.Site, a.Prediction.Determinants[feam.DetISA])
		}
	}
}

// TestRankSitesContainsPanickingRunner: a runner that panics must not take
// down the survey; the panicking site degrades to an Err assessment.
func TestRankSitesContainsPanickingRunner(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.fault-panic")
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := faultEngine()
	panicky := feam.RunnerFunc(func(_ context.Context, art *toolchain.Artifact, site *sitemodel.Site, stackKey string, extra []string) (bool, string) {
		panic("runner exploded")
	})
	sites := []*sitemodel.Site{tb.ByName["india"], tb.ByName["blacklight"]}
	ranked := eng.RankSitesParallel(context.Background(), desc, art.Bytes, sites,
		feam.EvalOptions{Runner: panicky}, 2)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	var sawPanic bool
	for _, a := range ranked {
		if a.Err != nil && strings.Contains(a.Err.Error(), "panicked") {
			sawPanic = true
		}
	}
	// india has mvapich2 stacks, so its probes run and panic there.
	if !sawPanic {
		t.Error("no assessment recorded the contained panic")
	}
}

// TestConcurrentEngineConfiguration: engine configuration is immutable,
// so concurrency pressure moved into the shared state layer — engines are
// constructed with differing options over one SiteRegistry while surveys
// run and invalidations race them. The data races this guards against are
// caught by `go test -race`.
func TestConcurrentEngineConfiguration(t *testing.T) {
	tb := sharedTestbed(t)
	art := compileAt(t, tb, "ranger", "mvapich2-1.2-gnu", "cg")
	desc, err := feam.DescribeBytes(art.Bytes, "cg.fault-config-race")
	if err != nil {
		t.Fatal(err)
	}
	shared := registry.New()
	sites := []*sitemodel.Site{tb.ByName["india"], tb.ByName["fir"], tb.ByName["blacklight"]}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			// Fresh engines with varying configuration attach to the shared
			// registry mid-survey; invalidations race the rankers below.
			side := feam.New(
				feam.WithRegistry(shared),
				feam.WithWorkers(i%8+1),
				feam.WithRetryPolicy(fault.RetryPolicy{MaxAttempts: i%3 + 1, BaseDelay: time.Microsecond}),
			)
			_ = side.Workers()
			_ = side.RetryPolicy()
			shared.Invalidate(sites[i%len(sites)].Name)
		}
	}()
	eng := feam.New(feam.WithRegistry(shared))
	for i := 0; i < 3; i++ {
		ranked := eng.RankSites(context.Background(), desc, art.Bytes, sites,
			feam.EvalOptions{Runner: experimentRunner()})
		if len(ranked) != len(sites) {
			t.Fatalf("ranked = %d", len(ranked))
		}
	}
	close(done)
	wg.Wait()
}
