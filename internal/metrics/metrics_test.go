package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, true)   // TP
	c.Add(false, false) // TN
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	if c.TP != 2 || c.TN != 1 || c.FP != 1 || c.FN != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.Total() != 5 || c.Correct() != 3 {
		t.Errorf("total/correct = %d/%d", c.Total(), c.Correct())
	}
	if math.Abs(c.Accuracy()-0.6) > 1e-9 {
		t.Errorf("accuracy = %f", c.Accuracy())
	}
	if !strings.Contains(c.String(), "3/5") {
		t.Errorf("String = %q", c.String())
	}
	var empty Confusion
	if empty.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestConfusionInvariant(t *testing.T) {
	// Property: Total always equals the number of Adds, and accuracy stays
	// in [0,1].
	f := func(events []bool) bool {
		var c Confusion
		for i, p := range events {
			c.Add(p, i%2 == 0)
		}
		return c.Total() == len(events) && c.Accuracy() >= 0 && c.Accuracy() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	var r Rate
	for i := 0; i < 10; i++ {
		r.Add(i < 4)
	}
	if r.Num != 4 || r.Den != 10 {
		t.Errorf("rate = %+v", r)
	}
	if math.Abs(r.Pct()-40) > 1e-9 {
		t.Errorf("pct = %f", r.Pct())
	}
	if (Rate{}).Fraction() != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestRelativeIncrease(t *testing.T) {
	before := Rate{Num: 60, Den: 100}
	after := Rate{Num: 80, Den: 100}
	got := RelativeIncrease(before, after)
	if math.Abs(got-33.333333) > 0.001 {
		t.Errorf("increase = %f", got)
	}
	if RelativeIncrease(Rate{}, after) != 0 {
		t.Error("zero baseline should give 0")
	}
}

func TestTally(t *testing.T) {
	tl := Tally{}
	tl.Add("missing shared library")
	tl.Add("missing shared library")
	tl.Add("system error")
	if tl["missing shared library"] != 2 || tl.Total() != 3 {
		t.Errorf("tally = %v", tl)
	}
}
