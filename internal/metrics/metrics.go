// Package metrics provides the accuracy and rate bookkeeping used to
// reproduce the paper's evaluation tables: prediction-vs-actual confusion
// counting (Table III) and before/after success rates with relative
// improvement (Table IV).
package metrics

import (
	"fmt"
)

// Confusion counts prediction-vs-actual outcomes. "Positive" means
// predicted ready / actually executed.
type Confusion struct {
	TP int // predicted ready, executed
	TN int // predicted not ready, failed
	FP int // predicted ready, failed
	FN int // predicted not ready, executed
}

// Add records one comparison.
func (c *Confusion) Add(predictedReady, actuallyRan bool) {
	switch {
	case predictedReady && actuallyRan:
		c.TP++
	case !predictedReady && !actuallyRan:
		c.TN++
	case predictedReady && !actuallyRan:
		c.FP++
	default:
		c.FN++
	}
}

// Total is the number of comparisons.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Correct is the number of correct predictions.
func (c Confusion) Correct() int { return c.TP + c.TN }

// Accuracy is the fraction of correct predictions (0 when empty).
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.Correct()) / float64(c.Total())
}

// String renders "correct/total (pct)".
func (c Confusion) String() string {
	return fmt.Sprintf("%d/%d (%.0f%%)", c.Correct(), c.Total(), 100*c.Accuracy())
}

// Rate is a simple numerator/denominator percentage.
type Rate struct {
	Num, Den int
}

// Add increments the denominator, and the numerator when hit is true.
func (r *Rate) Add(hit bool) {
	r.Den++
	if hit {
		r.Num++
	}
}

// Fraction returns Num/Den (0 when empty).
func (r Rate) Fraction() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Pct returns the percentage.
func (r Rate) Pct() float64 { return 100 * r.Fraction() }

// String renders "num/den (pct)".
func (r Rate) String() string {
	return fmt.Sprintf("%d/%d (%.0f%%)", r.Num, r.Den, r.Pct())
}

// RelativeIncrease returns (after-before)/before as a percentage — the
// paper's "increase in successful executions due to resolution".
func RelativeIncrease(before, after Rate) float64 {
	if before.Num == 0 {
		return 0
	}
	return 100 * float64(after.Num-before.Num) / float64(before.Num)
}

// Tally counts occurrences by string key.
type Tally map[string]int

// Add increments a key.
func (t Tally) Add(key string) { t[key]++ }

// Total sums all counts.
func (t Tally) Total() int {
	n := 0
	for _, v := range t {
		n += v
	}
	return n
}
