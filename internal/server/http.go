// Package server is FEAM's serving layer: a hardened HTTP stack and the
// prediction control plane feam-server exposes. The paper frames FEAM as
// a service scientists consult before migrating a binary; this package is
// that service — a registry+store-backed engine behind a small JSON API,
// with singleflight deduplication of identical concurrent predictions.
package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// HTTP server hardening defaults. The debug listeners used to run bare
// http.ListenAndServe with no header timeout — one slow-loris client
// could pin a connection forever — and no shutdown path at all.
const (
	// DefaultReadHeaderTimeout bounds how long a client may dribble its
	// request headers.
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultReadTimeout bounds reading one full request.
	DefaultReadTimeout = 30 * time.Second
	// DefaultWriteTimeout bounds writing one full response (pprof
	// profiles can legitimately take tens of seconds).
	DefaultWriteTimeout = 90 * time.Second
	// DefaultIdleTimeout reaps idle keep-alive connections.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultShutdownGrace is how long Serve waits for in-flight
	// requests to drain after the context is cancelled.
	DefaultShutdownGrace = 10 * time.Second
)

// NewHTTPServer returns an http.Server with the hardening defaults every
// FEAM listener shares: header/read/write/idle timeouts and a bounded
// header size. Both the CLIs' -debug-addr listeners and feam-server
// build on it.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
		MaxHeaderBytes:    1 << 20,
	}
}

// ListenAndServe listens on srv.Addr and runs Serve: the server runs
// until ctx is cancelled, then drains in-flight requests for up to grace
// (0 means DefaultShutdownGrace) before closing.
func ListenAndServe(ctx context.Context, srv *http.Server, grace time.Duration) error {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return err
	}
	return Serve(ctx, srv, ln, grace)
}

// Serve runs srv on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests get up to grace
// (0 means DefaultShutdownGrace) to finish, and only then are
// connections torn down. Returns nil on a clean shutdown, the serve
// error otherwise.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultShutdownGrace
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	// ctx is already cancelled; the drain deadline needs a live parent.
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), grace)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		// Drain deadline exceeded: cut the remaining connections.
		_ = srv.Close()
		return err
	}
	return nil
}
