package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"feam/internal/abicheck"
	"feam/internal/obs"
	"feam/internal/scenario"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{Fleet: scenario.FleetSpec{Base: scenario.FleetBaseTable2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// predictEnvelope is the wire shape of a single /v1/predict answer with
// the data half bound to its concrete type.
type predictEnvelope struct {
	Data  *PredictResponse `json:"data"`
	Error *APIError        `json:"error"`
}

func postPredict(t *testing.T, url string, body string) (int, predictEnvelope) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	var env predictEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding predict response: %v", err)
	}
	return resp.StatusCode, env
}

func getSites(t *testing.T, url string) (int, SitesPage, *APIError) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var env struct {
		Data  SitesPage `json:"data"`
		Error *APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding sites page: %v", err)
	}
	return resp.StatusCode, env.Data, env.Error
}

// TestSitesEndpoint: the fleet listing is complete, sorted, and carries
// the inventory fields operators select sites by.
func TestSitesEndpoint(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, page, apiErr := getSites(t, ts.URL+"/v1/sites")
	if status != http.StatusOK || apiErr != nil {
		t.Fatalf("GET /v1/sites = %d (%+v), want 200", status, apiErr)
	}
	if len(page.Sites) != s.Sites() {
		t.Fatalf("listed %d sites, want %d", len(page.Sites), s.Sites())
	}
	if page.NextCursor != "" {
		t.Errorf("unpaginated listing carries next_cursor %q", page.NextCursor)
	}
	for i := 1; i < len(page.Sites); i++ {
		if page.Sites[i-1].Name >= page.Sites[i].Name {
			t.Errorf("sites out of order: %q before %q", page.Sites[i-1].Name, page.Sites[i].Name)
		}
	}
	for _, si := range page.Sites {
		if si.Arch == "" || si.Glibc == "" || si.Cores == 0 {
			t.Errorf("site %s missing inventory fields: %+v", si.Name, si)
		}
	}
}

// TestSitesPagination: walking ?limit/?cursor pages reassembles exactly the
// unpaginated listing, and a bad limit is a machine-readable bad_request.
func TestSitesPagination(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, full, _ := getSites(t, ts.URL+"/v1/sites")
	var walked []SiteInfo
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > len(full.Sites) {
			t.Fatalf("pagination did not terminate after %d pages", pages)
		}
		url := ts.URL + "/v1/sites?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		status, page, apiErr := getSites(t, url)
		if status != http.StatusOK || apiErr != nil {
			t.Fatalf("paged GET /v1/sites = %d (%+v), want 200", status, apiErr)
		}
		if len(page.Sites) > 2 {
			t.Fatalf("page of %d sites exceeds limit 2", len(page.Sites))
		}
		walked = append(walked, page.Sites...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != len(full.Sites) {
		t.Fatalf("pagination walked %d sites, want %d", len(walked), len(full.Sites))
	}
	for i := range walked {
		if walked[i] != full.Sites[i] {
			t.Errorf("walked[%d] = %+v, want %+v", i, walked[i], full.Sites[i])
		}
	}

	status, _, apiErr := getSites(t, ts.URL+"/v1/sites?limit=bogus")
	if status != http.StatusBadRequest || apiErr == nil || apiErr.Code != CodeBadRequest {
		t.Errorf("bad limit = %d (%+v), want 400 %s", status, apiErr, CodeBadRequest)
	}
}

// TestSurveyEndpoint: surveys serve the discovered environment and repeat
// surveys are fingerprint-gated — one discover span no matter how often
// the endpoint is hit.
func TestSurveyEndpoint(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/survey/india")
		if err != nil {
			t.Fatalf("GET /v1/survey/india: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/survey/india = %d: %s", resp.StatusCode, body)
		}
		var env struct {
			Data  map[string]any `json:"data"`
			Error *APIError      `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("survey is not JSON: %v", err)
		}
		if len(env.Data) == 0 || env.Error != nil {
			t.Fatalf("survey envelope = %+v, want non-empty data and no error", env)
		}
	}
	if got := s.Engine().Metrics().Histogram(obs.OpDiscover).Count(); got != 1 {
		t.Errorf("discover spans after 3 surveys = %d, want 1", got)
	}

	resp, err := http.Get(ts.URL + "/v1/survey/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/survey/nonesuch = %d, want 404", resp.StatusCode)
	}
}

// TestPredictRepeatIdentical: the ISSUE acceptance check — repeated
// identical predict requests produce exactly one discover span, whether
// they arrive sequentially (survey cache) or concurrently (coalescer +
// survey cache).
func TestPredictRepeatIdentical(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const K = 12
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
				strings.NewReader(`{"site":"india","name":"app"}`))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.Engine().Metrics().Histogram(obs.OpDiscover).Count(); got != 1 {
		t.Errorf("discover spans after %d identical predicts = %d, want 1", K, got)
	}
	st := s.CoalescerStats()
	if st.Leads+st.Coalesced != K {
		t.Errorf("coalescer saw %d+%d requests, want %d", st.Leads, st.Coalesced, K)
	}
}

// TestPredictSingle: a lone request answers with the determinant ladder
// and a readiness verdict.
func TestPredictSingle(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, env := postPredict(t, ts.URL, `{"site":"india"}`)
	if status != http.StatusOK || env.Error != nil || env.Data == nil {
		t.Fatalf("predict = %d (%+v), want 200 with data", status, env.Error)
	}
	if env.Data.Site != "india" || env.Data.Binary != "app" {
		t.Errorf("predict identity = %q/%q, want india/app", env.Data.Site, env.Data.Binary)
	}
	if len(env.Data.Determinants) == 0 {
		t.Error("predict returned no determinant outcomes")
	}

	status, env = postPredict(t, ts.URL, `{"site":"nonesuch"}`)
	if status != http.StatusNotFound || env.Error == nil || env.Error.Code != CodeNotFound {
		t.Errorf("unknown-site predict = %d %+v, want 404 %s", status, env.Error, CodeNotFound)
	}

	status, env = postPredict(t, ts.URL, `{"site":"india","binary_b64":"!!!"}`)
	if status != http.StatusBadRequest || env.Error == nil || env.Error.Code != CodeBadRequest {
		t.Errorf("bad base64 predict = %d %+v, want 400 %s", status, env.Error, CodeBadRequest)
	}
}

// TestPredictBatch: batched requests fan out and every entry answers at
// its input index; a bad entry fails in place without sinking the batch.
func TestPredictBatch(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var reqs []string
	for i := 0; i < 3; i++ {
		reqs = append(reqs, `{"site":"india","name":"app"}`)
	}
	reqs = append(reqs, `{"site":"nonesuch"}`)
	body := `{"requests":[` + strings.Join(reqs, ",") + `]}`

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch predict = %d: %s", resp.StatusCode, raw)
	}
	var env struct {
		Data  batchResponse `json:"data"`
		Error *APIError     `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding batch: %v", err)
	}
	br := env.Data
	if len(br.Results) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(br.Results))
	}
	for i := 0; i < 3; i++ {
		if br.Results[i].Error != nil {
			t.Errorf("results[%d] failed: %+v", i, br.Results[i].Error)
		}
		if br.Results[i].Data == nil || br.Results[i].Data.Site != "india" {
			t.Errorf("results[%d] = %+v, want data for india", i, br.Results[i])
		}
	}
	if br.Results[3].Error == nil || br.Results[3].Error.Code != CodeNotFound {
		t.Errorf("results[3] (unknown site) = %+v, want %s", br.Results[3].Error, CodeNotFound)
	}
}

// TestGracefulDrainAndCommit: cancelling the serve context must not cut
// an in-flight prediction — Serve drains it to a 200 — and the follow-up
// Commit persists the fleet inventory and a clean-shutdown manifest.
func TestGracefulDrainAndCommit(t *testing.T) {
	s := newTestServer(t)

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/predict" {
			once.Do(func() { close(entered) })
			<-gate
		}
		s.Handler().ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(ln.Addr().String(), slow)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(ctx, srv, ln, 30*time.Second) }()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/predict",
			"application/json", bytes.NewReader([]byte(`{"site":"india"}`)))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			reqDone <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
			return
		}
		reqDone <- nil
	}()

	<-entered
	cancel() // SIGTERM equivalent: stop accepting, drain in-flight

	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request during shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	if err := s.Commit(context.Background()); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	names, err := s.Engine().StoredSites()
	if err != nil {
		t.Fatalf("StoredSites: %v", err)
	}
	if len(names) != s.Sites() {
		t.Errorf("committed %d site records, want %d", len(names), s.Sites())
	}
	raw, ok, err := s.st.Get("server", "manifest")
	if err != nil || !ok {
		t.Fatalf("manifest record: ok=%v err=%v", ok, err)
	}
	var manifest map[string]any
	if err := json.Unmarshal(raw, &manifest); err != nil {
		t.Fatalf("manifest JSON: %v", err)
	}
	if manifest["clean_shutdown"] != true {
		t.Errorf("manifest = %v, want clean_shutdown true", manifest)
	}
}

// TestABIEndpoint: /v1/abi/{site} resolves the built-in probe against the
// site's symbol index — per-symbol verdicts, agreement attached — and
// repeat hits are served from the cached index (one sym_index span).
func TestABIEndpoint(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/abi/india")
		if err != nil {
			t.Fatalf("GET /v1/abi/india: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/abi/india = %d: %s", resp.StatusCode, body)
		}
		var env struct {
			Data  *abicheck.Report `json:"data"`
			Error *APIError        `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("abi report is not JSON: %v", err)
		}
		r := env.Data
		if r == nil || env.Error != nil {
			t.Fatalf("abi envelope = %+v, want report data and no error", env)
		}
		if r.Site != "india" || r.Total == 0 || len(r.Symbols) != r.Total {
			t.Fatalf("report shape wrong: %+v", r)
		}
		if !r.OK() {
			t.Fatalf("built-in probe should resolve everywhere: %s", r.Summary())
		}
		if r.Agreement == nil || !r.Agreement.Agree {
			t.Fatalf("agreement missing or negative: %+v", r.Agreement)
		}
	}
	if got := s.Engine().Metrics().Histogram(obs.OpSymIndex).Count(); got != 1 {
		t.Errorf("sym_index builds after 2 hits = %d, want 1", got)
	}

	resp, err := http.Get(ts.URL + "/v1/abi/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/abi/nonesuch = %d, want 404", resp.StatusCode)
	}
}
